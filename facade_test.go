package repro

import (
	"testing"
)

func TestPublicQSMGD(t *testing.T) {
	// QSM(g,d) interpolates: d=1 matches QSM, d=g matches s-QSM on a
	// contention workload.
	run := func(mk func() (*QSMMachine, error)) int64 {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]int64, 64)
		for i := range bits {
			bits[i] = 1
		}
		if err := m.Load(0, bits); err != nil {
			t.Fatal(err)
		}
		out, err := ORContentionTree(m, 0, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		if m.Peek(out) != 1 {
			t.Fatal("wrong OR")
		}
		return int64(m.Report().TotalTime)
	}
	tQSM := run(func() (*QSMMachine, error) { return NewQSM(64, 4, 64, 64) })
	tGD1 := run(func() (*QSMMachine, error) { return NewQSMGD(64, 4, 1, 64, 64) })
	tGDg := run(func() (*QSMMachine, error) { return NewQSMGD(64, 4, 4, 64, 64) })
	tSQSM := run(func() (*QSMMachine, error) { return NewSQSM(64, 4, 64, 64) })
	if tGD1 != tQSM {
		t.Errorf("QSM(g,1) time %d ≠ QSM %d", tGD1, tQSM)
	}
	if tGDg != tSQSM {
		t.Errorf("QSM(g,g) time %d ≠ s-QSM %d", tGDg, tSQSM)
	}
	if _, err := NewQSMGD(4, 2, 0, 4, 4); err == nil {
		t.Error("want d ≥ 1 error")
	}
}

func TestPublicGSMAlgorithms(t *testing.T) {
	n := 128
	bits := RandomBits(17, n)
	r := n // γ = 1
	m, err := NewGSM(r, 2, 2, 1, n, GSMGatherCells(r))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadInputs(bits); err != nil {
		t.Fatal(err)
	}
	got, err := ParityGSM(m, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceParity(bits); got != want {
		t.Fatalf("GSM parity = %d, want %d", got, want)
	}

	m2, err := NewGSM(r, 2, 2, 1, n, GSMGatherCells(r))
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.LoadInputs(bits); err != nil {
		t.Fatal(err)
	}
	gotOr, err := ORGSM(m2, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceOr(bits); gotOr != want {
		t.Fatalf("GSM OR = %d, want %d", gotOr, want)
	}
}

func TestPublicRandomizedOR(t *testing.T) {
	n := 512
	bits := RandomBits(23, n)
	m, err := NewCRQW(n, 4, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	out, err := ORRandomized(m, 77, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Peek(out), ReferenceOr(bits); got != want {
		t.Fatalf("randomized OR = %d, want %d", got, want)
	}
}

func TestPublicBroadcast(t *testing.T) {
	n := 128
	m, err := NewQSM(n, 4, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, []int64{13}); err != nil {
		t.Fatal(err)
	}
	out, err := Broadcast(m, 0, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if m.Peek(out+i) != 13 {
			t.Fatalf("cell %d = %d, want 13", i, m.Peek(out+i))
		}
	}
}

func TestPublicLoadBalance(t *testing.T) {
	n := 8
	counts := []int64{3, 0, 2, 0, 0, 1, 0, 2}
	m, err := NewQSM(n, 1, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, counts); err != nil {
		t.Fatal(err)
	}
	out, h, err := LoadBalance(m, 0, n, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h != 8 {
		t.Fatalf("h = %d, want 8", h)
	}
	seen := 0
	for r := 0; r < h; r++ {
		if m.Peek(out+r) != 0 {
			seen++
		}
	}
	if seen != h {
		t.Fatalf("only %d of %d slots filled", seen, h)
	}
}

func TestPublicSampleAndPaddedSorts(t *testing.T) {
	n, p := 256, 8
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(n - i)
	}
	ms, err := NewBSP(p, 1, 4, n, SampleSortBSPPrivCells(n, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Scatter(keys); err != nil {
		t.Fatal(err)
	}
	if _, err := SampleSortBSP(ms, n); err != nil {
		t.Fatal(err)
	}

	vals := Uniform01(3, n)
	mp, err := NewBSP(p, 1, 4, n, PaddedSortBSPPrivCells(n, p, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Scatter(vals); err != nil {
		t.Fatal(err)
	}
	if _, err := PaddedSortBSP(mp, n, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExportAndShape(t *testing.T) {
	out, err := ExportTables(1, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < 100 || out[:2] != "id" {
		t.Errorf("CSV export looks wrong: %q...", out[:20])
	}
	if _, err := ExportTables(1, "yaml"); err == nil {
		t.Error("want unknown-format error")
	}
	r, err := RunExperiment("T2.Parity.det", 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ShapeOf(r)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShapeRatio < 1.9 || s.ShapeRatio > 2.1 {
		t.Errorf("shape ratio = %v, want ≈ 2", s.ShapeRatio)
	}
}

func TestPublicAnalyzeKnowledgeQSM(t *testing.T) {
	const n = 4
	runner := func(bits []int64) (*QSMMachine, error) {
		m, err := NewQSM(n, 1, n, 2*n)
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.Load(0, bits); err != nil {
			return nil, err
		}
		m.Phase(func(c *QSMCtx) {
			v := c.Read(c.Proc())
			c.Write(n+c.Proc(), v)
		})
		return m, nil
	}
	a, err := AnalyzeKnowledgeQSM(runner, n, n, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 1 || a.MaxKnow[0] != 1 {
		t.Errorf("phases=%d maxKnow=%v", a.Phases, a.MaxKnow)
	}
}

func TestPublicSensitivity(t *testing.T) {
	if MajorityFn(5).Sensitivity() != 3 {
		t.Errorf("s(Maj_5) = %d, want 3", MajorityFn(5).Sensitivity())
	}
	if ParityFn(6).Sensitivity() != 6 {
		t.Error("parity must be fully sensitive")
	}
}

func TestPublicThinWrappers(t *testing.T) {
	n := 64
	bits := RandomBits(31, n)

	// ParityGadget via the facade.
	gb := 2
	procs := ((n + gb - 1) / gb) * (gb << uint(gb))
	mg, err := NewQSM(procs, 2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	out, err := ParityGadget(mg, 0, n, gb)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Peek(out) != ReferenceParity(bits) {
		t.Error("gadget parity wrong via facade")
	}

	// ORReadTree + PrefixSums + ListRank.
	mr, err := NewSQSM(n, 2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	if out, err := ORReadTree(mr, 0, n, 4); err != nil || mr.Peek(out) != ReferenceOr(bits) {
		t.Errorf("ORReadTree: %v", err)
	}
	mp, err := NewQSM(n, 1, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	ps, err := PrefixSums(mp, 0, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, b := range bits {
		want += b
	}
	if mp.Peek(ps+n-1) != want {
		t.Error("PrefixSums total wrong")
	}
	ml, err := NewQSM(n, 1, n, n)
	if err != nil {
		t.Fatal(err)
	}
	next := make([]int64, n)
	for j := 0; j+1 < n; j++ {
		next[j] = int64(j + 1)
	}
	next[n-1] = int64(n - 1)
	if err := ml.Load(0, next); err != nil {
		t.Fatal(err)
	}
	ranks, err := ListRank(ml, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Peek(ranks) != int64(n-1) {
		t.Error("ListRank head rank wrong")
	}

	// ORBSP.
	p := 8
	mb, err := NewBSP(p, 1, 2, n, ORBSPPrivCells(n, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Scatter(bits); err != nil {
		t.Fatal(err)
	}
	if v, err := ORBSP(mb, n, 4); err != nil || v != ReferenceOr(bits) {
		t.Errorf("ORBSP: %v", err)
	}
}

func TestPublicRenderers(t *testing.T) {
	if testing.Short() {
		t.Skip("renderers run full sweeps")
	}
	out, err := RenderTheoremSweeps(1)
	if err != nil || len(out) < 100 {
		t.Errorf("RenderTheoremSweeps: %v (%d bytes)", err, len(out))
	}
	out, err = RenderParamSweeps(1)
	if err != nil || len(out) < 100 {
		t.Errorf("RenderParamSweeps: %v (%d bytes)", err, len(out))
	}
	out, err = RenderTables(1)
	if err != nil || len(out) < 1000 {
		t.Errorf("RenderTables: %v (%d bytes)", err, len(out))
	}
}

func TestPublicAnalyzeKnowledgeGSM(t *testing.T) {
	const n = 3
	runner := func(bits []int64) (*GSMMachine, error) {
		m, err := NewGSM(n, 1, 1, 1, n, 2*n)
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.LoadInputs(bits); err != nil {
			return nil, err
		}
		m.Phase(func(c *GSMCtx) {
			info := c.Read(c.Proc())
			c.Write(n+c.Proc(), info)
		})
		return m, nil
	}
	a, err := AnalyzeKnowledge(runner, n, n, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 1 || a.MaxKnow[0] != 1 {
		t.Errorf("phases=%d know=%v", a.Phases, a.MaxKnow)
	}
}
