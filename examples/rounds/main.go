// Rounds: the Table 1d story live. A p-processor machine whose phases must
// all fit the O(gn/p)-time round budget computes OR and Parity in
// Θ(log n / log(n/p)) rounds on the s-QSM/BSP, and OR in the strictly
// smaller Θ(log n / log(gn/p)) on the QSM (contention is cheap there).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n = 1 << 14
		p = n / 8 // n/p = 8
		g = 16
	)
	bits := repro.RandomBits(4, n)

	// s-QSM rounds: fan-in n/p read tree.
	ms, err := repro.NewSQSM(p, g, n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := ms.Load(0, bits); err != nil {
		log.Fatal(err)
	}
	outS, err := repro.ParityTree(ms, 0, n, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s-QSM parity: %d rounds (all-rounds=%v), answer %d\n",
		ms.Report().NumPhases(), ms.Report().AllRounds, ms.Peek(outS))
	b := repro.BoundByID("T4.Parity.sqsm")
	fmt.Printf("  Θ bound log n/log(n/p) = %.2f\n",
		b.Eval(repro.BoundArgs{N: n, P: p, G: g}))

	// QSM rounds OR: block reduce + contention tree of fan-in g·n/p beats
	// the read tree because contention costs κ, not g·κ.
	type run struct {
		name string
		mk   func() (*repro.QSMMachine, error)
		alg  func(m *repro.QSMMachine) (int, error)
	}
	for _, r := range []run{
		{"QSM OR rounds (fan-in g·n/p)",
			func() (*repro.QSMMachine, error) { return repro.NewQSM(p, g, n, n) },
			func(m *repro.QSMMachine) (int, error) {
				// The library's RoundsQSM path via the public facade:
				// block-reduce happens inside ORContentionTree usage below.
				return repro.ORContentionTree(m, 0, n, int(g)*8)
			}},
		{"s-QSM OR rounds (fan-in n/p)",
			func() (*repro.QSMMachine, error) { return repro.NewSQSM(p, g, n, n) },
			func(m *repro.QSMMachine) (int, error) {
				return repro.ORReadTree(m, 0, n, 8)
			}},
	} {
		m, err := r.mk()
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Load(0, bits); err != nil {
			log.Fatal(err)
		}
		out, err := r.alg(m)
		if err != nil {
			log.Fatal(err)
		}
		if m.Peek(out) != repro.ReferenceOr(bits) {
			log.Fatalf("%s: wrong answer", r.name)
		}
		fmt.Printf("%s: %d phases, all-rounds=%v, time %d\n",
			r.name, m.Report().NumPhases(), m.Report().AllRounds, m.Report().TotalTime)
	}

	fmt.Printf("\nQSM OR Θ bound log n/log(gn/p) = %.2f vs s-QSM Θ bound log n/log(n/p) = %.2f\n",
		repro.BoundByID("T4.OR.qsm").Eval(repro.BoundArgs{N: n, P: p, G: g}),
		repro.BoundByID("T4.OR.sqsm").Eval(repro.BoundArgs{N: n, P: p, G: g}))
}
