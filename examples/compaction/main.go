// Compaction: run both Linear Approximate Compaction algorithms of the
// paper on the same sparse array — the randomized dart-throwing algorithm
// (the O(g·√log n) s-QSM upper bound) versus the deterministic prefix-sums
// compaction — and compare their model costs against the Table 1b bounds.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n = 4096 // array size
		h = 1024 // items to compact
		g = 4
	)
	items, err := repro.SparseItems(7, n, h)
	if err != nil {
		log.Fatal(err)
	}

	// Randomized dart throwing.
	md, err := repro.NewSQSM(n, g, n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := md.Load(0, items); err != nil {
		log.Fatal(err)
	}
	res, err := repro.CompactDarts(md, 99, 0, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dart LAC:   placed %d/%d items in %d cells over %d rounds\n",
		len(res.Placed), h, res.OutSize, res.Rounds)
	// PlacedSlots is the deterministic view of the placement map (sorted by
	// output cell); never range over res.Placed directly in rendered output.
	slots := res.PlacedSlots()
	fmt.Printf("            first placement: tag %d → cell %d, last: tag %d → cell %d\n",
		slots[0].Tag, slots[0].Cell, slots[len(slots)-1].Tag, slots[len(slots)-1].Cell)
	fmt.Printf("            %v\n", md.Report())

	// Deterministic prefix-sums compaction (exact and stable).
	me, err := repro.NewSQSM(n, g, n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := me.Load(0, items); err != nil {
		log.Fatal(err)
	}
	_, k, err := repro.CompactExact(me, 0, n, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact LAC:  compacted %d items (stable, size exactly h)\n", k)
	fmt.Printf("            %v\n", me.Report())

	// The paper's story: randomized beats deterministic on the s-QSM
	// (Ω(g·log log n) vs the prefix tree's Θ(g·log n)).
	lower := repro.BoundByID("T2.LAC.rand")
	fmt.Printf("\npaper randomized lower bound %s = %.0f\n",
		lower.Formula, lower.Eval(repro.BoundArgs{N: n, P: n, G: g}))
	fmt.Printf("dart/deterministic time = %d/%d = %.2fx faster\n",
		md.Report().TotalTime, me.Report().TotalTime,
		float64(me.Report().TotalTime)/float64(md.Report().TotalTime))
}
