// Lowerbound: watch the degree argument of Theorems 3.1/7.2 happen on a
// real machine. The polynomial degree of every cell's contents grows by at
// most a constant factor per GSM phase (Lemma 5.1 mechanics), while the
// output must reach degree n — so Ω(log n / log μ) phases are unavoidable.
// This example measures the degrees phase by phase on a live algorithm.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gsm"
)

func main() {
	const n = 8
	cells := 2*n + 2

	// The algorithm under the microscope: a binary merge tree (the fastest
	// way information can concentrate when each phase allows one read per
	// processor).
	runner := func(bits []int64) (*gsm.Machine, error) {
		m, err := gsm.New(gsm.Config{P: n, Alpha: 1, Beta: 1, Gamma: 1, N: n, Cells: cells})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.LoadInputs(bits); err != nil {
			return nil, err
		}
		cur, width, next := 0, n, n
		for width > 1 {
			nw := (width + 1) / 2
			curL, widthL, nextL := cur, width, next
			m.Phase(func(c *gsm.Ctx) {
				j := c.Proc()
				if j >= nw {
					return
				}
				a := c.Read(curL + 2*j)
				var b gsm.Info
				if 2*j+1 < widthL {
					b = c.Read(curL + 2*j + 1)
				}
				c.Write(nextL+j, a.Merge(b))
			})
			cur, width, next = next, nw, next+nw
		}
		return m, nil
	}

	a, err := repro.AnalyzeKnowledge(runner, n, n, cells)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Degree growth per phase (exhaustive over all 2^8 inputs):")
	fmt.Printf("  %6s %10s %12s\n", "phase", "max degree", "max |Know|")
	for t := 0; t < a.Phases; t++ {
		fmt.Printf("  %6d %10d %12d\n", t, a.MaxDegree[t], a.MaxKnow[t])
	}

	fmt.Println("\nWhy that forces the lower bound:")
	fmt.Printf("  deg(Parity_%d) = %d and deg(OR_%d) = %d (full degree, Fact 2.1)\n",
		n, repro.ParityFn(n).Degree(), n, repro.ORFn(n).Degree())
	fmt.Printf("  degrees at most double per phase here, so no algorithm of this\n")
	fmt.Printf("  shape finishes Parity before ⌈log₂ %d⌉ = %d phases — the measured\n",
		n, a.Phases)
	fmt.Printf("  tree used exactly %d.\n", a.Phases)

	// The certificate-complexity link (Fact 2.3) used by Claim 5.2.
	or := repro.ORFn(6)
	d, c := or.Degree(), or.Certificate()
	fmt.Printf("\nFact 2.3 check on OR_6: C(f) = %d ≤ deg(f)^4 = %d\n", c, d*d*d*d)
}
