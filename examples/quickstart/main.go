// Quickstart: compute the parity of 1024 random bits on a simulated s-QSM
// and watch the cost model confirm the paper's tight Θ(g·log n) bound.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n = 1024 // input size
		g = 4    // bandwidth gap parameter
	)
	bits := repro.RandomBits(42, n)

	// One processor per input bit, n shared-memory cells for the input
	// (the algorithm grows scratch space as it goes).
	m, err := repro.NewSQSM(n, g, n, n)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Load(0, bits); err != nil {
		log.Fatal(err)
	}

	// The binary XOR tree of Section 8: log₂ n phases of cost 2g each.
	out, err := repro.ParityTree(m, 0, n, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("parity = %d (reference %d)\n", m.Peek(out), repro.ReferenceParity(bits))
	fmt.Println(m.Report())

	// Compare against the paper's Table 1b entry: Θ(g·log n).
	bound := repro.BoundByID("T2.Parity.det")
	predicted := bound.Eval(repro.BoundArgs{N: n, P: n, G: g})
	fmt.Printf("paper bound %s = %.0f; measured/bound = %.2f (constant ⇒ tight)\n",
		bound.Formula, predicted, float64(m.Report().TotalTime)/predicted)
}
