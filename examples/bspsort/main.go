// BSP sorting: run regular sample sort and the Section 6 Padded Sort on a
// simulated BSP machine, with full superstep/h-relation accounting — the
// distributed-memory side of the paper's model family.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n = 1 << 12
		p = 32
		g = 2
		L = 16
	)

	// Sample sort of a random permutation.
	keys := make([]int64, n)
	for i, v := range repro.RandomBits(3, n) {
		keys[i] = int64(i)*2 + v // distinct keys
	}
	ms, err := repro.NewBSP(p, g, L, n, repro.SampleSortBSPPrivCells(n, p))
	if err != nil {
		log.Fatal(err)
	}
	if err := ms.Scatter(keys); err != nil {
		log.Fatal(err)
	}
	outOff, err := repro.SampleSortBSP(ms, n)
	if err != nil {
		log.Fatal(err)
	}
	total, sorted, prev := 0, true, int64(-1)
	for comp := 0; comp < p; comp++ {
		ln := int(ms.Peek(comp, outOff-1))
		for i := 0; i < ln; i++ {
			v := ms.Peek(comp, outOff+i)
			if v < prev {
				sorted = false
			}
			prev = v
			total++
		}
	}
	fmt.Printf("sample sort: %d keys, globally sorted = %v\n", total, sorted)
	fmt.Printf("             %v\n", ms.Report())

	// Padded Sort of U[0,1] values (Section 6's problem): output size 2n
	// with NULL padding, one value-routing superstep plus local sorts.
	vals := repro.Uniform01(5, n)
	mp, err := repro.NewBSP(p, g, L, n, repro.PaddedSortBSPPrivCells(n, p, 2))
	if err != nil {
		log.Fatal(err)
	}
	if err := mp.Scatter(vals); err != nil {
		log.Fatal(err)
	}
	if _, err := repro.PaddedSortBSP(mp, n, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("padded sort: %d values into a 2n padded array\n", n)
	fmt.Printf("             %v\n", mp.Report())

	// Parity on the same machine shape, for the Table 1c Θ row.
	bits := repro.RandomBits(11, n)
	mb, err := repro.NewBSP(p, g, L, n, repro.ParityBSPPrivCells(n, p))
	if err != nil {
		log.Fatal(err)
	}
	if err := mb.Scatter(bits); err != nil {
		log.Fatal(err)
	}
	v, err := repro.ParityBSP(mb, n, L/g)
	if err != nil {
		log.Fatal(err)
	}
	bound := repro.BoundByID("T3.Parity.det")
	predicted := bound.Eval(repro.BoundArgs{N: n, P: p, G: g, L: L})
	fmt.Printf("\nBSP parity = %d (reference %d); measured %d vs Θ bound %.0f\n",
		v, repro.ReferenceParity(bits), mb.Report().TotalTime, predicted)
}
