package repro_test

import (
	"errors"
	"strings"
	"testing"

	repro "repro"
)

func loadBits(t *testing.T, m *repro.QSMMachine, bits []int64) {
	t.Helper()
	if err := m.Load(0, bits); err != nil {
		t.Fatalf("Load: %v", err)
	}
}

// Degraded parity survives two pinned crashes with a correct answer and a
// report that accounts for the masked processors.
func TestFacadeDegradedParityTree(t *testing.T) {
	bits := make([]int64, 64)
	var want int64
	for i := range bits {
		bits[i] = int64((i*7 + 3) % 2)
		want ^= bits[i]
	}
	m, err := repro.NewQSM(8, 2, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, bits)
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 1, Proc: 2},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 3, Proc: 5})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	addr, rep, err := repro.ParityTreeDegraded(m, plan, 0, 64, 2)
	if err != nil {
		t.Fatalf("ParityTreeDegraded: %v", err)
	}
	if got := m.Peek(addr); got != want {
		t.Fatalf("parity = %d, want %d", got, want)
	}
	if rep.Crashes != 2 || rep.MaskedProcs != 2 {
		t.Fatalf("report crashes=%d masked=%d, want 2/2\n%s", rep.Crashes, rep.MaskedProcs, rep)
	}
}

// Degraded OR stays correct when a crash lands between the read and write
// phases of a contention-tree level — the case survivor re-ranking per
// phase exists for.
func TestFacadeDegradedORContentionTree(t *testing.T) {
	bits := make([]int64, 32) // single 1 — any dropped cell flips the answer
	bits[17] = 1
	m, err := repro.NewSQSM(4, 2, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, bits)
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 1},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 3, Proc: 0})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	addr, rep, err := repro.ORContentionTreeDegraded(m, plan, 0, 32, 4)
	if err != nil {
		t.Fatalf("ORContentionTreeDegraded: %v", err)
	}
	if got := m.Peek(addr); got != 1 {
		t.Fatalf("OR = %d, want 1\n%s", got, rep)
	}
	if rep.MaskedProcs != 2 {
		t.Fatalf("masked = %d, want 2", rep.MaskedProcs)
	}
}

// Degraded dart compaction re-deals a crashed processor's darts to the
// survivors; the placement verifier is the correctness oracle.
func TestFacadeDegradedCompactDarts(t *testing.T) {
	input := make([]int64, 48)
	for i := range input {
		if i%3 != 0 {
			input[i] = int64(i + 1)
		}
	}
	m, err := repro.NewQSM(48, 2, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, input)
	plan := repro.NewFaultPlan(7, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 2, Proc: 3})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	res, rep, err := repro.CompactDartsDegraded(m, plan, 99, 0, 48)
	if err != nil {
		t.Fatalf("CompactDartsDegraded: %v", err)
	}
	if err := repro.VerifyDartPlacement(input, res); err != nil {
		t.Fatalf("placement verification: %v\n%s", err, rep)
	}
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
}

// All processors crashing yields a diagnosable error, never a silent zero.
func TestFacadeDegradedAllCrashed(t *testing.T) {
	m, err := repro.NewQSM(2, 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, []int64{1, 0, 1, 1, 0, 0, 1, 0})
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 0},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 1, Proc: 1})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	_, _, err = repro.ParityTreeDegraded(m, plan, 0, 8, 2)
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("err = %v, want all-crashed diagnosis", err)
	}
}

// An injected contention-rule violation is identifiable through the facade
// by BOTH the model sentinel and the fault sentinel.
func TestFacadeViolationSentinels(t *testing.T) {
	m, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, make([]int64, 16))
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
	m.InjectFaults(plan, repro.RetryPolicy{}, false)

	_, err = repro.ParityTree(m, 0, 16, 2)
	if err == nil {
		t.Fatal("want poisoned machine, got nil")
	}
	if !errors.Is(err, repro.ErrQSMViolation) {
		t.Errorf("errors.Is(err, ErrQSMViolation) = false; err = %v", err)
	}
	if !errors.Is(err, repro.ErrFaultViolation) {
		t.Errorf("errors.Is(err, ErrFaultViolation) = false; err = %v", err)
	}
}

// Strict-mode crashes and exhausted transient retries surface their fault
// sentinels through the facade error chain.
func TestFacadeFaultSentinels(t *testing.T) {
	m, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, make([]int64, 16))
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 2})
	m.InjectFaults(plan, repro.RetryPolicy{}, false) // strict: crash poisons

	_, err = repro.ParityTree(m, 0, 16, 2)
	if !errors.Is(err, repro.ErrFaultCrash) {
		t.Errorf("errors.Is(err, ErrFaultCrash) = false; err = %v", err)
	}

	m2, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m2, make([]int64, 16))
	plan2 := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultMemTransient, Phase: -1, Prob: 1})
	m2.InjectFaults(plan2, repro.RetryPolicy{MaxAttempts: 2}, false)

	_, err = repro.ParityTree(m2, 0, 16, 2)
	if !errors.Is(err, repro.ErrFaultTransient) {
		t.Errorf("errors.Is(err, ErrFaultTransient) = false; err = %v", err)
	}
}

// Round-trip the chaos spec syntax through the facade.
func TestFacadeParseFaultSpecs(t *testing.T) {
	specs, err := repro.ParseFaultSpecs("crash@3:p1,mem~0.25,budget@1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != repro.FaultCrash || specs[1].Prob != 0.25 {
		t.Fatalf("unexpected specs: %+v", specs)
	}
}

// Every exported facade entry point that executes phases — the full QSM
// algorithm surface, the GSM algorithms and the three degraded runners,
// not just the runners — must surface an injected violation so that
// errors.Is sees BOTH sentinels: the model's Violation (ErrQSMViolation /
// ErrGSMViolation) and the fault-layer ErrFaultViolation. This pins the
// multi-%w wrapping contract the sentinelwrap analyzer enforces
// statically.
func TestFacadeViolationSentinelsAllEntryPoints(t *testing.T) {
	poison := func(t *testing.T, m interface {
		InjectFaults(repro.Injector, repro.RetryPolicy, bool)
	}, degraded bool) {
		t.Helper()
		plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
		m.InjectFaults(plan, repro.RetryPolicy{}, degraded)
	}
	qsm := func(t *testing.T, p int, g int64, n, cells int, input []int64) *repro.QSMMachine {
		t.Helper()
		m, err := repro.NewQSM(p, g, n, cells)
		if err != nil {
			t.Fatal(err)
		}
		loadBits(t, m, input)
		poison(t, m, false)
		return m
	}

	sparse := make([]int64, 48)
	for i := range sparse {
		if i%3 != 0 {
			sparse[i] = int64(i + 1)
		}
	}
	list := make([]int64, 64)
	for j := 0; j+1 < len(list); j++ {
		list[j] = int64(j + 1)
	}
	list[63] = 63

	cases := []struct {
		name     string
		sentinel error // the model's Violation sentinel
		run      func(t *testing.T) error
	}{
		{"ParityTree", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 4, 2, 16, 16, make([]int64, 16))
			_, err := repro.ParityTree(m, 0, 16, 2)
			return err
		}},
		{"ParityGadget", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 256, 2, 64, 64, repro.RandomBits(31, 64))
			_, err := repro.ParityGadget(m, 0, 64, 2)
			return err
		}},
		{"ORContentionTree", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 64, 4, 64, 64, repro.RandomBits(5, 64))
			_, err := repro.ORContentionTree(m, 0, 64, 8)
			return err
		}},
		{"ORReadTree", repro.ErrQSMViolation, func(t *testing.T) error {
			m, err := repro.NewSQSM(64, 2, 64, 64)
			if err != nil {
				t.Fatal(err)
			}
			loadBits(t, m, repro.RandomBits(7, 64))
			poison(t, m, false)
			_, err = repro.ORReadTree(m, 0, 64, 4)
			return err
		}},
		{"ORRandomized", repro.ErrQSMViolation, func(t *testing.T) error {
			m, err := repro.NewCRQW(64, 4, 64, 64)
			if err != nil {
				t.Fatal(err)
			}
			loadBits(t, m, repro.RandomBits(23, 64))
			poison(t, m, false)
			_, err = repro.ORRandomized(m, 77, 0, 64)
			return err
		}},
		{"Broadcast", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 128, 4, 128, 1, []int64{13})
			_, err := repro.Broadcast(m, 0, 128, 4)
			return err
		}},
		{"LoadBalance", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 8, 1, 8, 8, []int64{3, 0, 2, 0, 0, 1, 0, 2})
			_, _, err := repro.LoadBalance(m, 0, 8, 2, 3)
			return err
		}},
		{"PrefixSums", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 64, 1, 64, 64, repro.RandomBits(11, 64))
			_, err := repro.PrefixSums(m, 0, 64, 4)
			return err
		}},
		{"CompactExact", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 48, 2, 48, 48, sparse)
			_, _, err := repro.CompactExact(m, 0, 48, 4)
			return err
		}},
		{"CompactDarts", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 48, 2, 48, 48, sparse)
			_, err := repro.CompactDarts(m, 7, 0, 48)
			return err
		}},
		{"ListRank", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 64, 1, 64, 64, list)
			_, err := repro.ListRank(m, 0, 64)
			return err
		}},
		{"ParityViaListRanking", repro.ErrQSMViolation, func(t *testing.T) error {
			m := qsm(t, 130, 1, 64, 64, repro.RandomBits(9, 64))
			_, err := repro.ParityViaListRanking(m, 0, 64)
			return err
		}},
		{"ParityGSM", repro.ErrGSMViolation, func(t *testing.T) error {
			m, err := repro.NewGSM(64, 2, 2, 1, 64, repro.GSMGatherCells(64))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadInputs(repro.RandomBits(17, 64)); err != nil {
				t.Fatal(err)
			}
			poison(t, m, false)
			_, err = repro.ParityGSM(m, 64, 2)
			return err
		}},
		{"ORGSM", repro.ErrGSMViolation, func(t *testing.T) error {
			m, err := repro.NewGSM(64, 2, 2, 1, 64, repro.GSMGatherCells(64))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadInputs(repro.RandomBits(19, 64)); err != nil {
				t.Fatal(err)
			}
			poison(t, m, false)
			_, err = repro.ORGSM(m, 64, 2)
			return err
		}},
		{"ParityTreeDegraded", repro.ErrQSMViolation, func(t *testing.T) error {
			m, err := repro.NewQSM(8, 2, 64, 64)
			if err != nil {
				t.Fatal(err)
			}
			loadBits(t, m, repro.RandomBits(3, 64))
			plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
			m.InjectFaults(plan, repro.RetryPolicy{}, true)
			_, _, err = repro.ParityTreeDegraded(m, plan, 0, 64, 2)
			return err
		}},
		{"ORContentionTreeDegraded", repro.ErrQSMViolation, func(t *testing.T) error {
			m, err := repro.NewSQSM(4, 2, 32, 32)
			if err != nil {
				t.Fatal(err)
			}
			loadBits(t, m, repro.RandomBits(13, 32))
			plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
			m.InjectFaults(plan, repro.RetryPolicy{}, true)
			_, _, err = repro.ORContentionTreeDegraded(m, plan, 0, 32, 4)
			return err
		}},
		{"CompactDartsDegraded", repro.ErrQSMViolation, func(t *testing.T) error {
			m, err := repro.NewQSM(48, 2, 48, 48)
			if err != nil {
				t.Fatal(err)
			}
			loadBits(t, m, sparse)
			plan := repro.NewFaultPlan(7, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
			m.InjectFaults(plan, repro.RetryPolicy{}, true)
			_, _, err = repro.CompactDartsDegraded(m, plan, 99, 0, 48)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatal("want poisoned machine error, got nil")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Errorf("errors.Is(err, model sentinel) = false; err = %v", err)
			}
			if !errors.Is(err, repro.ErrFaultViolation) {
				t.Errorf("errors.Is(err, ErrFaultViolation) = false; err = %v", err)
			}
		})
	}
}
