package repro_test

import (
	"errors"
	"strings"
	"testing"

	repro "repro"
)

func loadBits(t *testing.T, m *repro.QSMMachine, bits []int64) {
	t.Helper()
	if err := m.Load(0, bits); err != nil {
		t.Fatalf("Load: %v", err)
	}
}

// Degraded parity survives two pinned crashes with a correct answer and a
// report that accounts for the masked processors.
func TestFacadeDegradedParityTree(t *testing.T) {
	bits := make([]int64, 64)
	var want int64
	for i := range bits {
		bits[i] = int64((i*7 + 3) % 2)
		want ^= bits[i]
	}
	m, err := repro.NewQSM(8, 2, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, bits)
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 1, Proc: 2},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 3, Proc: 5})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	addr, rep, err := repro.ParityTreeDegraded(m, plan, 0, 64, 2)
	if err != nil {
		t.Fatalf("ParityTreeDegraded: %v", err)
	}
	if got := m.Peek(addr); got != want {
		t.Fatalf("parity = %d, want %d", got, want)
	}
	if rep.Crashes != 2 || rep.MaskedProcs != 2 {
		t.Fatalf("report crashes=%d masked=%d, want 2/2\n%s", rep.Crashes, rep.MaskedProcs, rep)
	}
}

// Degraded OR stays correct when a crash lands between the read and write
// phases of a contention-tree level — the case survivor re-ranking per
// phase exists for.
func TestFacadeDegradedORContentionTree(t *testing.T) {
	bits := make([]int64, 32) // single 1 — any dropped cell flips the answer
	bits[17] = 1
	m, err := repro.NewSQSM(4, 2, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, bits)
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 1},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 3, Proc: 0})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	addr, rep, err := repro.ORContentionTreeDegraded(m, plan, 0, 32, 4)
	if err != nil {
		t.Fatalf("ORContentionTreeDegraded: %v", err)
	}
	if got := m.Peek(addr); got != 1 {
		t.Fatalf("OR = %d, want 1\n%s", got, rep)
	}
	if rep.MaskedProcs != 2 {
		t.Fatalf("masked = %d, want 2", rep.MaskedProcs)
	}
}

// Degraded dart compaction re-deals a crashed processor's darts to the
// survivors; the placement verifier is the correctness oracle.
func TestFacadeDegradedCompactDarts(t *testing.T) {
	input := make([]int64, 48)
	for i := range input {
		if i%3 != 0 {
			input[i] = int64(i + 1)
		}
	}
	m, err := repro.NewQSM(48, 2, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, input)
	plan := repro.NewFaultPlan(7, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 2, Proc: 3})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	res, rep, err := repro.CompactDartsDegraded(m, plan, 99, 0, 48)
	if err != nil {
		t.Fatalf("CompactDartsDegraded: %v", err)
	}
	if err := repro.VerifyDartPlacement(input, res); err != nil {
		t.Fatalf("placement verification: %v\n%s", err, rep)
	}
	if rep.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", rep.Crashes)
	}
}

// All processors crashing yields a diagnosable error, never a silent zero.
func TestFacadeDegradedAllCrashed(t *testing.T) {
	m, err := repro.NewQSM(2, 2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, []int64{1, 0, 1, 1, 0, 0, 1, 0})
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 0},
		repro.FaultSpec{Kind: repro.FaultCrash, Phase: 1, Proc: 1})
	m.InjectFaults(plan, repro.RetryPolicy{}, true)

	_, _, err = repro.ParityTreeDegraded(m, plan, 0, 8, 2)
	if err == nil || !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("err = %v, want all-crashed diagnosis", err)
	}
}

// An injected contention-rule violation is identifiable through the facade
// by BOTH the model sentinel and the fault sentinel.
func TestFacadeViolationSentinels(t *testing.T) {
	m, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, make([]int64, 16))
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultViolation, Phase: 1})
	m.InjectFaults(plan, repro.RetryPolicy{}, false)

	_, err = repro.ParityTree(m, 0, 16, 2)
	if err == nil {
		t.Fatal("want poisoned machine, got nil")
	}
	if !errors.Is(err, repro.ErrQSMViolation) {
		t.Errorf("errors.Is(err, ErrQSMViolation) = false; err = %v", err)
	}
	if !errors.Is(err, repro.ErrFaultViolation) {
		t.Errorf("errors.Is(err, ErrFaultViolation) = false; err = %v", err)
	}
}

// Strict-mode crashes and exhausted transient retries surface their fault
// sentinels through the facade error chain.
func TestFacadeFaultSentinels(t *testing.T) {
	m, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m, make([]int64, 16))
	plan := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultCrash, Phase: 0, Proc: 2})
	m.InjectFaults(plan, repro.RetryPolicy{}, false) // strict: crash poisons

	_, err = repro.ParityTree(m, 0, 16, 2)
	if !errors.Is(err, repro.ErrFaultCrash) {
		t.Errorf("errors.Is(err, ErrFaultCrash) = false; err = %v", err)
	}

	m2, err := repro.NewQSM(4, 2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	loadBits(t, m2, make([]int64, 16))
	plan2 := repro.NewFaultPlan(1, repro.FaultSpec{Kind: repro.FaultMemTransient, Phase: -1, Prob: 1})
	m2.InjectFaults(plan2, repro.RetryPolicy{MaxAttempts: 2}, false)

	_, err = repro.ParityTree(m2, 0, 16, 2)
	if !errors.Is(err, repro.ErrFaultTransient) {
		t.Errorf("errors.Is(err, ErrFaultTransient) = false; err = %v", err)
	}
}

// Round-trip the chaos spec syntax through the facade.
func TestFacadeParseFaultSpecs(t *testing.T) {
	specs, err := repro.ParseFaultSpecs("crash@3:p1,mem~0.25,budget@1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 || specs[0].Kind != repro.FaultCrash || specs[1].Prob != 0.25 {
		t.Fatalf("unexpected specs: %+v", specs)
	}
}
