package repro

import (
	"strings"
	"testing"
)

func TestPublicQSMFlow(t *testing.T) {
	n := 256
	bits := RandomBits(1, n)
	m, err := NewSQSM(n, 4, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	out, err := ParityTree(m, 0, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Peek(out), ReferenceParity(bits); got != want {
		t.Fatalf("parity = %d, want %d", got, want)
	}
	rep := m.Report()
	// Θ(g·log n) = 4·8 per paper shape; binary tree charges 2g per level.
	if rep.TotalTime != 64 {
		t.Errorf("s-QSM parity time = %d, want 2g·log n = 64", rep.TotalTime)
	}
}

func TestPublicConstructors(t *testing.T) {
	if _, err := NewQSM(4, 2, 8, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewQRQW(4, 8, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewCRQW(4, 2, 8, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewBSP(4, 2, 8, 16, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewGSM(4, 1, 1, 1, 8, 8); err != nil {
		t.Error(err)
	}
	if _, err := NewBSP(4, 8, 2, 16, 8); err == nil {
		t.Error("want L < g rejection")
	}
}

func TestPublicORFlow(t *testing.T) {
	n := 128
	bits := RandomBits(2, n)
	m, err := NewQSM(n, 8, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	out, err := ORContentionTree(m, 0, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Peek(out), ReferenceOr(bits); got != want {
		t.Fatalf("OR = %d, want %d", got, want)
	}
}

func TestPublicBSPFlow(t *testing.T) {
	n, p := 256, 16
	bits := RandomBits(3, n)
	m, err := NewBSP(p, 2, 16, n, ParityBSPPrivCells(n, p))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scatter(bits); err != nil {
		t.Fatal(err)
	}
	got, err := ParityBSP(m, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceParity(bits); got != want {
		t.Fatalf("BSP parity = %d, want %d", got, want)
	}
}

func TestPublicCompaction(t *testing.T) {
	n, h := 200, 50
	items, err := SparseItems(5, n, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewQSM(n, 2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, items); err != nil {
		t.Fatal(err)
	}
	_, k, err := CompactExact(m, 0, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != h {
		t.Fatalf("exact compaction k = %d, want %d", k, h)
	}
	m2, err := NewQSM(n, 2, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Load(0, items); err != nil {
		t.Fatal(err)
	}
	res, err := CompactDarts(m2, 7, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != h {
		t.Fatalf("dart compaction placed %d, want %d", len(res.Placed), h)
	}
}

func TestPublicListRanking(t *testing.T) {
	n := 64
	bits := RandomBits(9, n)
	m, err := NewQSM(2*(n+1), 1, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, bits); err != nil {
		t.Fatal(err)
	}
	got, err := ParityViaListRanking(m, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if want := ReferenceParity(bits); got != want {
		t.Fatalf("parity via list ranking = %d, want %d", got, want)
	}
}

func TestPublicBounds(t *testing.T) {
	if len(Bounds()) != 28 {
		t.Errorf("Bounds() has %d entries, want 28", len(Bounds()))
	}
	e := BoundByID("T2.Parity.det")
	if e == nil || !e.Tight {
		t.Fatal("T2.Parity.det must exist and be tight")
	}
	v := e.Eval(BoundArgs{N: 1 << 10, P: 1 << 10, G: 4})
	if v != 40 {
		t.Errorf("g·log n = %v, want 40", v)
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != len(Bounds()) {
		t.Errorf("experiments %d ≠ bounds %d", len(Experiments()), len(Bounds()))
	}
	if _, err := RunExperiment("bogus", 1); err == nil {
		t.Error("want unknown experiment error")
	}
	r, err := RunExperiment("T2.Parity.det", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderExperiment(r), "T2.Parity.det") {
		t.Error("render missing experiment id")
	}
}

func TestPublicBoolFns(t *testing.T) {
	if ParityFn(6).Degree() != 6 || ORFn(6).Degree() != 6 || ANDFn(6).Degree() != 6 {
		t.Error("full-degree anchors broken")
	}
}
