package repro

// Determinism regression suite for the parallel phase-commit pipeline: a
// simulation's observable state — shared/private memory, cost report, and
// execution trace — must be byte-identical whether the simulator runs on
// one worker or many. The winner rule (last write of the highest-numbered
// processor), contention counts, and violation selection are all defined
// independently of the chunk layout, so Workers is a pure throughput knob.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/cost"
	"repro/internal/gsm"
	"repro/internal/gsmalg"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/sortrank"
	"repro/internal/workload"
)

// detWorkers is the parallel setting compared against Workers=1. It
// exceeds GOMAXPROCS on small CI machines on purpose: chunk layout depends
// only on the Workers value, so the comparison is meaningful even when the
// runtime multiplexes the goroutines onto one core.
const detWorkers = 8

type qsmRun struct {
	result int
	mem    []int64
	report cost.Report
	proc   []string
	cell   []string
}

func qsmNew(workers, p, memCells int) (*qsm.Machine, error) {
	return qsm.New(qsm.Config{
		Rule: cost.RuleQSM, P: p, G: 1, N: p, MemCells: memCells, Workers: workers,
	})
}

// runParityTree runs the fan-in tree parity algorithm on a fresh QSM
// machine with the given worker count and snapshots everything observable.
func runParityTree(t *testing.T, workers int) qsmRun {
	t.Helper()
	const n, fanin = 1 << 10, 4
	in := workload.Bits(1998, n)
	m, err := qsmNew(workers, n, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTracing()
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := parity.TreeQSM(m, 0, n, fanin)
	if err != nil {
		t.Fatal(err)
	}
	r := qsmRun{
		result: out,
		mem:    m.PeekRange(0, m.MemSize()),
		report: *m.Report(),
	}
	tr := m.TraceLog()
	for p := 0; p < n; p++ {
		for ph := 0; ph <= tr.NumPhases(); ph++ {
			r.proc = append(r.proc, tr.ProcKey(p, ph))
		}
	}
	for c := 0; c < m.MemSize(); c++ {
		for ph := 0; ph <= tr.NumPhases(); ph++ {
			r.cell = append(r.cell, tr.CellKey(c, ph))
		}
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeterminismParityTreeQSM(t *testing.T) {
	seq := runParityTree(t, 1)
	par := runParityTree(t, detWorkers)
	if seq.result != par.result {
		t.Errorf("result: Workers=1 got %d, Workers=%d got %d", seq.result, detWorkers, par.result)
	}
	if !reflect.DeepEqual(seq.mem, par.mem) {
		t.Error("final shared memory differs between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seq.report, par.report) {
		t.Errorf("cost reports differ:\nWorkers=1: %+v\nWorkers=%d: %+v", seq.report, detWorkers, par.report)
	}
	if !reflect.DeepEqual(seq.proc, par.proc) {
		t.Error("processor trace keys differ between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seq.cell, par.cell) {
		t.Error("cell trace keys differ between Workers=1 and Workers=N")
	}
}

// runDartLAC runs randomized dart-throwing linear approximate compaction.
// Both runs share a seed, so the host-side coin flips are identical and
// any divergence must come from the commit pipeline.
func runDartLAC(t *testing.T, workers int) (res compaction.DartResult, mem []int64, rep cost.Report) {
	t.Helper()
	const n, h = 1 << 9, 40
	in, err := workload.Sparse(7, n, h)
	if err != nil {
		t.Fatal(err)
	}
	m, err := qsmNew(workers, n, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	r, err := compaction.DartLAC(m, rand.New(rand.NewSource(42)), 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return *r, m.PeekRange(0, m.MemSize()), *m.Report()
}

func TestDeterminismDartLACQSM(t *testing.T) {
	seqRes, seqMem, seqRep := runDartLAC(t, 1)
	parRes, parMem, parRep := runDartLAC(t, detWorkers)
	if !reflect.DeepEqual(seqRes, parRes) {
		t.Errorf("dart LAC results differ:\nWorkers=1: %+v\nWorkers=%d: %+v", seqRes, detWorkers, parRes)
	}
	if !reflect.DeepEqual(seqMem, parMem) {
		t.Error("final shared memory differs between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Error("cost reports differ between Workers=1 and Workers=N")
	}
}

// runSampleSortBSP routes every key through the message pipeline twice
// (samples to the coordinator, keys to their buckets), which exercises the
// sharded routing and inbox recycling end to end.
func runSampleSortBSP(t *testing.T, workers int) (mem [][]int64, rep cost.Report) {
	t.Helper()
	const n, p = 1 << 10, 32
	keys := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = rng.Int63n(1 << 20)
	}
	priv := sortrank.PrivNeedSampleSortBSP(n, p)
	m, err := bsp.New(bsp.Config{P: p, G: 1, L: 4, N: n, PrivCells: priv, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scatter(keys); err != nil {
		t.Fatal(err)
	}
	if _, err := sortrank.SampleSortBSP(m, n); err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	mem = make([][]int64, p)
	for c := 0; c < p; c++ {
		mem[c] = make([]int64, priv)
		for a := 0; a < priv; a++ {
			mem[c][a] = m.Peek(c, a)
		}
	}
	return mem, *m.Report()
}

func TestDeterminismSampleSortBSP(t *testing.T) {
	seqMem, seqRep := runSampleSortBSP(t, 1)
	parMem, parRep := runSampleSortBSP(t, detWorkers)
	if !reflect.DeepEqual(seqMem, parMem) {
		t.Error("final private memories differ between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Errorf("cost reports differ:\nWorkers=1: %+v\nWorkers=%d: %+v", seqRep, detWorkers, parRep)
	}
}

// runParityGSM gathers all input atoms up a fan-in tree of Info merges;
// information sets are canonical (sorted, deduped), so cell contents must
// match exactly across worker counts.
func runParityGSM(t *testing.T, workers int) (res int64, cells []gsm.Info, rep cost.Report, proc, cell []string) {
	t.Helper()
	const n, fanin = 512, 4
	const gamma = 2
	bits := workload.Bits(11, n)
	r := (n + gamma - 1) / gamma
	m, err := gsm.New(gsm.Config{
		P: r, Alpha: 2, Beta: 3, Gamma: gamma, N: n,
		Cells:   gsmalg.CellsNeedGather(r),
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTracing()
	if err := m.LoadInputs(bits); err != nil {
		t.Fatal(err)
	}
	res, err = gsmalg.ParityGSM(m, n, fanin)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	cells = make([]gsm.Info, m.MemSize())
	for a := range cells {
		cells[a] = m.Peek(a)
	}
	tr := m.TraceLog()
	for p := 0; p < r; p++ {
		for ph := 0; ph <= tr.NumPhases(); ph++ {
			proc = append(proc, tr.ProcKey(p, ph))
		}
	}
	for c := 0; c < m.MemSize(); c++ {
		for ph := 0; ph <= tr.NumPhases(); ph++ {
			cell = append(cell, tr.CellKey(c, ph))
		}
	}
	return res, cells, *m.Report(), proc, cell
}

// eventStream runs a small algorithm on a freshly built machine with the
// given worker count and returns its observer event stream. The streams
// are the engine's strongest determinism artifact: every committed
// request, in order, with rendered payloads.
func eventStream(t *testing.T, build func(workers int) (Machine, func() error)) func(int) []string {
	t.Helper()
	return func(workers int) []string {
		m, run := build(workers)
		ev := Observe(m)
		if err := run(); err != nil {
			t.Fatal(err)
		}
		if err := m.Err(); err != nil {
			t.Fatal(err)
		}
		return ev.Lines()
	}
}

// TestDeterminismEventStreams asserts, for one algorithm per model, that
// the full observer event stream is identical between Workers=1 and
// Workers=N. It runs under -race in CI, so it also exercises the
// emit-from-coordinator contract.
func TestDeterminismEventStreams(t *testing.T) {
	cases := []struct {
		name  string
		build func(workers int) (Machine, func() error)
	}{
		{"QSM/parity-tree", func(workers int) (Machine, func() error) {
			const n = 256
			in := workload.Bits(5, n)
			m, err := qsm.New(qsm.Config{
				Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: 2 * n, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m, func() error {
				if err := m.Load(0, in); err != nil {
					return err
				}
				_, err := parity.TreeQSM(m, 0, n, 4)
				return err
			}
		}},
		{"QSM/parity-tree-bool", func(workers int) (Machine, func() error) {
			// Bit-packed twin of parity-tree: the same request sequence
			// flows through BitMem's word-sharded columnar commit.
			const n = 256
			in := workload.Bits(5, n)
			m, err := qsm.NewBool(qsm.Config{
				Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: 2 * n, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m, func() error {
				if err := m.Load(0, in); err != nil {
					return err
				}
				_, err := parity.TreeBool(m, 0, n, 4)
				return err
			}
		}},
		{"BSP/parity", func(workers int) (Machine, func() error) {
			const n, p = 256, 16
			in := workload.Bits(5, n)
			m, err := bsp.New(bsp.Config{
				P: p, G: 2, L: 8, N: n,
				PrivCells: parity.PrivNeedBSP(n, p), Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m, func() error {
				if err := m.Scatter(in); err != nil {
					return err
				}
				_, err := parity.RunBSP(m, n, 4)
				return err
			}
		}},
		{"BSP/sample-sort", func(workers int) (Machine, func() error) {
			// Sample sort routes every key with SendBatch, so this case
			// drives the columnar StageBatch path through the full
			// routing commit.
			const n, p = 512, 16
			keys := make([]int64, n)
			rng := rand.New(rand.NewSource(9))
			for i := range keys {
				keys[i] = rng.Int63n(1 << 16)
			}
			m, err := bsp.New(bsp.Config{
				P: p, G: 1, L: 4, N: n,
				PrivCells: sortrank.PrivNeedSampleSortBSP(n, p), Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m, func() error {
				if err := m.Scatter(keys); err != nil {
					return err
				}
				_, err := sortrank.SampleSortBSP(m, n)
				return err
			}
		}},
		{"GSM/parity-gather", func(workers int) (Machine, func() error) {
			const n, gamma = 128, 2
			in := workload.Bits(5, n)
			r := (n + gamma - 1) / gamma
			m, err := gsm.New(gsm.Config{
				P: r, Alpha: 2, Beta: 3, Gamma: gamma, N: n,
				Cells: gsmalg.CellsNeedGather(r), Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			return m, func() error {
				if err := m.LoadInputs(in); err != nil {
					return err
				}
				_, err := gsmalg.ParityGSM(m, n, 4)
				return err
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stream := eventStream(t, tc.build)
			seq := stream(1)
			par := stream(detWorkers)
			if len(seq) == 0 {
				t.Fatal("empty event stream")
			}
			if !reflect.DeepEqual(seq, par) {
				for i := range seq {
					if i >= len(par) {
						break
					}
					if seq[i] != par[i] {
						t.Fatalf("event streams diverge at line %d:\nWorkers=1: %q\nWorkers=%d: %q",
							i, seq[i], detWorkers, par[i])
					}
				}
				t.Fatalf("event stream lengths differ: %d vs %d", len(seq), len(par))
			}
		})
	}
}

func TestDeterminismParityGSM(t *testing.T) {
	seqRes, seqCells, seqRep, seqProc, seqCell := runParityGSM(t, 1)
	parRes, parCells, parRep, parProc, parCell := runParityGSM(t, detWorkers)
	if seqRes != parRes {
		t.Errorf("result: Workers=1 got %d, Workers=%d got %d", seqRes, detWorkers, parRes)
	}
	if !reflect.DeepEqual(seqCells, parCells) {
		t.Error("final cells differ between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Errorf("cost reports differ:\nWorkers=1: %+v\nWorkers=%d: %+v", seqRep, detWorkers, parRep)
	}
	if !reflect.DeepEqual(seqProc, parProc) {
		t.Error("processor trace keys differ between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seqCell, parCell) {
		t.Error("cell trace keys differ between Workers=1 and Workers=N")
	}
}
