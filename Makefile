# Convenience targets; everything here is a thin alias over the go tool.

.PHONY: build test race lint lint-sarif baseline

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Whole-tree static analysis, gated on the suppression-debt ledger.
lint:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json ./...

# Same run, but also emit the SARIF report CI uploads as an artifact.
lint-sarif:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json -sarif reprolint.sarif ./...

# Regenerate the suppression-debt ledger from the current findings.
baseline:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json -write-baseline ./...
