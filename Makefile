# Convenience targets; everything here is a thin alias over the go tool.

.PHONY: build test race lint lint-sarif baseline cfg-debug sweep-smoke bench bench-gate

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Whole-tree static analysis, gated on the suppression-debt ledger.
lint:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json ./...

# Same run, but also emit the SARIF report CI uploads as an artifact.
lint-sarif:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json -sarif reprolint.sarif ./...

# Regenerate the suppression-debt ledger from the current findings.
baseline:
	go run ./cmd/reprolint -baseline .reprolint-baseline.json -write-baseline ./...

# Dump the control-flow graph the dataflow and concurrency analyzers
# build for one function, e.g.
#   make cfg-debug FN=internal/engine/bitmem.go:commit
# or, to see spawn sites, select clause kinds and defer-unlock edges on
# the distributed coordinator:
#   make cfg-debug FN=internal/backend/proc/coord.go:acceptLoop
cfg-debug:
	go run ./cmd/reprolint -cfg-debug $(FN)

# Small cross-model grid (every model × algorithm plus fault and
# experiment cells) through the sweep runner, race-enabled.
sweep-smoke:
	go run -race ./cmd/parsim sweep -preset smoke -o /tmp/sweep_smoke.jsonl -csv /tmp/sweep_smoke.csv

# Re-measure the bench snapshot (model metrics + ns/op + allocs/op for
# the bench_test.go hot paths) and overwrite the committed trajectory.
bench:
	go run ./cmd/parsim sweep -bench -bench-o BENCH_pr7.json

# Same measurement, but gate against the committed snapshot: exact model
# metrics, 3x ns/op tolerance, 1.25x allocs/op tolerance.
bench-gate:
	go run ./cmd/parsim sweep -bench -bench-baseline BENCH_pr7.json
