package repro

// Equivalence suite for the columnar commit engine: the batch submission
// API and the bit-packed Boolean memory are drop-in replacements for the
// per-cell word-valued path. Two contracts are asserted end to end:
//
//  1. per-cell vs batch — an algorithm that issues its requests through
//     ReadBlock/WriteBatch/Submit produces the same cost report and the
//     same observer event stream as the per-cell loop it replaced;
//  2. word vs bit — a Boolean algorithm run on qsm.BoolMachine (BitMem)
//     produces byte-identical streams and reports to the word-valued
//     run over the same 0/1 input.

import (
	"reflect"
	"testing"

	"repro/internal/boolor"
	"repro/internal/cost"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// wordRun executes a word-valued QSM algorithm under observation.
func wordRun(t *testing.T, n, memCells, workers int, in []int64,
	alg func(m *qsm.Machine) (int, error)) (int64, []string, cost.Report) {
	t.Helper()
	m, err := qsm.New(qsm.Config{
		Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: memCells, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := Observe(m)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := alg(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return m.Peek(out), ev.Lines(), *m.Report()
}

// boolRun executes the same algorithm on the bit-packed machine.
func boolRun(t *testing.T, n, memCells, workers int, in []int64,
	alg func(m *qsm.BoolMachine) (int, error)) (int64, []string, cost.Report) {
	t.Helper()
	m, err := qsm.NewBool(qsm.Config{
		Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: memCells, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := Observe(m)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := alg(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return m.Peek(out), ev.Lines(), *m.Report()
}

func assertSameRun(t *testing.T, label string,
	wRes int64, wEv []string, wRep cost.Report,
	bRes int64, bEv []string, bRep cost.Report) {
	t.Helper()
	if wRes != bRes {
		t.Errorf("%s: results differ: %d vs %d", label, wRes, bRes)
	}
	if !reflect.DeepEqual(wEv, bEv) {
		for i := range wEv {
			if i >= len(bEv) || wEv[i] != bEv[i] {
				t.Fatalf("%s: event streams diverge at line %d:\nword: %q\nbit:  %q",
					label, i, wEv[i], bEv[i])
			}
		}
		t.Fatalf("%s: event stream lengths differ: %d vs %d", label, len(wEv), len(bEv))
	}
	if !reflect.DeepEqual(wRep.Phases, bRep.Phases) {
		t.Errorf("%s: per-phase costs differ:\nword: %+v\nbit:  %+v", label, wRep.Phases, bRep.Phases)
	}
	if wRep.TotalTime != bRep.TotalTime || wRep.Work != bRep.Work ||
		wRep.Rounds != bRep.Rounds || wRep.AllRounds != bRep.AllRounds {
		t.Errorf("%s: report summaries differ:\nword: %+v\nbit:  %+v", label, wRep, bRep)
	}
}

// TestParityWordBitEquivalence runs the fan-in tree parity algorithm on
// the word-valued and bit-packed machines over the same input: one bit
// per cell versus one int64 per cell, same costs, same stream.
func TestParityWordBitEquivalence(t *testing.T) {
	const n, fanin = 1 << 9, 8
	in := workload.Bits(1998, n)
	for _, workers := range []int{1, 8} {
		wRes, wEv, wRep := wordRun(t, n, 2*n, workers, in, func(m *qsm.Machine) (int, error) {
			return parity.TreeQSM(m, 0, n, fanin)
		})
		bRes, bEv, bRep := boolRun(t, n, 2*n, workers, in, func(m *qsm.BoolMachine) (int, error) {
			return parity.TreeBool(m, 0, n, fanin)
		})
		assertSameRun(t, "parity tree", wRes, wEv, wRep, bRes, bEv, bRep)
		if want := workload.Parity(in); wRes != want {
			t.Errorf("parity = %d, want %d", wRes, want)
		}
	}
}

// TestORWordBitEquivalence does the same for the OR read-combine tree.
func TestORWordBitEquivalence(t *testing.T) {
	const n, fanin = 300, 5 // deliberately non-power-of-two: ragged last nodes
	in, err := workload.Sparse(7, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]int64, n)
	for i, v := range in {
		if v != 0 {
			bits[i] = 1
		}
	}
	wRes, wEv, wRep := wordRun(t, n, 2*n, 1, bits, func(m *qsm.Machine) (int, error) {
		return boolor.ReadTree(m, 0, n, fanin)
	})
	bRes, bEv, bRep := boolRun(t, n, 2*n, 1, bits, func(m *qsm.BoolMachine) (int, error) {
		return boolor.ReadTreeBool(m, 0, n, fanin)
	})
	assertSameRun(t, "or tree", wRes, wEv, wRep, bRes, bEv, bRep)
	if wRes != 1 {
		t.Errorf("OR of a 3-item sparse input = %d, want 1", wRes)
	}
}

// TestBoolMachineDeterminism: Workers=1 vs Workers=N byte-equal streams
// through the bit-packed machine and its batch ReadWord path.
func TestBoolMachineDeterminism(t *testing.T) {
	const n, fanin = 1 << 10, 16
	in := workload.Bits(5, n)
	run := func(workers int) ([]string, cost.Report, int64) {
		res, ev, rep := boolRun(t, n, 2*n, workers, in, func(m *qsm.BoolMachine) (int, error) {
			return parity.TreeBool(m, 0, n, fanin)
		})
		return ev, rep, res
	}
	seqEv, seqRep, seqRes := run(1)
	parEv, parRep, parRes := run(detWorkers)
	if seqRes != parRes {
		t.Errorf("results differ: %d vs %d", seqRes, parRes)
	}
	if !reflect.DeepEqual(seqEv, parEv) {
		t.Error("event streams differ between Workers=1 and Workers=N")
	}
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Error("cost reports differ between Workers=1 and Workers=N")
	}
}
