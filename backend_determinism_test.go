package repro

// Backend determinism suite: the commit-barrier backend is a pure
// transport choice. The same algorithm on the same machine must produce
// byte-identical event streams, cost reports and final memory whether
// the barrier merge runs in-process or across N worker subprocesses —
// at every worker-process count.

import (
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/proc"
	"repro/internal/boolor"
	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// The proc backend re-execs this test binary as its worker processes;
// MaybeWorker hijacks those re-execs before the test runner starts.
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	os.Exit(m.Run())
}

// newProcBackend builds a proc coordinator with w worker subprocesses,
// closed when the test finishes.
func newProcBackend(t *testing.T, w int) engine.Backend {
	t.Helper()
	bk, err := backend.New(backend.Config{
		Name: "proc", ProcWorkers: w,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bk.Close() })
	return bk
}

// backendRun snapshots everything observable about one run.
type backendRun struct {
	result int64
	stream []string
	mem    []int64
	report cost.Report
}

// procWorkerCounts are the worker-process fan-outs compared against the
// in-process baseline.
var procWorkerCounts = []int{1, 4}

// TestBackendDeterminism runs one algorithm per family — parity tree,
// Boolean OR contention tree, dart-throwing compaction (all QSM), and
// the BSP parity tree for the routing barrier — on the in-process
// backend and on proc backends at 1 and 4 worker processes, and demands
// byte-identical observables.
func TestBackendDeterminism(t *testing.T) {
	const n = 256
	cases := []struct {
		name string
		run  func(t *testing.T, bk engine.Backend) backendRun
	}{
		{"QSM/parity-tree", func(t *testing.T, bk engine.Backend) backendRun {
			in := workload.Bits(5, n)
			m, err := qsm.New(qsm.Config{
				Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: 2 * n, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ev := Observe(m)
			if bk != nil {
				m.SetBackend(bk)
			}
			if err := m.Load(0, in); err != nil {
				t.Fatal(err)
			}
			addr, err := parity.TreeQSM(m, 0, n, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			return backendRun{
				result: m.Peek(addr), stream: ev.Lines(),
				mem: m.PeekRange(0, m.MemSize()), report: *m.Report(),
			}
		}},
		{"QSM/boolor-contention", func(t *testing.T, bk engine.Backend) backendRun {
			in := workload.Bits(6, n)
			m, err := qsm.New(qsm.Config{
				Rule: cost.RuleCRQW, P: n, G: 2, N: n, MemCells: 2 * n, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ev := Observe(m)
			if bk != nil {
				m.SetBackend(bk)
			}
			if err := m.Load(0, in); err != nil {
				t.Fatal(err)
			}
			addr, err := boolor.ContentionTree(m, 0, n, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			return backendRun{
				result: m.Peek(addr), stream: ev.Lines(),
				mem: m.PeekRange(0, m.MemSize()), report: *m.Report(),
			}
		}},
		{"QSM/dart-compaction", func(t *testing.T, bk engine.Backend) backendRun {
			in, err := workload.Sparse(7, n, n/8)
			if err != nil {
				t.Fatal(err)
			}
			m, err := qsm.New(qsm.Config{
				Rule: cost.RuleQSM, P: n, G: 1, N: n, MemCells: n, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ev := Observe(m)
			if bk != nil {
				m.SetBackend(bk)
			}
			if err := m.Load(0, in); err != nil {
				t.Fatal(err)
			}
			res, err := compaction.DartLAC(m, rand.New(rand.NewSource(42)), 0, n)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			return backendRun{
				result: int64(res.Rounds), stream: ev.Lines(),
				mem: m.PeekRange(0, m.MemSize()), report: *m.Report(),
			}
		}},
		{"BSP/parity-tree", func(t *testing.T, bk engine.Backend) backendRun {
			const p = 16
			in := workload.Bits(5, n)
			m, err := bsp.New(bsp.Config{
				P: p, G: 2, L: 8, N: n,
				PrivCells: parity.PrivNeedBSP(n, p), Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ev := Observe(m)
			if bk != nil {
				m.SetBackend(bk)
			}
			if err := m.Scatter(in); err != nil {
				t.Fatal(err)
			}
			got, err := parity.RunBSP(m, n, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Err(); err != nil {
				t.Fatal(err)
			}
			return backendRun{result: got, stream: ev.Lines(), report: *m.Report()}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.run(t, nil)
			if len(base.stream) == 0 {
				t.Fatal("empty baseline event stream")
			}
			for _, w := range procWorkerCounts {
				got := tc.run(t, newProcBackend(t, w))
				if got.result != base.result {
					t.Errorf("proc×%d: result %d, inproc %d", w, got.result, base.result)
				}
				if !reflect.DeepEqual(got.stream, base.stream) {
					for i := range base.stream {
						if i >= len(got.stream) || got.stream[i] != base.stream[i] {
							t.Fatalf("proc×%d: event streams diverge at line %d:\ninproc: %q\nproc:   %q",
								w, i, base.stream[i], got.stream[min(i, len(got.stream)-1)])
						}
					}
					t.Fatalf("proc×%d: stream lengths differ: inproc %d, proc %d",
						w, len(base.stream), len(got.stream))
				}
				if !reflect.DeepEqual(got.mem, base.mem) {
					t.Errorf("proc×%d: final memory differs from inproc", w)
				}
				if !reflect.DeepEqual(got.report, base.report) {
					t.Errorf("proc×%d: cost reports differ:\ninproc: %+v\nproc:   %+v",
						w, base.report, got.report)
				}
			}
		})
	}
}
