package repro

import (
	"fmt"
	"math/rand"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func errUnknownExperiment(id string) error {
	return fmt.Errorf("repro: unknown experiment %q (see Experiments())", id)
}
