// Package repro is a full, executable reproduction of MacKenzie &
// Ramachandran, "Computational Bounds for Fundamental Problems on
// General-Purpose Parallel Models" (SPAA 1998).
//
// The paper proves lower bounds — and gives matching or near-matching
// algorithms — for Linear Approximate Compaction, OR and Parity on four
// machine models: the shared-memory QSM and s-QSM, the distributed-memory
// BSP, and the stronger lower-bound model GSM. This package is the public
// face of the reproduction:
//
//   - Machine constructors (NewQSM, NewSQSM, NewCRQW, NewBSP, NewGSM) build
//     cost-accurate simulators charging exactly the paper's phase/superstep
//     cost formulas, with contention accounting and round classification.
//   - Problem runners (ParityTree, ParityGadget, ORContentionTree, …)
//     execute the Section 8 upper-bound algorithms on those simulators and
//     return verified answers together with full cost reports.
//   - Bound evaluators (Bounds, BoundByID) expose every Table 1 cell as an
//     executable formula.
//   - The experiment engine (Experiments, RunExperiment, RenderTables)
//     regenerates the paper's evaluation: measured algorithm cost versus
//     predicted bound across input sweeps, for all four sub-tables.
//   - The proof machinery (package internal/adversary, internal/boolfn) is
//     reachable through AnalyzeKnowledge and the Fn Boolean-function
//     algebra for degree-argument experiments.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/boolfn"
	"repro/internal/boolor"
	"repro/internal/bounds"
	"repro/internal/broadcast"
	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/gsm"
	"repro/internal/gsmalg"
	"repro/internal/parity"
	"repro/internal/prefix"
	"repro/internal/qsm"
	"repro/internal/sortrank"
	"repro/internal/workload"
)

// Machine and accounting types, re-exported for users of the public API.
type (
	// Machine is the model-generic read side every simulator satisfies
	// (P, N, Err, Report, AddObserver). Code that only inspects a run —
	// sweep drivers, renderers, observers — should accept a Machine
	// rather than a concrete machine type.
	Machine = engine.Machine
	// Observer receives the structured per-phase event stream of a
	// machine: phase starts, committed requests in deterministic order,
	// and phase costs. The stream is byte-identical for every Workers
	// setting.
	Observer = engine.Observer
	// Request is one observed memory request or message send.
	Request = engine.Request
	// EventLog is a ready-made Observer that records the event stream and
	// renders it to text lines on demand; attach one with Observe.
	EventLog = engine.EventLog
	// QSMMachine is a shared-memory machine of the QSM family (QSM, s-QSM,
	// QRQW, CRQW — selected by the constructor used).
	QSMMachine = qsm.Machine
	// QSMCtx is the per-processor handle inside a QSM phase.
	QSMCtx = qsm.Ctx
	// BSPMachine is a BSP machine.
	BSPMachine = bsp.Machine
	// BSPCtx is the per-component handle inside a superstep.
	BSPCtx = bsp.Ctx
	// GSMMachine is the paper's lower-bound model.
	GSMMachine = gsm.Machine
	// GSMCtx is the per-processor handle inside a GSM phase.
	GSMCtx = gsm.Ctx
	// Report aggregates phase costs, total model time, work and rounds.
	Report = cost.Report
	// PhaseCost is the per-phase cost record.
	PhaseCost = cost.PhaseCost
	// BoundEntry is one Table 1 cell (formula + provenance).
	BoundEntry = bounds.Entry
	// BoundArgs parameterises a bound formula.
	BoundArgs = bounds.Args
	// Experiment binds a Table 1 row to a measurement procedure.
	Experiment = core.Experiment
	// ExperimentResult is a completed sweep.
	ExperimentResult = core.Result
	// Fn is an exact Boolean/integer function on {0,1}^n with the degree
	// and certificate machinery of Section 2.5.
	Fn = boolfn.Fn
)

// NewQSM builds a QSM machine: phase cost max(m_op, g·m_rw, κ).
func NewQSM(p int, g int64, n, memCells int) (*QSMMachine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: g, N: n, MemCells: memCells})
}

// NewSQSM builds an s-QSM machine: phase cost max(m_op, g·m_rw, g·κ).
func NewSQSM(p int, g int64, n, memCells int) (*QSMMachine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleSQSM, P: p, G: g, N: n, MemCells: memCells})
}

// NewQRQW builds a QRQW PRAM (the QSM with g = 1).
func NewQRQW(p int, n, memCells int) (*QSMMachine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: 1, N: n, MemCells: memCells})
}

// NewCRQW builds a QSM variant with unit-time concurrent reads (read
// contention is free) — the model of the Θ(g·log n / log g) Parity row.
func NewCRQW(p int, g int64, n, memCells int) (*QSMMachine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleCRQW, P: p, G: g, N: n, MemCells: memCells})
}

// NewQSMGD builds a QSM(g,d) machine (the [10, 21] generalization; Claim
// 2.2): phase cost max(m_op, g·m_rw, d·κ). QSM(g,1) is the QSM and
// QSM(g,g) the s-QSM.
func NewQSMGD(p int, g, d int64, n, memCells int) (*QSMMachine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleQSMGD, P: p, G: g, D: d, N: n, MemCells: memCells})
}

// NewBSP builds a BSP machine: superstep cost max(w, g·h, L), L ≥ g.
func NewBSP(p int, g, l int64, n, privCells int) (*BSPMachine, error) {
	return bsp.New(bsp.Config{P: p, G: g, L: l, N: n, PrivCells: privCells})
}

// NewGSM builds the paper's lower-bound model with parameters α, β, γ.
func NewGSM(p int, alpha, beta, gamma int64, n, cells int) (*GSMMachine, error) {
	return gsm.New(gsm.Config{P: p, Alpha: alpha, Beta: beta, Gamma: gamma, N: n, Cells: cells})
}

// Observe attaches a fresh textual event log to a machine (any model) and
// returns it; call before running phases. The log records the structured
// per-phase event stream — phase starts, committed requests in
// deterministic order, and phase costs — and is identical for every
// Workers setting.
func Observe(m Machine) *EventLog {
	ev := &EventLog{}
	m.AddObserver(ev)
	return ev
}

// --- algorithms (Section 8 upper bounds) --------------------------------------

// ParityTree runs the k-ary XOR tree on a QSM-family machine over the bits
// at [base, base+n); returns the address of the result cell.
func ParityTree(m *QSMMachine, base, n, fanin int) (int, error) {
	return parity.TreeQSM(m, base, n, fanin)
}

// ParityGadget runs the contention-gadget parity tree (groups of groupBits
// bits resolved by checker processors); the QSM configuration is
// groupBits ≈ log₂ g, the CRQW configuration groupBits up to g.
func ParityGadget(m *QSMMachine, base, n, groupBits int) (int, error) {
	return parity.GadgetQSM(m, base, n, groupBits)
}

// ParityBSP runs the fan-in tree parity on a BSP machine over the
// block-distributed input and returns the answer.
func ParityBSP(m *BSPMachine, n, fanin int) (int64, error) {
	return parity.RunBSP(m, n, fanin)
}

// ParityBSPPrivCells returns the private memory ParityBSP needs.
func ParityBSPPrivCells(n, p int) int { return parity.PrivNeedBSP(n, p) }

// ORContentionTree runs the write-contention OR tree (fan-in g is the
// O((g/log g)·log n) deterministic QSM algorithm).
func ORContentionTree(m *QSMMachine, base, n, fanin int) (int, error) {
	return boolor.ContentionTree(m, base, n, fanin)
}

// ORReadTree runs the k-ary read-combine OR tree (the s-QSM algorithm).
func ORReadTree(m *QSMMachine, base, n, fanin int) (int, error) {
	return boolor.ReadTree(m, base, n, fanin)
}

// ORBSP runs the BSP OR tree and returns the answer.
func ORBSP(m *BSPMachine, n, fanin int) (int64, error) {
	return boolor.RunBSP(m, n, fanin)
}

// ORBSPPrivCells returns the private memory ORBSP needs.
func ORBSPPrivCells(n, p int) int { return boolor.PrivNeedBSP(n, p) }

// ORRandomized runs the randomized low-contention OR (the Section 8
// adaptation of [9]; run on a CRQW machine for the w.h.p.
// O(g·log n/log log n) shape).
func ORRandomized(m *QSMMachine, seed int64, base, n int) (int, error) {
	return boolor.RandomizedOR(m, newRand(seed), base, n)
}

// ParityGSM computes parity on the GSM lower-bound model itself via the
// α-ary information gather tree (the upper-bound side of Theorem 3.1).
// Load the machine with GSMMachine.LoadInputs first.
func ParityGSM(m *GSMMachine, n, fanin int) (int64, error) {
	return gsmalg.ParityGSM(m, n, fanin)
}

// ORGSM computes OR on the GSM by the same information gather.
func ORGSM(m *GSMMachine, n, fanin int) (int64, error) {
	return gsmalg.ORGSM(m, n, fanin)
}

// GSMGatherCells returns the cell count a GSM machine needs for the
// gather-tree algorithms over r = ⌈n/γ⌉ loaded cells.
func GSMGatherCells(r int) int { return gsmalg.CellsNeedGather(r) }

// Broadcast spreads the value in cell src to n fresh cells on a QSM-family
// machine using the [1] queued-read doubling with the given fan-out
// (fan-out g is optimal on the QSM); returns the base of the n cells.
func Broadcast(m *QSMMachine, src, n, fanout int) (int, error) {
	return broadcast.RunQSM(m, src, n, fanout)
}

// LoadBalance redistributes the objects counted in cells [base, base+n)
// (counts ≤ maxPer each) so every destination gets O(1 + h/n); see
// internal/compaction.LoadBalance for the output layout.
func LoadBalance(m *QSMMachine, base, n, fanin, maxPer int) (out, h int, err error) {
	return compaction.LoadBalance(m, base, n, fanin, maxPer)
}

// PrefixSums computes inclusive prefix sums with a k-ary tree and returns
// the base of the n-cell result.
func PrefixSums(m *QSMMachine, base, n, fanin int) (int, error) {
	return prefix.RunQSM(m, base, n, fanin)
}

// CompactExact compacts the items of [base, base+n) stably into [out,
// out+k) via prefix sums (the deterministic Section 8 algorithm).
func CompactExact(m *QSMMachine, base, n, fanin int) (out, k int, err error) {
	return compaction.DetLAC(m, base, n, fanin)
}

// DartCompactionResult reports a randomized LAC run.
type DartCompactionResult = compaction.DartResult

// CompactDarts runs the randomized dart-throwing LAC of [9] (adapted):
// every item ends up in O(#items) space; see DartCompactionResult.
func CompactDarts(m *QSMMachine, seed int64, base, n int) (*DartCompactionResult, error) {
	return compaction.DartLAC(m, newRand(seed), base, n)
}

// ListRank computes list ranks by pointer jumping; returns the rank array
// base.
func ListRank(m *QSMMachine, base, n int) (int, error) {
	return sortrank.ListRankQSM(m, base, n)
}

// ParityViaListRanking demonstrates the paper's size-preserving reduction
// from Parity to list ranking.
func ParityViaListRanking(m *QSMMachine, base, n int) (int64, error) {
	return sortrank.ParityViaList(m, base, n)
}

// SampleSortBSP sorts the block-distributed input with one-round regular
// sample sort; returns the private offset of each component's sorted
// bucket (length at offset−1).
func SampleSortBSP(m *BSPMachine, n int) (int, error) {
	return sortrank.SampleSortBSP(m, n)
}

// SampleSortBSPPrivCells returns the private memory SampleSortBSP needs.
func SampleSortBSPPrivCells(n, p int) int { return sortrank.PrivNeedSampleSortBSP(n, p) }

// PaddedSortBSP sorts U[0,1] fixed-point values into a padded array of
// size padFactor·n distributed over the components (Section 6's Padded
// Sort); returns the private offset of each component's segment.
func PaddedSortBSP(m *BSPMachine, n, padFactor int) (int, error) {
	return compaction.PaddedSortBSP(m, n, padFactor)
}

// PaddedSortBSPPrivCells returns the private memory PaddedSortBSP needs.
func PaddedSortBSPPrivCells(n, p, padFactor int) int {
	return compaction.PrivNeedPaddedSortBSP(n, p, padFactor)
}

// Uniform01 returns the Padded Sort workload: n fixed-point U[0,1] draws
// with denominator Uniform01Denom.
func Uniform01(seed int64, n int) []int64 { return workload.Uniform01(seed, n) }

// Uniform01Denom is the fixed-point denominator of Uniform01 values.
const Uniform01Denom = workload.Denom01

// --- bounds and experiments ----------------------------------------------------

// Bounds returns every Table 1 cell as an executable formula with
// provenance.
func Bounds() []BoundEntry { return bounds.Registry }

// BoundByID looks up one Table 1 cell (e.g. "T2.Parity.det").
func BoundByID(id string) *BoundEntry { return bounds.ByID(id) }

// Experiments returns the registered experiments, one per Table 1 row.
func Experiments() []*Experiment { return core.Experiments() }

// RunExperiment executes one Table 1 row's sweep.
func RunExperiment(id string, seed int64) (*ExperimentResult, error) {
	e := core.ExperimentByID(id)
	if e == nil {
		return nil, errUnknownExperiment(id)
	}
	return e.Run(seed)
}

// RenderTables regenerates all four sub-tables of Table 1 (measured vs
// predicted) as text.
func RenderTables(seed int64) (string, error) { return core.RenderAll(seed) }

// RenderExperiment formats one completed experiment.
func RenderExperiment(r *ExperimentResult) string { return core.RenderResult(r) }

// RenderTheoremSweeps renders the GSM-level theorem experiments (Theorem
// 3.1's gather shape and Theorem 6.3's GSM(h) relaxed rounds) that feed
// the Table 1 rows through Claim 2.1.
func RenderTheoremSweeps(seed int64) (string, error) { return core.TheoremSweeps(seed) }

// RenderParamSweeps renders the g and L/g parameter sweeps (the log g and
// log(L/g) denominators of Table 1) at fixed n.
func RenderParamSweeps(seed int64) (string, error) { return core.ParamSweeps(seed) }

// ExportTables runs every Table 1 experiment and returns the sweep points
// in a machine-readable format ("csv" or "json").
func ExportTables(seed int64, format string) (string, error) {
	results, err := core.RunAll(seed)
	if err != nil {
		return "", err
	}
	switch format {
	case "csv":
		return core.ExportCSV(results)
	case "json":
		return core.ExportJSON(results)
	default:
		return "", fmt.Errorf("repro: unknown export format %q (csv|json)", format)
	}
}

// ShapeOf fits a completed experiment's growth on the log₂ n axis,
// returning the measured and bound slopes (Θ rows have a constant ratio).
func ShapeOf(r *ExperimentResult) (core.Shape, error) { return core.ShapeOf(r) }

// --- proof machinery ------------------------------------------------------------

// ParityFn, ORFn and ANDFn expose the exact Boolean functions whose full
// degree (Fact 2.1/2.2) anchors Theorems 3.1 and 7.2.
func ParityFn(n int) *Fn { return boolfn.Parity(n) }

// ORFn returns the n-variable OR function.
func ORFn(n int) *Fn { return boolfn.OR(n) }

// ANDFn returns the n-variable AND function.
func ANDFn(n int) *Fn { return boolfn.AND(n) }

// MajorityFn returns the n-variable majority function.
func MajorityFn(n int) *Fn { return boolfn.Majority(n) }

// KnowledgeAnalysis is the exact Section 5 trace/knowledge ledger of an
// algorithm, computed by exhaustive input enumeration.
type KnowledgeAnalysis = adversary.Analysis

// AnalyzeKnowledge runs a traced GSM algorithm on all 2^n inputs and
// returns the exact Know/AffProc/AffCell/state-degree ledger of Section 5.
func AnalyzeKnowledge(runner func(bits []int64) (*GSMMachine, error), n, procs, cells int) (*KnowledgeAnalysis, error) {
	return adversary.AnalyzeKnowledge(func(bits []int64) (adversary.TraceSource, error) {
		m, err := runner(bits)
		if err != nil {
			return nil, err
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		if tr := m.TraceLog(); tr != nil {
			return tr, nil
		}
		return nil, nil
	}, n, procs, cells)
}

// AnalyzeKnowledgeQSM is AnalyzeKnowledge for traced QSM-family runs — the
// executable form of the Theorem 3.3 information-spread argument (an input
// bit reaches at most fan-out^T entities in T phases).
func AnalyzeKnowledgeQSM(runner func(bits []int64) (*QSMMachine, error), n, procs, cells int) (*KnowledgeAnalysis, error) {
	return adversary.AnalyzeKnowledge(func(bits []int64) (adversary.TraceSource, error) {
		m, err := runner(bits)
		if err != nil {
			return nil, err
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		if tr := m.TraceLog(); tr != nil {
			return tr, nil
		}
		return nil, nil
	}, n, procs, cells)
}

// --- workloads -------------------------------------------------------------------

// RandomBits returns n seeded random bits (the Parity/OR workload).
func RandomBits(seed int64, n int) []int64 { return workload.Bits(seed, n) }

// SparseItems returns an n-cell array with h tagged items (the LAC
// workload).
func SparseItems(seed int64, n, h int) ([]int64, error) { return workload.Sparse(seed, n, h) }

// ReferenceParity and ReferenceOr compute the scalar reference answers.
func ReferenceParity(bits []int64) int64 { return workload.Parity(bits) }

// ReferenceOr returns the OR of the bit vector.
func ReferenceOr(bits []int64) int64 { return workload.Or(bits) }
