package repro

// The benchmark harness regenerates every row of the paper's Table 1:
// each BenchmarkT<table>_<model>_<problem> executes the matching Section 8
// algorithm on the cost simulator at a representative size and reports
//
//	modelTime  — the simulated machine time charged by the cost rules
//	bound      — the Table 1 lower-bound formula at that size
//	ratio      — modelTime/bound (flat across sizes for the Θ rows;
//	             run cmd/tables for the full sweeps)
//	rounds     — the phase count, for the rounds-table benchmarks
//
// alongside the usual ns/op of the simulation itself. Simulator
// microbenchmarks at the bottom measure the harness's own throughput.

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gsm"
	"repro/internal/qsm"
)

// benchExperiment runs one registered Table 1 experiment at a single
// sweep point inside the benchmark loop.
func benchExperiment(b *testing.B, id string, n int) {
	b.Helper()
	e := core.ExperimentByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	args := e.Args(n)
	entry := BoundByID(id)
	var measured float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		measured, _, err = e.Measure(n, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bound := entry.Eval(args)
	b.ReportMetric(measured, e.Quantity)
	b.ReportMetric(bound, "bound")
	if bound > 0 {
		b.ReportMetric(measured/bound, "ratio")
	}
}

// --- Table 1a: time lower bounds, QSM ---

func BenchmarkT1_QSM_LAC_Det(b *testing.B)        { benchExperiment(b, "T1.LAC.det", 1<<12) }
func BenchmarkT1_QSM_LAC_Rand(b *testing.B)       { benchExperiment(b, "T1.LAC.rand", 1<<12) }
func BenchmarkT1_QSM_LAC_RandNProcs(b *testing.B) { benchExperiment(b, "T1.LAC.rand.nprocs", 1<<12) }
func BenchmarkT1_QSM_OR_Det(b *testing.B)         { benchExperiment(b, "T1.OR.det", 1<<12) }
func BenchmarkT1_QSM_OR_Rand(b *testing.B)        { benchExperiment(b, "T1.OR.rand", 1<<12) }
func BenchmarkT1_QSM_Parity_Det(b *testing.B)     { benchExperiment(b, "T1.Parity.det", 1<<11) }
func BenchmarkT1_QSM_Parity_Rand(b *testing.B)    { benchExperiment(b, "T1.Parity.rand", 1<<11) }

// --- Table 1b: time lower bounds, s-QSM ---

func BenchmarkT2_SQSM_LAC_Det(b *testing.B)     { benchExperiment(b, "T2.LAC.det", 1<<12) }
func BenchmarkT2_SQSM_LAC_Rand(b *testing.B)    { benchExperiment(b, "T2.LAC.rand", 1<<12) }
func BenchmarkT2_SQSM_OR_Det(b *testing.B)      { benchExperiment(b, "T2.OR.det", 1<<12) }
func BenchmarkT2_SQSM_OR_Rand(b *testing.B)     { benchExperiment(b, "T2.OR.rand", 1<<12) }
func BenchmarkT2_SQSM_Parity_Det(b *testing.B)  { benchExperiment(b, "T2.Parity.det", 1<<12) }
func BenchmarkT2_SQSM_Parity_Rand(b *testing.B) { benchExperiment(b, "T2.Parity.rand", 1<<12) }

// --- Table 1c: time lower bounds, BSP ---

func BenchmarkT3_BSP_LAC_Det(b *testing.B)     { benchExperiment(b, "T3.LAC.det", 1<<12) }
func BenchmarkT3_BSP_LAC_Rand(b *testing.B)    { benchExperiment(b, "T3.LAC.rand", 1<<12) }
func BenchmarkT3_BSP_OR_Det(b *testing.B)      { benchExperiment(b, "T3.OR.det", 1<<12) }
func BenchmarkT3_BSP_OR_Rand(b *testing.B)     { benchExperiment(b, "T3.OR.rand", 1<<12) }
func BenchmarkT3_BSP_Parity_Det(b *testing.B)  { benchExperiment(b, "T3.Parity.det", 1<<12) }
func BenchmarkT3_BSP_Parity_Rand(b *testing.B) { benchExperiment(b, "T3.Parity.rand", 1<<12) }

// --- Table 1d: rounds for p-processor algorithms ---

func BenchmarkT4_Rounds_LAC_QSM(b *testing.B)     { benchExperiment(b, "T4.LAC.qsm", 1<<12) }
func BenchmarkT4_Rounds_LAC_SQSM(b *testing.B)    { benchExperiment(b, "T4.LAC.sqsm", 1<<12) }
func BenchmarkT4_Rounds_LAC_BSP(b *testing.B)     { benchExperiment(b, "T4.LAC.bsp", 1<<12) }
func BenchmarkT4_Rounds_OR_QSM(b *testing.B)      { benchExperiment(b, "T4.OR.qsm", 1<<12) }
func BenchmarkT4_Rounds_OR_SQSM(b *testing.B)     { benchExperiment(b, "T4.OR.sqsm", 1<<12) }
func BenchmarkT4_Rounds_OR_BSP(b *testing.B)      { benchExperiment(b, "T4.OR.bsp", 1<<12) }
func BenchmarkT4_Rounds_Parity_QSM(b *testing.B)  { benchExperiment(b, "T4.Parity.qsm", 1<<12) }
func BenchmarkT4_Rounds_Parity_SQSM(b *testing.B) { benchExperiment(b, "T4.Parity.sqsm", 1<<12) }
func BenchmarkT4_Rounds_Parity_BSP(b *testing.B)  { benchExperiment(b, "T4.Parity.bsp", 1<<12) }

// --- simulator microbenchmarks -------------------------------------------------

// The BenchmarkPhaseCommit_* family isolates the phase/superstep *commit*
// stage — contention counting, winner resolution, message routing — which
// dominates Table 1 sweeps at large p. Bodies are deliberately trivial so
// ns/op tracks the barrier merge, across contention profiles:
//
//	Low   — every processor touches its own cells (κ = 1)
//	High  — p processors funnel into a handful of cells (κ = Θ(p))
//	Tree  — fan-in-8 write tree level (κ = 8), the common algorithmic shape
//
// Run with -benchmem; before/after numbers are recorded in EXPERIMENTS.md.

func benchQSMCommit(b *testing.B, p, cells int, body func(c *qsm.Ctx)) {
	b.Helper()
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: 2, N: p, MemCells: cells})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Phase(body)
	}
	b.StopTimer()
	if m.Err() != nil {
		b.Fatal(m.Err())
	}
}

func BenchmarkPhaseCommit_QSM_LowContention(b *testing.B) {
	for _, p := range []int{1 << 14, 1 << 17, 1 << 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchQSMCommit(b, p, 2*p, func(c *qsm.Ctx) {
				v := c.Read(c.Proc())
				c.Write(p+c.Proc(), v+1)
			})
		})
	}
}

func BenchmarkPhaseCommit_QSM_HighContention(b *testing.B) {
	for _, p := range []int{1 << 14, 1 << 17, 1 << 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchQSMCommit(b, p, 64, func(c *qsm.Ctx) {
				c.Write(c.Proc()%64, int64(c.Proc()))
			})
		})
	}
}

func BenchmarkPhaseCommit_QSM_TreeFanin8(b *testing.B) {
	for _, p := range []int{1 << 14, 1 << 17, 1 << 20} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchQSMCommit(b, p, p+p/8+1, func(c *qsm.Ctx) {
				v := c.Read(c.Proc())
				c.Write(p+c.Proc()/8, v|1)
			})
		})
	}
}

// BenchmarkPhaseCommit_QSM_BatchBlock drives the columnar submission
// path: each processor reads a k-cell block and fills a k-cell block, so
// one phase carries 2·p·k requests. The largest point (p=2^17, k=80) is
// ~21M requests — roughly 10× the per-cell envelope above — and the
// struct-of-arrays columns keep allocs/op flat across the whole sweep.
func BenchmarkPhaseCommit_QSM_BatchBlock(b *testing.B) {
	for _, sz := range []struct{ p, k int }{{1 << 14, 16}, {1 << 17, 16}, {1 << 17, 80}} {
		b.Run(fmt.Sprintf("p=%d/k=%d", sz.p, sz.k), func(b *testing.B) {
			p, k := sz.p, sz.k
			benchQSMCommit(b, p, 2*p*k, func(c *qsm.Ctx) {
				pr := c.Proc()
				c.ReadBlock(pr*k, k)
				c.WriteFill(p*k+pr*k, k, int64(pr))
			})
		})
	}
}

// BenchmarkPhaseCommit_Bool_WordScan drives the bit-packed memory: each
// processor reads a 64-bit word (64 charged cell reads through one
// ReadWord) and writes a summary bit. At p=2^18 a phase carries ~17M
// requests over a shared memory of only 2 MB of packed words.
func BenchmarkPhaseCommit_Bool_WordScan(b *testing.B) {
	for _, p := range []int{1 << 14, 1 << 17, 1 << 18} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := qsm.NewBool(qsm.Config{
				Rule: cost.RuleQSM, P: p, G: 2, N: p, MemCells: 65 * p,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Phase(func(c *qsm.BoolCtx) {
					w := c.ReadWord(c.Proc()*64, 64)
					c.Write(64*p+c.Proc(), w != 0)
				})
			}
			b.StopTimer()
			if m.Err() != nil {
				b.Fatal(m.Err())
			}
		})
	}
}

func BenchmarkPhaseCommit_BSP_Shift(b *testing.B) {
	for _, p := range []int{1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := bsp.New(bsp.Config{P: p, G: 2, L: 8, N: p, PrivCells: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Superstep(func(c *bsp.Ctx) {
					for k := 0; k < 4; k++ {
						c.Send((c.Comp()+k+1)%p, int64(k), int64(c.Comp()))
					}
				})
			}
			b.StopTimer()
			if m.Err() != nil {
				b.Fatal(m.Err())
			}
		})
	}
}

func BenchmarkPhaseCommit_GSM_Gather(b *testing.B) {
	const p = 1 << 14
	m, err := gsm.New(gsm.Config{P: p, Alpha: 4, Beta: 4, Gamma: 1, N: p, Cells: p + p/4 + 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Phase(func(c *gsm.Ctx) {
			c.Write(p+c.Proc()/4, gsm.NewInfo(int64(c.Proc())))
		})
	}
	b.StopTimer()
	if m.Err() != nil {
		b.Fatal(m.Err())
	}
}

func BenchmarkSimQSMPhase(b *testing.B) {
	for _, p := range []int{1 << 8, 1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := NewQSM(p, 2, p, 2*p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Phase(func(c *QSMCtx) {
					v := c.Read(c.Proc())
					c.Op(1)
					c.Write(p+c.Proc(), v+1)
				})
			}
			if m.Err() != nil {
				b.Fatal(m.Err())
			}
		})
	}
}

func BenchmarkSimBSPSuperstep(b *testing.B) {
	for _, p := range []int{1 << 8, 1 << 12} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := NewBSP(p, 2, 8, p, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Superstep(func(c *BSPCtx) {
					c.Send((c.Comp()+1)%p, 0, int64(i))
					c.Work(1)
				})
			}
			if m.Err() != nil {
				b.Fatal(m.Err())
			}
		})
	}
}

func BenchmarkBoolfnDegree(b *testing.B) {
	f := ParityFn(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.Degree() != 16 {
			b.Fatal("wrong degree")
		}
	}
}

func BenchmarkPrefixSumsQSM(b *testing.B) {
	const n = 1 << 12
	in := RandomBits(1, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewQSM(n, 2, n, n)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(0, in); err != nil {
			b.Fatal(err)
		}
		if _, err := PrefixSums(m, 0, n, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the gadget's group width trades levels against contention —
// the design choice behind the QSM vs CRQW parity upper bounds.
func BenchmarkAblationGadgetGroupBits(b *testing.B) {
	const n = 1 << 10
	for _, gb := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("m=%d", gb), func(b *testing.B) {
			perGroup := gb << uint(gb)
			procs := ((n + gb - 1) / gb) * perGroup
			in := RandomBits(5, n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewCRQW(procs, 8, n, n)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Load(0, in); err != nil {
					b.Fatal(err)
				}
				out, err := ParityGadget(m, 0, n, gb)
				if err != nil {
					b.Fatal(err)
				}
				if m.Peek(out) != ReferenceParity(in) {
					b.Fatal("wrong parity")
				}
				total = int64(m.Report().TotalTime)
			}
			b.ReportMetric(float64(total), "modelTime")
		})
	}
}

// Ablation: OR fan-in on the QSM — the contention sweet spot is fan-in g.
func BenchmarkAblationORFanin(b *testing.B) {
	const n = 1 << 12
	const g = 8
	for _, fanin := range []int{2, 4, 8, 16, 64} {
		b.Run(fmt.Sprintf("fanin=%d", fanin), func(b *testing.B) {
			in := RandomBits(9, n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewQSM(n, g, n, n)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Load(0, in); err != nil {
					b.Fatal(err)
				}
				if _, err := ORContentionTree(m, 0, n, fanin); err != nil {
					b.Fatal(err)
				}
				total = int64(m.Report().TotalTime)
			}
			b.ReportMetric(float64(total), "modelTime")
		})
	}
}

// --- extension benchmarks: GSM theorems, QSM(g,d), design ablations ------------

// Theorem 3.1's shape on the GSM itself: gather time vs μ·log r/log μ.
func BenchmarkGSMParityGather(b *testing.B) {
	const n = 1 << 12
	for _, alpha := range []int64{2, 4, 8} {
		b.Run(fmt.Sprintf("mu=%d", alpha), func(b *testing.B) {
			bits := RandomBits(7, n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewGSM(n, alpha, alpha, 1, n, GSMGatherCells(n))
				if err != nil {
					b.Fatal(err)
				}
				if err := m.LoadInputs(bits); err != nil {
					b.Fatal(err)
				}
				got, err := ParityGSM(m, n, int(alpha))
				if err != nil {
					b.Fatal(err)
				}
				if got != ReferenceParity(bits) {
					b.Fatal("wrong parity")
				}
				total = int64(m.Report().TotalTime)
			}
			b.ReportMetric(float64(total), "modelTime")
		})
	}
}

// Claim 2.2 sweep: the contention-OR cost on QSM(g,d) interpolates between
// the QSM and s-QSM endpoints as d grows.
func BenchmarkQSMGDSweep(b *testing.B) {
	const n = 1 << 12
	const g = 8
	for _, d := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			in := RandomBits(3, n)
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewQSMGD(n, g, d, n, n)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Load(0, in); err != nil {
					b.Fatal(err)
				}
				if _, err := ORContentionTree(m, 0, n, g); err != nil {
					b.Fatal(err)
				}
				total = int64(m.Report().TotalTime)
			}
			b.ReportMetric(float64(total), "modelTime")
		})
	}
}

// Ablation: the dart-throwing oversizing factor trades output size against
// retry rounds (DartFactor = 4 in the library).
func BenchmarkAblationDartRounds(b *testing.B) {
	const n = 1 << 12
	in, err := SparseItems(5, n, n/4)
	if err != nil {
		b.Fatal(err)
	}
	var rounds, outSize int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewSQSM(n, 4, n, n)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(0, in); err != nil {
			b.Fatal(err)
		}
		res, err := CompactDarts(m, int64(i)+1, 0, n)
		if err != nil {
			b.Fatal(err)
		}
		rounds, outSize = res.Rounds, res.OutSize
	}
	b.ReportMetric(float64(rounds), "dartRounds")
	b.ReportMetric(float64(outSize)/float64(n/4), "spacePerItem")
}

// Ablation: broadcast fan-out on the QSM — [1]'s Θ(g·log n/log g) optimum
// sits at fan-out g.
func BenchmarkAblationBroadcastFanout(b *testing.B) {
	const n = 1 << 12
	const g = 8
	for _, fanout := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := NewQSM(n, g, n, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Load(0, []int64{1}); err != nil {
					b.Fatal(err)
				}
				if _, err := Broadcast(m, 0, n, fanout); err != nil {
					b.Fatal(err)
				}
				total = int64(m.Report().TotalTime)
			}
			b.ReportMetric(float64(total), "modelTime")
		})
	}
}

// Randomized vs deterministic OR on the CRQW (the §8 w.h.p. claim).
func BenchmarkRandomizedORCRQW(b *testing.B) {
	const n = 1 << 14
	in := RandomBits(9, n)
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewCRQW(n, 4, n, n)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Load(0, in); err != nil {
			b.Fatal(err)
		}
		if _, err := ORRandomized(m, int64(i)+1, 0, n); err != nil {
			b.Fatal(err)
		}
		total = int64(m.Report().TotalTime)
	}
	b.ReportMetric(float64(total), "modelTime")
}

// --- library throughput benchmarks ----------------------------------------------

func BenchmarkListRankQSM(b *testing.B) {
	const n = 1 << 10
	b.ReportAllocs()
	var modelTime int64
	for i := 0; i < b.N; i++ {
		m, err := NewQSM(n, 2, n, n)
		if err != nil {
			b.Fatal(err)
		}
		next := make([]int64, n)
		for j := 0; j+1 < n; j++ {
			next[j] = int64(j + 1)
		}
		next[n-1] = int64(n - 1)
		if err := m.Load(0, next); err != nil {
			b.Fatal(err)
		}
		ranks, err := ListRank(m, 0, n)
		if err != nil {
			b.Fatal(err)
		}
		if m.Peek(ranks) != int64(n-1) {
			b.Fatal("wrong head rank")
		}
		modelTime = int64(m.Report().TotalTime)
	}
	b.ReportMetric(float64(modelTime), "modelTime")
}

func BenchmarkSampleSortBSP(b *testing.B) {
	const n, p = 1 << 12, 32
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64((i * 2654435761) % (1 << 30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewBSP(p, 2, 8, n, SampleSortBSPPrivCells(n, p))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Scatter(keys); err != nil {
			b.Fatal(err)
		}
		if _, err := SampleSortBSP(m, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPaddedSortBSP(b *testing.B) {
	const n, p = 1 << 12, 32
	vals := Uniform01(3, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewBSP(p, 2, 8, n, PaddedSortBSPPrivCells(n, p, 2))
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Scatter(vals); err != nil {
			b.Fatal(err)
		}
		if _, err := PaddedSortBSP(m, n, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastBSPvsQSM(b *testing.B) {
	const n = 1 << 12
	b.Run("qsm-fanout-g", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := NewQSM(n, 8, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			m.Load(0, []int64{1})
			if _, err := Broadcast(m, 0, n, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}
