// Command parsim runs one algorithm on one simulated machine and prints
// the per-phase cost table — the microscope view of the cost model.
//
// Usage:
//
//	parsim -model sqsm -alg parity -n 1024 -p 1024 -g 4 [-L 16] [-fanin 2] [-seed 7] [-v] [-events]
//	parsim chaos [-model qsm -alg parity -specs "crash@2:p1,mem~0.05" -degraded] [-seeds 2] [-n 48]
//
// The chaos subcommand runs seeded fault-injection scenarios (one with
// -model, the full sweep without) and fails only on robustness-invariant
// violations; see internal/chaos and DESIGN.md §6.
//
// -v prints the per-phase cost table; -events additionally prints the
// model-generic observer event stream (every committed request in
// deterministic order), which is practical for small n only.
//
// Models: qsm, sqsm, crqw, qsmgd (with -d), bsp, gsm (with -alpha/-beta/
// -gamma). Algorithms: parity, or, or-contention, prefix, lac-det,
// lac-dart, listrank for the shared-memory models; bsp-parity, bsp-or for
// bsp; gsm-parity, gsm-or for gsm.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		if err := runChaos(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "parsim:", err)
			os.Exit(1)
		}
		return
	}
	model := flag.String("model", "qsm", "qsm | sqsm | crqw | bsp")
	alg := flag.String("alg", "parity", "parity | or | or-contention | prefix | lac-det | lac-dart | listrank | bsp-parity | bsp-or")
	n := flag.Int("n", 1024, "input size")
	p := flag.Int("p", 0, "processors (default n)")
	g := flag.Int64("g", 4, "gap parameter")
	d := flag.Int64("d", 2, "QSM(g,d) memory gap")
	l := flag.Int64("L", 16, "BSP latency")
	alpha := flag.Int64("alpha", 2, "GSM α")
	beta := flag.Int64("beta", 2, "GSM β")
	gamma := flag.Int64("gamma", 1, "GSM γ")
	fanin := flag.Int("fanin", 2, "tree fan-in")
	seed := flag.Int64("seed", 7, "workload seed")
	verbose := flag.Bool("v", false, "print the per-phase table")
	events := flag.Bool("events", false, "print the structured per-phase event stream (small n only)")
	flag.Parse()

	cfg := config{
		model: *model, alg: *alg, n: *n, p: *p, g: *g, d: *d, l: *l,
		alpha: *alpha, beta: *beta, gamma: *gamma,
		fanin: *fanin, seed: *seed, verbose: *verbose, events: *events,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "parsim:", err)
		os.Exit(1)
	}
}

type config struct {
	model, alg                  string
	n, p                        int
	g, d, l, alpha, beta, gamma int64
	fanin                       int
	seed                        int64
	verbose                     bool
	events                      bool
}

// observe attaches an event log to any machine when -events is set.
func (cfg config) observe(m repro.Machine) *repro.EventLog {
	if !cfg.events {
		return nil
	}
	return repro.Observe(m)
}

func printEvents(ev *repro.EventLog) {
	if ev != nil {
		fmt.Println(ev.String())
	}
}

func run(cfg config) error {
	model, alg := cfg.model, cfg.alg
	n, p := cfg.n, cfg.p
	g, fanin, seed, verbose := cfg.g, cfg.fanin, cfg.seed, cfg.verbose
	if p == 0 {
		p = n
	}
	bits := repro.RandomBits(seed, n)

	if model == "bsp" {
		return runBSP(cfg, p)
	}
	if model == "gsm" {
		return runGSM(cfg)
	}

	var m *repro.QSMMachine
	var err error
	switch model {
	case "qsm":
		m, err = repro.NewQSM(p, g, n, n)
	case "sqsm":
		m, err = repro.NewSQSM(p, g, n, n)
	case "crqw":
		m, err = repro.NewCRQW(p, g, n, n)
	case "qsmgd":
		m, err = repro.NewQSMGD(p, g, cfg.d, n, n)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	if err != nil {
		return err
	}
	ev := cfg.observe(m)

	var answer int64
	switch alg {
	case "parity":
		if err := m.Load(0, bits); err != nil {
			return err
		}
		out, err := repro.ParityTree(m, 0, n, fanin)
		if err != nil {
			return err
		}
		answer = m.Peek(out)
		fmt.Printf("parity = %d (reference %d)\n", answer, repro.ReferenceParity(bits))
	case "or":
		if err := m.Load(0, bits); err != nil {
			return err
		}
		out, err := repro.ORReadTree(m, 0, n, fanin)
		if err != nil {
			return err
		}
		fmt.Printf("OR = %d (reference %d)\n", m.Peek(out), repro.ReferenceOr(bits))
	case "or-contention":
		if err := m.Load(0, bits); err != nil {
			return err
		}
		out, err := repro.ORContentionTree(m, 0, n, int(g))
		if err != nil {
			return err
		}
		fmt.Printf("OR = %d (reference %d)\n", m.Peek(out), repro.ReferenceOr(bits))
	case "prefix":
		if err := m.Load(0, bits); err != nil {
			return err
		}
		out, err := repro.PrefixSums(m, 0, n, fanin)
		if err != nil {
			return err
		}
		fmt.Printf("total = %d\n", m.Peek(out+n-1))
	case "lac-det":
		items, err := repro.SparseItems(seed, n, n/4)
		if err != nil {
			return err
		}
		if err := m.Load(0, items); err != nil {
			return err
		}
		_, k, err := repro.CompactExact(m, 0, n, fanin)
		if err != nil {
			return err
		}
		fmt.Printf("compacted %d items\n", k)
	case "lac-dart":
		items, err := repro.SparseItems(seed, n, n/4)
		if err != nil {
			return err
		}
		if err := m.Load(0, items); err != nil {
			return err
		}
		res, err := repro.CompactDarts(m, seed, 0, n)
		if err != nil {
			return err
		}
		fmt.Printf("placed %d items in %d cells over %d rounds\n",
			len(res.Placed), res.OutSize, res.Rounds)
		if slots := res.PlacedSlots(); len(slots) > 0 {
			fmt.Printf("occupied cells span [%d, %d]\n", slots[0].Cell, slots[len(slots)-1].Cell)
		}
	case "listrank":
		// Parity via the size-preserving list-ranking reduction.
		m2, err := repro.NewQSM(2*(n+1), g, n, n)
		if err != nil {
			return err
		}
		ev = cfg.observe(m2)
		if err := m2.Load(0, bits); err != nil {
			return err
		}
		v, err := repro.ParityViaListRanking(m2, 0, n)
		if err != nil {
			return err
		}
		fmt.Printf("parity via list ranking = %d (reference %d)\n", v, repro.ReferenceParity(bits))
		m = m2
	default:
		return fmt.Errorf("unknown algorithm %q for shared-memory models", alg)
	}

	// A machine poisoned after the runner returned (e.g. by a bad final
	// Peek) must exit non-zero, not render a poisoned report.
	if err := m.Err(); err != nil {
		return err
	}
	fmt.Println(m.Report().String())
	if verbose {
		fmt.Print(m.Report().Table())
	}
	printEvents(ev)
	return nil
}

func runBSP(cfg config, p int) error {
	alg, n := cfg.alg, cfg.n
	g, l, fanin, seed, verbose := cfg.g, cfg.l, cfg.fanin, cfg.seed, cfg.verbose
	bits := repro.RandomBits(seed, n)
	var priv int
	switch alg {
	case "bsp-parity":
		priv = repro.ParityBSPPrivCells(n, p)
	case "bsp-or":
		priv = repro.ORBSPPrivCells(n, p)
	default:
		return fmt.Errorf("unknown BSP algorithm %q", alg)
	}
	m, err := repro.NewBSP(p, g, l, n, priv)
	if err != nil {
		return err
	}
	ev := cfg.observe(m)
	if err := m.Scatter(bits); err != nil {
		return err
	}
	switch alg {
	case "bsp-parity":
		v, err := repro.ParityBSP(m, n, fanin)
		if err != nil {
			return err
		}
		fmt.Printf("parity = %d (reference %d)\n", v, repro.ReferenceParity(bits))
	case "bsp-or":
		v, err := repro.ORBSP(m, n, fanin)
		if err != nil {
			return err
		}
		fmt.Printf("OR = %d (reference %d)\n", v, repro.ReferenceOr(bits))
	}
	if err := m.Err(); err != nil {
		return err
	}
	fmt.Println(m.Report().String())
	if verbose {
		fmt.Print(m.Report().Table())
	}
	printEvents(ev)
	return nil
}

func runGSM(cfg config) error {
	n := cfg.n
	bits := repro.RandomBits(cfg.seed, n)
	gamma := cfg.gamma
	if gamma < 1 {
		gamma = 1
	}
	r := (n + int(gamma) - 1) / int(gamma)
	m, err := repro.NewGSM(r, cfg.alpha, cfg.beta, gamma, n, repro.GSMGatherCells(r))
	if err != nil {
		return err
	}
	ev := cfg.observe(m)
	if err := m.LoadInputs(bits); err != nil {
		return err
	}
	switch cfg.alg {
	case "gsm-parity":
		v, err := repro.ParityGSM(m, n, cfg.fanin)
		if err != nil {
			return err
		}
		fmt.Printf("parity = %d (reference %d)\n", v, repro.ReferenceParity(bits))
	case "gsm-or":
		v, err := repro.ORGSM(m, n, cfg.fanin)
		if err != nil {
			return err
		}
		fmt.Printf("OR = %d (reference %d)\n", v, repro.ReferenceOr(bits))
	default:
		return fmt.Errorf("unknown GSM algorithm %q", cfg.alg)
	}
	if err := m.Err(); err != nil {
		return err
	}
	fmt.Println(m.Report().String())
	if cfg.verbose {
		fmt.Print(m.Report().Table())
	}
	printEvents(ev)
	return nil
}
