// Command parsim runs one algorithm on one simulated machine and prints
// the per-phase cost table — the microscope view of the cost model.
//
// Usage:
//
//	parsim -model sqsm -alg parity -n 1024 -p 1024 -g 4 [-L 16] [-fanin 2] [-seed 7] [-v] [-events]
//	parsim chaos [-model qsm -alg parity -specs "crash@2:p1,mem~0.05" -degraded] [-seeds 2] [-n 48]
//	parsim sweep -models qsm,bsp -algs parity,bsp-parity -n 256..4096:*2 -seeds 1..3 -o out.jsonl
//	parsim sweep -preset tables|chaos|smoke [-o out.jsonl] [-resume]
//	parsim sweep -bench [-bench-o BENCH_pr6.json] [-bench-baseline BENCH_pr6.json]
//	parsim worker -socket PATH -rank R [-beat D]   (internal)
//
// The worker subcommand is internal plumbing: it is the explicit
// spelling of the proc backend's re-exec protocol, so a coordinator
// configured with Bin/Args can target any binary that dispatches here.
// It is listed in the usage output, marked internal, and not part of the
// user-facing surface.
//
// The chaos subcommand runs seeded fault-injection scenarios (one with
// -model, the full sweep without) and fails only on robustness-invariant
// violations; see internal/chaos and DESIGN.md §6. The sweep subcommand
// expands parameter grids into cells, records every cell — run or
// reason-coded skip — as JSONL/CSV, and resumes interrupted sweeps from
// the partial output; see internal/sweep and DESIGN.md §7.
//
// -v prints the per-phase cost table; -events additionally prints the
// model-generic observer event stream (every committed request in
// deterministic order), which is practical for small n only.
//
// The -model and -alg vocabularies are the internal/sweep registries;
// the flag usage strings are derived from the same tables the dispatcher
// reads, so the help text cannot drift from what actually runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/backend"
	"repro/internal/backend/proc"
	"repro/internal/sweep"
)

func main() {
	// A proc-backend coordinator re-execs this binary as a worker with
	// the connection parameters in the environment; MaybeWorker hijacks
	// the process before any flag parsing when those are set.
	proc.MaybeWorker()
	os.Exit(cliMain(os.Args[1:], os.Stdout, os.Stderr))
}

// subcommand is one entry of the dispatch registry. The same table
// drives cliMain's dispatch and the top-level usage text, so the help
// output cannot drift from what actually runs. Internal subcommands
// (re-exec plumbing rather than user-facing surface) stay listed but
// are marked as such.
type subcommand struct {
	name     string
	synopsis string
	internal bool
	run      func(argv []string, stdout, stderr io.Writer) error
}

// subcommands is the dispatch registry; bare `parsim [flags]` (no
// subcommand word) is the single-run mode handled by cliMain's default.
var subcommands = []subcommand{
	{"chaos", "seeded fault-injection scenarios, single or full matrix", false,
		func(argv []string, stdout, _ io.Writer) error { return runChaos(argv, stdout) }},
	{"sweep", "parameter-grid sweeps with resume and bench trajectories", false,
		func(argv []string, stdout, stderr io.Writer) error { return runSweep(argv, stdout, stderr) }},
	{"worker", "proc-backend worker process (internal: spawned by a coordinator over re-exec)", true,
		func(argv []string, stdout, _ io.Writer) error { return runWorker(argv, stdout) }},
}

// cliMain is the testable entry point: every subcommand returns its
// error here, and this is the single place that prefixes "parsim:" and
// picks the exit code.
func cliMain(argv []string, stdout, stderr io.Writer) int {
	var err error
	run := runSingleCmd
	if len(argv) > 0 {
		for i := range subcommands {
			if subcommands[i].name == argv[0] {
				run = subcommands[i].run
				argv = argv[1:]
				break
			}
		}
	}
	err = run(argv, stdout, stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	default:
		fmt.Fprintln(stderr, "parsim:", err)
		return 1
	}
}

func runSingleCmd(argv []string, stdout, _ io.Writer) error {
	return runSingle(argv, stdout)
}

// usageHeader renders the registry-driven subcommand synopsis printed
// ahead of the single-run flag defaults by `parsim -h`.
func usageHeader(w io.Writer) {
	fmt.Fprintln(w, "Usage:")
	fmt.Fprintln(w, "  parsim [flags]         run one algorithm on one machine (flags below)")
	for _, sc := range subcommands {
		fmt.Fprintf(w, "  parsim %s [flags]  %s\n", sc.name, sc.synopsis)
	}
	fmt.Fprintln(w, "\nSingle-run flags:")
}

// parseFlags parses with ContinueOnError so flag errors flow through the
// single error path instead of the flag package's own os.Exit. -h/-help
// prints the defaults to stdout and reports flag.ErrHelp (a success).
func parseFlags(fs *flag.FlagSet, argv []string, stdout io.Writer) error {
	fs.SetOutput(io.Discard)
	err := fs.Parse(argv)
	if errors.Is(err, flag.ErrHelp) {
		fs.SetOutput(stdout)
		fs.Usage()
		return flag.ErrHelp
	}
	return err
}

// runWorker implements the `parsim worker` subcommand: the explicit
// spelling of what MaybeWorker does from the environment. A coordinator
// configured with Bin/Args can point at any binary that dispatches to
// this, so the transport is debuggable outside the re-exec path.
func runWorker(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("parsim worker", flag.ContinueOnError)
	socket := fs.String("socket", "", "coordinator Unix-domain socket path (required)")
	rank := fs.Int("rank", 0, "worker rank")
	beat := fs.Duration("beat", 25*time.Millisecond, "heartbeat period")
	if err := parseFlags(fs, argv, stdout); err != nil {
		return err
	}
	if *socket == "" {
		return errors.New("worker: -socket is required")
	}
	if *rank < 0 {
		return fmt.Errorf("worker: rank %d out of range", *rank)
	}
	return proc.RunWorker(*socket, *rank, *beat)
}

// runSingle is the default mode: one algorithm on one machine, through
// the same sweep.Execute path a grid cell takes.
func runSingle(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("parsim", flag.ContinueOnError)
	fs.Usage = func() {
		usageHeader(fs.Output())
		fs.PrintDefaults()
	}
	model := fs.String("model", "qsm", sweep.ModelUsage())
	alg := fs.String("alg", "parity", sweep.AlgUsage())
	n := fs.Int("n", 1024, "input size")
	p := fs.Int("p", 0, "processors (default n)")
	g := fs.Int64("g", 4, "gap parameter")
	d := fs.Int64("d", 2, "QSM(g,d) memory gap")
	l := fs.Int64("L", 16, "BSP latency")
	alpha := fs.Int64("alpha", 2, "GSM α")
	beta := fs.Int64("beta", 2, "GSM β")
	gamma := fs.Int64("gamma", 1, "GSM γ")
	fanin := fs.Int("fanin", 2, "tree fan-in")
	seed := fs.Int64("seed", 7, "workload seed")
	backendName := fs.String("backend", "", backend.Usage())
	procWorkers := fs.Int("proc-workers", 0, "proc backend worker processes (default 1)")
	verbose := fs.Bool("v", false, "print the per-phase table")
	events := fs.Bool("events", false, "print the structured per-phase event stream (small n only)")
	if err := parseFlags(fs, argv, stdout); err != nil {
		return err
	}

	bk, err := backend.New(backend.Config{Name: *backendName, ProcWorkers: *procWorkers})
	if err != nil {
		return err
	}
	if bk != nil {
		defer bk.Close()
	}
	out, err := sweep.ExecuteWith(sweep.Cell{
		Model: *model, Alg: *alg, N: *n, P: *p,
		G: *g, D: *d, L: *l, Alpha: *alpha, Beta: *beta, Gamma: *gamma,
		Fanin: *fanin, Seed: *seed,
		Backend: *backendName, ProcWorkers: *procWorkers,
	}, *events, 0, bk)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, out.Summary)
	fmt.Fprintln(stdout, out.Report.String())
	if *verbose {
		fmt.Fprint(stdout, out.Report.Table())
	}
	if *events {
		fmt.Fprintln(stdout, out.Stream)
	}
	return nil
}
