package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes cliMain the way main does and captures both streams.
func runCLI(argv ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = cliMain(argv, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIErrors(t *testing.T) {
	cases := []struct {
		name       string
		argv       []string
		wantStderr string
	}{
		{"unknown model", []string{"-model", "bogus", "-n", "64"},
			`unknown model "bogus" (want qsm | sqsm | crqw | qsmgd | bsp | gsm)`},
		{"unknown alg", []string{"-alg", "sort", "-n", "64"},
			`unknown algorithm "sort" (want parity | or | or-contention | prefix | lac-det | lac-dart | listrank | bsp-parity | bsp-or | gsm-parity | gsm-or)`},
		{"family mismatch", []string{"-model", "qsm", "-alg", "bsp-parity", "-n", "64"},
			`algorithm "bsp-parity" is a bsp algorithm and does not run on model "qsm" (shared-memory)`},
		{"bad flag", []string{"-no-such-flag"},
			"flag provided but not defined: -no-such-flag"},
		{"bad flag value", []string{"-n", "lots"},
			`invalid value "lots" for flag -n`},
		{"chaos bad model", []string{"chaos", "-model", "pram"},
			`unknown model "pram" (want qsm | sqsm | crqw | bsp | gsm)`},
		{"chaos bad alg", []string{"chaos", "-model", "bsp", "-alg", "lac"},
			`unknown algorithm "lac" for model "bsp" (want parity | or)`},
		{"chaos bad spec", []string{"chaos", "-model", "qsm", "-specs", "zap~0.5"},
			`unknown kind "zap" in spec "zap~0.5"`},
		{"chaos bad flag", []string{"chaos", "-no-such-flag"},
			"flag provided but not defined: -no-such-flag"},
		{"sweep bad preset", []string{"sweep", "-preset", "mega"},
			`unknown preset "mega" (want tables | chaos | smoke)`},
		{"sweep bad grid spec", []string{"sweep", "-n", "1024..256:*2"},
			"-n:"},
		{"sweep bad model", []string{"sweep", "-models", "pram", "-n", "64"},
			""}, // skips, not errors — asserted separately below
		{"sweep stray arg", []string{"sweep", "stray"},
			`unexpected arguments after sweep flags: ["stray"]`},
		{"sweep resume without output", []string{"sweep", "-resume", "-n", "64"},
			"resume needs a JSONL output path"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.wantStderr == "" {
				t.Skip("not an error case")
			}
			code, _, stderr := runCLI(c.argv...)
			if code != 1 {
				t.Fatalf("exit code %d, want 1 (stderr %q)", code, stderr)
			}
			if !strings.HasPrefix(stderr, "parsim: ") {
				t.Fatalf("stderr %q does not use the parsim: prefix", stderr)
			}
			if !strings.Contains(stderr, c.wantStderr) {
				t.Fatalf("stderr %q does not mention %q", stderr, c.wantStderr)
			}
		})
	}
}

func TestCLIUnknownModelSkipsInGrid(t *testing.T) {
	// In a grid an unknown model is a reason-coded skip, not an error:
	// the cell is recorded and the sweep succeeds.
	code, stdout, stderr := runCLI("sweep", "-models", "pram", "-n", "64")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "unknown-model=1") {
		t.Fatalf("stdout %q does not count the unknown-model skip", stdout)
	}
}

func TestCLIHelpIsSuccess(t *testing.T) {
	for _, argv := range [][]string{{"-h"}, {"chaos", "-h"}, {"sweep", "-h"}} {
		code, stdout, stderr := runCLI(argv...)
		if code != 0 {
			t.Errorf("%v: exit code %d, want 0", argv, code)
		}
		if stderr != "" {
			t.Errorf("%v: help leaked to stderr: %q", argv, stderr)
		}
		if !strings.Contains(stdout, "-model") && !strings.Contains(stdout, "-preset") {
			t.Errorf("%v: defaults not printed to stdout: %q", argv, stdout)
		}
	}
}

func TestCLIUsageListsEverySubcommand(t *testing.T) {
	// Registry-driven: whatever the dispatch table knows, -h must list,
	// internal entries (the worker re-exec plumbing) marked as such —
	// and every listed name must actually dispatch (its own -h is a
	// success, not a fall-through to single-run mode).
	_, stdout, _ := runCLI("-h")
	for _, sc := range subcommands {
		line := ""
		for _, l := range strings.Split(stdout, "\n") {
			if strings.Contains(l, "parsim "+sc.name+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Errorf("-h output does not list subcommand %q:\n%s", sc.name, stdout)
			continue
		}
		if sc.internal != strings.Contains(line, "internal") {
			t.Errorf("subcommand %q: internal=%t but usage line is %q", sc.name, sc.internal, line)
		}
		code, sub, stderr := runCLI(sc.name, "-h")
		if code != 0 || stderr != "" {
			t.Errorf("parsim %s -h: exit %d, stderr %q", sc.name, code, stderr)
		}
		if sub == stdout {
			t.Errorf("parsim %s -h fell through to single-run usage", sc.name)
		}
	}
}

func TestCLIUsageListsEveryModelAndAlg(t *testing.T) {
	// The drift this PR fixes: -model usage used to omit qsmgd and gsm,
	// -alg usage used to omit gsm-parity and gsm-or.
	_, stdout, _ := runCLI("-h")
	for _, want := range []string{"qsm", "sqsm", "crqw", "qsmgd", "bsp", "gsm",
		"parity", "or-contention", "prefix", "lac-det", "lac-dart", "listrank",
		"bsp-parity", "bsp-or", "gsm-parity", "gsm-or"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-h output misses %q", want)
		}
	}
}

func TestCLISingleRun(t *testing.T) {
	code, stdout, stderr := runCLI("-model", "sqsm", "-alg", "parity", "-n", "64")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "parity = ") || !strings.Contains(stdout, "s-QSM[") ||
		!strings.Contains(stdout, "phases=") {
		t.Fatalf("unexpected single-run output: %q", stdout)
	}
}

func TestCLISweepGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep")
	}
	want, err := os.ReadFile(filepath.Join("..", "tables", "testdata", "tables_seed1998.golden"))
	if err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI("sweep", "-preset", "tables")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if stdout != string(want) {
		t.Fatal("parsim sweep -preset tables does not reproduce the tables golden byte-for-byte")
	}
}

func TestCLISweepResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	part := filepath.Join(dir, "part.jsonl")
	grid := []string{"-models", "qsm,sqsm", "-algs", "parity,or", "-n", "64,128", "-seeds", "1..2"}

	if code, _, stderr := runCLI(append([]string{"sweep", "-o", full}, grid...)...); code != 0 {
		t.Fatalf("full run failed: %s", stderr)
	}
	code, stdout, stderr := runCLI(append([]string{"sweep", "-o", part, "-max-cells", "5"}, grid...)...)
	if code != 0 {
		t.Fatalf("interrupted run failed: %s", stderr)
	}
	if !strings.Contains(stdout, "[stopped at max-cells]") {
		t.Fatalf("interrupted run does not say so: %q", stdout)
	}
	code, stdout, stderr = runCLI(append([]string{"sweep", "-o", part, "-resume"}, grid...)...)
	if code != 0 {
		t.Fatalf("resume failed: %s", stderr)
	}
	if !strings.Contains(stdout, "(5 resumed)") {
		t.Fatalf("resume did not report resumed cells: %q", stdout)
	}
	wantB, _ := os.ReadFile(full)
	gotB, _ := os.ReadFile(part)
	if !bytes.Equal(wantB, gotB) {
		t.Fatal("resumed JSONL differs from the uninterrupted run")
	}
}

func TestCLIChaosSingleScenario(t *testing.T) {
	code, stdout, stderr := runCLI("chaos", "-model", "qsm", "-alg", "parity",
		"-specs", "crash@2:p1", "-degraded", "-n", "48")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "verified: answer matches the host-side oracle") {
		t.Fatalf("masked-crash scenario did not verify: %q", stdout)
	}
}

func TestCLISweepSmokePreset(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke grid")
	}
	code, stdout, stderr := runCLI("sweep", "-preset", "smoke")
	if code != 0 {
		t.Fatalf("exit code %d, stderr %q\nstdout: %s", code, stderr, stdout)
	}
	// The smoke preset deliberately includes skip cells; none may fail.
	if !strings.Contains(stdout, "0 failed") {
		t.Fatalf("smoke summary: %q", stdout)
	}
}
