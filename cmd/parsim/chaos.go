package main

import (
	"flag"
	"fmt"

	"repro"
	"repro/internal/chaos"
)

// runChaos implements the `parsim chaos` subcommand. With -model it runs
// one scenario and prints its fault report; without, it runs the standard
// sweep (seeds × fault mixes × all five machine constructors) and prints
// the aggregate summary. Either way a robustness-invariant violation —
// panic, hang, silent corruption, undiagnosable error — is the only
// failure; fault-poisoned runs that diagnose themselves are expected
// sweep outcomes.
func runChaos(argv []string) error {
	fs := flag.NewFlagSet("parsim chaos", flag.ExitOnError)
	model := fs.String("model", "", "run one scenario on this model (qsm | sqsm | crqw | bsp | gsm); empty sweeps all")
	alg := fs.String("alg", "parity", "single-scenario algorithm: parity | or | lac")
	specStr := fs.String("specs", "mem~0.05", `single-scenario fault specs, e.g. "crash@2:p1,mem~0.05"`)
	n := fs.Int("n", 48, "input size")
	seed := fs.Int64("seed", 1, "scenario seed (and first sweep seed)")
	seeds := fs.Int("seeds", 2, "number of consecutive sweep seeds")
	degraded := fs.Bool("degraded", false, "mask crashes and re-partition over survivors (shared-memory models)")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", chaos.DefaultDeadline, "per-run watchdog deadline")
	verbose := fs.Bool("v", false, "print the per-run fault event log")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *model != "" {
		specs, err := repro.ParseFaultSpecs(*specStr)
		if err != nil {
			return err
		}
		sc := chaos.Scenario{
			Model: *model, Alg: *alg, N: *n, Seed: *seed,
			Specs: specs, Degraded: *degraded,
		}
		o := chaos.Run(sc, *deadline, *workers)
		fmt.Println(sc.Name())
		switch {
		case o.Verified:
			fmt.Println("verified: answer matches the host-side oracle")
		case o.Err != nil:
			fmt.Printf("diagnosed: %v\n", o.Err)
		}
		if o.Report != nil {
			fmt.Println(o.Report)
		}
		if *verbose && o.Stream != "" {
			fmt.Println(o.Stream)
		}
		if err := o.Invariant(); err != nil {
			return fmt.Errorf("robustness invariant violated: %w", err)
		}
		return nil
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	scs, err := chaos.Scenarios(seedList, *n)
	if err != nil {
		return err
	}
	s := chaos.Sweep(scs, *deadline, *workers)
	fmt.Println(s)
	if len(s.Failures) > 0 {
		return fmt.Errorf("robustness invariant violated in %d of %d runs", len(s.Failures), s.Runs)
	}
	return nil
}
