package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/sweep"
)

// runChaos implements the `parsim chaos` subcommand. With -model it runs
// one scenario and prints its fault report; without, it runs the standard
// sweep (seeds × fault mixes × all five machine constructors) through the
// generic sweep runner and prints the aggregate summary. Either way a
// robustness-invariant violation — panic, hang, silent corruption,
// undiagnosable error — is the only failure; fault-poisoned runs that
// diagnose themselves are expected sweep outcomes.
func runChaos(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("parsim chaos", flag.ContinueOnError)
	model := fs.String("model", "", "run one scenario on this model ("+strings.Join(chaos.Models, " | ")+"); empty sweeps all")
	alg := fs.String("alg", "parity", "single-scenario algorithm: parity | or | lac")
	specStr := fs.String("specs", "mem~0.05", `single-scenario fault specs, e.g. "crash@2:p1,mem~0.05"`)
	n := fs.Int("n", 48, "input size")
	seed := fs.Int64("seed", 1, "scenario seed (and first sweep seed)")
	seeds := fs.Int("seeds", 2, "number of consecutive sweep seeds")
	degraded := fs.Bool("degraded", false, "mask crashes and re-partition over survivors (shared-memory models)")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", chaos.DefaultDeadline, "per-run watchdog deadline")
	backendName := fs.String("backend", "", backend.Usage())
	procWorkers := fs.Int("proc-workers", 0, "proc backend worker processes (default 1)")
	verbose := fs.Bool("v", false, "print the per-run fault event log")
	if err := parseFlags(fs, argv, stdout); err != nil {
		return err
	}
	if !backend.Valid(*backendName) {
		return fmt.Errorf("unknown backend %q (want %s)", *backendName, strings.Join(backend.Names(), " | "))
	}

	// SIGINT/SIGTERM cancel the run (or sweep) between scenarios and tear
	// down the scenario in flight; the partial summary still prints.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *model != "" {
		// Validate up front: chaos.Run reports an unknown model as a
		// diagnosed outcome (a machine that failed to construct), but a
		// flag typo is a config error and must exit non-zero.
		if !contains(chaos.Models, *model) {
			return fmt.Errorf("unknown model %q (want %s)", *model, strings.Join(chaos.Models, " | "))
		}
		if !contains(chaos.AlgsFor(*model), *alg) {
			return fmt.Errorf("unknown algorithm %q for model %q (want %s)",
				*alg, *model, strings.Join(chaos.AlgsFor(*model), " | "))
		}
		specs, err := repro.ParseFaultSpecs(*specStr)
		if err != nil {
			return err
		}
		sc := chaos.Scenario{
			Model: *model, Alg: *alg, N: *n, Seed: *seed,
			Specs: specs, Degraded: *degraded,
			Backend: *backendName, ProcWorkers: *procWorkers,
		}
		o := chaos.Run(ctx, sc, *deadline, *workers)
		fmt.Fprintln(stdout, sc.Name())
		switch {
		case o.Cancelled:
			fmt.Fprintln(stdout, "interrupted: run cancelled before completion")
		case o.Verified:
			fmt.Fprintln(stdout, "verified: answer matches the host-side oracle")
		case o.Err != nil:
			fmt.Fprintf(stdout, "diagnosed: %v\n", o.Err)
		}
		if o.Report != nil {
			fmt.Fprintln(stdout, o.Report)
		}
		if *verbose && o.Stream != "" {
			fmt.Fprintln(stdout, o.Stream)
		}
		if err := o.Invariant(); err != nil {
			return fmt.Errorf("robustness invariant violated: %w", err)
		}
		return nil
	}

	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + int64(i)
	}
	cells := sweep.PresetChaos(seedList, *n, *degraded)
	for i := range cells {
		cells[i].Backend = *backendName
		cells[i].ProcWorkers = *procWorkers
	}
	s, err := sweep.Run(cells, sweep.Options{Workers: *workers, Deadline: *deadline, Ctx: ctx})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, s.ChaosString())
	if s.Interrupted && ctx.Err() != nil {
		fmt.Fprintf(stdout, "interrupted: %d of %d runs not finished\n",
			s.Total-(s.OK+s.Diagnosed+s.Skipped+s.Failed), s.Total)
	}
	if s.Failed > 0 {
		return fmt.Errorf("robustness invariant violated in %d of %d runs",
			s.Failed, s.OK+s.Diagnosed+s.Failed)
	}
	return nil
}

// contains reports whether list has item.
func contains(list []string, item string) bool {
	for _, s := range list {
		if s == item {
			return true
		}
	}
	return false
}
