package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/chaos"
	"repro/internal/sweep"
)

// runSweep implements the `parsim sweep` subcommand: grid expansion,
// presets, JSONL/CSV persistence with resume, and the bench-snapshot
// mode. Everything runs through internal/sweep; this function only
// parses flags and picks the output rendering.
func runSweep(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("parsim sweep", flag.ContinueOnError)
	preset := fs.String("preset", "", "named grid: tables | chaos | smoke (replaces the axis flags)")
	models := fs.String("models", "qsm", "comma-separated models: "+sweep.ModelUsage())
	algs := fs.String("algs", "parity", "comma-separated algorithms: "+sweep.AlgUsage())
	ns := fs.String("n", "1024", `input-size grid spec (lists and ranges, e.g. "256..8192:*2")`)
	ps := fs.String("p", "0", "processor grid spec (0 = n)")
	gs := fs.String("g", "4", "gap grid spec")
	ds := fs.String("d", "2", "QSM(g,d) memory-gap grid spec")
	ls := fs.String("L", "16", "BSP latency grid spec")
	alphas := fs.String("alpha", "2", "GSM α grid spec")
	betas := fs.String("beta", "2", "GSM β grid spec")
	gammas := fs.String("gamma", "1", "GSM γ grid spec")
	fanins := fs.String("fanin", "2", "tree fan-in grid spec")
	seeds := fs.String("seeds", "7", "seed grid spec")
	faults := fs.String("faults", "", `";"-separated fault mixes (internal/fault grammar); empty = fault-free`)
	degraded := fs.Bool("degraded", false, "run fault cells in degraded (crash-masking) mode")
	seed := fs.Int64("seed", 1998, "preset seed: workload seed for -preset tables, first seed for -preset chaos")
	chaosSeeds := fs.Int("chaos-seeds", 2, "number of consecutive seeds for -preset chaos")
	chaosN := fs.Int("chaos-n", 48, "input size for -preset chaos")
	out := fs.String("o", "", "JSONL output path (one record per cell, flushed per cell)")
	csvPath := fs.String("csv", "", "CSV output path (rebuilt atomically at the end)")
	resume := fs.Bool("resume", false, "resume from the partial JSONL output at -o, skipping completed cells")
	maxCells := fs.Int("max-cells", 0, "stop after running this many new cells (0 = all); resume later with -resume")
	maxCost := fs.Int64("max-cost", 0, "n·p footprint ceiling; larger cells skip as too-large (0 = default)")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", chaos.DefaultDeadline, "fault-cell watchdog deadline")
	progress := fs.Bool("progress", false, "print a per-cell progress line to stderr")
	render := fs.Bool("render", false, "render Table 1 from the experiment records (implied by -preset tables)")
	bench := fs.Bool("bench", false, "measure the bench snapshot instead of running a grid")
	benchLabel := fs.String("bench-label", "pr7", "bench snapshot label")
	benchFilter := fs.String("bench-filter", "", "only benches whose name contains this substring")
	benchOut := fs.String("bench-o", "", "write the bench snapshot JSON here (e.g. BENCH_pr7.json)")
	benchText := fs.String("bench-text", "", "write the benchstat-format text here")
	benchBaseline := fs.String("bench-baseline", "", "compare against this committed snapshot and fail on regressions")
	if err := parseFlags(fs, argv, stdout); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments after sweep flags: %q", fs.Args())
	}

	if *bench {
		return runBench(*benchLabel, *benchFilter, *benchOut, *benchText, *benchBaseline, stdout)
	}

	var cells []sweep.Cell
	switch *preset {
	case "tables":
		cells = sweep.PresetTables(*seed)
	case "chaos":
		seedList := make([]int64, *chaosSeeds)
		for i := range seedList {
			seedList[i] = *seed + int64(i)
		}
		cells = sweep.PresetChaos(seedList, *chaosN, *degraded)
	case "smoke":
		cells = sweep.PresetSmoke()
	case "":
		var err error
		cells, err = gridCells(*models, *algs, *ns, *ps, *gs, *ds, *ls,
			*alphas, *betas, *gammas, *fanins, *seeds, *faults, *degraded)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown preset %q (want tables | chaos | smoke)", *preset)
	}

	opt := sweep.Options{
		JSONL: *out, CSV: *csvPath, Resume: *resume,
		MaxCells: *maxCells, MaxCost: *maxCost,
		Workers: *workers, Deadline: *deadline,
	}
	if *progress {
		opt.Progress = stderr
	}
	s, err := sweep.Run(cells, opt)
	if err != nil {
		return err
	}

	switch {
	case *preset == "tables" || *render:
		if s.Interrupted {
			// A partial sweep cannot render complete tables; report the
			// state so the caller knows to resume.
			fmt.Fprintln(stdout, s)
			return nil
		}
		text, err := sweep.RenderTablesFromRecords(s.Records)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, text)
	case *preset == "chaos":
		fmt.Fprintln(stdout, s.ChaosString())
		if s.Failed > 0 {
			return fmt.Errorf("robustness invariant violated in %d of %d runs",
				s.Failed, s.OK+s.Diagnosed+s.Failed)
		}
	default:
		fmt.Fprintln(stdout, s)
		if s.Failed > 0 {
			return fmt.Errorf("%d of %d cells failed", s.Failed, s.Total)
		}
	}
	return nil
}

// gridCells expands the axis flags into the cell list.
func gridCells(models, algs, ns, ps, gs, ds, ls, alphas, betas, gammas, fanins, seeds, faults string, degraded bool) ([]sweep.Cell, error) {
	g := sweep.Grid{
		Models:   splitList(models),
		Algs:     splitList(algs),
		Degraded: degraded,
	}
	if faults != "" {
		g.Faults = strings.Split(faults, ";")
	}
	var err error
	intAxes := []struct {
		dst  *[]int
		spec string
		name string
	}{
		{&g.Ns, ns, "-n"}, {&g.Ps, ps, "-p"}, {&g.Fanins, fanins, "-fanin"},
	}
	for _, ax := range intAxes {
		if *ax.dst, err = sweep.ParseInts(ax.spec); err != nil {
			return nil, fmt.Errorf("%s: %w", ax.name, err)
		}
	}
	int64Axes := []struct {
		dst  *[]int64
		spec string
		name string
	}{
		{&g.Gs, gs, "-g"}, {&g.Ds, ds, "-d"}, {&g.Ls, ls, "-L"},
		{&g.Alphas, alphas, "-alpha"}, {&g.Betas, betas, "-beta"},
		{&g.Gammas, gammas, "-gamma"}, {&g.Seeds, seeds, "-seeds"},
	}
	for _, ax := range int64Axes {
		if *ax.dst, err = sweep.ParseInt64s(ax.spec); err != nil {
			return nil, fmt.Errorf("%s: %w", ax.name, err)
		}
	}
	if len(g.Models) == 0 || len(g.Algs) == 0 {
		return nil, fmt.Errorf("empty -models or -algs")
	}
	return g.Cells(), nil
}

// splitList splits a comma list, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// runBench measures the bench snapshot, writes the requested outputs and
// applies the regression gate against the committed baseline.
func runBench(label, filter, outPath, textPath, baseline string, stdout io.Writer) error {
	snap, err := sweep.RunBenchSnapshot(label, filter)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := snap.WriteFile(outPath); err != nil {
			return err
		}
	}
	if textPath != "" {
		if err := os.WriteFile(textPath, []byte(snap.Benchstat()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprint(stdout, snap.Benchstat())
	if baseline == "" {
		return nil
	}
	base, err := sweep.ReadBenchSnapshot(baseline)
	if err != nil {
		return err
	}
	if regs := sweep.CompareBenchSnapshots(base, snap, 0, 0); len(regs) > 0 {
		return fmt.Errorf("bench regressions vs %s:\n  %s", baseline, strings.Join(regs, "\n  "))
	}
	fmt.Fprintf(stdout, "bench gate: no regressions vs %s\n", baseline)
	return nil
}
