// Command reprolint is the project's static-analysis vet tool. It runs
// the determinism/engine-contract suite (maporder, globalrand, wallclock,
// commitpurity) under the `go vet -vettool` protocol:
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=$(command -v reprolint || echo ./bin/reprolint) ./...
//
// Run `reprolint help` for the check list and the allowlist syntax.
package main

import (
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(suite.Analyzers()...)
}
