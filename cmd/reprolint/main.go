// Command reprolint is the project's static-analysis tool. It enforces
// the determinism/engine contracts (maporder, globalrand, wallclock,
// commitpurity), the interprocedural fault/checkpoint/sentinel contracts
// of PR 5 (sentinelwrap, snapshotdeep, costbalance, injectoronce,
// observerpurity) built on per-function fact summaries, the CFG-based
// dataflow contracts of PR 8 (hotpathalloc, colescape, bitaddr), and
// the concurrency contracts of PR 10 (goleak, lockorder, atomicmix,
// framestate) covering goroutine lifecycle, lock discipline, atomic
// access discipline and the proc backend's wire-protocol frame state.
//
// It runs two ways. As a standalone driver over package patterns:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -json ./...
//	go run ./cmd/reprolint -sarif reprolint.sarif -baseline .reprolint-baseline.json ./...
//	go run ./cmd/reprolint -cfg-debug internal/engine/bitmem.go:commit
//
// and as a plain `go vet -vettool` (which the standalone mode spawns
// under the hood, so results and caching are identical):
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=$(command -v reprolint || echo ./bin/reprolint) ./...
//
// Run `reprolint help` for the check list and the allowlist syntax.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unitchecker"
)

func main() {
	analyzers := suite.Analyzers()
	if protocolInvocation(os.Args[1:]) {
		unitchecker.Main(analyzers...) // never returns
	}

	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print aggregated findings as a JSON array on stdout")
	sarif := fs.String("sarif", "", "write a SARIF 2.1.0 report to `file`")
	baseline := fs.String("baseline", "", "tolerate findings recorded in baseline `file`; fail only on new ones")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings")
	cfgDebug := fs.String("cfg-debug", "", "print the control-flow graph the dataflow analyzers build for `file.go:Func`, then exit")
	fs.Parse(os.Args[1:])

	if *cfgDebug != "" {
		os.Exit(dumpCFG(*cfgDebug, os.Stdout, os.Stderr))
	}

	os.Exit(driver.Run(driver.Options{
		Patterns:      fs.Args(),
		JSON:          *jsonOut,
		SARIF:         *sarif,
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
		Analyzers:     analyzers,
	}, os.Stdout, os.Stderr))
}

// dumpCFG renders the control-flow graph of one function — "file.go:F"
// for functions, "file.go:T.M" for methods — exactly as the dataflow
// analyzers see it (block kinds, edges, per-block statement labels,
// reachability marks). Purely syntactic: no type checking, so it works
// on any parseable file.
func dumpCFG(target string, out, errw io.Writer) int {
	i := strings.LastIndex(target, ":")
	if i < 0 {
		fmt.Fprintf(errw, "reprolint: -cfg-debug wants file.go:Func, got %q\n", target)
		return 2
	}
	file, fn := target[:i], target[i+1:]
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		fmt.Fprintf(errw, "reprolint: %v\n", err)
		return 2
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			if r := recvTypeName(fd.Recv.List[0].Type); r != "" {
				name = r + "." + fd.Name.Name
			}
		}
		if name != fn && fd.Name.Name != fn {
			continue
		}
		fmt.Fprint(out, cfg.New(name, fd.Body).Dump(fset))
		return 0
	}
	fmt.Fprintf(errw, "reprolint: no function %q in %s\n", fn, file)
	return 2
}

// recvTypeName extracts the receiver's type name ("T" from *T or T).
func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// protocolInvocation reports whether the arguments are a cmd/go vettool
// handshake (-V/-flags/vet.cfg, plus the help spellings unitchecker
// already renders) rather than a standalone driver run.
func protocolInvocation(args []string) bool {
	for _, a := range args {
		switch a {
		case "-V", "-V=full", "-flags", "help", "-help", "--help", "-h":
			return true
		}
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
