// Command reprolint is the project's static-analysis tool. It enforces
// the determinism/engine contracts (maporder, globalrand, wallclock,
// commitpurity) and, since PR 5, the interprocedural fault/checkpoint/
// sentinel contracts (sentinelwrap, snapshotdeep, costbalance,
// injectoronce, observerpurity) built on per-function fact summaries.
//
// It runs two ways. As a standalone driver over package patterns:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -json ./...
//	go run ./cmd/reprolint -sarif reprolint.sarif -baseline .reprolint-baseline.json ./...
//
// and as a plain `go vet -vettool` (which the standalone mode spawns
// under the hood, so results and caching are identical):
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=$(command -v reprolint || echo ./bin/reprolint) ./...
//
// Run `reprolint help` for the check list and the allowlist syntax.
package main

import (
	"flag"
	"os"
	"strings"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
	"repro/internal/analysis/unitchecker"
)

func main() {
	analyzers := suite.Analyzers()
	if protocolInvocation(os.Args[1:]) {
		unitchecker.Main(analyzers...) // never returns
	}

	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print aggregated findings as a JSON array on stdout")
	sarif := fs.String("sarif", "", "write a SARIF 2.1.0 report to `file`")
	baseline := fs.String("baseline", "", "tolerate findings recorded in baseline `file`; fail only on new ones")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings")
	fs.Parse(os.Args[1:])

	os.Exit(driver.Run(driver.Options{
		Patterns:      fs.Args(),
		JSON:          *jsonOut,
		SARIF:         *sarif,
		Baseline:      *baseline,
		WriteBaseline: *writeBaseline,
		Analyzers:     analyzers,
	}, os.Stdout, os.Stderr))
}

// protocolInvocation reports whether the arguments are a cmd/go vettool
// handshake (-V/-flags/vet.cfg, plus the help spellings unitchecker
// already renders) rather than a standalone driver run.
func protocolInvocation(args []string) bool {
	for _, a := range args {
		switch a {
		case "-V", "-V=full", "-flags", "help", "-help", "--help", "-h":
			return true
		}
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
