package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// buildReprolint compiles the tool once into a temp dir and returns the
// binary path plus the repo root.
func buildReprolint(t *testing.T) (bin, root string) {
	t.Helper()
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	root, err = filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin = filepath.Join(t.TempDir(), "reprolint")
	build := exec.Command(goTool, "build", "-o", bin, "repro/cmd/reprolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reprolint: %v\n%s", err, out)
	}
	return bin, root
}

// TestVetToolProtocol exercises the full `go vet -vettool` protocol
// against the repository itself: the -V=full identification handshake,
// the -flags query, and a whole-tree vet run that must come back clean
// (the tree is lint-clean by construction; any new violation fails here
// before it fails in CI).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole tree")
	}
	bin, root := buildReprolint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	// cmd/go parses this line in work.Builder.toolID: at least three
	// fields, f[1] == "version", and a devel version must end in a
	// buildID= field.
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" && !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Errorf("-V=full output %q does not satisfy cmd/go's toolID parser", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal(out, &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, out)
	}
	if len(flags) == 0 {
		t.Fatal("-flags printed no flags; per-analyzer enable flags missing")
	}
	if !sort.SliceIsSorted(flags, func(i, j int) bool { return flags[i].Name < flags[j].Name }) {
		t.Errorf("-flags not sorted by name (cmd/go hashes the bytes into action IDs): %s", out)
	}
	names := make(map[string]bool, len(flags))
	for _, fl := range flags {
		names[fl.Name] = true
	}
	for _, want := range []string{"json", "maporder", "sentinelwrap", "snapshotdeep", "costbalance", "injectoronce", "observerpurity", "hotpathalloc", "colescape", "bitaddr"} {
		if !names[want] {
			t.Errorf("-flags missing %q: %s", want, out)
		}
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	var stderr bytes.Buffer
	vet.Stdout = os.Stdout
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool over the tree found violations or failed: %v\n%s", err, stderr.String())
	}
}

// TestCFGDebugDump checks the -cfg-debug front end: a named function
// renders its block graph, a missing one is a usage error.
func TestCFGDebugDump(t *testing.T) {
	var out, errw bytes.Buffer
	src := filepath.Join(t.TempDir(), "x.go")
	if err := os.WriteFile(src, []byte(`package x

func Sum(vals []int) (total int) {
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	return total
}
`), 0o666); err != nil {
		t.Fatal(err)
	}
	if code := dumpCFG(src+":Sum", &out, &errw); code != 0 {
		t.Fatalf("dumpCFG exit %d: %s", code, errw.String())
	}
	dump := out.String()
	for _, want := range []string{"cfg Sum:", "range.head", "if.then", "exit"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if code := dumpCFG(src+":Missing", &out, &errw); code != 2 {
		t.Errorf("dumpCFG for a missing function = %d, want 2", code)
	}
	if code := dumpCFG("no-colon", &out, &errw); code != 2 {
		t.Errorf("dumpCFG without file:Func = %d, want 2", code)
	}
}

// TestStandaloneDriver runs the driver front end over a scratch module
// with seeded violations: exit 2 with -json findings on the first run,
// exit 0 after -write-baseline records them as suppression debt, a SARIF
// report carrying the baselineState split, and exit 2 again when a new
// violation lands on top of the baseline.
func TestStandaloneDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet twice")
	}
	bin, _ := buildReprolint(t)

	scratch := t.TempDir()
	writeFile := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(scratch, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module scratch\n\ngo 1.21\n")
	writeFile("dirty.go", `package scratch

import "time"

func Sum(m map[string]int) (total int) {
	for _, v := range m {
		total += v
	}
	return total
}

func Now() time.Time { return time.Now() }
`)

	run := func(args ...string) (exit int, stdout, stderr string) {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Dir = scratch
		var outBuf, errBuf bytes.Buffer
		cmd.Stdout = &outBuf
		cmd.Stderr = &errBuf
		err := cmd.Run()
		if err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("running %v: %v", args, err)
			}
			exit = ee.ExitCode()
		}
		return exit, outBuf.String(), errBuf.String()
	}

	// Plain run: both seeded violations, exit 2, structured JSON.
	exit, stdout, stderr := run("-json", "./...")
	if exit != 2 {
		t.Fatalf("dirty run exit = %d, want 2\nstdout: %s\nstderr: %s", exit, stdout, stderr)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, stdout)
	}
	got := make(map[string]string, len(findings))
	for _, f := range findings {
		got[f.Analyzer] = f.File
	}
	if got["maporder"] != "dirty.go" || got["wallclock"] != "dirty.go" {
		t.Fatalf("findings = %+v, want maporder and wallclock in dirty.go", findings)
	}

	// Ratchet: record the debt, then gate against it — clean by
	// construction, with the debt reported.
	baseline := filepath.Join(scratch, "baseline.json")
	if exit, _, stderr = run("-baseline", baseline, "-write-baseline", "./..."); exit != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\n%s", exit, stderr)
	}
	sarif := filepath.Join(t.TempDir(), "out.sarif")
	if exit, _, stderr = run("-baseline", baseline, "-sarif", sarif, "./..."); exit != 0 {
		t.Fatalf("baselined run exit = %d, want 0\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "0 new finding(s)") || !strings.Contains(stderr, "baselined") {
		t.Errorf("baselined run summary missing debt accounting: %s", stderr)
	}
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				BaselineState string `json:"baselineState"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("SARIF version/runs = %q/%d, want 2.1.0/1", doc.Version, len(doc.Runs))
	}
	for _, r := range doc.Runs[0].Results {
		if r.BaselineState != "unchanged" {
			t.Errorf("baselined finding has baselineState %q, want unchanged", r.BaselineState)
		}
	}

	// A new violation on top of the baseline fails the gate again.
	writeFile("worse.go", `package scratch

func Keys(m map[string]int) (ks []string) {
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
`)
	if exit, _, stderr = run("-baseline", baseline, "./..."); exit != 2 {
		t.Fatalf("new-violation run exit = %d, want 2\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "worse.go") {
		t.Errorf("new finding not reported: %s", stderr)
	}
}
