package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetToolProtocol builds the reprolint binary and exercises the full
// `go vet -vettool` protocol against the repository itself: the -V=full
// identification handshake, the -flags query, and a whole-tree vet run
// that must come back clean (the tree is lint-clean by construction; any
// new violation fails here before it fails in CI).
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets the whole tree")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "reprolint")
	build := exec.Command(goTool, "build", "-o", bin, "repro/cmd/reprolint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reprolint: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	// cmd/go parses this line in work.Builder.toolID: at least three
	// fields, f[1] == "version", and a devel version must end in a
	// buildID= field.
	if len(f) < 3 || f[1] != "version" || f[2] == "devel" && !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Errorf("-V=full output %q does not satisfy cmd/go's toolID parser", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Errorf("-flags printed %q, want []", got)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	var stderr bytes.Buffer
	vet.Stdout = os.Stdout
	vet.Stderr = &stderr
	if err := vet.Run(); err != nil {
		t.Fatalf("go vet -vettool over the tree found violations or failed: %v\n%s", err, stderr.String())
	}
}
