package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

var update = flag.Bool("update", false, "rewrite the golden tables file from the current output")

// goldenSeed matches the default -seed of the command and the record in
// EXPERIMENTS.md.
const goldenSeed = 1998

// TestTablesGolden locks the full Table 1 rendering byte-for-byte. The
// experiment engine, the simulators and the renderer all feed this output,
// so any refactor of the machine runtime that changes a single cost unit —
// or a single byte of formatting — fails here. Regenerate deliberately
// with:
//
//	go test ./cmd/tables -run TestTablesGolden -update
func TestTablesGolden(t *testing.T) {
	out, err := repro.RenderTables(goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", fmt.Sprintf("tables_seed%d.golden", goldenSeed))
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if out == string(want) {
		return
	}
	gotLines := strings.Split(out, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("tables output diverges from golden at line %d:\ngot:  %q\nwant: %q",
				i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("tables output length differs from golden: %d lines vs %d", len(gotLines), len(wantLines))
}
