// Command tables regenerates the paper's evaluation: all four sub-tables
// of Table 1 of MacKenzie & Ramachandran (SPAA 1998), with the lower-bound
// formula, the Section 8 upper-bound formula and the measured simulator
// cost of the matching algorithm at every sweep point.
//
// Usage:
//
//	tables [-seed N] [-id T2.Parity.det]
//
// Without -id it renders everything (the content of EXPERIMENTS.md);
// with -id it runs a single row.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/sweep"
)

func main() {
	seed := flag.Int64("seed", 1998, "workload seed")
	id := flag.String("id", "", "run a single experiment (e.g. T2.Parity.det)")
	theorems := flag.Bool("theorems", false, "also print the GSM-level theorem sweeps (Thm 3.1, Thm 6.3)")
	params := flag.Bool("params", false, "also print the g and L/g parameter sweeps")
	format := flag.String("format", "text", "output format: text | csv | json")
	flag.Parse()

	if *format != "text" {
		out, err := repro.ExportTables(*seed, *format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}

	if *theorems {
		out, err := repro.RenderTheoremSweeps(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *id == "" && !*params {
			return
		}
	}
	if *params {
		out, err := repro.RenderParamSweeps(*seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		if *id == "" {
			return
		}
	}

	if *id != "" {
		r, err := repro.RunExperiment(*id, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Print(repro.RenderExperiment(r))
		return
	}

	// The full render runs through the sweep harness — the same per-point
	// path `parsim sweep -preset tables` takes — and reassembles the
	// records, which keeps the two entry points byte-identical by
	// construction.
	s, err := sweep.Run(sweep.PresetTables(*seed), sweep.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	out, err := sweep.RenderTablesFromRecords(s.Records)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
