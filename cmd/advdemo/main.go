// Command advdemo runs the paper's proof machinery live:
//
//   - the Section 5 knowledge ledger (Know / AffProc / AffCell / state
//     degrees) of a real GSM algorithm, computed exactly by exhaustive
//     input enumeration, with the t-goodness thresholds alongside;
//   - the Section 7 OR adversary: the layered H_i mixture, a RANDOMRESTRICT
//     walk, and the Lemma 7.4 line-17 statistics;
//   - the degree anchors of Theorems 3.1/7.2 (deg Parity_n = deg OR_n = n).
//
// Usage:
//
//	advdemo [-n 8] [-trials 2000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/adversary"
	"repro/internal/gsm"
)

func main() {
	n := flag.Int("n", 8, "inputs for the knowledge ledger (≤ 12)")
	trials := flag.Int("trials", 2000, "Monte Carlo trials for the OR adversary")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*n, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "advdemo:", err)
		os.Exit(1)
	}
}

func run(n, trials int, seed int64) error {
	fmt.Println("== Degree anchors (Fact 2.1, Theorems 3.1/7.2) ==")
	for _, k := range []int{2, 4, 8} {
		fmt.Printf("  deg(Parity_%d) = %d   deg(OR_%d) = %d   C(OR_%d) = %d\n",
			k, repro.ParityFn(k).Degree(), k, repro.ORFn(k).Degree(),
			k, repro.ORFn(k).Certificate())
	}

	fmt.Println("\n== Section 5 knowledge ledger: binary merge tree on the GSM ==")
	cells := 2*n + 2
	runner := func(bits []int64) (*gsm.Machine, error) {
		m, err := gsm.New(gsm.Config{P: n, Alpha: 1, Beta: 1, Gamma: 1, N: n, Cells: cells})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.LoadInputs(bits); err != nil {
			return nil, err
		}
		cur, width, next := 0, n, n
		for width > 1 {
			nw := (width + 1) / 2
			curL, widthL, nextL := cur, width, next
			m.Phase(func(c *gsm.Ctx) {
				j := c.Proc()
				if j >= nw {
					return
				}
				a := c.Read(curL + 2*j)
				var b gsm.Info
				if 2*j+1 < widthL {
					b = c.Read(curL + 2*j + 1)
				}
				c.Write(nextL+j, a.Merge(b))
			})
			cur, width, next = next, nw, next+nw
		}
		return m, nil
	}
	a, err := repro.AnalyzeKnowledge(runner, n, n, cells)
	if err != nil {
		return err
	}
	fmt.Printf("  %6s %10s %10s %12s %12s %10s\n",
		"phase", "max|Know|", "max deg", "max|AffProc|", "max|AffCell|", "d_t bound")
	for t := 0; t < a.Phases; t++ {
		fmt.Printf("  %6d %10d %10d %12d %12d %10.0f\n",
			t, a.MaxKnow[t], a.MaxDegree[t], a.MaxAffProc[t], a.MaxAffCell[t],
			adversary.DT(t+1, 1, 1))
	}
	if v := adversary.CheckTGood(a, 1, 1); len(v) == 0 {
		fmt.Println("  t-goodness: all invariants hold")
	} else {
		fmt.Printf("  t-goodness VIOLATIONS: %+v\n", v)
	}

	fmt.Println("\n== Theorem 3.2 parity adversary (knowledge graph, independent sets) ==")
	rngP := rand.New(rand.NewSource(seed))
	for _, fanin := range []int{2, 4, 8} {
		res, err := adversary.ParityAdversary(rngP, 1<<10, adversary.TreeParityAccess{Fanin: fanin}, float64(fanin), 64)
		if err != nil {
			return err
		}
		fmt.Printf("  fan-in %d tree: adversary keeps >1 unfixed variable for %d phases (|V_t|: ",
			fanin, res.Phases)
		for i, u := range res.Unfixed {
			if i > 0 {
				fmt.Print("→")
			}
			fmt.Print(u)
		}
		fmt.Println(")")
	}

	fmt.Println("\n== Section 7 OR adversary (layered mixture, RANDOMRESTRICT) ==")
	mix, err := adversary.NewORMixture(1<<16, 1)
	if err != nil {
		return err
	}
	fmt.Printf("  groups r = %d, layers = %d, densities:", mix.Groups, mix.Layers())
	for _, d := range mix.D {
		fmt.Printf(" %.3g", d)
	}
	fmt.Println()
	rng := rand.New(rand.NewSource(seed))
	line17, early, stepsSum := 0, 0, 0
	for k := 0; k < trials; k++ {
		res, err := adversary.ORRefine(rng, mix, quiet{}, 1, 1, 64)
		if err != nil {
			return err
		}
		if res.Line17 {
			line17++
		}
		if res.FixedEarly {
			early++
		}
		stepsSum += res.Steps
	}
	fmt.Printf("  %d trials: avg steps %.2f, line-17 rate %.3f (Lemma 7.4 bound %.3f), early fixes %d\n",
		trials, float64(stepsSum)/float64(trials),
		float64(line17)/float64(trials),
		2*float64(mix.Layers())/float64(adversary.LogStarBase(2, float64(mix.Groups))),
		early)
	return nil
}

// quiet is an oblivious low-traffic access profile: the adversary can never
// cash in an early fix against it.
type quiet struct{}

func (quiet) MaxRWP(int, *adversary.LayerSet) float64    { return 1 }
func (quiet) MaxAccess(int, *adversary.LayerSet) float64 { return 2 }
