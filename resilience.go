package repro

import (
	"repro/internal/boolor"
	"repro/internal/compaction"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/gsm"
	"repro/internal/parity"
	"repro/internal/qsm"
)

// This file is the facade of the fault-injection and recovery subsystem
// (internal/fault + the engine's checkpoint/rollback machinery; see
// DESIGN.md §6). A FaultPlan — a seeded RNG plus declarative fault specs
// — attaches to any machine via InjectFaults; the engine consults it once
// per phase attempt at the commit barrier, so the fault schedule, the
// recovery behavior and the observer event stream are byte-identical for
// every Workers setting at a given seed.

// Fault-injection types, re-exported for users of the public API.
type (
	// FaultPlan is a deterministic, seeded fault schedule implementing
	// Injector; build one with NewFaultPlan and attach it with a
	// machine's InjectFaults. A plan is single-use: one plan per run.
	FaultPlan = fault.Plan
	// FaultSpec declares one fault source (kind + phase/probability).
	FaultSpec = fault.Spec
	// FaultKind enumerates the declarative fault kinds.
	FaultKind = fault.Kind
	// FaultEvent is one injected fault in the plan's deterministic log.
	FaultEvent = fault.Event
	// FaultReport summarises a faulted run: injected/recovered/masked
	// counts and the model-time recovery overhead.
	FaultReport = fault.Report
	// Injector is the engine-level injection hook; FaultPlan is the
	// standard implementation.
	Injector = engine.Injector
	// RetryPolicy bounds transient-fault recovery: attempts per phase and
	// the model-time backoff charged per retry (never wall clock).
	RetryPolicy = engine.RetryPolicy
)

// Fault kinds accepted by FaultSpec.
const (
	// FaultCrash fails one processor (masked in degraded mode, poisoning
	// otherwise).
	FaultCrash = fault.Crash
	// FaultMemTransient is a transient memory error: rolled back and
	// retried (shared-memory machines).
	FaultMemTransient = fault.MemTransient
	// FaultMsgDrop / FaultMsgDup are transient superstep message faults
	// (BSP machines).
	FaultMsgDrop = fault.MsgDrop
	FaultMsgDup  = fault.MsgDup
	// FaultViolation injects a contention-rule violation.
	FaultViolation = fault.Violation
	// FaultBudget poisons the machine when model time exceeds the spec's
	// Budget.
	FaultBudget = fault.Budget
)

// Fault sentinels: identify an injected fault's kind through a machine's
// Err chain with errors.Is.
var (
	ErrFaultCrash     = fault.ErrCrash
	ErrFaultTransient = fault.ErrTransient
	ErrFaultMessage   = fault.ErrMessage
	ErrFaultViolation = fault.ErrInjectedViolation
	ErrFaultBudget    = fault.ErrBudget
)

// Model violation sentinels, re-exported so facade users can classify a
// machine error without importing the simulator packages: errors.Is(err,
// ErrQSMViolation) identifies a QSM-family memory-access-rule breach
// (real or injected) through the full wrapped chain.
var (
	ErrQSMViolation = qsm.ErrViolation
	ErrGSMViolation = gsm.ErrViolation
)

// NewFaultPlan builds a deterministic fault plan from a seed and specs;
// specs are evaluated in order at each phase barrier and the first that
// fires decides the verdict. Attach with m.InjectFaults(plan, policy,
// degraded); retrieve the run summary with plan.Report(m).
func NewFaultPlan(seed int64, specs ...FaultSpec) *FaultPlan {
	return fault.NewPlan(seed, specs...)
}

// ParseFaultSpecs parses the compact comma-separated spec syntax used by
// `parsim chaos` ("crash@3,mem~0.1"); see fault.ParseSpec for the
// grammar.
func ParseFaultSpecs(s string) ([]FaultSpec, error) {
	return fault.ParseSpecs(s)
}

// --- degraded-mode runners ----------------------------------------------------

// ParityTreeDegraded runs the k-ary XOR tree on a machine in degraded
// fault mode: work is re-partitioned over surviving processors before
// every phase, so crashes shift load instead of dropping tree slices.
// Returns the result cell address and the plan's fault report.
func ParityTreeDegraded(m *QSMMachine, plan *FaultPlan, base, n, fanin int) (int, *FaultReport, error) {
	addr, err := parity.TreeQSMDegraded(m, base, n, fanin)
	return addr, plan.Report(m), err
}

// ORContentionTreeDegraded runs the write-contention OR tree in degraded
// fault mode (survivor re-partitioning per phase). Returns the result
// cell address and the plan's fault report.
func ORContentionTreeDegraded(m *QSMMachine, plan *FaultPlan, base, n, fanin int) (int, *FaultReport, error) {
	addr, err := boolor.ContentionTreeDegraded(m, base, n, fanin)
	return addr, plan.Report(m), err
}

// CompactDartsDegraded runs the randomized dart-throwing LAC in degraded
// fault mode: each round's live darts are dealt round-robin to surviving
// processors, so a crashed processor's darts migrate instead of being
// lost. Returns the compaction result and the plan's fault report.
func CompactDartsDegraded(m *QSMMachine, plan *FaultPlan, seed int64, base, n int) (*DartCompactionResult, *FaultReport, error) {
	res, err := compaction.DartLACDegraded(m, newRand(seed), base, n)
	return res, plan.Report(m), err
}

// VerifyDartPlacement checks a dart-compaction result for soundness
// against the compacted input: every item placed exactly once, in the
// output window, no two items sharing a cell. The chaos harness uses it
// as the LAC correctness oracle.
func VerifyDartPlacement(input []int64, r *DartCompactionResult) error {
	return compaction.VerifyPlacement(input, r)
}
