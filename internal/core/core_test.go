package core

import (
	"strings"
	"testing"

	"repro/internal/bounds"
)

func TestExperimentsRegistryComplete(t *testing.T) {
	exps := Experiments()
	// Every Table 1 registry row must have exactly one experiment.
	want := map[string]bool{}
	for _, e := range bounds.Registry {
		want[e.ID] = false
	}
	for _, e := range exps {
		if _, ok := want[e.ID]; !ok {
			t.Errorf("experiment %s has no bounds entry", e.ID)
			continue
		}
		if want[e.ID] {
			t.Errorf("duplicate experiment for %s", e.ID)
		}
		want[e.ID] = true
		if e.Measure == nil || e.Args == nil || len(e.Ns) == 0 {
			t.Errorf("experiment %s incomplete", e.ID)
		}
		if e.Quantity != "time" && e.Quantity != "rounds" {
			t.Errorf("experiment %s has bad quantity %q", e.ID, e.Quantity)
		}
	}
	for id, covered := range want {
		if !covered {
			t.Errorf("bounds entry %s has no experiment", id)
		}
	}
}

func TestExperimentByID(t *testing.T) {
	if ExperimentByID("T2.Parity.det") == nil {
		t.Error("missing T2.Parity.det")
	}
	if ExperimentByID("nope") != nil {
		t.Error("unknown id should return nil")
	}
}

// Run the tight (Θ) rows at small sizes and check the ratio bands flatten —
// the core empirical claim of the reproduction.
func TestTightRowsFlatten(t *testing.T) {
	small := []int{1 << 8, 1 << 9, 1 << 10, 1 << 11}
	for _, id := range []string{
		"T2.Parity.det", "T3.Parity.det",
		"T4.OR.sqsm", "T4.OR.bsp", "T4.Parity.sqsm", "T4.Parity.bsp",
	} {
		e := ExperimentByID(id)
		if e == nil {
			t.Fatalf("missing experiment %s", id)
		}
		e.Ns = small
		r, err := e.Run(1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !r.Tight(3.0) {
			t.Errorf("%s: ratio spread %.2f exceeds 3 for a Θ row", id, r.RatioSpread)
		}
	}
}

// Ω rows: the measured algorithm cost must dominate the lower bound at
// every sweep point (with slack for our unit constants).
func TestLowerBoundsAreFloors(t *testing.T) {
	small := []int{1 << 8, 1 << 10, 1 << 12}
	for _, id := range []string{
		"T1.OR.det", "T1.OR.rand", "T2.OR.det", "T2.OR.rand",
		"T2.LAC.rand", "T3.OR.det",
	} {
		e := ExperimentByID(id)
		if e == nil {
			t.Fatalf("missing experiment %s", id)
		}
		e.Ns = small
		r, err := e.Run(2)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !r.DominatesBound(0.25) {
			t.Errorf("%s: measured cost dips below the lower bound:\n%s", id, RenderResult(r))
		}
	}
}

func TestRunValidation(t *testing.T) {
	e := &Experiment{ID: "bogus", Ns: []int{8}}
	if _, err := e.Run(1); err == nil {
		t.Error("want unknown-bound error")
	}
	e2 := ExperimentByID("T2.Parity.det")
	e2.Ns = nil
	if _, err := e2.Run(1); err == nil {
		t.Error("want empty-sweep error")
	}
}

func TestMeasurementsVerifyAnswers(t *testing.T) {
	// The measurement closures verify algorithm output; a sanity run of a
	// representative from each family must succeed.
	for _, id := range []string{
		"T1.Parity.det", "T1.LAC.det", "T3.LAC.det", "T4.LAC.qsm", "T4.LAC.bsp", "T4.OR.qsm",
	} {
		e := ExperimentByID(id)
		e.Ns = []int{1 << 8}
		if _, err := e.Run(3); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestRenderResult(t *testing.T) {
	e := ExperimentByID("T2.Parity.det")
	e.Ns = []int{1 << 8, 1 << 9}
	r, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderResult(r)
	for _, want := range []string{"T2.Parity.det", "ratio spread", "g·log n", "Θ"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Entry: &bounds.Entry{},
		Rows: []Row{
			{Measured: 10, Bound: 5, Ratio: 2},
			{Measured: 24, Bound: 6, Ratio: 4},
		},
		RatioSpread: 2,
	}
	if !r.Tight(2.5) || r.Tight(1.5) {
		t.Error("Tight threshold wrong")
	}
	if !r.DominatesBound(1.0) {
		t.Error("DominatesBound should hold")
	}
	if r.DominatesBound(3.0) {
		t.Error("DominatesBound with huge slack should fail")
	}
}
