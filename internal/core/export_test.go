package core

import (
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func smallResult(t *testing.T, id string) *Result {
	t.Helper()
	e := ExperimentByID(id)
	if e == nil {
		t.Fatalf("missing experiment %s", id)
	}
	e.Ns = []int{1 << 8, 1 << 9, 1 << 10}
	r, err := e.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestShapeOfTightRow(t *testing.T) {
	r := smallResult(t, "T2.Parity.det")
	s, err := ShapeOf(r)
	if err != nil {
		t.Fatal(err)
	}
	// Measured = 2g·log n, bound = g·log n ⇒ slopes 2g and g, ratio 2.
	if math.Abs(s.SlopeBound-sweepG) > 1e-9 {
		t.Errorf("bound slope = %v, want g=%d", s.SlopeBound, sweepG)
	}
	if math.Abs(s.SlopeMeasured-2*sweepG) > 1e-9 {
		t.Errorf("measured slope = %v, want 2g=%d", s.SlopeMeasured, 2*sweepG)
	}
	if math.Abs(s.ShapeRatio-2) > 1e-9 {
		t.Errorf("shape ratio = %v, want 2", s.ShapeRatio)
	}
	if s.R2Measured < 0.999 {
		t.Errorf("R² = %v, want ≈ 1 for an exact log shape", s.R2Measured)
	}
}

func TestShapeOfErrors(t *testing.T) {
	r := &Result{Rows: []Row{{N: 8, Measured: 1, Bound: 1}}}
	if _, err := ShapeOf(r); err == nil {
		t.Error("want too-few-points error")
	}
}

func TestExportJSONAndCSV(t *testing.T) {
	results := []*Result{
		smallResult(t, "T2.Parity.det"),
		smallResult(t, "T4.OR.sqsm"),
	}
	js, err := ExportJSON(results)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(js), &rows); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("JSON rows = %d, want 6", len(rows))
	}
	if rows[0]["id"] != "T2.Parity.det" || rows[0]["tight"] != true {
		t.Errorf("row 0 = %v", rows[0])
	}

	cs, err := ExportCSV(results)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(cs)).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v", err)
	}
	if len(recs) != 7 { // header + 6
		t.Fatalf("CSV rows = %d, want 7", len(recs))
	}
	if recs[0][0] != "id" || recs[1][0] != "T2.Parity.det" {
		t.Errorf("CSV head = %v / %v", recs[0], recs[1])
	}
	// Rounds rows carry allRounds=true.
	found := false
	for _, rec := range recs[1:] {
		if rec[0] == "T4.OR.sqsm" && rec[11] == "true" {
			found = true
		}
	}
	if !found {
		t.Error("rounds row missing allRounds=true")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	results, err := RunAll(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("results = %d, want %d", len(results), len(Experiments()))
	}
	// Every result supports a shape fit and the Θ rows' shape ratios are
	// bounded constants.
	for _, r := range results {
		s, err := ShapeOf(r)
		if err != nil {
			t.Errorf("%s: %v", r.Exp.ID, err)
			continue
		}
		// Tightness means the slope ratio is a constant (the hidden Θ
		// constant of the implementation), not that it is 1; the gadget
		// parity's four-phase levels put it at ≈ 6.5.
		if r.Entry.Tight && (s.ShapeRatio < 0.1 || s.ShapeRatio > 8) {
			t.Errorf("%s: Θ row shape ratio %v outside [0.1, 8]", r.Exp.ID, s.ShapeRatio)
		}
	}
}
