package core

import (
	"fmt"
	"strings"

	"repro/internal/bounds"
	"repro/internal/gsm"
	"repro/internal/gsmalg"
	"repro/internal/workload"
)

// TheoremSweeps renders the GSM-level theorem experiments that feed the
// Table 1 rows (the bounds are proved on the GSM and transferred by
// Claim 2.1): the Theorem 3.1 gather shape across μ and γ, and the
// Theorem 6.3 GSM(h) relaxed-round counts across h.
func TheoremSweeps(seed int64) (string, error) {
	var b strings.Builder

	fmt.Fprintf(&b, "Theorem 3.1 — GSM Parity: measured gather time vs μ·log(n/γ)/log μ\n")
	fmt.Fprintf(&b, "  %8s %6s %6s %14s %14s %8s\n", "n", "μ", "γ", "bound", "measured", "ratio")
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		for _, mu := range []int64{2, 4, 8} {
			for _, gamma := range []int64{1, 4} {
				r := (n + int(gamma) - 1) / int(gamma)
				m, err := gsm.New(gsm.Config{
					P: r, Alpha: mu, Beta: mu, Gamma: gamma, N: n,
					Cells: gsmalg.CellsNeedGather(r),
				})
				if err != nil {
					return "", err
				}
				bits := workload.Bits(seed+int64(n), n)
				if err := m.LoadInputs(bits); err != nil {
					return "", err
				}
				got, err := gsmalg.ParityGSM(m, n, int(mu))
				if err != nil {
					return "", err
				}
				if got != workload.Parity(bits) {
					return "", fmt.Errorf("core: GSM parity wrong at n=%d μ=%d", n, mu)
				}
				bound := bounds.GSMParityDet(bounds.GSMArgs{N: n, Alpha: mu, Beta: mu, Gamma: gamma})
				meas := float64(m.Report().TotalTime)
				fmt.Fprintf(&b, "  %8d %6d %6d %14.1f %14.1f %8.2f\n",
					n, mu, gamma, bound, meas, meas/bound)
			}
		}
	}

	fmt.Fprintf(&b, "\nTheorem 6.3 — GSM(h) relaxed rounds: gather round count vs √(log(n/dγ)/log(μh/λ))\n")
	fmt.Fprintf(&b, "  %8s %6s %14s %14s\n", "n", "h", "√ lower bound", "measured rounds")
	for _, n := range []int{1 << 10, 1 << 14} {
		for _, h := range []int64{4, 16, 64} {
			alpha := int64(2)
			m, err := gsm.New(gsm.Config{
				P: n, Alpha: alpha, Beta: alpha, Gamma: 1, N: n,
				Cells: gsmalg.CellsNeedGather(n),
			})
			if err != nil {
				return "", err
			}
			bits := workload.Bits(seed+int64(n)+h, n)
			if err := m.LoadInputs(bits); err != nil {
				return "", err
			}
			fanin := int(h)
			if fanin < 2 {
				fanin = 2
			}
			if _, err := gsmalg.ParityGSM(m, n, fanin); err != nil {
				return "", err
			}
			rounds, all := gsmalg.RelaxedRounds(m.Report(), h, 1)
			if !all {
				return "", fmt.Errorf("core: GSM(h) gather broke the h=%d budget", h)
			}
			lb := bounds.GSMLACRoundsRelaxed(bounds.GSMArgs{
				N: n, Alpha: alpha, Beta: alpha, Gamma: 1, H: h,
			}, 4)
			fmt.Fprintf(&b, "  %8d %6d %14.2f %14d\n", n, h, lb, rounds)
		}
	}
	return b.String(), nil
}
