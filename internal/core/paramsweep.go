package core

import (
	"fmt"
	"strings"

	"repro/internal/boolor"
	"repro/internal/bounds"
	"repro/internal/bsp"
	"repro/internal/cost"
	"repro/internal/parity"
	"repro/internal/workload"
)

// ParamSweeps renders the bound-parameter sweeps orthogonal to the n
// sweeps of the main tables: the g axis of the QSM/s-QSM rows and the L/g
// axis of the BSP rows — the denominators (log g, log(L/g)) that
// distinguish the models in Table 1.
func ParamSweeps(seed int64) (string, error) {
	var b strings.Builder
	n := 1 << 12

	fmt.Fprintf(&b, "g-sweep at n=%d — s-QSM Parity Θ(g·log n) and QSM OR vs fan-in-g contention tree\n", n)
	fmt.Fprintf(&b, "  %4s %16s %16s %16s %16s\n",
		"g", "sQSM par bound", "sQSM par meas", "QSM OR bound", "QSM OR meas")
	for _, g := range []int64{1, 2, 4, 8, 16, 32} {
		in := workload.Bits(seed, n)

		ms, err := newQSM(cost.RuleSQSM, n, n, g)
		if err != nil {
			return "", err
		}
		if err := ms.Load(0, in); err != nil {
			return "", err
		}
		out, err := parity.TreeQSM(ms, 0, n, 2)
		if err != nil {
			return "", err
		}
		if ms.Peek(out) != workload.Parity(in) {
			return "", fmt.Errorf("core: g-sweep parity wrong at g=%d", g)
		}

		mo, err := newQSM(cost.RuleQSM, n, n, g)
		if err != nil {
			return "", err
		}
		if err := mo.Load(0, in); err != nil {
			return "", err
		}
		fan := int(g)
		if fan < 2 {
			fan = 2
		}
		outOr, err := boolor.ContentionTree(mo, 0, n, fan)
		if err != nil {
			return "", err
		}
		if mo.Peek(outOr) != workload.Or(in) {
			return "", fmt.Errorf("core: g-sweep OR wrong at g=%d", g)
		}

		a := bounds.Args{N: n, P: n, G: g}
		fmt.Fprintf(&b, "  %4d %16.1f %16d %16.1f %16d\n",
			g, bounds.SQSMParityDet(a), ms.Report().TotalTime,
			bounds.QSMORDet(a), mo.Report().TotalTime)
	}

	fmt.Fprintf(&b, "\nL/g-sweep at n=%d, g=2 — BSP Parity Θ(L·log q/log(L/g))\n", n)
	fmt.Fprintf(&b, "  %4s %6s %16s %16s %10s\n", "L/g", "L", "bound", "measured", "steps")
	for _, lg := range []int64{2, 4, 8, 16, 32} {
		g := int64(2)
		L := g * lg
		p := n / sweepBSPDiv
		in := workload.Bits(seed+lg, n)
		m, err := bsp.New(bsp.Config{
			P: p, G: g, L: L, N: n, PrivCells: parity.PrivNeedBSP(n, p),
		})
		if err != nil {
			return "", err
		}
		if err := m.Scatter(in); err != nil {
			return "", err
		}
		got, err := parity.RunBSP(m, n, int(lg))
		if err != nil {
			return "", err
		}
		if got != workload.Parity(in) {
			return "", fmt.Errorf("core: L/g-sweep parity wrong at L/g=%d", lg)
		}
		a := bounds.Args{N: n, P: p, G: g, L: L}
		fmt.Fprintf(&b, "  %4d %6d %16.1f %16d %10d\n",
			lg, L, bounds.BSPParityDet(a), m.Report().TotalTime, m.Report().NumPhases())
	}
	return b.String(), nil
}
