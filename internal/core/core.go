// Package core is the experiment engine of the reproduction: it wires the
// Section 8 upper-bound algorithms (running on the cost simulators) to the
// Table 1 bound formulas, sweeps input sizes, and renders the
// measured-vs-predicted tables that stand in for the paper's evaluation.
//
// For a Θ (tight) row, the measured model time divided by the bound
// formula must stay within a constant band across the sweep (RatioSpread
// close to 1). For an Ω row, the bound is a floor: the measured cost of
// the best known algorithm sits above it and the ratio may drift upward —
// the gap the paper leaves open.
package core

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/cost"
)

// Experiment binds one Table 1 row to a measurement procedure.
type Experiment struct {
	// ID matches the bounds registry entry that predicts this row.
	ID string
	// Title is a human-readable row label.
	Title string
	// Quantity is "time" (model time units) or "rounds" (phase count of a
	// computing-in-rounds algorithm).
	Quantity string
	// Ns is the sweep of input sizes.
	Ns []int
	// Args yields the machine parameters used at size n (these feed the
	// bound formula too).
	Args func(n int) bounds.Args
	// Measure runs the algorithm at size n and returns the measured
	// quantity plus the cost report it came from.
	Measure func(n int, seed int64) (float64, *cost.Report, error)
	// Algorithm names the §8 algorithm being measured.
	Algorithm string
}

// Row is one sweep point of a completed experiment.
type Row struct {
	N        int
	Bound    float64
	Upper    float64
	Measured float64
	// Ratio is Measured/Bound.
	Ratio float64
	// AllRounds reports whether every phase of the run met the round
	// budget (only meaningful for rounds experiments).
	AllRounds bool
}

// Result is a completed experiment.
type Result struct {
	Exp   *Experiment
	Entry *bounds.Entry
	Rows  []Row
	// RatioSpread is max(Ratio)/min(Ratio) across the sweep: ≈ 1 means the
	// measured quantity tracks the bound's shape exactly.
	RatioSpread float64
}

// RunPoint executes one sweep point of the experiment: it measures the
// algorithm at size n, evaluates the bound formulas at the same machine
// parameters, and returns the completed row. The sweep harness
// (internal/sweep) runs experiments one point at a time through this so
// that resumed sweeps re-run only the missing points.
func (e *Experiment) RunPoint(n int, seed int64) (Row, error) {
	entry := bounds.ByID(e.ID)
	if entry == nil {
		return Row{}, fmt.Errorf("core: experiment %q has no bounds entry", e.ID)
	}
	a := e.Args(n)
	measured, rep, err := e.Measure(n, seed)
	if err != nil {
		return Row{}, fmt.Errorf("core: %s at n=%d: %w", e.ID, n, err)
	}
	row := Row{
		N:        n,
		Bound:    entry.Eval(a),
		Measured: measured,
	}
	if entry.Upper != nil {
		row.Upper = entry.Upper(a)
	}
	if rep != nil {
		row.AllRounds = rep.AllRounds
	}
	if row.Bound > 0 {
		row.Ratio = row.Measured / row.Bound
	}
	return row, nil
}

// Assemble builds a Result from rows computed elsewhere (RunPoint calls
// recorded by a sweep, possibly across several harness invocations) and
// derives the ratio spread exactly as Run does.
func Assemble(e *Experiment, rows []Row) (*Result, error) {
	entry := bounds.ByID(e.ID)
	if entry == nil {
		return nil, fmt.Errorf("core: experiment %q has no bounds entry", e.ID)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: experiment %q has an empty sweep", e.ID)
	}
	res := &Result{Exp: e, Entry: entry, Rows: rows}
	minR, maxR := math.MaxFloat64, 0.0
	for _, row := range rows {
		if row.Bound > 0 {
			if row.Ratio < minR {
				minR = row.Ratio
			}
			if row.Ratio > maxR {
				maxR = row.Ratio
			}
		}
	}
	if minR > 0 && minR != math.MaxFloat64 {
		res.RatioSpread = maxR / minR
	}
	return res, nil
}

// Run executes the sweep.
func (e *Experiment) Run(seed int64) (*Result, error) {
	if entry := bounds.ByID(e.ID); entry == nil {
		return nil, fmt.Errorf("core: experiment %q has no bounds entry", e.ID)
	}
	if len(e.Ns) == 0 {
		return nil, fmt.Errorf("core: experiment %q has an empty sweep", e.ID)
	}
	rows := make([]Row, 0, len(e.Ns))
	for _, n := range e.Ns {
		row, err := e.RunPoint(n, seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return Assemble(e, rows)
}

// Tight reports whether the result empirically supports a Θ claim: the
// ratio band stays within the given spread.
func (r *Result) Tight(maxSpread float64) bool {
	return r.RatioSpread > 0 && r.RatioSpread <= maxSpread
}

// DominatesBound reports whether every measured point sits at or above
// slack·bound — the Ω direction (the lower bound really is below the
// algorithm's cost).
func (r *Result) DominatesBound(slack float64) bool {
	for _, row := range r.Rows {
		if row.Measured < slack*row.Bound {
			return false
		}
	}
	return true
}
