package core

import (
	"strings"
	"testing"
)

func TestRenderAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration in -short mode")
	}
	out, err := RenderAll(1998)
	if err != nil {
		t.Fatal(err)
	}
	// All four sub-table headers and all experiment ids appear.
	for table := 1; table <= 4; table++ {
		if !strings.Contains(out, TableTitles[table]) {
			t.Errorf("missing header for table %d", table)
		}
	}
	for _, e := range Experiments() {
		if !strings.Contains(out, e.ID+" — ") {
			t.Errorf("missing row %s", e.ID)
		}
	}
	if strings.Count(out, "ratio spread") != len(Experiments()) {
		t.Errorf("spread lines = %d, want %d",
			strings.Count(out, "ratio spread"), len(Experiments()))
	}
}
