package core

import (
	"fmt"
	"math/rand"

	"repro/internal/boolor"
	"repro/internal/bounds"
	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// Default sweep parameters. The shapes in Table 1 are functions of n (and
// n/p); the sweeps hold g, L and n/p fixed while n grows, which is the
// regime the ratio analysis needs.
const (
	sweepG      = 8  // QSM/s-QSM gap
	sweepBSPG   = 2  // BSP gap
	sweepBSPL   = 16 // BSP latency (L/g = 8)
	sweepNP     = 8  // n/p for the rounds table
	sweepBSPDiv = 4  // BSP components = n/4 for the time table
	gadgetBits  = 4  // gadget group width (2^4 = 16 checkers/assignment set)
)

// DefaultNs is the standard input-size sweep.
func DefaultNs() []int { return []int{1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12, 1 << 13} }

func qsmArgs(n int) bounds.Args {
	return bounds.Args{N: n, P: n, G: sweepG, L: 0}
}

func bspArgs(n int) bounds.Args {
	return bounds.Args{N: n, P: n / sweepBSPDiv, G: sweepBSPG, L: sweepBSPL}
}

func roundsArgs(n int) bounds.Args {
	return bounds.Args{N: n, P: n / sweepNP, G: sweepG, L: sweepBSPL}
}

// --- shared measurement helpers ------------------------------------------------

func newQSM(rule cost.Rule, n, p int, g int64) (*qsm.Machine, error) {
	return qsm.New(qsm.Config{Rule: rule, P: p, G: g, N: n, MemCells: n})
}

// measuredTime finishes a "time" measurement against the model-generic
// machine interface: the measured quantity is the report's total model
// time.
func measuredTime(m engine.Machine) (float64, *cost.Report, error) {
	return float64(m.Report().TotalTime), m.Report(), nil
}

// measuredRounds finishes a "rounds" measurement: every phase of the run
// must have met the round budget, and the measured quantity is the phase
// count. what names the algorithm in the budget-violation error.
func measuredRounds(m engine.Machine, what string) (float64, *cost.Report, error) {
	if !m.Report().AllRounds {
		return 0, nil, fmt.Errorf("core: %s broke the round budget", what)
	}
	return float64(m.Report().NumPhases()), m.Report(), nil
}

func measureGadgetParity(rule cost.Rule, g int64, gb int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		perGroup := gb << uint(gb)
		procs := ((n + gb - 1) / gb) * perGroup
		m, err := newQSM(rule, n, procs, g)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		out, err := parity.GadgetQSM(m, 0, n, gb)
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Parity(in) {
			return 0, nil, fmt.Errorf("core: gadget parity wrong answer")
		}
		return measuredTime(m)
	}
}

func measureTreeParity(rule cost.Rule, g int64, fanin int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n, g)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		out, err := parity.TreeQSM(m, 0, n, fanin)
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Parity(in) {
			return 0, nil, fmt.Errorf("core: tree parity wrong answer")
		}
		return measuredTime(m)
	}
}

func measureContentionOR(rule cost.Rule, g int64) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n, g)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		out, err := boolor.ContentionTree(m, 0, n, int(g))
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Or(in) {
			return 0, nil, fmt.Errorf("core: contention OR wrong answer")
		}
		return measuredTime(m)
	}
}

func measureReadTreeOR(rule cost.Rule, g int64, fanin int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n, g)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		out, err := boolor.ReadTree(m, 0, n, fanin)
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Or(in) {
			return 0, nil, fmt.Errorf("core: read-tree OR wrong answer")
		}
		return measuredTime(m)
	}
}

func measureDartLAC(rule cost.Rule, g int64) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n, g)
		if err != nil {
			return 0, nil, err
		}
		in, err := workload.Sparse(seed, n, n/4)
		if err != nil {
			return 0, nil, err
		}
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		res, err := compaction.DartLAC(m, rng, 0, n)
		if err != nil {
			return 0, nil, err
		}
		if len(res.Placed) != n/4 {
			return 0, nil, fmt.Errorf("core: dart LAC lost items")
		}
		return measuredTime(m)
	}
}

func measureBSPParity(fanin int, pFor func(int) int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := pFor(n)
		m, err := bsp.New(bsp.Config{
			P: p, G: sweepBSPG, L: sweepBSPL, N: n,
			PrivCells: parity.PrivNeedBSP(n, p),
		})
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		got, err := parity.RunBSP(m, n, fanin)
		if err != nil {
			return 0, nil, err
		}
		if got != workload.Parity(in) {
			return 0, nil, fmt.Errorf("core: BSP parity wrong answer")
		}
		return measuredTime(m)
	}
}

func measureBSPOR(fanin int, pFor func(int) int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := pFor(n)
		m, err := bsp.New(bsp.Config{
			P: p, G: sweepBSPG, L: sweepBSPL, N: n,
			PrivCells: boolor.PrivNeedBSP(n, p),
		})
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		got, err := boolor.RunBSP(m, n, fanin)
		if err != nil {
			return 0, nil, err
		}
		if got != workload.Or(in) {
			return 0, nil, fmt.Errorf("core: BSP OR wrong answer")
		}
		return measuredTime(m)
	}
}

func measureBSPDartLAC(pFor func(int) int) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := pFor(n)
		m, err := bsp.New(bsp.Config{
			P: p, G: sweepBSPG, L: sweepBSPL, N: n,
			PrivCells: compaction.PrivNeedDartBSP(n, p),
		})
		if err != nil {
			return 0, nil, err
		}
		in, err := workload.Sparse(seed, n, n/4)
		if err != nil {
			return 0, nil, err
		}
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		res, err := compaction.DartLACBSP(m, rng, n)
		if err != nil {
			return 0, nil, err
		}
		if len(res.Placed) != n/4 {
			return 0, nil, fmt.Errorf("core: BSP dart LAC lost items")
		}
		return measuredTime(m)
	}
}

// rounds measurements return the phase count and require every phase to be
// a round.

func measureRoundsParityQSM(rule cost.Rule) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n/sweepNP, sweepG)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		out, err := parity.TreeQSMRounds(m, 0, n)
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Parity(in) {
			return 0, nil, fmt.Errorf("core: rounds parity wrong answer")
		}
		return measuredRounds(m, "parity rounds algorithm")
	}
}

func measureRoundsOR(rule cost.Rule, qsmVariant bool) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n/sweepNP, sweepG)
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		var out int
		if qsmVariant {
			out, err = boolor.RoundsQSM(m, 0, n)
		} else {
			out, err = boolor.RoundsSQSM(m, 0, n)
		}
		if err != nil {
			return 0, nil, err
		}
		if got := m.Peek(out); got != workload.Or(in) {
			return 0, nil, fmt.Errorf("core: rounds OR wrong answer")
		}
		return measuredRounds(m, "OR rounds algorithm")
	}
}

func measureRoundsLACQSM(rule cost.Rule) func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		m, err := newQSM(rule, n, n/sweepNP, sweepG)
		if err != nil {
			return 0, nil, err
		}
		in, err := workload.Sparse(seed, n, n/4)
		if err != nil {
			return 0, nil, err
		}
		if err := m.Load(0, in); err != nil {
			return 0, nil, err
		}
		_, k, err := compaction.DetLAC(m, 0, n, sweepNP)
		if err != nil {
			return 0, nil, err
		}
		if k != n/4 {
			return 0, nil, fmt.Errorf("core: rounds LAC lost items")
		}
		return measuredRounds(m, "LAC rounds algorithm")
	}
}

func measureRoundsParityBSP() func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := n / sweepNP
		m, err := bsp.New(bsp.Config{
			P: p, G: 1, L: 2, N: n, PrivCells: parity.PrivNeedBSP(n, p),
		})
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		got, err := parity.RunBSP(m, n, sweepNP)
		if err != nil {
			return 0, nil, err
		}
		if got != workload.Parity(in) {
			return 0, nil, fmt.Errorf("core: BSP rounds parity wrong answer")
		}
		return measuredRounds(m, "BSP parity")
	}
}

func measureRoundsORBSP() func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := n / sweepNP
		m, err := bsp.New(bsp.Config{
			P: p, G: 1, L: 2, N: n, PrivCells: boolor.PrivNeedBSP(n, p),
		})
		if err != nil {
			return 0, nil, err
		}
		in := workload.Bits(seed, n)
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		got, err := boolor.RunBSP(m, n, sweepNP)
		if err != nil {
			return 0, nil, err
		}
		if got != workload.Or(in) {
			return 0, nil, fmt.Errorf("core: BSP rounds OR wrong answer")
		}
		return measuredRounds(m, "BSP OR")
	}
}

func measureRoundsLACBSP() func(int, int64) (float64, *cost.Report, error) {
	return func(n int, seed int64) (float64, *cost.Report, error) {
		p := n / sweepNP
		m, err := bsp.New(bsp.Config{
			P: p, G: 1, L: 2, N: n,
			PrivCells: compaction.PrivNeedDetLACBSP(n, p, sweepNP),
		})
		if err != nil {
			return 0, nil, err
		}
		in, err := workload.Sparse(seed, n, n/4)
		if err != nil {
			return 0, nil, err
		}
		if err := m.Scatter(in); err != nil {
			return 0, nil, err
		}
		_, h, err := compaction.DetLACBSP(m, n, sweepNP)
		if err != nil {
			return 0, nil, err
		}
		if h != n/4 {
			return 0, nil, fmt.Errorf("core: BSP LAC lost items")
		}
		return measuredRounds(m, "BSP LAC")
	}
}

// Experiments returns the full registry: one experiment per Table 1 row,
// in paper order (DESIGN.md's per-experiment index).
func Experiments() []*Experiment {
	ns := DefaultNs()
	return []*Experiment{
		// --- Table 1a: QSM time ---
		{ID: "T1.LAC.det", Title: "QSM LAC (det bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "DartLAC",
			Measure: measureDartLAC(cost.RuleQSM, sweepG)},
		{ID: "T1.LAC.rand", Title: "QSM LAC (rand bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "DartLAC",
			Measure: measureDartLAC(cost.RuleQSM, sweepG)},
		{ID: "T1.LAC.rand.nprocs", Title: "QSM LAC (n-procs rand bound)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "DartLAC",
			Measure: measureDartLAC(cost.RuleQSM, sweepG)},
		{ID: "T1.OR.det", Title: "QSM OR (det bound vs contention tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "ContentionTree(g)",
			Measure: measureContentionOR(cost.RuleQSM, sweepG)},
		{ID: "T1.OR.rand", Title: "QSM OR (rand bound vs contention tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "ContentionTree(g)",
			Measure: measureContentionOR(cost.RuleQSM, sweepG)},
		{ID: "T1.Parity.det", Title: "QSM Parity Θ w/ concurrent reads (gadget)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "GadgetQSM on CRQW",
			Measure: measureGadgetParity(cost.RuleCRQW, sweepG, gadgetBits)},
		{ID: "T1.Parity.rand", Title: "QSM Parity (rand bound vs gadget)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "GadgetQSM",
			Measure: measureGadgetParity(cost.RuleQSM, sweepG, 3)},

		// --- Table 1b: s-QSM time ---
		{ID: "T2.LAC.det", Title: "s-QSM LAC (det bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "DartLAC",
			Measure: measureDartLAC(cost.RuleSQSM, sweepG)},
		{ID: "T2.LAC.rand", Title: "s-QSM LAC (rand bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "DartLAC",
			Measure: measureDartLAC(cost.RuleSQSM, sweepG)},
		{ID: "T2.OR.det", Title: "s-QSM OR (det bound vs read tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "ReadTree(2)",
			Measure: measureReadTreeOR(cost.RuleSQSM, sweepG, 2)},
		{ID: "T2.OR.rand", Title: "s-QSM OR (rand bound vs read tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "ReadTree(2)",
			Measure: measureReadTreeOR(cost.RuleSQSM, sweepG, 2)},
		{ID: "T2.Parity.det", Title: "s-QSM Parity Θ (binary XOR tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "TreeQSM(2)",
			Measure: measureTreeParity(cost.RuleSQSM, sweepG, 2)},
		{ID: "T2.Parity.rand", Title: "s-QSM Parity (rand bound vs tree)", Quantity: "time",
			Ns: ns, Args: qsmArgs, Algorithm: "TreeQSM(2)",
			Measure: measureTreeParity(cost.RuleSQSM, sweepG, 2)},

		// --- Table 1c: BSP time ---
		{ID: "T3.LAC.det", Title: "BSP LAC (det bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "DartLACBSP",
			Measure: measureBSPDartLAC(func(n int) int { return n / sweepBSPDiv })},
		{ID: "T3.LAC.rand", Title: "BSP LAC (rand bound vs dart LAC)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "DartLACBSP",
			Measure: measureBSPDartLAC(func(n int) int { return n / sweepBSPDiv })},
		{ID: "T3.OR.det", Title: "BSP OR (det bound vs L/g tree)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "RunBSP(L/g)",
			Measure: measureBSPOR(sweepBSPL/sweepBSPG, func(n int) int { return n / sweepBSPDiv })},
		{ID: "T3.OR.rand", Title: "BSP OR (rand bound vs L/g tree)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "RunBSP(L/g)",
			Measure: measureBSPOR(sweepBSPL/sweepBSPG, func(n int) int { return n / sweepBSPDiv })},
		{ID: "T3.Parity.det", Title: "BSP Parity Θ (L/g tree)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "RunBSP(L/g)",
			Measure: measureBSPParity(sweepBSPL/sweepBSPG, func(n int) int { return n / sweepBSPDiv })},
		{ID: "T3.Parity.rand", Title: "BSP Parity (rand bound vs L/g tree)", Quantity: "time",
			Ns: ns, Args: bspArgs, Algorithm: "RunBSP(L/g)",
			Measure: measureBSPParity(sweepBSPL/sweepBSPG, func(n int) int { return n / sweepBSPDiv })},

		// --- Table 1d: rounds ---
		{ID: "T4.LAC.qsm", Title: "QSM LAC rounds (prefix compaction)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "DetLAC(n/p)",
			Measure: measureRoundsLACQSM(cost.RuleQSM)},
		{ID: "T4.LAC.sqsm", Title: "s-QSM LAC rounds (prefix compaction)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "DetLAC(n/p)",
			Measure: measureRoundsLACQSM(cost.RuleSQSM)},
		{ID: "T4.LAC.bsp", Title: "BSP LAC rounds (prefix + route)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "prefix.RunBSP + route",
			Measure: measureRoundsLACBSP()},
		{ID: "T4.OR.qsm", Title: "QSM OR rounds Θ (block + contention tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "RoundsQSM",
			Measure: measureRoundsOR(cost.RuleQSM, true)},
		{ID: "T4.OR.sqsm", Title: "s-QSM OR rounds Θ (n/p tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "RoundsSQSM",
			Measure: measureRoundsOR(cost.RuleSQSM, false)},
		{ID: "T4.OR.bsp", Title: "BSP OR rounds Θ (n/p tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "RunBSP(n/p)",
			Measure: measureRoundsORBSP()},
		{ID: "T4.Parity.qsm", Title: "QSM Parity rounds (n/p XOR tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "TreeQSMRounds",
			Measure: measureRoundsParityQSM(cost.RuleQSM)},
		{ID: "T4.Parity.sqsm", Title: "s-QSM Parity rounds Θ (n/p XOR tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "TreeQSMRounds",
			Measure: measureRoundsParityQSM(cost.RuleSQSM)},
		{ID: "T4.Parity.bsp", Title: "BSP Parity rounds Θ (n/p tree)", Quantity: "rounds",
			Ns: ns, Args: roundsArgs, Algorithm: "RunBSP(n/p)",
			Measure: measureRoundsParityBSP()},
	}
}

// ExperimentByID finds a registered experiment.
func ExperimentByID(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			return e
		}
	}
	return nil
}
