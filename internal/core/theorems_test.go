package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/workload"
)

func TestTheoremSweeps(t *testing.T) {
	out, err := TheoremSweeps(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 3.1") || !strings.Contains(out, "Theorem 6.3") {
		t.Fatalf("sweep output incomplete:\n%s", out)
	}
	// The Theorem 3.1 section must contain near-unit ratios: every ratio
	// line ends with a value ≤ 2.
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[0] != "n" {
			if ratio, err := strconv.ParseFloat(fields[5], 64); err == nil && ratio > 2 {
				t.Errorf("gather ratio %v > 2 in line %q", ratio, line)
			}
		}
	}
}

// Section 2.3: an r-round computation on input size n performs at most
// O(r·g·n) work on the QSM family — verify the accounting on the rounds
// parity algorithm.
func TestRoundsWorkBound(t *testing.T) {
	n := 1 << 12
	p := n / sweepNP
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: sweepG, N: n, MemCells: n})
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Bits(3, n)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	if _, err := parity.TreeQSMRounds(m, 0, n); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if !rep.AllRounds {
		t.Fatal("not computing in rounds")
	}
	r := int64(rep.NumPhases())
	// Work ≤ RoundSlack·r·g·n (the O(rgn) bound of Section 2.3).
	if rep.Work > cost.RoundSlack*r*sweepG*int64(n) {
		t.Errorf("work %d exceeds O(r·g·n) = %d·%d·%d·%d",
			rep.Work, cost.RoundSlack, r, sweepG, n)
	}
	// And the processor-time product is within a constant of linear work
	// O(g·n) per round.
	perRound := float64(rep.Work) / float64(r)
	if perRound > float64(cost.RoundSlack*sweepG*int64(n)) {
		t.Errorf("per-round work %v exceeds the linear-work budget", perRound)
	}
}

func TestParamSweeps(t *testing.T) {
	out, err := ParamSweeps(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "g-sweep") || !strings.Contains(out, "L/g-sweep") {
		t.Fatalf("param sweeps incomplete:\n%s", out)
	}
	// The s-QSM parity column must scale exactly 2× the bound at every g —
	// check only the g-sweep section (before the L/g header).
	gSection := strings.SplitN(out, "L/g-sweep", 2)[0]
	checked := 0
	for _, line := range strings.Split(gSection, "\n") {
		f := strings.Fields(line)
		if len(f) != 5 || f[0] == "g" || strings.Contains(line, "sweep") {
			continue
		}
		bound, err1 := strconv.ParseFloat(f[1], 64)
		meas, err2 := strconv.ParseFloat(f[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		if meas != 2*bound {
			t.Errorf("g-sweep row %q: measured %v ≠ 2×bound %v", line, meas, bound)
		}
		checked++
	}
	if checked < 5 {
		t.Errorf("only %d g-sweep rows checked", checked)
	}
}
