package core

import (
	"fmt"
	"sort"
	"strings"
)

// RenderResult formats one experiment's sweep as a fixed-width table.
func RenderResult(r *Result) string {
	var b strings.Builder
	tight := ""
	if r.Entry.Tight {
		tight = " [Θ — ratio must flatten]"
	}
	fmt.Fprintf(&b, "%s — %s%s\n", r.Exp.ID, r.Exp.Title, tight)
	fmt.Fprintf(&b, "  bound: %s   (%s)   algorithm: %s\n",
		r.Entry.Formula, r.Entry.Source, r.Exp.Algorithm)
	fmt.Fprintf(&b, "  %10s %14s %14s %14s %10s\n",
		"n", "lower bound", "upper bound", "measured "+r.Exp.Quantity, "ratio")
	for _, row := range r.Rows {
		up := "-"
		if row.Upper > 0 {
			up = fmt.Sprintf("%14.1f", row.Upper)
		}
		fmt.Fprintf(&b, "  %10d %14.1f %14s %14.1f %10.2f\n",
			row.N, row.Bound, up, row.Measured, row.Ratio)
	}
	fmt.Fprintf(&b, "  ratio spread across sweep: %.2f\n", r.RatioSpread)
	return b.String()
}

// TableTitles names the four sub-tables of Table 1, by table number.
var TableTitles = map[int]string{
	1: "Table 1a — Time lower bounds for QSM",
	2: "Table 1b — Time lower bounds for s-QSM",
	3: "Table 1c — Time lower bounds for BSP",
	4: "Table 1d — Number of rounds for p-processor algorithms (p ≤ n)",
}

// RenderResults renders completed experiments (keyed by ID) as the four
// sub-tables in paper order. Experiments absent from the map are skipped,
// so partial sweeps render the sub-tables they cover.
func RenderResults(results map[string]*Result) string {
	ids := make([]string, 0, len(results))
	for _, e := range Experiments() {
		if results[e.ID] != nil {
			ids = append(ids, e.ID)
		}
	}
	sort.Strings(ids)

	var b strings.Builder
	for table := 1; table <= 4; table++ {
		fmt.Fprintf(&b, "%s\n%s\n\n", TableTitles[table], strings.Repeat("=", len(TableTitles[table])))
		prefix := fmt.Sprintf("T%d.", table)
		for _, id := range ids {
			if strings.HasPrefix(id, prefix) {
				b.WriteString(RenderResult(results[id]))
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}

// RenderAll runs every registered experiment and renders the four
// sub-tables in paper order. Errors abort (the harness treats any failed
// row as a reproduction failure).
func RenderAll(seed int64) (string, error) {
	results := make(map[string]*Result)
	for _, e := range Experiments() {
		r, err := e.Run(seed)
		if err != nil {
			return "", err
		}
		results[e.ID] = r
	}
	return RenderResults(results), nil
}
