package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// Shape summarises how a result grows with n, via least-squares fits on
// the log₂ n axis: SlopeMeasured ≈ c for measured ≈ c·log n (the natural
// axis for the paper's Θ(g·log n)-family bounds), and the same for the
// bound column. For a Θ row the two coefficients agree up to the hidden
// constant; the ratio of slopes is reported as ShapeRatio.
type Shape struct {
	SlopeMeasured float64 `json:"slopeMeasured"`
	SlopeBound    float64 `json:"slopeBound"`
	ShapeRatio    float64 `json:"shapeRatio"`
	R2Measured    float64 `json:"r2Measured"`
}

// ShapeOf fits the sweep. Sweeps with fewer than two points return an
// error.
func ShapeOf(r *Result) (Shape, error) {
	xs := make([]float64, len(r.Rows))
	meas := make([]float64, len(r.Rows))
	bnd := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = float64(row.N)
		meas[i] = row.Measured
		bnd[i] = row.Bound
	}
	fm, err := stats.LogXFit(xs, meas)
	if err != nil {
		return Shape{}, fmt.Errorf("core: measured fit: %w", err)
	}
	fb, err := stats.LogXFit(xs, bnd)
	if err != nil {
		return Shape{}, fmt.Errorf("core: bound fit: %w", err)
	}
	s := Shape{SlopeMeasured: fm.Slope, SlopeBound: fb.Slope, R2Measured: fm.R2}
	if fb.Slope != 0 {
		s.ShapeRatio = fm.Slope / fb.Slope
	}
	return s, nil
}

// exportRow is the machine-readable form of one sweep point.
type exportRow struct {
	ID        string  `json:"id"`
	Model     string  `json:"model"`
	Problem   string  `json:"problem"`
	Kind      string  `json:"kind"`
	Tight     bool    `json:"tight"`
	Quantity  string  `json:"quantity"`
	N         int     `json:"n"`
	Bound     float64 `json:"bound"`
	Upper     float64 `json:"upper,omitempty"`
	Measured  float64 `json:"measured"`
	Ratio     float64 `json:"ratio"`
	AllRounds bool    `json:"allRounds,omitempty"`
}

func exportRows(results []*Result) []exportRow {
	var out []exportRow
	for _, r := range results {
		for _, row := range r.Rows {
			out = append(out, exportRow{
				ID:        r.Exp.ID,
				Model:     r.Entry.Model,
				Problem:   r.Entry.Problem,
				Kind:      string(r.Entry.Kind),
				Tight:     r.Entry.Tight,
				Quantity:  r.Exp.Quantity,
				N:         row.N,
				Bound:     row.Bound,
				Upper:     row.Upper,
				Measured:  row.Measured,
				Ratio:     row.Ratio,
				AllRounds: row.AllRounds,
			})
		}
	}
	return out
}

// ExportJSON renders completed experiments as a JSON array of sweep points.
func ExportJSON(results []*Result) (string, error) {
	b, err := json.MarshalIndent(exportRows(results), "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// ExportCSV renders completed experiments as CSV with a header row.
func ExportCSV(results []*Result) (string, error) {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	if err := w.Write([]string{
		"id", "model", "problem", "kind", "tight", "quantity",
		"n", "bound", "upper", "measured", "ratio", "allRounds",
	}); err != nil {
		return "", err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, row := range exportRows(results) {
		if err := w.Write([]string{
			row.ID, row.Model, row.Problem, row.Kind,
			strconv.FormatBool(row.Tight), row.Quantity,
			strconv.Itoa(row.N), f(row.Bound), f(row.Upper),
			f(row.Measured), f(row.Ratio), strconv.FormatBool(row.AllRounds),
		}); err != nil {
			return "", err
		}
	}
	w.Flush()
	return sb.String(), w.Error()
}

// RunAll executes every registered experiment and returns the results in
// registry order.
func RunAll(seed int64) ([]*Result, error) {
	var out []*Result
	for _, e := range Experiments() {
		r, err := e.Run(seed)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
