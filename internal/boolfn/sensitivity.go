package boolfn

import "fmt"

// SensitivityAt returns the sensitivity of f at input a: the number of
// coordinates whose flip changes f(a). Parity has sensitivity n at every
// input — the combinatorial cousin of its full degree.
func (f *Fn) SensitivityAt(a uint32) int {
	s := 0
	v := f.table[a]
	for i := 0; i < f.n; i++ {
		if f.table[a^(1<<uint(i))] != v {
			s++
		}
	}
	return s
}

// Sensitivity returns s(f) = max over inputs of SensitivityAt.
func (f *Fn) Sensitivity() int {
	s := 0
	for a := uint32(0); a < 1<<uint(f.n); a++ {
		if k := f.SensitivityAt(a); k > s {
			s = k
		}
	}
	return s
}

// InfluenceOf returns the influence of variable i: the fraction of inputs
// at which flipping x_i changes f.
func (f *Fn) InfluenceOf(i int) (float64, error) {
	if i < 0 || i >= f.n {
		return 0, fmt.Errorf("boolfn: variable %d of %d", i, f.n)
	}
	cnt := 0
	total := 1 << uint(f.n)
	for a := 0; a < total; a++ {
		if f.table[a] != f.table[a^(1<<uint(i))] {
			cnt++
		}
	}
	return float64(cnt) / float64(total), nil
}

// TotalInfluence returns Σ_i InfluenceOf(i) — the average sensitivity.
func (f *Fn) TotalInfluence() float64 {
	var t float64
	for i := 0; i < f.n; i++ {
		v, _ := f.InfluenceOf(i)
		t += v
	}
	return t
}
