package boolfn

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBoolFn(rng *rand.Rand, n int) *Fn {
	return MustNew(n, func(uint32) int64 { return int64(rng.Intn(2)) })
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, func(uint32) int64 { return 0 }); err == nil {
		t.Error("want error for negative arity")
	}
	if _, err := New(MaxVars+1, func(uint32) int64 { return 0 }); err == nil {
		t.Error("want error for huge arity")
	}
	if _, err := FromTable(2, []int64{1, 2, 3}); err == nil {
		t.Error("want error for wrong table length")
	}
	if _, err := FromTable(30, nil); err == nil {
		t.Error("want error for arity out of range")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	MustNew(-5, func(uint32) int64 { return 0 })
}

// Fact 2.1: the monomial expansion exists (Coefficients → FromCoefficients
// round-trips) and is unique (FromCoefficients → Coefficients round-trips).
func TestFact21RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		f := MustNew(n, func(uint32) int64 { return int64(rng.Intn(11) - 5) })
		coef := f.Coefficients()
		g, err := FromCoefficients(n, coef)
		if err != nil {
			t.Fatal(err)
		}
		for m := uint32(0); m < 1<<uint(n); m++ {
			if f.At(m) != g.At(m) {
				t.Fatalf("n=%d: round-trip mismatch at %b: %d vs %d", n, m, f.At(m), g.At(m))
			}
		}
		// Uniqueness direction: coefficients of the reconstruction match.
		coef2 := g.Coefficients()
		for i := range coef {
			if coef[i] != coef2[i] {
				t.Fatalf("coefficient round-trip mismatch at S=%b", i)
			}
		}
	}
}

func TestFromCoefficientsValidation(t *testing.T) {
	if _, err := FromCoefficients(3, []int64{1, 2}); err == nil {
		t.Error("want length error")
	}
}

// Exhaustive uniqueness for n=3: distinct functions have distinct
// coefficient vectors.
func TestFact21UniquenessExhaustive(t *testing.T) {
	seen := make(map[[8]int64]bool)
	for tt := 0; tt < 256; tt++ {
		table := make([]int64, 8)
		for i := 0; i < 8; i++ {
			table[i] = int64((tt >> i) & 1)
		}
		f, _ := FromTable(3, table)
		var key [8]int64
		copy(key[:], f.Coefficients())
		if seen[key] {
			t.Fatalf("two distinct functions share coefficients %v", key)
		}
		seen[key] = true
	}
}

func TestKnownExpansions(t *testing.T) {
	// x0 ∨ x1 = x0 + x1 − x0x1.
	or2 := OR(2)
	c := or2.Coefficients()
	want := []int64{0, 1, 1, -1}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("OR2 coefficients = %v, want %v", c, want)
		}
	}
	// Parity2 = x0 + x1 − 2x0x1.
	p2 := Parity(2)
	c = p2.Coefficients()
	want = []int64{0, 1, 1, -2}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("Parity2 coefficients = %v, want %v", c, want)
		}
	}
	// AND3 is the single monomial x0x1x2.
	a3 := AND(3)
	c = a3.Coefficients()
	for i, v := range c {
		wantV := int64(0)
		if i == 7 {
			wantV = 1
		}
		if v != wantV {
			t.Fatalf("AND3 coefficient[%d] = %d", i, v)
		}
	}
}

// The anchor facts: deg(Parity_n) = deg(OR_n) = deg(AND_n) = n.
func TestFullDegreeAnchors(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if d := Parity(n).Degree(); d != n {
			t.Errorf("deg(Parity_%d) = %d, want %d", n, d, n)
		}
		if d := OR(n).Degree(); d != n {
			t.Errorf("deg(OR_%d) = %d, want %d", n, d, n)
		}
		if d := AND(n).Degree(); d != n {
			t.Errorf("deg(AND_%d) = %d, want %d", n, d, n)
		}
	}
	if d := Majority(5).Degree(); d != 5 {
		t.Errorf("deg(Maj_5) = %d, want 5", d)
	}
}

func TestZeroAndConstantDegree(t *testing.T) {
	zero := MustNew(4, func(uint32) int64 { return 0 })
	if zero.Degree() != 0 {
		t.Errorf("deg(0) = %d", zero.Degree())
	}
	one := MustNew(4, func(uint32) int64 { return 1 })
	if one.Degree() != 0 {
		t.Errorf("deg(1) = %d", one.Degree())
	}
}

// Fact 2.2(1,3): deg(f∧g) ≤ deg f + deg g and deg(f∨g) ≤ deg f + deg g.
func TestFact22Composition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		f, g := randBoolFn(rng, n), randBoolFn(rng, n)
		df, dg := f.Degree(), g.Degree()
		fg, err := f.And(g)
		if err != nil {
			t.Fatal(err)
		}
		if d := fg.Degree(); d > df+dg {
			t.Errorf("deg(f∧g)=%d > %d+%d", d, df, dg)
		}
		fo, _ := f.Or(g)
		if d := fo.Degree(); d > df+dg {
			t.Errorf("deg(f∨g)=%d > %d+%d", d, df, dg)
		}
		fx, _ := f.Xor(g)
		if d := fx.Degree(); d > df+dg {
			t.Errorf("deg(f⊕g)=%d > %d+%d", d, df, dg)
		}
	}
}

// Fact 2.2(2): deg(¬f) = deg(f) for non-constant f; for constants both sides
// are degree 0.
func TestFact22Negation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(7)
		f := randBoolFn(rng, n)
		if f.Not().Degree() != f.Degree() {
			t.Errorf("deg(¬f)=%d ≠ deg(f)=%d", f.Not().Degree(), f.Degree())
		}
	}
}

// Fact 2.2(4): restriction never increases degree.
func TestFact22Restriction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		f := randBoolFn(rng, n)
		i := rng.Intn(n)
		v := int64(rng.Intn(2))
		g, err := f.Restrict(i, v)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != n-1 {
			t.Fatalf("restriction arity = %d, want %d", g.N(), n-1)
		}
		if g.Degree() > f.Degree() {
			t.Errorf("deg(f|x%d=%d)=%d > deg(f)=%d", i, v, g.Degree(), f.Degree())
		}
	}
}

func TestRestrictSemantics(t *testing.T) {
	// Parity_3 restricted at x1=1 is ¬Parity_2 of the remaining variables.
	p3 := Parity(3)
	r, err := p3.Restrict(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for m := uint32(0); m < 4; m++ {
		want := int64((bits.OnesCount32(m) + 1) & 1)
		if r.At(m) != want {
			t.Errorf("restriction at %b = %d, want %d", m, r.At(m), want)
		}
	}
	if _, err := p3.Restrict(5, 0); err == nil {
		t.Error("want variable-range error")
	}
	if _, err := p3.Restrict(0, 2); err == nil {
		t.Error("want value error")
	}
}

func TestBinaryArityMismatch(t *testing.T) {
	if _, err := OR(2).And(OR(3)); err == nil {
		t.Error("want arity mismatch error")
	}
}

func TestAddIsIntegerValued(t *testing.T) {
	f, err := OR(3).Add(Parity(3))
	if err != nil {
		t.Fatal(err)
	}
	if f.IsBoolean() {
		t.Error("OR+Parity should not be Boolean (value 2 at 0b111)")
	}
	if f.At(7) != 2 {
		t.Errorf("(OR+Parity)(111) = %d, want 2", f.At(7))
	}
	if !OR(3).IsBoolean() {
		t.Error("OR should be Boolean")
	}
}

// Certificate complexity: known values. C(OR_n) = n (the all-zero input
// needs every variable), C(AND_n) = n, C(Parity_n) = n.
func TestCertificateKnownValues(t *testing.T) {
	for n := 1; n <= 6; n++ {
		if c := OR(n).Certificate(); c != n {
			t.Errorf("C(OR_%d) = %d, want %d", n, c, n)
		}
		if c := Parity(n).Certificate(); c != n {
			t.Errorf("C(Parity_%d) = %d, want %d", n, c, n)
		}
	}
	// At a one-input of OR, a single variable certifies.
	if c := OR(5).CertificateAt(0b00100); c != 1 {
		t.Errorf("C(OR_5, e3) = %d, want 1", c)
	}
	// The all-zero input needs everything.
	if c := OR(5).CertificateAt(0); c != 5 {
		t.Errorf("C(OR_5, 0) = %d, want 5", c)
	}
	// Constants have certificate 0.
	zero := MustNew(3, func(uint32) int64 { return 0 })
	if c := zero.Certificate(); c != 0 {
		t.Errorf("C(const) = %d, want 0", c)
	}
}

// Fact 2.3: C(f) ≤ deg(f)^4 — exhaustive over all Boolean functions on 3
// variables, then randomized on larger arities.
func TestFact23Exhaustive3(t *testing.T) {
	for tt := 0; tt < 256; tt++ {
		table := make([]int64, 8)
		for i := 0; i < 8; i++ {
			table[i] = int64((tt >> i) & 1)
		}
		f, _ := FromTable(3, table)
		d, c := f.Degree(), f.Certificate()
		bound := d * d * d * d
		if d == 0 {
			bound = 0
		}
		if c > bound {
			t.Fatalf("truth table %08b: C=%d > deg^4=%d", tt, c, bound)
		}
	}
}

func TestFact23Random(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(3)
		f := randBoolFn(rng, n)
		d, c := f.Degree(), f.Certificate()
		bound := d * d * d * d
		if d == 0 {
			bound = 0
		}
		if c > bound {
			t.Fatalf("n=%d: C=%d > deg^4=%d", n, c, bound)
		}
	}
}

func TestIndicator(t *testing.T) {
	chi := Indicator(3, []uint32{0b001, 0b110})
	if chi.At(0b001) != 1 || chi.At(0b110) != 1 {
		t.Error("members not indicated")
	}
	if chi.At(0b000) != 0 || chi.At(0b111) != 0 {
		t.Error("non-members indicated")
	}
	if !chi.IsBoolean() {
		t.Error("indicator must be Boolean")
	}
}

func TestThreshold(t *testing.T) {
	th := Threshold(4, 2)
	for m := uint32(0); m < 16; m++ {
		want := int64(0)
		if bits.OnesCount32(m) >= 2 {
			want = 1
		}
		if th.At(m) != want {
			t.Errorf("Th2(%04b) = %d, want %d", m, th.At(m), want)
		}
	}
}

// Property: degree of a random single monomial indicator equals its popcount.
func TestMonomialDegreeProperty(t *testing.T) {
	f := func(sRaw uint8) bool {
		s := uint32(sRaw) & 0x3f // 6 variables
		coef := make([]int64, 64)
		coef[s] = 1
		fn, err := FromCoefficients(6, coef)
		if err != nil {
			return false
		}
		return fn.Degree() == bits.OnesCount32(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
