package boolfn

import (
	"math"
	"math/rand"
	"testing"
)

func TestSensitivityKnownValues(t *testing.T) {
	for n := 1; n <= 8; n++ {
		if s := Parity(n).Sensitivity(); s != n {
			t.Errorf("s(Parity_%d) = %d, want %d", n, s, n)
		}
		if s := OR(n).Sensitivity(); s != n {
			t.Errorf("s(OR_%d) = %d, want %d (the all-zero input)", n, s, n)
		}
	}
	// Parity is fully sensitive at *every* input.
	p := Parity(5)
	for a := uint32(0); a < 32; a++ {
		if p.SensitivityAt(a) != 5 {
			t.Fatalf("parity sensitivity at %05b = %d", a, p.SensitivityAt(a))
		}
	}
	// OR's sensitivity at a weight-1 input is 1.
	if s := OR(5).SensitivityAt(0b00100); s != 1 {
		t.Errorf("OR sensitivity at e3 = %d, want 1", s)
	}
	zero := MustNew(4, func(uint32) int64 { return 0 })
	if zero.Sensitivity() != 0 {
		t.Error("constant sensitivity must be 0")
	}
}

func TestInfluence(t *testing.T) {
	// Parity: every variable has influence 1.
	p := Parity(4)
	for i := 0; i < 4; i++ {
		v, err := p.InfluenceOf(i)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1 {
			t.Errorf("Inf_%d(Parity) = %v, want 1", i, v)
		}
	}
	if ti := p.TotalInfluence(); ti != 4 {
		t.Errorf("total influence = %v, want 4", ti)
	}
	// Dictator x0: influence 1 on x0, 0 elsewhere.
	dict := MustNew(3, func(m uint32) int64 { return int64(m & 1) })
	if v, _ := dict.InfluenceOf(0); v != 1 {
		t.Errorf("Inf_0(dictator) = %v", v)
	}
	if v, _ := dict.InfluenceOf(2); v != 0 {
		t.Errorf("Inf_2(dictator) = %v", v)
	}
	if _, err := dict.InfluenceOf(7); err == nil {
		t.Error("want range error")
	}
	// OR_n: each variable flips f only when all others are 0: 2/2^n.
	or := OR(4)
	if v, _ := or.InfluenceOf(1); math.Abs(v-2.0/16) > 1e-12 {
		t.Errorf("Inf(OR_4) = %v, want 1/8", v)
	}
}

// Sensitivity never exceeds certificate complexity, which never exceeds
// deg^4 (the chain the paper's Claim 5.2 rides on).
func TestSensitivityChain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		f := MustNew(n, func(uint32) int64 { return int64(rng.Intn(2)) })
		s, c, d := f.Sensitivity(), f.Certificate(), f.Degree()
		if s > c {
			t.Errorf("s(f)=%d > C(f)=%d", s, c)
		}
		bound := d * d * d * d
		if d == 0 {
			bound = 0
		}
		if c > bound {
			t.Errorf("C(f)=%d > deg⁴=%d", c, bound)
		}
	}
}
