package boolfn

// BlockSensitivityAt returns bs(f, a): the maximum number of pairwise
// disjoint blocks B₁,…,B_k of variables such that flipping each block
// individually changes f(a). Computed exactly by memoized search over the
// lattice of remaining variable sets (O(3ⁿ) per input) — fine for the
// small arities the proof-machinery experiments use.
func (f *Fn) BlockSensitivityAt(a uint32) int {
	full := uint32(1)<<uint(f.n) - 1
	memo := make(map[uint32]int)
	var rec func(free uint32) int
	rec = func(free uint32) int {
		if v, ok := memo[free]; ok {
			return v
		}
		best := 0
		// Enumerate nonempty subsets B of free.
		for b := free; b > 0; b = (b - 1) & free {
			if f.table[a^b] != f.table[a] {
				if k := 1 + rec(free&^b); k > best {
					best = k
				}
			}
		}
		memo[free] = best
		return best
	}
	return rec(full)
}

// BlockSensitivity returns bs(f) = max over inputs of BlockSensitivityAt.
func (f *Fn) BlockSensitivity() int {
	best := 0
	for a := uint32(0); a < 1<<uint(f.n); a++ {
		if k := f.BlockSensitivityAt(a); k > best {
			best = k
		}
		if best == f.n {
			break // cannot exceed n
		}
	}
	return best
}
