// Package boolfn implements the exact algebra of Boolean (and
// integer-valued) functions on {0,1}^n used by the degree-argument lower
// bounds of MacKenzie & Ramachandran (SPAA 1998), Section 2.5:
//
//   - Fact 2.1 (Smolensky): every f: {0,1}^n → ℤ has a unique expansion
//     f = Σ_S α_S(f)·m_S over positive monomials m_S = Π_{i∈S} x_i with
//     integer coefficients. Coefficients returns the α_S via a Möbius
//     transform over the subset lattice; Eval reconstructs values.
//   - deg(f) = max{|S| : α_S(f) ≠ 0}, with the composition rules of
//     Fact 2.2 (deg(f∧g) ≤ deg f + deg g, deg(¬f) = deg f, restriction
//     never increases degree).
//   - Certificate complexity C(f) (Nisan) with Fact 2.3: C(f) ≤ deg(f)^4.
//
// These facts anchor the Parity and OR lower bounds: deg(Parity_n) =
// deg(OR_n) = n, so any computation whose cell contents have degree < n
// cannot have produced the answer (Theorems 3.1 and 7.2).
//
// Functions are represented by dense truth tables indexed by input masks
// (bit i of the mask is x_i), so the package is exact for n up to ~20.
package boolfn

import (
	"fmt"
	"math/bits"
)

// MaxVars bounds the arity of functions this package will materialise
// (a dense table has 2^n entries).
const MaxVars = 24

// Fn is an integer-valued function on {0,1}^n represented by its truth
// table: table[mask] = f(x) where bit i of mask is x_i.
type Fn struct {
	n     int
	table []int64
}

// New builds a function from an evaluator.
func New(n int, eval func(mask uint32) int64) (*Fn, error) {
	if n < 0 || n > MaxVars {
		return nil, fmt.Errorf("boolfn: arity %d out of range [0,%d]", n, MaxVars)
	}
	t := make([]int64, 1<<uint(n))
	for m := range t {
		t[m] = eval(uint32(m))
	}
	return &Fn{n: n, table: t}, nil
}

// MustNew is New but panics on error (for statically valid arities).
func MustNew(n int, eval func(mask uint32) int64) *Fn {
	f, err := New(n, eval)
	if err != nil {
		panic(err)
	}
	return f
}

// FromTable builds a function from an explicit truth table of length 2^n.
func FromTable(n int, table []int64) (*Fn, error) {
	if n < 0 || n > MaxVars {
		return nil, fmt.Errorf("boolfn: arity %d out of range", n)
	}
	if len(table) != 1<<uint(n) {
		return nil, fmt.Errorf("boolfn: table length %d, want %d", len(table), 1<<uint(n))
	}
	return &Fn{n: n, table: append([]int64(nil), table...)}, nil
}

// N returns the arity.
func (f *Fn) N() int { return f.n }

// At evaluates f at the input encoded by mask.
func (f *Fn) At(mask uint32) int64 { return f.table[mask] }

// IsBoolean reports whether every value is 0 or 1.
func (f *Fn) IsBoolean() bool {
	for _, v := range f.table {
		if v != 0 && v != 1 {
			return false
		}
	}
	return true
}

// Coefficients returns the unique integer coefficients α_S of the monomial
// expansion f = Σ_S α_S·m_S (Fact 2.1), indexed by the subset mask S.
//
// The transform is the Möbius inversion over the subset lattice:
// α_S = Σ_{T ⊆ S} (−1)^{|S|−|T|} f(T), computed in n·2^n time.
func (f *Fn) Coefficients() []int64 {
	c := append([]int64(nil), f.table...)
	n := f.n
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := range c {
			if m&bit != 0 {
				c[m] -= c[m^bit]
			}
		}
	}
	return c
}

// FromCoefficients reconstructs a function from monomial coefficients via
// the zeta transform f(a) = Σ_{S ⊆ a} α_S. It is the exact inverse of
// Coefficients, witnessing the uniqueness half of Fact 2.1.
func FromCoefficients(n int, coef []int64) (*Fn, error) {
	if len(coef) != 1<<uint(n) {
		return nil, fmt.Errorf("boolfn: coefficient length %d, want %d", len(coef), 1<<uint(n))
	}
	t := append([]int64(nil), coef...)
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := range t {
			if m&bit != 0 {
				t[m] += t[m^bit]
			}
		}
	}
	return &Fn{n: n, table: t}, nil
}

// Degree returns deg(f) = max{|S| : α_S ≠ 0}; the degree of the zero
// function is 0.
func (f *Fn) Degree() int {
	c := f.Coefficients()
	d := 0
	for m, v := range c {
		if v != 0 {
			if k := bits.OnesCount32(uint32(m)); k > d {
				d = k
			}
		}
	}
	return d
}

// --- pointwise algebra ------------------------------------------------------

func (f *Fn) binary(g *Fn, op func(a, b int64) int64) (*Fn, error) {
	if f.n != g.n {
		return nil, fmt.Errorf("boolfn: arity mismatch %d vs %d", f.n, g.n)
	}
	t := make([]int64, len(f.table))
	for m := range t {
		t[m] = op(f.table[m], g.table[m])
	}
	return &Fn{n: f.n, table: t}, nil
}

// And returns f∧g (defined for Boolean-valued f, g as pointwise product).
func (f *Fn) And(g *Fn) (*Fn, error) {
	return f.binary(g, func(a, b int64) int64 { return a * b })
}

// Or returns f∨g = f + g − f·g.
func (f *Fn) Or(g *Fn) (*Fn, error) {
	return f.binary(g, func(a, b int64) int64 { return a + b - a*b })
}

// Xor returns f⊕g = f + g − 2·f·g.
func (f *Fn) Xor(g *Fn) (*Fn, error) {
	return f.binary(g, func(a, b int64) int64 { return a + b - 2*a*b })
}

// Not returns ¬f = 1 − f.
func (f *Fn) Not() *Fn {
	t := make([]int64, len(f.table))
	for m := range t {
		t[m] = 1 - f.table[m]
	}
	return &Fn{n: f.n, table: t}
}

// Add returns f+g as an integer-valued function.
func (f *Fn) Add(g *Fn) (*Fn, error) {
	return f.binary(g, func(a, b int64) int64 { return a + b })
}

// Restrict fixes variable i to val∈{0,1} and returns the induced function on
// the remaining n−1 variables (variables above i shift down). Fact 2.2(4):
// deg of the restriction never exceeds deg(f).
func (f *Fn) Restrict(i int, val int64) (*Fn, error) {
	if i < 0 || i >= f.n {
		return nil, fmt.Errorf("boolfn: restrict variable %d of %d", i, f.n)
	}
	if val != 0 && val != 1 {
		return nil, fmt.Errorf("boolfn: restriction value %d not in {0,1}", val)
	}
	n2 := f.n - 1
	t := make([]int64, 1<<uint(n2))
	low := uint32(1)<<uint(i) - 1
	for m := range t {
		mm := uint32(m)
		full := (mm & low) | ((mm &^ low) << 1)
		if val == 1 {
			full |= 1 << uint(i) //lint:bitaddr-ok truth-table row index built by bit interleaving; not an engine packed address
		}
		t[m] = f.table[full]
	}
	return &Fn{n: n2, table: t}, nil
}

// --- certificate complexity --------------------------------------------------

// CertificateAt returns the size of a minimum certificate of f at input a:
// the least k such that some set S of k variables has the property that
// every input agreeing with a on S has the same value f(a). Exponential in
// n; intended for n ≤ ~12.
func (f *Fn) CertificateAt(a uint32) int {
	want := f.table[a]
	n := f.n
	// Iterate subsets in increasing popcount via sorted enumeration.
	for k := 0; k <= n; k++ {
		for s := uint32(0); s < 1<<uint(n); s++ {
			if bits.OnesCount32(s) != k {
				continue
			}
			if f.certified(a, s, want) {
				return k
			}
		}
	}
	return n
}

// certified reports whether fixing a's values on set s forces value want.
func (f *Fn) certified(a, s uint32, want int64) bool {
	free := ^s & (1<<uint(f.n) - 1)
	// Enumerate subcube: all b with b&s == a&s.
	base := a & s
	for sub := free; ; sub = (sub - 1) & free {
		if f.table[base|sub] != want {
			return false
		}
		if sub == 0 {
			return true
		}
	}
}

// Certificate returns C(f) = max over inputs a of CertificateAt(a)
// (Nisan's certificate complexity as used in Fact 2.3).
func (f *Fn) Certificate() int {
	c := 0
	for a := uint32(0); a < 1<<uint(f.n); a++ {
		if k := f.CertificateAt(a); k > c {
			c = k
		}
	}
	return c
}

// --- named functions ---------------------------------------------------------

// Parity returns the n-variable parity function (1 iff an odd number of
// inputs are 1). Its degree is exactly n — the anchor of Theorem 3.1.
func Parity(n int) *Fn {
	return MustNew(n, func(m uint32) int64 {
		return int64(bits.OnesCount32(m) & 1)
	})
}

// OR returns the n-variable OR. Its degree is exactly n — the anchor of
// Theorem 7.2.
func OR(n int) *Fn {
	return MustNew(n, func(m uint32) int64 {
		if m != 0 {
			return 1
		}
		return 0
	})
}

// AND returns the n-variable AND (a single monomial of degree n).
func AND(n int) *Fn {
	full := uint32(1)<<uint(n) - 1
	return MustNew(n, func(m uint32) int64 {
		if m == full {
			return 1
		}
		return 0
	})
}

// Threshold returns the n-variable threshold-k function (1 iff ≥ k inputs
// are 1).
func Threshold(n, k int) *Fn {
	return MustNew(n, func(m uint32) int64 {
		if bits.OnesCount32(m) >= k {
			return 1
		}
		return 0
	})
}

// Majority returns Threshold(n, ⌈(n+1)/2⌉).
func Majority(n int) *Fn { return Threshold(n, (n+2)/2) }

// Indicator returns χ_{A} for A given as a set of input masks — the
// characteristic functions used throughout Section 3 and Section 5.
func Indicator(n int, members []uint32) *Fn {
	set := make(map[uint32]bool, len(members))
	for _, m := range members {
		set[m] = true
	}
	return MustNew(n, func(m uint32) int64 {
		if set[m] {
			return 1
		}
		return 0
	})
}
