package boolfn

import (
	"math/rand"
	"testing"
)

func TestBlockSensitivityKnownValues(t *testing.T) {
	for n := 1; n <= 6; n++ {
		// Parity: every singleton is a sensitive block ⇒ bs = n everywhere.
		if bs := Parity(n).BlockSensitivity(); bs != n {
			t.Errorf("bs(Parity_%d) = %d, want %d", n, bs, n)
		}
		// OR at the all-zero input: n singleton blocks.
		if bs := OR(n).BlockSensitivityAt(0); bs != n {
			t.Errorf("bs(OR_%d, 0) = %d, want %d", n, bs, n)
		}
	}
	// OR at a weight-2 input: flipping either one of the two ones alone
	// does not change OR, but the block of both does, and each zero
	// contributes nothing — bs = 1.
	if bs := OR(4).BlockSensitivityAt(0b0011); bs != 1 {
		t.Errorf("bs(OR_4, 0011) = %d, want 1", bs)
	}
	zero := MustNew(3, func(uint32) int64 { return 0 })
	if zero.BlockSensitivity() != 0 {
		t.Error("constant bs must be 0")
	}
}

// The classical chain s(f) ≤ bs(f) ≤ C(f): exhaustive on 3 variables,
// randomized above.
func TestSensitivityBlockSensitivityCertificateChain(t *testing.T) {
	for tt := 0; tt < 256; tt++ {
		table := make([]int64, 8)
		for i := 0; i < 8; i++ {
			table[i] = int64((tt >> i) & 1)
		}
		f, _ := FromTable(3, table)
		s, bs, c := f.Sensitivity(), f.BlockSensitivity(), f.Certificate()
		if !(s <= bs && bs <= c) {
			t.Fatalf("table %08b: chain broken: s=%d bs=%d C=%d", tt, s, bs, c)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(2)
		f := MustNew(n, func(uint32) int64 { return int64(rng.Intn(2)) })
		s, bs, c := f.Sensitivity(), f.BlockSensitivity(), f.Certificate()
		if !(s <= bs && bs <= c) {
			t.Fatalf("n=%d: chain broken: s=%d bs=%d C=%d", n, s, bs, c)
		}
	}
}
