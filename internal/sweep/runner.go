package sweep

import (
	"context"
	"time"

	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
)

// DefaultMaxCost is the default n·p footprint ceiling: large enough for
// the full Table 1 sweep (n up to 8192 with p = n), small enough that a
// runaway grid axis prunes to too-large records instead of hanging the
// harness.
const DefaultMaxCost = int64(1) << 27

// RunConfig carries the per-cell runner knobs.
type RunConfig struct {
	// MaxCost is the n·p footprint ceiling (0 = DefaultMaxCost).
	MaxCost int64
	// Workers caps simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Deadline is the fault-cell watchdog (0 = chaos.DefaultDeadline).
	Deadline time.Duration
	// Ctx cancels in-flight fault cells (nil = context.Background()); a
	// cancelled cell comes back with ReasonCancelled and is not a result.
	Ctx context.Context
}

func (rc RunConfig) ctx() context.Context {
	if rc.Ctx == nil {
		return context.Background()
	}
	return rc.Ctx
}

// Check decides whether a cell is runnable. It returns "" for runnable
// cells and a Reason* code otherwise; the sweep records the code instead
// of dropping the cell. Anything Check cannot see up front (construction
// errors on exotic parameters) still surfaces as a failed record.
func Check(c Cell, maxCost int64) string {
	if maxCost <= 0 {
		maxCost = DefaultMaxCost
	}
	if c.Exp != "" {
		if core.ExperimentByID(c.Exp) == nil {
			return ReasonUnknownExp
		}
		if c.N < 1 {
			return ReasonInvalidParams
		}
		// Experiments pick their own machine shapes with p ≤ n, so n² is
		// the footprint ceiling proxy.
		if int64(c.N)*int64(c.N) > maxCost {
			return ReasonTooLarge
		}
		return ""
	}
	d := c.withDefaults()
	ms, ok := ModelByName(d.Model)
	if !ok {
		return ReasonUnknownModel
	}
	if !backend.Valid(d.Backend) || d.ProcWorkers < 0 {
		return ReasonInvalidParams
	}
	if d.Faults != "" {
		if _, reason := chaosAlgFor(ms, d.Alg); reason != "" {
			return reason
		}
		if !ms.ChaosModel {
			return ReasonInvalidCombo
		}
		if _, err := fault.ParseSpecs(d.Faults); err != nil {
			return ReasonInvalidParams
		}
		if d.N < 1 {
			return ReasonInvalidParams
		}
		if chaosFootprint(ms, d.N) > maxCost {
			return ReasonTooLarge
		}
		return ""
	}
	as, ok := AlgByName(d.Alg)
	if !ok {
		return ReasonUnknownAlg
	}
	if as.Family != ms.Family {
		return ReasonInvalidCombo
	}
	if d.N < 1 || d.P < 1 || d.G < 1 || d.Fanin < 2 {
		return ReasonInvalidParams
	}
	switch ms.Family {
	case FamilyShared:
		if d.D < 1 {
			return ReasonInvalidParams
		}
	case FamilyBSP:
		if d.L < 1 {
			return ReasonInvalidParams
		}
	default:
		if d.Alpha < 1 || d.Beta < 1 || d.Gamma < 1 {
			return ReasonInvalidParams
		}
	}
	p := d.P
	if as.procs != nil {
		p = as.procs(d)
	}
	if int64(d.N)*int64(p) > maxCost {
		return ReasonTooLarge
	}
	return ""
}

// chaosAlgFor maps a cell's algorithm name to the chaos harness's
// algorithm vocabulary (parity, or, lac). Both spellings are accepted:
// the chaos-native names (what `parsim chaos` always took) and registry
// names via their FaultAlg mapping (so "lac-dart" under faults runs the
// chaos lac harness). The second return is the skip reason ("" = ok).
func chaosAlgFor(ms ModelSpec, alg string) (string, string) {
	chaosNative := alg == "parity" || alg == "or" || alg == "lac"
	switch {
	case ms.Family == FamilyShared && chaosNative:
		return alg, ""
	case ms.Family != FamilyShared && (alg == "parity" || alg == "or"):
		return alg, ""
	}
	if as, ok := AlgByName(alg); ok {
		if as.Family != ms.Family {
			return "", ReasonInvalidCombo
		}
		if as.FaultAlg == "" {
			return "", ReasonUnsupportedAlg
		}
		return as.FaultAlg, ""
	}
	if chaosNative {
		// "lac" on bsp/gsm: a real chaos algorithm, just not on this family.
		return "", ReasonUnsupportedAlg
	}
	return "", ReasonUnknownAlg
}

// chaosFootprint mirrors the fixed machine shapes of the chaos runners:
// p = n for the shared models, 8 components for BSP, ⌈n/2⌉ for GSM.
func chaosFootprint(ms ModelSpec, n int) int64 {
	switch ms.Family {
	case FamilyBSP:
		return int64(n) * 8
	case FamilyGSM:
		return int64(n) * int64((n+1)/2)
	default:
		return int64(n) * int64(n)
	}
}

// RunCell executes one cell end to end and always returns a record:
// skipped (with reason), ok, diagnosed (fault cells only) or failed.
func RunCell(c Cell, rc RunConfig) Record {
	rec := Record{Key: c.Key(), Cell: c}
	if c.Exp == "" {
		rec.Cell = c.withDefaults()
	}
	if reason := Check(c, rc.MaxCost); reason != "" {
		rec.Status, rec.Reason = StatusSkipped, reason
		return rec
	}
	switch {
	case c.Exp != "":
		runExpCell(&rec)
	case rec.Faults != "":
		runFaultCell(&rec, rc)
	default:
		runMachineCell(&rec, rc)
	}
	return rec
}

// runExpCell measures one (experiment, n) point through the same
// core.RunPoint path cmd/tables uses, so a sweep's experiment records
// reassemble into the byte-identical golden tables.
func runExpCell(rec *Record) {
	row, err := core.ExperimentByID(rec.Exp).RunPoint(rec.N, rec.Seed)
	if err != nil {
		rec.Status, rec.Error = StatusFailed, err.Error()
		return
	}
	rec.Status = StatusOK
	rec.Time = row.Measured
	rec.Bound, rec.Upper, rec.Ratio = row.Bound, row.Upper, row.Ratio
	rec.AllRounds = row.AllRounds
	rec.Verified = true
}

// runFaultCell runs one chaos scenario and grades it against the
// robustness invariant: verified → ok, diagnosable error → diagnosed,
// invariant violation → failed.
func runFaultCell(rec *Record, rc RunConfig) {
	ms, _ := ModelByName(rec.Model)
	alg, _ := chaosAlgFor(ms, rec.Alg)
	specs, _ := fault.ParseSpecs(rec.Faults) // Check already validated
	o := chaos.Run(rc.ctx(), chaos.Scenario{
		Model: rec.Model, Alg: alg, N: rec.N, Seed: rec.Seed,
		Specs: specs, Degraded: rec.Degraded,
		Backend: rec.Backend, ProcWorkers: rec.ProcWorkers,
	}, rc.Deadline, rc.Workers)
	if o.Cancelled {
		rec.Status, rec.Reason = StatusSkipped, ReasonCancelled
		return
	}
	if o.Report != nil {
		rec.Injected = o.Report.Injected
		rec.Recovered = o.Report.Recovered
		rec.MaskedProcs = o.Report.MaskedProcs
	}
	switch inv := o.Invariant(); {
	case inv != nil:
		rec.Status, rec.Error = StatusFailed, inv.Error()
	case o.Verified:
		rec.Status, rec.Verified = StatusOK, true
	default:
		rec.Status, rec.Error = StatusDiagnosed, o.Err.Error()
	}
}

// runMachineCell runs one fault-free algorithm cell through Execute,
// constructing (and closing) the cell's commit-barrier backend around
// the run.
func runMachineCell(rec *Record, rc RunConfig) {
	bk, err := backend.New(backend.Config{Name: rec.Cell.Backend, ProcWorkers: rec.ProcWorkers})
	if err != nil {
		rec.Status, rec.Error = StatusFailed, err.Error()
		return
	}
	if bk != nil {
		defer bk.Close()
	}
	out, err := ExecuteWith(rec.Cell, false, rc.Workers, bk)
	if err != nil {
		rec.Status, rec.Error = StatusFailed, err.Error()
		return
	}
	if rep := out.Report; rep != nil {
		rec.Time = float64(rep.TotalTime)
		rec.Phases = rep.NumPhases()
		rec.Work = rep.Work
		rec.AllRounds = rep.AllRounds
	}
	if !out.Verified {
		rec.Status, rec.Error = StatusFailed, "answer failed the host-side oracle"
		return
	}
	rec.Status, rec.Verified = StatusOK, true
}
