package sweep

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/qsm"
)

// benchGateEntries are the snapshot names the CI bench gate
// (`parsim sweep -bench -bench-baseline BENCH_pr7.json`) diffs; the
// guard below fails fast if a refactor renames or drops one, which
// would otherwise silently shrink the gate (CompareBenchSnapshots only
// reports baseline entries missing from the *current* run, not the
// other way around).
var benchGateEntries = []string{
	"Sweep/exp/T1.Parity.det/n=2048",
	"Sweep/exp/T2.Parity.det/n=4096",
	"Sweep/exp/T3.Parity.det/n=4096",
	"Sweep/exp/T4.LAC.qsm/n=4096",
	"Sweep/commit/qsm-low",
	"Sweep/commit/qsm-high",
	"Sweep/commit/qsm-tree8",
	"Sweep/commit/qsm-batch",
	"Sweep/commit/bool-word",
	"Sweep/commit/bsp-shift",
	"Sweep/commit/gsm-gather",
	"Sweep/cell/qsm-parity",
}

// TestBenchBaselineGateEntries guards the committed BENCH_pr7.json
// without paying for a timed benchmark run: every gate entry must be
// present, and the deterministic modelTime of the two PR 7 columnar
// entries (qsm-batch, bool-word) is re-derived from a single probe
// phase and compared exactly. Hot-path edits forced by the lint sweep
// can change allocation behavior without failing any functional test;
// this pins the model-side half of the gate so such edits cannot
// silently drift the priced execution, and CI's full bench-gate step
// still covers ns/op and allocs/op.
func TestBenchBaselineGateEntries(t *testing.T) {
	base, err := ReadBenchSnapshot("../../BENCH_pr7.json")
	if err != nil {
		t.Fatalf("read committed snapshot: %v", err)
	}
	byName := make(map[string]BenchResult, len(base.Benches))
	for _, b := range base.Benches {
		byName[b.Name] = b
	}
	for _, name := range benchGateEntries {
		if _, ok := byName[name]; !ok {
			t.Errorf("gate entry %s missing from BENCH_pr7.json", name)
		}
	}
	if len(base.Benches) != len(benchGateEntries) {
		t.Errorf("BENCH_pr7.json has %d entries, guard expects %d: update benchGateEntries with the snapshot",
			len(base.Benches), len(benchGateEntries))
	}

	// The comparator must accept a snapshot against itself; anything else
	// means the gate would flag noise-free reruns.
	if regs := CompareBenchSnapshots(base, base, 0, 0); len(regs) != 0 {
		t.Errorf("self-comparison reports regressions: %v", regs)
	}

	// qsm-batch: one columnar block-submission phase, same shape and
	// sizes as benchQSMBatch's probe.
	const p, k = benchCommitProcs, 16
	batch, err := qsmCommitMachine(p, 2*p*k)
	if err != nil {
		t.Fatalf("qsm-batch machine: %v", err)
	}
	batch.Phase(func(c *qsm.Ctx) {
		pr := c.Proc()
		c.ReadBlock(pr*k, k)
		c.WriteFill(p*k+pr*k, k, int64(pr))
	})
	if batch.Err() != nil {
		t.Fatalf("qsm-batch phase: %v", batch.Err())
	}
	checkModelTime(t, byName, "Sweep/commit/qsm-batch", float64(batch.Report().TotalTime))

	// bool-word: one bit-packed word-scan phase, same shape as
	// benchBoolWord's probe.
	word, err := qsm.NewBool(qsm.Config{Rule: cost.RuleQSM, P: p, G: 2, N: p, MemCells: 65 * p})
	if err != nil {
		t.Fatalf("bool-word machine: %v", err)
	}
	word.Phase(func(c *qsm.BoolCtx) {
		w := c.ReadWord(c.Proc()*64, 64)
		c.Write(64*p+c.Proc(), w != 0)
	})
	if word.Err() != nil {
		t.Fatalf("bool-word phase: %v", word.Err())
	}
	checkModelTime(t, byName, "Sweep/commit/bool-word", float64(word.Report().TotalTime))
}

func checkModelTime(t *testing.T, byName map[string]BenchResult, name string, got float64) {
	t.Helper()
	b, ok := byName[name]
	if !ok {
		return // already reported above
	}
	want, ok := b.Metrics["modelTime"]
	if !ok {
		t.Errorf("%s: snapshot entry has no modelTime metric", name)
		return
	}
	if got != want {
		t.Errorf("%s: deterministic modelTime drifted: snapshot %g, current %g", name, want, got)
	}
}
