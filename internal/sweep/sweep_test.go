package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
)

func TestParseInt64s(t *testing.T) {
	cases := []struct {
		spec string
		want []int64
	}{
		{"256,512,1024", []int64{256, 512, 1024}},
		{"256..2048:*2", []int64{256, 512, 1024, 2048}},
		{"1..9:+2", []int64{1, 3, 5, 7, 9}},
		{"1..4", []int64{1, 2, 3, 4}},
		{"7", []int64{7}},
		{"3..20:*3", []int64{3, 9}}, // end not hit: stop below it
		{"2, 4 , 8", []int64{2, 4, 8}},
	}
	for _, c := range cases {
		got, err := ParseInt64s(c.spec)
		if err != nil {
			t.Errorf("ParseInt64s(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseInt64s(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseInt64sErrors(t *testing.T) {
	for _, spec := range []string{
		"", "x", "4..2", "1..8:*1", "1..8:+0", "1..8:-2", "0..8:*2", "1..8:2",
	} {
		if _, err := ParseInt64s(spec); err == nil {
			t.Errorf("ParseInt64s(%q): expected error", spec)
		}
	}
}

func TestCellKeyCanonicalizesDefaults(t *testing.T) {
	implicit := Cell{Model: "qsm", Alg: "parity", N: 64, Seed: 1}
	explicit := Cell{Model: "qsm", Alg: "parity", N: 64, P: 64, G: 4, D: 2, L: 16,
		Alpha: 2, Beta: 2, Gamma: 1, Fanin: 2, Seed: 1}
	if implicit.Key() != explicit.Key() {
		t.Errorf("default spelling changes the key: %q vs %q", implicit.Key(), explicit.Key())
	}
}

func TestCheckReasonCodes(t *testing.T) {
	cases := []struct {
		name string
		cell Cell
		want string
	}{
		{"unknown model", Cell{Model: "pram", Alg: "parity", N: 64, Seed: 1}, ReasonUnknownModel},
		{"unknown alg", Cell{Model: "qsm", Alg: "sort", N: 64, Seed: 1}, ReasonUnknownAlg},
		{"family mismatch", Cell{Model: "qsm", Alg: "bsp-parity", N: 64, Seed: 1}, ReasonInvalidCombo},
		{"gsm alg on bsp", Cell{Model: "bsp", Alg: "gsm-or", N: 64, Seed: 1}, ReasonInvalidCombo},
		{"too large", Cell{Model: "qsm", Alg: "parity", N: 1 << 20, Seed: 1}, ReasonTooLarge},
		{"bad n", Cell{Model: "qsm", Alg: "parity", N: -1, Seed: 1}, ReasonInvalidParams},
		{"faults on qsmgd", Cell{Model: "qsmgd", Alg: "parity", N: 64, Seed: 1, Faults: "mem~0.1"}, ReasonInvalidCombo},
		{"faults on prefix", Cell{Model: "qsm", Alg: "prefix", N: 64, Seed: 1, Faults: "mem~0.1"}, ReasonUnsupportedAlg},
		{"lac faults off shared", Cell{Model: "bsp", Alg: "lac", N: 64, Seed: 1, Faults: "mem~0.1"}, ReasonUnsupportedAlg},
		{"bad fault spec", Cell{Model: "qsm", Alg: "parity", N: 64, Seed: 1, Faults: "zap~0.1"}, ReasonInvalidParams},
		{"unknown exp", Cell{Exp: "T9.Nope", N: 64, Seed: 1}, ReasonUnknownExp},
		{"runnable", Cell{Model: "qsm", Alg: "parity", N: 64, Seed: 1}, ""},
		{"runnable fault", Cell{Model: "qsm", Alg: "lac-dart", N: 64, Seed: 1, Faults: "mem~0.1"}, ""},
		{"runnable exp", Cell{Exp: "T2.Parity.det", N: 256, Seed: 1}, ""},
	}
	for _, c := range cases {
		if got := Check(c.cell, 0); got != c.want {
			t.Errorf("%s: Check = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestRunCellRecordsSkips(t *testing.T) {
	rec := RunCell(Cell{Model: "qsm", Alg: "bsp-parity", N: 64, Seed: 1}, RunConfig{})
	if rec.Status != StatusSkipped || rec.Reason != ReasonInvalidCombo {
		t.Fatalf("got status %q reason %q, want skipped/invalid-combo", rec.Status, rec.Reason)
	}
	if rec.Key == "" {
		t.Fatal("skip record has no key")
	}
}

func TestRunCellMachine(t *testing.T) {
	rec := RunCell(Cell{Model: "qsm", Alg: "parity", N: 64, Seed: 1}, RunConfig{})
	if rec.Status != StatusOK || !rec.Verified {
		t.Fatalf("got status %q (err %q), want ok", rec.Status, rec.Error)
	}
	if rec.Time <= 0 || rec.Phases <= 0 || rec.Work <= 0 {
		t.Fatalf("missing cost numbers: time=%v phases=%d work=%d", rec.Time, rec.Phases, rec.Work)
	}
}

func TestRunCellFault(t *testing.T) {
	// A strict crash must end diagnosed (poisoned machine, explained).
	rec := RunCell(Cell{Model: "qsm", Alg: "parity", N: 48, Seed: 1, Faults: "crash@1"}, RunConfig{})
	if rec.Status != StatusDiagnosed {
		t.Fatalf("strict crash: got status %q (err %q), want diagnosed", rec.Status, rec.Error)
	}
	if rec.Injected == 0 {
		t.Fatal("strict crash: no faults recorded as injected")
	}
	// The same crash masked in degraded mode must verify.
	rec = RunCell(Cell{Model: "qsm", Alg: "parity", N: 48, Seed: 1,
		Faults: "crash@2:p1", Degraded: true}, RunConfig{})
	if rec.Status != StatusOK {
		t.Fatalf("masked crash: got status %q (err %q), want ok", rec.Status, rec.Error)
	}
	if rec.MaskedProcs == 0 {
		t.Fatal("masked crash: no procs recorded as masked")
	}
}

func TestGridExpansionOrderStable(t *testing.T) {
	g := Grid{
		Models: []string{"qsm", "bsp"},
		Algs:   []string{"parity"},
		Ns:     []int{32, 64},
		Seeds:  []int64{1, 2},
	}
	cells := g.Cells()
	if len(cells) != g.Count() || len(cells) != 8 {
		t.Fatalf("got %d cells (Count %d), want 8", len(cells), g.Count())
	}
	// Seeds innermost, then n, then model outermost.
	wantFirst := Cell{Model: "qsm", Alg: "parity", N: 32, Seed: 1}
	if cells[0] != wantFirst {
		t.Fatalf("first cell = %+v", cells[0])
	}
	if cells[1].Seed != 2 || cells[2].N != 64 || cells[4].Model != "bsp" {
		t.Fatalf("unexpected nesting order: %+v", cells[:5])
	}
}

// testCells is a small mixed grid: runnable machine cells, a skip, and a
// fault cell — enough to exercise every record shape in the writer.
func testCells() []Cell {
	cells := Grid{
		Models: []string{"qsm", "sqsm"},
		Algs:   []string{"parity", "bsp-or"}, // bsp-or → invalid-combo skips
		Ns:     []int{32},
		Seeds:  []int64{1, 2},
	}.Cells()
	return append(cells,
		Cell{Model: "qsm", Alg: "or", N: 32, Seed: 1, Faults: "mem~0.2"},
		Cell{Exp: "T2.Parity.det", N: 256, Seed: 1998},
	)
}

func TestRunResumeByteEqual(t *testing.T) {
	cells := testCells()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	part := filepath.Join(dir, "part.jsonl")

	if _, err := Run(cells, Options{JSONL: full}); err != nil {
		t.Fatal(err)
	}
	s, err := Run(cells, Options{JSONL: part, MaxCells: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Interrupted || s.Ran != 3 {
		t.Fatalf("interrupt: ran %d, interrupted %v", s.Ran, s.Interrupted)
	}
	s, err = Run(cells, Options{JSONL: part, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Resumed != 3 {
		t.Fatalf("resume: resumed %d cells, want 3", s.Resumed)
	}
	want, _ := os.ReadFile(full)
	got, _ := os.ReadFile(part)
	if string(want) != string(got) {
		t.Fatalf("resumed output differs from uninterrupted run:\n%s\n--- vs ---\n%s", got, want)
	}
}

func TestRunResumeDropsTornTail(t *testing.T) {
	cells := testCells()
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	part := filepath.Join(dir, "part.jsonl")
	if _, err := Run(cells, Options{JSONL: full}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cells, Options{JSONL: part, MaxCells: 4}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: append half a record.
	f, err := os.OpenFile(part, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"qsm/parity/torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := Run(cells, Options{JSONL: part, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Resumed != 4 {
		t.Fatalf("resumed %d cells, want 4 (torn tail dropped)", s.Resumed)
	}
	want, _ := os.ReadFile(full)
	got, _ := os.ReadFile(part)
	if string(want) != string(got) {
		t.Fatal("resumed-after-torn-write output differs from uninterrupted run")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "out.csv")
	s, err := Run(testCells(), Options{CSV: csvPath})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(s.Records)+1 {
		t.Fatalf("CSV has %d lines, want %d records + header", len(lines), len(s.Records))
	}
	if !strings.HasPrefix(lines[0], "key,exp,model,alg,n,") {
		t.Fatalf("unexpected CSV header: %s", lines[0])
	}
}

func TestSummaryCounts(t *testing.T) {
	s, err := Run(testCells(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 runnable machine cells + 4 invalid-combo skips + 1 fault + 1 exp.
	if s.Total != 10 || s.Skipped != 4 || s.Failed != 0 {
		t.Fatalf("summary: %+v", s)
	}
	if s.SkipReasons[ReasonInvalidCombo] != 4 {
		t.Fatalf("skip reasons: %v", s.SkipReasons)
	}
	if got := s.OK + s.Diagnosed; got != 6 {
		t.Fatalf("ok+diagnosed = %d, want 6", got)
	}
	if !strings.Contains(s.String(), "invalid-combo=4") {
		t.Fatalf("summary text: %s", s)
	}
}

func TestPresetTablesMatchesRenderAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep")
	}
	want, err := core.RenderAll(1998)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(PresetTables(1998), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RenderTablesFromRecords(s.Records)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("sweep-assembled tables differ from RenderAll")
	}
}

func TestPresetTablesRoundTripsThroughJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep")
	}
	want, err := core.RenderAll(1998)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tables.jsonl")
	if _, err := Run(PresetTables(1998), Options{JSONL: path}); err != nil {
		t.Fatal(err)
	}
	// Re-read from disk: float round-tripping through JSON must be exact.
	recs, _, err := scanJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RenderTablesFromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("tables rendered from persisted JSONL differ from RenderAll")
	}
}

func TestPresetChaosMatchesScenarios(t *testing.T) {
	seeds := []int64{1, 2}
	scs, err := chaos.Scenarios(seeds, 48)
	if err != nil {
		t.Fatal(err)
	}
	cells := PresetChaos(seeds, 48, false)
	if len(cells) != len(scs) {
		t.Fatalf("preset has %d cells, chaos.Scenarios %d", len(cells), len(scs))
	}
	for i, sc := range scs {
		c := cells[i]
		if c.Model != sc.Model || c.Alg != sc.Alg || c.N != sc.N ||
			c.Seed != sc.Seed || c.Degraded != sc.Degraded {
			t.Fatalf("cell %d = %+v, scenario %+v", i, c, sc)
		}
		if Check(c, 0) != "" {
			t.Fatalf("chaos preset cell %d not runnable: %s", i, Check(c, 0))
		}
	}
}

func TestModelAndAlgUsageCoverRegistry(t *testing.T) {
	mu, au := ModelUsage(), AlgUsage()
	for _, name := range ModelNames() {
		if !strings.Contains(mu, name) {
			t.Errorf("model usage %q misses %q", mu, name)
		}
	}
	for _, name := range AlgNames() {
		if !strings.Contains(au, name) {
			t.Errorf("alg usage %q misses %q", au, name)
		}
	}
	// The historical drift this registry fixes: qsmgd/gsm missing from
	// -model usage, gsm-parity/gsm-or from -alg usage.
	for _, want := range []string{"qsmgd", "gsm"} {
		if !strings.Contains(mu, want) {
			t.Errorf("model usage %q misses %q", mu, want)
		}
	}
	for _, want := range []string{"gsm-parity", "gsm-or"} {
		if !strings.Contains(au, want) {
			t.Errorf("alg usage %q misses %q", au, want)
		}
	}
}

func TestExecuteMatchesRegistryFamilies(t *testing.T) {
	for _, as := range Algs() {
		var model string
		switch as.Family {
		case FamilyShared:
			model = "qsm"
		case FamilyBSP:
			model = "bsp"
		default:
			model = "gsm"
		}
		out, err := Execute(Cell{Model: model, Alg: as.Name, N: 64, Seed: 1}, false, 0)
		if err != nil {
			t.Errorf("%s on %s: %v", as.Name, model, err)
			continue
		}
		if !out.Verified {
			t.Errorf("%s on %s: answer failed the oracle", as.Name, model)
		}
		if out.Report == nil || out.Report.TotalTime <= 0 {
			t.Errorf("%s on %s: missing cost report", as.Name, model)
		}
	}
}

func TestCompareBenchSnapshots(t *testing.T) {
	base := &BenchSnapshot{Benches: []BenchResult{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 10, Metrics: map[string]float64{"modelTime": 42}},
		{Name: "b", NsPerOp: 100, AllocsPerOp: 0},
	}}
	same := &BenchSnapshot{Benches: []BenchResult{
		{Name: "a", NsPerOp: 250, AllocsPerOp: 12, Metrics: map[string]float64{"modelTime": 42}},
		{Name: "b", NsPerOp: 90, AllocsPerOp: 4},
	}}
	if regs := CompareBenchSnapshots(base, same, 0, 0); len(regs) != 0 {
		t.Fatalf("within tolerance yet flagged: %v", regs)
	}
	bad := &BenchSnapshot{Benches: []BenchResult{
		{Name: "a", NsPerOp: 500, AllocsPerOp: 100, Metrics: map[string]float64{"modelTime": 43}},
	}}
	regs := CompareBenchSnapshots(base, bad, 0, 0)
	if len(regs) != 4 { // metric drift, ns/op, allocs/op, missing "b"
		t.Fatalf("got %d regressions, want 4: %v", len(regs), regs)
	}
	for _, want := range []string{"drifted", "ns/op", "allocs/op", "missing"} {
		found := false
		for _, r := range regs {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no regression mentions %q: %v", want, regs)
		}
	}
}

func TestBenchSnapshotFileRoundTrip(t *testing.T) {
	s := &BenchSnapshot{Label: "t", Benches: []BenchResult{
		{Name: "Sweep/x", Iters: 3, NsPerOp: 1.5, AllocsPerOp: 2,
			Metrics: map[string]float64{"modelTime": 48}},
	}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip: %+v vs %+v", s, got)
	}
	if regs := CompareBenchSnapshots(s, got, 0, 0); len(regs) != 0 {
		t.Fatalf("snapshot differs from itself: %v", regs)
	}
	if !strings.Contains(got.Benchstat(), "BenchmarkSweep/x 3 1.5 ns/op") {
		t.Fatalf("benchstat text: %s", got.Benchstat())
	}
}
