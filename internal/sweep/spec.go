package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// Grid-axis specs are comma-separated items; each item is either a single
// value or a range:
//
//	"256,512,1024"      explicit list
//	"256..8192:*2"      geometric range (start..end, multiply by 2)
//	"1..9:+2"           arithmetic range (start..end inclusive, step 2)
//	"1..4"              arithmetic range with the default step +1
//
// Ranges are inclusive of end when the step lands on it. Values must be
// strictly increasing within a range (step > 1 for *, > 0 for +), so a
// spec always expands to a finite list.

// ParseInt64s expands a grid-axis spec into its value list.
func ParseInt64s(spec string) ([]int64, error) {
	var out []int64
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		vals, err := expandItem(item)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep: empty grid spec %q", spec)
	}
	return out, nil
}

// ParseInts is ParseInt64s for int-typed axes (n, p, fan-in).
func ParseInts(spec string) ([]int, error) {
	v64, err := ParseInt64s(spec)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(v64))
	for i, v := range v64 {
		if v != int64(int(v)) {
			return nil, fmt.Errorf("sweep: value %d overflows int in spec %q", v, spec)
		}
		out[i] = int(v)
	}
	return out, nil
}

// expandItem expands one spec item (a value or a range) into values.
func expandItem(item string) ([]int64, error) {
	lo, rest, isRange := strings.Cut(item, "..")
	if !isRange {
		v, err := strconv.ParseInt(item, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad grid value %q", item)
		}
		return []int64{v}, nil
	}
	start, err := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sweep: bad range start in %q", item)
	}
	hi, stepStr, hasStep := strings.Cut(rest, ":")
	end, err := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
	if err != nil {
		return nil, fmt.Errorf("sweep: bad range end in %q", item)
	}
	if end < start {
		return nil, fmt.Errorf("sweep: descending range %q", item)
	}
	mul, add := int64(0), int64(1)
	if hasStep {
		stepStr = strings.TrimSpace(stepStr)
		switch {
		case strings.HasPrefix(stepStr, "*"):
			mul, err = strconv.ParseInt(stepStr[1:], 10, 64)
			if err != nil || mul <= 1 {
				return nil, fmt.Errorf("sweep: bad geometric step in %q (need *k with k > 1)", item)
			}
			add = 0
		case strings.HasPrefix(stepStr, "+"):
			add, err = strconv.ParseInt(stepStr[1:], 10, 64)
			if err != nil || add <= 0 {
				return nil, fmt.Errorf("sweep: bad arithmetic step in %q (need +k with k > 0)", item)
			}
		default:
			return nil, fmt.Errorf("sweep: bad step %q in %q (use +k or *k)", stepStr, item)
		}
	}
	if mul > 0 && start <= 0 {
		return nil, fmt.Errorf("sweep: geometric range %q needs a positive start", item)
	}
	var out []int64
	for v := start; v <= end; {
		out = append(out, v)
		if mul > 0 {
			v *= mul
		} else {
			v += add
		}
	}
	return out, nil
}

// FormatInt64s renders a value list back to an explicit comma spec (used
// by progress and summary output).
func FormatInt64s(vals []int64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}
