package sweep

// Grid is a declarative sweep: the cartesian product of its axes. Empty
// machine-parameter axes expand to the single zero value ("model
// default"); empty Models/Algs/Ns/Seeds axes make the grid empty, so a
// caller must always say what to run, on what, at which sizes and seeds.
type Grid struct {
	// Models and Algs name registry entries. Unknown or mismatched names
	// still produce cells — they run as reason-coded skip records, so a
	// broad grid stays auditable instead of silently shrinking.
	Models, Algs []string
	// Ns, Ps and Fanins are the int axes (0 = model default).
	Ns, Ps, Fanins []int
	// Gs, Ds, Ls, Alphas, Betas, Gammas are the cost-parameter axes.
	Gs, Ds, Ls, Alphas, Betas, Gammas []int64
	// Seeds drives workloads and fault plans.
	Seeds []int64
	// Faults is the fault-mix axis; empty = one fault-free pass. A ""
	// entry inside a non-empty axis is a fault-free control.
	Faults []string
	// Degraded runs the fault cells in degraded (crash-masking) mode.
	Degraded bool
}

// orInts substitutes the single-default axis for an empty int axis.
func orInts(v []int) []int {
	if len(v) == 0 {
		return []int{0}
	}
	return v
}

// orInt64s substitutes the single-default axis for an empty int64 axis.
func orInt64s(v []int64) []int64 {
	if len(v) == 0 {
		return []int64{0}
	}
	return v
}

// Count returns the number of cells the grid expands to.
func (g Grid) Count() int {
	faults := g.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	n := len(faults) * len(g.Models) * len(g.Algs) * len(g.Ns) * len(g.Seeds)
	for _, ax := range [][]int{orInts(g.Ps), orInts(g.Fanins)} {
		n *= len(ax)
	}
	for _, ax := range [][]int64{
		orInt64s(g.Gs), orInt64s(g.Ds), orInt64s(g.Ls),
		orInt64s(g.Alphas), orInt64s(g.Betas), orInt64s(g.Gammas),
	} {
		n *= len(ax)
	}
	return n
}

// Cells expands the grid in a fixed nesting order (faults, models, algs,
// n, p, g, d, L, α, β, γ, fan-in, seeds — outermost to innermost). The
// order is part of the resume contract: a resumed sweep walks the same
// sequence and appends from where the partial output stops.
func (g Grid) Cells() []Cell {
	faults := g.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	out := make([]Cell, 0, g.Count())
	for _, fx := range faults {
		for _, model := range g.Models {
			for _, alg := range g.Algs {
				for _, n := range g.Ns {
					for _, p := range orInts(g.Ps) {
						for _, gg := range orInt64s(g.Gs) {
							for _, dd := range orInt64s(g.Ds) {
								for _, ll := range orInt64s(g.Ls) {
									for _, al := range orInt64s(g.Alphas) {
										for _, be := range orInt64s(g.Betas) {
											for _, ga := range orInt64s(g.Gammas) {
												for _, fi := range orInts(g.Fanins) {
													for _, seed := range g.Seeds {
														out = append(out, Cell{
															Model: model, Alg: alg,
															N: n, P: p,
															G: gg, D: dd, L: ll,
															Alpha: al, Beta: be, Gamma: ga,
															Fanin: fi, Seed: seed,
															Faults:   fx,
															Degraded: g.Degraded && fx != "",
														})
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}
