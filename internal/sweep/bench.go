package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/bsp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gsm"
	"repro/internal/qsm"
)

// The bench snapshot freezes two kinds of numbers for the hot paths the
// top-level bench_test.go exercises:
//
//   - deterministic model metrics (measured cost, bound, ratio, model
//     time per committed phase) — these must reproduce exactly, so the
//     comparison gate treats any drift as a determinism regression;
//   - host performance (ns/op, B/op, allocs/op) — these are noisy, so
//     the gate only fails on order-of-magnitude blowups.
//
// The committed snapshot (BENCH_pr7.json) is the baseline CI diffs
// against; regenerate it with `parsim sweep -bench` after intentional
// performance or cost-model changes.

// BenchResult is one benchmark's snapshot entry.
type BenchResult struct {
	// Name is the stable benchmark identifier (slash-separated).
	Name string `json:"name"`
	// Iters is the measured iteration count (informational).
	Iters int `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the host-side numbers.
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// Metrics are the deterministic model-side numbers, computed outside
	// the timed loop at a fixed seed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchSnapshot is a labelled set of benchmark results.
type BenchSnapshot struct {
	Label   string        `json:"label"`
	Benches []BenchResult `json:"benches"`
}

// Comparison tolerances for the host-side numbers. Model metrics get no
// tolerance — they are deterministic by contract.
const (
	// DefaultNsTolerance fails ns/op only beyond a 3× slowdown: CI boxes
	// are noisy, and the deterministic metrics catch real model drift.
	DefaultNsTolerance = 3.0
	// DefaultAllocTolerance fails allocs/op beyond a 25% growth (with a
	// small absolute slack for near-zero baselines).
	DefaultAllocTolerance = 1.25
	// allocSlack is the absolute allocs/op growth ignored regardless of
	// the relative tolerance.
	allocSlack = 16
)

// benchExperiments mirrors the representative Table 1 rows of
// bench_test.go, one per sub-table, at the bench_test sizes.
var benchExperiments = []struct {
	ID string
	N  int
}{
	{"T1.Parity.det", 1 << 11},
	{"T2.Parity.det", 1 << 12},
	{"T3.Parity.det", 1 << 12},
	{"T4.LAC.qsm", 1 << 12},
}

// benchCommitProcs matches the smallest phase-commit size bench_test.go
// sweeps; one point is enough for a regression gate.
const benchCommitProcs = 1 << 14

// RunBenchSnapshot measures every bench whose name contains filter
// ("" = all) and returns the labelled snapshot. It uses
// testing.Benchmark, so each bench self-calibrates its iteration count;
// the deterministic metrics are computed once, outside the timed loops.
func RunBenchSnapshot(label, filter string) (*BenchSnapshot, error) {
	s := &BenchSnapshot{Label: label}
	add := func(r BenchResult, err error) error {
		if err != nil {
			return err
		}
		if filter == "" || strings.Contains(r.Name, filter) {
			s.Benches = append(s.Benches, r)
		}
		return nil
	}
	for _, be := range benchExperiments {
		// Matching against the name before running would be cheaper, but
		// the names are fixed and few; clarity wins.
		name := fmt.Sprintf("Sweep/exp/%s/n=%d", be.ID, be.N)
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		if err := add(benchExperimentCell(name, be.ID, be.N)); err != nil {
			return nil, err
		}
	}
	commits := []struct {
		name string
		run  func(name string) (BenchResult, error)
	}{
		{"Sweep/commit/qsm-low", benchQSMLow},
		{"Sweep/commit/qsm-high", benchQSMHigh},
		{"Sweep/commit/qsm-tree8", benchQSMTree8},
		{"Sweep/commit/qsm-batch", benchQSMBatch},
		{"Sweep/commit/bool-word", benchBoolWord},
		{"Sweep/commit/bsp-shift", benchBSPShift},
		{"Sweep/commit/gsm-gather", benchGSMGather},
		{"Sweep/cell/qsm-parity", benchRunCell},
	}
	for _, c := range commits {
		if filter != "" && !strings.Contains(c.name, filter) {
			continue
		}
		if err := add(c.run(c.name)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// result converts a testing.BenchmarkResult, rejecting failed runs
// (testing.Benchmark returns a zeroed result when the bench fails).
func result(name string, metrics map[string]float64, r testing.BenchmarkResult) (BenchResult, error) {
	if r.N <= 0 {
		return BenchResult{}, fmt.Errorf("sweep: benchmark %s failed", name)
	}
	return BenchResult{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Metrics:     metrics,
	}, nil
}

// benchExperimentCell times one experiment Measure call and records the
// row's deterministic quantities at seed 1.
func benchExperimentCell(name, id string, n int) (BenchResult, error) {
	e := core.ExperimentByID(id)
	if e == nil {
		return BenchResult{}, fmt.Errorf("sweep: unknown experiment %q", id)
	}
	row, err := e.RunPoint(n, 1)
	if err != nil {
		return BenchResult{}, err
	}
	metrics := map[string]float64{
		e.Quantity: row.Measured,
		"bound":    row.Bound,
		"ratio":    row.Ratio,
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.Measure(n, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	return result(name, metrics, r)
}

// qsmCommitMachine builds the phase-commit benchmark machine.
func qsmCommitMachine(p, cells int) (*qsm.Machine, error) {
	return qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: 2, N: p, MemCells: cells})
}

// benchQSMCommit times one phase body on a fresh machine, recording the
// model time the first committed phase charges.
func benchQSMCommit(name string, cells int, body func(c *qsm.Ctx)) (BenchResult, error) {
	probe, err := qsmCommitMachine(benchCommitProcs, cells)
	if err != nil {
		return BenchResult{}, err
	}
	probe.Phase(body)
	if probe.Err() != nil {
		return BenchResult{}, probe.Err()
	}
	metrics := map[string]float64{"modelTime": float64(probe.Report().TotalTime)}
	r := testing.Benchmark(func(b *testing.B) {
		m, err := qsmCommitMachine(benchCommitProcs, cells)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Phase(body)
		}
		b.StopTimer()
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
	})
	return result(name, metrics, r)
}

func benchQSMLow(name string) (BenchResult, error) {
	const p = benchCommitProcs
	return benchQSMCommit(name, 2*p, func(c *qsm.Ctx) {
		v := c.Read(c.Proc())
		c.Write(p+c.Proc(), v+1)
	})
}

func benchQSMHigh(name string) (BenchResult, error) {
	return benchQSMCommit(name, 64, func(c *qsm.Ctx) {
		c.Write(c.Proc()%64, int64(c.Proc()))
	})
}

func benchQSMTree8(name string) (BenchResult, error) {
	const p = benchCommitProcs
	return benchQSMCommit(name, p+p/8+1, func(c *qsm.Ctx) {
		v := c.Read(c.Proc())
		c.Write(p+c.Proc()/8, v|1)
	})
}

// benchQSMBatch gates the columnar submission path: block reads and
// fills through the struct-of-arrays request buffers, at a gate-sized
// per-processor batch (the full envelope sweep lives in bench_test.go).
func benchQSMBatch(name string) (BenchResult, error) {
	const p, k = benchCommitProcs, 16
	return benchQSMCommit(name, 2*p*k, func(c *qsm.Ctx) {
		pr := c.Proc()
		c.ReadBlock(pr*k, k)
		c.WriteFill(p*k+pr*k, k, int64(pr))
	})
}

// benchBoolWord gates the bit-packed memory: one 64-bit ReadWord (64
// charged cell reads) plus a summary-bit write per processor.
func benchBoolWord(name string) (BenchResult, error) {
	const p = benchCommitProcs
	cfg := qsm.Config{Rule: cost.RuleQSM, P: p, G: 2, N: p, MemCells: 65 * p}
	body := func(c *qsm.BoolCtx) {
		w := c.ReadWord(c.Proc()*64, 64)
		c.Write(64*p+c.Proc(), w != 0)
	}
	probe, err := qsm.NewBool(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	probe.Phase(body)
	if probe.Err() != nil {
		return BenchResult{}, probe.Err()
	}
	metrics := map[string]float64{"modelTime": float64(probe.Report().TotalTime)}
	r := testing.Benchmark(func(b *testing.B) {
		m, err := qsm.NewBool(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Phase(body)
		}
		b.StopTimer()
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
	})
	return result(name, metrics, r)
}

func benchBSPShift(name string) (BenchResult, error) {
	const p = benchCommitProcs
	cfg := bsp.Config{P: p, G: 2, L: 8, N: p, PrivCells: 1}
	body := func(c *bsp.Ctx) {
		for k := 0; k < 4; k++ {
			c.Send((c.Comp()+k+1)%p, int64(k), int64(c.Comp()))
		}
	}
	probe, err := bsp.New(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	probe.Superstep(body)
	if probe.Err() != nil {
		return BenchResult{}, probe.Err()
	}
	metrics := map[string]float64{"modelTime": float64(probe.Report().TotalTime)}
	r := testing.Benchmark(func(b *testing.B) {
		m, err := bsp.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Superstep(body)
		}
		b.StopTimer()
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
	})
	return result(name, metrics, r)
}

func benchGSMGather(name string) (BenchResult, error) {
	const p = benchCommitProcs
	cfg := gsm.Config{P: p, Alpha: 4, Beta: 4, Gamma: 1, N: p, Cells: p + p/4 + 1}
	body := func(c *gsm.Ctx) {
		c.Write(p+c.Proc()/4, gsm.NewInfo(int64(c.Proc())))
	}
	probe, err := gsm.New(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	probe.Phase(body)
	if probe.Err() != nil {
		return BenchResult{}, probe.Err()
	}
	metrics := map[string]float64{"modelTime": float64(probe.Report().TotalTime)}
	r := testing.Benchmark(func(b *testing.B) {
		m, err := gsm.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Phase(body)
		}
		b.StopTimer()
		if m.Err() != nil {
			b.Fatal(m.Err())
		}
	})
	return result(name, metrics, r)
}

// benchRunCell times the whole per-cell harness path (registry dispatch,
// machine construction, algorithm, oracle, record assembly).
func benchRunCell(name string) (BenchResult, error) {
	cell := Cell{Model: "qsm", Alg: "parity", N: 1 << 10, Seed: 1}
	rec := RunCell(cell, RunConfig{})
	if rec.Status != StatusOK {
		return BenchResult{}, fmt.Errorf("sweep: bench cell %s: %s %s", rec.Key, rec.Status, rec.Error)
	}
	metrics := map[string]float64{
		"modelTime": rec.Time,
		"phases":    float64(rec.Phases),
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := RunCell(cell, RunConfig{}); out.Status != StatusOK {
				b.Fatalf("cell %s: %s", out.Key, out.Status)
			}
		}
	})
	return result(name, metrics, r)
}

// Benchstat renders the snapshot in the Go benchmark text format, so
// `benchstat old.txt new.txt` compares two snapshots directly.
func (s *BenchSnapshot) Benchstat() string {
	var b strings.Builder
	fmt.Fprintf(&b, "goos: %s\ngoarch: %s\npkg: repro/internal/sweep\n", runtime.GOOS, runtime.GOARCH)
	for _, r := range s.Benches {
		fmt.Fprintf(&b, "Benchmark%s %d %.1f ns/op %d B/op %d allocs/op",
			strings.ReplaceAll(r.Name, " ", "_"), r.Iters, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics { //lint:maporder-ok keys are sorted before use
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %g %s", r.Metrics[k], k)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteFile persists the snapshot as indented JSON.
func (s *BenchSnapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchSnapshot loads a snapshot written by WriteFile.
func ReadBenchSnapshot(path string) (*BenchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := &BenchSnapshot{}
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	return s, nil
}

// CompareBenchSnapshots diffs current against base and returns the
// regressions (empty = gate passes). Deterministic metrics compare
// exactly; ns/op and allocs/op compare against the tolerances
// (0 = defaults). New benches absent from base pass — commit a fresh
// baseline to start gating them.
func CompareBenchSnapshots(base, cur *BenchSnapshot, nsTol, allocTol float64) []string {
	if nsTol <= 0 {
		nsTol = DefaultNsTolerance
	}
	if allocTol <= 0 {
		allocTol = DefaultAllocTolerance
	}
	curBy := make(map[string]BenchResult, len(cur.Benches))
	for _, r := range cur.Benches {
		curBy[r.Name] = r
	}
	var regressions []string
	for _, b := range base.Benches {
		c, ok := curBy[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current snapshot", b.Name))
			continue
		}
		keys := make([]string, 0, len(b.Metrics))
		for k := range b.Metrics { //lint:maporder-ok keys are sorted before use
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := b.Metrics[k]
			cv, ok := c.Metrics[k]
			if !ok || math.Abs(cv-bv) > 1e-9*math.Max(1, math.Abs(bv)) {
				regressions = append(regressions,
					fmt.Sprintf("%s: deterministic metric %s drifted: baseline %g, current %g", b.Name, k, bv, cv))
			}
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*nsTol {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op regressed beyond %.2gx: baseline %.0f, current %.0f", b.Name, nsTol, b.NsPerOp, c.NsPerOp))
		}
		if grew := c.AllocsPerOp - b.AllocsPerOp; grew > allocSlack &&
			float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*allocTol {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op regressed beyond %.2gx: baseline %d, current %d", b.Name, allocTol, b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	return regressions
}
