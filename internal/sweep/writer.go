package sweep

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// writer persists sweep records: an append-only JSONL stream flushed per
// record (the resume source of truth) and a CSV table rebuilt wholesale
// at close through a temp file + rename, so readers never observe a
// half-written table.
type writer struct {
	jsonl   *os.File
	buf     *bufio.Writer
	csvPath string
	records []Record
}

// scanJSONL parses a partial sweep output into its complete records plus
// the byte offset where the valid prefix ends. A torn final line (an
// interrupt mid-write) and anything after it is dropped; the resume path
// truncates there and re-runs those cells.
func scanJSONL(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	var recs []Record
	var off int64
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		var r Record
		if err := json.Unmarshal(data[:i], &r); err != nil || r.Key == "" {
			break
		}
		recs = append(recs, r)
		off += int64(i) + 1
		data = data[i+1:]
	}
	return recs, off, nil
}

// newWriter opens the outputs. With resume it rescans jsonlPath, seeds
// the record list with the valid prefix, truncates the torn tail and
// positions the file for appending; it also returns the completed cells
// keyed for skipping. Without resume the JSONL starts fresh. An empty
// jsonlPath keeps records in memory only (CSV, if requested, still
// writes at close).
func newWriter(jsonlPath, csvPath string, resume bool) (*writer, map[string]Record, error) {
	w := &writer{csvPath: csvPath}
	prior := make(map[string]Record)
	if jsonlPath == "" {
		if resume {
			return nil, nil, fmt.Errorf("sweep: resume needs a JSONL output path")
		}
		return w, prior, nil
	}
	var off int64
	if resume {
		recs, n, err := scanJSONL(jsonlPath)
		if err != nil {
			return nil, nil, err
		}
		off = n
		w.records = recs
		for _, r := range recs {
			prior[r.Key] = r
		}
	}
	f, err := os.OpenFile(jsonlPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.jsonl, w.buf = f, bufio.NewWriter(f)
	return w, prior, nil
}

// append records one cell and flushes it to the JSONL stream, so an
// interrupt loses at most the torn final line the resume scanner drops.
func (w *writer) append(r Record) error {
	w.records = append(w.records, r)
	if w.buf == nil {
		return nil
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if _, err := w.buf.Write(line); err != nil {
		return err
	}
	if err := w.buf.WriteByte('\n'); err != nil {
		return err
	}
	return w.buf.Flush()
}

// close syncs and closes the JSONL stream, then atomically rebuilds the
// CSV from the full record list (resumed prefix included).
func (w *writer) close() error {
	if w.jsonl != nil {
		if err := w.buf.Flush(); err != nil {
			return err
		}
		if err := w.jsonl.Sync(); err != nil {
			return err
		}
		if err := w.jsonl.Close(); err != nil {
			return err
		}
		w.jsonl, w.buf = nil, nil
	}
	if w.csvPath == "" {
		return nil
	}
	return writeCSV(w.csvPath, w.records)
}

// writeCSV writes the record table via temp file + rename in the target
// directory (same filesystem, so the rename is atomic).
func writeCSV(path string, records []Record) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cw := csv.NewWriter(tmp)
	werr := cw.Write(csvHeader)
	for _, r := range records {
		if werr != nil {
			break
		}
		werr = cw.Write(r.csvRow())
	}
	cw.Flush()
	if werr == nil {
		werr = cw.Error()
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}
