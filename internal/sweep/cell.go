// Package sweep is the mega-sweep harness: it expands declarative
// (model × algorithm × n × p × g × d × L × α/β/γ × seed × fault-mix)
// grids into cells, prunes infeasible cells with reason codes instead of
// dropping them, runs the rest through one shared runner, and persists
// every cell — run or skipped — as a JSONL/CSV record. Interrupted sweeps
// resume from the partial JSONL output byte-identically.
//
// The harness has three cell kinds, all carried by the same Cell struct:
//
//   - experiment cells (Exp != ""): one (Table 1 row, n) point of the
//     registered core experiments — the cmd/tables grid;
//   - machine cells (Exp == "", Faults == ""): one algorithm on one
//     machine with explicit parameters — the cmd/parsim grid;
//   - fault cells (Faults != ""): one chaos scenario — the parsim chaos
//     grid.
//
// Model time comes exclusively from the cost formulas; records carry no
// wall-clock fields, which is what makes interrupted-and-resumed output
// byte-comparable to an uninterrupted run.
package sweep

import (
	"fmt"
	"strings"
)

// Skip reason codes. Infeasible cells are recorded with one of these
// rather than silently dropped, so a sweep's coverage is auditable from
// its output alone.
const (
	// ReasonUnknownModel: the model name is not in the registry.
	ReasonUnknownModel = "unknown-model"
	// ReasonUnknownAlg: the algorithm name is not in the registry.
	ReasonUnknownAlg = "unknown-alg"
	// ReasonInvalidCombo: model and algorithm are individually known but
	// belong to different machine families (e.g. bsp-parity on qsm), or
	// the fault runner has no harness for the model.
	ReasonInvalidCombo = "invalid-combo"
	// ReasonTooLarge: the cell's simulation footprint (n·p) exceeds the
	// sweep's configured ceiling.
	ReasonTooLarge = "too-large"
	// ReasonUnsupportedAlg: the algorithm exists but has no runner in the
	// requested mode (e.g. prefix under fault injection).
	ReasonUnsupportedAlg = "unsupported-alg"
	// ReasonInvalidParams: a parameter violates a model precondition the
	// grid can state up front (non-positive n, p or g, fan-in < 2, a
	// malformed fault-spec string, …).
	ReasonInvalidParams = "invalid-params"
	// ReasonUnknownExp: an experiment cell names an unregistered ID.
	ReasonUnknownExp = "unknown-exp"
	// ReasonCancelled: the run was cut short by context cancellation
	// (SIGINT). Cancelled cells are never persisted — a resumed sweep
	// re-runs them.
	ReasonCancelled = "cancelled"
)

// Cell is one grid point. The zero value of an axis means "model
// default"; Key() canonicalizes defaults so a cell's identity is stable
// across spelling variants.
type Cell struct {
	// Exp selects an experiment cell: a core registry ID (e.g.
	// "T2.Parity.det") measured at N with Seed.
	Exp string `json:"exp,omitempty"`
	// Model and Alg select a machine or fault cell.
	Model string `json:"model,omitempty"`
	Alg   string `json:"alg,omitempty"`
	// N is the input size; P the processor/component count (0 = n).
	N int `json:"n"`
	P int `json:"p,omitempty"`
	// G, D, L parameterize the QSM/QSM(g,d)/BSP cost rules.
	G int64 `json:"g,omitempty"`
	D int64 `json:"d,omitempty"`
	L int64 `json:"l,omitempty"`
	// Alpha, Beta, Gamma parameterize the GSM.
	Alpha int64 `json:"alpha,omitempty"`
	Beta  int64 `json:"beta,omitempty"`
	Gamma int64 `json:"gamma,omitempty"`
	// Fanin is the tree fan-in of the fan-in-parameterized algorithms.
	Fanin int `json:"fanin,omitempty"`
	// Seed drives the workload (and, for fault cells, the fault plan).
	Seed int64 `json:"seed"`
	// Faults is the declarative fault mix of a fault cell (internal/fault
	// spec grammar, e.g. "crash@2:p1,mem~0.05"); empty = fault-free.
	Faults string `json:"faults,omitempty"`
	// Degraded masks crashes and re-partitions over survivors (fault
	// cells on shared-memory models only).
	Degraded bool `json:"degraded,omitempty"`
	// Backend selects the commit-barrier backend ("", "inproc" = the
	// built-in merge; "proc" = worker subprocesses).
	Backend string `json:"backend,omitempty"`
	// ProcWorkers is the proc backend's worker-process count (0 = 1).
	ProcWorkers int `json:"procWorkers,omitempty"`
}

// withDefaults fills zero axes with the parsim defaults so the runner and
// Key always see explicit parameters.
func (c Cell) withDefaults() Cell {
	if c.P == 0 {
		c.P = c.N
	}
	if c.G == 0 {
		c.G = 4
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.L == 0 {
		c.L = 16
	}
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if c.Beta == 0 {
		c.Beta = 2
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Fanin == 0 {
		c.Fanin = 2
	}
	return c
}

// Key is the cell's stable identity: the resume scanner skips cells whose
// key already appears in the partial output. Experiment cells ignore the
// machine axes; fault cells include the mix and mode.
func (c Cell) Key() string {
	if c.Exp != "" {
		return fmt.Sprintf("exp/%s/n%d/seed%d", c.Exp, c.N, c.Seed)
	}
	d := c.withDefaults()
	mode := "strict"
	if d.Degraded {
		mode = "degraded"
	}
	faults := d.Faults
	if faults == "" {
		faults = "none"
	}
	key := fmt.Sprintf("%s/%s/n%d/p%d/g%d/d%d/L%d/a%d/b%d/c%d/f%d/seed%d/%s/%s",
		d.Model, d.Alg, d.N, d.P, d.G, d.D, d.L,
		d.Alpha, d.Beta, d.Gamma, d.Fanin, d.Seed, faults, mode)
	// Non-default backends suffix the key; inproc cells keep the exact
	// historical key so resumes over old outputs stay byte-identical.
	if d.Backend != "" && d.Backend != "inproc" {
		pw := d.ProcWorkers
		if pw <= 0 {
			pw = 1
		}
		key += fmt.Sprintf("/%s%d", d.Backend, pw)
	}
	return key
}

// Status classifies a completed record.
type Status string

const (
	// StatusOK: the cell ran and the answer verified against the oracle.
	StatusOK Status = "ok"
	// StatusDiagnosed: a fault cell ended in a diagnosable machine error —
	// an expected outcome under injected faults, not a harness failure.
	StatusDiagnosed Status = "diagnosed"
	// StatusSkipped: the cell was pruned; Reason carries the code.
	StatusSkipped Status = "skipped"
	// StatusFailed: the cell ran and violated an invariant (wrong answer,
	// fault-free error, chaos robustness violation).
	StatusFailed Status = "failed"
)

// Record is the persisted result of one cell. Field order is the JSONL
// and CSV column order; keep it append-only so old outputs stay readable.
type Record struct {
	Key string `json:"key"`
	Cell
	Status Status `json:"status"`
	// Reason is the skip code of a skipped record.
	Reason string `json:"reason,omitempty"`
	// Error is the diagnosable error text of diagnosed/failed records.
	Error string `json:"error,omitempty"`
	// Time is the measured model time (cost-formula units); Phases the
	// phase/superstep count; Work the p·time product.
	Time   float64 `json:"time,omitempty"`
	Phases int     `json:"phases,omitempty"`
	Work   int64   `json:"work,omitempty"`
	// Bound, Upper, Ratio and AllRounds are the experiment-cell columns
	// (lower-bound formula value, §8 upper bound, measured/bound).
	Bound     float64 `json:"bound,omitempty"`
	Upper     float64 `json:"upper,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	AllRounds bool    `json:"allRounds,omitempty"`
	// Verified reports the oracle check of machine and fault cells.
	Verified bool `json:"verified,omitempty"`
	// Injected, Recovered and MaskedProcs are the fault-cell accounting.
	Injected    int `json:"injected,omitempty"`
	Recovered   int `json:"recovered,omitempty"`
	MaskedProcs int `json:"maskedProcs,omitempty"`
}

// csvHeader is the fixed CSV column set, mirroring Record field order.
var csvHeader = []string{
	"key", "exp", "model", "alg", "n", "p", "g", "d", "l",
	"alpha", "beta", "gamma", "fanin", "seed", "faults", "degraded",
	"status", "reason", "error", "time", "phases", "work",
	"bound", "upper", "ratio", "allRounds", "verified",
	"injected", "recovered", "maskedProcs", "backend", "procWorkers",
}

// csvRow renders the record in csvHeader order.
func (r Record) csvRow() []string {
	f := func(v float64) string {
		if v == 0 {
			return ""
		}
		return trimFloat(v)
	}
	i := func(v int) string {
		if v == 0 {
			return ""
		}
		return fmt.Sprintf("%d", v)
	}
	return []string{
		r.Key, r.Exp, r.Model, r.Alg,
		fmt.Sprintf("%d", r.N), i(r.P),
		fmt.Sprintf("%d", r.G), fmt.Sprintf("%d", r.D), fmt.Sprintf("%d", r.L),
		fmt.Sprintf("%d", r.Alpha), fmt.Sprintf("%d", r.Beta), fmt.Sprintf("%d", r.Gamma),
		i(r.Fanin), fmt.Sprintf("%d", r.Seed), r.Faults, fmt.Sprintf("%t", r.Degraded),
		string(r.Status), r.Reason, r.Error,
		f(r.Time), i(r.Phases), fmt.Sprintf("%d", r.Work),
		f(r.Bound), f(r.Upper), f(r.Ratio),
		fmt.Sprintf("%t", r.AllRounds), fmt.Sprintf("%t", r.Verified),
		i(r.Injected), i(r.Recovered), i(r.MaskedProcs),
		r.Backend, i(r.ProcWorkers),
	}
}

// trimFloat formats a float compactly ("12" not "12.000000").
func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}
