package sweep

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Options configures one sweep invocation.
type Options struct {
	// JSONL and CSV are the output paths ("" = skip that output).
	JSONL, CSV string
	// Resume rescans JSONL and skips cells whose records already exist.
	Resume bool
	// MaxCells stops the sweep after appending this many new records
	// (0 = run the whole grid). The cut is at a record boundary, exactly
	// the state an interrupt leaves behind, so tests and smoke runs use
	// it to exercise the resume path deterministically.
	MaxCells int
	// MaxCost is the n·p footprint ceiling (0 = DefaultMaxCost).
	MaxCost int64
	// Workers caps simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Deadline is the fault-cell watchdog (0 = chaos.DefaultDeadline).
	Deadline time.Duration
	// Progress, when non-nil, receives a carriage-return progress line
	// per cell (count-based only — no wall-clock, no rates).
	Progress io.Writer
	// Ctx stops the sweep between cells and tears down the cell in
	// flight (nil = context.Background()). Cancelled cells are not
	// persisted, so a resumed sweep re-runs them.
	Ctx context.Context
}

// Summary aggregates one sweep invocation.
type Summary struct {
	// Total is the grid size; Ran counts cells executed this invocation;
	// Resumed counts cells satisfied from the partial output.
	Total, Ran, Resumed int
	// OK, Diagnosed, Skipped and Failed partition the graded cells.
	OK, Diagnosed, Skipped, Failed int
	// SkipReasons counts skips by reason code.
	SkipReasons map[string]int
	// Injected, Recovered and MaskedProcs total the fault accounting.
	Injected, Recovered, MaskedProcs int
	// Failures lists failed cells as "key: error".
	Failures []string
	// Records is the full persisted record list in output order.
	Records []Record
	// Interrupted reports that MaxCells stopped the sweep early.
	Interrupted bool
}

// Run executes the cells in grid order, skipping any whose key already
// appears in the resumed output. Cells run sequentially — the simulators
// parallelize internally via Workers, and sequential execution keeps the
// record order (and therefore the JSONL byte stream) deterministic,
// which is what makes interrupted-and-resumed sweeps byte-comparable to
// uninterrupted ones.
func Run(cells []Cell, opt Options) (*Summary, error) {
	w, prior, err := newWriter(opt.JSONL, opt.CSV, opt.Resume)
	if err != nil {
		return nil, err
	}
	s := &Summary{Total: len(cells), SkipReasons: make(map[string]int)}
	rc := RunConfig{MaxCost: opt.MaxCost, Workers: opt.Workers, Deadline: opt.Deadline, Ctx: opt.Ctx}
	appended := 0
	for i, c := range cells {
		var rec Record
		if pr, ok := prior[c.Key()]; ok {
			rec = pr
			s.Resumed++
		} else {
			if opt.MaxCells > 0 && appended >= opt.MaxCells {
				s.Interrupted = true
				break
			}
			if opt.Ctx != nil && opt.Ctx.Err() != nil {
				s.Interrupted = true
				break
			}
			rec = RunCell(c, rc)
			if rec.Status == StatusSkipped && rec.Reason == ReasonCancelled {
				// The interrupt landed mid-cell: the cell is not a result
				// and must not be persisted — a resumed sweep re-runs it.
				s.Interrupted = true
				break
			}
			if werr := w.append(rec); werr != nil {
				w.close()
				return nil, werr
			}
			appended++
			s.Ran++
		}
		s.tally(rec)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "\rsweep: %d/%d cells — %d ok, %d diagnosed, %d skipped, %d failed",
				i+1, s.Total, s.OK, s.Diagnosed, s.Skipped, s.Failed)
		}
	}
	if opt.Progress != nil {
		fmt.Fprintln(opt.Progress)
	}
	if err := w.close(); err != nil {
		return nil, err
	}
	s.Records = w.records
	return s, nil
}

// tally folds one record into the summary counters.
func (s *Summary) tally(r Record) {
	switch r.Status {
	case StatusOK:
		s.OK++
	case StatusDiagnosed:
		s.Diagnosed++
	case StatusSkipped:
		s.Skipped++
		s.SkipReasons[r.Reason]++
	default:
		s.Failed++
		s.Failures = append(s.Failures, fmt.Sprintf("%s: %s", r.Key, r.Error))
	}
	s.Injected += r.Injected
	s.Recovered += r.Recovered
	s.MaskedProcs += r.MaskedProcs
}

// String renders the sweep summary: one headline, the skip reasons in
// sorted order, and every failure.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d cells — %d ok, %d diagnosed, %d skipped, %d failed",
		s.Total, s.OK, s.Diagnosed, s.Skipped, s.Failed)
	if s.Resumed > 0 {
		fmt.Fprintf(&b, " (%d resumed)", s.Resumed)
	}
	if s.Interrupted {
		b.WriteString(" [stopped at max-cells]")
	}
	if len(s.SkipReasons) > 0 {
		reasons := make([]string, 0, len(s.SkipReasons))
		for r := range s.SkipReasons { //lint:maporder-ok reasons are sorted before use
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		b.WriteString("\n  skipped:")
		for _, r := range reasons {
			fmt.Fprintf(&b, " %s=%d", r, s.SkipReasons[r])
		}
	}
	for _, f := range s.Failures {
		b.WriteString("\n  FAIL ")
		b.WriteString(f)
	}
	return b.String()
}

// ChaosString renders the summary in the historical `parsim chaos`
// format, so the chaos preset through this runner prints what the
// dedicated chaos sweep always printed.
func (s *Summary) ChaosString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: %d runs, %d verified, %d diagnosable errors, %d faults injected, %d recovered, %d procs masked",
		s.OK+s.Diagnosed+s.Failed, s.OK, s.Diagnosed, s.Injected, s.Recovered, s.MaskedProcs)
	for _, f := range s.Failures {
		b.WriteString("\n  FAIL ")
		b.WriteString(f)
	}
	return b.String()
}
