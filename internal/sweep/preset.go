package sweep

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
)

// PresetTables expands the cmd/tables grid: every registered Table 1
// experiment at each of its sweep sizes, in registry order. Running
// these cells and feeding the records to RenderTablesFromRecords
// reproduces RenderAll's output byte-identically.
func PresetTables(seed int64) []Cell {
	var cells []Cell
	for _, e := range core.Experiments() {
		for _, n := range e.Ns {
			cells = append(cells, Cell{Exp: e.ID, N: n, Seed: seed})
		}
	}
	return cells
}

// RenderTablesFromRecords reassembles experiment records (from this run
// or a resumed JSONL) into the four Table 1 sub-tables. Every experiment
// cell must have completed: a skipped or failed cell is an error, same
// as RenderAll aborting on a failed row.
func RenderTablesFromRecords(records []Record) (string, error) {
	rows := make(map[string][]core.Row)
	for _, r := range records {
		if r.Exp == "" {
			continue
		}
		switch r.Status {
		case StatusOK:
		case StatusSkipped:
			return "", fmt.Errorf("sweep: experiment cell %s was skipped (%s)", r.Key, r.Reason)
		default:
			return "", fmt.Errorf("sweep: experiment cell %s failed: %s", r.Key, r.Error)
		}
		rows[r.Exp] = append(rows[r.Exp], core.Row{
			N: r.N, Bound: r.Bound, Upper: r.Upper,
			Measured: r.Time, Ratio: r.Ratio, AllRounds: r.AllRounds,
		})
	}
	if len(rows) == 0 {
		return "", fmt.Errorf("sweep: no experiment records to render")
	}
	results := make(map[string]*core.Result)
	for _, e := range core.Experiments() {
		if len(rows[e.ID]) == 0 {
			continue
		}
		res, err := core.Assemble(e, rows[e.ID])
		if err != nil {
			return "", err
		}
		results[e.ID] = res
	}
	return core.RenderResults(results), nil
}

// PresetChaos expands the standard chaos matrix (mixes × models ×
// per-family algorithms × seeds) as fault cells, in exactly the order
// chaos.Scenarios walks, so the generic runner reproduces the historical
// `parsim chaos` sweep — same runs, same counts, same summary.
func PresetChaos(seeds []int64, n int, degraded bool) []Cell {
	var cells []Cell
	for _, mx := range chaos.StandardMixes() {
		for _, model := range chaos.Models {
			deg := (mx.Degraded || degraded) && model != "bsp" && model != "gsm"
			for _, alg := range chaos.AlgsFor(model) {
				for _, seed := range seeds {
					cells = append(cells, Cell{
						Model: model, Alg: alg, N: n, Seed: seed,
						Faults: mx.Specs, Degraded: deg,
					})
				}
			}
		}
	}
	return cells
}

// PresetSmoke is the CI smoke grid: the full model × algorithm cross
// product at one small size (the cross-family combinations become the
// skip records that keep the reason codes exercised), a fault cell per
// machine family, and one experiment cell.
func PresetSmoke() []Cell {
	cells := Grid{
		Models: ModelNames(),
		Algs:   AlgNames(),
		Ns:     []int{64},
		Seeds:  []int64{1},
	}.Cells()
	return append(cells,
		Cell{Model: "qsm", Alg: "parity", N: 32, Seed: 1, Faults: "mem~0.05"},
		Cell{Model: "crqw", Alg: "or-contention", N: 32, Seed: 1, Faults: "crash@2:p1", Degraded: true},
		Cell{Model: "bsp", Alg: "bsp-parity", N: 32, Seed: 1, Faults: "drop~0.1,dup~0.1"},
		Cell{Model: "gsm", Alg: "gsm-or", N: 32, Seed: 1, Faults: "mem@1"},
		Cell{Model: "qsmgd", Alg: "parity", N: 32, Seed: 1, Faults: "mem~0.05"}, // → invalid-combo
		Cell{Exp: "T2.Parity.det", N: 256, Seed: 1998},
	)
}
