package sweep

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/boolor"
	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/gsm"
	"repro/internal/gsmalg"
	"repro/internal/parity"
	"repro/internal/prefix"
	"repro/internal/qsm"
	"repro/internal/sortrank"
	"repro/internal/workload"
)

// Family groups the machine models by their construction/run interface.
type Family int

const (
	// FamilyShared is the QSM family (qsm, sqsm, crqw, qsmgd).
	FamilyShared Family = iota
	// FamilyBSP is the distributed-memory BSP.
	FamilyBSP
	// FamilyGSM is the paper's lower-bound model.
	FamilyGSM
)

// String names the family for error messages.
func (f Family) String() string {
	switch f {
	case FamilyShared:
		return "shared-memory"
	case FamilyBSP:
		return "bsp"
	default:
		return "gsm"
	}
}

// ModelSpec is one registry entry: a machine model the sweep (and the
// parsim CLI, which derives its -model usage string from this table) can
// construct.
type ModelSpec struct {
	// Name is the CLI/grid spelling.
	Name string
	// Family selects the construction and run interface.
	Family Family
	// Rule is the cost rule of shared-family models.
	Rule cost.Rule
	// ChaosModel reports whether internal/chaos has a fault harness for
	// this model (everything except qsmgd).
	ChaosModel bool
}

// modelRegistry is the single source of truth for -model dispatch. Order
// is the usage-string order.
var modelRegistry = []ModelSpec{
	{Name: "qsm", Family: FamilyShared, Rule: cost.RuleQSM, ChaosModel: true},
	{Name: "sqsm", Family: FamilyShared, Rule: cost.RuleSQSM, ChaosModel: true},
	{Name: "crqw", Family: FamilyShared, Rule: cost.RuleCRQW, ChaosModel: true},
	{Name: "qsmgd", Family: FamilyShared, Rule: cost.RuleQSMGD, ChaosModel: false},
	{Name: "bsp", Family: FamilyBSP, ChaosModel: true},
	{Name: "gsm", Family: FamilyGSM, ChaosModel: true},
}

// Models returns the registry in usage order.
func Models() []ModelSpec { return modelRegistry }

// ModelByName looks a model up by its CLI spelling.
func ModelByName(name string) (ModelSpec, bool) {
	for _, ms := range modelRegistry {
		if ms.Name == name {
			return ms, true
		}
	}
	return ModelSpec{}, false
}

// ModelNames returns the model spellings in registry order.
func ModelNames() []string {
	out := make([]string, len(modelRegistry))
	for i, ms := range modelRegistry {
		out[i] = ms.Name
	}
	return out
}

// ModelUsage is the -model flag usage string, derived from the registry
// so the help text cannot drift from what the dispatcher accepts.
func ModelUsage() string { return strings.Join(ModelNames(), " | ") }

// runOutcome is what an algorithm closure reports back to Execute.
type runOutcome struct {
	// summary is the human-readable answer line(s) parsim prints.
	summary string
	// verified is the host-side oracle verdict.
	verified bool
}

// AlgSpec is one registry entry: a §8 algorithm the sweep (and the parsim
// CLI, which derives its -alg usage string from this table) can run.
type AlgSpec struct {
	// Name is the CLI/grid spelling.
	Name string
	// Family is the machine family the algorithm runs on.
	Family Family
	// FaultAlg is the internal/chaos algorithm this maps to under fault
	// injection ("" = no fault-mode runner).
	FaultAlg string
	// procs overrides the shared-memory processor count (nil = cell P).
	procs func(c Cell) int
	// priv is the BSP private-memory requirement.
	priv func(n, p int) int
	// The family-specific runner; exactly one is set.
	runShared func(c Cell, m *qsm.Machine) (runOutcome, error)
	runBSP    func(c Cell, m *bsp.Machine) (runOutcome, error)
	runGSM    func(c Cell, m *gsm.Machine) (runOutcome, error)
}

// algRegistry is the single source of truth for -alg dispatch. Order is
// the usage-string order (shared, then bsp, then gsm algorithms).
var algRegistry = []AlgSpec{
	{Name: "parity", Family: FamilyShared, FaultAlg: "parity", runShared: runParity},
	{Name: "or", Family: FamilyShared, FaultAlg: "or", runShared: runORRead},
	{Name: "or-contention", Family: FamilyShared, FaultAlg: "or", runShared: runORContention},
	{Name: "prefix", Family: FamilyShared, runShared: runPrefix},
	{Name: "lac-det", Family: FamilyShared, runShared: runDetLAC},
	{Name: "lac-dart", Family: FamilyShared, FaultAlg: "lac", runShared: runDartLAC},
	{Name: "listrank", Family: FamilyShared,
		procs:     func(c Cell) int { return 2 * (c.N + 1) },
		runShared: runListRank},
	{Name: "bsp-parity", Family: FamilyBSP, FaultAlg: "parity",
		priv: parity.PrivNeedBSP, runBSP: runBSPParity},
	{Name: "bsp-or", Family: FamilyBSP, FaultAlg: "or",
		priv: boolor.PrivNeedBSP, runBSP: runBSPOR},
	{Name: "gsm-parity", Family: FamilyGSM, FaultAlg: "parity", runGSM: runGSMParity},
	{Name: "gsm-or", Family: FamilyGSM, FaultAlg: "or", runGSM: runGSMOR},
}

// Algs returns the registry in usage order.
func Algs() []AlgSpec { return algRegistry }

// AlgByName looks an algorithm up by its CLI spelling.
func AlgByName(name string) (AlgSpec, bool) {
	for _, as := range algRegistry {
		if as.Name == name {
			return as, true
		}
	}
	return AlgSpec{}, false
}

// AlgNames returns the algorithm spellings in registry order.
func AlgNames() []string {
	out := make([]string, len(algRegistry))
	for i, as := range algRegistry {
		out[i] = as.Name
	}
	return out
}

// AlgUsage is the -alg flag usage string, derived from the registry so
// the help text cannot drift from what the dispatcher accepts.
func AlgUsage() string { return strings.Join(AlgNames(), " | ") }

// Outcome is the result of executing one fault-free cell.
type Outcome struct {
	// Summary is the human-readable answer line(s).
	Summary string
	// Report is the machine's accumulated cost report.
	Report *cost.Report
	// Stream is the observer event stream (withEvents runs only).
	Stream string
	// Verified is the host-side oracle verdict.
	Verified bool
}

// Execute runs one fault-free machine cell: it resolves model and
// algorithm in the registries, constructs the machine, runs the
// algorithm, and checks the oracle. workers caps simulation parallelism
// (0 = GOMAXPROCS). parsim's single-run mode is a thin wrapper over this.
func Execute(c Cell, withEvents bool, workers int) (*Outcome, error) {
	return ExecuteWith(c, withEvents, workers, nil)
}

// ExecuteWith is Execute with an explicit commit-barrier backend (nil =
// the built-in merge). The caller owns the backend's lifecycle; the
// machine only borrows it for the run.
func ExecuteWith(c Cell, withEvents bool, workers int, bk engine.Backend) (*Outcome, error) {
	c = c.withDefaults()
	ms, ok := ModelByName(c.Model)
	if !ok {
		return nil, fmt.Errorf("unknown model %q (want %s)", c.Model, ModelUsage())
	}
	as, ok := AlgByName(c.Alg)
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q (want %s)", c.Alg, AlgUsage())
	}
	if as.Family != ms.Family {
		return nil, fmt.Errorf("algorithm %q is a %s algorithm and does not run on model %q (%s)",
			c.Alg, as.Family, c.Model, ms.Family)
	}

	var m engine.Machine
	var run func() (runOutcome, error)
	switch ms.Family {
	case FamilyShared:
		p := c.P
		if as.procs != nil {
			p = as.procs(c)
		}
		mm, err := qsm.New(qsm.Config{
			Rule: ms.Rule, P: p, G: c.G, D: c.D, N: c.N, MemCells: c.N, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		m, run = mm, func() (runOutcome, error) { return as.runShared(c, mm) }
	case FamilyBSP:
		mm, err := bsp.New(bsp.Config{
			P: c.P, G: c.G, L: c.L, N: c.N, PrivCells: as.priv(c.N, c.P), Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		m, run = mm, func() (runOutcome, error) { return as.runBSP(c, mm) }
	default:
		gamma := c.Gamma
		if gamma < 1 {
			gamma = 1
		}
		r := (c.N + int(gamma) - 1) / int(gamma)
		mm, err := gsm.New(gsm.Config{
			P: r, Alpha: c.Alpha, Beta: c.Beta, Gamma: gamma, N: c.N,
			Cells: gsmalg.CellsNeedGather(r), Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		m, run = mm, func() (runOutcome, error) { return as.runGSM(c, mm) }
	}

	var ev *engine.EventLog
	if withEvents {
		ev = &engine.EventLog{}
		m.AddObserver(ev)
	}
	if bk != nil {
		m.SetBackend(bk)
	}
	ro, err := run()
	if err != nil {
		return nil, err
	}
	// A machine poisoned after the runner returned (e.g. by a bad final
	// Peek) must surface as an error, not render a poisoned report.
	if err := m.Err(); err != nil {
		return nil, err
	}
	out := &Outcome{Summary: ro.summary, Report: m.Report(), Verified: ro.verified}
	if ev != nil {
		out.Stream = ev.String()
	}
	return out, nil
}

// --- shared-memory runners -----------------------------------------------------

func runParity(c Cell, m *qsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Load(0, bits); err != nil {
		return runOutcome{}, err
	}
	out, err := parity.TreeQSM(m, 0, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	got, want := m.Peek(out), workload.Parity(bits)
	return runOutcome{
		summary:  fmt.Sprintf("parity = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

func runORRead(c Cell, m *qsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Load(0, bits); err != nil {
		return runOutcome{}, err
	}
	out, err := boolor.ReadTree(m, 0, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	got, want := m.Peek(out), workload.Or(bits)
	return runOutcome{
		summary:  fmt.Sprintf("OR = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

func runORContention(c Cell, m *qsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Load(0, bits); err != nil {
		return runOutcome{}, err
	}
	out, err := boolor.ContentionTree(m, 0, c.N, int(c.G))
	if err != nil {
		return runOutcome{}, err
	}
	got, want := m.Peek(out), workload.Or(bits)
	return runOutcome{
		summary:  fmt.Sprintf("OR = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

func runPrefix(c Cell, m *qsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Load(0, bits); err != nil {
		return runOutcome{}, err
	}
	out, err := prefix.RunQSM(m, 0, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	var want int64
	for _, b := range bits {
		want += b
	}
	got := m.Peek(out + c.N - 1)
	return runOutcome{
		summary:  fmt.Sprintf("total = %d", got),
		verified: got == want,
	}, nil
}

func runDetLAC(c Cell, m *qsm.Machine) (runOutcome, error) {
	items, err := workload.Sparse(c.Seed, c.N, c.N/4)
	if err != nil {
		return runOutcome{}, err
	}
	if err := m.Load(0, items); err != nil {
		return runOutcome{}, err
	}
	_, k, err := compaction.DetLAC(m, 0, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	return runOutcome{
		summary:  fmt.Sprintf("compacted %d items", k),
		verified: k == c.N/4,
	}, nil
}

func runDartLAC(c Cell, m *qsm.Machine) (runOutcome, error) {
	items, err := workload.Sparse(c.Seed, c.N, c.N/4)
	if err != nil {
		return runOutcome{}, err
	}
	if err := m.Load(0, items); err != nil {
		return runOutcome{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	res, err := compaction.DartLAC(m, rng, 0, c.N)
	if err != nil {
		return runOutcome{}, err
	}
	summary := fmt.Sprintf("placed %d items in %d cells over %d rounds",
		len(res.Placed), res.OutSize, res.Rounds)
	if slots := res.PlacedSlots(); len(slots) > 0 {
		summary += fmt.Sprintf("\noccupied cells span [%d, %d]",
			slots[0].Cell, slots[len(slots)-1].Cell)
	}
	return runOutcome{
		summary:  summary,
		verified: compaction.VerifyPlacement(items, res) == nil,
	}, nil
}

func runListRank(c Cell, m *qsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Load(0, bits); err != nil {
		return runOutcome{}, err
	}
	got, err := sortrank.ParityViaList(m, 0, c.N)
	if err != nil {
		return runOutcome{}, err
	}
	want := workload.Parity(bits)
	return runOutcome{
		summary:  fmt.Sprintf("parity via list ranking = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

// --- BSP runners ---------------------------------------------------------------

func runBSPParity(c Cell, m *bsp.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Scatter(bits); err != nil {
		return runOutcome{}, err
	}
	got, err := parity.RunBSP(m, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	want := workload.Parity(bits)
	return runOutcome{
		summary:  fmt.Sprintf("parity = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

func runBSPOR(c Cell, m *bsp.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.Scatter(bits); err != nil {
		return runOutcome{}, err
	}
	got, err := boolor.RunBSP(m, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	want := workload.Or(bits)
	return runOutcome{
		summary:  fmt.Sprintf("OR = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

// --- GSM runners ---------------------------------------------------------------

func runGSMParity(c Cell, m *gsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.LoadInputs(bits); err != nil {
		return runOutcome{}, err
	}
	got, err := gsmalg.ParityGSM(m, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	want := workload.Parity(bits)
	return runOutcome{
		summary:  fmt.Sprintf("parity = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}

func runGSMOR(c Cell, m *gsm.Machine) (runOutcome, error) {
	bits := workload.Bits(c.Seed, c.N)
	if err := m.LoadInputs(bits); err != nil {
		return runOutcome{}, err
	}
	got, err := gsmalg.ORGSM(m, c.N, c.Fanin)
	if err != nil {
		return runOutcome{}, err
	}
	want := workload.Or(bits)
	return runOutcome{
		summary:  fmt.Sprintf("OR = %d (reference %d)", got, want),
		verified: got == want,
	}, nil
}
