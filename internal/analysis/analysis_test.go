package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		comment, key string
		reason       string
		ok           bool
	}{
		{"//lint:maporder-ok keys are sorted", "maporder-ok", "keys are sorted", true},
		{"//lint:maporder-ok", "maporder-ok", "", true},
		{"//lint:maporder-ok\treason after tab", "maporder-ok", "reason after tab", true},
		{"//lint:maporder-okay not our key", "maporder-ok", "", false},
		{"// lint:maporder-ok not a directive", "maporder-ok", "", false},
		{"//lint:wallclock-ok other analyzer", "maporder-ok", "", false},
		{"// plain comment", "maporder-ok", "", false},
	}
	for _, c := range cases {
		reason, ok := ParseDirective(c.comment, c.key)
		if reason != c.reason || ok != c.ok {
			t.Errorf("ParseDirective(%q, %q) = (%q, %v), want (%q, %v)",
				c.comment, c.key, reason, ok, c.reason, c.ok)
		}
	}
}

func TestStripVariant(t *testing.T) {
	cases := map[string]string{
		"repro/internal/engine":                              "repro/internal/engine",
		"repro/internal/engine [repro/internal/engine.test]": "repro/internal/engine",
	}
	for in, want := range cases { //lint:maporder-ok assertions are independent per entry
		if got := StripVariant(in); got != want {
			t.Errorf("StripVariant(%q) = %q, want %q", in, got, want)
		}
	}
}

// newPass parses src as a single file and returns a Pass collecting
// diagnostics into diags. Type information is nil: the directive
// machinery is purely syntactic.
func newPass(t *testing.T, src string, diags *[]Diagnostic) (*Pass, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "maporder"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d Diagnostic) { *diags = append(*diags, d) },
	}
	return pass, f
}

func TestBareDirectiveIsReportedAndDoesNotSuppress(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	//lint:maporder-ok
	for range m {
	}
}
`
	var diags []Diagnostic
	pass, f := newPass(t, src, &diags)

	pass.CheckDirectives()
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "requires a reason") {
		t.Fatalf("CheckDirectives reported %v, want one 'requires a reason' finding", diags)
	}
	if got := pass.Fset.Position(diags[0].Pos).Line; got != 4 {
		t.Errorf("reason-less directive reported at line %d, want 4", got)
	}

	// The bare directive must not allowlist the range on the next line.
	rangeLine := 5
	pos := posOnLine(pass.Fset, f, rangeLine)
	if pass.Allowlisted(f, pos) {
		t.Errorf("bare directive suppressed a finding on line %d", rangeLine)
	}
}

// Fixture files under a testdata directory deliberately carry malformed
// directives; the mandatory-reason check polices shipped code only. The
// bare directive still must not suppress anything there.
func TestBareDirectiveSkippedInTestdata(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	//lint:maporder-ok
	for range m {
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/analysis/maporder/testdata/src/p/a.go", src,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: &Analyzer{Name: "maporder"},
		Fset:     fset,
		Files:    []*ast.File{f},
		Report:   func(d Diagnostic) { diags = append(diags, d) },
	}
	pass.CheckDirectives()
	if len(diags) != 0 {
		t.Fatalf("CheckDirectives reported %v inside testdata", diags)
	}
	if pass.Allowlisted(f, posOnLine(fset, f, 5)) {
		t.Error("bare directive suppressed a finding even inside testdata")
	}
}

func TestAllowlistedSameLineAndLineAbove(t *testing.T) {
	src := `package p

func f(m map[int]int) {
	for range m { //lint:maporder-ok same line
	}
	//lint:maporder-ok line above
	for range m {
	}
	for range m {
	}
}
`
	var diags []Diagnostic
	pass, f := newPass(t, src, &diags)
	pass.CheckDirectives()
	if len(diags) != 0 {
		t.Fatalf("CheckDirectives reported %v for reasoned directives", diags)
	}
	for line, want := range map[int]bool{4: true, 7: true, 9: false} { //lint:maporder-ok assertions are independent per entry
		if got := pass.Allowlisted(f, posOnLine(pass.Fset, f, line)); got != want {
			t.Errorf("Allowlisted(line %d) = %v, want %v", line, got, want)
		}
	}
}

// posOnLine returns some token position on the requested line of f.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found.IsValid() {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	if !found.IsValid() {
		tf := fset.File(f.Pos())
		found = tf.LineStart(line)
	}
	return found
}
