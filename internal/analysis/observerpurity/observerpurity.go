// Package observerpurity keeps observers read-only: an implementation of
// the engine Observer hook (PhaseStart/Request/PhaseEnd) receives the
// deterministic per-phase event stream and may accumulate its own state
// (trace rows, event lines), but must never write engine or machine
// state. Observers run on the coordinating goroutine between commit
// passes, so a write from one is invisible to the race detector and to
// commitpurity's single-package scope — it would corrupt the very state
// whose determinism the event stream certifies.
//
// The check is effect-based and interprocedural: every function gets a
// write-effect summary (the set of protected types whose fields it
// writes, where protected means "declared in the engine package"),
// propagated through the call graph and serialized as facts across
// packages. A type is an observer if it declares the structural
// Observer triple — PhaseStart(phase), Request(phase, r),
// PhaseEnd(phase, pc) — and each of those methods must have an empty
// transitive write-effect set, minus effects on the observer's own type
// (engine.EventLog appending to itself is the intended pattern).
package observerpurity

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer verifies Observer implementations never write engine state.
var Analyzer = &analysis.Analyzer{
	Name: "observerpurity",
	Doc:  "flag Observer implementations whose methods (transitively) write engine state",
	Run:  run,
}

// protectedSuffix marks the packages whose types an observer must not
// write: the shared machine runtime.
const protectedSuffix = "internal/engine"

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	local := make(map[string]map[string]bool)
	for _, sym := range g.Order {
		if set := writeEffects(pass, g.Funcs[sym]); len(set) > 0 {
			local[sym] = set
		}
	}
	effects := g.PropagateSets(local, func(c interproc.Callee) []string {
		payload, ok := pass.DepFact(c.PkgPath, c.Sym)
		if !ok {
			return nil
		}
		return interproc.DecodePayload(payload)
	})
	for _, sym := range g.Order {
		if set := effects[sym]; len(set) > 0 {
			pass.ExportFact(sym, interproc.JoinPayload(interproc.Members(set)))
		}
	}

	for _, obs := range observerTypes(pass, g) {
		own := pass.Pkg.Path() + "." + obs
		for _, method := range observerMethods {
			sym := obs + "." + method
			info, ok := g.Funcs[sym]
			if !ok || pass.InTestFile(info.Decl.Pos()) {
				continue
			}
			var foreign []string
			for _, eff := range interproc.Members(effects[sym]) {
				if eff != own {
					foreign = append(foreign, eff)
				}
			}
			if len(foreign) == 0 || pass.Allowlisted(info.File, info.Decl.Pos()) {
				continue
			}
			pass.Reportf(info.Decl.Pos(),
				"observer method %s (transitively) writes engine state %s; observers are read-only — accumulate into the observer's own state or annotate //lint:observerpurity-ok <reason>",
				sym, strings.Join(foreign, ", "))
		}
	}
	return nil
}

// writeEffects collects the protected types whose fields info writes,
// keyed "pkgpath.TypeName". Writes through embedded fields are
// attributed to the declaring type, as in commitpurity.
func writeEffects(pass *analysis.Pass, info *interproc.FuncInfo) map[string]bool {
	set := make(map[string]bool)
	record := func(e ast.Expr) {
		sel := rootSelector(e)
		if sel == nil {
			return
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		if owner := protectedOwner(selection.Recv(), selection.Index()); owner != "" {
			set[owner] = true
		}
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(st.X)
		}
		return true
	})
	return set
}

// rootSelector unwraps indexing, dereference and parenthesisation around
// an assignment target down to the field selector being written.
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// protectedOwner walks the selection's embedding path and returns the
// "pkgpath.TypeName" of the protected type declaring the written field,
// or "" when the write does not touch protected state.
func protectedOwner(t types.Type, index []int) string {
	owner := ""
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		key := ""
		if n, ok := t.(*types.Named); ok {
			if pkg := n.Obj().Pkg(); pkg != nil && strings.HasSuffix(pkg.Path(), protectedSuffix) {
				key = pkg.Path() + "." + n.Obj().Name()
			}
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return ""
		}
		fv := st.Field(i)
		owner = key
		t = fv.Type()
	}
	return owner
}

// observerMethods is the structural Observer triple, matched by name and
// parameter count so fixtures need no engine import.
var observerMethods = []string{"PhaseStart", "Request", "PhaseEnd"}

var observerArity = map[string]int{"PhaseStart": 1, "Request": 2, "PhaseEnd": 2}

// observerTypes lists the receiver type names declaring all three
// observer methods with the expected arities, in declaration order.
func observerTypes(pass *analysis.Pass, g *interproc.Graph) []string {
	found := make(map[string]map[string]bool)
	var order []string
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if info.Decl.Recv == nil {
			continue
		}
		name := info.Decl.Name.Name
		want, ok := observerArity[name]
		if !ok || info.Decl.Type.Params.NumFields() == 0 {
			continue
		}
		if params(info.Decl.Type) != want {
			continue
		}
		recv := strings.TrimSuffix(sym, "."+name)
		if found[recv] == nil {
			found[recv] = make(map[string]bool)
			order = append(order, recv)
		}
		found[recv][name] = true
	}
	var out []string
	for _, recv := range order {
		if len(found[recv]) == len(observerMethods) {
			out = append(out, recv)
		}
	}
	return out
}

// params counts the declared parameters of a function type (grouped
// parameters count once each).
func params(ft *ast.FuncType) int {
	n := 0
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}
