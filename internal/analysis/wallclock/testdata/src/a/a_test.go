// Test files may read the clock freely (benchmarks, timeouts).
package a

import "time"

func testHelperNow() time.Time { return time.Now() }
