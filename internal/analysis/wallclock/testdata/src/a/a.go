// Package a seeds wallclock violations and suppressions.
package a

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the host clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the host clock`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the host clock`
}

func toolTiming() time.Time {
	//lint:wallclock-ok times the lint sweep itself, not model rounds
	return time.Now()
}

func format(t time.Time) string {
	return t.Format(time.RFC3339) // clean: formatting reads no clock
}

func pause(d time.Duration) time.Duration {
	return d + 5*time.Millisecond // clean: duration arithmetic
}
