// Package wallclock flags host-clock reads (time.Now, time.Since,
// time.Until) in non-test code.
//
// Model time on the QSM, BSP and GSM is defined by the Section 2 cost
// formulas — max(m_op, m_rw·g, κ) per phase, w + g·h + L per superstep —
// and is accumulated by the engine from the barrier merge alone. The host
// clock must never leak into model cost, round classification or the
// event stream: a wall-clock term would vary across machines, loads and
// Workers settings, destroying the byte-identical determinism contract
// that makes Table 1 measurements reproducible. Benchmarks and the test
// harness (_test.go files) are exempt; a deliberate wall-clock read in
// tool code (e.g. timing a lint sweep) takes
//
//	//lint:wallclock-ok <reason>
package wallclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags host-clock reads in non-test code.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now/time.Since/time.Until where model time must come from the cost formulas",
	Run:  run,
}

// clockFuncs are the package time functions that read the host clock.
var clockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
				return true
			}
			if pass.Allowlisted(f, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the host clock; model time and rounds must come from the QSM/BSP/GSM cost formulas (or annotate //lint:wallclock-ok <reason>)",
				fn.Name())
			return true
		})
	}
	return nil
}
