// Package atomicmix checks the memory-access discipline split that -race
// only catches when both halves of a mixed access actually execute
// concurrently under the test schedule: a location accessed through
// sync/atomic anywhere must be accessed through sync/atomic everywhere.
// One plain `c.lastBeat = 0` next to `atomic.LoadInt64(&c.lastBeat)`
// elsewhere is a data race on every architecture and an invisible one on
// x86, where the torn read the race detector would need to observe may
// never materialize.
//
// Two forms, matching the two atomic styles in the tree:
//
//   - function-API atomics: a field or package-level variable passed by
//     address to atomic.Load*/Store*/Add*/Swap*/CompareAndSwap* joins the
//     atomic set; any other plain read or write of the same location —
//     in a method, a closure, anywhere in the package — is reported.
//     Taking the address is exempt (that is how the location flows into
//     the atomic API in the first place).
//   - typed atomics (atomic.Bool, atomic.Int64, ...): the type system
//     already forces Load/Store at every use, so the only way to break
//     the discipline is to copy the value wholesale — `x := c.closed` or
//     `c.closed = other.closed` — which forks the counter. Whole-value
//     assignment of a typed atomic is reported.
//
// Location identity follows lockorder's structural convention: fields
// are "Owner.field" (per-class), package-level variables "var:name",
// locals "name@file:line". Field and package-variable keys are exported
// as "atomic <pos>" facts so importers of a package that atomically
// manages a field cannot plainly poke it from outside.
//
// Test files are exempt: tests read counters after joining every
// goroutine, where plain access is legal by happens-before.
//
// Suppression: //lint:atomicmix-ok <reason>.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces all-atomic-or-never access per location.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag plain reads/writes of locations that are accessed via sync/atomic elsewhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	c := &checker{
		pass:      pass,
		atomicKey: make(map[string]token.Pos),
		exempt:    make(map[token.Pos]bool),
	}

	// Pass 1 over every file: collect the atomic set and the positions
	// exempt from the plain-access check (operands feeding the atomic
	// API, and every address-of operand — &x.f does not read x.f).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				c.collectAtomicCall(x)
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					c.exempt[ast.Unparen(x.X).Pos()] = true
				}
			}
			return true
		})
	}

	// Pass 2: report plain accesses to atomic-set locations, and
	// whole-value copies of typed atomics.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		c.file = f
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				// One report per assignment pair: a typed-atomic RHS is
				// a copy, a typed-atomic LHS an overwrite — both fork
				// the value, and when both hold one diagnostic is
				// enough.
				for i, rhs := range x.Rhs {
					if c.checkTypedAtomicCopy(rhs) {
						continue
					}
					if len(x.Lhs) == len(x.Rhs) {
						c.checkTypedAtomicCopy(x.Lhs[i])
					}
				}
				if len(x.Lhs) != len(x.Rhs) {
					for _, lhs := range x.Lhs {
						c.checkTypedAtomicCopy(lhs)
					}
				}
			case *ast.ValueSpec:
				for _, val := range x.Values {
					c.checkTypedAtomicCopy(val)
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					c.checkTypedAtomicCopy(res)
				}
			case *ast.SelectorExpr:
				c.checkPlainAccess(x)
			case *ast.Ident:
				c.checkPlainIdent(x)
			}
			return true
		})
	}

	// Export field and package-variable keys, sorted for determinism.
	for _, key := range sortedKeys(c.atomicKey) {
		if strings.Contains(key, "@") {
			continue // local variable: key is meaningless outside this package
		}
		pos := pass.Fset.Position(c.atomicKey[key])
		pass.ExportFact(key, fmt.Sprintf("atomic %s:%d", shortName(pos.Filename), pos.Line))
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	// atomicKey maps a location key to the first atomic access position.
	atomicKey map[string]token.Pos
	// exempt marks expression positions that must not be reported as
	// plain accesses (address-of operands).
	exempt map[token.Pos]bool
}

// atomicFuncs are the sync/atomic function-API prefixes that take the
// location's address as their first argument.
var atomicFuncs = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"}

// collectAtomicCall records the location behind atomic.XxxYyy(&loc, ...).
func (c *checker) collectAtomicCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := c.pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return
	}
	matched := false
	for _, prefix := range atomicFuncs {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			matched = true
			break
		}
	}
	if !matched {
		return
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return
	}
	loc := ast.Unparen(addr.X)
	key := c.locKey(loc)
	if key == "" {
		return
	}
	if _, seen := c.atomicKey[key]; !seen {
		c.atomicKey[key] = loc.Pos()
	}
}

// locKey derives the location identity of an addressable expression.
func (c *checker) locKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		fs := c.pass.TypesInfo.Selections[x]
		if fs == nil || fs.Kind() != types.FieldVal {
			return ""
		}
		owner, field := fieldOwner(fs.Recv(), fs.Index())
		if owner == "" {
			return ""
		}
		return owner + "." + field
	case *ast.Ident:
		obj := identObj(c.pass, x)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return "var:" + v.Name()
		}
		p := c.pass.Fset.Position(v.Pos())
		return fmt.Sprintf("%s@%s:%d", v.Name(), shortName(p.Filename), p.Line)
	}
	return ""
}

// checkPlainAccess reports a field selection whose key is in the atomic
// set (locally, or via a dep fact on the owner type's package) and which
// is not an address-of operand.
func (c *checker) checkPlainAccess(sel *ast.SelectorExpr) {
	if c.exempt[sel.Pos()] {
		return
	}
	fs := c.pass.TypesInfo.Selections[sel]
	if fs == nil || fs.Kind() != types.FieldVal {
		return
	}
	owner, field := fieldOwner(fs.Recv(), fs.Index())
	if owner == "" {
		return
	}
	key := owner + "." + field
	if first, ok := c.atomicKey[key]; ok {
		p := c.pass.Fset.Position(first)
		c.report(sel.Pos(), "non-atomic access to %s, which is accessed atomically at %s:%d", key, shortName(p.Filename), p.Line)
		return
	}
	// Cross-package: the owner type may belong to a dependency that
	// manages the field atomically.
	if pkg := ownerPkg(fs.Recv()); pkg != "" && pkg != c.pass.Pkg.Path() {
		if payload, ok := c.pass.DepFact(pkg, key); ok {
			c.report(sel.Pos(), "non-atomic access to %s, which %s accesses atomically (%s)", key, pkg, payload)
		}
	}
}

// checkPlainIdent reports a bare variable use whose key is in the atomic
// set (package-level or local variables passed to sync/atomic).
func (c *checker) checkPlainIdent(id *ast.Ident) {
	if c.exempt[id.Pos()] {
		return
	}
	v, ok := identObj(c.pass, id).(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return
	}
	var key string
	if v.Parent() == v.Pkg().Scope() {
		key = "var:" + v.Name()
	} else {
		p := c.pass.Fset.Position(v.Pos())
		key = fmt.Sprintf("%s@%s:%d", v.Name(), shortName(p.Filename), p.Line)
	}
	first, ok := c.atomicKey[key]
	if !ok || id.Pos() == v.Pos() {
		return // not atomic, or this is the declaration itself
	}
	p := c.pass.Fset.Position(first)
	c.report(id.Pos(), "non-atomic access to %s, which is accessed atomically at %s:%d", trimVarKey(key), shortName(p.Filename), p.Line)
}

// typedAtomics are the value types of sync/atomic whose copy semantics
// break the counter.
var typedAtomics = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// checkTypedAtomicCopy reports whole-value assignment of a typed atomic
// (either side of an assignment forks the value). It reports whether it
// fired, so assignment pairs produce one diagnostic.
func (c *checker) checkTypedAtomicCopy(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.SelectorExpr, *ast.Ident:
	default:
		return false
	}
	named, ok := c.pass.TypesInfo.TypeOf(e).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !typedAtomics[obj.Name()] {
		return false
	}
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return false
	}
	c.report(e.Pos(), "whole-value copy of atomic.%s forks the counter; use Load/Store", obj.Name())
	return true
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Allowlisted(c.file, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// ownerPkg names the package of the receiver's base named type.
func ownerPkg(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// trimVarKey strips the "var:" marker for diagnostics.
func trimVarKey(key string) string { return strings.TrimPrefix(key, "var:") }

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //lint:maporder-ok keys are sorted before use
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// fieldOwner resolves a field index path to (owner type name, field
// name) — the shared structural identity rule (see bitaddr).
func fieldOwner(t types.Type, index []int) (owner, field string) {
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		name := ""
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		fv := st.Field(i)
		owner, field = name, fv.Name()
		t = fv.Type()
	}
	return owner, field
}

// identObj resolves an identifier through Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// shortName trims a path to its base name.
func shortName(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
