// Package a exercises the atomicmix analyzer: a location accessed via
// sync/atomic anywhere must be accessed via sync/atomic everywhere.
package a

import "sync/atomic"

type counter struct {
	ops  int64
	hits int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.ops, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.ops)
}

func (c *counter) mixed() int64 {
	c.ops = 0    // want `non-atomic access to counter.ops`
	return c.ops // want `non-atomic access to counter.ops`
}

func (c *counter) plainOnly() int64 {
	c.hits++ // never atomic anywhere: plain access is the discipline
	return c.hits
}

func closureMix(c *counter) func() {
	return func() {
		c.ops = 7 // want `non-atomic access to counter.ops`
	}
}

var total int64

func addTotal() {
	atomic.AddInt64(&total, 1)
}

func mixedTotal() int64 {
	total++      // want `non-atomic access to total`
	return total // want `non-atomic access to total`
}

func localMix() int64 {
	var n int64
	atomic.StoreInt64(&n, 1)
	n = 2 // want `non-atomic access to n`
	return atomic.LoadInt64(&n)
}

type gate struct {
	closed atomic.Bool
	n      int
}

func (g *gate) set() bool {
	g.closed.Store(true)
	return g.closed.Load()
}

func copyGate(g *gate) {
	x := g.closed // want `whole-value copy of atomic.Bool`
	_ = x.Load()
}

func overwriteGate(g, h *gate) {
	g.closed = h.closed // want `whole-value copy of atomic.Bool`
	g.n = h.n
}

func allowlisted(c *counter) {
	//lint:atomicmix-ok fixture: runs before any goroutine is spawned
	c.ops = 0
}
