// Package snapshotdeep guards the checkpoint/rollback deep-copy
// contract: a type implementing engine.Snapshotter (or the engines' own
// Checkpoint/Rollback pair) must copy every map/slice/pointer it saves,
// because the live state keeps mutating between the snapshot and a
// rollback. A shallow alias — `m.ck = m.mem` instead of
// `m.ck = append(m.ck[:0], m.mem...)` — produces a checkpoint that
// tracks the corruption it exists to undo, and no test notices until a
// fault lands on exactly the aliased cell.
//
// Detection is interprocedural: every function's shallow alias writes
// (a persistent field assigned an existing map/slice/pointer value
// rather than a fresh copy) are summarized as facts; findings are
// reported only on the snapshot paths — functions reachable in the call
// graph from a Snapshot/Restore/Checkpoint/Rollback method — including
// cross-package callees via the facts files. Snapshotter is matched
// structurally (a Snapshot()/Restore() niladic method pair), so the
// check needs no import of the engine package and fixture tests
// type-check against GOROOT alone.
//
// Known soundness gaps (see DESIGN.md §5): a struct value copied
// wholesale (`d.s = s.s` where s.s is a struct containing slices)
// aliases its reference fields without a reported write, and calls
// through function values are not traversed.
package snapshotdeep

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer flags shallow map/slice/pointer aliasing on snapshot paths.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotdeep",
	Doc:  "flag shallow map/slice/pointer aliasing on Snapshot/Restore/Checkpoint/Rollback paths",
	Run:  run,
}

// rootNames are the method names that start a snapshot path: the
// structural Snapshotter pair plus the engines' checkpoint machinery.
var rootNames = map[string]bool{
	"Snapshot": true, "Restore": true, "Checkpoint": true, "Rollback": true,
}

// aliasWrite is one shallow-copy assignment.
type aliasWrite struct {
	pos  ast.Node
	desc string
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	writes := make(map[string][]aliasWrite)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		if w := collectAliasWrites(pass, info); len(w) > 0 {
			writes[sym] = w
			first := w[0]
			p := pass.Fset.Position(first.pos.Pos())
			pass.ExportFact(sym, fmt.Sprintf("%s:%d: %s", filepath.Base(p.Filename), p.Line, first.desc))
		}
	}

	reach := g.ReachableFrom(snapshotRoots(g)...)
	for _, sym := range g.Order {
		if !reach[sym] {
			continue
		}
		info := g.Funcs[sym]
		for _, w := range writes[sym] {
			if pass.Allowlisted(info.File, w.pos.Pos()) {
				continue
			}
			pass.Reportf(w.pos.Pos(),
				"snapshot path %s: %s; deep-copy with append/copy/clone or annotate //lint:snapshotdeep-ok <reason>",
				sym, w.desc)
		}
		// Cross-package callees that alias state, via the facts files.
		for _, c := range info.Calls {
			if c.PkgPath == g.PkgPath || c.PkgPath == "" || c.Iface {
				continue
			}
			payload, ok := pass.DepFact(c.PkgPath, c.Sym)
			if !ok || pass.Allowlisted(info.File, c.Pos.Pos()) {
				continue
			}
			pass.Reportf(c.Pos.Pos(),
				"snapshot path %s calls %s.%s which aliases state without a deep copy (%s); copy before saving or annotate //lint:snapshotdeep-ok <reason>",
				sym, c.PkgPath, c.Sym, payload)
		}
	}
	return nil
}

// snapshotRoots returns the symbols of this package's snapshot-path
// entry methods: Checkpoint/Rollback anywhere, and Snapshot/Restore on
// types that declare both (the structural Snapshotter shape).
func snapshotRoots(g *interproc.Graph) []string {
	pairs := make(map[string]int)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		name := info.Decl.Name.Name
		if info.Decl.Recv == nil || !rootNames[name] {
			continue
		}
		if name == "Snapshot" || name == "Restore" {
			if ft := info.Decl.Type; ft.Params.NumFields() != 0 ||
				ft.Results.NumFields() != 0 {
				continue
			}
			recv := sym[:len(sym)-len(name)-1]
			pairs[recv]++
		}
	}
	var roots []string
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		name := info.Decl.Name.Name
		if info.Decl.Recv == nil || !rootNames[name] {
			continue
		}
		if name == "Checkpoint" || name == "Rollback" {
			roots = append(roots, sym)
			continue
		}
		recv := sym[:len(sym)-len(name)-1]
		if pairs[recv] == 2 {
			roots = append(roots, sym)
		}
	}
	return roots
}

// collectAliasWrites finds assignments that store an existing
// map/slice/pointer value into persistent state (a field, possibly
// through indexing/dereference) without copying it.
func collectAliasWrites(pass *analysis.Pass, info *interproc.FuncInfo) []aliasWrite {
	var out []aliasWrite
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if !persistentTarget(pass, lhs) {
				continue
			}
			rhs := as.Rhs[i]
			kind, aliases := aliasingRHS(pass, rhs)
			if !aliases || selfReslice(lhs, rhs) {
				continue
			}
			out = append(out, aliasWrite{
				pos: as,
				desc: fmt.Sprintf("%s = %s stores a shallow %s alias",
					types.ExprString(lhs), types.ExprString(rhs), kind),
			})
		}
		return true
	})
	return out
}

// persistentTarget reports whether lhs writes through a struct field
// (m.ck, m.ck[i], *m.ptr): state that outlives the function. Plain
// locals are scratch and may alias freely.
func persistentTarget(pass *analysis.Pass, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			sel := pass.TypesInfo.Selections[x]
			return sel != nil && sel.Kind() == types.FieldVal
		default:
			return false
		}
	}
}

// selfReslice reports whether the assignment shrinks or re-slices the
// target's own storage (r.Phases = r.Phases[:n], m.ck = m.ck[:0]): the
// idiomatic truncate-in-place, which aliases nothing new.
func selfReslice(lhs, rhs ast.Expr) bool {
	sl, ok := ast.Unparen(rhs).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return types.ExprString(ast.Unparen(sl.X)) == types.ExprString(ast.Unparen(lhs))
}

// aliasingRHS reports whether rhs evaluates to a view of existing
// storage — a variable, field, element, subslice or address of an
// existing object — of map/slice/pointer type. Fresh values (append,
// copy targets, make, composite literals, clones, nil) do not alias.
func aliasingRHS(pass *analysis.Pass, rhs ast.Expr) (kind string, aliases bool) {
	e := ast.Unparen(rhs)
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return "", false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		kind = "slice"
	case *types.Map:
		kind = "map"
	case *types.Pointer:
		kind = "pointer"
	default:
		return "", false
	}
	switch x := e.(type) {
	case *ast.Ident:
		return kind, x.Name != "nil"
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.SliceExpr:
		return kind, true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return "", false
		}
		_, fresh := ast.Unparen(x.X).(*ast.CompositeLit)
		return kind, !fresh
	}
	return "", false
}
