// Package framestate checks the wire-protocol discipline of the proc
// backend's length-prefixed frame codec: the coordinator and its workers
// agree on frame layouts only by convention, and the stale-response
// filter (the (phase, attempt) guard in Coordinator.await) is the one
// line standing between a duplicated frame fault and a merge computed
// from another attempt's statistics. Both conventions are invisible to
// the type system — every payload is a []byte — so this analyzer proves
// them by value-flow from codec to merge.
//
// Three checks, all structural over the `dec`/`enc` codec types (matched
// by type name, the same convention bitaddr uses for packedColumns):
//
//   - header offsets: a `dec{b: p, off: N}` literal may start at offset
//     0 (whole payload), 1 (past the type byte) or 9 (past type, phase,
//     attempt). Any other offset is a magic number that silently skips
//     or re-reads header fields.
//   - filter discipline: a decode starting at offset 9 trusts that
//     phase and attempt were already checked, so its buffer must come
//     from a call to a filtering function — one that reads the two u32
//     header fields of an offset-1 decode inside at least two distinct
//     ==/!= guards (Coordinator.await's shape), locally or via a
//     "filters" fact. A decode starting at offset 1 that goes on to
//     read deep payload fields (i64 or a column) must read the two
//     header u32s first — the worker's echo discipline.
//   - layout agreement: every `e.reset(fX)` starts an encode signature
//     (u8 → 'b', u32/i32/mark → 'w', i64 → 'q') collected over the
//     straight-line statements that follow; every decode site whose
//     frame constant is known — from the dispatch `switch payload[0]`,
//     from a `p[0] == fX` comparison, or from the constant passed to
//     the call that produced the buffer — yields a decode signature the
//     same way (offset 9 contributes the implied "ww" header). Encode
//     and decode signatures for one frame constant must agree on their
//     common prefix; so must two independent encoders of the same
//     constant.
//
// Signatures stop at the first compound statement (loops carry the
// variable-length column regions) and at enc.finish — prefix agreement
// is exactly the "header layout" contract the ISSUE names, and it is
// what a torn or reordered field corrupts first.
//
// Facts: "filters" on functions whose returned payloads passed the
// guard, "enc:<frame>" carrying encode signatures for importers.
//
// Suppression: //lint:framestate-ok <reason>.
package framestate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer proves frame-codec layout and stale-filter discipline.
var Analyzer = &analysis.Analyzer{
	Name:      "framestate",
	Doc:       "flag frame decodes that bypass the (phase,attempt) stale filter or disagree with their encoder's layout",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo scopes the check to the wire-protocol seam and fixtures.
func appliesTo(pkgPath string) bool {
	return strings.Contains(pkgPath, "backend/proc") || strings.HasPrefix(pkgPath, "framestate")
}

// sig is one collected codec signature.
type sig struct {
	frame string // frame constant name (fMemReq, ...)
	ops   string // one char per field: b/w/q/c
	fn    string // enclosing function symbol
	file  *ast.File
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)
	c := &checker{
		pass:    pass,
		graph:   g,
		filters: make(map[string]bool),
		frameOf: make(map[string]string),
	}

	// Pre-pass A: which functions filter (phase, attempt) guards.
	for _, sym := range g.Order {
		if c.classifyFilter(g.Funcs[sym].Decl) {
			c.filters[sym] = true
		}
	}
	// Pre-pass B: frame constants dispatched to same-package handlers
	// (switch payload[0] { case fX: handler(payload) }).
	for _, sym := range g.Order {
		c.collectDispatch(g.Funcs[sym].Decl)
	}

	// Main pass: decode/encode sites, in declaration order.
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		c.file = info.File
		c.checkDecl(sym, info.Decl)
	}

	c.compareSignatures()

	// Facts: filter classification and encode layouts.
	for _, sym := range g.Order {
		if pass.InTestFile(g.Funcs[sym].Decl.Pos()) {
			continue
		}
		if c.filters[sym] {
			pass.ExportFact(sym, "filters")
		}
	}
	seen := make(map[string]bool)
	for _, s := range c.encSigs {
		if !seen[s.frame] && !pass.InTestFile(s.pos) {
			seen[s.frame] = true
			pass.ExportFact("enc:"+s.frame, s.ops)
		}
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	graph *interproc.Graph
	file  *ast.File
	// filters marks functions whose returned payload passed the
	// (phase, attempt) guard.
	filters map[string]bool
	// frameOf maps a handler function symbol to the frame constant its
	// payload parameter carries (from dispatch switches).
	frameOf map[string]string
	encSigs []sig
	decSigs []sig
}

// classifyFilter reports whether the declaration contains an offset-1
// decode whose u32 reads appear in at least two distinct ==/!= guards —
// the stale-response filter shape.
func (c *checker) classifyFilter(decl *ast.FuncDecl) bool {
	for _, d := range c.decLiterals(decl) {
		if d.off != 1 || d.obj == nil {
			continue
		}
		guards := 0
		ast.Inspect(decl, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if c.callsOn(cmp, d.obj, "u32") {
				guards++
			}
			return true
		})
		if guards >= 2 {
			return true
		}
	}
	return false
}

// collectDispatch links frame constants to same-package handler symbols
// via `switch buf[0] { case fX: ... handler(buf) ... }`.
func (c *checker) collectDispatch(decl *ast.FuncDecl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		subject := indexZeroOperand(sw.Tag)
		if subject == nil {
			return true
		}
		subjObj := identObj(c.pass, subject)
		if subjObj == nil {
			return true
		}
		for _, cs := range sw.Body.List {
			clause := cs.(*ast.CaseClause)
			frame := ""
			for _, v := range clause.List {
				if name := c.frameConst(v); name != "" {
					frame = name
					break
				}
			}
			if frame == "" {
				continue
			}
			for _, st := range clause.Body {
				ast.Inspect(st, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, arg := range call.Args {
						id, ok := ast.Unparen(arg).(*ast.Ident)
						if !ok || identObj(c.pass, id) != subjObj {
							continue
						}
						fn := interproc.CalleeFunc(c.pass, call)
						if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == c.pass.Pkg.Path() {
							sym := interproc.Symbol(fn)
							if _, dup := c.frameOf[sym]; !dup {
								c.frameOf[sym] = frame
							}
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// decSite is one dec composite literal with its context.
type decSite struct {
	lit *ast.CompositeLit
	b   ast.Expr // buffer expression
	off int
	obj types.Object // the variable the literal is bound to (d := dec{...})
}

// decLiterals finds every dec literal in the declaration, resolving the
// bound variable when the literal initializes a simple define.
func (c *checker) decLiterals(decl *ast.FuncDecl) []decSite {
	var sites []decSite
	ast.Inspect(decl, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !c.isCodecType(lit.Type, "dec") {
			return true
		}
		site := decSite{lit: lit, off: 0}
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "b":
					site.b = kv.Value
				case "off":
					site.off, _ = intLit(kv.Value)
				}
				continue
			}
			// Positional: dec struct order is b, off, err.
			switch i {
			case 0:
				site.b = el
			case 1:
				site.off, _ = intLit(el)
			}
		}
		sites = append(sites, site)
		return true
	})
	// Bind each literal to its variable: d := dec{...} / var d = dec{...}.
	ast.Inspect(decl, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		rhs := ast.Unparen(as.Rhs[0])
		if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
			rhs = ast.Unparen(u.X)
		}
		for i := range sites {
			if sites[i].lit == rhs {
				sites[i].obj = identObj(c.pass, id)
			}
		}
		return true
	})
	return sites
}

// checkDecl runs the decode checks and signature collection over one
// declaration.
func (c *checker) checkDecl(sym string, decl *ast.FuncDecl) {
	// Buffer provenance: which frame constant and which producing call
	// each []byte variable carries.
	bufFrame := make(map[types.Object]string)
	bufFiltered := make(map[types.Object]bool)
	ast.Inspect(decl, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			frame := ""
			for _, arg := range call.Args {
				if name := c.frameConst(arg); name != "" {
					frame = name
					break
				}
			}
			filtered := false
			if fn := interproc.CalleeFunc(c.pass, call); fn != nil {
				fsym := interproc.Symbol(fn)
				if fn.Pkg() != nil && fn.Pkg().Path() == c.pass.Pkg.Path() {
					filtered = c.filters[fsym]
				} else if fn.Pkg() != nil {
					payload, ok := c.pass.DepFact(fn.Pkg().Path(), fsym)
					filtered = ok && payload == "filters"
				}
			}
			for _, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := identObj(c.pass, id)
				if obj == nil || !isByteSlice(obj.Type()) {
					continue
				}
				if frame != "" {
					bufFrame[obj] = frame
				}
				if filtered {
					bufFiltered[obj] = true
				}
			}
		case *ast.BinaryExpr:
			// p[0] == fX / p[0] != fX pins p's frame type.
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			var subject *ast.Ident
			var frame string
			for _, side := range []ast.Expr{x.X, x.Y} {
				if id := indexZeroOperand(side); id != nil {
					subject = id
				}
				if name := c.frameConst(side); name != "" {
					frame = name
				}
			}
			if subject != nil && frame != "" {
				if obj := identObj(c.pass, subject); obj != nil {
					if _, dup := bufFrame[obj]; !dup {
						bufFrame[obj] = frame
					}
				}
			}
		}
		return true
	})

	blocks := collectBlocks(decl)

	for _, site := range c.decLiterals(decl) {
		switch site.off {
		case 0, 1, 9:
		default:
			c.report(site.lit.Pos(),
				"magic header offset %d: known frame layouts start at 0 (whole payload), 1 (past type) or 9 (past type, phase, attempt)",
				site.off)
			continue
		}
		var bufObj types.Object
		if site.b != nil {
			if id, ok := ast.Unparen(site.b).(*ast.Ident); ok {
				bufObj = identObj(c.pass, id)
			}
		}
		ops := ""
		if site.obj != nil {
			ops = collectOps(c.pass, blocks, site.lit.Pos(), site.obj, decMethods)
		}
		frame := ""
		if bufObj != nil {
			frame = bufFrame[bufObj]
			if frame == "" && isParam(decl, bufObj) {
				frame = c.frameOf[sym]
			}
		}

		if site.off == 9 {
			if bufObj == nil || !bufFiltered[bufObj] {
				c.report(site.lit.Pos(),
					"decode at offset 9 trusts the (phase,attempt) header, but the payload did not come from a stale-response filter")
			}
			ops = "ww" + ops
		}
		if site.off == 1 && site.obj != nil && c.hasDeepRead(decl, site.obj) {
			if len(ops) < 2 || ops[0] != 'w' || ops[1] != 'w' {
				c.report(site.lit.Pos(),
					"decode reads deep payload fields without first consuming the phase and attempt header u32s")
			}
		}
		if frame != "" && ops != "" {
			c.decSigs = append(c.decSigs, sig{frame: frame, ops: ops, fn: sym, file: c.file, pos: site.lit.Pos()})
		}
	}

	// Encode signatures: every reset(fX) call.
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "reset" || len(call.Args) != 1 {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		recvObj := identObj(c.pass, recv)
		if recvObj == nil || !c.isCodecValue(recvObj.Type(), "enc") {
			return true
		}
		frame := c.frameConst(call.Args[0])
		if frame == "" {
			return true
		}
		ops := collectOps(c.pass, blocks, call.Pos(), recvObj, encMethods)
		c.encSigs = append(c.encSigs, sig{frame: frame, ops: ops, fn: sym, file: c.file, pos: call.Pos()})
		return true
	})
}

// hasDeepRead reports whether the declaration reads past the fixed
// header of the given dec variable (i64 or column).
func (c *checker) hasDeepRead(decl *ast.FuncDecl, obj types.Object) bool {
	deep := false
	ast.Inspect(decl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "i64" && sel.Sel.Name != "col") {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && identObj(c.pass, id) == obj {
			deep = true
		}
		return !deep
	})
	return deep
}

// callsOn reports whether the subtree contains a method call named m on
// the given object (or a pointer to it).
func (c *checker) callsOn(n ast.Node, obj types.Object, m string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != m {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && identObj(c.pass, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// compareSignatures checks encoder/encoder and encoder/decoder prefix
// agreement per frame constant, in collection (declaration) order.
func (c *checker) compareSignatures() {
	first := make(map[string]sig)
	for _, e := range c.encSigs {
		base, seen := first[e.frame]
		if !seen {
			first[e.frame] = e
			continue
		}
		if !prefixAgree(base.ops, e.ops) {
			c.reportAt(e.file, e.pos,
				"frame %s encoded with layout %q here but %q in %s: encoders disagree",
				e.frame, spellOps(e.ops), spellOps(base.ops), base.fn)
		}
	}
	for _, d := range c.decSigs {
		e, ok := first[d.frame]
		if !ok {
			continue // encoder in another package (or none): nothing to compare
		}
		if !prefixAgree(e.ops, d.ops) {
			c.reportAt(d.file, d.pos,
				"frame %s layout mismatch: decode reads %q but %s encodes %q",
				d.frame, spellOps(d.ops), e.fn, spellOps(e.ops))
		}
	}
}

// prefixAgree compares two signatures up to their common prefix,
// stopping at a variable-length column on either side.
func prefixAgree(a, b string) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] == 'c' || b[i] == 'c' {
			return true
		}
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// spellOps renders a signature for diagnostics.
func spellOps(ops string) string {
	names := map[byte]string{'b': "u8", 'w': "u32", 'q': "i64", 'c': "col"}
	parts := make([]string, len(ops))
	for i := 0; i < len(ops); i++ {
		parts[i] = names[ops[i]]
	}
	return strings.Join(parts, ",")
}

// decMethods/encMethods map codec accessor names to signature chars.
var decMethods = map[string]byte{"u8": 'b', "u32": 'w', "i32": 'w', "i64": 'q', "col": 'c'}
var encMethods = map[string]byte{"u8": 'b', "u32": 'w', "i32": 'w', "mark": 'w', "i64": 'q'}

// collectOps walks the straight-line statements following the statement
// containing pos (in whichever block holds it) and collects codec
// accessor calls on obj, stopping at the first compound statement and
// at enc.finish.
func collectOps(pass *analysis.Pass, blocks [][]ast.Stmt, pos token.Pos, obj types.Object, methods map[string]byte) string {
	for _, list := range blocks {
		for i, st := range list {
			if pos < st.Pos() || pos > st.End() {
				continue
			}
			var ops []byte
			for _, next := range list[i+1:] {
				if isCompound(next) {
					return string(ops)
				}
				done := false
				ast.Inspect(next, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					id, ok := ast.Unparen(sel.X).(*ast.Ident)
					if !ok || identObj(pass, id) != obj {
						return true
					}
					if sel.Sel.Name == "finish" {
						done = true
						return false
					}
					if op, ok := methods[sel.Sel.Name]; ok {
						ops = append(ops, op)
					}
					return true
				})
				if done {
					return string(ops)
				}
			}
			return string(ops)
		}
	}
	return ""
}

// collectBlocks gathers every statement list of the declaration
// (block statements; case/comm clause bodies stay opaque).
func collectBlocks(decl *ast.FuncDecl) [][]ast.Stmt {
	var blocks [][]ast.Stmt
	ast.Inspect(decl, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			blocks = append(blocks, b.List)
		}
		return true
	})
	return blocks
}

// isCompound reports whether control flow forks inside the statement.
func isCompound(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt,
		*ast.GoStmt, *ast.DeferStmt, *ast.LabeledStmt:
		return true
	}
	return false
}

// frameConst returns the name of a frame-type constant expression
// (an identifier like fMemReq bound to a constant), or "".
func (c *checker) frameConst(e ast.Expr) string {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := identObj(c.pass, id).(*types.Const); !ok {
		return ""
	}
	if len(id.Name) < 2 || id.Name[0] != 'f' || id.Name[1] < 'A' || id.Name[1] > 'Z' {
		return ""
	}
	return id.Name
}

// isCodecType matches a composite literal's type expression against a
// codec type name declared in this package.
func (c *checker) isCodecType(t ast.Expr, name string) bool {
	id, ok := ast.Unparen(t).(*ast.Ident)
	return ok && id.Name == name
}

// isCodecValue matches a variable's type against a codec named type
// (possibly behind a pointer).
func (c *checker) isCodecValue(t types.Type, name string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

// indexZeroOperand matches X[0] and returns X's identifier.
func indexZeroOperand(e ast.Expr) *ast.Ident {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	if v, ok := intLit(ix.Index); !ok || v != 0 {
		return nil
	}
	id, _ := ast.Unparen(ix.X).(*ast.Ident)
	return id
}

// isParam reports whether obj is one of the declaration's parameters.
func isParam(decl *ast.FuncDecl, obj types.Object) bool {
	if decl.Type.Params == nil {
		return false
	}
	return obj.Pos() >= decl.Type.Params.Pos() && obj.Pos() <= decl.Type.Params.End()
}

// isByteSlice matches []byte.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// intLit extracts a non-negative integer literal.
func intLit(e ast.Expr) (int, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.INT {
		return 0, false
	}
	v := 0
	for i := 0; i < len(bl.Value); i++ {
		ch := bl.Value[i]
		if ch < '0' || ch > '9' {
			return 0, false
		}
		v = v*10 + int(ch-'0')
	}
	return v, true
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.reportAt(c.file, pos, format, args...)
}

func (c *checker) reportAt(file *ast.File, pos token.Pos, format string, args ...any) {
	if c.pass.Allowlisted(file, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// identObj resolves an identifier through Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
