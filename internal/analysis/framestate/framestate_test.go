package framestate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framestate"
)

func TestFramestate(t *testing.T) {
	analysistest.Run(t, framestate.Analyzer, "framestate/a")
}
