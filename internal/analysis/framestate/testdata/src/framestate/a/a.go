// Package a exercises the framestate analyzer over a miniature frame
// codec shaped like the proc backend's: dec/enc types, f* frame
// constants, an await-style stale filter and a dispatch switch.
package a

import (
	"encoding/binary"
	"fmt"
)

const (
	fHello byte = 1
	fReq   byte = 2
	fRes   byte = 3
)

type enc struct{ b []byte }

func (e *enc) reset(t byte) { e.b = append(e.b[:0], 0, 0, 0, 0, t) }
func (e *enc) u8(v byte)    { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.LittleEndian.AppendUint64(e.b, uint64(v)) }
func (e *enc) finish() []byte {
	binary.LittleEndian.PutUint32(e.b[:4], uint32(len(e.b)-4))
	return e.b
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.err = fmt.Errorf("truncated")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.err = fmt.Errorf("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.err = fmt.Errorf("truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return int64(v)
}

// encodeRes is the canonical fRes encoder: type, phase, attempt, value.
func encodeRes(phase, attempt uint32, v int64) []byte {
	var e enc
	e.reset(fRes)
	e.u32(phase)
	e.u32(attempt)
	e.i64(v)
	return e.finish()
}

// await is the stale-response filter: both header u32s guarded.
func await(frames chan []byte, want byte, phase, attempt uint32) []byte {
	for p := range frames {
		if len(p) < 9 || p[0] != want {
			continue
		}
		d := dec{b: p, off: 1}
		if d.u32() != phase || d.u32() != attempt {
			continue
		}
		return p
	}
	return nil
}

func mergeGood(frames chan []byte, phase, attempt uint32) int64 {
	p := await(frames, fRes, phase, attempt)
	d := dec{b: p, off: 9}
	return d.i64()
}

func mergeUnfiltered(frames chan []byte) int64 {
	p := <-frames
	d := dec{b: p, off: 9} // want `did not come from a stale-response filter`
	return d.i64()
}

func magicOffset(p []byte) uint32 {
	d := dec{b: p, off: 5} // want `magic header offset 5`
	return d.u32()
}

func deepWithoutHeader(p []byte) int64 {
	d := dec{b: p, off: 1} // want `without first consuming the phase and attempt`
	return d.i64()
}

func decodeResWrong(frames chan []byte, phase, attempt uint32) uint32 {
	p := await(frames, fRes, phase, attempt)
	d := dec{b: p, off: 9} // want `frame fRes layout mismatch`
	return d.u32()
}

func encodeReq(phase, attempt uint32, n byte) []byte {
	var e enc
	e.reset(fReq)
	e.u32(phase)
	e.u32(attempt)
	e.u8(n)
	e.i64(42)
	return e.finish()
}

func encodeHello(rank uint32) []byte {
	var e enc
	e.reset(fHello)
	e.u8(1)
	e.u32(rank)
	return e.finish()
}

func serve(payload []byte) int64 {
	switch payload[0] {
	case fReq:
		return handleReq(payload)
	case fHello:
		return handleHello(payload)
	}
	return 0
}

// handleReq echoes the header discipline: phase and attempt first.
func handleReq(payload []byte) int64 {
	d := dec{b: payload, off: 1}
	phase := d.u32()
	attempt := d.u32()
	n := d.u8()
	v := d.i64()
	_, _, _ = phase, attempt, n
	return v
}

// handleHello reads a u32 where the encoder wrote a u8 first.
func handleHello(payload []byte) int64 {
	d := dec{b: payload, off: 1} // want `frame fHello layout mismatch`
	rank := d.u32()
	_ = rank
	return 0
}

// encodeResAgain disagrees with encodeRes about fRes's layout.
func encodeResAgain(phase uint32) []byte {
	var e enc
	e.reset(fRes) // want `encoders disagree`
	e.u32(phase)
	e.u8(9)
	return e.finish()
}

func allowlisted(frames chan []byte) int64 {
	p := <-frames
	//lint:framestate-ok fixture: frames pre-filtered by the harness feeding this channel
	d := dec{b: p, off: 9}
	return d.i64()
}
