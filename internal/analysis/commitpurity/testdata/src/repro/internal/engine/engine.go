// Package engine is a self-contained miniature of the real engine
// package (same type names, same sanctioned-writer contract) so the
// commitpurity fixture needs no cross-module imports.
package engine

// Core mirrors the shared lifecycle state.
type Core struct {
	failN int
	err   error
}

func (c *Core) Init() {
	c.failN = 0
	c.err = nil
}

func (c *Core) RunPhase() {
	c.failN++
}

func (c *Core) peek() int {
	return c.failN // clean: reads are unrestricted
}

func (c *Core) poke() {
	c.failN = 7 // want `engine\.Core\.failN written in poke, outside the commit entry points`
}

// Mem mirrors the sharded shared-memory engine; Core is embedded as in
// the real package, so promoted writes must attribute to Core.
type Mem struct {
	Core
	mem []int64
}

func (m *Mem) InitMem(n int) {
	m.mem = make([]int64, n)
}

func (m *Mem) Phase() {
	// Function literals inherit the enclosing declaration's identity:
	// the real commit pipeline dispatches through closures.
	apply := func(i int, v int64) { m.mem[i] = v }
	apply(0, 1)
}

func (m *Mem) debugSet(i int, v int64) {
	m.mem[i] = v // want `engine\.Mem\.mem written in debugSet, outside the commit entry points`
}

func (m *Mem) promotedWrite() {
	m.failN = 3 // want `engine\.Core\.failN written in promotedWrite, outside the commit entry points`
}

func (m *Mem) bump() {
	m.failN++ // want `engine\.Core\.failN written in bump, outside the commit entry points`
}

func (m *Mem) sanctioned() {
	//lint:commitpurity-ok fixture exercises the allowlist
	m.mem[0] = 2
}

type memBuf struct {
	vals    []int64
	touched map[int]bool
}

func (b *memBuf) ensure(n int) {
	if b.touched == nil {
		b.touched = make(map[int]bool, n)
	}
}

func (b *memBuf) commit() {
	b.vals = b.vals[:0]
}

func (b *memBuf) sneak() {
	b.vals = append(b.vals, 9) // want `engine\.memBuf\.vals written in sneak, outside the commit entry points`
	(b.touched)[1] = true      // want `engine\.memBuf\.touched written in sneak, outside the commit entry points`
}

// MemCtx mirrors the per-processor request recorder with its
// struct-of-arrays columns; the batch recorders (ReadBlock, WriteBatch,
// Submit, …) are sanctioned writers exactly like their per-cell twins.
type MemCtx struct {
	reads      int64
	readAddrs  []int32
	writeAddrs []int32
	writeVals  []int64
}

func (c *MemCtx) Read(a int32) {
	c.reads++
	c.readAddrs = append(c.readAddrs, a)
}

func (c *MemCtx) ReadBlock(a int32, k int) {
	c.reads += int64(k)
	for i := 0; i < k; i++ {
		c.readAddrs = append(c.readAddrs, a+int32(i))
	}
}

func (c *MemCtx) WriteBatch(addrs []int32, vals []int64) {
	c.writeAddrs = append(c.writeAddrs, addrs...)
	c.writeVals = append(c.writeVals, vals...)
}

func (c *MemCtx) Submit(reads, writes []int32, vals []int64) {
	c.reads += int64(len(reads))
	c.readAddrs = append(c.readAddrs, reads...)
	c.writeAddrs = append(c.writeAddrs, writes...)
	c.writeVals = append(c.writeVals, vals...)
}

func (c *MemCtx) bulkPoke(addrs []int32) {
	c.readAddrs = append(c.readAddrs, addrs...) // want `engine\.MemCtx\.readAddrs written in bulkPoke, outside the commit entry points`
}

// BitMem and BitCtx mirror the bit-packed engine: word-level storage,
// packed write column, the same writer contract.
type BitMem struct {
	Core
	words []uint64
	cb    bitBuf
}

func (m *BitMem) InitBits(nwords int) {
	m.words = make([]uint64, nwords)
}

func (m *BitMem) SetBit(addr int) {
	m.words[addr>>6] |= 1 << (uint(addr) & 63)
}

func (m *BitMem) finish(addr int) {
	// finish both applies packed writes and drains the scratch: clean.
	m.words[addr>>6] &^= 1 << (uint(addr) & 63)
	m.cb.wPacked = m.cb.wPacked[:0]
}

func (m *BitMem) hotPatch(addr int) {
	m.words[addr>>6] = 0            // want `engine\.BitMem\.words written in hotPatch, outside the commit entry points`
	m.cb.wPacked = m.cb.wPacked[:0] // want `engine\.bitBuf\.wPacked written in hotPatch, outside the commit entry points`
}

type BitCtx struct {
	wrs    int64
	writes []int32
}

func (c *BitCtx) Write(addr int32, bit bool) {
	c.wrs++
	p := addr << 1
	if bit {
		p |= 1
	}
	c.writes = append(c.writes, p)
}

func (c *BitCtx) replay(ws []int32) {
	c.writes = ws // want `engine\.BitCtx\.writes written in replay, outside the commit entry points`
}

type bitBuf struct {
	wPacked []int32
}

func (b *bitBuf) ensure(n int) {
	if cap(b.wPacked) < n {
		b.wPacked = make([]int32, 0, n)
	}
}

// Sends mirrors the routing-side stager; StageBatch is the sanctioned
// columnar twin of Stage.
type Sends struct {
	dsts []int32
	msgs []int64
}

func (s *Sends) Stage(d int32, msg int64) {
	s.dsts = append(s.dsts, d)
	s.msgs = append(s.msgs, msg)
}

func (s *Sends) StageBatch(dsts []int32, msgs []int64) {
	s.dsts = append(s.dsts, dsts...)
	s.msgs = append(s.msgs, msgs...)
}

func (s *Sends) inject(d int32, msg int64) {
	s.dsts = append(s.dsts, d)   // want `engine\.Sends\.dsts written in inject, outside the commit entry points`
	s.msgs = append(s.msgs, msg) // want `engine\.Sends\.msgs written in inject, outside the commit entry points`
}

// helper is not a protected type: its fields may be written anywhere.
type helper struct {
	n int
}

func (h *helper) anywhere() {
	h.n++
	h.n = 12
}
