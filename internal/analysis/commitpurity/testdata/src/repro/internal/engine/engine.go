// Package engine is a self-contained miniature of the real engine
// package (same type names, same sanctioned-writer contract) so the
// commitpurity fixture needs no cross-module imports.
package engine

// Core mirrors the shared lifecycle state.
type Core struct {
	failN int
	err   error
}

func (c *Core) Init() {
	c.failN = 0
	c.err = nil
}

func (c *Core) RunPhase() {
	c.failN++
}

func (c *Core) peek() int {
	return c.failN // clean: reads are unrestricted
}

func (c *Core) poke() {
	c.failN = 7 // want `engine\.Core\.failN written in poke, outside the commit entry points`
}

// Mem mirrors the sharded shared-memory engine; Core is embedded as in
// the real package, so promoted writes must attribute to Core.
type Mem struct {
	Core
	mem []int64
}

func (m *Mem) InitMem(n int) {
	m.mem = make([]int64, n)
}

func (m *Mem) Phase() {
	// Function literals inherit the enclosing declaration's identity:
	// the real commit pipeline dispatches through closures.
	apply := func(i int, v int64) { m.mem[i] = v }
	apply(0, 1)
}

func (m *Mem) debugSet(i int, v int64) {
	m.mem[i] = v // want `engine\.Mem\.mem written in debugSet, outside the commit entry points`
}

func (m *Mem) promotedWrite() {
	m.failN = 3 // want `engine\.Core\.failN written in promotedWrite, outside the commit entry points`
}

func (m *Mem) bump() {
	m.failN++ // want `engine\.Core\.failN written in bump, outside the commit entry points`
}

func (m *Mem) sanctioned() {
	//lint:commitpurity-ok fixture exercises the allowlist
	m.mem[0] = 2
}

type memBuf struct {
	vals    []int64
	touched map[int]bool
}

func (b *memBuf) ensure(n int) {
	if b.touched == nil {
		b.touched = make(map[int]bool, n)
	}
}

func (b *memBuf) commit() {
	b.vals = b.vals[:0]
}

func (b *memBuf) sneak() {
	b.vals = append(b.vals, 9) // want `engine\.memBuf\.vals written in sneak, outside the commit entry points`
	(b.touched)[1] = true      // want `engine\.memBuf\.touched written in sneak, outside the commit entry points`
}

// helper is not a protected type: its fields may be written anywhere.
type helper struct {
	n int
}

func (h *helper) anywhere() {
	h.n++
	h.n = 12
}
