// Package commitpurity guards the engine's sharded-merge invariant: the
// internal state of the commit engines (engine.Mem, engine.Route, their
// scratch buffers and per-processor contexts) may be written only from
// the two-pass commit entry points and the request-recording methods.
//
// The determinism proof of the parallel phase commit (DESIGN.md §4) rests
// on a closed-world argument: request buckets are filled in ascending
// processor order, replayed in ascending chunk order, and nothing else
// touches the engine state between the barrier and the apply. A write
// from a new helper — a debug poke into Mem.mem, an eager inbox tweak, an
// out-of-band scratch reset — re-opens that world silently; the runtime
// determinism suite only notices if a sampled schedule happens to expose
// it. This analyzer closes it at compile time: any assignment (or ++/--)
// whose target is a field of a protected engine type is reported unless
// the enclosing function is one of that type's sanctioned writers.
//
// The analyzer runs only on the engine package itself (unexported fields
// make cross-package writes impossible). Extending a protected type with
// a new sanctioned writer means editing the allowed-writers table here —
// a deliberate speed bump that turns "mutate the engine" into a reviewed
// contract change. One-off exceptions take //lint:commitpurity-ok <reason>.
package commitpurity

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer guards engine commit state against out-of-contract writes.
var Analyzer = &analysis.Analyzer{
	Name: "commitpurity",
	Doc:  "flag writes to engine.Mem/engine.Route internal state outside the commit entry points",
	AppliesTo: func(pkgPath string) bool {
		return strings.HasSuffix(pkgPath, "internal/engine")
	},
	Run: run,
}

// allowedWriters maps each protected engine type to the functions that
// may write its fields: the lifecycle entry points (Init*, Phase,
// Superstep, RunPhase), the two-pass commit pipeline (commit, finish,
// ensure), the per-processor request recorders (MemCtx/BitCtx and Sends
// methods, per-cell and batch alike — a batch recorder appends to the
// same struct-of-arrays columns as its per-cell twin, so it is part of
// the same contract), and the fault-injection/recovery machinery (InjectFaults
// attachment, the barrier-side consult/accounting, and the
// checkpoint/rollback/corruption path — all of which run on the
// coordinating goroutine, see fault.go). Everything else must go through
// these.
var allowedWriters = map[string]map[string]bool{
	"Core": set("Init", "RunPhase", "RecordErr", "AddObserver", "observePhaseStart",
		"InjectFaults", "consultInjector", "noteCommitted", "chargeRecovery",
		"ckCore", "rewindCore", "retriesExhausted"),
	"Mem":    set("InitMem", "Grow", "Phase", "Checkpoint", "Rollback", "corruptCell", "commit"),
	"memBuf": set("ensure", "commit", "finish"),
	"MemCtx": set("Read", "Write", "Op", "failf", "reset",
		"ReadBlock", "ReadBatch", "WriteBlock", "WriteFill", "WriteBatch", "Submit"),
	"BitMem": set("InitBits", "Grow", "SetBit", "Phase", "Checkpoint", "Rollback",
		"corruptCell", "finish"),
	"bitBuf":   set("ensure", "commit", "finish"),
	"BitCtx":   set("Read", "ReadWord", "Write", "Op", "failf", "reset"),
	"Route":    set("InitRoute", "Superstep", "commit", "Checkpoint", "Rollback", "corruptInbox"),
	"routeBuf": set("ensure", "commit"),
	"Sends":    set("AddWork", "Stage", "Fail", "reset", "StageBatch"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, f, fd)
		}
	}
	return nil
}

// checkFunc scans one function body (function literals inherit the
// enclosing declaration's identity: the commit pipeline dispatches its
// passes through sched.Blocks closures).
func checkFunc(pass *analysis.Pass, f *ast.File, fd *ast.FuncDecl) {
	fnName := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkWrite(pass, f, fnName, lhs, st.TokPos)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, f, fnName, st.X, st.TokPos)
		}
		return true
	})
}

// checkWrite reports lhs if it writes a protected field from outside its
// type's sanctioned writer set.
func checkWrite(pass *analysis.Pass, f *ast.File, fnName string, lhs ast.Expr, tok token.Pos) {
	sel := rootSelector(lhs)
	if sel == nil {
		return
	}
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return
	}
	owner, field := fieldOwner(selection.Recv(), selection.Index())
	writers, protected := allowedWriters[owner]
	if !protected || writers[fnName] {
		return
	}
	if pass.Allowlisted(f, tok) {
		return
	}
	pass.Reportf(sel.Pos(),
		"engine.%s.%s written in %s, outside the commit entry points (%s); route the mutation through them or annotate //lint:commitpurity-ok <reason>",
		owner, field, fnName, writerList(writers))
}

// rootSelector unwraps indexing, dereference and parenthesisation around
// an assignment target and returns the field selector being written
// (m.mem[i] = v and b.touched[s] = t both write through the field).
func rootSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// fieldOwner resolves which named struct type declares the field a
// selection writes, walking the embedding path so a write promoted
// through Mem's embedded Core is attributed to Core.
func fieldOwner(t types.Type, index []int) (owner, field string) {
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		name := ""
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		fv := st.Field(i)
		owner, field = name, fv.Name()
		t = fv.Type()
	}
	return owner, field
}

// writerList renders an allowed-writer set deterministically for the
// diagnostic message.
func writerList(writers map[string]bool) string {
	names := make([]string, 0, len(writers))
	for n := range writers { //lint:maporder-ok names are sorted before use
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}
