package commitpurity_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/commitpurity"
)

func TestCommitPurity(t *testing.T) {
	analysistest.Run(t, commitpurity.Analyzer, "repro/internal/engine")
}

func TestAppliesOnlyToEngine(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/engine":     true,
		"other/internal/engine":     true,
		"repro/internal/compaction": false,
		"repro/internal/engineered": false,
	} { //lint:maporder-ok test assertions are independent per entry
		if got := commitpurity.Analyzer.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
}
