// Package globalrand flags uses of the process-global math/rand source
// and stray RNG construction in non-test code.
//
// Model-level randomness (dart throws, RANDOMSET draws, workload
// generation) must come from a seeded *rand.Rand threaded in from the
// configuration boundary, so that a seed in a report or golden file
// reproduces the run bit-for-bit. Two patterns break that:
//
//   - Top-level math/rand functions (rand.Intn, rand.Float64, rand.Perm,
//     …) draw from the process-global source, which is seeded randomly at
//     startup and shared across goroutines — every call site is
//     irreproducible. These are flagged everywhere.
//   - rand.New / rand.NewSource in algorithm or simulator packages mints
//     a private generator whose seed is invisible to the experiment
//     configuration. Construction is allowed only at the RNG boundary —
//     the facade (package repro), the workload generators, the experiment
//     engine (internal/core) and the cmds, which all derive seeds from
//     explicit configuration — and flagged elsewhere.
//
// Suppress a deliberate exception with //lint:globalrand-ok <reason>.
package globalrand

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags global math/rand use and out-of-boundary RNG construction.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "flag the global math/rand source and RNG construction outside the config boundary",
	Run:  run,
}

// constructors are the math/rand (and v2) package-level functions that
// build generators rather than draw from the global source.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// constructionBoundary reports whether pkgPath may construct RNGs: the
// packages that turn explicit config seeds into injected *rand.Rand
// values. internal/fault is on the boundary because a fault.Plan *is* a
// seed turned into a generator (the seed is the identity of the fault
// schedule and appears in every chaos report); internal/chaos derives
// per-scenario plans from explicit sweep seeds the same way, and
// internal/sweep turns each cell's explicit seed into the dart-throwing
// RNG of its lac-dart runner.
func constructionBoundary(pkgPath string) bool {
	switch pkgPath {
	case "repro", "repro/internal/workload", "repro/internal/core",
		"repro/internal/fault", "repro/internal/chaos",
		"repro/internal/sweep":
		return true
	}
	return strings.HasPrefix(pkgPath, "repro/cmd/")
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	allowConstruct := constructionBoundary(pass.Path)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := randFunc(pass.TypesInfo, sel)
			if fn == nil {
				return true
			}
			name := fn.Name()
			if constructors[name] {
				if allowConstruct || pass.Allowlisted(f, sel.Pos()) {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s constructs a generator outside the RNG boundary; accept an injected seeded *rand.Rand (or annotate //lint:globalrand-ok <reason>)",
					name)
				return true
			}
			if pass.Allowlisted(f, sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the irreproducible process-global source; use an injected seeded *rand.Rand (or annotate //lint:globalrand-ok <reason>)",
				name)
			return true
		})
	}
	return nil
}

// randFunc returns the package-level math/rand (or math/rand/v2) function
// a selector refers to, or nil. Methods on *rand.Rand (an injected
// generator) are the approved pattern and return nil here.
func randFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil // method on an injected generator
	}
	return fn
}
