package globalrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/globalrand"
)

func TestOutsideBoundary(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "a")
}

func TestConstructionBoundary(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "repro/internal/workload")
}
