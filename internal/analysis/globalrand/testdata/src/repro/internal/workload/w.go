// Package workload sits on the RNG construction boundary: rand.New with
// an explicit seed is the approved pattern here, but drawing from the
// process-global source is still flagged.
package workload

import "math/rand"

// NewRand is the boundary pattern: explicit seed in, generator out.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // clean: construction boundary
}

func sloppy() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the irreproducible process-global source`
}
