// Package a is outside the RNG construction boundary: both global-source
// draws and generator construction are flagged.
package a

import "math/rand"

func draw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the irreproducible process-global source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the irreproducible process-global source`
}

func mk(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `rand\.New constructs a generator outside the RNG boundary` `rand\.NewSource constructs a generator outside the RNG boundary`
}

func injected(r *rand.Rand) float64 {
	return r.Float64() // clean: method on an injected generator
}

func allowlisted(seed int64) *rand.Rand {
	//lint:globalrand-ok fixture exercises a sanctioned local generator
	return rand.New(rand.NewSource(seed))
}
