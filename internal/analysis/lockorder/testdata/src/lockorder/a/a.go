// Package a exercises the lockorder analyzer: no blocking operation
// while a mutex may be held, and no acquisition cycles.
package a

import (
	"sync"
	"time"
)

var (
	mu sync.Mutex
	ch = make(chan int)
)

func recvWhileHeld() {
	mu.Lock()
	<-ch // want `channel receive while holding mu@`
	mu.Unlock()
}

func recvAfterUnlock() {
	mu.Lock()
	mu.Unlock()
	<-ch
}

func sendUnderDeferredUnlock() {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want `channel send while holding mu@`
}

func sleepWhileHeld() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want `blocking call time.Sleep while holding mu@`
}

func waitWhileHeld(wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Wait() // want `blocking call sync.WaitGroup.Wait while holding mu@`
}

func pollWhileHeld(done chan struct{}) bool {
	mu.Lock()
	defer mu.Unlock()
	select { // non-blocking: has a default clause
	case <-done:
		return true
	default:
		return false
	}
}

func selectWhileHeld(done chan struct{}) {
	mu.Lock()
	defer mu.Unlock()
	select { // want `blocking select while holding mu@`
	case <-done:
	case v := <-ch:
		_ = v
	}
}

// killOnBranch releases before the receive on every path that receives.
func killOnBranch(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		<-ch
		return
	}
	mu.Unlock()
}

// helper blocks; callers holding a lock inherit the finding via the
// "blocks:channel receive" summary.
func helper() int {
	return <-ch
}

func callsBlockerWhileHeld() {
	mu.Lock()
	defer mu.Unlock()
	_ = helper() // want `call to helper may block \(channel receive\) while holding mu@`
}

func spawnWhileHeld() {
	mu.Lock()
	go helper() // the spawned goroutine does not block this critical section
	mu.Unlock()
}

func closureBlocksWhileHeld() func() {
	return func() {
		mu.Lock()
		defer mu.Unlock()
		ch <- 2 // want `channel send while holding mu@`
	}
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) recvHeld() {
	b.mu.Lock()
	defer b.mu.Unlock()
	<-ch // want `channel receive while holding box.mu`
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want `lock acquisition cycle: muA@.* -> muB@.* -> muA@`
	muB.Unlock()
}

func lockBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	muA.Unlock()
}

var muR sync.Mutex

func lockTwice() {
	muR.Lock()
	muR.Lock() // want `recursive acquisition of muR@`
	muR.Unlock()
	muR.Unlock()
}

func allowlisted() {
	mu.Lock()
	defer mu.Unlock()
	//lint:lockorder-ok fixture: the send has a dedicated drainer, bounded wait
	ch <- 3
}
