// Package lockorder checks the lock discipline of the concurrency seam:
// mutexes must be acquired in a consistent global order, and no code may
// perform a potentially unbounded blocking operation while holding one.
// The distributed backend holds its coordinator mutex for microseconds at
// a time by design (DESIGN.md §4); a channel receive or a socket write
// under that mutex turns a slow worker into a stalled coordinator, and
// an acquisition cycle turns two slow workers into a deadlock — neither
// is observable by -race, which only proves data-race freedom on the
// interleavings that actually ran.
//
// Two invariants, both interprocedural over the vetx fact channel:
//
//   - lock order: acquiring lock B while holding lock A adds the edge
//     A -> B to a package-wide acquisition graph (callee acquisitions
//     count, via "acquires:<lock>" fact summaries). A cycle in the graph
//     — including the self-edge of a recursive acquisition — is
//     reported once, at the acquisition site that closed it.
//   - no blocking while held: a channel send or receive, a select
//     without a default clause, a known-blocking standard-library call
//     (net.Conn/Listener I/O, io.Reader/Writer, exec.Cmd.Wait,
//     WaitGroup.Wait, time.Sleep), or a call to a function with a
//     "blocks:<op>" fact summary, executed while any mutex may be held,
//     is reported at the operation.
//
// Lock identity is structural: a mutex field is "Owner.field" (receiver
// base type name, so every instance of a struct shares one lock node —
// the order invariant is per-class, not per-object), a mutex variable
// is "name@file:line" of its declaration. Held-ness is a may-analysis
// over the CFG: gen at Lock/RLock, kill at a direct Unlock/RUnlock;
// a *deferred* unlock releases only on the exit edge (cfg.DeferUnlocks),
// so the lock stays held for the rest of the body — which is exactly
// the window the blocking check must cover. Read locks share the write
// lock's identity: an RLock cycle against a writer still deadlocks.
//
// Function literals are analyzed as standalone bodies (a closure
// capturing the enclosing function's mutex still resolves to the same
// lock key); go statements and defer statements are not descended into
// at their definition site — the spawned or deferred body does not
// block the current critical section.
//
// Facts: "acquires:<lock>" and "blocks:<op>" items, comma-joined in
// declaration order, propagated transitively with interproc.PropagateSets.
//
// Suppression: //lint:lockorder-ok <reason>.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/interproc"
)

// Analyzer enforces acquisition ordering and no-blocking-while-held.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "flag mutex acquisition cycles and blocking operations performed while a mutex is held",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo mirrors goleak's scope: the packages that hold locks as part
// of the machine, plus analyzer fixtures.
func appliesTo(pkgPath string) bool {
	for _, seam := range []string{
		"internal/engine",
		"internal/backend",
		"internal/chaos",
		"internal/sched",
	} {
		if strings.Contains(pkgPath, seam) {
			return true
		}
	}
	return strings.HasPrefix(pkgPath, "lockorder")
}

// blockingCalls maps "pkg:Sym" of known-blocking standard-library calls
// to the operation name used in diagnostics. Mutex Lock itself is
// excluded — lock-on-lock is the ordering invariant's domain, not the
// blocking check's.
var blockingCalls = map[string]string{
	"net:Conn.Read":       "net.Conn.Read",
	"net:Conn.Write":      "net.Conn.Write",
	"net:Listener.Accept": "net.Listener.Accept",
	"io:Reader.Read":      "io.Reader.Read",
	"io:Writer.Write":     "io.Writer.Write",
	"io:ReadFull":         "io.ReadFull",
	"os/exec:Cmd.Wait":    "exec.Cmd.Wait",
	"os/exec:Cmd.Run":     "exec.Cmd.Run",
	"os/exec:Cmd.Output":  "exec.Cmd.Output",
	"sync:WaitGroup.Wait": "sync.WaitGroup.Wait",
	"time:Sleep":          "time.Sleep",
}

// lockEdge is one observed may-hold-A-acquire-B event.
type lockEdge struct {
	from, to string
	file     *ast.File
	pos      token.Pos
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	c := &checker{
		pass:        pass,
		graph:       g,
		reportedSel: make(map[token.Pos]bool),
	}

	// Pass 1: local summaries — which locks each function acquires and
	// which blocking operations it performs, literals included (calls
	// inside literals are attributed to the enclosing declaration, the
	// same convention interproc uses for its call edges).
	local := make(map[string]map[string]bool)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		set := c.localSummary(info.Decl.Body)
		if len(set) > 0 {
			local[sym] = set
		}
	}
	c.summaries = g.PropagateSets(local, func(callee interproc.Callee) []string {
		payload, ok := pass.DepFact(callee.PkgPath, callee.Sym)
		if !ok {
			return nil
		}
		return interproc.DecodePayload(payload)
	})

	// Pass 2: held-set dataflow over each body (declared functions and
	// each function literal standalone), reporting blocking-while-held
	// and collecting acquisition edges.
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		c.file = info.File
		c.checkBody(sym, info.Decl.Body)
		cfg.Inspect(info.Decl.Body, true, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody(sym+".func", lit.Body)
			}
			return true
		})
	}

	// The acquisition graph is package-global: report each cyclic
	// strongly-connected component once, at its earliest edge.
	c.reportCycles()

	// Export summaries for importers, declaration order.
	for _, sym := range g.Order {
		if pass.InTestFile(g.Funcs[sym].Decl.Pos()) {
			continue
		}
		if set := c.summaries[sym]; len(set) > 0 {
			pass.ExportFact(sym, interproc.JoinPayload(interproc.Members(set)))
		}
	}
	return nil
}

// checker carries the per-package analysis state.
type checker struct {
	pass      *analysis.Pass
	graph     *interproc.Graph
	summaries map[string]map[string]bool
	file      *ast.File
	edges     []lockEdge
	// reportedSel dedupes blocking-select diagnostics: every comm clause
	// of one select replays as a separate CFG node.
	reportedSel map[token.Pos]bool
}

// lockState is the may-held set: lock key -> possibly held here.
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s { //lint:maporder-ok copying into a map; iteration order invisible
		c[k] = v
	}
	return c
}

// union merges other into s, reporting whether s grew.
func (s lockState) union(other lockState) bool {
	grew := false
	for k := range other { //lint:maporder-ok merging into a map; iteration order invisible
		if !s[k] {
			s[k] = true
			grew = true
		}
	}
	return grew
}

// held renders the sorted held set for diagnostics.
func (s lockState) held() string {
	return strings.Join(interproc.Members(map[string]bool(s)), ", ")
}

// checkBody runs the held-set fixpoint over one body and replays it to
// report blocking operations and collect acquisition edges.
//
// cfg.Forward cannot be used here: it is a sticky union-join with no
// kills, and Unlock is a kill. The fixpoint below is still a monotone
// union over block IN-states — apply is (in \ kills) ∪ gens per node,
// monotone in its input — so it terminates on loops the same way.
func (c *checker) checkBody(name string, body *ast.BlockStmt) {
	g := cfg.New(name, body)
	selComm := collectSelectComms(body)

	in := make(map[*cfg.Block]lockState, len(g.Blocks))
	out := make(map[*cfg.Block]lockState, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = make(lockState)
		out[b] = make(lockState)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				if in[s].union(out[b]) {
					changed = true
				}
			}
			st := in[b].clone()
			for _, n := range b.Nodes {
				c.walkNode(n, st, selComm, false)
			}
			// union keeps out monotone even though kills shrink st on a
			// given visit — once a lock has leaked into out it stays,
			// which is the sound direction for a may-analysis.
			if out[b].union(st) {
				changed = true
			}
		}
	}

	for _, b := range g.Blocks {
		st := in[b].clone()
		for _, n := range b.Nodes {
			c.walkNode(n, st, selComm, true)
		}
	}
}

// selectComm describes one comm statement of a select: where the select
// starts (the report anchor) and whether a default clause makes the
// communication non-blocking.
type selectComm struct {
	selPos     token.Pos
	hasDefault bool
}

// collectSelectComms maps every select comm statement's position to its
// select's shape, so the replay can tell a non-blocking poll from a
// blocking select and report the latter once, at the select keyword.
func collectSelectComms(body *ast.BlockStmt) map[token.Pos]selectComm {
	m := make(map[token.Pos]selectComm)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cs.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, cs := range sel.Body.List {
			if comm := cs.(*ast.CommClause).Comm; comm != nil {
				m[comm.Pos()] = selectComm{selPos: sel.Pos(), hasDefault: hasDefault}
			}
		}
		return true
	})
	return m
}

// walkNode applies (and, in check mode, reports against) one CFG node.
// Function literals, go statements and defer statements are not
// descended into: none of them run as part of this critical section
// (defers run at the exit edge, where a deferred Unlock releases — the
// reason the held set carries deferred locks to every node in between).
func (c *checker) walkNode(n ast.Node, st lockState, selComm map[token.Pos]selectComm, check bool) {
	if sc, ok := selComm[n.Pos()]; ok {
		// Each comm clause replays as its own CFG node; report the
		// select once, at the keyword.
		if check && !sc.hasDefault && len(st) > 0 && !c.reportedSel[sc.selPos] {
			c.reportedSel[sc.selPos] = true
			c.report(sc.selPos, "blocking select while holding %s", st.held())
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			if check && len(st) > 0 {
				c.report(x.Pos(), "channel send while holding %s", st.held())
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && check && len(st) > 0 {
				c.report(x.Pos(), "channel receive while holding %s", st.held())
			}
		case *ast.CallExpr:
			c.call(x, st, check)
		}
		return true
	})
}

// call applies one call's effect on the held set and, in check mode,
// reports blocking callees and records acquisition edges.
func (c *checker) call(call *ast.CallExpr, st lockState, check bool) {
	if key, op := c.lockOp(call); key != "" {
		switch op {
		case "Lock", "RLock":
			if check {
				for _, held := range interproc.Members(map[string]bool(st)) {
					c.edges = append(c.edges, lockEdge{from: held, to: key, file: c.file, pos: call.Pos()})
				}
			}
			st[key] = true
		case "Unlock", "RUnlock":
			delete(st, key)
		}
		return
	}
	if !check || len(st) == 0 {
		return
	}
	fn := interproc.CalleeFunc(c.pass, call)
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sym := interproc.Symbol(fn)
	if op, ok := blockingCalls[pkgPath+":"+sym]; ok {
		c.report(call.Pos(), "blocking call %s while holding %s", op, st.held())
		return
	}
	var items []string
	if pkgPath == c.pass.Pkg.Path() {
		items = interproc.Members(c.summaries[sym])
	} else if payload, ok := c.pass.DepFact(pkgPath, sym); ok {
		items = interproc.DecodePayload(payload)
	}
	for _, it := range items {
		if op, ok := strings.CutPrefix(it, "blocks:"); ok {
			c.report(call.Pos(), "call to %s may block (%s) while holding %s", sym, op, st.held())
			break
		}
	}
	for _, it := range items {
		if key, ok := strings.CutPrefix(it, "acquires:"); ok {
			for _, held := range interproc.Members(map[string]bool(st)) {
				c.edges = append(c.edges, lockEdge{from: held, to: key, file: c.file, pos: call.Pos()})
			}
		}
	}
}

// localSummary scans one body (literals included, matching interproc's
// call attribution) for the function's own acquisitions and blocking
// operations.
func (c *checker) localSummary(body *ast.BlockStmt) map[string]bool {
	set := make(map[string]bool)
	nonblock := nonblockingOps(body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			// Neither blocks the caller at this site.
			return false
		case *ast.SendStmt:
			if !nonblock[x.Pos()] {
				set["blocks:channel send"] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !nonblock[x.Pos()] {
				set["blocks:channel receive"] = true
			}
		case *ast.CallExpr:
			if key, op := c.lockOp(x); key != "" {
				if op == "Lock" || op == "RLock" {
					set["acquires:"+key] = true
				}
				return true
			}
			fn := interproc.CalleeFunc(c.pass, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if op, ok := blockingCalls[fn.Pkg().Path()+":"+interproc.Symbol(fn)]; ok {
				set["blocks:"+op] = true
			}
		}
		return true
	})
	return set
}

// nonblockingOps marks the positions of every send and receive inside a
// comm clause of a select that has a default clause — those are polls,
// not blocking operations.
func nonblockingOps(body *ast.BlockStmt) map[token.Pos]bool {
	m := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cs.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			comm := cs.(*ast.CommClause).Comm
			if comm == nil {
				continue
			}
			ast.Inspect(comm, func(op ast.Node) bool {
				switch op := op.(type) {
				case *ast.SendStmt:
					m[op.Pos()] = true
				case *ast.UnaryExpr:
					if op.Op == token.ARROW {
						m[op.Pos()] = true
					}
				}
				return true
			})
		}
		return true
	})
	return m
}

// lockOp recognizes a sync mutex method call and returns the lock's
// identity key and the method name ("" when the call is not a mutex op
// or the lock expression cannot be tracked).
func (c *checker) lockOp(call *ast.CallExpr) (key, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	selc := c.pass.TypesInfo.Selections[sel]
	if selc == nil {
		return "", ""
	}
	fn, ok := selc.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	// The last index entry is the method; any prefix is the field path of
	// an embedded mutex.
	if path := selc.Index()[:len(selc.Index())-1]; len(path) > 0 {
		owner, field := fieldOwner(selc.Recv(), path)
		if owner == "" {
			return "", ""
		}
		return owner + "." + field, sel.Sel.Name
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj := identObj(c.pass, x)
		if obj == nil {
			return "", ""
		}
		p := c.pass.Fset.Position(obj.Pos())
		return fmt.Sprintf("%s@%s:%d", obj.Name(), shortName(p.Filename), p.Line), sel.Sel.Name
	case *ast.SelectorExpr:
		fs := c.pass.TypesInfo.Selections[x]
		if fs == nil {
			return "", ""
		}
		owner, field := fieldOwner(fs.Recv(), fs.Index())
		if owner == "" {
			return "", ""
		}
		return owner + "." + field, sel.Sel.Name
	}
	return "", ""
}

// reportCycles finds cyclic strongly-connected components of the
// acquisition graph and reports each once, at its earliest edge.
func (c *checker) reportCycles() {
	adj := make(map[string]map[string]bool)
	for _, e := range c.edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	reach := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range interproc.Members(adj[n]) {
				if s == to {
					return true
				}
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}

	sort.SliceStable(c.edges, func(i, j int) bool { return c.edges[i].pos < c.edges[j].pos })
	reported := make(map[string]bool)
	for _, e := range c.edges {
		if !reach(e.to, e.from) && e.from != e.to {
			continue // edge not on a cycle
		}
		// Members of the SCC containing this edge.
		members := map[string]bool{e.from: true, e.to: true}
		for node := range adj { //lint:maporder-ok membership test only; result sorted below
			if reach(e.from, node) && reach(node, e.from) {
				members[node] = true
			}
		}
		sorted := interproc.Members(members)
		key := interproc.JoinPayload(sorted)
		if reported[key] {
			continue
		}
		reported[key] = true
		if e.from == e.to {
			c.reportAt(e.file, e.pos, "recursive acquisition of %s", e.from)
			continue
		}
		c.reportAt(e.file, e.pos, "lock acquisition cycle: %s -> %s", strings.Join(sorted, " -> "), sorted[0])
	}
}

// report anchors a diagnostic at pos in the current file, honoring the
// allowlist.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.reportAt(c.file, pos, format, args...)
}

func (c *checker) reportAt(file *ast.File, pos token.Pos, format string, args ...any) {
	if c.pass.Allowlisted(file, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// fieldOwner resolves a field index path to (owner type name, field
// name) — same structural identity rule as bitaddr's packed-field keys.
func fieldOwner(t types.Type, index []int) (owner, field string) {
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		name := ""
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		fv := st.Field(i)
		owner, field = name, fv.Name()
		t = fv.Type()
	}
	return owner, field
}

// identObj resolves an identifier through Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

// shortName trims a path to its base name for compact lock keys.
func shortName(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
