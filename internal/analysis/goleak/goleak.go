// Package goleak checks the goroutine-lifecycle contract of the
// concurrency seam (the engine, the backends, the chaos harness and the
// scheduler): every goroutine launched there must have a statically
// provable exit path, because the sweep and chaos harnesses run tens of
// thousands of scenarios per process and a goroutine leaked per run
// turns into an unbounded pile the race detector never flags.
//
// The proof obligation is on the spawned body's control-flow graph:
// every reachable block must be able to reach the function exit
// (Graph.ReachesExit). That one criterion covers the three exit-path
// classes the transport actually uses:
//
//   - a terminating body: no cycles at all, as in sched.Blocks's
//     WaitGroup-joined workers or the coordinator's handshake closure —
//     the join edge guarantees the spawner outlives them, and the body's
//     CFG falls through to the exit;
//   - an exit-guarded loop: a `select` clause receiving from a
//     done/dead/stop channel or a `ctx.Done()`/`closed.Load()` check
//     that returns, and connection-close unblocks — a read loop whose
//     `err != nil` branch returns exits when Close tears the socket
//     down. All of these are edges out of the cycle into a block that
//     reaches the exit;
//   - a callee summary: `go f()` where f's own body carries the proof.
//     Same-package targets are checked directly; cross-package targets
//     resolve through "noexit"/"spawns" facts on the vetx channel, and
//     absence of a fact is the conservative default (stdlib callees like
//     exec.Cmd.Wait terminate).
//
// A body that fails the criterion — `for { v := <-ch; use(v) }` with no
// escape, `select {}`, a spin loop with no break — is reported at the go
// statement. Spawn sites whose target cannot be resolved statically
// (function values, interface methods) are skipped: the analyzer
// under-approximates, consistent with the suite's precision-first
// stance (DESIGN.md §5).
//
// Facts: "noexit <pos>" marks a function whose body, run as a
// goroutine, can never return; "spawns <pos>" marks a function that
// (transitively) launches such a goroutine, so cross-package callers
// inherit the finding at their call site.
//
// Suppression: //lint:goleak-ok <reason>.
package goleak

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/interproc"
)

// Analyzer proves an exit path for every spawned goroutine.
var Analyzer = &analysis.Analyzer{
	Name:      "goleak",
	Doc:       "flag goroutines launched in engine/backend/chaos code without a statically provable exit path",
	AppliesTo: appliesTo,
	Run:       run,
}

// appliesTo scopes the check to the concurrency seam: the packages that
// spawn goroutines as part of the machine, plus analyzer fixtures. The
// rest of the tree is sequential by design (the determinism contract
// forbids stray concurrency), so running there would only cost cache
// keys.
func appliesTo(pkgPath string) bool {
	for _, seam := range []string{
		"internal/engine",
		"internal/backend",
		"internal/chaos",
		"internal/sched",
	} {
		if strings.Contains(pkgPath, seam) {
			return true
		}
	}
	return strings.HasPrefix(pkgPath, "goleak")
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	// Classify every declared body once: noexit[sym] anchors the first
	// block control can enter but never leave.
	noexit := make(map[string]string)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		if why := bodyNoExit(pass, cfg.New(sym, info.Decl.Body)); why != "" {
			noexit[sym] = why
		}
	}

	// Report every resolvable spawn site; remember which functions spawn
	// a leak (for the transitive "spawns" fact).
	spawnsLocal := make(map[string]bool)
	spawnWhy := make(map[string]string)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		c := &checker{pass: pass, info: info, noexit: noexit}
		c.checkSpawns(info.Decl.Body)
		if c.leaks != "" {
			spawnsLocal[sym] = true
			spawnWhy[sym] = c.leaks
		}
	}

	// Close "spawns" transitively: calling a function that leaks leaks.
	spawns := g.Propagate(spawnsLocal, func(c interproc.Callee) bool {
		payload, ok := pass.DepFact(c.PkgPath, c.Sym)
		return ok && strings.HasPrefix(payload, "spawns")
	})

	// Report cross-package call sites that inherit a leak (same-package
	// leaks were already reported at their own go statement).
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		for _, call := range info.Calls {
			if call.PkgPath == g.PkgPath || call.Iface {
				continue
			}
			payload, ok := pass.DepFact(call.PkgPath, call.Sym)
			if !ok || !strings.HasPrefix(payload, "spawns") {
				continue
			}
			if pass.Allowlisted(info.File, call.Pos.Pos()) {
				continue
			}
			pass.Reportf(call.Pos.Pos(),
				"call to %s.%s leaks a goroutine (%s)", call.PkgPath, call.Sym, payload)
		}
	}

	// Export facts for importers, in deterministic declaration order.
	for _, sym := range g.Order {
		if pass.InTestFile(g.Funcs[sym].Decl.Pos()) {
			continue
		}
		switch {
		case noexit[sym] != "":
			pass.ExportFact(sym, "noexit "+noexit[sym])
		case spawns[sym]:
			why := spawnWhy[sym]
			if why == "" {
				why = "via callee"
			}
			pass.ExportFact(sym, "spawns "+why)
		}
	}
	return nil
}

// checker walks one declared body's spawn sites.
type checker struct {
	pass   *analysis.Pass
	info   *interproc.FuncInfo
	noexit map[string]string
	// leaks anchors the first unsuppressed leak found (payload for the
	// enclosing function's "spawns" fact).
	leaks string
}

// checkSpawns visits every go statement of the body, including those
// inside function literals (a spawned literal can itself spawn).
func (c *checker) checkSpawns(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		c.checkSpawn(gs)
		return true
	})
}

// checkSpawn proves (or reports) one spawn site.
func (c *checker) checkSpawn(gs *ast.GoStmt) {
	pos := gs.Pos()
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		if why := bodyNoExit(c.pass, cfg.New("go", fun.Body)); why != "" {
			c.report(pos, "goroutine has no statically provable exit path: %s", why)
		}
	default:
		fn := interproc.CalleeFunc(c.pass, gs.Call)
		if fn == nil || interproc.IsInterfaceMethod(fn) {
			// Function value or dynamic dispatch: unresolvable,
			// under-approximate.
			return
		}
		sym := interproc.Symbol(fn)
		if fn.Pkg() != nil && fn.Pkg().Path() == c.pass.Pkg.Path() {
			if why := c.noexit[sym]; why != "" {
				c.report(pos, "goroutine %s has no statically provable exit path: %s", sym, why)
			}
			return
		}
		pkgPath := ""
		if fn.Pkg() != nil {
			pkgPath = fn.Pkg().Path()
		}
		if payload, ok := c.pass.DepFact(pkgPath, sym); ok {
			// Either the body never exits or it leaks transitively;
			// spawning it hands the leak to this package.
			c.report(pos, "goroutine %s.%s leaks (%s)", pkgPath, sym, payload)
		}
	}
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Allowlisted(c.info.File, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
	if c.leaks == "" {
		c.leaks = c.pass.Fset.Position(pos).String()
	}
}

// bodyNoExit proves the exit path of one body: every reachable block
// must reach the exit. It returns "" when the proof holds, or a
// description anchoring the first block control can enter but never
// leave.
func bodyNoExit(pass *analysis.Pass, g *cfg.Graph) string {
	reach := g.Reachable()
	exitReach := g.ReachesExit()
	for _, b := range g.Blocks {
		if !reach[b] || b == g.Exit || exitReach[b] {
			continue
		}
		at := "function body"
		for _, n := range b.Nodes {
			if p := pass.Fset.Position(n.Pos()); p.IsValid() {
				at = fmt.Sprintf("%s:%d", shortName(p.Filename), p.Line)
				break
			}
		}
		return fmt.Sprintf("no path from the %s block at %s to a return", b.Kind, at)
	}
	return ""
}

// shortName trims the path to the file's base name for compact fact
// payloads and diagnostics.
func shortName(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
