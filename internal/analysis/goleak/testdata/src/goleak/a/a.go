// Package a exercises the goleak analyzer: spawned bodies must prove an
// exit path (every reachable CFG block reaches the function exit).
package a

import "sync"

func sink(int) {}

// pump never exits: the receive loop has no escape edge. Not reported
// here — the leak is charged to the spawn site.
func pump(ch chan int) {
	for {
		v := <-ch
		sink(v)
	}
}

// drain exits when the channel closes (ok branch returns).
func drain(ch chan int) {
	for {
		v, ok := <-ch
		if !ok {
			return
		}
		sink(v)
	}
}

func spawnsLiteralLeak(ch chan int) {
	go func() { // want `goroutine has no statically provable exit path`
		for {
			v := <-ch
			sink(v)
		}
	}()
}

func spawnsGuardedLoop(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				sink(v)
			}
		}
	}()
}

func spawnsForever() {
	go func() { // want `goroutine has no statically provable exit path`
		select {}
	}()
}

func spawnsTerminating(wg *sync.WaitGroup, ch chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink(<-ch)
	}()
}

func spawnsNamedLeak(ch chan int) {
	go pump(ch) // want `goroutine pump has no statically provable exit path`
}

func spawnsNamedClean(ch chan int) {
	go drain(ch)
}

type worker struct {
	stop chan struct{}
}

// loop is exit-guarded through the stop channel.
func (w *worker) loop(ch chan int) {
	for {
		select {
		case <-w.stop:
			return
		case v := <-ch:
			sink(v)
		}
	}
}

// spin never exits.
func (w *worker) spin() {
	for {
	}
}

func spawnsMethods(w *worker, ch chan int) {
	go w.loop(ch)
	go w.spin() // want `goroutine worker.spin has no statically provable exit path`
}

func spawnsFuncValue(fn func()) {
	// Unresolvable target: under-approximate, no report.
	go fn()
}

func spawnsAllowlisted(ch chan int) {
	//lint:goleak-ok fixture: lifetime bounded by the process in this scenario
	go pump(ch)
}
