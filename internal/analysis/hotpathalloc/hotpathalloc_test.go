package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotPathAllocEngineRoots(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "repro/internal/engine")
}

func TestHotPathAllocModelCallbacks(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "hotpathalloc/a")
}

func TestHotPathAllocClean(t *testing.T) {
	analysistest.RunClean(t, hotpathalloc.Analyzer, "hotpathalloc/clean")
}
