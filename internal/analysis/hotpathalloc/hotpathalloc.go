// Package hotpathalloc guards the engine's pinned-allocation contract:
// code reachable from the phase-commit entry points must not allocate.
//
// The columnar commit engines (DESIGN.md §4) pin steady-state phases to
// ≤8 allocations per operation, and the BENCH_pr7 envelope (≈21 ns per
// request at 21M requests/phase) only holds because the commit path runs
// entirely over pooled struct-of-arrays scratch. An allocation slipped
// into that path — a closure capture, a boxed interface argument, a
// fresh slice in a helper three calls down — shows up as a benchmark
// regression long after the review that introduced it. This analyzer
// flags it at the line instead.
//
// Hot roots are the commit pipeline of the engine package (commit,
// finish, Submit, StageBatch and the engine-declared observer triple
// PhaseStart/Request/PhaseEnd) plus, in every package, the model
// callbacks the commit loop dispatches into (Apply(mem, addrs, vals),
// Scrub(vals), Render(v) — matched structurally so fixtures and future
// models are covered without importing the engine). Everything reachable
// from a root in the package's call graph is hot; allocation sites in
// hot functions are reported, and every function additionally exports an
// "allocates" fact so call sites into allocating dependencies are
// flagged in the caller.
//
// Flagged allocation sites: make/new, slice and map composite literals,
// address-taken composite literals, function literals (closure capture),
// go statements, implicit interface boxing and variadic argument slices,
// string concatenation and string<->[]byte conversions, calls into the
// allocating corners of fmt/strconv/strings/sort, and append to a slice
// that is not staged storage (a fresh local, rather than a field, a
// parameter, or a value derived from one — pooled columns and
// caller-provided buffers are staged by contract; growth beyond their
// high-water capacity is the pool's own responsibility). Dead code
// (behind a return/panic) is skipped via the CFG.
//
// Suppression: //lint:hotpathalloc-ok <reason>. An allowlisted site is
// excluded from the function's exported fact too — the reason vouches
// for the allocation, so callers are not re-flagged for it. The
// abort/violation paths (failf, fmt.Errorf on poisoning) and the
// per-chunk dispatch closures are the intended, documented exemptions.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/interproc"
)

// Analyzer flags allocation on the engine's hot commit path.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation in code reachable from commit/Submit/StageBatch/observer callbacks",
	Run:  run,
}

// engineRoots are hot entry points when declared in the engine package.
var engineRoots = map[string]bool{
	"commit": true, "finish": true, "Submit": true, "StageBatch": true,
	"PhaseStart": true, "Request": true, "PhaseEnd": true,
}

// knownAllocCalls lists stdlib calls that allocate on every (or the
// interesting) path, keyed "pkgpath.Func". The list is intentionally the
// allocating corners the repo actually brushes against, not a catalogue.
var knownAllocCalls = map[string]bool{
	"fmt.Errorf": true, "fmt.Sprintf": true, "fmt.Sprint": true,
	"fmt.Sprintln": true, "fmt.Fprintf": true, "fmt.Appendf": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatUint": true,
	"strconv.FormatFloat": true, "strconv.Quote": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Split": true,
	"sort.Slice": true, "sort.SliceStable": true,
	"errors.New": true, "errors.Join": true,
}

// site is one allocation site of a function body.
type site struct {
	pos  token.Pos
	desc string
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	// Local allocation sites per function, allowlisted ones dropped
	// (the directive's reason vouches for them, locally and in facts).
	local := make(map[string][]site, len(g.Funcs))
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		var sites []site
		collectSites(pass, info.Decl.Name.Name, info.Decl.Body, func(s site) {
			if !pass.Allowlisted(info.File, s.pos) {
				sites = append(sites, s)
			}
		})
		local[sym] = sites
	}

	// Transitive "allocates" summaries: a function allocates if it has a
	// local site or calls (same-package or via dependency facts) a
	// function that does. Exported for every function so importers can
	// flag hot call sites into this package.
	reason := make(map[string]string, len(g.Funcs))
	for _, sym := range g.Order {
		if s := local[sym]; len(s) > 0 {
			reason[sym] = fmt.Sprintf("%s (%s)", s[0].desc, shortPos(pass.Fset, s[0].pos))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sym := range g.Order {
			if reason[sym] != "" {
				continue
			}
			for _, c := range g.Funcs[sym].Calls {
				why := ""
				if c.PkgPath == g.PkgPath {
					if reason[c.Sym] != "" {
						why = fmt.Sprintf("calls %s, which allocates", c.Sym)
					}
				} else if payload, ok := pass.DepFact(c.PkgPath, c.Sym); ok {
					why = fmt.Sprintf("calls %s.%s: %s", c.PkgPath, c.Sym, payload)
				}
				if why != "" {
					reason[sym] = why
					changed = true
					break
				}
			}
		}
	}
	for _, sym := range g.Order {
		if r := reason[sym]; r != "" {
			pass.ExportFact(sym, r)
		}
	}

	// Hot set: everything reachable from a root, attributed to the first
	// root (in declaration order) that reaches it for the diagnostic.
	rootOf := make(map[string]string)
	for _, root := range hotRoots(pass, g) {
		for sym := range g.ReachableFrom(root) { //lint:maporder-ok every member gets the same root; roots iterate in declaration order
			if _, seen := rootOf[sym]; !seen {
				rootOf[sym] = root
			}
		}
	}

	for _, sym := range g.Order {
		root, hot := rootOf[sym]
		if !hot {
			continue
		}
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		for _, s := range local[sym] {
			pass.Reportf(s.pos,
				"%s on the hot commit path (%s is reachable from %s); hoist it to pooled scratch or annotate //lint:hotpathalloc-ok <reason>",
				s.desc, sym, root)
		}
		// Same-package callees are hot themselves and report their own
		// sites; cross-package callees are flagged at the call site,
		// where the caller can fix or vouch.
		for _, c := range info.Calls {
			if c.PkgPath == g.PkgPath || c.Iface {
				continue
			}
			payload, ok := pass.DepFact(c.PkgPath, c.Sym)
			if !ok || pass.Allowlisted(info.File, c.Pos.Pos()) {
				continue
			}
			pass.Reportf(c.Pos.Pos(),
				"call to %s.%s on the hot commit path (%s is reachable from %s): %s; hoist the allocation or annotate //lint:hotpathalloc-ok <reason>",
				c.PkgPath, c.Sym, sym, root, payload)
		}
	}
	return nil
}

// hotRoots returns the hot entry-point symbols declared in this package:
// the engine's commit pipeline and observer triple, and model callbacks
// (matched structurally) everywhere.
func hotRoots(pass *analysis.Pass, g *interproc.Graph) []string {
	engine := strings.HasSuffix(pass.Path, "internal/engine")
	var roots []string
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		name := info.Decl.Name.Name
		if engine && info.Decl.Recv != nil && engineRoots[name] {
			roots = append(roots, sym)
			continue
		}
		if isModelCallback(pass, info.Decl) {
			roots = append(roots, sym)
		}
	}
	return roots
}

// isModelCallback matches the engine's model hooks structurally: the
// commit loop calls Apply(mem, addrs []int32, vals), Scrub(vals) and
// Render(v) string through the Model interface, so implementations are
// hot at their definition site even though the dispatch is dynamic.
func isModelCallback(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	switch fd.Name.Name {
	case "Apply":
		if params.Len() != 3 {
			return false
		}
		s, ok := params.At(1).Type().(*types.Slice)
		return ok && types.Identical(s.Elem(), types.Typ[types.Int32])
	case "Scrub":
		if params.Len() != 1 {
			return false
		}
		_, ok := params.At(0).Type().Underlying().(*types.Slice)
		return ok
	case "Render":
		return params.Len() == 1 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), types.Typ[types.String])
	}
	return false
}

// collectSites finds the allocation sites of one function body, CFG-aware
// twice over: dead blocks are skipped, and append destinations are
// classified with a forward staged-storage taint (a local assigned from
// a field, parameter or another staged value is staged). Function
// literals are flagged as sites themselves and then analyzed recursively
// with their own sub-graph, since their statements are not nodes of the
// enclosing graph.
func collectSites(pass *analysis.Pass, name string, body *ast.BlockStmt, emit func(site)) {
	g := cfg.New(name, body)
	reach := g.Reachable()

	const staged = 1
	transfer := func(n ast.Node, state cfg.Facts) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := identObj(pass, id); obj != nil && isStaged(pass, body, st.Rhs[i], state) {
					state[obj] |= staged
				}
			}
		case *ast.RangeStmt:
			// Ranging over a staged slice-of-slices yields staged rows.
			if st.Value == nil || !isStaged(pass, body, st.X, state) {
				return
			}
			if id, ok := ast.Unparen(st.Value).(*ast.Ident); ok {
				if obj := identObj(pass, id); obj != nil {
					state[obj] |= staged
				}
			}
		}
	}
	in := g.Forward(transfer)

	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		state := in[b].Clone()
		for _, n := range b.Nodes {
			cfg.Inspect(n, false, func(m ast.Node) bool {
				if lit, ok := m.(*ast.FuncLit); ok && m != n {
					emit(site{lit.Pos(), "function literal (closure capture) allocates"})
					collectSites(pass, name+".func", lit.Body, emit)
					return false
				}
				checkNode(pass, body, m, state, emit)
				return true
			})
			transfer(n, state)
		}
	}
}

// checkNode emits the allocation sites rooted at one sub-node.
func checkNode(pass *analysis.Pass, body *ast.BlockStmt, n ast.Node, state cfg.Facts, emit func(site)) {
	switch x := n.(type) {
	case *ast.GoStmt:
		emit(site{x.Pos(), "go statement allocates (new goroutine)"})
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				emit(site{x.Pos(), "address-taken composite literal allocates"})
			}
		}
	case *ast.CompositeLit:
		switch pass.TypesInfo.TypeOf(x).Underlying().(type) {
		case *types.Slice:
			emit(site{x.Pos(), "slice literal allocates"})
		case *types.Map:
			emit(site{x.Pos(), "map literal allocates"})
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(x)) {
			emit(site{x.Pos(), "string concatenation allocates"})
		}
	case *ast.CallExpr:
		checkCall(pass, body, x, state, emit)
	}
}

// checkCall classifies one call expression: builtins (make/new/append),
// conversions, known allocating stdlib calls, and implicit allocation at
// the call boundary (boxing, variadic slices).
func checkCall(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, state cfg.Facts, emit func(site)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				emit(site{call.Pos(), "make allocates"})
			case "new":
				emit(site{call.Pos(), "new allocates"})
			case "append":
				if len(call.Args) > 0 && !isStaged(pass, body, call.Args[0], state) {
					emit(site{call.Pos(), "append to a non-staged slice allocates"})
				}
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, pass.TypesInfo.TypeOf(call.Args[0])
		if isStringType(dst) != isStringType(src) && (isStringType(dst) || isStringType(src)) {
			if _, slice := dst.Underlying().(*types.Slice); slice || isStringType(dst) {
				if _, srcSlice := src.Underlying().(*types.Slice); srcSlice || isStringType(src) {
					emit(site{call.Pos(), "string/byte-slice conversion allocates"})
				}
			}
		}
		return
	}
	fn := interproc.CalleeFunc(pass, call)
	if fn == nil {
		return
	}
	key := fn.Name()
	if fn.Pkg() != nil {
		key = fn.Pkg().Path() + "." + fn.Name()
	}
	if knownAllocCalls[key] {
		emit(site{call.Pos(), "call to " + key + " allocates"})
		return
	}
	// Implicit allocation at the call boundary. Skipped for callees the
	// list already flags — one finding per call is enough.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= sig.Params().Len() {
		emit(site{call.Pos(), "variadic call to " + fn.Name() + " allocates its argument slice"})
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		pt := sig.Params().At(i).Type()
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) || isBasicUntypedNil(pass, arg) {
			continue
		}
		if _, ptr := at.Underlying().(*types.Pointer); ptr {
			continue // a pointer fits the interface word; no box
		}
		emit(site{arg.Pos(), "implicit interface conversion (boxing) allocates in call to " + fn.Name()})
	}
}

// isStaged reports whether a slice expression is staged storage: rooted
// at a field selector (pooled columns), declared outside the analyzed
// body (parameters, receivers, captured variables — whose creation was
// flagged where it happened), or CFG-tainted from one of those.
func isStaged(pass *analysis.Pass, body *ast.BlockStmt, e ast.Expr, state cfg.Facts) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return true
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := identObj(pass, x)
			if obj == nil {
				return false
			}
			if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
				return true
			}
			return state[obj]&1 != 0
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(x.Args) > 0 {
					e = x.Args[0]
					continue
				}
			}
			return false
		default:
			return false
		}
	}
}

// identObj resolves an identifier to its object through either Uses or
// Defs (a := definition).
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBasicUntypedNil(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// shortPos renders "file.go:123" for fact payloads.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
