// Fixture: a miniature commit engine exercising the hot-root detection
// (commit/Submit/StageBatch/observer methods in an engine-suffixed
// package) and every allocation-site class.
package engine

import "fmt"

type Mem struct {
	mem   []int64
	rAddr []int32
	err   error
}

// commit is a hot root: everything it reaches must not allocate.
func (m *Mem) commit(workers int) {
	for _, a := range m.rAddr {
		m.mem[a] = 0
	}
	buf := make([]int64, 8) // want `make allocates .* reachable from Mem\.commit`
	_ = buf
	go m.drain() // want `go statement allocates`
	m.apply()
}

// apply is hot transitively (called from commit).
func (m *Mem) apply() {
	tmp := []int32{1, 2} // want `slice literal allocates .*Mem\.apply is reachable from Mem\.commit`
	_ = tmp
}

func (m *Mem) drain() {}

// Submit is a hot root; the abort path's formatting is the documented,
// reason-carrying exemption — the directive must silence the finding
// and keep callers unflagged.
func (m *Mem) Submit(b []int32) {
	if len(b) == 0 {
		m.err = fmt.Errorf("empty batch") //lint:hotpathalloc-ok abort path: formats once, then the machine is poisoned
	}
	m.rAddr = append(m.rAddr, b...) // staged: the pooled column grows to its high-water mark
}

// StageBatch shows the staged-append classification: appends to fields
// and parameters are staged, appends to fresh locals are not.
func (m *Mem) StageBatch(dsts []int32, scratch []int32) {
	m.rAddr = append(m.rAddr, dsts...)
	scratch = append(scratch, dsts...)
	_ = scratch
	var spill []int32
	spill = append(spill, dsts...) // want `append to a non-staged slice allocates`
	_ = spill
	local := m.rAddr[:0]
	local = append(local, dsts...) // taint: derived from a pooled column, staged
	_ = local
}

// PhaseStart is an engine observer root: boxing into an interface
// parameter allocates.
func (m *Mem) PhaseStart(phase int) {
	box(phase) // want `implicit interface conversion \(boxing\) allocates`
}

func box(v any) {}

// finish is a hot root, but its dead tail is skipped via the CFG.
func (m *Mem) finish() {
	return
	_ = make([]int64, 1) // dead code: no finding
}

// cold is not reachable from any root: allocation is fine here.
func cold() []int64 {
	return make([]int64, 16)
}
