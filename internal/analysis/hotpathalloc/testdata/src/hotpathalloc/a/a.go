// Fixture: model callbacks (Apply/Scrub/Render, matched structurally)
// are hot roots in any package, and closures are flagged then analyzed
// recursively with their own sub-graph.
package a

import "fmt"

type model struct{}

func (model) Apply(mem []int64, addrs []int32, vals []int64) {
	for i, a := range addrs {
		mem[a] = vals[i]
	}
	seen := map[int32]bool{} // want `map literal allocates .* reachable from model\.Apply`
	_ = seen
	f := func() { // want `function literal \(closure capture\) allocates`
		var fresh []int64
		fresh = append(fresh, mem...) // want `append to a non-staged slice allocates`
		_ = fresh
	}
	f()
}

func (model) Render(v int64) string {
	return fmt.Sprintf("%d", v) // want `call to fmt\.Sprintf allocates`
}

func (model) Scrub(vals []int64) {
	for i := range vals {
		vals[i] = 0
	}
	pad := []int64{0} //lint:hotpathalloc-ok fixture: reviewed one-off allocation
	_ = pad
}

// helper is cold: no findings outside the hot set.
func helper() string {
	return fmt.Sprintf("cold %d", 1)
}
