// Fixture: an allocation-free hot path plus reasoned allowlists must
// produce no findings at all.
package clean

type core struct {
	cols [][]int32
	out  []int32
}

func (c *core) commit(workers int) { // not an engine package: commit is not a root here
	_ = make([]int32, workers)
}

type model struct{}

func (model) Apply(mem []int64, addrs []int32, vals []int64) {
	for i, a := range addrs {
		mem[a] = vals[i]
	}
}

func (m model) Scrub(vals []int64) {
	clear(vals)
}
