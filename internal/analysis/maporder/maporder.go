// Package maporder flags `range` statements over maps in non-test code.
//
// Map iteration order is randomized by the runtime, so any map range whose
// effect is order-sensitive silently breaks the engine's Workers=1-vs-N
// determinism contract and the cmd/tables golden output — the exact class
// of bug the runtime suites (determinism_test.go, golden tables) can only
// sample. The analyzer is deliberately strict: every map range in non-test
// code is flagged, and order-independent ones must say so with
//
//	//lint:maporder-ok <why the iteration order cannot be observed>
//
// so the justification is reviewable where the iteration happens.
// Order-sensitive sites should instead iterate sorted keys (see
// compaction.PlacedSlots for the pattern). Note that floating-point
// accumulation over a map is order-sensitive even though addition looks
// commutative — associativity is what rounding breaks.
package maporder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags range statements over maps in non-test code.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag range over maps in non-test code (nondeterministic iteration order)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Allowlisted(f, rs.For) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s has nondeterministic iteration order; iterate sorted keys or annotate //lint:maporder-ok <reason>",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}
