// Test files are exempt: map iteration in a test cannot perturb model
// output, so nothing in this file is flagged.
package a

func testHelperIterates(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
