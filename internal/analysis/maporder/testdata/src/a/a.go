// Package a seeds maporder violations and suppressions.
package a

import "sort"

func sum(m map[string]int) int {
	var s int
	for _, v := range m { // want `range over map map\[string\]int has nondeterministic iteration order`
		s += v
	}
	return s
}

func maxOf(m map[string]int) int {
	best := 0
	for _, v := range m { //lint:maporder-ok max is order-independent
		if v > best {
			best = v
		}
	}
	return best
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	//lint:maporder-ok keys are sorted before return
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

type bag map[int]bool

func drain(b bag) int {
	n := 0
	for range b { // want `range over map bag has nondeterministic iteration order`
		n++
	}
	return n
}

func overSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
