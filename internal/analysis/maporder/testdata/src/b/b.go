// Package b is a clean fixture: only slice, channel, string and integer
// ranges, plus keyed map access — nothing for maporder to flag.
package b

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func lookupAll(m map[string]int, keys []string) []int {
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func drainChan(c chan int) int {
	n := 0
	for v := range c {
		n += v
	}
	return n
}

func runes(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

func countdown() int {
	n := 0
	for range 10 {
		n++
	}
	return n
}
