package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "a")
}

func TestMapOrderClean(t *testing.T) {
	analysistest.RunClean(t, maporder.Analyzer, "b")
}
