// Package injectoronce guards the single-draw fault-injection contract:
// the injector is consulted exactly once per phase attempt, from the
// commit barrier, on the coordinating goroutine (DESIGN.md §6). That is
// what makes fault schedules a pure function of the seed — byte-identical
// at Workers=1 and Workers=N. A second consult path (a debug probe, an
// eager pre-check in a worker body, a stray RNG draw in the plan) shifts
// every subsequent draw and silently changes which faults fire.
//
// Three rules, all structural so fixtures type-check against GOROOT:
//
//  1. a method named consultInjector may be called only from a method
//     named commit (the barrier entry points, engine.Mem/Route);
//  2. an Inject-shaped method (Inject(InjectCtx) Verdict) may be called
//     only from consultInjector — the engine's one funnel;
//  3. inside a package that implements an injector (a type with an
//     Inject-shaped method), any function drawing from that type's
//     *math/rand.Rand field must be reachable in the call graph from
//     the type's Inject method, so every draw is accounted to a
//     consult.
//
// Test files are exempt: tests drive injectors directly on purpose.
package injectoronce

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer confines injector consults and RNG draws to the commit barrier.
var Analyzer = &analysis.Analyzer{
	Name: "injectoronce",
	Doc:  "flag injector consults and injector-RNG draws outside the commit-barrier call path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		caller := info.Decl.Name.Name
		for _, c := range info.Calls {
			switch {
			case c.Name == "consultInjector" && caller != "commit":
				if pass.Allowlisted(info.File, c.Pos.Pos()) {
					continue
				}
				pass.Reportf(c.Pos.Pos(),
					"consultInjector called from %s; the single-draw contract consults the injector only from the commit barrier (commit), or annotate //lint:injectoronce-ok <reason>", sym)
			case caller != "consultInjector" && isInjectCall(pass, c):
				if pass.Allowlisted(info.File, c.Pos.Pos()) {
					continue
				}
				pass.Reportf(c.Pos.Pos(),
					"injector Inject called from %s; only the engine's consultInjector funnel may consult the injector, or annotate //lint:injectoronce-ok <reason>", sym)
			}
		}
	}

	checkRNGPaths(pass, g)
	return nil
}

// isInjectCall matches a call edge to an Inject-shaped method:
// Inject(InjectCtx) Verdict, by type names rather than package identity.
func isInjectCall(pass *analysis.Pass, c interproc.Callee) bool {
	if c.Name != "Inject" {
		return false
	}
	call, ok := c.Pos.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := interproc.CalleeFunc(pass, call)
	return fn != nil && isInjectShaped(fn)
}

// isInjectShaped reports whether fn is a method Inject(InjectCtx) Verdict.
func isInjectShaped(fn *types.Func) bool {
	if fn.Name() != "Inject" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return namedTypeName(sig.Params().At(0).Type()) == "InjectCtx" &&
		namedTypeName(sig.Results().At(0).Type()) == "Verdict"
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkRNGPaths applies rule 3: every draw from an injector type's
// *rand.Rand field must be reachable from that type's Inject method.
func checkRNGPaths(pass *analysis.Pass, g *interproc.Graph) {
	for _, injType := range injectorTypes(g, pass) {
		reach := g.ReachableFrom(injType + ".Inject")
		for _, sym := range g.Order {
			info := g.Funcs[sym]
			if reach[sym] || pass.InTestFile(info.Decl.Pos()) {
				continue
			}
			for _, draw := range rngDraws(pass, info, injType) {
				if pass.Allowlisted(info.File, draw.Pos()) {
					continue
				}
				pass.Reportf(draw.Pos(),
					"%s draws from %s's injector RNG outside the Inject call path; a draw off the consult path shifts the whole fault schedule — route it through Inject or annotate //lint:injectoronce-ok <reason>",
					sym, injType)
			}
		}
	}
}

// injectorTypes lists the receiver type names in this package that have
// an Inject-shaped method, in declaration order.
func injectorTypes(g *interproc.Graph, pass *analysis.Pass) []string {
	var out []string
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if info.Decl.Recv == nil || info.Decl.Name.Name != "Inject" {
			continue
		}
		fn, ok := pass.TypesInfo.Defs[info.Decl.Name].(*types.Func)
		if !ok || !isInjectShaped(fn) {
			continue
		}
		out = append(out, strings.TrimSuffix(sym, ".Inject"))
	}
	return out
}

// rngDraws finds method calls through a *math/rand.Rand field owned by
// injType inside info's body (p.rng.Float64(), p.rng.Intn(n), …).
func rngDraws(pass *analysis.Pass, info *interproc.FuncInfo, injType string) []ast.Node {
	var out []ast.Node
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field, ok := ast.Unparen(fun.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sel := pass.TypesInfo.Selections[field]
		if sel == nil || sel.Kind() != types.FieldVal {
			return true
		}
		if !isRandRand(sel.Type()) {
			return true
		}
		if interproc.RecvTypeName(sel.Recv()) != injType {
			return true
		}
		out = append(out, call)
		return true
	})
	return out
}

// isRandRand matches *math/rand.Rand (v1; the repository's seeded source).
func isRandRand(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Rand" && n.Obj().Pkg().Path() == "math/rand"
}
