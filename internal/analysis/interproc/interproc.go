// Package interproc is the interprocedural layer of the reprolint
// framework: a per-package call graph with stable function symbols, plus
// the propagation helpers the contract analyzers (sentinelwrap,
// snapshotdeep, costbalance, injectoronce, observerpurity) build their
// per-function summaries on.
//
// The design mirrors how fact-based go/analysis analyzers stay modular
// under cmd/go's build cache: each package is analyzed exactly once, its
// per-function summaries are serialized into the package's facts (.vetx)
// file through the unitchecker export-data path, and importers consult
// those summaries instead of re-analyzing the dependency. Within a
// package the graph supports fixpoint propagation (a caller inherits a
// callee's facts); across packages the analyzer supplies an `ext` hook
// that resolves a Callee against Pass.DepFact.
//
// Soundness caveats (documented in DESIGN.md §5): calls through function
// *values* (fields, parameters, stored closures) are not resolved, and
// calls through interface methods resolve to the interface method's
// symbol, not to concrete implementations — analyzers either seed
// interface methods by contract (sentinelwrap's `Violation() error`) or
// check implementations at their definition site (snapshotdeep,
// observerpurity), which closes the gap for the engine's hooks.
package interproc

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Callee is one resolved outgoing call edge.
type Callee struct {
	// PkgPath is the defining package of the callee ("" for universe
	// scope objects such as error.Error).
	PkgPath string
	// Sym is the callee's symbol: "F" for package functions, "T.M" for
	// methods (receiver base type name, pointerness erased).
	Sym string
	// Name is the bare function/method name.
	Name string
	// Iface is true when the call dispatches through an interface
	// method (the concrete target is unknown statically).
	Iface bool
	// Pos is the call site.
	Pos ast.Node
}

// FuncInfo is one declared function or method of the package.
type FuncInfo struct {
	// Sym is the function's symbol ("F" or "T.M").
	Sym string
	// Decl is the declaration; Decl.Body is non-nil.
	Decl *ast.FuncDecl
	// File is the containing file (for allowlist lookups).
	File *ast.File
	// Calls are the resolved outgoing edges, in source order. Function
	// literals inside the body are attributed to the enclosing
	// declaration (the engine dispatches its passes through
	// sched.Blocks closures).
	Calls []Callee
}

// Graph is the package-local call graph.
type Graph struct {
	// PkgPath is the analyzed package's import path.
	PkgPath string
	// Order lists function symbols in declaration order (the iteration
	// order of every deterministic walk).
	Order []string
	// Funcs indexes FuncInfo by symbol.
	Funcs map[string]*FuncInfo
}

// Build constructs the call graph of the pass's package. Test files are
// included (callers filter with Pass.InTestFile where the contract
// exempts them).
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{PkgPath: pass.Pkg.Path(), Funcs: make(map[string]*FuncInfo)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &FuncInfo{Sym: Symbol(obj), Decl: fd, File: f}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := CalleeFunc(pass, call); fn != nil {
					info.Calls = append(info.Calls, Callee{
						PkgPath: pkgPathOf(fn),
						Sym:     Symbol(fn),
						Name:    fn.Name(),
						Iface:   IsInterfaceMethod(fn),
						Pos:     call,
					})
				}
				return true
			})
			g.Order = append(g.Order, info.Sym)
			g.Funcs[info.Sym] = info
		}
	}
	return g
}

// CalleeFunc resolves the statically-known target of a call expression,
// or nil for builtins, conversions and calls through function values.
func CalleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		// Explicit generic instantiation f[T](...).
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// Normalize generic instantiations to their origin so facts key on
	// one symbol per source declaration.
	return fn.Origin()
}

// Symbol returns the stable symbol of a function object: "F" for package
// functions, "T.M" for methods, where T is the receiver's base type name
// with pointerness and type arguments erased.
func Symbol(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return RecvTypeName(sig.Recv().Type()) + "." + fn.Name()
}

// RecvTypeName reduces a receiver type to its base named-type name
// ("*Mem[V]" -> "Mem"); interface receivers reduce to the interface's
// name when named, and anonymous types to "_".
func RecvTypeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.TypeParam:
		// Method on a type parameter: fall back to the constraint name.
		return n.Obj().Name()
	}
	return "_"
}

// IsInterfaceMethod reports whether fn is declared on an interface (the
// call is dynamic dispatch).
func IsInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// Propagate computes the transitive closure of a boolean per-function
// fact over the graph: a function has the fact if local[sym] is true or
// any callee has it — same-package callees through the graph's own
// fixpoint, cross-package callees through ext (typically a Pass.DepFact
// lookup; nil treats all external calls as fact-free).
func (g *Graph) Propagate(local map[string]bool, ext func(Callee) bool) map[string]bool {
	out := make(map[string]bool, len(local))
	for sym, v := range local { //lint:maporder-ok boolean-join fixpoint is order-independent
		out[sym] = v
	}
	for changed := true; changed; {
		changed = false
		for _, sym := range g.Order {
			if out[sym] {
				continue
			}
			for _, c := range g.Funcs[sym].Calls {
				hit := false
				if c.PkgPath == g.PkgPath {
					hit = out[c.Sym]
				} else if ext != nil {
					hit = ext(c)
				}
				if hit {
					out[sym] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// PropagateSets computes the transitive union of per-function string
// sets: a function's set is its local set joined with every callee's
// (same-package via fixpoint, cross-package via ext). Sets are
// represented as membership maps; use Members for a sorted view.
func (g *Graph) PropagateSets(local map[string]map[string]bool, ext func(Callee) []string) map[string]map[string]bool {
	out := make(map[string]map[string]bool, len(g.Funcs))
	join := func(sym string, items ...string) bool {
		changed := false
		set := out[sym]
		for _, it := range items {
			if !set[it] {
				if set == nil {
					set = make(map[string]bool)
					out[sym] = set
				}
				set[it] = true
				changed = true
			}
		}
		return changed
	}
	for sym, set := range local { //lint:maporder-ok set-union fixpoint is order-independent
		for it := range set { //lint:maporder-ok set-union fixpoint is order-independent
			join(sym, it)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sym := range g.Order {
			for _, c := range g.Funcs[sym].Calls {
				if c.PkgPath == g.PkgPath {
					for it := range out[c.Sym] { //lint:maporder-ok set-union fixpoint is order-independent
						if join(sym, it) {
							changed = true
						}
					}
				} else if ext != nil {
					if join(sym, ext(c)...) {
						changed = true
					}
				}
			}
		}
	}
	return out
}

// ReachableFrom returns the set of package-local symbols reachable from
// the given roots over the graph's call edges (roots included).
func (g *Graph) ReachableFrom(roots ...string) map[string]bool {
	reach := make(map[string]bool)
	var visit func(sym string)
	visit = func(sym string) {
		if reach[sym] {
			return
		}
		info, ok := g.Funcs[sym]
		if !ok {
			return
		}
		reach[sym] = true
		for _, c := range info.Calls {
			if c.PkgPath == g.PkgPath {
				visit(c.Sym)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return reach
}

// Members returns the sorted members of a set map (payload form for
// facts and diagnostics).
func Members(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for m := range set { //lint:maporder-ok members are sorted before use
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// JoinPayload encodes a sorted string set as a fact payload; DecodePayload
// inverts it.
func JoinPayload(items []string) string { return strings.Join(items, ",") }

// DecodePayload splits a fact payload produced by JoinPayload.
func DecodePayload(payload string) []string {
	if payload == "" {
		return nil
	}
	return strings.Split(payload, ",")
}
