package bitaddr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/bitaddr"
)

func TestBitAddr(t *testing.T) {
	analysistest.Run(t, bitaddr.Analyzer, "bitaddr/a")
}
