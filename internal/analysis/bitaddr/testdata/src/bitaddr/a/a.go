// Fixture: packed addr<<1|bit discipline — guarded packing is clean,
// unguarded or partially guarded packing, raw staging, raw arithmetic
// and raw indexing are flagged, and the unpack/copy/reset idioms stay
// silent.
package a

type BitCtx struct {
	writes []int32
	nbits  int
}

// Write is the sanctioned idiom: range-check on every path, then pack.
func (c *BitCtx) Write(addr, bit int32) {
	if addr < 0 || int(addr) >= c.nbits {
		return
	}
	c.writes = append(c.writes, addr<<1|bit)
}

// WriteSplit builds the packed value across statements: the pack site
// is still guard-checked through the definition.
func (c *BitCtx) WriteSplit(addr int32) {
	if addr < 0 || int(addr) >= c.nbits {
		return
	}
	pk := addr << 1
	pk |= 1
	c.writes = append(c.writes, pk)
}

func (c *BitCtx) WriteUnchecked(addr, bit int32) {
	c.writes = append(c.writes, addr<<1|bit) // want `packed address "addr" is not range-checked on every path`
}

// WritePartial guards only one branch: the unguarded path still
// reaches the pack site.
func (c *BitCtx) WritePartial(addr, bit int32, flag bool) {
	if flag {
		if int(addr) >= c.nbits {
			return
		}
	}
	c.writes = append(c.writes, addr<<1|bit) // want `not range-checked on every path`
}

// WriteComputed packs a call result: nothing to anchor a guard to.
func (c *BitCtx) WriteComputed() {
	c.writes = append(c.writes, next()<<1) // want `not a locally range-checked variable`
}

func next() int32 { return 0 }

// stageRaw smuggles an unpacked value into the column.
func (c *BitCtx) stageRaw(v int32) {
	c.writes = append(c.writes, v) // want `not derived as addr<<1\|bit`
}

// bulk appends a raw slice wholesale into the packed column.
func (c *BitCtx) bulk(raw []int32) {
	c.writes = append(c.writes, raw...) // want `bulk append into a packed write column from a non-packed slice`
}

// merge copies column-to-column: packed stays packed.
func merge(dst, src *BitCtx) {
	dst.writes = append(dst.writes, src.writes...)
}

// restage moves one packed element between columns: still packed.
func restage(dst, src *BitCtx, k int) {
	pk := src.writes[k]
	dst.writes = append(dst.writes, pk)
}

// reset is the pooled-reuse idiom: the empty sub-slice is still the
// packed column.
func (c *BitCtx) reset() {
	c.writes = c.writes[:0]
}

// unpack is the sanctioned consumption: >>1 and &1 only.
func unpack(c *BitCtx, k int) (int32, int32) {
	pk := c.writes[k]
	return pk >> 1, pk & 1
}

// shard computes a shard key from the packed value without unpacking.
func shard(c *BitCtx, k int) int32 {
	pk := c.writes[k]
	return pk >> 7 // want `raw >> arithmetic on a packed addr<<1\|bit value`
}

// lookup indexes a table with the packed value directly.
func lookup(c *BitCtx, tab []int64, k int) int64 {
	pk := c.writes[k]
	return tab[pk] // want `packed addr<<1\|bit value used as a raw index`
}

// fanOut mirrors the engine's sched.Blocks shape: the packed-value
// discipline applies inside worker closures too (each literal gets its
// own graph).
func fanOut(c *BitCtx, blocks func(int, func(int, int))) {
	blocks(4, func(lo, hi int) {
		for _, pk := range c.writes[lo:hi] {
			_ = pk >> 9 // want `raw >> arithmetic on a packed addr<<1\|bit value`
		}
	})
	blocks(4, func(lo, hi int) {
		for _, pk := range c.writes[lo:hi] {
			_, _ = pk>>1, pk&1
		}
	})
}

// debugScale carries a reasoned allowlist: no finding.
func debugScale(c *BitCtx, k int) int32 {
	pk := c.writes[k]
	return pk * 2 //lint:bitaddr-ok fixture: debug-only scaling of the raw packed word
}
