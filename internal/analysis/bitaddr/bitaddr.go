// Package bitaddr guards the packed bit-address contract of the
// bit-packed Boolean memories (DESIGN.md §4): every value stored into a
// BitMem write column is derived as addr<<1|bit from a range-checked
// address, and packed values are only ever consumed by unpacking.
//
// BitMem's write column overlays address and payload in one int32 —
// addr<<1|bit — which is what keeps the Boolean commit at one column
// pass, and is also why the memory is capped at 2^30 cells (int32 loses
// a bit to the payload; InitBits enforces the cap at construction). The
// encoding is invisible to the type system: a packed int32 and a plain
// cell address mix silently, and a single raw arithmetic step on a
// packed value — sharding by pk>>k instead of (pk>>1)>>k', comparing a
// packed value against a cell count, indexing a column with it — reads
// address bits shifted into the payload position and corrupts a commit
// in a way only a large, adversarial test would notice.
//
// The analyzer therefore tracks packed values with a forward CFG taint:
// reads of the packed columns (the writes/wPacked fields of
// BitCtx/bitBuf shaped types, and ranges/indexes over them) are packed
// sources, and a packed value may only be unpacked (>>1, &1),
// bit-or-ed with the payload (|1), compared, copied, or appended back
// into a packed column. Any other arithmetic or an indexing use is
// reported. Conversely every value stored into a packed column must be
// provably pack-shaped: a syntactic addr<<1 (optionally |bit) whose
// address operand is range-checked on every path from the function
// entry (checked by deleting the CFG blocks carrying a comparison on
// the address and asking whether the pack site is still reachable), a
// value read from another packed column, or a variable holding one of
// those. Raw values staged into the column are reported where they are
// staged.
//
// Suppression: //lint:bitaddr-ok <reason>.
package bitaddr

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/interproc"
)

// Analyzer verifies the addr<<1|bit packing discipline of BitMem columns.
var Analyzer = &analysis.Analyzer{
	Name: "bitaddr",
	Doc:  "flag raw arithmetic on packed addr<<1|bit values and unchecked addresses entering packed columns",
	Run:  run,
}

// packedColumns names the fields holding packed addr<<1|bit values, by
// owning type (same structural matching as the other engine analyzers:
// fixtures and future engines match without importing repro packages).
var packedColumns = map[string]map[string]bool{
	"BitCtx": {"writes": true},
	"bitBuf": {"wPacked": true},
	"BitMem": {"wPacked": true},
}

// Taint bits.
const (
	packedBit  = 1 // value read from a packed column
	blessedBit = 2 // value built by a recognized addr<<1|bit pack site
)

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		checkFunc(pass, info)
	}
	return nil
}

type checker struct {
	pass  *analysis.Pass
	info  *interproc.FuncInfo
	graph *cfg.Graph
	// packDef records, per variable object, the pack site that defined
	// it (for the guard check at store time) — populated by transfer.
	packDef map[types.Object]*packSite
	// block is the block currently being replayed (guard checks need
	// the pack site's block).
	block *cfg.Block
}

// packSite is one syntactic addr<<1(|bit) expression.
type packSite struct {
	expr  *ast.BinaryExpr
	base  types.Object // the address operand's object, if an identifier
	block *cfg.Block
}

func checkFunc(pass *analysis.Pass, info *interproc.FuncInfo) {
	checkBody(pass, info, info.Sym, info.Decl.Body)
	// The engine stages its packed writes inside sched.Blocks worker
	// closures; each function literal gets its own graph (the replay
	// above does not descend into literals).
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkBody(pass, info, info.Sym+".func", lit.Body)
		}
		return true
	})
}

func checkBody(pass *analysis.Pass, info *interproc.FuncInfo, name string, body *ast.BlockStmt) {
	c := &checker{
		pass:    pass,
		info:    info,
		packDef: make(map[types.Object]*packSite),
	}
	c.graph = cfg.New(name, body)
	reach := c.graph.Reachable()
	// Pre-pass: record every pack-definition site with its block, so
	// the guard check can ask reachability questions about it during
	// replay regardless of block order.
	for _, b := range c.graph.Blocks {
		for _, n := range b.Nodes {
			st, ok := n.(*ast.AssignStmt)
			if !ok || len(st.Lhs) != len(st.Rhs) {
				continue
			}
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := identObj(pass, id)
				if obj == nil {
					continue
				}
				if ps := c.packExpr(st.Rhs[i]); ps != nil && c.packDef[obj] == nil {
					ps.block = b
					c.packDef[obj] = ps
				}
			}
		}
	}
	in := c.graph.Forward(c.transfer)
	for _, b := range c.graph.Blocks {
		if !reach[b] {
			continue
		}
		c.block = b
		state := in[b].Clone()
		for _, n := range b.Nodes {
			c.checkNode(n, state)
			c.transfer(n, state)
		}
	}
}

// transfer propagates packed/blessed taint through assignments and
// ranges; it also records pack-definition sites for the guard check.
// Monotone (bits only added), per the Forward contract.
func (c *checker) transfer(n ast.Node, state cfg.Facts) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) != len(st.Rhs) {
			return
		}
		for i, lhs := range st.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := identObj(c.pass, id)
			if obj == nil {
				continue
			}
			rhs := st.Rhs[i]
			if c.packExpr(rhs) != nil {
				state[obj] |= blessedBit
				continue
			}
			state[obj] |= c.taintOf(rhs, state)
		}
	case *ast.RangeStmt:
		if st.Value == nil {
			return
		}
		if c.taintOf(st.X, state)&packedBit == 0 && !c.isPackedColumn(st.X) {
			return
		}
		if id, ok := ast.Unparen(st.Value).(*ast.Ident); ok {
			if obj := identObj(c.pass, id); obj != nil {
				state[obj] |= packedBit
			}
		}
	}
}

// taintOf computes the packed-taint of an expression: reads of packed
// columns and of tainted variables carry taint; unpacking (>>1, &1)
// deliberately does NOT — the result is a plain address or payload.
func (c *checker) taintOf(e ast.Expr, state cfg.Facts) uint64 {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := identObj(c.pass, x); obj != nil {
			return state[obj]
		}
	case *ast.SelectorExpr:
		if c.isPackedColumn(x) {
			return packedBit
		}
	case *ast.IndexExpr:
		if c.isPackedColumn(x.X) {
			return packedBit
		}
		return 0
	case *ast.SliceExpr:
		// Re-slicing a packed column (the c.writes[:0] reset idiom)
		// stays packed.
		return c.taintOf(x.X, state)
	case *ast.CallExpr:
		// Conversions preserve packedness (int32(pk), int(pk)).
		if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return c.taintOf(x.Args[0], state)
		}
	}
	return 0
}

// isPackedColumn reports whether e reads a packed write-column field
// (directly or through one level of indexing: b.wPacked[k]).
func (c *checker) isPackedColumn(e ast.Expr) bool {
	e = ast.Unparen(e)
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(idx.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	selection := c.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return false
	}
	owner, field := fieldOwner(selection.Recv(), selection.Index())
	return packedColumns[owner][field]
}

// packExpr recognizes the blessed packing shape: base<<1 or base<<1|bit
// (any |-composition where one side is the shift). Returns the site
// with the address operand's object resolved, or nil.
func (c *checker) packExpr(e ast.Expr) *packSite {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	if be.Op == token.OR {
		if ps := c.shiftSite(be.X); ps != nil {
			return ps
		}
		return c.shiftSite(be.Y)
	}
	return c.shiftSite(be)
}

// shiftSite matches base<<1 and resolves the base identifier through
// conversions (int32(addr)<<1 packs addr).
func (c *checker) shiftSite(e ast.Expr) *packSite {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.SHL || !isIntLit(be.Y, "1") {
		return nil
	}
	base := ast.Unparen(be.X)
	for {
		call, ok := base.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			break
		}
		tv, ok := c.pass.TypesInfo.Types[call.Fun]
		if !ok || !tv.IsType() {
			break
		}
		base = ast.Unparen(call.Args[0])
	}
	ps := &packSite{expr: be}
	if id, ok := base.(*ast.Ident); ok {
		if obj := identObj(c.pass, id); obj != nil {
			ps.base = obj
		}
	}
	return ps
}

// checkNode inspects one replayed node for misuse of packed values and
// for raw stores into packed columns.
func (c *checker) checkNode(n ast.Node, state cfg.Facts) {
	cfg.Inspect(n, false, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			c.checkColumnStores(x, state)
			// Op-assignments on packed variables: only |= 1 is part of
			// the packing idiom.
			if x.Tok != token.ASSIGN && x.Tok != token.DEFINE && len(x.Lhs) == 1 {
				t := c.taintOf(x.Lhs[0], state) | c.defTaint(x.Lhs[0], state)
				if t != 0 && !(x.Tok == token.OR_ASSIGN && isIntLit(x.Rhs[0], "1")) {
					c.reportRaw(x.Pos(), x.Tok.String())
				}
			}
		case *ast.BinaryExpr:
			c.checkArithmetic(x, state)
		case *ast.IndexExpr:
			if c.exprPacked(x.Index, state) {
				c.report(x.Index.Pos(),
					"packed addr<<1|bit value used as a raw index; unpack with >>1 first")
			}
		case *ast.CallExpr:
			c.checkColumnAppend(x, state)
		}
		return true
	})
}

// defTaint returns the blessed bit for identifiers with a recorded pack
// definition (op-assign checks run on the packing variable itself).
func (c *checker) defTaint(e ast.Expr, state cfg.Facts) uint64 {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0
	}
	obj := identObj(c.pass, id)
	if obj == nil {
		return 0
	}
	return state[obj] & blessedBit
}

// exprPacked reports whether an expression carries packed (unblessed
// consumption matters only for column-sourced values) taint.
func (c *checker) exprPacked(e ast.Expr, state cfg.Facts) bool {
	return c.taintOf(e, state)&packedBit != 0
}

// checkArithmetic flags raw arithmetic with a packed operand. Allowed:
// >>1 and &1 (unpacking), |1 (setting the payload bit), and pure
// comparisons; everything else decodes address bits in place.
func (c *checker) checkArithmetic(be *ast.BinaryExpr, state cfg.Facts) {
	xPacked := c.exprPacked(be.X, state)
	yPacked := c.exprPacked(be.Y, state)
	if !xPacked && !yPacked {
		return
	}
	switch be.Op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return // comparisons don't decode the value
	case token.SHR:
		if xPacked && isIntLit(be.Y, "1") {
			return // pk>>1: the unpack
		}
	case token.AND:
		if xPacked && isIntLit(be.Y, "1") || yPacked && isIntLit(be.X, "1") {
			return // pk&1: the payload
		}
	case token.OR:
		if xPacked && isIntLit(be.Y, "1") || yPacked && isIntLit(be.X, "1") {
			return // pk|1: setting the payload bit
		}
	case token.LAND, token.LOR:
		return // boolean context; operands are comparisons already checked
	}
	c.reportRaw(be.OpPos, be.Op.String())
}

// checkColumnStores verifies that values assigned into packed columns
// are pack-derived.
func (c *checker) checkColumnStores(st *ast.AssignStmt, state cfg.Facts) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		if !c.isPackedColumn(lhs) {
			continue
		}
		c.checkColumnValue(st.Rhs[i], state)
	}
}

// checkColumnAppend verifies append(packedColumn, v...) stores only
// pack-derived values.
func (c *checker) checkColumnAppend(call *ast.CallExpr, state cfg.Facts) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if !c.isPackedColumn(call.Args[0]) {
		return
	}
	if call.Ellipsis != token.NoPos {
		// append(col, otherCol...): a column-to-column copy is fine;
		// anything else must itself be a packed column.
		if !c.isPackedColumn(call.Args[1]) && !c.exprPacked(call.Args[1], state) {
			c.report(call.Args[1].Pos(),
				"bulk append into a packed write column from a non-packed slice")
		}
		return
	}
	for _, arg := range call.Args[1:] {
		c.checkColumnValue(arg, state)
	}
}

// checkColumnValue checks one value entering a packed column: it must
// be a (guarded) pack expression, a variable defined by one, or a value
// read from a packed column. Builtin append calls are skipped here —
// checkColumnAppend already vets their staged values, so the enclosing
// `col = append(col, ...)` assignment is not re-checked as a raw store.
func (c *checker) checkColumnValue(v ast.Expr, state cfg.Facts) {
	if call, ok := ast.Unparen(v).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
	}
	if ps := c.packExpr(v); ps != nil {
		ps.block = c.block
		c.checkGuard(ps, v.Pos())
		return
	}
	if id, ok := ast.Unparen(v).(*ast.Ident); ok {
		obj := identObj(c.pass, id)
		if obj != nil {
			if ps := c.packDef[obj]; ps != nil {
				c.checkGuard(ps, v.Pos())
				return
			}
			if state[obj]&(packedBit|blessedBit) != 0 {
				return
			}
		}
	}
	if c.exprPacked(v, state) {
		return
	}
	c.report(v.Pos(),
		"value stored into a packed write column is not derived as addr<<1|bit; pack the address (and range-check it) first")
}

// checkGuard verifies the pack site's address operand is range-checked
// on every path from the entry: delete every block carrying a
// comparison that mentions the address and ask whether the pack site's
// block is still reachable. Still reachable means some path packs the
// address without ever comparing it.
func (c *checker) checkGuard(ps *packSite, at token.Pos) {
	if ps.base == nil {
		// Packing a non-identifier (function call result, field read):
		// nothing to anchor the guard to; treat as unguarded so the
		// address is named and checked locally.
		c.report(at,
			"packed address is not a locally range-checked variable; bind it to a checked local before packing")
		return
	}
	guards := make(map[*cfg.Block]bool)
	for _, b := range c.graph.Blocks {
		for _, n := range b.Nodes {
			if c.nodeGuards(n, ps.base) {
				guards[b] = true
			}
		}
	}
	if len(guards) == 0 || c.graph.ReachableWithout(guards)[ps.block] {
		c.report(at,
			"packed address %q is not range-checked on every path before addr<<1|bit packing (cells are capped at 1<<30; see InitBits)", ps.base.Name())
	}
}

// nodeGuards reports whether a node contains a comparison naming obj.
func (c *checker) nodeGuards(n ast.Node, obj types.Object) bool {
	found := false
	cfg.Inspect(n, false, func(m ast.Node) bool {
		be, ok := m.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if c.mentions(be.X, obj) || c.mentions(be.Y, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentions reports whether an expression references obj (through
// conversions and arithmetic).
func (c *checker) mentions(e ast.Expr, obj types.Object) bool {
	found := false
	cfg.Inspect(e, false, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && identObj(c.pass, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func (c *checker) reportRaw(pos token.Pos, op string) {
	c.report(pos,
		"raw %s arithmetic on a packed addr<<1|bit value; unpack with >>1 / &1 before computing", op)
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.Allowlisted(c.info.File, pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// isIntLit matches an integer literal with the given text.
func isIntLit(e ast.Expr, text string) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}

// fieldOwner resolves the named struct type declaring a selected field,
// walking the embedding path.
func fieldOwner(t types.Type, index []int) (owner, field string) {
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		name := ""
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		fv := st.Field(i)
		owner, field = name, fv.Name()
		t = fv.Type()
	}
	return owner, field
}

// identObj resolves an identifier through Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
