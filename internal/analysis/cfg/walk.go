package cfg

import "go/ast"

// Inspect walks the sub-expressions of one CFG node the way analyzers
// replaying a block need: a RangeStmt node contributes only its range
// clause (key, value, ranged expression) because its body statements
// live in their own blocks, and function literal bodies are entered only
// when funcLits is true (a closure's statements are not part of the
// enclosing graph; analyzers that care recurse with their own sub-graph).
// fn follows the ast.Inspect contract: returning false prunes the walk
// below the node. The FuncLit node itself is always visited, so an
// analyzer can flag the literal even when it does not descend.
func Inspect(n ast.Node, funcLits bool, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if !fn(r) {
			return
		}
		for _, sub := range []ast.Expr{r.Key, r.Value, r.X} {
			if sub != nil {
				Inspect(sub, funcLits, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && !funcLits && m != n {
			fn(m)
			return false
		}
		return fn(m)
	})
}
