package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses one function declaration and builds its graph.
func buildFunc(t *testing.T, body string) (*Graph, *token.FileSet) {
	t.Helper()
	src := "package p\n" + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return New(fd.Name.Name, fd.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// markBlock finds the block whose nodes include a call mark("name").
func markBlock(t *testing.T, g *Graph, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "mark" {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Value == `"`+name+`"` {
				return b
			}
		}
	}
	t.Fatalf("no block contains mark(%q)\n%s", name, g.Dump(nil))
	return nil
}

// pathExists reports whether to is reachable from from along Succs.
func pathExists(from, to *Block) bool {
	seen := map[*Block]bool{from: true}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func TestLabeledBreakAndContinue(t *testing.T) {
	g, _ := buildFunc(t, `
func f(xs [][]int) {
outer:
	for i := range xs {
		for j := range xs[i] {
			if xs[i][j] < 0 {
				break outer
			}
			if xs[i][j] == 0 {
				continue outer
			}
			mark("inner")
		}
		mark("outerTail")
	}
	mark("done")
}`)
	inner := markBlock(t, g, "inner")
	tail := markBlock(t, g, "outerTail")
	done := markBlock(t, g, "done")
	reach := g.Reachable()
	for _, b := range []*Block{inner, tail, done} {
		if !reach[b] {
			t.Errorf("block %d (%s) should be reachable", b.Index, b.Kind)
		}
	}
	// break outer jumps straight to the code after the outer loop; the
	// break block must reach "done" without passing "outerTail".
	var breakBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
				breakBlk = b
			}
		}
	}
	if breakBlk == nil {
		t.Fatal("no break block found")
	}
	if len(breakBlk.Succs) != 1 || !pathExists(breakBlk.Succs[0], done) {
		t.Errorf("break outer must target the outer loop's after block")
	}
	if pathExists(breakBlk.Succs[0], tail) {
		t.Errorf("break outer must not flow back into the outer loop body")
	}
	// continue outer skips the rest of the outer body: its successor
	// must reach "inner" again (around the loop) but tail must not be
	// its immediate successor.
	var contBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.CONTINUE {
				contBlk = b
			}
		}
	}
	if contBlk == nil {
		t.Fatal("no continue block found")
	}
	if len(contBlk.Succs) != 1 {
		t.Fatalf("continue block has %d successors, want 1", len(contBlk.Succs))
	}
	if contBlk.Succs[0] == tail {
		t.Errorf("continue outer must not fall into the outer loop tail")
	}
}

func TestGoto(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	if n > 0 {
		goto skip
	}
	mark("before")
skip:
	mark("after")
}`)
	before := markBlock(t, g, "before")
	after := markBlock(t, g, "after")
	reach := g.Reachable()
	if !reach[before] || !reach[after] {
		t.Fatalf("both arms should be reachable")
	}
	// The goto block's successor must be the label block, and the path
	// through the goto must not pass "before".
	var gotoBlk *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlk = b
			}
		}
	}
	if gotoBlk == nil {
		t.Fatal("no goto block")
	}
	if len(gotoBlk.Succs) != 1 || !pathExists(gotoBlk.Succs[0], after) {
		t.Errorf("goto must target the label block reaching mark(after)")
	}
	if pathExists(gotoBlk.Succs[0], before) {
		t.Errorf("goto skip must not reach mark(before)")
	}
}

func TestGotoBackward(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
retry:
	mark("body")
	if n > 0 {
		n--
		goto retry
	}
	mark("done")
}`)
	body := markBlock(t, g, "body")
	done := markBlock(t, g, "done")
	if !pathExists(body, body) {
		// Backward goto forms a loop: body must reach itself.
		t.Errorf("backward goto must create a cycle through the label block")
	}
	if !pathExists(body, done) {
		t.Errorf("fallthrough exit must stay reachable")
	}
}

func TestDeferInLoop(t *testing.T) {
	g, _ := buildFunc(t, `
func f(xs []func()) {
	for _, x := range xs {
		defer x()
	}
	defer mark("d")
	mark("done")
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	// The deferred call in the loop is recorded and the loop body block
	// carries the DeferStmt node (its arguments evaluate per iteration).
	foundInLoop := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok && strings.HasPrefix(b.Kind, "range.") {
				foundInLoop = true
			}
		}
	}
	if !foundInLoop {
		t.Errorf("defer statement inside the loop must sit in a range body block")
	}
	if !g.Reachable()[markBlock(t, g, "done")] {
		t.Errorf("code after defers must stay reachable")
	}
}

func TestShortCircuitConditions(t *testing.T) {
	g, _ := buildFunc(t, `
func f(addr, n int) {
	if addr < 0 || addr >= n {
		mark("fail")
		return
	}
	mark("ok")
}`)
	ok := markBlock(t, g, "ok")
	fail := markBlock(t, g, "fail")
	reach := g.Reachable()
	if !reach[ok] || !reach[fail] {
		t.Fatal("both branches must be reachable")
	}
	// Each comparison must sit in its own block, and the second operand
	// must be skippable: the graph has a path past the condition that
	// avoids the block evaluating addr >= n (the || short-circuits).
	var first, second *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			be, okCast := n.(*ast.BinaryExpr)
			if !okCast {
				continue
			}
			switch be.Op {
			case token.LSS:
				first = b
			case token.GEQ:
				second = b
			}
		}
	}
	if first == nil || second == nil {
		t.Fatalf("both comparisons must appear as condition nodes\n%s", g.Dump(nil))
	}
	if first == second {
		t.Fatalf("short-circuit operands must split into separate blocks")
	}
	// Removing the *first* comparison's block must cut off the body:
	// every path crosses it.
	if g.ReachableWithout(map[*Block]bool{first: true})[ok] {
		t.Errorf("every path to the body must evaluate the first operand")
	}
	// Removing only the second must NOT cut off the body (short-circuit
	// edge around it exists).
	if !g.ReachableWithout(map[*Block]bool{second: true})[ok] {
		t.Errorf("the second operand must be skippable via the short-circuit edge")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	switch n {
	case 0:
		mark("zero")
		fallthrough
	case 1:
		mark("one")
	default:
		mark("def")
	}
	mark("after")
}`)
	zero := markBlock(t, g, "zero")
	one := markBlock(t, g, "one")
	def := markBlock(t, g, "def")
	after := markBlock(t, g, "after")
	if !pathExists(zero, one) {
		t.Errorf("fallthrough must wire case 0 into case 1's body")
	}
	if pathExists(zero, def) {
		t.Errorf("fallthrough must not reach the default clause")
	}
	for _, b := range []*Block{zero, one, def} {
		if !pathExists(b, after) {
			t.Errorf("clause %q must flow to the after block", b.Kind)
		}
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	switch n {
	case 0:
		mark("zero")
	}
	mark("after")
}`)
	zero := markBlock(t, g, "zero")
	after := markBlock(t, g, "after")
	// With no default the dispatch can skip every clause: removing the
	// only case block must leave "after" reachable.
	if !g.ReachableWithout(map[*Block]bool{zero: true})[after] {
		t.Errorf("switch without default must have a skip edge to after")
	}
}

func TestReturnMakesTailUnreachable(t *testing.T) {
	g, _ := buildFunc(t, `
func f() int {
	return 1
	mark("dead")
}`)
	dead := markBlock(t, g, "dead")
	if g.Reachable()[dead] {
		t.Errorf("code after return must be unreachable")
	}
}

func TestPanicIsTerminal(t *testing.T) {
	g, _ := buildFunc(t, `
func f(n int) {
	if n < 0 {
		panic("neg")
		mark("dead")
	}
	mark("ok")
}`)
	if g.Reachable()[markBlock(t, g, "dead")] {
		t.Errorf("code after panic must be unreachable")
	}
	if !g.Reachable()[markBlock(t, g, "ok")] {
		t.Errorf("the non-panicking branch must stay reachable")
	}
}

func TestTypeSwitchAndSelect(t *testing.T) {
	g, _ := buildFunc(t, `
func f(v any, ch chan int) {
	switch v.(type) {
	case int:
		mark("int")
	case string:
		mark("str")
	}
	select {
	case x := <-ch:
		_ = x
		mark("recv")
	default:
		mark("none")
	}
	mark("end")
}`)
	end := markBlock(t, g, "end")
	for _, name := range []string{"int", "str", "recv", "none"} {
		b := markBlock(t, g, name)
		if !g.Reachable()[b] {
			t.Errorf("clause %s must be reachable", name)
		}
		if !pathExists(b, end) {
			t.Errorf("clause %s must flow to the end", name)
		}
	}
}

func TestForwardTaintThroughLoop(t *testing.T) {
	// A fact set at loop entry must propagate around the back edge and
	// be visible in the loop head on the second iteration.
	g, _ := buildFunc(t, `
func f(n int) {
	x := 0
	for i := 0; i < n; i++ {
		x = x + i
		mark("body")
	}
	mark("done")
}`)
	// Use a synthetic transfer: mark the assignment's position by
	// setting a bit for every node seen; the body's in-state at
	// fixpoint must include the fact produced inside the body itself
	// (flowed around the loop).
	type probe struct{ bodySeen bool }
	var p probe
	in := g.Forward(func(n ast.Node, state Facts) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" {
					state[nil] |= 1 // nil object: function-global marker bit
					p.bodySeen = true
				}
			}
		}
	})
	if !p.bodySeen {
		t.Fatal("transfer never saw the body")
	}
	body := markBlock(t, g, "body")
	if in[body][nil]&1 == 0 {
		t.Errorf("fact set in the loop body must flow around the back edge into the body's in-state")
	}
	done := markBlock(t, g, "done")
	if in[done][nil]&1 == 0 {
		t.Errorf("fact set in the loop body must flow to the loop exit")
	}
}

func TestGoStatementSpawnSites(t *testing.T) {
	g, _ := buildFunc(t, `
func f(w *W, ch chan int) {
	go w.loop()
	go func() {
		for {
			<-ch
		}
	}()
	mark("after")
}`)
	if len(g.Gos) != 2 {
		t.Fatalf("got %d spawn sites, want 2\n%s", len(g.Gos), g.Dump(nil))
	}
	// Spawning never blocks the spawner: the code after both go
	// statements falls through to the exit.
	after := markBlock(t, g, "after")
	if !g.Reachable()[after] || !g.ReachesExit()[after] {
		t.Errorf("spawner must fall through past go statements to the exit")
	}
	// The spawned literal's body is NOT inlined: its infinite receive
	// loop must not appear as blocks of the spawner's graph.
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Kind, "for.") {
			t.Errorf("spawned function literal body leaked into the spawner's graph (block %d %s)", b.Index, b.Kind)
		}
	}
}

func TestSelectClauseKinds(t *testing.T) {
	g, _ := buildFunc(t, `
func f(in chan int, out chan int) {
	select {
	case v := <-in:
		_ = v
		mark("recv")
	case out <- 1:
		mark("send")
	default:
		mark("none")
	}
}`)
	kinds := map[string]bool{}
	for _, b := range g.Blocks {
		kinds[b.Kind] = true
	}
	for _, want := range []string{"select.recv", "select.send", "select.default"} {
		if !kinds[want] {
			t.Errorf("missing clause kind %s\n%s", want, g.Dump(nil))
		}
	}
}

func TestBlockingSelectHasNoSkipEdge(t *testing.T) {
	g, _ := buildFunc(t, `
func f(in chan int) {
	select {
	case <-in:
		mark("recv")
	}
	mark("after")
}`)
	// Without a default clause the dispatch cannot skip the
	// communication: deleting the only clause block must cut off
	// everything after the select.
	recv := markBlock(t, g, "recv")
	after := markBlock(t, g, "after")
	if g.ReachableWithout(map[*Block]bool{recv: true})[after] {
		t.Errorf("select without default must not have an edge around its clauses")
	}
}

func TestDeferUnlockRecorded(t *testing.T) {
	g, _ := buildFunc(t, `
func f(mu sync.Locker, cleanup func()) {
	mu.Lock()
	defer mu.Unlock()
	defer cleanup()
	mark("body")
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	if len(g.DeferUnlocks) != 1 {
		t.Fatalf("got %d defer-unlocks, want 1 (cleanup() is not a mutex release)", len(g.DeferUnlocks))
	}
	if !IsUnlockCall(g.DeferUnlocks[0].Call) {
		t.Errorf("recorded defer-unlock does not match IsUnlockCall")
	}
}

func TestReachesExit(t *testing.T) {
	// A loop whose only content is a channel receive has no path to the
	// function exit: its blocks are reachable but not exit-reaching —
	// exactly the goroutine-leak shape goleak reports.
	g, _ := buildFunc(t, `
func f(ch chan int) {
	for {
		v := <-ch
		_ = v
		mark("loop")
	}
}`)
	loop := markBlock(t, g, "loop")
	if !g.Reachable()[loop] {
		t.Fatal("loop body must be reachable")
	}
	if g.ReachesExit()[loop] {
		t.Errorf("an escapeless receive loop must not reach the exit")
	}

	// The same loop with a guarded return has an exit path from every
	// reachable block.
	g2, _ := buildFunc(t, `
func f(ch chan int, done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
			mark("work")
		}
	}
}`)
	exitReach := g2.ReachesExit()
	for b := range g2.Reachable() {
		if !exitReach[b] {
			t.Errorf("block %d (%s) is reachable but cannot reach the exit\n%s", b.Index, b.Kind, g2.Dump(nil))
		}
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g, _ := buildFunc(t, `
func f() {
	select {}
}`)
	// select{} never proceeds: no reachable path to the exit exists.
	if g.ReachesExit()[g.Entry] {
		t.Errorf("select{} must cut the entry off from the exit")
	}
}

func TestDumpIsStable(t *testing.T) {
	g, fset := buildFunc(t, `
func f(a, b bool) {
	if a && b {
		mark("x")
	}
}`)
	d1, d2 := g.Dump(fset), g.Dump(fset)
	if d1 != d2 {
		t.Errorf("Dump must be deterministic")
	}
	if !strings.Contains(d1, "cfg f:") || !strings.Contains(d1, "cond.&&") {
		t.Errorf("dump missing expected headers:\n%s", d1)
	}
}

func TestDumpShowsConcurrencyConstructs(t *testing.T) {
	g, fset := buildFunc(t, `
func f(mu sync.Locker, ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	go worker(ch)
	select {
	case <-ch:
	default:
	}
	ch <- 1
	<-ch
}`)
	d := g.Dump(fset)
	for _, want := range []string{
		"1 spawns", "(1 unlock at exit)",
		"go worker", "defer-unlock mu.Unlock",
		"select.recv", "select.default",
		"send", "recv",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}
