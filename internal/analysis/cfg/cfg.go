// Package cfg builds intraprocedural control-flow graphs over Go
// function bodies for the reprolint dataflow analyzers (hotpathalloc,
// colescape, bitaddr). Like the rest of the analysis framework it is a
// deliberately small, dependency-free mirror of the x/tools shape
// (golang.org/x/tools/go/cfg): this build environment has no module
// proxy, so the builder is implemented on the standard library alone.
//
// The graph is syntactic — it needs no type information — and models the
// control constructs the contract analyzers care about:
//
//   - if/else, for (init/cond/post), range, plain blocks;
//   - switch and type switch, including fallthrough;
//   - select, with each communication clause in its own kinded block
//     (select.recv / select.send / select.default), so analyzers can tell
//     a blocking dispatch from a non-blocking one and find the
//     `case <-done:` exit clauses the goroutine-lifecycle check proves
//     dominance with;
//   - labeled break/continue, goto, and labels as join points;
//   - short-circuit && and || in branch conditions: each operand
//     evaluates in its own block, so a guard like `addr < 0 || addr >= n`
//     contributes blocks that every fallthrough path must cross;
//   - return and calls to panic as terminal edges to the exit block.
//
// Concurrency constructs are surfaced for the PR-10 analyzers: go
// statements are straight-line nodes for the spawner but every spawn site
// is recorded in Gos (the spawned body is a separate graph the analyzer
// builds, like any function literal), and channel sends/receives stay in
// their blocks as ordinary nodes where a held-lock dataflow can see them.
//
// defer is recorded (Defers) but deferred execution is not given edges:
// the analyzers treat deferred calls as running at every exit, which is
// sound for the may-analyses built here. Deferred mutex releases get one
// refinement: a `defer mu.Unlock()` is additionally recorded in
// DeferUnlocks, and its release happens on the exit edge only — the
// lock-discipline analyzer keeps the mutex held from the Lock through
// every remaining node of the body, never releasing it mid-block.
// Function literal bodies are not inlined into the enclosing graph;
// analyzers walk them separately.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: statements (and branch-condition
// expressions) that execute in sequence, with control transferring to
// one of Succs at the end. A block with no successors falls off the end
// of the function or transferred control to Exit.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across
	// builds of the same function; block 0 is the entry).
	Index int
	// Kind is a human-readable tag for dumps ("entry", "if.then",
	// "for.body", "cond.&&", "label.retry", …).
	Kind string
	// Nodes are the statements and condition expressions of the block in
	// execution order. Control statements contribute their components
	// (an if contributes its init and cond; the branches are separate
	// blocks), so every node here is straight-line.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Name labels the graph in dumps (function symbol).
	Name string
	// Blocks lists every block; Blocks[0] is Entry, Blocks[1] is Exit.
	Blocks []*Block
	// Entry is the function entry; Exit is the single synthetic exit
	// every return/panic/fallthrough-off-the-end edge targets.
	Entry, Exit *Block
	// Defers are the deferred calls of the body in source order; they
	// run at every exit (no explicit edges are built).
	Defers []*ast.CallExpr
	// DeferUnlocks are the deferred mutex releases (`defer mu.Unlock()`
	// / `defer mu.RUnlock()`, matched syntactically by method name) in
	// source order. A deferred unlock releases on the exit edge only:
	// the lock stays held through every node after the Lock, which is
	// what makes "blocking call while a mutex is held" checkable.
	DeferUnlocks []*ast.DeferStmt
	// Gos are the go statements of the body in source order — the spawn
	// sites the goroutine-lifecycle analyzer walks. The spawned call is
	// a straight-line node for the spawner (launching never blocks);
	// the spawned body is analyzed as its own graph.
	Gos []*ast.GoStmt
}

// New builds the control-flow graph of one function body. name labels
// dumps; body may be any *ast.BlockStmt (the builder is also used for
// function literals by analyzers that need it).
func New(name string, body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{Name: name}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.labels = make(map[string]*Block)
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	return b.g
}

// Reachable returns the set of blocks reachable from the entry.
// Analyzers use it to skip dead code (statements after an unconditional
// return never execute, so a finding there would be noise).
func (g *Graph) Reachable() map[*Block]bool {
	return g.reachableFrom(g.Entry, nil)
}

// ReachableWithout returns the blocks reachable from the entry when the
// given blocks are removed from the graph — the primitive behind guard
// checking: if a site stays reachable with every guard block deleted,
// some path reaches it unguarded.
func (g *Graph) ReachableWithout(removed map[*Block]bool) map[*Block]bool {
	return g.reachableFrom(g.Entry, removed)
}

// ReachesExit returns the set of blocks from which the exit block is
// reachable, computed over reversed edges. It is the goroutine-lifecycle
// primitive: a spawned body has a statically provable exit path exactly
// when every reachable block is in this set — a reachable block outside
// it is a loop (or a forever-blocking select) control can enter but
// never leave.
func (g *Graph) ReachesExit() map[*Block]bool {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	seen := map[*Block]bool{g.Exit: true}
	stack := []*Block{g.Exit}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[b] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return seen
}

func (g *Graph) reachableFrom(start *Block, removed map[*Block]bool) map[*Block]bool {
	seen := make(map[*Block]bool)
	if removed[start] {
		return seen
	}
	stack := []*Block{start}
	seen[start] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] && !removed[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// builder carries the construction state. cur is the block statements
// are currently appended to; nil means control cannot reach this point
// (after a return/goto/break), in which case the next statement starts a
// fresh, predecessor-less block so dead code is represented but never
// marked reachable.
type builder struct {
	g      *Graph
	cur    *Block
	labels map[string]*Block
	// frames is the enclosing breakable/continuable construct stack.
	frames []frame
	// pendingLabel is the label of the labeled statement being entered,
	// consumed by the next loop/switch/select handler.
	pendingLabel string
}

// frame is one enclosing breakable construct: break targets brk;
// continue (loops only) targets cont.
type frame struct {
	label     string
	brk, cont *Block
	isLoop    bool
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// add appends a straight-line node to the current block, starting a
// dead block first if control cannot reach here.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// start makes (and returns) a new block and moves construction into it,
// wiring an edge from the current block when control can fall through.
func (b *builder) start(kind string) *Block {
	blk := b.newBlock(kind)
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch/select handler.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st)
	case *ast.RangeStmt:
		b.rangeStmt(st)
	case *ast.SwitchStmt:
		b.switchStmt(st)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st)
	case *ast.SelectStmt:
		b.selectStmt(st)
	case *ast.LabeledStmt:
		b.labeledStmt(st)
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ReturnStmt:
		b.add(st)
		if b.cur != nil {
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = nil
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, st.Call)
		if IsUnlockCall(st.Call) {
			b.g.DeferUnlocks = append(b.g.DeferUnlocks, st)
		}
		b.add(st)
	case *ast.GoStmt:
		b.g.Gos = append(b.g.Gos, st)
		b.add(st)
	case *ast.ExprStmt:
		b.add(st)
		if isPanic(st.X) {
			if b.cur != nil {
				b.edge(b.cur, b.g.Exit)
			}
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// nothing
	default:
		// Assignments, declarations, sends, inc/dec: straight-line.
		b.add(st)
	}
}

// IsUnlockCall matches a mutex release by method name (x.Unlock /
// x.RUnlock). The builder is syntactic; analyzers that rely on the match
// re-check the receiver's type before trusting it.
func IsUnlockCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && (sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock")
}

// isPanic reports whether the expression statement is a call to the
// panic builtin (control does not continue past it).
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// cond appends the evaluation of a branch condition, giving each
// short-circuit operand its own block: in `a && b`, b evaluates in a
// block entered from a's block, with a short-circuit edge around it —
// so a dataflow fact established by evaluating a (a bounds check, say)
// holds on every path past the condition, while facts from b hold only
// on the non-short-circuit path.
func (b *builder) cond(e ast.Expr) {
	if x, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && (x.Op == token.LAND || x.Op == token.LOR) {
		b.cond(x.X)
		lhs := b.cur
		rhs := b.newBlock("cond." + x.Op.String())
		b.edge(lhs, rhs)
		b.cur = rhs
		b.cond(x.Y)
		merge := b.newBlock("cond.merge")
		b.edge(b.cur, merge)
		b.edge(lhs, merge) // short-circuit around the right operand
		b.cur = merge
		return
	}
	b.add(e)
}

func (b *builder) ifStmt(st *ast.IfStmt) {
	b.takeLabel()
	if st.Init != nil {
		b.add(st.Init)
	}
	b.cond(st.Cond)
	condBlk := b.cur
	after := b.newBlock("if.after")

	then := b.newBlock("if.then")
	b.edge(condBlk, then)
	b.cur = then
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, after)
	}

	if st.Else != nil {
		els := b.newBlock("if.else")
		b.edge(condBlk, els)
		b.cur = els
		b.stmt(st.Else)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	} else {
		b.edge(condBlk, after)
	}
	b.cur = after
}

func (b *builder) forStmt(st *ast.ForStmt) {
	label := b.takeLabel()
	if st.Init != nil {
		b.add(st.Init)
	}
	head := b.start("for.head")
	if st.Cond != nil {
		b.cond(st.Cond)
	}
	headEnd := b.cur
	after := b.newBlock("for.after")
	if st.Cond != nil {
		b.edge(headEnd, after)
	}
	var post *Block
	cont := head
	if st.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, st.Post)
		b.edge(post, head)
		cont = post
	}
	body := b.newBlock("for.body")
	b.edge(headEnd, body)
	b.cur = body
	b.frames = append(b.frames, frame{label: label, brk: after, cont: cont, isLoop: true})
	b.stmts(st.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.cur = after
}

func (b *builder) rangeStmt(st *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.start("range.head")
	// The RangeStmt node itself carries the ranged expression and the
	// per-iteration key/value definitions; transfer functions handle it.
	head.Nodes = append(head.Nodes, st)
	after := b.newBlock("range.after")
	b.edge(head, after)
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.cur = body
	b.frames = append(b.frames, frame{label: label, brk: after, cont: head, isLoop: true})
	b.stmts(st.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = after
}

func (b *builder) switchStmt(st *ast.SwitchStmt) {
	label := b.takeLabel()
	if st.Init != nil {
		b.add(st.Init)
	}
	if st.Tag != nil {
		b.add(st.Tag)
	}
	b.caseClauses(label, st.Body.List, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
		nodes := make([]ast.Node, 0, len(cc.List))
		for _, e := range cc.List {
			nodes = append(nodes, e)
		}
		return nodes, cc.Body, cc.List == nil
	})
}

func (b *builder) typeSwitchStmt(st *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if st.Init != nil {
		b.add(st.Init)
	}
	b.add(st.Assign)
	b.caseClauses(label, st.Body.List, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
		return nil, cc.Body, cc.List == nil
	})
}

// caseClauses builds the clause blocks of a switch/type switch: every
// clause is entered from the dispatch block, a clause ending in
// fallthrough also flows into the next clause's body, and break (or
// falling off a clause) targets the after block. Without a default
// clause the dispatch can skip every case.
func (b *builder) caseClauses(label string, list []ast.Stmt, split func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool)) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock("dead")
		b.cur = dispatch
	}
	after := b.newBlock("switch.after")
	hasDefault := false
	entries := make([]*Block, len(list))
	for i, cs := range list {
		cc := cs.(*ast.CaseClause)
		nodes, _, isDefault := split(cc)
		kind := "case"
		if isDefault {
			kind = "default"
			hasDefault = true
		}
		entries[i] = b.newBlock(kind)
		entries[i].Nodes = append(entries[i].Nodes, nodes...)
		b.edge(dispatch, entries[i])
	}
	if !hasDefault {
		b.edge(dispatch, after)
	}
	b.frames = append(b.frames, frame{label: label, brk: after})
	for i, cs := range list {
		cc := cs.(*ast.CaseClause)
		_, body, _ := split(cc)
		b.cur = entries[i]
		fallsThrough := false
		for j, s := range body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == len(body)-1 {
				fallsThrough = true
				break
			}
			b.stmt(s)
		}
		if fallsThrough && i+1 < len(entries) {
			if b.cur != nil {
				b.edge(b.cur, entries[i+1])
			}
		} else if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *builder) selectStmt(st *ast.SelectStmt) {
	label := b.takeLabel()
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock("dead")
		b.cur = dispatch
	}
	after := b.newBlock("select.after")
	b.frames = append(b.frames, frame{label: label, brk: after})
	for _, cs := range st.Body.List {
		cc := cs.(*ast.CommClause)
		clause := b.newBlock(commKind(cc))
		b.edge(dispatch, clause)
		if cc.Comm != nil {
			clause.Nodes = append(clause.Nodes, cc.Comm)
		}
		b.cur = clause
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// commKind names a select clause block by its communication operation, so
// analyzers (and -cfg-debug readers) can find receive clauses — the
// `case <-ctx.Done():` exit edges — and tell a blocking select from one
// with a default.
func commKind(cc *ast.CommClause) string {
	switch cc.Comm.(type) {
	case nil:
		return "select.default"
	case *ast.SendStmt:
		return "select.send"
	default:
		// ExprStmt (`<-ch`) or AssignStmt (`v := <-ch`).
		return "select.recv"
	}
}

func (b *builder) labeledStmt(st *ast.LabeledStmt) {
	name := st.Label.Name
	target := b.labels[name]
	if target == nil {
		target = b.newBlock("label." + name)
		b.labels[name] = target
	}
	if b.cur != nil {
		b.edge(b.cur, target)
	}
	b.cur = target
	switch st.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = name
	}
	b.stmt(st.Stmt)
	b.pendingLabel = ""
}

func (b *builder) branchStmt(st *ast.BranchStmt) {
	b.add(st)
	switch st.Tok {
	case token.GOTO:
		name := st.Label.Name
		target := b.labels[name]
		if target == nil {
			target = b.newBlock("label." + name)
			b.labels[name] = target
		}
		b.edge(b.cur, target)
		b.cur = nil
	case token.BREAK:
		if t := b.frameTarget(st, false); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := b.frameTarget(st, true); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Non-final fallthrough is a compile error; the clause builder
		// handles the legal final position. Nothing to wire here.
	}
}

// frameTarget resolves break/continue against the enclosing construct
// stack, innermost first; continue skips non-loop frames.
func (b *builder) frameTarget(st *ast.BranchStmt, isContinue bool) *Block {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if isContinue && !f.isLoop {
			continue
		}
		if label != "" && f.label != label {
			continue
		}
		if isContinue {
			return f.cont
		}
		return f.brk
	}
	return nil
}
