package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Facts is the dataflow lattice element used by the analyzers: a bitmask
// per object. An absent object is the bottom element (no facts). What
// the bits mean is analyzer-defined — colescape uses bit 0 for
// "tainted by pooled storage" and one bit per parameter for escape
// summaries; bitaddr uses bits for "packed value" and "blessed pack
// expression".
type Facts map[types.Object]uint64

// Clone copies the fact set; analyzers use it to replay a block's
// transfer function from the fixpoint in-state Forward returned.
func (f Facts) Clone() Facts { return f.clone() }

// clone copies a fact set.
func (f Facts) clone() Facts {
	c := make(Facts, len(f))
	for k, v := range f { //lint:maporder-ok copying into a map; iteration order invisible
		c[k] = v
	}
	return c
}

// union merges other into f, reporting whether f grew.
func (f Facts) union(other Facts) bool {
	grew := false
	for k, v := range other { //lint:maporder-ok merging into a map; iteration order invisible
		if f[k]&v != v {
			f[k] |= v
			grew = true
		}
	}
	return grew
}

// Forward runs a forward may-dataflow analysis over the graph: the
// in-state of a block is the union of its predecessors' out-states, and
// transfer is applied to each node in order to produce the out-state.
// It returns the fixpoint IN-state of every block; analyzers then replay
// transfer over a block's nodes (checking their sinks as they go) to
// recover the state at each node.
//
// transfer must be monotone — it may only add facts (set bits), never
// remove them. Sticky taint loses a little precision (a variable
// reassigned to something clean stays tainted) but guarantees
// termination of the union-join iteration on graphs with loops.
func (g *Graph) Forward(transfer func(n ast.Node, state Facts)) map[*Block]Facts {
	in := make(map[*Block]Facts, len(g.Blocks))
	out := make(map[*Block]Facts, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = make(Facts)
		out[b] = make(Facts)
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				if in[s].union(out[b]) {
					changed = true
				}
			}
			st := in[b].clone()
			for _, n := range b.Nodes {
				transfer(n, st)
			}
			if out[b].union(st) {
				changed = true
			}
		}
	}
	return in
}

// Dump renders the graph for the -cfg-debug developer flag: one line per
// block with its kind, the source positions and shapes of its nodes, and
// its successor indices. The format is for humans; nothing parses it.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s: %d blocks", g.Name, len(g.Blocks))
	if len(g.Defers) > 0 {
		fmt.Fprintf(&sb, ", %d defers", len(g.Defers))
	}
	if len(g.DeferUnlocks) > 0 {
		fmt.Fprintf(&sb, " (%d unlock at exit)", len(g.DeferUnlocks))
	}
	if len(g.Gos) > 0 {
		fmt.Fprintf(&sb, ", %d spawns", len(g.Gos))
	}
	sb.WriteByte('\n')
	reach := g.Reachable()
	for _, b := range g.Blocks {
		mark := " "
		if !reach[b] {
			mark = "x" // unreachable
		}
		fmt.Fprintf(&sb, "%s b%-3d %-12s", mark, b.Index, b.Kind)
		succs := make([]string, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, fmt.Sprintf("b%d", s.Index))
		}
		sort.Strings(succs)
		if len(succs) > 0 {
			fmt.Fprintf(&sb, " -> %s", strings.Join(succs, " "))
		}
		sb.WriteByte('\n')
		for _, n := range b.Nodes {
			pos := "-"
			if fset != nil && n.Pos().IsValid() {
				p := fset.Position(n.Pos())
				pos = fmt.Sprintf("%d:%d", p.Line, p.Column)
			}
			fmt.Fprintf(&sb, "      %-8s %s\n", pos, nodeLabel(n))
		}
	}
	return sb.String()
}

// nodeLabel names a node for the dump without printing whole subtrees.
func nodeLabel(n ast.Node) string {
	switch x := n.(type) {
	case *ast.AssignStmt:
		return "assign " + x.Tok.String()
	case *ast.DeclStmt:
		return "decl"
	case *ast.ExprStmt:
		if c, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			return "call " + callLabel(c)
		}
		if u, ok := ast.Unparen(x.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return "recv"
		}
		return "expr"
	case *ast.ReturnStmt:
		return "return"
	case *ast.BranchStmt:
		if x.Label != nil {
			return x.Tok.String() + " " + x.Label.Name
		}
		return x.Tok.String()
	case *ast.DeferStmt:
		if IsUnlockCall(x.Call) {
			return "defer-unlock " + callLabel(x.Call)
		}
		return "defer " + callLabel(x.Call)
	case *ast.GoStmt:
		return "go " + callLabel(x.Call)
	case *ast.SendStmt:
		return "send"
	case *ast.IncDecStmt:
		return "incdec " + x.Tok.String()
	case *ast.RangeStmt:
		return "range"
	case *ast.CallExpr:
		return "call " + callLabel(x)
	case *ast.BinaryExpr:
		return "cond " + x.Op.String()
	case ast.Expr:
		return "expr"
	default:
		return fmt.Sprintf("%T", n)
	}
}

// callLabel renders a call's function expression compactly (f, x.f, or ?
// for anything more exotic).
func callLabel(c *ast.CallExpr) string {
	switch f := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name
		}
		return "?." + f.Sel.Name
	default:
		return "?"
	}
}
