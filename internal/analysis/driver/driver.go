// Package driver is the standalone front end of cmd/reprolint: it runs
// the whole suite over a package pattern by spawning `go vet -vettool`
// on its own executable, then aggregates the structured findings that
// the unitchecker protocol side wrote into the REPROLINT_DIAGDIR side
// channel (go vet buffers and reorders per-package tool output, so
// scraping stderr would lose positions and interleave packages).
//
// On top of the aggregate it offers the machine-readable outputs the CI
// gate consumes:
//
//	go run ./cmd/reprolint ./...                    # human text, exit 2 on findings
//	go run ./cmd/reprolint -json ./...              # findings as a JSON array on stdout
//	go run ./cmd/reprolint -sarif out.sarif ./...   # SARIF 2.1.0 report
//	go run ./cmd/reprolint -baseline .reprolint-baseline.json ./...
//
// Baseline mode implements suppression-debt accounting: known findings
// (matched by analyzer, repo-relative file and message — line numbers
// churn too much to pin) are tolerated but counted as debt; only *new*
// findings fail the run. -write-baseline rewrites the file from the
// current findings, which is how debt is ratcheted down. Baselined
// findings appear in SARIF with baselineState "unchanged", new ones as
// "new".
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/unitchecker"
)

// Options configures one standalone run.
type Options struct {
	// Patterns are the package patterns to vet (default ./...).
	Patterns []string
	// JSON prints the aggregated findings as a JSON array on stdout.
	JSON bool
	// SARIF, when non-empty, writes a SARIF 2.1.0 report to the path.
	SARIF string
	// Baseline, when non-empty, reads the baseline file and fails only
	// on findings not recorded there.
	Baseline string
	// WriteBaseline rewrites the Baseline file from the current findings.
	WriteBaseline bool
	// Analyzers names and describes the suite (for SARIF rules).
	Analyzers []*analysis.Analyzer
	// Dir is the working directory for the vet run ("" = current).
	Dir string
}

// Run executes the suite and returns the process exit code: 0 clean (or
// fully baselined), 1 operational failure, 2 new findings.
func Run(opts Options, stdout, stderr *os.File) int {
	start := time.Now() //lint:wallclock-ok tool sweep timing, never model time
	patterns := opts.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: resolving own executable: %v\n", err)
		return 1
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: go tool not found: %v\n", err)
		return 1
	}
	diagDir, err := os.MkdirTemp("", "reprolint-diag-")
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: %v\n", err)
		return 1
	}
	defer os.RemoveAll(diagDir)

	vet := exec.Command(goTool, append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	vet.Dir = opts.Dir
	vet.Env = append(os.Environ(), unitchecker.DiagDirEnv+"="+diagDir)
	var vetOut bytes.Buffer
	vet.Stdout = &vetOut
	vet.Stderr = &vetOut
	vetErr := vet.Run()

	findings, err := collect(diagDir, opts.Dir)
	if err != nil {
		fmt.Fprintf(stderr, "reprolint: %v\n", err)
		return 1
	}
	if vetErr != nil && len(findings) == 0 {
		// go vet failed but no finding reached the side channel: an
		// operational error (bad pattern, type error), not lint findings.
		fmt.Fprintf(stderr, "reprolint: go vet failed: %v\n%s", vetErr, vetOut.String())
		return 1
	}

	baseline, err := loadBaseline(opts.Baseline)
	if err != nil {
		if !(opts.WriteBaseline && errors.Is(err, os.ErrNotExist)) {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 1
		}
		baseline = nil // -write-baseline creates the file fresh
	}
	if opts.WriteBaseline && opts.Baseline != "" {
		if err := writeBaseline(opts.Baseline, findings); err != nil {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "reprolint: wrote %d finding(s) to %s\n", len(findings), opts.Baseline)
		// Gate against the ledger just written: the ratchet update is
		// the point of the run, so it exits clean by construction.
		if baseline, err = loadBaseline(opts.Baseline); err != nil {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 1
		}
	}
	verdict := applyBaseline(findings, baseline)
	if opts.SARIF != "" {
		if err := writeSARIF(opts.SARIF, opts.Analyzers, verdict); err != nil {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 1
		}
	}
	if opts.JSON {
		data, err := json.MarshalIndent(findings, "", "\t")
		if err != nil {
			fmt.Fprintf(stderr, "reprolint: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
	}

	elapsed := time.Since(start).Round(time.Millisecond) //lint:wallclock-ok tool sweep timing, never model time
	return report(verdict, opts, elapsed, stderr)
}

// report prints the human summary and picks the exit code.
func report(v verdict, opts Options, elapsed time.Duration, stderr *os.File) int {
	if !opts.JSON {
		for _, f := range v.fresh {
			fmt.Fprintf(stderr, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	switch {
	case opts.Baseline == "":
		if n := len(v.fresh); n > 0 {
			fmt.Fprintf(stderr, "reprolint: %d finding(s) in %s\n", n, elapsed)
			return 2
		}
		fmt.Fprintf(stderr, "reprolint: clean in %s\n", elapsed)
		return 0
	default:
		fmt.Fprintf(stderr, "reprolint: %d new finding(s), %d baselined (suppression debt), %d stale baseline entr%s, in %s\n",
			len(v.fresh), len(v.baselined), v.stale, plural(v.stale, "y", "ies"), elapsed)
		if len(v.fresh) > 0 {
			return 2
		}
		return 0
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// collect merges the per-package findings files from the side-channel
// directory, relativizes paths against dir, deduplicates (a package and
// its test variant re-analyze the same files) and sorts.
func collect(diagDir, dir string) ([]unitchecker.Finding, error) {
	entries, err := os.ReadDir(diagDir)
	if err != nil {
		return nil, err
	}
	if dir == "" {
		if dir, err = os.Getwd(); err != nil {
			return nil, err
		}
	}
	seen := make(map[unitchecker.Finding]bool)
	var out []unitchecker.Finding
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(diagDir, e.Name()))
		if err != nil {
			return nil, err
		}
		var fs []unitchecker.Finding
		if err := json.Unmarshal(data, &fs); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", e.Name(), err)
		}
		for _, f := range fs {
			if rel, err := filepath.Rel(dir, f.File); err == nil && !strings.HasPrefix(rel, "..") {
				f.File = filepath.ToSlash(rel)
			}
			if seen[f] {
				continue
			}
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// BaselineEntry identifies one tolerated finding. Line/column are
// deliberately absent: edits above a finding must not invalidate the
// baseline match.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// BaselineFile is the checked-in suppression-debt ledger.
type BaselineFile struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

func loadBaseline(path string) (map[BaselineEntry]int, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var bf BaselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	counts := make(map[BaselineEntry]int, len(bf.Findings))
	for _, e := range bf.Findings {
		counts[e]++
	}
	return counts, nil
}

func writeBaseline(path string, findings []unitchecker.Finding) error {
	bf := BaselineFile{
		Comment:  "reprolint suppression-debt ledger: tolerated findings, matched by analyzer+file+message. Regenerate with -write-baseline; the goal is an empty list.",
		Findings: make([]BaselineEntry, 0, len(findings)),
	}
	for _, f := range findings {
		bf.Findings = append(bf.Findings, BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message})
	}
	data, err := json.MarshalIndent(&bf, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// verdict splits findings against the baseline multiset.
type verdict struct {
	fresh     []unitchecker.Finding // not in the baseline: fail the run
	baselined []unitchecker.Finding // tolerated debt
	stale     int                   // baseline entries with no live finding
}

func applyBaseline(findings []unitchecker.Finding, baseline map[BaselineEntry]int) verdict {
	var v verdict
	remaining := make(map[BaselineEntry]int, len(baseline))
	total := 0
	for e, n := range baseline { //lint:maporder-ok multiset copy, order-free
		remaining[e] = n
		total += n
	}
	for _, f := range findings {
		e := BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message}
		if remaining[e] > 0 {
			remaining[e]--
			v.baselined = append(v.baselined, f)
		} else {
			v.fresh = append(v.fresh, f)
		}
	}
	v.stale = total - (len(findings) - len(v.fresh))
	if v.stale < 0 {
		v.stale = 0
	}
	return v
}
