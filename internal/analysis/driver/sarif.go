// SARIF 2.1.0 output: the minimal valid document shape GitHub code
// scanning and the schema at
// https://json.schemastore.org/sarif-2.1.0.json accept — version,
// $schema, one run with a tool.driver (name + rules) and results
// carrying ruleId, level, message and a physical location. Baselined
// findings get baselineState "unchanged", new ones "new", so a viewer
// can filter the suppression debt.
package driver

import (
	"encoding/json"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/unitchecker"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID        string          `json:"ruleId"`
	Level         string          `json:"level"`
	Message       sarifText       `json:"message"`
	Locations     []sarifLocation `json:"locations"`
	BaselineState string          `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the verdict as a SARIF 2.1.0 file.
func writeSARIF(path string, analyzers []*analysis.Analyzer, v verdict) error {
	log := buildSARIF(analyzers, v)
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

func buildSARIF(analyzers []*analysis.Analyzer, v verdict) *sarifLog {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(v.fresh)+len(v.baselined))
	add := func(f unitchecker.Finding, state string) {
		results = append(results, sarifResult{
			RuleID:        f.Analyzer,
			Level:         "error",
			Message:       sarifText{Text: f.Message},
			BaselineState: state,
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	for _, f := range v.fresh {
		add(f, "new")
	}
	for _, f := range v.baselined {
		add(f, "unchanged")
	}
	return &sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "reprolint", Rules: rules}},
			Results: results,
		}},
	}
}
