package driver

import (
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/analysis/suite"
	"repro/internal/analysis/unitchecker"
)

func finding(analyzer, file string, line int, msg string) unitchecker.Finding {
	return unitchecker.Finding{Analyzer: analyzer, File: file, Line: line, Col: 1, Message: msg}
}

// The baseline matches by analyzer+file+message (not line), is a
// multiset (two identical findings need two entries), and counts stale
// entries so debt can be ratcheted down.
func TestApplyBaseline(t *testing.T) {
	findings := []unitchecker.Finding{
		finding("maporder", "a.go", 10, "map iter"),
		finding("maporder", "a.go", 40, "map iter"), // second identical: needs its own entry
		finding("wallclock", "b.go", 3, "time.Now"),
	}
	baseline := map[BaselineEntry]int{
		{Analyzer: "maporder", File: "a.go", Message: "map iter"}:   1,
		{Analyzer: "globalrand", File: "c.go", Message: "rand use"}: 1, // stale: fixed since
	}
	v := applyBaseline(findings, baseline)
	if len(v.baselined) != 1 {
		t.Errorf("baselined = %d, want 1 (multiset: one entry tolerates one finding)", len(v.baselined))
	}
	if len(v.fresh) != 2 {
		t.Errorf("fresh = %d, want 2 (second duplicate + wallclock): %+v", len(v.fresh), v.fresh)
	}
	if v.stale != 1 {
		t.Errorf("stale = %d, want 1", v.stale)
	}

	// Line churn must not break the match.
	moved := []unitchecker.Finding{finding("maporder", "a.go", 999, "map iter")}
	v = applyBaseline(moved, map[BaselineEntry]int{
		{Analyzer: "maporder", File: "a.go", Message: "map iter"}: 1,
	})
	if len(v.fresh) != 0 || len(v.baselined) != 1 {
		t.Errorf("line move broke the baseline match: fresh=%d baselined=%d", len(v.fresh), len(v.baselined))
	}

	// No baseline at all: everything fresh.
	v = applyBaseline(findings, nil)
	if len(v.fresh) != 3 || len(v.baselined) != 0 || v.stale != 0 {
		t.Errorf("nil baseline: fresh=%d baselined=%d stale=%d, want 3/0/0", len(v.fresh), len(v.baselined), v.stale)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []unitchecker.Finding{
		finding("maporder", "a.go", 10, "map iter"),
		finding("maporder", "a.go", 40, "map iter"),
	}
	if err := writeBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	counts, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	e := BaselineEntry{Analyzer: "maporder", File: "a.go", Message: "map iter"}
	if counts[e] != 2 {
		t.Errorf("round trip lost the multiset count: %d, want 2", counts[e])
	}
	v := applyBaseline(findings, counts)
	if len(v.fresh) != 0 || v.stale != 0 {
		t.Errorf("self-written baseline must gate clean: fresh=%d stale=%d", len(v.fresh), v.stale)
	}
}

// The SARIF output must carry the fixed 2.1.0 identification, one rule
// per analyzer, and per-result baselineState so viewers can split new
// findings from suppression debt. Validated through a generic unmarshal
// so struct tags (not struct identity) are what is asserted.
func TestBuildSARIFShape(t *testing.T) {
	analyzers := suite.Analyzers()
	v := verdict{
		fresh:     []unitchecker.Finding{finding("maporder", "x/a.go", 7, "map iter")},
		baselined: []unitchecker.Finding{finding("wallclock", "y/b.go", 9, "time.Now")},
	}
	data, err := json.Marshal(buildSARIF(analyzers, v))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				BaselineState string `json:"baselineState"`
				Locations     []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if doc.Schema != "https://json.schemastore.org/sarif-2.1.0.json" {
		t.Errorf("$schema = %q", doc.Schema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "reprolint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analyzers) {
		t.Errorf("rules = %d, want %d (one per analyzer)", len(run.Tool.Driver.Rules), len(analyzers))
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription.Text == "" {
			t.Errorf("rule missing id or shortDescription: %+v", r)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for i, want := range []struct{ rule, state, uri string }{
		{"maporder", "new", "x/a.go"},
		{"wallclock", "unchanged", "y/b.go"},
	} {
		r := run.Results[i]
		if r.RuleID != want.rule || r.BaselineState != want.state || r.Level != "error" {
			t.Errorf("result %d = %+v, want rule %s state %s level error", i, r, want.rule, want.state)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != want.uri || loc.Region.StartLine == 0 {
			t.Errorf("result %d location = %+v, want uri %s with a startLine", i, loc, want.uri)
		}
	}
}
