// Package unitchecker implements the `go vet -vettool` driver protocol on
// the standard library, mirroring golang.org/x/tools/go/analysis/
// unitchecker (which this environment cannot vendor — no module proxy).
//
// cmd/go speaks to a vet tool in three ways:
//
//   - `tool -V=full` must print a version line ending in "buildID=<hex>"
//     so the build cache can key on the tool's content
//     (cmd/go/internal/work/buildid.go).
//   - `tool -flags` must print a JSON description of the tool's flags to
//     stdout, in stable (sorted) order so repeated queries hash
//     identically (cmd/go/internal/vet/vetflag.go).
//   - `tool [flags] <objdir>/vet.cfg` analyzes one package: the cfg file
//     carries the file list, the import map and the export-data locations
//     of all dependencies (cmd/go/internal/work/exec.go, vetConfig).
//     Diagnostics go to stderr as "file:line:col: message" and the tool
//     exits 2 when it found anything, 0 when the package is clean.
//
// cmd/go also schedules "vet" actions for dependencies so fact-based
// analyzers can consume their outputs; those configs carry VetxOnly=true
// and name the facts file to produce in VetxOutput. Since PR 5 the suite
// is fact-based: each analyzer's per-function summaries are serialized as
// JSON into the .vetx file (analysis.PackageFacts; map keys sorted by
// encoding/json, so the bytes — and the cmd/go cache keys derived from
// them — are deterministic), and dependency facts arrive back through
// vet.cfg's PackageVetx map. Facts are computed for this module's
// packages only; standard-library dependencies get an empty facts file,
// which analyzers treat as the conservative "no facts" default.
//
// Two driver niceties for the reprolint front end (cmd/reprolint):
// identical diagnostics at the same position are deduplicated (a package
// and its test variant analyze the same non-test files), and when the
// REPROLINT_DIAGDIR environment variable names a directory the tool also
// writes its findings there as JSON — a side channel that survives
// cmd/go's per-package output buffering, so the standalone driver can
// aggregate structured findings across a whole `go vet ./...` run.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the JSON emitted into vet.cfg by
// cmd/go/internal/work.buildVetConfig. Only the fields this driver
// consumes are listed; unknown fields are ignored by encoding/json.
type Config struct {
	ImportPath                string            // import path, possibly with " [variant]" suffix
	GoFiles                   []string          // absolute paths of Go sources
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	PackageVetx               map[string]string // canonical path -> dependency facts file
	VetxOnly                  bool              // only facts are needed, skip reporting
	VetxOutput                string            // where to write the facts file
	GoVersion                 string            // language version for type checking
	SucceedOnTypecheckFailure bool              // exit 0 quietly on type errors (go test's vet=default)
}

// Finding is one diagnostic in resolved, position-stable form: what the
// REPROLINT_DIAGDIR side channel and `-json` emit, and what the
// cmd/reprolint driver aggregates into baselines and SARIF.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// DiagDirEnv names the findings side-channel directory variable.
const DiagDirEnv = "REPROLINT_DIAGDIR"

// suiteFactKey is the reserved PackageFacts entry carrying the suite
// identity stamp in every .vetx file. Analyzer names are lint check
// names (lowercase identifiers), so the underscore prefix cannot
// collide with a real analyzer.
const suiteFactKey = "_suite"

// SuiteHash returns a stable identity for an analyzer suite: the sorted
// analyzer names and docs, hashed. It is mixed into the -V=full buildID
// (so cmd/go's vet cache keys change when the suite changes even if the
// executable self-hash is unavailable) and stamped into every .vetx
// file, where loadDepFacts rejects facts written by a different suite.
// Without the stamp, a warm GOCACHE restored across an analyzer change
// (CI restore-keys, or an os.Executable failure masking the rebuild)
// would feed stale fact payloads — encoded under the old analyzer
// semantics — into the new analyzers.
func SuiteHash(analyzers []*analysis.Analyzer) string {
	ids := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		ids = append(ids, a.Name+"\x00"+a.Doc)
	}
	sort.Strings(ids)
	sum := sha256.Sum256([]byte(strings.Join(ids, "\n")))
	return fmt.Sprintf("%x", sum[:8])
}

// ToolFlag mirrors the JSON shape cmd/go expects from `tool -flags`
// (cmd/go/internal/vet/vetflag.go).
type ToolFlag struct {
	Name  string
	Bool  bool
	Usage string
}

// Main is the entry point a vet tool binary delegates to:
//
//	func main() { unitchecker.Main(suite.Analyzers()...) }
//
// It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	suiteHash := SuiteHash(analyzers)
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			printVersion(true, suiteHash)
			os.Exit(0)
		case "-V":
			printVersion(false, suiteHash)
			os.Exit(0)
		case "-flags":
			printFlags(os.Stdout, analyzers)
			os.Exit(0)
		case "help", "-help", "--help", "-h":
			printHelp(analyzers)
			os.Exit(0)
		}
	}
	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	fs.Usage = func() { printHelp(analyzers) }
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout instead of text on stderr")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" check")
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		var active []*analysis.Analyzer
		for _, a := range analyzers {
			if *enabled[a.Name] {
				active = append(active, a)
			}
		}
		os.Exit(runConfig(args[0], active, suiteHash, *jsonOut))
	}
	printHelp(analyzers)
	os.Exit(2)
}

// printVersion emits the tool identification line cmd/go parses to build
// its cache key. The "devel" form keys on the suite identity hash plus a
// content hash of the executable itself, so rebuilding reprolint — or
// changing which analyzers it carries — invalidates cached vet results.
// The suite hash leads so the buildID still tracks suite changes when
// os.Executable fails (best-effort self-hash).
func printVersion(full bool, suiteHash string) {
	if !full {
		fmt.Println("reprolint version devel")
		return
	}
	h := sha256.New()
	fmt.Fprintf(h, "suite:%s\n", suiteHash)
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("reprolint version devel buildID=%x\n", h.Sum(nil))
}

// printFlags answers cmd/go's `-flags` query: every flag the tool accepts
// on a vet.cfg invocation, sorted by name so the output bytes are stable
// run to run (cmd/go hashes them into its action IDs).
func printFlags(w io.Writer, analyzers []*analysis.Analyzer) {
	flags := []ToolFlag{{Name: "json", Bool: true, Usage: "emit findings as JSON on stdout instead of text on stderr"}}
	for _, a := range analyzers {
		flags = append(flags, ToolFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " check"})
	}
	sort.Slice(flags, func(i, j int) bool { return flags[i].Name < flags[j].Name })
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(w, "[]")
		return
	}
	fmt.Fprintln(w, string(data))
}

func printHelp(analyzers []*analysis.Analyzer) {
	fmt.Fprintln(os.Stderr, "reprolint: static checks for the repro determinism and engine contracts")
	fmt.Fprintln(os.Stderr, "\nusage: go vet -vettool=$(command -v reprolint || echo ./bin/reprolint) ./...")
	fmt.Fprintln(os.Stderr, "   or: go run ./cmd/reprolint [-json|-sarif out.sarif] [-baseline file] ./...")
	fmt.Fprintln(os.Stderr, "\nchecks:")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(os.Stderr, "\nsuppress a finding with //lint:<check>-ok <reason> on the flagged line or the line above.")
}

// runConfig analyzes the package described by one vet.cfg and returns the
// process exit code (0 clean, 1 operational failure, 2 findings).
func runConfig(cfgFile string, analyzers []*analysis.Analyzer, suiteHash string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency pass: cmd/go only wants this package's facts so a later
	// analysis can import them. Facts are computed for this module's
	// packages; other dependencies (the standard library) get an empty
	// facts file — analyzers treat the absence as "assume nothing".
	if cfg.VetxOnly {
		if !inModule(cfg.ImportPath) {
			return writeVetx(cfg.VetxOutput, nil, suiteHash)
		}
		result, err := analyzePackage(&cfg, analyzers, suiteHash)
		if err != nil {
			// The dependency fails to type-check; the target package's
			// own (non-VetxOnly) run will surface the real error.
			return writeVetx(cfg.VetxOutput, nil, suiteHash)
		}
		return writeVetx(cfg.VetxOutput, result.facts, suiteHash)
	}

	result, err := analyzePackage(&cfg, analyzers, suiteHash)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// go test's vet=default mode: the compiler will report the
			// type error itself with better positions.
			return 0
		}
		fmt.Fprintf(os.Stderr, "reprolint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput, result.facts, suiteHash); code != 0 {
		return code
	}
	findings := result.findings()
	if len(findings) == 0 {
		return 0
	}
	writeDiagDir(cfg.ImportPath, findings)
	if jsonOut {
		out, err := json.MarshalIndent(findings, "", "\t")
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
	} else {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
		}
	}
	return 2
}

// inModule reports whether path belongs to this module (the only
// packages whose facts are worth computing).
func inModule(importPath string) bool {
	path := analysis.StripVariant(importPath)
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

// result carries one package analysis: raw diagnostics tagged with their
// analyzer, plus the facts every analyzer exported.
type result struct {
	fset  *token.FileSet
	list  []taggedDiag
	facts analysis.PackageFacts
}

type taggedDiag struct {
	analyzer string
	diag     analysis.Diagnostic
}

// findings resolves, sorts and deduplicates the diagnostics. Identical
// messages at the same position are reported once even when several
// analyzers (or a package and its test variant's re-analysis of the same
// file) emit them.
func (r *result) findings() []Finding {
	out := make([]Finding, 0, len(r.list))
	seen := make(map[Finding]bool, len(r.list))
	for _, td := range r.list {
		p := r.fset.Position(td.diag.Pos)
		f := Finding{
			Analyzer: td.analyzer,
			File:     p.Filename,
			Line:     p.Line,
			Col:      p.Column,
			Message:  td.diag.Message,
		}
		key := f
		key.Analyzer = "" // dedupe across analyzers, keep the first reporter
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// analyzePackage parses and type-checks the cfg's package and runs every
// applicable analyzer over it, collecting diagnostics and exported facts.
func analyzePackage(cfg *Config, analyzers []*analysis.Analyzer, suiteHash string) (*result, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports from the export data cmd/go already compiled: map
	// the source path through ImportMap (vendoring, test variants), then
	// open the listed package file. The gc importer resolves "unsafe"
	// internally and never calls lookup for it.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	path := analysis.StripVariant(cfg.ImportPath)
	pkg, err := tconf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}

	depFacts := loadDepFacts(cfg, suiteHash)
	res := &result{fset: fset}
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(path) {
			continue
		}
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      path,
			Pkg:       pkg,
			TypesInfo: info,
			DepFacts:  depFacts,
			Report: func(d analysis.Diagnostic) {
				res.list = append(res.list, taggedDiag{analyzer: name, diag: d})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		if facts := pass.ExportedFacts(); len(facts) > 0 {
			if res.facts == nil {
				res.facts = make(analysis.PackageFacts)
			}
			res.facts[a.Name] = facts
		}
	}
	return res, nil
}

// loadDepFacts reads the dependency facts files cmd/go listed in
// PackageVetx, keyed by canonical import path with test-variant suffixes
// stripped (type information uses the plain path). A plain package and
// its test variant both present resolve to the variant — the superset —
// deterministically, by sorted key order. Facts carrying a different (or
// no) suite stamp were written by a different analyzer suite and are
// dropped: their payloads encode the old analyzers' semantics, and "no
// facts" is every analyzer's conservative default.
func loadDepFacts(cfg *Config, suiteHash string) map[string]analysis.PackageFacts {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	keys := make([]string, 0, len(cfg.PackageVetx))
	for k := range cfg.PackageVetx { //lint:maporder-ok keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(map[string]analysis.PackageFacts)
	for _, canon := range keys {
		data, err := os.ReadFile(cfg.PackageVetx[canon])
		if err != nil || len(data) == 0 {
			continue // absent or empty facts: the conservative default
		}
		var pf analysis.PackageFacts
		if err := json.Unmarshal(data, &pf); err != nil {
			continue
		}
		if pf[suiteFactKey]["hash"] != suiteHash {
			continue // stale: written by a different analyzer suite
		}
		delete(pf, suiteFactKey)
		if len(pf) == 0 {
			continue
		}
		out[analysis.StripVariant(canon)] = pf
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// writeVetx serializes the package's facts for downstream packages,
// stamped with the suite identity hash so a later load can tell whether
// the bytes came from this analyzer suite. json.Marshal sorts map keys,
// so equal facts always produce equal bytes and cmd/go's content-keyed
// cache stays stable. A missing VetxOutput (possible for the root
// packages of a non-caching run) is skipped; an empty facts set writes
// an empty file (loadDepFacts already skips those).
func writeVetx(path string, facts analysis.PackageFacts, suiteHash string) int {
	if path == "" {
		return 0
	}
	var data []byte
	if len(facts) > 0 {
		stamped := make(analysis.PackageFacts, len(facts)+1)
		for name, fs := range facts { //lint:maporder-ok copy into a map; json.Marshal sorts keys
			stamped[name] = fs
		}
		stamped[suiteFactKey] = analysis.FactSet{"hash": suiteHash}
		var err error
		if data, err = json.Marshal(stamped); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			return 1
		}
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	return 0
}

// writeDiagDir drops the findings as JSON into $REPROLINT_DIAGDIR (one
// file per package, named by import-path hash). go vet buffers and
// re-orders per-package tool output, so the standalone driver reads this
// side channel instead of scraping stderr. Best-effort: a failed write
// only loses the structured copy, never the findings themselves.
func writeDiagDir(importPath string, findings []Finding) {
	dir := os.Getenv(DiagDirEnv)
	if dir == "" {
		return
	}
	data, err := json.Marshal(findings)
	if err != nil {
		return
	}
	name := fmt.Sprintf("%x.json", sha256.Sum256([]byte(importPath)))
	os.WriteFile(dir+string(os.PathSeparator)+name, data, 0o666)
}
