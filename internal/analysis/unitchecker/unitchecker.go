// Package unitchecker implements the `go vet -vettool` driver protocol on
// the standard library, mirroring golang.org/x/tools/go/analysis/
// unitchecker (which this environment cannot vendor — no module proxy).
//
// cmd/go speaks to a vet tool in three ways:
//
//   - `tool -V=full` must print a version line ending in "buildID=<hex>"
//     so the build cache can key on the tool's content
//     (cmd/go/internal/work/buildid.go).
//   - `tool -flags` must print a JSON description of the tool's flags to
//     stdout; reprolint has none, so it prints "[]"
//     (cmd/go/internal/vet/vetflag.go).
//   - `tool <objdir>/vet.cfg` analyzes one package: the cfg file carries
//     the file list, the import map and the export-data locations of all
//     dependencies (cmd/go/internal/work/exec.go, vetConfig). Diagnostics
//     go to stderr as "file:line:col: message" and the tool exits 2 when
//     it found anything, 0 when the package is clean.
//
// cmd/go also schedules "vet" actions for dependencies so fact-based
// analyzers can consume their outputs; those configs carry VetxOnly=true
// and the tool only needs to produce its (empty, for this suite) facts
// file without analyzing anything.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the JSON emitted into vet.cfg by
// cmd/go/internal/work.buildVetConfig. Only the fields this driver
// consumes are listed; unknown fields are ignored by encoding/json.
type Config struct {
	ImportPath                string            // import path, possibly with " [variant]" suffix
	GoFiles                   []string          // absolute paths of Go sources
	ImportMap                 map[string]string // source import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	VetxOnly                  bool              // only facts are needed, skip analysis
	VetxOutput                string            // where to write the facts file
	GoVersion                 string            // language version for type checking
	SucceedOnTypecheckFailure bool              // exit 0 quietly on type errors (go test's vet=default)
}

// Main is the entry point a vet tool binary delegates to:
//
//	func main() { unitchecker.Main(suite.Analyzers()...) }
//
// It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full":
			printVersion(true)
			os.Exit(0)
		case "-V":
			printVersion(false)
			os.Exit(0)
		case "-flags":
			// reprolint accepts no analyzer flags; tell cmd/go so it
			// rejects unknown `go vet -foo` flags itself.
			fmt.Println("[]")
			os.Exit(0)
		case "help", "-help", "--help", "-h":
			printHelp(analyzers)
			os.Exit(0)
		}
		if strings.HasSuffix(os.Args[1], ".cfg") {
			os.Exit(runConfig(os.Args[1], analyzers))
		}
	}
	printHelp(analyzers)
	os.Exit(2)
}

// printVersion emits the tool identification line cmd/go parses to build
// its cache key. The "devel" form keys on a content hash of the
// executable itself, so rebuilding reprolint invalidates cached vet
// results — exactly the semantics a evolving in-repo tool wants.
func printVersion(full bool) {
	if !full {
		fmt.Println("reprolint version devel")
		return
	}
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("reprolint version devel buildID=%x\n", h.Sum(nil))
}

func printHelp(analyzers []*analysis.Analyzer) {
	fmt.Fprintln(os.Stderr, "reprolint: static checks for the repro determinism and engine contracts")
	fmt.Fprintln(os.Stderr, "\nusage: go vet -vettool=$(command -v reprolint || echo ./bin/reprolint) ./...")
	fmt.Fprintln(os.Stderr, "\nchecks:")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(os.Stderr, "\nsuppress a finding with //lint:<check>-ok <reason> on the flagged line or the line above.")
}

// runConfig analyzes the package described by one vet.cfg and returns the
// process exit code (0 clean, 1 operational failure, 2 findings).
func runConfig(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Dependency pass: cmd/go only wants this package's facts so a later
	// analysis can import them. This suite carries no cross-package
	// facts; produce the (empty) output and stop.
	if cfg.VetxOnly {
		return writeVetx(cfg.VetxOutput)
	}

	diags, err := analyzePackage(&cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// go test's vet=default mode: the compiler will report the
			// type error itself with better positions.
			return 0
		}
		fmt.Fprintf(os.Stderr, "reprolint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if code := writeVetx(cfg.VetxOutput); code != 0 {
		return code
	}
	if len(diags.list) == 0 {
		return 0
	}
	diags.print(os.Stderr)
	return 2
}

// diagnostics collects findings across analyzers with the FileSet needed
// to render them.
type diagnostics struct {
	fset *token.FileSet
	list []analysis.Diagnostic
}

func (d *diagnostics) print(w io.Writer) {
	sort.SliceStable(d.list, func(i, j int) bool { return d.list[i].Pos < d.list[j].Pos })
	for _, diag := range d.list {
		fmt.Fprintf(w, "%s: %s\n", d.fset.Position(diag.Pos), diag.Message)
	}
}

// analyzePackage parses and type-checks the cfg's package and runs every
// applicable analyzer over it.
func analyzePackage(cfg *Config, analyzers []*analysis.Analyzer) (*diagnostics, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports from the export data cmd/go already compiled: map
	// the source path through ImportMap (vendoring, test variants), then
	// open the listed package file. The gc importer resolves "unsafe"
	// internally and never calls lookup for it.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", "amd64"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	path := analysis.StripVariant(cfg.ImportPath)
	pkg, err := tconf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}

	diags := &diagnostics{fset: fset}
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(path) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Path:      path,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags.list = append(diags.list, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// writeVetx produces the facts output cmd/go caches for downstream
// packages. The suite defines no facts, so the file is empty; a missing
// VetxOutput (possible for the root packages of a non-caching run) is
// simply skipped.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	return 0
}
