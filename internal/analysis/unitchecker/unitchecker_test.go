package unitchecker

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// A package and its test variant re-analyze the same non-test files, and
// two analyzers can flag the same line with the same message; findings()
// must collapse those to one diagnostic (first reporter wins) while
// keeping genuinely distinct positions and messages.
func TestFindingsDedupe(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("a.go", -1, 100)
	pos1, pos2 := f.Pos(10), f.Pos(20)
	r := &result{fset: fset, list: []taggedDiag{
		{analyzer: "maporder", diag: analysis.Diagnostic{Pos: pos1, Message: "m"}},
		{analyzer: "wallclock", diag: analysis.Diagnostic{Pos: pos1, Message: "m"}}, // cross-analyzer dup
		{analyzer: "maporder", diag: analysis.Diagnostic{Pos: pos1, Message: "m"}},  // exact dup (test variant)
		{analyzer: "maporder", diag: analysis.Diagnostic{Pos: pos2, Message: "m"}},  // distinct position
		{analyzer: "maporder", diag: analysis.Diagnostic{Pos: pos1, Message: "other"}},
	}}
	got := r.findings()
	if len(got) != 3 {
		t.Fatalf("findings() kept %d, want 3: %+v", len(got), got)
	}
	if got[0].Analyzer != "maporder" || got[0].Message != "m" || got[0].Col != 11 {
		t.Errorf("first finding = %+v, want maporder %q at col 11 (first reporter wins)", got[0], "m")
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	}) {
		t.Errorf("findings not position-sorted: %+v", got)
	}
}

// cmd/go hashes the -flags output into its action IDs, so the bytes must
// be a valid JSON flag description in stable (sorted) order.
func TestPrintFlagsStableJSON(t *testing.T) {
	analyzers := suite.Analyzers()
	var buf1, buf2 bytes.Buffer
	printFlags(&buf1, analyzers)
	printFlags(&buf2, analyzers)
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("printFlags is not byte-stable:\n%s\n%s", buf1.String(), buf2.String())
	}
	var flags []ToolFlag
	if err := json.Unmarshal(buf1.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, buf1.String())
	}
	if want := len(analyzers) + 1; len(flags) != want { // +1 for -json
		t.Fatalf("got %d flags, want %d", len(flags), want)
	}
	if !sort.SliceIsSorted(flags, func(i, j int) bool { return flags[i].Name < flags[j].Name }) {
		t.Errorf("flags not sorted by name: %+v", flags)
	}
	names := make(map[string]bool, len(flags))
	for _, fl := range flags {
		names[fl.Name] = true
		if !fl.Bool {
			t.Errorf("flag %s not boolean; cmd/go passes every vet flag as -name=value", fl.Name)
		}
		if fl.Usage == "" {
			t.Errorf("flag %s has no usage string", fl.Name)
		}
	}
	for _, a := range analyzers {
		if !names[a.Name] {
			t.Errorf("analyzer %s missing from -flags", a.Name)
		}
	}
	if !names["json"] {
		t.Error("json flag missing from -flags")
	}
}

// Facts must survive the vetx write/load round trip byte-deterministically,
// and when both a package and its test variant appear in PackageVetx the
// variant (the superset) must win.
func TestVetxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	facts := analysis.PackageFacts{
		"sentinelwrap": {"fail": "ErrBudget", "retry": "ErrBudget,ErrCrash"},
		"costbalance":  {"Report.Rewind": "rewinds"},
	}
	plain := analysis.PackageFacts{
		"sentinelwrap": {"fail": "stale"},
	}

	hash := SuiteHash(suite.Analyzers())
	variantPath := filepath.Join(dir, "variant.vetx")
	plainPath := filepath.Join(dir, "plain.vetx")
	emptyPath := filepath.Join(dir, "empty.vetx")
	if code := writeVetx(variantPath, facts, hash); code != 0 {
		t.Fatalf("writeVetx exit %d", code)
	}
	if code := writeVetx(plainPath, plain, hash); code != 0 {
		t.Fatalf("writeVetx exit %d", code)
	}
	if code := writeVetx(emptyPath, nil, hash); code != 0 {
		t.Fatalf("writeVetx exit %d", code)
	}

	// Byte determinism: equal facts, equal bytes (cache-key stability).
	again := filepath.Join(dir, "again.vetx")
	writeVetx(again, facts, hash)
	b1, _ := os.ReadFile(variantPath)
	b2, _ := os.ReadFile(again)
	if !bytes.Equal(b1, b2) {
		t.Errorf("writeVetx not deterministic:\n%s\n%s", b1, b2)
	}

	cfg := &Config{PackageVetx: map[string]string{
		"repro/x":                plainPath,
		"repro/x [repro/x.test]": variantPath,
		"errors":                 emptyPath, // stdlib: empty facts, skipped
	}}
	dep := loadDepFacts(cfg, hash)
	if dep == nil {
		t.Fatal("loadDepFacts returned nil")
	}
	if _, ok := dep["errors"]; ok {
		t.Error("empty facts file should be skipped, not loaded")
	}
	got := dep["repro/x"]
	if got == nil {
		t.Fatal("no facts for repro/x")
	}
	if got["sentinelwrap"]["fail"] != "ErrBudget" {
		t.Errorf("variant facts must win over plain: got %q", got["sentinelwrap"]["fail"])
	}
	if got["costbalance"]["Report.Rewind"] != "rewinds" {
		t.Errorf("costbalance fact lost in round trip: %+v", got)
	}
	if _, ok := got[suiteFactKey]; ok {
		t.Errorf("suite stamp must be stripped before analyzers see the facts: %+v", got)
	}
}

// Facts written by a different analyzer suite (a stale warm cache, or a
// pre-stamp file with no suite entry at all) must be dropped on load —
// the conservative "no facts" default — not fed to the new analyzers.
func TestVetxSuiteStampRejectsStaleFacts(t *testing.T) {
	dir := t.TempDir()
	facts := analysis.PackageFacts{"sentinelwrap": {"fail": "ErrBudget"}}

	stale := filepath.Join(dir, "stale.vetx")
	if code := writeVetx(stale, facts, "feedfacecafebeef"); code != 0 {
		t.Fatalf("writeVetx exit %d", code)
	}
	unstamped := filepath.Join(dir, "unstamped.vetx")
	raw, err := json.Marshal(facts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(unstamped, raw, 0o666); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "fresh.vetx")
	hash := SuiteHash(suite.Analyzers())
	if code := writeVetx(fresh, facts, hash); code != 0 {
		t.Fatalf("writeVetx exit %d", code)
	}

	cfg := &Config{PackageVetx: map[string]string{
		"repro/stale":     stale,
		"repro/unstamped": unstamped,
		"repro/fresh":     fresh,
	}}
	dep := loadDepFacts(cfg, hash)
	if _, ok := dep["repro/stale"]; ok {
		t.Error("facts with a mismatched suite stamp must be dropped")
	}
	if _, ok := dep["repro/unstamped"]; ok {
		t.Error("facts with no suite stamp must be dropped")
	}
	if dep["repro/fresh"]["sentinelwrap"]["fail"] != "ErrBudget" {
		t.Errorf("current-suite facts lost: %+v", dep)
	}
}

// The suite hash feeds cache keys: it must be stable across calls and
// analyzer orderings, and must change when the suite's membership does.
func TestSuiteHashStability(t *testing.T) {
	all := suite.Analyzers()
	h1 := SuiteHash(all)
	reversed := make([]*analysis.Analyzer, len(all))
	for i, a := range all {
		reversed[len(all)-1-i] = a
	}
	if h2 := SuiteHash(reversed); h2 != h1 {
		t.Errorf("SuiteHash depends on analyzer order: %s vs %s", h1, h2)
	}
	if h3 := SuiteHash(all[:len(all)-1]); h3 == h1 {
		t.Error("SuiteHash did not change when an analyzer was removed")
	}
}
