// Package sentinelwrap enforces the facade's dual-sentinel contract: an
// error that originates from a sentinel (a package-level error variable,
// a model Violation(), fault.ErrInjectedViolation, …) must cross every
// function boundary wrapped with %w (or errors.Join) so that errors.Is
// still sees the sentinel at the facade. Formatting such an error with
// %v/%s — or flattening it through .Error() — severs the chain silently:
// the program still prints the right words, but resilience.go's
// errors.Is contract (see DESIGN.md §6) goes dark.
//
// The check is interprocedural: each function that can return a
// sentinel-carrying error exports a fact listing the sentinels (sorted,
// comma-joined), propagated through the call graph within a package and
// through the unitchecker facts files across packages. At a formatting
// site the analyzer flags any error-typed argument under a non-%w verb
// when the argument is tainted — a sentinel variable, a call carrying a
// sentinel fact, a model Violation() result, a stored error field, an
// error parameter, or a local assigned from any of those. Deliberate
// chain breaks take //lint:sentinelwrap-ok <reason>.
package sentinelwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer enforces %w/errors.Join wrapping of sentinel-derived errors.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "flag sentinel-derived errors formatted with %v/%s/.Error() instead of wrapped with %w",
	Run:  run,
}

// payloadCap bounds the sentinel list serialized per function so fact
// files stay small; the sorted prefix is deterministic.
const payloadCap = 4

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	// Seed: sentinels each function mentions in its return statements,
	// then propagate through call edges (a caller of a sentinel-carrying
	// function may itself return that sentinel).
	local := make(map[string]map[string]bool)
	for _, sym := range g.Order {
		if set := returnedSentinels(pass, g.Funcs[sym]); len(set) > 0 {
			local[sym] = set
		}
	}
	carries := g.PropagateSets(local, func(c interproc.Callee) []string {
		payload, ok := pass.DepFact(c.PkgPath, c.Sym)
		if !ok {
			return nil
		}
		return interproc.DecodePayload(payload)
	})
	for _, sym := range g.Order {
		if set := carries[sym]; len(set) > 0 {
			names := interproc.Members(set)
			if len(names) > payloadCap {
				names = names[:payloadCap]
			}
			pass.ExportFact(sym, interproc.JoinPayload(names))
		}
	}

	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		t := newTaints(pass, carries, info.Decl)
		checkFormatting(pass, t, info)
	}
	return nil
}

// returnedSentinels collects the sentinel names function info can return
// directly: package-level error variables returned as-is, or wrapped
// through fmt.Errorf("%w") / errors.Join chains. Sentinels that arrive
// via callees are added by the caller's fixpoint, not here.
func returnedSentinels(pass *analysis.Pass, info *interproc.FuncInfo) map[string]bool {
	set := make(map[string]bool)
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			collectCarried(pass, res, set)
		}
		return true
	})
	return set
}

// collectCarried adds to set the sentinel names expression e carries: a
// package-level error variable, the %w-wrapped arguments of fmt.Errorf,
// or any argument of errors.Join.
func collectCarried(pass *analysis.Pass, e ast.Expr, set map[string]bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if name, ok := sentinelVar(pass, x); ok {
			set[name] = true
		}
	case *ast.SelectorExpr:
		if name, ok := sentinelVar(pass, x.Sel); ok && pass.TypesInfo.Selections[x] == nil {
			set[name] = true
		}
	case *ast.CallExpr:
		fn := interproc.CalleeFunc(pass, x)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		switch {
		case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" && len(x.Args) > 1:
			verbs, ok := verbArgs(formatOf(pass, x))
			if !ok {
				return
			}
			for _, v := range verbs {
				if v.verb == 'w' && 1+v.arg < len(x.Args) {
					collectCarried(pass, x.Args[1+v.arg], set)
				}
			}
		case fn.Pkg().Path() == "errors" && fn.Name() == "Join":
			for _, arg := range x.Args {
				collectCarried(pass, arg, set)
			}
		}
	}
}

// sentinelVar reports whether id names a package-level error variable
// (the repository's sentinel idiom) and returns its name.
func sentinelVar(pass *analysis.Pass, id *ast.Ident) (string, bool) {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !isErrorType(v.Type()) {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return v.Name(), true
}

// taints is the per-function flow-insensitive taint state: which local
// variables hold (possibly) sentinel-derived errors, and the function's
// parameter set (incoming errors are conservatively tainted).
type taints struct {
	pass    *analysis.Pass
	carries map[string]map[string]bool
	locals  map[types.Object]string
	params  map[types.Object]bool
}

func newTaints(pass *analysis.Pass, carries map[string]map[string]bool, fd *ast.FuncDecl) *taints {
	t := &taints{
		pass:    pass,
		carries: carries,
		locals:  make(map[types.Object]string),
		params:  make(map[types.Object]bool),
	}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isErrorType(obj.Type()) {
				t.params[obj] = true
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		addField(f)
	}
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			addField(f) // a named error result is written before return
		}
	}
	// Local taint fixpoint over assignments, in source order; each round
	// can only grow the set, and chains are bounded by the body size.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || t.locals[obj] != "" {
					continue
				}
				if desc, tainted := t.of(as.Rhs[i]); tainted {
					t.locals[obj] = desc
					changed = true
				}
			}
			return true
		})
	}
	return t
}

// of reports whether expression e is (possibly) sentinel-derived, with a
// human-readable description of the taint source.
func (t *taints) of(e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := t.pass.TypesInfo.Uses[x]
		if obj == nil {
			return "", false
		}
		v, ok := obj.(*types.Var)
		if !ok || !isErrorType(v.Type()) {
			return "", false
		}
		if name, ok := sentinelVar(t.pass, x); ok {
			return "sentinel " + name, true
		}
		if desc := t.locals[obj]; desc != "" {
			return desc, true
		}
		if t.params[obj] {
			return "incoming error " + x.Name, true
		}
		return "", false
	case *ast.SelectorExpr:
		if sel := t.pass.TypesInfo.Selections[x]; sel != nil {
			if sel.Kind() == types.FieldVal && isErrorType(sel.Type()) {
				return "stored error " + types.ExprString(x), true
			}
			return "", false
		}
		if name, ok := sentinelVar(t.pass, x.Sel); ok {
			return "sentinel " + name, true
		}
		return "", false
	case *ast.CallExpr:
		fn := interproc.CalleeFunc(t.pass, x)
		if fn == nil {
			return "", false
		}
		if isViolationMethod(fn) {
			return "model Violation() error", true
		}
		sents := t.calleeSentinels(fn)
		if len(sents) > 0 {
			return "error carrying sentinel " + strings.Join(sents, "/"), true
		}
		return "", false
	}
	return "", false
}

// calleeSentinels returns the sentinel fact of fn — from this package's
// fixpoint for local functions, from the dependency facts otherwise.
func (t *taints) calleeSentinels(fn *types.Func) []string {
	if fn.Pkg() == nil {
		return nil
	}
	sym := interproc.Symbol(fn)
	if fn.Pkg().Path() == t.pass.Pkg.Path() {
		return interproc.Members(t.carries[sym])
	}
	payload, ok := t.pass.DepFact(fn.Pkg().Path(), sym)
	if !ok {
		return nil
	}
	return interproc.DecodePayload(payload)
}

// isViolationMethod matches the model contract seed: an interface method
// `Violation() error` (engine.Machine's accessor for the access-rule
// violation), whose result always merits the %w treatment.
func isViolationMethod(fn *types.Func) bool {
	if fn.Name() != "Violation" || !interproc.IsInterfaceMethod(fn) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		isErrorType(sig.Results().At(0).Type())
}

// checkFormatting reports tainted error arguments under non-%w verbs in
// fmt.Errorf calls, and .Error() flattening inside error constructors.
func checkFormatting(pass *analysis.Pass, t *taints, info *interproc.FuncInfo) {
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := interproc.CalleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
			checkErrorf(pass, t, info, call)
		case fn.Pkg().Path() == "errors" && fn.Name() == "New" && len(call.Args) == 1:
			checkFlatten(pass, t, info, call.Args[0])
		}
		return true
	})
}

func checkErrorf(pass *analysis.Pass, t *taints, info *interproc.FuncInfo, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	verbs, ok := verbArgs(formatOf(pass, call))
	if !ok {
		return // non-constant or indexed format: stay silent, not wrong
	}
	for _, v := range verbs {
		i := 1 + v.arg
		if i >= len(call.Args) || v.verb == 'w' {
			continue
		}
		arg := call.Args[i]
		checkFlatten(pass, t, info, arg)
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || !isErrorType(tv.Type) {
			continue
		}
		desc, tainted := t.of(arg)
		if !tainted || pass.Allowlisted(info.File, arg.Pos()) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"%s formatted with %%%c drops the error chain; wrap with %%w so errors.Is still sees the sentinels, or annotate //lint:sentinelwrap-ok <reason>",
			desc, v.verb)
	}
}

// checkFlatten reports arg when it is a .Error() call on a tainted error:
// stringifying inside an error constructor severs the chain just like %v.
func checkFlatten(pass *analysis.Pass, t *taints, info *interproc.FuncInfo, arg ast.Expr) {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return
	}
	desc, tainted := t.of(sel.X)
	if !tainted || pass.Allowlisted(info.File, arg.Pos()) {
		return
	}
	pass.Reportf(arg.Pos(),
		".Error() on %s flattens it to a string inside an error constructor; wrap the error with %%w instead, or annotate //lint:sentinelwrap-ok <reason>", desc)
}

// formatOf returns the constant format string of a fmt.Errorf call, or ""
// when it is not statically known.
func formatOf(pass *analysis.Pass, call *ast.CallExpr) string {
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return ""
	}
	return constant.StringVal(tv.Value)
}

// verbArg is one format verb and the 0-based index of the variadic
// argument it consumes.
type verbArg struct {
	verb rune
	arg  int
}

// verbArgs parses a printf format string into its verb/argument pairing.
// ok is false when the format cannot be paired statically: empty
// (non-constant) or using explicit argument indexes ("%[2]d").
func verbArgs(format string) ([]verbArg, bool) {
	if format == "" {
		return nil, false
	}
	var out []verbArg
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags, width and precision; '*' consumes an argument.
		for i < len(runes) {
			c := runes[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '\'' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verbArg{verb: runes[i], arg: arg})
		arg++
	}
	return out, true
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}
