// Contract-analyzer fixture tests. Each fixture package under
// testdata/src seeds positive findings (matched by // want regexps),
// negative cases on the surrounding lines, and at least one reasoned
// //lint:<check>-ok suppression. The observerpurity fixture lives at
// the import path repro/internal/engine because that analyzer protects
// types by package-path suffix.
package analysistest_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/costbalance"
	"repro/internal/analysis/injectoronce"
	"repro/internal/analysis/observerpurity"
	"repro/internal/analysis/sentinelwrap"
	"repro/internal/analysis/snapshotdeep"
)

func TestSentinelWrap(t *testing.T) {
	analysistest.Run(t, sentinelwrap.Analyzer, "sentinelwrap/a")
}

func TestSentinelWrapClean(t *testing.T) {
	analysistest.RunClean(t, sentinelwrap.Analyzer, "sentinelwrap/clean")
}

func TestSnapshotDeep(t *testing.T) {
	analysistest.Run(t, snapshotdeep.Analyzer, "snapshotdeep/a")
}

func TestCostBalance(t *testing.T) {
	analysistest.Run(t, costbalance.Analyzer, "costbalance/a")
}

func TestInjectorOnce(t *testing.T) {
	analysistest.Run(t, injectoronce.Analyzer, "injectoronce/a")
}

func TestObserverPurity(t *testing.T) {
	analysistest.Run(t, observerpurity.Analyzer, "repro/internal/engine")
}
