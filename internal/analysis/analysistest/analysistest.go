// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want expectations —
// the same fixture convention as golang.org/x/tools' analysistest,
// reimplemented on the standard library (this build environment has no
// module proxy, so x/tools cannot be vendored).
//
// A fixture package lives at testdata/src/<import/path>/ relative to the
// calling test's package directory; the import path is what the
// analyzer's AppliesTo filter sees, so path-scoped analyzers are
// exercised with realistic paths ("repro/internal/engine"). Expectations
// are comments on the line the diagnostic is expected:
//
//	for k := range m { // want `range over map`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match one diagnostic on that line, in order; lines
// without a want comment must produce no diagnostics. Fixtures are
// type-checked against the real standard library (compiled from GOROOT
// source), so math/rand and time resolve to the genuine packages.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package at testdata/src/<pkgPath>, applies the
// analyzer and checks diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	diags, fset, files := runAnalyzer(t, a, pkgPath)

	type key struct {
		file string
		line int
	}
	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	var keys []key
	want := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s:%d: %v", name, fset.Position(c.Pos()).Line, err)
				}
				if len(pats) == 0 {
					continue
				}
				k := key{name, fset.Position(c.Pos()).Line}
				want[k] = append(want[k], pats...)
			}
		}
	}
	for k := range want { //lint:maporder-ok keys are sorted before use
		keys = append(keys, k)
	}
	for k := range got { //lint:maporder-ok keys are sorted before use
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})

	for _, k := range keys {
		g, w := got[k], want[k]
		if len(g) != len(w) {
			t.Errorf("%s:%d: got %d diagnostics %q, want %d", k.file, k.line, len(g), g, len(w))
			continue
		}
		for i := range g {
			if !w[i].MatchString(g[i]) {
				t.Errorf("%s:%d: diagnostic %q does not match %q", k.file, k.line, g[i], w[i])
			}
		}
	}
}

// RunClean asserts the analyzer reports nothing on the fixture package.
func RunClean(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	diags, fset, _ := runAnalyzer(t, a, pkgPath)
	for _, d := range diags {
		t.Errorf("%s: unexpected diagnostic: %s", fset.Position(d.Pos), d.Message)
	}
}

// runAnalyzer parses and type-checks the fixture and returns the
// analyzer's diagnostics in positional order.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkgPath string) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", pkgPath, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture package %s has no Go files", pkgPath)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("fixture typecheck: %v", err) },
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not type-check: %v", pkgPath, err)
	}

	if a.AppliesTo != nil && !a.AppliesTo(analysis.StripVariant(pkgPath)) {
		t.Fatalf("analyzer %s does not apply to fixture path %s", a.Name, pkgPath)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Path:      pkgPath,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, fset, files
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"[^\"]*\")")

// parseWant extracts the expectation regexps from one comment: a comment
// whose text (after //) starts with "want" carries one or more quoted
// patterns.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil, nil
	}
	raw := wantRE.FindAllString(rest, -1)
	if len(raw) == 0 {
		return nil, fmt.Errorf("want comment carries no quoted pattern: %s", comment)
	}
	pats := make([]*regexp.Regexp, len(raw))
	for i, r := range raw {
		re, err := regexp.Compile(r[1 : len(r)-1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %w", r, err)
		}
		pats[i] = re
	}
	return pats, nil
}
