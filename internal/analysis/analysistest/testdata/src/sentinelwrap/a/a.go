// Package a seeds sentinelwrap violations: sentinel-derived errors must
// cross every boundary wrapped with %w (or errors.Join), never %v/%s or
// a flattening .Error().
package a

import (
	"errors"
	"fmt"
)

// ErrBudget is the package sentinel.
var ErrBudget = errors.New("budget exhausted")

// fail wraps the sentinel properly; callers inherit the carrier fact.
func fail(stage string) error {
	return fmt.Errorf("stage %s: %w", stage, ErrBudget)
}

func dropDirect() error {
	return fmt.Errorf("run: %v", ErrBudget) // want `sentinel ErrBudget formatted with %v drops the error chain`
}

func dropTransitive() error {
	return fmt.Errorf("outer: %v", fail("inner")) // want `error carrying sentinel ErrBudget formatted with %v`
}

func dropLocal() error {
	err := fail("x")
	return fmt.Errorf("outer: %s", err) // want `error carrying sentinel ErrBudget formatted with %s`
}

func dropParam(err error) error {
	return fmt.Errorf("wrap: %v", err) // want `incoming error err formatted with %v`
}

func flatten() error {
	err := fail("y")
	return errors.New(err.Error()) // want `\.Error\(\) on error carrying sentinel ErrBudget flattens`
}

// wrapOK keeps the chain: no finding.
func wrapOK() error {
	return fmt.Errorf("outer: %w", fail("ok"))
}

// joinOK keeps both chains: no finding.
func joinOK(err error) error {
	return errors.Join(ErrBudget, err)
}

// formatValueOK formats plain values, not errors: no finding.
func formatValueOK(n int) error {
	return fmt.Errorf("n = %d out of range", n)
}

// summaryOK deliberately renders the chain into a display string.
func summaryOK() error {
	//lint:sentinelwrap-ok human-readable summary line, chain not needed downstream
	return fmt.Errorf("summary: %v", ErrBudget)
}
