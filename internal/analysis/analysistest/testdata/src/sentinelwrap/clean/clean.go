// Package clean wraps every sentinel with %w: nothing to report.
package clean

import (
	"errors"
	"fmt"
)

// ErrCrash is the package sentinel.
var ErrCrash = errors.New("processor crashed")

func runPhase(k int) error {
	if k < 0 {
		return fmt.Errorf("phase %d: %w", k, ErrCrash)
	}
	return nil
}

func retry(k int) error {
	if err := runPhase(k); err != nil {
		return fmt.Errorf("retrying: %w", err)
	}
	return nil
}

func describe(k int) string {
	return fmt.Sprintf("phase %d", k)
}
