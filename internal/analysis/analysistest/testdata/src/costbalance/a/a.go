// Package a seeds costbalance violations: every cost-accounting Mark
// must flow into a Rewind/Commit or escape into a struct whose type
// knows how to rewind it.
package a

// Mark is the fixture stand-in for cost.Mark.
type Mark struct{ n int }

// Report is the fixture stand-in for cost.Report.
type Report struct {
	phases []int
	depth  int
}

func (r *Report) Mark() Mark { return Mark{n: len(r.phases)} }

func (r *Report) Rewind(m Mark) {
	r.phases = r.phases[:m.n]
}

func (r *Report) Commit(m Mark) { r.depth = m.n }

func work(r *Report) { r.phases = append(r.phases, 1) }

func discard(r *Report) {
	r.Mark() // want `result of Mark\(\) discarded`
}

func leak(r *Report) {
	m := r.Mark() // want `mark m is captured but never rewound`
	_ = m
	work(r)
}

// balanced consumes the mark directly: no finding.
func balanced(r *Report) {
	m := r.Mark()
	work(r)
	r.Rewind(m)
}

// committed consumes through the Commit spelling: no finding.
func committed(r *Report) {
	m := r.Mark()
	work(r)
	r.Commit(m)
}

// viaHelper consumes through an interprocedural fact: restore carries
// the "rewinds" summary, so passing m to it counts.
func viaHelper(r *Report) {
	m := r.Mark()
	work(r)
	restore(r, m)
}

func restore(r *Report, m Mark) { r.Rewind(m) }

// holder stores a Mark but no method ever rewinds it.
type holder struct {
	ck Mark // want `stores a cost mark in field ck but no method of holder ever rewinds`
}

func (h *holder) save(r *Report) { h.ck = r.Mark() }

// checkpoint stores a Mark and undoes through it: no finding.
type checkpoint struct {
	ck Mark
}

func (c *checkpoint) save(r *Report) { c.ck = r.Mark() }
func (c *checkpoint) undo(r *Report) { r.Rewind(c.ck) }

// probe keeps a Mark purely for comparison; the debt is documented.
type probe struct {
	//lint:costbalance-ok diagnostic snapshot, compared against later marks, never rewound
	at Mark
}

func (p *probe) observe(r *Report) { p.at = r.Mark() }

// batch is the fixture stand-in for a struct-of-arrays request bundle
// (engine.Batch): parallel address/value columns submitted as one unit.
type batch struct {
	addrs []int32
	vals  []int64
}

func submit(r *Report, b batch) { r.phases = append(r.phases, len(b.addrs)) }

// submitRetry is the batch-submit retry shape: each attempt pins a mark
// before submitting the whole column bundle and rewinds the attempt on
// failure — every mark is consumed, no finding.
func submitRetry(r *Report, b batch, ok func() bool) {
	for try := 0; try < 3; try++ {
		m := r.Mark()
		submit(r, b)
		if ok() {
			r.Commit(m)
			return
		}
		r.Rewind(m)
	}
}

// submitLeaky pins a mark per batch chunk but forgets the rewind on the
// overflow path: the mark never reaches a consumer.
func submitLeaky(r *Report, chunks []batch) {
	for _, b := range chunks {
		m := r.Mark() // want `mark m is captured but never rewound`
		submit(r, b)
		_ = m
	}
}

// columnCheckpoint stores the mark taken at the batch boundary alongside
// the staged columns and rewinds through it when the submit aborts: the
// stored mark is consumed by a method, no finding.
type columnCheckpoint struct {
	staged batch
	ck     Mark
}

func (c *columnCheckpoint) stage(r *Report, b batch) {
	c.staged = b
	c.ck = r.Mark()
	submit(r, c.staged)
}

func (c *columnCheckpoint) abort(r *Report) { r.Rewind(c.ck) }
