// Package a seeds costbalance violations: every cost-accounting Mark
// must flow into a Rewind/Commit or escape into a struct whose type
// knows how to rewind it.
package a

// Mark is the fixture stand-in for cost.Mark.
type Mark struct{ n int }

// Report is the fixture stand-in for cost.Report.
type Report struct {
	phases []int
	depth  int
}

func (r *Report) Mark() Mark { return Mark{n: len(r.phases)} }

func (r *Report) Rewind(m Mark) {
	r.phases = r.phases[:m.n]
}

func (r *Report) Commit(m Mark) { r.depth = m.n }

func work(r *Report) { r.phases = append(r.phases, 1) }

func discard(r *Report) {
	r.Mark() // want `result of Mark\(\) discarded`
}

func leak(r *Report) {
	m := r.Mark() // want `mark m is captured but never rewound`
	_ = m
	work(r)
}

// balanced consumes the mark directly: no finding.
func balanced(r *Report) {
	m := r.Mark()
	work(r)
	r.Rewind(m)
}

// committed consumes through the Commit spelling: no finding.
func committed(r *Report) {
	m := r.Mark()
	work(r)
	r.Commit(m)
}

// viaHelper consumes through an interprocedural fact: restore carries
// the "rewinds" summary, so passing m to it counts.
func viaHelper(r *Report) {
	m := r.Mark()
	work(r)
	restore(r, m)
}

func restore(r *Report, m Mark) { r.Rewind(m) }

// holder stores a Mark but no method ever rewinds it.
type holder struct {
	ck Mark // want `stores a cost mark in field ck but no method of holder ever rewinds`
}

func (h *holder) save(r *Report) { h.ck = r.Mark() }

// checkpoint stores a Mark and undoes through it: no finding.
type checkpoint struct {
	ck Mark
}

func (c *checkpoint) save(r *Report) { c.ck = r.Mark() }
func (c *checkpoint) undo(r *Report) { r.Rewind(c.ck) }

// probe keeps a Mark purely for comparison; the debt is documented.
type probe struct {
	//lint:costbalance-ok diagnostic snapshot, compared against later marks, never rewound
	at Mark
}

func (p *probe) observe(r *Report) { p.at = r.Mark() }
