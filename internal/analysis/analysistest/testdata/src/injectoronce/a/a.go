// Package a seeds injectoronce violations: the fault injector may be
// consulted only from commit, only through consultInjector, and its RNG
// may be drawn only on the Inject call path.
package a

import "math/rand"

// InjectCtx is the fixture stand-in for fault.InjectCtx.
type InjectCtx struct {
	Phase int
	P     int
}

// Verdict is the fixture stand-in for fault.Verdict.
type Verdict struct {
	Class int
}

// Plan owns the injector RNG.
type Plan struct {
	rng  *rand.Rand
	seed int64
}

func (p *Plan) Inject(ic InjectCtx) Verdict {
	if p.fires(ic) {
		return p.verdict(ic)
	}
	return Verdict{}
}

// fires and verdict draw on the Inject path: fine.
func (p *Plan) fires(ic InjectCtx) bool { return p.rng.Float64() < 0.5 }

func (p *Plan) verdict(ic InjectCtx) Verdict { return Verdict{Class: p.rng.Intn(ic.P + 1)} }

// peek draws off the consult path, shifting the fault schedule.
func (p *Plan) peek() int {
	return p.rng.Intn(8) // want `draws from Plan's injector RNG outside the Inject call path`
}

type core struct {
	inj *Plan
}

func (c *core) consultInjector(cells int) Verdict {
	return c.inj.Inject(InjectCtx{P: cells})
}

// commit is the one sanctioned consultation site: no finding.
func (c *core) commit() {
	c.consultInjector(4)
}

func (c *core) probe() Verdict {
	return c.consultInjector(1) // want `consultInjector called from core\.probe`
}

func (c *core) eager() Verdict {
	return c.inj.Inject(InjectCtx{}) // want `injector Inject called from core\.eager`
}

// debugProbe consults off the commit path deliberately.
func (c *core) debugProbe() Verdict {
	//lint:injectoronce-ok debug CLI inspection path, not a simulation phase
	return c.consultInjector(1)
}
