// Package engine is a fixture shaped like the real engine package:
// core machine state plus observers hooked into the phase loop.
// observerpurity protects types declared under .../internal/engine, so
// the fixture lives at that import path.
package engine

// PhaseCost is the per-phase accounting handed to PhaseEnd.
type PhaseCost struct {
	Time int
}

// Request is one memory request handed to Request.
type Request struct {
	Proc int
}

// Core is the protected machine state.
type Core struct {
	phase int
	time  int
}

func (c *Core) bump() { c.time++ }

// EventLog accumulates into itself: the sanctioned observer pattern.
type EventLog struct {
	Lines []string
	core  *Core
}

func (l *EventLog) PhaseStart(phase int)             { l.Lines = append(l.Lines, "start") }
func (l *EventLog) Request(phase int, r Request)     { l.Lines = append(l.Lines, "req") }
func (l *EventLog) PhaseEnd(phase int, pc PhaseCost) { l.Lines = append(l.Lines, "end") }

// Meddler writes engine state from inside the hooks.
type Meddler struct {
	core *Core
}

func (m *Meddler) PhaseStart(phase int) { // want `observer method Meddler\.PhaseStart \(transitively\) writes engine state`
	m.core.phase = phase
}

func (m *Meddler) Request(phase int, r Request) {}

func (m *Meddler) PhaseEnd(phase int, pc PhaseCost) { // want `observer method Meddler\.PhaseEnd \(transitively\) writes engine state`
	m.core.bump()
}

// Tuner mutates deliberately; the exemption is documented in DESIGN.md.
type Tuner struct {
	core *Core
}

//lint:observerpurity-ok prototype auto-tuner, exemption tracked in DESIGN.md
func (t *Tuner) PhaseStart(phase int) { t.core.phase = phase }

func (t *Tuner) Request(phase int, r Request) {}

func (t *Tuner) PhaseEnd(phase int, pc PhaseCost) {}
