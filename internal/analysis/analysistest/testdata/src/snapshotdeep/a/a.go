// Package a seeds snapshotdeep violations: snapshot paths must deep-copy
// reference state, never alias it.
package a

type buffers struct {
	live []int
	ck   []int
	m    map[string]int
	ckm  map[string]int
}

type machine struct {
	b buffers
}

// Snapshot carries a seeded shallow-copy mutant and the sanctioned
// deep-copy idioms side by side.
func (m *machine) Snapshot() {
	m.b.ck = m.b.live // want `stores a shallow slice alias`
	m.b.ck = m.b.ck[:0]
	m.b.ck = append(m.b.ck[:0], m.b.live...)
	saveMap(&m.b)
	m.share(m.b.live)
}

func (m *machine) Restore() {
	copy(m.b.live, m.b.ck)
	for k := range m.b.ckm {
		m.b.m[k] = m.b.ckm[k]
	}
}

// saveMap is reachable from Snapshot: its alias write is on the path.
func saveMap(b *buffers) {
	b.ckm = b.m // want `stores a shallow map alias`
}

// offPath aliases too, but no snapshot path reaches it: not reported.
func offPath(b *buffers) {
	b.ckm = b.m
}

// share is reachable from Snapshot and aliases deliberately.
func (m *machine) share(src []int) {
	//lint:snapshotdeep-ok read-only view for the verifier, never restored
	m.b.live = src
}

// journal roots through the Checkpoint/Rollback pair.
type journal struct {
	rows  []int
	saved []int
}

func (j *journal) Checkpoint() {
	j.saved = j.rows[1:] // want `stores a shallow slice alias`
}

func (j *journal) Rollback() {
	j.rows = append(j.rows[:0], j.saved...)
}

// half has Snapshot but no Restore: not a Snapshotter, so its alias
// stays unreported (nothing rolls back through it).
type half struct{ a, b []int }

func (h *half) Snapshot() { h.a = h.b }
