// Package costbalance enforces the Mark/Rewind discipline of the cost
// report: a mark captured with cost.Report.Mark pins a rollback point,
// and the exactness guarantee of the fault engine (DESIGN.md §6 — an
// aborted attempt leaves *zero* residue in the report) holds only if
// every captured mark is eventually consumed by a Rewind/Commit or
// escapes into state that a later rewind reads. A mark that is captured
// and dropped is a checkpoint that can never be rolled back to; a Mark()
// call whose result is discarded is pure dead weight that usually means
// the Rewind went missing in a refactor.
//
// Three rules, matched structurally (a Mark method is any niladic method
// returning a type named Mark; a consumer is any function named Rewind
// or Commit taking a Mark first) so fixtures need no repro imports:
//
//  1. a Mark() call as a bare statement discards the rollback point;
//  2. a local variable holding a mark must be consumed: passed to a
//     Rewind/Commit, passed to a function that transitively rewinds
//     (via the interprocedural "rewinds" facts), stored into a field,
//     returned, or placed in a composite literal;
//  3. a struct field of type Mark must be consumed by at least one
//     method of that struct (transitively, via the same facts) — a
//     stored checkpoint nobody rewinds is rule 2 at type scope.
package costbalance

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/interproc"
)

// Analyzer enforces that captured cost marks are rewound or committed.
var Analyzer = &analysis.Analyzer{
	Name: "costbalance",
	Doc:  "flag cost.Report marks that are captured but never rewound or committed",
	Run:  run,
}

// rewindsFact is the payload exported for functions that (transitively)
// consume a mark.
const rewindsFact = "rewinds"

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	// "rewinds" fixpoint: seeded by direct Rewind/Commit calls,
	// propagated to callers within the package and, through the facts
	// files, across packages.
	local := make(map[string]bool)
	for _, sym := range g.Order {
		if callsConsumer(pass, g.Funcs[sym]) {
			local[sym] = true
		}
	}
	rewinds := g.Propagate(local, func(c interproc.Callee) bool {
		payload, ok := pass.DepFact(c.PkgPath, c.Sym)
		return ok && payload == rewindsFact
	})
	for _, sym := range g.Order {
		if rewinds[sym] {
			pass.ExportFact(sym, rewindsFact)
		}
	}

	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		checkBody(pass, g, rewinds, info)
	}
	checkMarkFields(pass, g, rewinds)
	return nil
}

// isMarkCall matches a call to a Mark-shaped method: niladic, one result
// whose type is named Mark (cost.Report.Mark and any structural twin).
func isMarkCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := interproc.CalleeFunc(pass, call)
	if fn == nil || fn.Name() != "Mark" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	return isMarkType(sig.Results().At(0).Type())
}

// isMarkType reports whether t (possibly behind a pointer) is a named
// type called Mark.
func isMarkType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Mark"
}

// isConsumerCall matches a call to a Rewind/Commit-shaped function: its
// name is Rewind or Commit and its first parameter is a Mark.
func isConsumerCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := interproc.CalleeFunc(pass, call)
	if fn == nil || (fn.Name() != "Rewind" && fn.Name() != "Commit") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() >= 1 && isMarkType(sig.Params().At(0).Type())
}

func callsConsumer(pass *analysis.Pass, info *interproc.FuncInfo) bool {
	found := false
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isConsumerCall(pass, call) {
			found = true
		}
		return !found
	})
	return found
}

// checkBody applies rules 1 and 2 to one function.
func checkBody(pass *analysis.Pass, g *interproc.Graph, rewinds map[string]bool, info *interproc.FuncInfo) {
	// Rule 1: Mark() as a bare statement.
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok || !isMarkCall(pass, call) || pass.Allowlisted(info.File, st.Pos()) {
			return true
		}
		pass.Reportf(st.Pos(),
			"result of Mark() discarded; store the mark and balance it with Rewind/Commit, or annotate //lint:costbalance-ok <reason>")
		return true
	})

	// Rule 2: collect mark-holding locals, then verify each is consumed.
	marks := make(map[types.Object]*ast.Ident)
	var order []types.Object
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isMarkCall(pass, call) {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue // reassignment of a field/param: escapes by definition
			}
			if _, seen := marks[obj]; !seen {
				marks[obj] = id
				order = append(order, obj)
			}
		}
		return true
	})
	if len(marks) == 0 {
		return
	}
	consumed := consumedObjects(pass, g, rewinds, info)
	for _, obj := range order {
		id := marks[obj]
		if consumed[obj] || pass.Allowlisted(info.File, id.Pos()) {
			continue
		}
		pass.Reportf(id.Pos(),
			"mark %s is captured but never rewound, committed, stored or returned; balance it with Rewind/Commit or annotate //lint:costbalance-ok <reason>", id.Name)
	}
}

// consumedObjects returns the local objects that escape or are consumed:
// passed to a Rewind/Commit or a transitively-rewinding callee, stored
// through a selector, returned, or placed in a composite literal.
func consumedObjects(pass *analysis.Pass, g *interproc.Graph, rewinds map[string]bool, info *interproc.FuncInfo) map[types.Object]bool {
	consumed := make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				consumed[obj] = true
			}
		}
	}
	ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isConsumerCall(pass, x) || calleeRewinds(pass, g, rewinds, x) {
				for _, arg := range x.Args {
					mark(arg)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // local-to-local copy is not consumption
				}
				if i < len(x.Rhs) {
					mark(x.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				mark(r)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(el)
				}
			}
		}
		return true
	})
	return consumed
}

// calleeRewinds reports whether the call's target transitively consumes
// a mark, per the local fixpoint or the dependency facts.
func calleeRewinds(pass *analysis.Pass, g *interproc.Graph, rewinds map[string]bool, call *ast.CallExpr) bool {
	fn := interproc.CalleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sym := interproc.Symbol(fn)
	if fn.Pkg().Path() == pass.Pkg.Path() {
		return rewinds[sym]
	}
	payload, ok := pass.DepFact(fn.Pkg().Path(), sym)
	return ok && payload == rewindsFact
}

// checkMarkFields applies rule 3: every struct field of type Mark needs
// at least one method of the owning struct that transitively rewinds.
func checkMarkFields(pass *analysis.Pass, g *interproc.Graph, rewinds map[string]bool) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructFields(pass, g, rewinds, f, ts, st)
			}
		}
	}
}

func checkStructFields(pass *analysis.Pass, g *interproc.Graph, rewinds map[string]bool, f *ast.File, ts *ast.TypeSpec, st *ast.StructType) {
	if ts.Name.Name == "Mark" {
		return // the Mark type itself, not a holder
	}
	var markFields []*ast.Field
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if ok && tv.Type != nil && isMarkType(tv.Type) {
			markFields = append(markFields, field)
		}
	}
	if len(markFields) == 0 {
		return
	}
	prefix := ts.Name.Name + "."
	for _, sym := range g.Order {
		if len(sym) > len(prefix) && sym[:len(prefix)] == prefix && rewinds[sym] {
			return // some method of the struct consumes the stored mark
		}
	}
	for _, field := range markFields {
		if pass.Allowlisted(f, field.Pos()) {
			continue
		}
		name := "_"
		if len(field.Names) > 0 {
			name = field.Names[0].Name
		}
		pass.Reportf(field.Pos(),
			"type %s stores a cost mark in field %s but no method of %s ever rewinds or commits it; add the Rewind/Commit path or annotate //lint:costbalance-ok <reason>",
			ts.Name.Name, name, ts.Name.Name)
	}
}
