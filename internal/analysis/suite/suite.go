// Package suite assembles the project's analyzers in reporting order. It
// sits above the individual analyzer packages so the framework package
// stays import-cycle-free and tools (cmd/reprolint, the suite tests) have
// one place to pull the full set from.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicmix"
	"repro/internal/analysis/bitaddr"
	"repro/internal/analysis/colescape"
	"repro/internal/analysis/commitpurity"
	"repro/internal/analysis/costbalance"
	"repro/internal/analysis/framestate"
	"repro/internal/analysis/globalrand"
	"repro/internal/analysis/goleak"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/injectoronce"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/observerpurity"
	"repro/internal/analysis/sentinelwrap"
	"repro/internal/analysis/snapshotdeep"
	"repro/internal/analysis/wallclock"
)

// Analyzers returns the full reprolint suite: the per-file determinism
// checks of PR 3 first, then the interprocedural contract analyzers,
// then the CFG-based dataflow analyzers of PR 8, then the concurrency
// analyzers of PR 10 (goroutine lifecycle, lock discipline, atomic
// access discipline, wire-protocol frame state).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		globalrand.Analyzer,
		wallclock.Analyzer,
		commitpurity.Analyzer,
		sentinelwrap.Analyzer,
		snapshotdeep.Analyzer,
		costbalance.Analyzer,
		injectoronce.Analyzer,
		observerpurity.Analyzer,
		hotpathalloc.Analyzer,
		colescape.Analyzer,
		bitaddr.Analyzer,
		goleak.Analyzer,
		lockorder.Analyzer,
		atomicmix.Analyzer,
		framestate.Analyzer,
	}
}
