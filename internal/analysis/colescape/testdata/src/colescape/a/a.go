// Fixture: pooled-column borrows escaping via every sink class, plus
// the copy idioms and the reasoned allowlist that must stay silent.
package a

type Mem struct {
	mem  []int64
	free []int64
}

type MemCtx struct {
	m *Mem
}

// ReadBlock is a borrow point: it hands out an alias into pooled
// storage, so its own return is the first escape the analyzer sees.
func (c *MemCtx) ReadBlock(addr, k int) []int64 {
	return c.m.mem[addr : addr+k] // want `column sub-slice, derived from pooled engine storage, escapes the phase via return value`
}

// Data is the documented accessor exemption: reason-carrying allowlist,
// callers are policed at their use sites instead.
func (m *Mem) Data() []int64 {
	return m.mem //lint:colescape-ok documented borrow point: callers are policed at their use sites
}

type holder struct {
	ref []int64
}

var global []int64

// keep stores its second parameter beyond the call: the "e1" fact is
// recorded silently here and reported at tainted call sites.
func keep(h *holder, b []int64) {
	h.ref = b
}

func stash(c *MemCtx, h *holder, ch chan []int64) {
	b := c.ReadBlock(0, 4)
	h.ref = b    // want `"b", derived from pooled engine storage, escapes the phase via store to field ref`
	global = b   // want `"b", derived from pooled engine storage, escapes the phase via store to package variable global`
	ch <- b      // want `"b", derived from pooled engine storage, escapes the phase via channel send`
	keep(h, b)   // want `"b", derived from pooled engine storage, escapes the phase via call to keep, which retains its argument`
}

func leak(c *MemCtx) []int64 {
	b := c.ReadBlock(0, 4)
	return b // want `"b", derived from pooled engine storage, escapes the phase via return value`
}

// snapshot element-copies the borrow: copies are not escapes.
func snapshot(c *MemCtx) []int64 {
	b := c.ReadBlock(0, 4)
	out := make([]int64, 0, len(b))
	out = append(out, b...)
	return out
}

// sum ranges scalar cells out of the borrow: scalars are copies.
func sum(c *MemCtx) int64 {
	var s int64
	for _, v := range c.ReadBlock(0, 4) {
		s += v
	}
	return s
}

// spawn stashes a borrow from inside a worker closure: escape sinks are
// checked inside function literals too (each gets its own graph).
func spawn(c *MemCtx, h *holder, run func(func())) {
	run(func() {
		b := c.ReadBlock(0, 4)
		h.ref = b // want `"b", derived from pooled engine storage, escapes the phase via store to field ref`
	})
}

// recycle writes INTO a pooled field: pool management, not an escape
// (commitpurity owns that contract).
func recycle(m *Mem, b []int64) {
	m.free = b
	_ = m.free
}
