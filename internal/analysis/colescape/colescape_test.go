package colescape_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/colescape"
)

func TestColumnEscape(t *testing.T) {
	analysistest.Run(t, colescape.Analyzer, "colescape/a")
}
