// Package colescape guards the engine's phase-scoped aliasing contract:
// references into pooled storage must not escape the phase that
// borrowed them.
//
// The columnar engines hand out aliases instead of copies on their fast
// paths — MemCtx.ReadBlock returns a sub-slice of the live memory
// image, Mem.Data/BitMem.Words expose the backing arrays, and
// Route.Incoming returns a superstep's pooled inbox row. All of them
// are documented "do not retain": the next phase commit rewrites the
// storage in place (or swaps it into the ping-pong spare), so a
// reference stashed in a struct field, a global, a channel or a return
// value silently starts reading the *next* phase's state — the exact
// kind of nondeterminism the determinism suite can only catch if a
// sampled schedule happens to expose it.
//
// The analyzer runs a forward CFG taint: column-derived values (results
// of ReadBlock/Data/Words/Incoming-shaped calls, and reads of the
// pooled engine types' column fields) taint locals they flow into, and
// a tainted value hitting an escape sink — a store to a non-pooled
// field, global or dereference, a channel send, a return, a composite
// literal, or a call argument a callee summary says escapes — is
// reported. Only reference-shaped values taint (slices, pointers, maps,
// interfaces, and structs containing them; strings and scalars are
// copies by construction), so ranging int64 cells out of a block is
// free. Element-wise copies (append(dst, src...), copy) are copies, not
// escapes. Writes INTO pooled fields are engine pool management and are
// commitpurity's business, not an escape.
//
// Interprocedural flow rides per-function facts: "e<i>" (parameter i
// escapes) and "r<i>" (parameter i flows to the return value), so
// passing a borrowed block to a helper that stores it is flagged at the
// call site, while identity-shaped helpers stay transparent.
//
// Suppression: //lint:colescape-ok <reason>. The engine's own accessor
// returns (ReadBlock, Data, Words, Incoming) are the intended, documented
// exemptions: they are the borrow points whose callers this analyzer
// polices.
package colescape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/cfg"
	"repro/internal/analysis/interproc"
)

// Analyzer flags phase-scoped engine references escaping the phase.
var Analyzer = &analysis.Analyzer{
	Name: "colescape",
	Doc:  "flag references into pooled engine columns escaping the phase (stores, sends, returns)",
	Run:  run,
}

// sourceMethods are the borrow points: methods handing out aliases into
// pooled storage, matched by name + "returns a reference" shape so the
// check also covers fixtures and future engines without importing repro
// packages.
var sourceMethods = map[string]bool{
	"ReadBlock": true, "Data": true, "Words": true, "Incoming": true,
}

// pooledFields lists the engine's pooled column fields by owning type;
// reading one of these through a selector is a borrow even without an
// accessor call. The names mirror the commitpurity protected-state
// table.
var pooledFields = map[string]map[string]bool{
	"Mem":    fields("mem", "ckMem", "ctxs"),
	"BitMem": fields("words", "ckWords", "ctxs"),
	"MemCtx": fields("readAddrs", "writeAddrs", "writeVals"),
	"BitCtx": fields("reads", "writes"),
	"memBuf": fields("rAddr", "rProc", "wAddr", "wProc", "wVal", "mOp", "mRW", "touched"),
	"bitBuf": fields("rAddr", "rProc", "wPacked", "wProc", "mOp", "mRW", "touched"),
	"Route":  fields("inbox", "spare", "ckInbox"),
	"Sends":  fields("msgs", "dsts"),
	"EventLog": fields("events", "ends"),
}

func fields(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// Taint bits: bit 0 marks a locally-borrowed column reference; bit i+1
// marks a value derived from parameter i (for escape summaries).
const localBit = 1

func paramBit(i int) uint64 { return 1 << uint(i+1) }

// summary is one function's escape summary while the package-local
// fixpoint runs.
type summary struct {
	escapes map[int]bool // parameter index stores its argument beyond the call
	returns map[int]bool // parameter index flows to a return value
}

func (s *summary) payload() string {
	var parts []string
	for _, i := range sortedKeys(s.escapes) {
		parts = append(parts, fmt.Sprintf("e%d", i))
	}
	for _, i := range sortedKeys(s.returns) {
		parts = append(parts, fmt.Sprintf("r%d", i))
	}
	return strings.Join(parts, ",")
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m { //lint:maporder-ok keys are sorted before use
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func parsePayload(p string) summary {
	s := summary{escapes: map[int]bool{}, returns: map[int]bool{}}
	for _, part := range strings.Split(p, ",") {
		var i int
		if _, err := fmt.Sscanf(part, "e%d", &i); err == nil && strings.HasPrefix(part, "e") {
			s.escapes[i] = true
		} else if _, err := fmt.Sscanf(part, "r%d", &i); err == nil && strings.HasPrefix(part, "r") {
			s.returns[i] = true
		}
	}
	return s
}

func run(pass *analysis.Pass) error {
	pass.CheckDirectives()
	g := interproc.Build(pass)

	// Package-local fixpoint over escape summaries: re-analyze until no
	// function's summary grows (callee summaries sharpen caller taint),
	// then a final reporting pass with the stable summaries.
	summaries := make(map[string]*summary, len(g.Funcs))
	for _, sym := range g.Order {
		summaries[sym] = &summary{escapes: map[int]bool{}, returns: map[int]bool{}}
	}
	for changed := true; changed; {
		changed = false
		for _, sym := range g.Order {
			info := g.Funcs[sym]
			if pass.InTestFile(info.Decl.Pos()) {
				continue
			}
			s := analyzeFunc(pass, g, summaries, info, nil)
			if grewSummary(summaries[sym], s) {
				summaries[sym] = s
				changed = true
			}
		}
	}
	for _, sym := range g.Order {
		info := g.Funcs[sym]
		if pass.InTestFile(info.Decl.Pos()) {
			continue
		}
		analyzeFunc(pass, g, summaries, info, func(pos token.Pos, what, how string) {
			if pass.Allowlisted(info.File, pos) {
				return
			}
			pass.Reportf(pos,
				"%s, derived from pooled engine storage, escapes the phase via %s; copy the data before retaining it or annotate //lint:colescape-ok <reason>",
				what, how)
		})
		if p := summaries[sym].payload(); p != "" {
			pass.ExportFact(sym, p)
		}
	}
	return nil
}

func grewSummary(old, next *summary) bool {
	if len(next.escapes) > len(old.escapes) || len(next.returns) > len(old.returns) {
		return true
	}
	for i := range next.escapes { //lint:maporder-ok pure subset test
		if !old.escapes[i] {
			return true
		}
	}
	for i := range next.returns { //lint:maporder-ok pure subset test
		if !old.returns[i] {
			return true
		}
	}
	return false
}

// analyzeFunc runs the escape taint over one function. When report is
// nil only the summary is computed (fixpoint iterations); the final pass
// reports sinks hit by locally-borrowed taint.
func analyzeFunc(pass *analysis.Pass, g *interproc.Graph, summaries map[string]*summary, info *interproc.FuncInfo, report func(pos token.Pos, what, how string)) *summary {
	fd := info.Decl
	out := &summary{escapes: map[int]bool{}, returns: map[int]bool{}}
	params := paramObjects(pass, fd)

	a := &analyzer{
		pass: pass, g: g, summaries: summaries, params: params,
		out: out, report: report, body: fd.Body,
	}
	analyzeBody := func(name string, body *ast.BlockStmt) {
		graph := cfg.New(name, body)
		reach := graph.Reachable()
		in := graph.Forward(a.transfer)
		for _, b := range graph.Blocks {
			if !reach[b] {
				continue
			}
			state := in[b].Clone()
			for _, n := range b.Nodes {
				a.checkSinks(n, state)
				a.transfer(n, state)
			}
		}
	}
	analyzeBody(info.Sym, fd.Body)
	// The engine's phase work runs inside sched.Blocks worker closures;
	// each literal gets its own graph (the replay above does not descend
	// into literals). Captured parameter objects still resolve through
	// a.params, so closure sinks feed the enclosing summary.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			analyzeBody(info.Sym+".func", lit.Body)
		}
		return true
	})
	return out
}

// paramObjects maps each named parameter object to its index.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]int {
	params := make(map[types.Object]int)
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					params[obj] = i
				}
				i++
			}
		}
	}
	return params
}

type analyzer struct {
	pass      *analysis.Pass
	g         *interproc.Graph
	summaries map[string]*summary
	params    map[types.Object]int
	out       *summary
	report    func(pos token.Pos, what, how string)
	body      *ast.BlockStmt
}

// transfer propagates taint through assignments and range statements.
// Monotone: bits are only added (the Forward solver's contract).
func (a *analyzer) transfer(n ast.Node, state cfg.Facts) {
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				a.flowInto(lhs, a.taintOf(st.Rhs[i], state), state)
			}
		} else if len(st.Rhs) == 1 {
			// x, y := f(): every lhs inherits the call's taint.
			t := a.taintOf(st.Rhs[0], state)
			for _, lhs := range st.Lhs {
				a.flowInto(lhs, t, state)
			}
		}
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != len(vs.Names) {
				continue
			}
			for i, name := range vs.Names {
				a.flowInto(name, a.taintOf(vs.Values[i], state), state)
			}
		}
	case *ast.RangeStmt:
		// Ranging a tainted container yields tainted reference elements.
		t := a.taintOf(st.X, state)
		if t == 0 || st.Value == nil {
			return
		}
		if a.refLike(a.pass.TypesInfo.TypeOf(st.Value)) {
			a.flowInto(st.Value, t, state)
		}
	}
}

// flowInto records taint flowing into an identifier target. Non-ident
// targets (field stores, index stores) are sinks, handled in checkSinks.
func (a *analyzer) flowInto(lhs ast.Expr, taint uint64, state cfg.Facts) {
	if taint == 0 {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := identObj(a.pass, id)
	if obj == nil {
		return
	}
	state[obj] |= taint
}

// taintOf computes the taint mask of an expression under the current
// state: borrow-point calls and pooled-field reads introduce localBit;
// identifiers carry their state (parameters carry their param bit);
// slicing/indexing/dereference preserve taint when the result is still
// reference-shaped; callee "r<i>" summaries flow argument taint through
// to call results.
func (a *analyzer) taintOf(e ast.Expr, state cfg.Facts) uint64 {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := identObj(a.pass, x)
		if obj == nil {
			return 0
		}
		t := state[obj]
		if i, ok := a.params[obj]; ok && a.refLike(obj.Type()) {
			t |= paramBit(i)
		}
		return t
	case *ast.SelectorExpr:
		if a.isPooledField(x) {
			return localBit
		}
		// Selecting a field off a tainted struct keeps the taint when
		// the field itself is reference-shaped.
		if a.refLike(a.pass.TypesInfo.TypeOf(x)) {
			return a.taintOf(x.X, state)
		}
		return 0
	case *ast.IndexExpr:
		if !a.refLike(a.pass.TypesInfo.TypeOf(x)) {
			return 0
		}
		return a.taintOf(x.X, state)
	case *ast.SliceExpr:
		return a.taintOf(x.X, state)
	case *ast.StarExpr:
		if !a.refLike(a.pass.TypesInfo.TypeOf(x)) {
			return 0
		}
		return a.taintOf(x.X, state)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return a.taintOf(x.X, state)
		}
		return 0
	case *ast.CallExpr:
		return a.callTaint(x, state)
	case *ast.CompositeLit:
		// A literal wrapping a tainted reference is itself tainted.
		var t uint64
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t |= a.taintOf(el, state)
		}
		return t
	}
	return 0
}

// callTaint computes the taint of a call result: borrow-point methods
// introduce it, conversions preserve it, and callee summaries route
// argument taint to the result.
func (a *analyzer) callTaint(call *ast.CallExpr, state cfg.Facts) uint64 {
	// Conversion? Taint passes through.
	if tv, ok := a.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return a.taintOf(call.Args[0], state)
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			// append(dst, src...) element-copies; the result aliases dst.
			if id.Name == "append" && len(call.Args) > 0 {
				return a.taintOf(call.Args[0], state)
			}
			return 0
		}
	}
	fn := interproc.CalleeFunc(a.pass, call)
	if fn == nil {
		return 0
	}
	if sourceMethods[fn.Name()] && a.returnsReference(fn) {
		return localBit
	}
	// Route argument taint through "r<i>" summaries.
	var t uint64
	s := a.calleeSummary(fn)
	for i, arg := range call.Args {
		if s.returns[i] {
			t |= a.taintOf(arg, state)
		}
	}
	return t
}

// calleeSummary resolves a callee's escape summary: same-package from
// the running fixpoint, cross-package from dependency facts.
func (a *analyzer) calleeSummary(fn *types.Func) summary {
	sym := interproc.Symbol(fn)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if pkg == a.g.PkgPath {
		if s := a.summaries[sym]; s != nil {
			return *s
		}
		return summary{escapes: map[int]bool{}, returns: map[int]bool{}}
	}
	if payload, ok := a.pass.DepFact(pkg, sym); ok {
		return parsePayload(payload)
	}
	return summary{escapes: map[int]bool{}, returns: map[int]bool{}}
}

// returnsReference reports whether fn returns at least one
// reference-shaped value (the source-method name match alone must not
// taint a scalar accessor that happens to share a name).
func (a *analyzer) returnsReference(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if a.refLike(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// checkSinks inspects one node for escape sinks under the given state.
func (a *analyzer) checkSinks(n ast.Node, state cfg.Facts) {
	cfg.Inspect(n, false, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Lhs) == len(x.Rhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs != nil {
					a.checkStore(lhs, rhs, state)
				}
			}
		case *ast.SendStmt:
			a.sink(x.Value, state, "channel send")
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				a.sink(r, state, "return value")
			}
		case *ast.CallExpr:
			a.checkCallArgs(x, state)
		}
		return true
	})
}

// checkStore handles one assignment pair: stores through fields,
// globals, indexes into non-local containers, and dereferences escape;
// stores into the engine's own pooled fields are pool management
// (commitpurity's contract) and are exempt.
func (a *analyzer) checkStore(lhs, rhs ast.Expr, state cfg.Facts) {
	t := a.taintOf(rhs, state)
	if t == 0 {
		return
	}
	if !a.refLike(a.pass.TypesInfo.TypeOf(rhs)) {
		return
	}
	how := ""
	switch target := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := identObj(a.pass, target)
		if obj != nil && obj.Parent() == a.pass.Pkg.Scope() {
			how = "store to package variable " + target.Name
		}
	case *ast.SelectorExpr:
		if a.isPooledField(target) {
			return
		}
		if sel := a.pass.TypesInfo.Selections[target]; sel != nil && sel.Kind() == types.FieldVal {
			how = "store to field " + target.Sel.Name
		}
	case *ast.StarExpr:
		how = "store through pointer"
	case *ast.IndexExpr:
		// Storing into a tainted or non-local container leaks the
		// reference to whoever else holds the container.
		if base, ok := ast.Unparen(target.X).(*ast.SelectorExpr); ok && a.isPooledField(base) {
			return
		}
		switch ast.Unparen(target.X).(type) {
		case *ast.SelectorExpr:
			how = "store into field-held container"
		case *ast.Ident:
			id := ast.Unparen(target.X).(*ast.Ident)
			obj := identObj(a.pass, id)
			if obj != nil && obj.Parent() == a.pass.Pkg.Scope() {
				how = "store into package-level container"
			}
		}
	}
	if how == "" {
		return
	}
	if t&localBit != 0 && a.report != nil {
		a.report(lhs.Pos(), describe(rhs), how)
	}
	a.recordParamEscapes(t)
}

// checkCallArgs flags tainted arguments passed to callees whose summary
// says the parameter escapes.
func (a *analyzer) checkCallArgs(call *ast.CallExpr, state cfg.Facts) {
	fn := interproc.CalleeFunc(a.pass, call)
	if fn == nil {
		return
	}
	s := a.calleeSummary(fn)
	if len(s.escapes) == 0 {
		return
	}
	for i, arg := range call.Args {
		if !s.escapes[i] {
			continue
		}
		t := a.taintOf(arg, state)
		if t == 0 {
			continue
		}
		if t&localBit != 0 && a.report != nil {
			a.report(arg.Pos(), describe(arg), "call to "+fn.Name()+", which retains its argument")
		}
		a.recordParamEscapes(t)
	}
}

// sink reports a tainted value reaching a non-store sink and records
// parameter flow. Returns feed the "r<i>" summary rather than escapes.
func (a *analyzer) sink(e ast.Expr, state cfg.Facts, how string) {
	t := a.taintOf(e, state)
	if t == 0 {
		return
	}
	if how == "return value" {
		if t&localBit != 0 && a.report != nil {
			a.report(e.Pos(), describe(e), how)
		}
		for _, i := range sortedParamIndexes(a.params) {
			if t&paramBit(i) != 0 {
				a.out.returns[i] = true
			}
		}
		return
	}
	if t&localBit != 0 && a.report != nil {
		a.report(e.Pos(), describe(e), how)
	}
	a.recordParamEscapes(t)
}

// recordParamEscapes folds param bits of a sunk taint into the summary.
func (a *analyzer) recordParamEscapes(t uint64) {
	for _, i := range sortedParamIndexes(a.params) {
		if t&paramBit(i) != 0 {
			a.out.escapes[i] = true
		}
	}
}

func sortedParamIndexes(params map[types.Object]int) []int {
	out := make([]int, 0, len(params))
	for _, i := range params { //lint:maporder-ok indexes are sorted before use
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// isPooledField reports whether a selector reads one of the engine's
// pooled column fields (type-name + field-name pair from the table).
func (a *analyzer) isPooledField(sel *ast.SelectorExpr) bool {
	selection := a.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return false
	}
	owner, field := fieldOwner(selection.Recv(), selection.Index())
	return pooledFields[owner][field]
}

// refLike reports whether values of t alias underlying storage: slices,
// pointers, maps, channels, funcs, interfaces, type parameters
// (conservatively), and aggregates containing any of those. Strings are
// immutable and scalars are copies, so neither taints.
func (a *analyzer) refLike(t types.Type) bool {
	return refLikeDepth(t, 0)
}

func refLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Interface:
		return true
	case *types.TypeParam:
		return true
	case *types.Array:
		return refLikeDepth(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}

// describe names the escaping expression for the diagnostic.
func describe(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return fmt.Sprintf("%q", x.Name)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return "result of " + sel.Sel.Name
		}
		return "call result"
	case *ast.SelectorExpr:
		return "field " + x.Sel.Name
	case *ast.SliceExpr, *ast.IndexExpr:
		return "column sub-slice"
	case *ast.UnaryExpr:
		return "column-derived pointer"
	}
	return "column-derived reference"
}

// fieldOwner resolves the named struct type declaring the selected
// field, walking the embedding path (same helper shape as commitpurity).
func fieldOwner(t types.Type, index []int) (owner, field string) {
	for _, i := range index {
		for {
			p, ok := t.(*types.Pointer)
			if !ok {
				break
			}
			t = p.Elem()
		}
		name := ""
		switch n := t.(type) {
		case *types.Named:
			name = n.Obj().Name()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return "", ""
		}
		fv := st.Field(i)
		owner, field = name, fv.Name()
		t = fv.Type()
	}
	return owner, field
}

// identObj resolves an identifier through Uses or Defs.
func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
