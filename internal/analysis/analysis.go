// Package analysis is the project's static-analysis framework: a
// deliberately small, dependency-free mirror of the golang.org/x/tools
// go/analysis API shape. The container this repository builds in has no
// module proxy access, so the framework (and the go vet -vettool driver in
// the sibling unitchecker package) is implemented on the standard library
// alone; analyzers written against it port to the real go/analysis with a
// mechanical rename if x/tools ever becomes available.
//
// The suite exists to make the repository's determinism contract
// machine-checked at compile time instead of merely sampled at test time:
// cost reports and §5 event streams must be byte-identical for every
// Workers setting (see DESIGN.md, "Determinism invariants"), so sources of
// run-to-run nondeterminism — map iteration order, the global math/rand
// source, the host clock, stray writes to the commit engines' internal
// state — are flagged where they are written, not where they break a
// golden file.
//
// Suppression: a finding can be allowlisted with a directive comment on
// the flagged line or the line directly above it:
//
//	//lint:maporder-ok reduction is order-independent (max over values)
//
// The directive key is "<analyzer name>-ok" and the reason is mandatory: a
// bare directive does not suppress and is itself reported, so every
// exemption in the tree carries its justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// FactSet is one analyzer's per-function summaries for one package: it
// maps a function symbol (interproc.Symbol form — "F" for functions,
// "T.M" for methods) to an opaque string payload. Payloads are the
// analyzer's own compressed summary language ("rewinds", a sorted
// comma-joined type list, a "file:line: description" anchor, …).
type FactSet map[string]string

// PackageFacts is everything the suite learned about one package:
// analyzer name -> that analyzer's FactSet. It is what the unitchecker
// driver serializes into the package's .vetx facts file (JSON, map keys
// sorted by encoding/json, so the bytes — and cmd/go's cache keys built
// from them — are deterministic).
type PackageFacts map[string]FactSet

// Analyzer describes one static check. The zero framework runs Run once
// per package with a fully type-checked Pass.
type Analyzer struct {
	// Name is the analyzer's identifier; it prefixes diagnostics and
	// names the allowlist directive ("//lint:<Name>-ok reason").
	Name string
	// Doc is the one-line description shown by `reprolint help`.
	Doc string
	// AppliesTo, when non-nil, restricts the analyzer to packages whose
	// import path it accepts (test-variant suffixes like
	// " [repro/x.test]" are stripped before the call). A nil AppliesTo
	// runs everywhere.
	AppliesTo func(pkgPath string) bool
	// Run performs the analysis and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and type-checked state through an
// analyzer's Run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path with any test-variant suffix
	// stripped.
	Path      string
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one finding. The driver owns ordering and output.
	Report func(Diagnostic)

	// DepFacts holds the fact files of this package's dependencies,
	// keyed by canonical import path (the driver loads them from the
	// .vetx files cmd/go lists in vet.cfg's PackageVetx). Nil when the
	// driver has no facts (fixture tests, leaf packages).
	DepFacts map[string]PackageFacts

	// facts collects the summaries this analyzer exports for the
	// current package; the driver harvests them via ExportedFacts and
	// writes them to the package's facts file for dependents.
	facts FactSet

	// directives indexes the per-file allowlist directives lazily:
	// filename -> line -> reason (which may be empty for a malformed,
	// reason-less directive).
	directives map[string]map[int]string
}

// ExportFact records an interprocedural summary for a function of the
// current package under this analyzer's name. sym is the function's
// symbol (interproc.Symbol form); payload is the analyzer's own summary
// encoding. Facts flow to dependent packages through the unitchecker
// export-data path, so analysis stays modular: a package is analyzed
// once, and its summaries are reused by every importer.
func (p *Pass) ExportFact(sym, payload string) {
	if p.facts == nil {
		p.facts = make(FactSet)
	}
	p.facts[sym] = payload
}

// ExportedFacts returns the facts this analyzer exported during Run (nil
// if none). The driver serializes them into the package's facts file.
func (p *Pass) ExportedFacts() FactSet { return p.facts }

// DepFact looks up the fact this analyzer exported for function sym of
// dependency pkgPath in an earlier (cached) analysis. The empty result
// is indistinguishable from "no fact": analyzers treat absence as the
// conservative default.
func (p *Pass) DepFact(pkgPath, sym string) (string, bool) {
	pf, ok := p.DepFacts[pkgPath]
	if !ok {
		return "", false
	}
	payload, ok := pf[p.Analyzer.Name][sym]
	return payload, ok
}

// Reportf formats and records one finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite
// checks executable model code only; tests are free to iterate maps,
// consult the clock and roll unseeded dice.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// directiveKey returns the allowlist directive key of the pass's analyzer.
func (p *Pass) directiveKey() string { return p.Analyzer.Name + "-ok" }

// Allowlisted reports whether the finding at pos is suppressed by a
// reasoned "//lint:<name>-ok reason" directive on the same line or the
// line directly above. Directives without a reason do not suppress (see
// CheckDirectives).
func (p *Pass) Allowlisted(file *ast.File, pos token.Pos) bool {
	lines := p.fileDirectives(file)
	position := p.Fset.Position(pos)
	for _, l := range []int{position.Line, position.Line - 1} {
		if reason, ok := lines[l]; ok && reason != "" {
			return true
		}
	}
	return false
}

// CheckDirectives reports every reason-less allowlist directive of this
// analyzer in the pass's files. Analyzers call it once from Run so a bare
// "//lint:<name>-ok" cannot silently disable a check. Files under a
// testdata directory are exempt: analyzer fixtures deliberately exercise
// malformed directives, and the mandatory-reason rule polices shipped
// code, not the test corpus.
func (p *Pass) CheckDirectives() {
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if inTestdata(name) {
			continue
		}
		lines := p.fileDirectives(f)
		nums := make([]int, 0, len(lines))
		for l := range lines { //lint:maporder-ok lines are sorted before reporting
			nums = append(nums, l)
		}
		sort.Ints(nums)
		for _, l := range nums {
			if lines[l] == "" {
				p.Reportf(p.lineStart(f, name, l),
					"allowlist directive //lint:%s requires a reason", p.directiveKey())
			}
		}
	}
}

// inTestdata reports whether filename has a "testdata" path segment.
func inTestdata(filename string) bool {
	for _, seg := range strings.Split(filepath.ToSlash(filename), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// lineStart returns a position on line l of file f (the file position of
// the directive comment itself when resolvable, else the file start).
func (p *Pass) lineStart(f *ast.File, filename string, l int) token.Pos {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if p.Fset.Position(c.Pos()).Line == l {
				return c.Pos()
			}
		}
	}
	return f.Pos()
}

// fileDirectives builds (and caches) the line -> reason directive index
// of one file for this analyzer.
func (p *Pass) fileDirectives(f *ast.File) map[int]string {
	name := p.Fset.Position(f.Pos()).Filename
	if p.directives == nil {
		p.directives = make(map[string]map[int]string)
	}
	if lines, ok := p.directives[name]; ok {
		return lines
	}
	lines := make(map[int]string)
	key := p.directiveKey()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			reason, ok := ParseDirective(c.Text, key)
			if !ok {
				continue
			}
			lines[p.Fset.Position(c.Pos()).Line] = reason
		}
	}
	p.directives[name] = lines
	return lines
}

// ParseDirective matches one comment against "//lint:<key> <reason>" and
// returns the (possibly empty) reason. The directive must start the
// comment: it is a machine-readable marker, not prose.
func ParseDirective(comment, key string) (reason string, ok bool) {
	text, found := strings.CutPrefix(comment, "//lint:")
	if !found {
		return "", false
	}
	text, found = strings.CutPrefix(text, key)
	if !found {
		return "", false
	}
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		// A longer directive key ("maporder-okay"), not ours.
		return "", false
	}
	return strings.TrimSpace(text), true
}

// StripVariant removes cmd/go's test-variant suffix from an import path:
// "repro/x [repro/x.test]" -> "repro/x".
func StripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
