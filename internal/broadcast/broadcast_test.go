package broadcast

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/cost"
	"repro/internal/qsm"
)

func TestRunQSMCorrectness(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100} {
		for _, fanout := range []int{1, 2, 8} {
			m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: 2, N: n, MemCells: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Load(0, []int64{42}); err != nil {
				t.Fatal(err)
			}
			out, err := RunQSM(m, 0, n, fanout)
			if err != nil {
				t.Fatalf("n=%d fanout=%d: %v", n, fanout, err)
			}
			for i := 0; i < n; i++ {
				if got := m.Peek(out + i); got != 42 {
					t.Fatalf("n=%d fanout=%d: cell %d = %d, want 42", n, fanout, i, got)
				}
			}
		}
	}
}

func TestRunQSMValidation(t *testing.T) {
	m, _ := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: 4, G: 1, N: 4, MemCells: 1})
	if _, err := RunQSM(m, 0, 0, 1); err == nil {
		t.Error("want n error")
	}
	if _, err := RunQSM(m, 0, 4, 0); err == nil {
		t.Error("want fanout error")
	}
	if _, err := RunQSM(m, 9, 4, 1); err == nil {
		t.Error("want source range error")
	}
	if _, err := RunQSM(m, 0, 100, 1); err == nil {
		t.Error("want processors error")
	}
}

// The [1] mechanism: with fan-out g the contention per phase is ≤ g (cost
// max(g, κ) = g on the QSM) and the phase count is Θ(log n / log g).
func TestRunQSMCostShape(t *testing.T) {
	n := 1 << 12
	g := int64(8)
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: g, N: n, MemCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Load(0, []int64{1})
	if _, err := RunQSM(m, 0, n, int(g)); err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	for _, ph := range r.Phases {
		if ph.Time > cost.Time(g) {
			t.Fatalf("phase %d time %d > g=%d", ph.Index, ph.Time, g)
		}
	}
	// Holders grow ×(g+1)=9 per phase: ⌈log₉ 4096⌉ = 4 phases + seed.
	if r.NumPhases() > 6 {
		t.Errorf("phases = %d, want ≤ 6 for fan-out 8", r.NumPhases())
	}
	// Binary fan-out for comparison takes ⌈log₂ n⌉ = 12 phases.
	m2, _ := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: g, N: n, MemCells: 1})
	m2.Load(0, []int64{1})
	if _, err := RunQSM(m2, 0, n, 1); err != nil {
		t.Fatal(err)
	}
	if m2.Report().NumPhases() <= r.NumPhases() {
		t.Errorf("fan-out 1 (%d phases) should exceed fan-out g (%d phases)",
			m2.Report().NumPhases(), r.NumPhases())
	}
}

// On the s-QSM the g-fan-out broadcast is penalised g·κ, so total time is
// no better than the fan-out-1 tree — the Θ(g log n) vs Θ(g log n / log g)
// model separation.
func TestSQSMPenalisesFanout(t *testing.T) {
	n := 1 << 10
	g := int64(8)
	run := func(rule cost.Rule, fanout int) cost.Time {
		m, _ := qsm.New(qsm.Config{Rule: rule, P: n, G: g, N: n, MemCells: 1})
		m.Load(0, []int64{1})
		if _, err := RunQSM(m, 0, n, fanout); err != nil {
			t.Fatal(err)
		}
		return m.Report().TotalTime
	}
	qsmFan := run(cost.RuleQSM, int(g))
	sqsmFan := run(cost.RuleSQSM, int(g))
	if sqsmFan <= qsmFan {
		t.Errorf("s-QSM fan-out broadcast %d not above QSM %d", sqsmFan, qsmFan)
	}
}

func TestRunBSPCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 5, 16, 33} {
		for _, fanout := range []int{1, 2, 4} {
			m, err := bsp.New(bsp.Config{P: p, G: 1, L: 4, N: p, PrivCells: 2})
			if err != nil {
				t.Fatal(err)
			}
			m.Superstep(func(c *bsp.Ctx) {
				if c.Comp() == 0 {
					c.Priv()[0] = 7
				}
			})
			if _, err := RunBSP(m, fanout); err != nil {
				t.Fatalf("p=%d fanout=%d: %v", p, fanout, err)
			}
			for i := 0; i < p; i++ {
				if got := m.Peek(i, 1); got != 7 {
					t.Fatalf("p=%d fanout=%d: component %d = %d, want 7", p, fanout, i, got)
				}
			}
		}
	}
}

func TestRunBSPValidation(t *testing.T) {
	m, _ := bsp.New(bsp.Config{P: 2, G: 1, L: 1, N: 2, PrivCells: 2})
	if _, err := RunBSP(m, 0); err == nil {
		t.Error("want fanout error")
	}
}

func TestRunBSPFewerSuperstepsWithFanout(t *testing.T) {
	p := 1 << 10
	steps := func(fanout int) int {
		m, _ := bsp.New(bsp.Config{P: p, G: 1, L: 8, N: p, PrivCells: 2})
		m.Superstep(func(c *bsp.Ctx) {
			if c.Comp() == 0 {
				c.Priv()[0] = 1
			}
		})
		s, err := RunBSP(m, fanout)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if s8, s1 := steps(8), steps(1); s8 >= s1 {
		t.Errorf("fan-out 8 (%d steps) should beat fan-out 1 (%d steps)", s8, s1)
	}
}
