// Package broadcast implements broadcasting — the primitive whose tight
// QSM/BSP bounds (Adler, Gibbons, Matias & Ramachandran, cited as [1] by
// the paper) anchor the related-work discussion of Section 1.
//
// On the QSM the fast broadcast exploits queued concurrent reads: in one
// phase up to g readers share a holder cell at contention cost κ ≤ g
// (charged max(g·m_rw, κ) = g), so the holder count multiplies by g+1 per
// O(g)-cost phase: Θ(g·log n / log g) total — tight by [1]. On the s-QSM
// the same phase costs g·κ, forcing fan-out 1 and Θ(g·log n). On the BSP a
// component sends L/g copies per superstep of cost max(g·(L/g), L) = L:
// Θ(L·log p / log(L/g)).
package broadcast

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/qsm"
)

// RunQSM broadcasts the value in cell src to n fresh cells (returned base).
// fanout readers share each holder cell per phase; fanout = g is optimal on
// the QSM, fanout = 1 on the s-QSM. Needs ≥ n processors.
func RunQSM(m *qsm.Machine, src, n, fanout int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("broadcast: n must be ≥ 1, got %d", n)
	}
	if fanout < 1 {
		return 0, fmt.Errorf("broadcast: fan-out must be ≥ 1, got %d", fanout)
	}
	if src < 0 || src >= m.MemSize() {
		return 0, fmt.Errorf("broadcast: source cell %d outside memory", src)
	}
	if m.P() < n {
		return 0, fmt.Errorf("broadcast: needs ≥ n=%d processors, have %d", n, m.P())
	}

	out := m.MemSize()
	m.Grow(out + n)

	// Copy the source into out[0] (one phase), then double out of the
	// growing prefix: in each phase, reader r ∈ [0, new) reads holder cell
	// out[r % have] (contention ≤ ⌈new/have⌉ ≤ fanout) and writes out[have+r].
	m.ForAll(1, func(c *qsm.Ctx) {
		v := c.Read(src)
		c.Write(out, v)
	})
	have := 1
	for have < n {
		newCells := have * fanout
		if have+newCells > n {
			newCells = n - have
		}
		h := have
		m.ForAll(newCells, func(c *qsm.Ctx) {
			r := c.Proc()
			v := c.Read(out + r%h)
			c.Write(out+h+r, v)
		})
		have += newCells
		if m.Err() != nil {
			return 0, m.Err()
		}
	}
	return out, m.Err()
}

// RunBSP broadcasts component 0's private cell 0 to every component's
// private cell 1. Each holder sends fanout copies per superstep; fanout =
// L/g is optimal. Returns the number of supersteps used.
func RunBSP(m *bsp.Machine, fanout int) (int, error) {
	if fanout < 1 {
		return 0, fmt.Errorf("broadcast: fan-out must be ≥ 1, got %d", fanout)
	}
	p := m.P()
	start := m.Report().NumPhases()

	m.Superstep(func(c *bsp.Ctx) {
		if c.Comp() == 0 {
			c.Priv()[1] = c.Priv()[0]
		}
	})
	have := 1
	for have < p {
		newComps := have * fanout
		if have+newComps > p {
			newComps = p - have
		}
		h := have
		nc := newComps
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j >= h {
				return
			}
			// Holder j feeds components h + j, h + j + h·1, … (≤ fanout):
			// one fan-out batch per holder.
			var dsts []int32
			for k := 0; ; k++ {
				dst := h + j + k*h
				if dst >= h+nc {
					break
				}
				dsts = append(dsts, int32(dst))
			}
			c.SendFanout(dsts, 0, c.Priv()[1])
		})
		m.Superstep(func(c *bsp.Ctx) {
			for _, msg := range c.Incoming() {
				c.Priv()[1] = msg.Val
			}
		})
		have += newComps
		if m.Err() != nil {
			return 0, m.Err()
		}
	}
	return m.Report().NumPhases() - start, m.Err()
}
