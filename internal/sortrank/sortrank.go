// Package sortrank implements the "problems related to parity" of MacKenzie
// & Ramachandran (SPAA 1998): list ranking and sorting, to which the
// paper's Parity lower bounds transfer by simple size-preserving reductions
// (end of Section 3).
//
//   - ListRankQSM: pointer-jumping list ranking on the QSM family. Each of
//     the Θ(log n) iterations is two phases; contention grows as chains
//     collapse (the QSM charges it — which is exactly why queue models make
//     pointer jumping interesting).
//   - ParityToList / ParityViaList: the size-preserving reduction from
//     Parity to list ranking: bits x₁..x_n become the 2(n+1)-node layered
//     list in which node (i,b) represents "the parity of the first i bits
//     is b" and points to (i+1, b⊕x_{i+1}); the end node reached from (0,0)
//     carries the answer. Any list-ranking lower bound therefore implies
//     the paper's Parity bounds and vice versa.
//   - SampleSortBSP: one-round sample sort (regular sampling) on the BSP —
//     the standard communication-efficient BSP sorting algorithm the
//     paper's rounds discussion targets.
package sortrank

import (
	"fmt"
	"sort"

	"repro/internal/bsp"
	"repro/internal/qsm"
)

// ListRankQSM computes list ranks (distance to the tail, which points to
// itself) for the successor array in cells [base, base+n). Returns the base
// of the n-cell rank array. Needs one processor per node (strided
// otherwise).
func ListRankQSM(m *qsm.Machine, base, n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("sortrank: n must be ≥ 1, got %d", n)
	}
	if base < 0 || base+n > m.MemSize() {
		return 0, fmt.Errorf("sortrank: input [%d,%d) outside memory", base, base+n)
	}
	p := m.P()

	// Double-buffered (next, rank) arrays; the input is copied so it stays
	// intact.
	nextA := m.MemSize()
	rankA := nextA + n
	nextB := rankA + n
	rankB := nextB + n
	m.Grow(rankB + n)

	// Init: rank = 0 for the tail, 1 otherwise; next copied.
	m.Phase(func(c *qsm.Ctx) {
		for j := c.Proc(); j < n; j += p {
			nx := c.Read(base + j)
			var r int64
			if int(nx) != j {
				r = 1
			}
			c.Op(1)
			c.Write(nextA+j, nx)
			c.Write(rankA+j, r)
		}
	})

	curN, curR, nxtN, nxtR := nextA, rankA, nextB, rankB
	for span := 1; span < n; span <<= 1 {
		curNL, curRL, nxtNL, nxtRL := curN, curR, nxtN, nxtR
		// Phase A: read own (next, rank).
		nxVal := make([]int64, n)
		rVal := make([]int64, n)
		m.Phase(func(c *qsm.Ctx) {
			for j := c.Proc(); j < n; j += p {
				nxVal[j] = c.Read(curNL + j)
				rVal[j] = c.Read(curRL + j)
			}
		})
		// Phase B: read successor's (next, rank) — addresses depend only on
		// the previous phase — and write the jumped state.
		m.Phase(func(c *qsm.Ctx) {
			for j := c.Proc(); j < n; j += p {
				nx := int(nxVal[j])
				nnx := c.Read(curNL + nx)
				rr := c.Read(curRL + nx)
				c.Op(1)
				if nx == j { // tail: fixed point
					c.Write(nxtNL+j, int64(j))
					c.Write(nxtRL+j, rVal[j])
					continue
				}
				c.Write(nxtNL+j, nnx)
				c.Write(nxtRL+j, rVal[j]+rr)
			}
		})
		curN, curR, nxtN, nxtR = nxtN, nxtR, curN, curR
		if m.Err() != nil {
			return 0, m.Err()
		}
	}
	return curR, m.Err()
}

// --- Parity → list ranking reduction ----------------------------------------

// ParityToList builds the layered list of the size-preserving reduction:
// 2(n+1) nodes, node id 2i+b for layer i ∈ [0,n] and parity bit b. Node
// (i,b) points to (i+1, b⊕bits[i]); the two layer-n nodes are self-loop
// tails. The walk from node 0 = (0,0) ends in tail (n, parity(bits)).
func ParityToList(bits []int64) (next []int64, start int) {
	n := len(bits)
	next = make([]int64, 2*(n+1))
	for i := 0; i < n; i++ {
		x := bits[i] & 1
		for b := int64(0); b < 2; b++ {
			next[2*i+int(b)] = int64(2*(i+1)) + (b ^ x)
		}
	}
	next[2*n] = int64(2 * n)
	next[2*n+1] = int64(2*n + 1)
	return next, 0
}

// ParityViaList computes the parity of the n bits in cells [base, base+n)
// by the reduction: it materialises the layered list in fresh cells, runs
// pointer jumping, and reads off which tail the start node reaches.
// Returns the parity (0 or 1).
func ParityViaList(m *qsm.Machine, base, n int) (int64, error) {
	if n < 1 {
		return 0, fmt.Errorf("sortrank: n must be ≥ 1, got %d", n)
	}
	if base < 0 || base+n > m.MemSize() {
		return 0, fmt.Errorf("sortrank: input [%d,%d) outside memory", base, base+n)
	}
	p := m.P()
	ln := 2 * (n + 1)
	listBase := m.MemSize()
	m.Grow(listBase + ln)

	// Build the list in-model: the processor(s) owning layer i read bit i
	// and write both layer-i successor cells.
	m.Phase(func(c *qsm.Ctx) {
		for i := c.Proc(); i < n; i += p {
			x := c.Read(base+i) & 1
			c.Op(1)
			c.Write(listBase+2*i, int64(2*(i+1))+x)
			c.Write(listBase+2*i+1, int64(2*(i+1))+(1^x))
		}
		// One processor seals the tails.
		if c.Proc() == 0 {
			c.Write(listBase+2*n, int64(2*n))
			c.Write(listBase+2*n+1, int64(2*n+1))
		}
	})

	// Pointer jumping on successors only (no ranks needed): after ⌈log₂⌉
	// iterations every node points at its tail.
	curB := m.MemSize()
	nxtB := curB + ln
	m.Grow(nxtB + ln)
	m.Phase(func(c *qsm.Ctx) {
		for j := c.Proc(); j < ln; j += p {
			c.Write(curB+j, c.Read(listBase+j))
		}
	})
	cur, nxt := curB, nxtB
	for span := 1; span < ln; span <<= 1 {
		curL, nxtL := cur, nxt
		nxVal := make([]int64, ln)
		m.Phase(func(c *qsm.Ctx) {
			for j := c.Proc(); j < ln; j += p {
				nxVal[j] = c.Read(curL + j)
			}
		})
		m.Phase(func(c *qsm.Ctx) {
			for j := c.Proc(); j < ln; j += p {
				c.Write(nxtL+j, c.Read(curL+int(nxVal[j])))
			}
		})
		cur, nxt = nxt, cur
		if m.Err() != nil {
			return 0, m.Err()
		}
	}
	end := m.Peek(cur) // final successor of node 0
	return end & 1, m.Err()
}

// --- BSP sample sort ----------------------------------------------------------

// SampleSortBSP sorts the n block-distributed values with one-round regular
// sample sort: local sort, p regular samples per component, splitter
// selection at component 0, bucket routing, local merge. On return
// component i holds its sorted bucket at private offset outOff (returned)
// with its length at private offset outOff-1. Buckets are bounded by
// 2·⌈n/p⌉ + p values w.h.p. for non-adversarial inputs (regular sampling
// guarantee for distinct keys); overflow is reported as an error.
func SampleSortBSP(m *bsp.Machine, n int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("sortrank: n must be ≥ 1, got %d", n)
	}
	p := m.P()
	maxBlk := (n + p - 1) / p
	bucketCap := 2*maxBlk + p
	// Private layout: [0,maxBlk) input; splitters [s0, s0+p-1); output
	// length at outOff-1, output at [outOff, outOff+bucketCap).
	s0 := maxBlk
	outOff := s0 + p // (p-1 splitters + 1 length slot)

	// Superstep 1: local sort; send p regular samples to component 0.
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		blk := hi - lo
		vals := c.Priv()[:blk]
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		c.Work(blk * log2ceil(blk+1))
		for s := 0; s < p && blk > 0; s++ {
			c.Send(0, int64(s), vals[s*blk/p])
		}
	})

	// Superstep 2: component 0 sorts the ≤ p² samples and broadcasts p−1
	// splitters to everyone.
	m.Superstep(func(c *bsp.Ctx) {
		if c.Comp() != 0 {
			return
		}
		in := c.Incoming()
		samples := make([]int64, 0, len(in))
		for _, msg := range in {
			samples = append(samples, msg.Val)
		}
		sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
		c.Work(len(samples) * log2ceil(len(samples)+1))
		for dst := 0; dst < p; dst++ {
			for s := 1; s < p; s++ {
				idx := s * len(samples) / p
				if idx >= len(samples) {
					idx = len(samples) - 1
				}
				var v int64
				if len(samples) > 0 {
					v = samples[idx]
				}
				c.Send(dst, int64(s-1), v)
			}
		}
	})

	// Superstep 3: store splitters; route values to buckets.
	m.Superstep(func(c *bsp.Ctx) {
		for _, msg := range c.Incoming() {
			c.Priv()[s0+int(msg.Tag)] = msg.Val
		}
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		// Splitters just arrived in this superstep's inbox — they were sent
		// in the previous superstep, so using them now is legal.
		spl := c.Priv()[s0 : s0+p-1]
		// Bucket destinations are computed locally; the whole block is then
		// routed in one batched send (the values column is the sorted
		// private block itself, in order).
		dsts := make([]int32, hi-lo)
		for i := 0; i < hi-lo; i++ {
			v := c.Priv()[i]
			dsts[i] = int32(sort.Search(len(spl), func(k int) bool { return spl[k] > v }))
			c.Work(log2ceil(p))
		}
		c.SendBatch(dsts, nil, c.Priv()[:hi-lo])
	})

	// Superstep 4: local merge of the received bucket.
	overflow := make([]bool, p)
	m.Superstep(func(c *bsp.Ctx) {
		in := c.Incoming()
		vals := make([]int64, 0, len(in))
		for _, msg := range in {
			vals = append(vals, msg.Val)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		c.Work(len(vals) * log2ceil(len(vals)+1))
		if len(vals) > bucketCap {
			overflow[c.Comp()] = true
			return
		}
		c.Priv()[outOff-1] = int64(len(vals))
		copy(c.Priv()[outOff:outOff+len(vals)], vals)
	})
	if m.Err() != nil {
		return 0, m.Err()
	}
	for comp, of := range overflow {
		if of {
			return 0, fmt.Errorf("sortrank: bucket %d overflowed capacity %d", comp, bucketCap)
		}
	}
	return outOff, nil
}

// PrivNeedSampleSortBSP returns the private memory SampleSortBSP needs.
func PrivNeedSampleSortBSP(n, p int) int {
	maxBlk := (n + p - 1) / p
	return maxBlk + p + 2*maxBlk + p
}

func log2ceil(x int) int {
	k := 0
	for v := 1; v < x; v <<= 1 {
		k++
	}
	return k
}
