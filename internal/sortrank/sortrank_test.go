package sortrank

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/cost"
	"repro/internal/qsm"
	"repro/internal/workload"
)

func qsmFor(t *testing.T, n, p int) *qsm.Machine {
	t.Helper()
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: 1, N: n, MemCells: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestListRankQSM(t *testing.T) {
	for _, n := range []int{1, 2, 3, 17, 64, 200} {
		next, head := workload.RandomList(int64(n), n)
		want := workload.ListRanks(next, head)
		m := qsmFor(t, n, n)
		if err := m.Load(0, next); err != nil {
			t.Fatal(err)
		}
		ranks, err := ListRankQSM(m, 0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got := m.Peek(ranks + i); got != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got, want[i])
			}
		}
	}
}

func TestListRankQSMFewProcessors(t *testing.T) {
	n := 100
	next, head := workload.RandomList(3, n)
	want := workload.ListRanks(next, head)
	m := qsmFor(t, n, 8)
	if err := m.Load(0, next); err != nil {
		t.Fatal(err)
	}
	ranks, err := ListRankQSM(m, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Peek(ranks + i); got != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got, want[i])
		}
	}
}

func TestListRankValidation(t *testing.T) {
	m := qsmFor(t, 8, 8)
	if _, err := ListRankQSM(m, 0, 0); err == nil {
		t.Error("want n error")
	}
	if _, err := ListRankQSM(m, 4, 8); err == nil {
		t.Error("want range error")
	}
}

func TestListRankPhasesLogarithmic(t *testing.T) {
	n := 1 << 10
	next, _ := workload.RandomList(7, n)
	m := qsmFor(t, n, n)
	if err := m.Load(0, next); err != nil {
		t.Fatal(err)
	}
	if _, err := ListRankQSM(m, 0, n); err != nil {
		t.Fatal(err)
	}
	// init + 2 phases per doubling iteration (⌈log₂ n⌉ = 10... span<n → 10 iters).
	if got := m.Report().NumPhases(); got != 1+2*10 {
		t.Errorf("phases = %d, want 21", got)
	}
}

func TestParityToListStructure(t *testing.T) {
	bits := []int64{1, 0, 1, 1}
	next, start := ParityToList(bits)
	if len(next) != 10 || start != 0 {
		t.Fatalf("list size = %d start = %d", len(next), start)
	}
	// Walk from (0,0): parity prefix: 1,1,0,1 → end node (4,1) = id 9.
	cur := start
	for i := 0; i < len(bits); i++ {
		cur = int(next[cur])
	}
	if cur != 9 {
		t.Fatalf("walk ends at node %d, want 9", cur)
	}
	// Tails self-loop.
	if next[8] != 8 || next[9] != 9 {
		t.Error("tails must self-loop")
	}
}

func TestParityViaListMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 33, 100} {
		bits := workload.Bits(int64(n), n)
		m := qsmFor(t, n, 2*(n+1))
		if err := m.Load(0, bits); err != nil {
			t.Fatal(err)
		}
		got, err := ParityViaList(m, 0, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := workload.Parity(bits); got != want {
			t.Fatalf("n=%d: parity via list = %d, want %d", n, got, want)
		}
	}
}

func TestParityViaListProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		bits := workload.Bits(seed, n)
		m, err := qsm.New(qsm.Config{
			Rule: cost.RuleQSM, P: 2 * (n + 1), G: 1, N: n, MemCells: n,
		})
		if err != nil {
			return false
		}
		if err := m.Load(0, bits); err != nil {
			return false
		}
		got, err := ParityViaList(m, 0, n)
		return err == nil && got == workload.Parity(bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSampleSortBSP(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{16, 2}, {100, 4}, {1024, 16}, {777, 7},
	} {
		in := workload.Permutation(int64(tc.n), tc.n)
		m, err := bsp.New(bsp.Config{
			P: tc.p, G: 1, L: 4, N: tc.n,
			PrivCells: PrivNeedSampleSortBSP(tc.n, tc.p),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Scatter(in); err != nil {
			t.Fatal(err)
		}
		outOff, err := SampleSortBSP(m, tc.n)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		// Gather buckets in component order: must be globally sorted and
		// exactly 0..n-1.
		var all []int64
		for comp := 0; comp < tc.p; comp++ {
			ln := int(m.Peek(comp, outOff-1))
			for i := 0; i < ln; i++ {
				all = append(all, m.Peek(comp, outOff+i))
			}
		}
		if len(all) != tc.n {
			t.Fatalf("%+v: output has %d values, want %d", tc, len(all), tc.n)
		}
		if !sort.SliceIsSorted(all, func(a, b int) bool { return all[a] < all[b] }) {
			t.Fatalf("%+v: output not sorted", tc)
		}
		for i, v := range all {
			if v != int64(i) {
				t.Fatalf("%+v: output[%d] = %d, want %d", tc, i, v, i)
			}
		}
	}
}

func TestSampleSortBSPValidation(t *testing.T) {
	m, _ := bsp.New(bsp.Config{P: 2, G: 1, L: 1, N: 4, PrivCells: 64})
	if _, err := SampleSortBSP(m, 0); err == nil {
		t.Error("want n error")
	}
}

// Sorting inherits the parity lower bound (the paper's reduction): sanity
// check that the sort-based parity answer matches — sort the bits, count
// the suffix of ones.
func TestParityViaSortBSP(t *testing.T) {
	n, p := 256, 8
	bits := workload.Bits(5, n)
	// Distinct keys for sample sort: encode bit b at index i as 2i+b; ones
	// are odd keys.
	keys := make([]int64, n)
	for i, b := range bits {
		keys[i] = int64(2*i) + b
	}
	m, err := bsp.New(bsp.Config{
		P: p, G: 1, L: 4, N: n, PrivCells: PrivNeedSampleSortBSP(n, p),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scatter(keys); err != nil {
		t.Fatal(err)
	}
	outOff, err := SampleSortBSP(m, n)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for comp := 0; comp < p; comp++ {
		ln := int(m.Peek(comp, outOff-1))
		for i := 0; i < ln; i++ {
			if m.Peek(comp, outOff+i)%2 == 1 {
				ones++
			}
		}
	}
	if got, want := int64(ones%2), workload.Parity(bits); got != want {
		t.Fatalf("parity via sort = %d, want %d", got, want)
	}
}
