package gsmalg

import (
	"math/rand"
	"testing"

	"repro/internal/gsm"
	"repro/internal/workload"
)

func lacMachine(t *testing.T, n int, gamma int64, items []int64) *gsm.Machine {
	t.Helper()
	r := (n + int(gamma) - 1) / int(gamma)
	m, err := gsm.New(gsm.Config{
		P: r, Alpha: 1, Beta: 1, Gamma: gamma, N: n, Cells: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadInputs(items); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDartLACGSMPlacesEveryItem(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n, h  int
		gamma int64
	}{
		{16, 0, 1}, {16, 4, 1}, {64, 16, 2}, {256, 64, 4}, {128, 128, 1},
	} {
		// Item values must fit the atom encoding (0..255); use 1 markers.
		in, err := workload.Sparse(rng.Int63(), tc.n, tc.h)
		if err != nil {
			t.Fatal(err)
		}
		marks := make([]int64, tc.n)
		for i, v := range in {
			if v != 0 {
				marks[i] = 1
			}
		}
		m := lacMachine(t, tc.n, tc.gamma, marks)
		res, err := DartLACGSM(m, rng, tc.n)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(res.Placed) != tc.h {
			t.Fatalf("%+v: placed %d, want %d", tc, len(res.Placed), tc.h)
		}
		// Distinct cells, linear space.
		seen := map[int]bool{}
		for tag, cell := range res.Placed {
			if seen[cell] {
				t.Fatalf("%+v: cell %d double-claimed", tc, cell)
			}
			seen[cell] = true
			// The claimed cell's minimum atom must be the claimant's tag.
			info := m.Peek(cell)
			if len(info) == 0 || info[0] != tag {
				t.Fatalf("%+v: cell %d min = %v, want tag %d", tc, cell, info, tag)
			}
		}
		if tc.h > 0 && res.OutSize > 2*DartFactor*tc.h+DartFactor {
			t.Errorf("%+v: out size %d not linear in h", tc, res.OutSize)
		}
	}
}

func TestDartLACGSMPointers(t *testing.T) {
	// The ECLB requirement (Claim 6.1): every input cell with items ends up
	// pointing at their destinations.
	rng := rand.New(rand.NewSource(11))
	n := 64
	gamma := int64(4)
	marks := make([]int64, n)
	for i := 0; i < n; i += 3 {
		marks[i] = 1
	}
	m := lacMachine(t, n, gamma, marks)
	res, err := DartLACGSM(m, rng, n)
	if err != nil {
		t.Fatal(err)
	}
	r := (n + int(gamma) - 1) / int(gamma)
	for i := 0; i < r; i++ {
		ptrs := m.Peek(res.PointerBase + i)
		// Collect the expected destinations of the items in input cell i.
		want := map[int64]bool{}
		for j := i * int(gamma); j < (i+1)*int(gamma) && j < n; j++ {
			if marks[j] != 0 {
				want[int64(res.Placed[int64(j)+1])] = true
			}
		}
		if len(ptrs) != len(want) {
			t.Fatalf("cell %d: %d pointers, want %d", i, len(ptrs), len(want))
		}
		for _, p := range ptrs {
			if !want[p] {
				t.Fatalf("cell %d: unexpected pointer %d", i, p)
			}
		}
	}
}

func TestDartLACGSMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := lacMachine(t, 8, 1, workload.ZeroBits(8))
	if _, err := DartLACGSM(m, rng, 0); err == nil {
		t.Error("want n error")
	}
	small, err := gsm.New(gsm.Config{P: 2, Alpha: 1, Beta: 1, Gamma: 1, N: 8, Cells: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.LoadInputs(workload.ZeroBits(8)); err == nil {
		// LoadInputs needs 8 cells which it has; processors are the issue.
		if _, err := DartLACGSM(small, rng, 8); err == nil {
			t.Error("want processors error")
		}
	}
}

// Strong queuing keeps dart rounds low: no information is lost, so the
// minimum-tag rule retires at least one item per occupied slot per round.
func TestDartLACGSMRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 1 << 10
	marks := make([]int64, n)
	for i := range marks {
		if i%2 == 0 {
			marks[i] = 1
		}
	}
	m := lacMachine(t, n, 1, marks)
	res, err := DartLACGSM(m, rng, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 8 {
		t.Errorf("GSM dart rounds = %d, want ≤ 8", res.Rounds)
	}
	if len(res.Placed) != n/2 {
		t.Errorf("placed %d, want %d", len(res.Placed), n/2)
	}
}
