package gsmalg

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gsm"
)

// DartFactor is the oversizing of each GSM dart-throwing target segment.
const DartFactor = 4

// LACResult reports a GSM compaction.
type LACResult struct {
	// Rounds is the number of throw/read-back dart rounds.
	Rounds int
	// Placed maps item tags to their claimed output cells. Iterating the
	// map directly is order-nondeterministic; order-sensitive consumers use
	// PlacedSlots.
	Placed map[int64]int
	// OutSize is the total target space allocated.
	OutSize int
	// PointerBase addresses the ECLB pointer region: cell PointerBase+i
	// carries the destination of input cell i (Section 6.1's Enhanced CLB
	// requirement — each input cell must point at its item's destination).
	PointerBase int
}

// Placement is one compacted item: its tag and the output cell it claimed.
type Placement struct {
	Tag  int64
	Cell int
}

// PlacedSlots returns the placements ordered by output cell — the
// deterministic iteration view of Placed.
func (r *LACResult) PlacedSlots() []Placement {
	ps := make([]Placement, 0, len(r.Placed))
	for tag, cell := range r.Placed { //lint:maporder-ok slice is sorted by cell before return
		ps = append(ps, Placement{Tag: tag, Cell: cell})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Cell < ps[j].Cell })
	return ps
}

// DartLACGSM compacts the items tagged in the n input cells [0, n) into
// O(#items) space by dart throwing on the GSM. Strong queuing changes the
// mechanics relative to the QSM variant: every throw lands (all
// information merges into the target cell), so a cell's winner is decided
// locally and deterministically — the smallest tag among its arrivals —
// and losers re-throw. After placement, one extra phase writes the
// Enhanced-CLB destination pointers next to the inputs (Claim 6.1's m-step
// post-processing, here one phase because γ items share a cell).
//
// Items are the nonzero atoms v (tags) in cells' info sets; the machine
// must have been loaded via LoadInputs with item values (0 = empty).
func DartLACGSM(m *gsm.Machine, rng *rand.Rand, n int) (*LACResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("gsmalg: n must be ≥ 1, got %d", n)
	}
	gamma := int(m.Gamma())
	r := (n + gamma - 1) / gamma
	if m.P() < r {
		return nil, fmt.Errorf("gsmalg: need ≥ %d processors, have %d", r, m.P())
	}

	// Phase 0: processor i reads input cell i and learns its items.
	itemsOf := make([][]int64, r)
	m.Phase(func(c *gsm.Ctx) {
		i := c.Proc()
		if i >= r {
			return
		}
		for _, a := range c.Read(i) {
			if _, v := gsm.AtomInput(a); v != 0 {
				idx, _ := gsm.AtomInput(a)
				itemsOf[i] = append(itemsOf[i], int64(idx)+1)
			}
		}
	})
	if m.Err() != nil {
		return nil, m.Err()
	}
	type dart struct {
		owner int // processor responsible for the item
		tag   int64
	}
	var live []dart
	for i, items := range itemsOf {
		for _, tag := range items {
			live = append(live, dart{owner: i, tag: tag})
		}
	}

	res := &LACResult{Placed: make(map[int64]int)}
	maxRounds := 4*log2ceil(n) + 8
	base := n // fresh cells after the inputs

	for len(live) > 0 {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("gsmalg: GSM dart LAC did not converge in %d rounds", maxRounds)
		}
		res.Rounds++
		segBase := base + res.OutSize
		segSize := DartFactor * len(live)
		res.OutSize += segSize
		m.Grow(segBase + segSize)

		slotOf := make(map[int64]int, len(live))
		for _, d := range live {
			slotOf[d.tag] = segBase + rng.Intn(segSize)
		}
		// Throw phase: every live item's owner writes the tag to its slot
		// (strong queuing merges collisions — nothing is lost).
		m.Phase(func(c *gsm.Ctx) {
			i := c.Proc()
			if i >= r {
				return
			}
			for _, d := range live {
				if d.owner == i {
					c.Write(slotOf[d.tag], gsm.NewInfo(d.tag))
				}
			}
		})
		// Read-back phase: the owner checks whether its tag is the minimum
		// in the slot (the deterministic queue winner).
		winner := make(map[int64]bool, len(live))
		winMu := make([][]int64, r)
		m.Phase(func(c *gsm.Ctx) {
			i := c.Proc()
			if i >= r {
				return
			}
			for _, d := range live {
				if d.owner != i {
					continue
				}
				info := c.Read(slotOf[d.tag])
				if len(info) > 0 && info[0] == d.tag { // sorted: min first
					winMu[i] = append(winMu[i], d.tag)
				}
			}
		})
		if m.Err() != nil {
			return nil, m.Err()
		}
		for _, tags := range winMu {
			for _, tag := range tags {
				winner[tag] = true
			}
		}
		var next []dart
		for _, d := range live {
			if winner[d.tag] {
				res.Placed[d.tag] = slotOf[d.tag]
			} else {
				next = append(next, d)
			}
		}
		live = next
	}

	// ECLB pointers: one phase — processor i writes, next to input cell i,
	// the destinations of the items it owns.
	res.PointerBase = base + res.OutSize
	m.Grow(res.PointerBase + r)
	m.Phase(func(c *gsm.Ctx) {
		i := c.Proc()
		if i >= r {
			return
		}
		var ptrs gsm.Info
		for _, tag := range itemsOf[i] {
			ptrs = ptrs.Merge(gsm.NewInfo(int64(res.Placed[tag])))
		}
		if len(ptrs) > 0 {
			c.Write(res.PointerBase+i, ptrs)
		}
	})
	return res, m.Err()
}

func log2ceil(x int) int {
	k := 0
	for v := 1; v < x; v <<= 1 {
		k++
	}
	return k
}
