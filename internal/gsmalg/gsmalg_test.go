package gsmalg

import (
	"math"
	"testing"

	"repro/internal/bounds"
	"repro/internal/gsm"
	"repro/internal/workload"
)

func machineFor(t *testing.T, n int, alpha, beta, gamma int64, bits []int64) *gsm.Machine {
	t.Helper()
	r := (n + int(gamma) - 1) / int(gamma)
	m, err := gsm.New(gsm.Config{
		P: r, Alpha: alpha, Beta: beta, Gamma: gamma, N: n,
		Cells: CellsNeedGather(r),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadInputs(bits); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParityGSM(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100} {
		for _, gamma := range []int64{1, 2, 4} {
			for _, fanin := range []int{2, 4} {
				bits := workload.Bits(int64(n)+gamma, n)
				m := machineFor(t, n, 1, 1, gamma, bits)
				got, err := ParityGSM(m, n, fanin)
				if err != nil {
					t.Fatalf("n=%d γ=%d fanin=%d: %v", n, gamma, fanin, err)
				}
				if want := workload.Parity(bits); got != want {
					t.Fatalf("n=%d γ=%d: parity = %d, want %d", n, gamma, got, want)
				}
			}
		}
	}
}

func TestORGSM(t *testing.T) {
	for _, bits := range [][]int64{
		workload.ZeroBits(32), workload.OneHot(3, 32), workload.Bits(4, 63),
	} {
		m := machineFor(t, len(bits), 2, 2, 1, bits)
		got, err := ORGSM(m, len(bits), 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := workload.Or(bits); got != want {
			t.Fatalf("OR = %d, want %d", got, want)
		}
	}
}

func TestGatherTreeValidation(t *testing.T) {
	m := machineFor(t, 4, 1, 1, 1, workload.ZeroBits(4))
	if _, err := GatherTree(m, 0, 2); err == nil {
		t.Error("want r error")
	}
	if _, err := GatherTree(m, 4, 1); err == nil {
		t.Error("want fan-in error")
	}
}

// Theorem 3.1 upper-bound side: with fan-in α = μ, the gather takes
// ⌈log_α r⌉ phases of one μ-big-step each, i.e. μ·log r/log μ time — the
// measured cost must match the bound formula within a small constant.
func TestGatherMatchesTheorem31Shape(t *testing.T) {
	for _, alpha := range []int64{2, 4, 8} {
		n := 1 << 12
		bits := workload.Bits(9, n)
		m := machineFor(t, n, alpha, alpha, 1, bits)
		if _, err := ParityGSM(m, n, int(alpha)); err != nil {
			t.Fatal(err)
		}
		measured := float64(m.Report().TotalTime)
		bound := bounds.GSMParityDet(bounds.GSMArgs{N: n, Alpha: alpha, Beta: alpha, Gamma: 1})
		ratio := measured / bound
		if ratio < 0.5 || ratio > 3 {
			t.Errorf("α=%d: measured %v vs Theorem 3.1 bound %v (ratio %v)",
				alpha, measured, bound, ratio)
		}
		// Every phase is exactly one big-step (the fan-in matches α).
		for _, ph := range m.Report().Phases {
			if ph.BigSteps != 1 {
				t.Errorf("α=%d phase %d took %d big-steps, want 1", alpha, ph.Index, ph.BigSteps)
			}
		}
	}
}

// γ reduces the effective problem size to r = n/γ: gathering time shrinks
// accordingly (the log(n/γ) in every GSM bound).
func TestGammaShrinksGatherTime(t *testing.T) {
	n := 1 << 10
	run := func(gamma int64) float64 {
		bits := workload.Bits(5, n)
		m := machineFor(t, n, 2, 2, gamma, bits)
		if _, err := ParityGSM(m, n, 2); err != nil {
			t.Fatal(err)
		}
		return float64(m.Report().TotalTime)
	}
	if t16, t1 := run(16), run(1); t16 >= t1 {
		t.Errorf("γ=16 time %v not below γ=1 time %v", t16, t1)
	}
}

// Section 6.3 relaxed rounds: with fan-in ≈ αh/λ a gather phase costs
// ≈ μh/λ, so every phase is a GSM(h) round and the round count is
// log r / log(αh/λ) — at or above Theorem 6.3's √ lower bound.
func TestRelaxedRoundsGSMh(t *testing.T) {
	n := 1 << 12
	alpha, beta := int64(2), int64(2)
	h := int64(16) // round budget μh/λ = 16
	fanin := int(alpha * h / alpha)
	bits := workload.Bits(13, n)
	m := machineFor(t, n, alpha, beta, 1, bits)
	if _, err := ParityGSM(m, n, fanin); err != nil {
		t.Fatal(err)
	}
	rounds, all := RelaxedRounds(m.Report(), h, 1)
	if !all {
		t.Fatalf("a phase exceeded the GSM(h) budget; rounds=%d of %d",
			rounds, m.Report().NumPhases())
	}
	// Theorem 6.3 lower bound (with d = #items ceiling of the LAC form):
	// the measured round count must dominate it.
	lb := bounds.GSMLACRoundsRelaxed(bounds.GSMArgs{
		N: n, Alpha: alpha, Beta: beta, Gamma: 1, H: h,
	}, 4)
	if float64(rounds) < lb {
		t.Errorf("relaxed rounds %d below Theorem 6.3 bound %v", rounds, lb)
	}
	if math.IsNaN(lb) || lb <= 0 {
		t.Errorf("degenerate bound %v", lb)
	}
}

func TestRelaxedRoundsClassification(t *testing.T) {
	// A run with a huge-contention phase: that phase must not be a round
	// for small h.
	n := 64
	bits := workload.Bits(1, n)
	m := machineFor(t, n, 1, 1, 1, bits)
	// Funnel: all processors write to one cell — κ = 64, time 64·μ.
	vals := make([]gsm.Info, n)
	m.Phase(func(c *gsm.Ctx) { vals[c.Proc()] = c.Read(c.Proc()) })
	m.Phase(func(c *gsm.Ctx) { c.Write(n+c.Proc()-c.Proc(), vals[c.Proc()]) })
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	rounds, all := RelaxedRounds(m.Report(), 4, 1)
	if all {
		t.Error("κ=64 phase must exceed the h=4 budget")
	}
	if rounds != 1 {
		t.Errorf("rounds = %d, want 1 (only the read phase conforms)", rounds)
	}
}
