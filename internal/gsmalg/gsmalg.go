// Package gsmalg implements information-gathering algorithms directly on
// the GSM lower-bound model, so the Section 3/6/7 GSM theorems can be
// checked against matching executions:
//
//   - GatherTree: an α-ary information merge tree. One phase merges α cells
//     per processor into one (a single big-step of μ time), so gathering
//     r = n/γ loaded cells takes ⌈log_α r⌉·μ time when α = μ — the upper
//     bound matching the Θ shape of Theorem 3.1's
//     Ω(μ·log(n/γ)/log μ). Because GSM computation is free, a processor
//     holding all input atoms answers Parity and OR alike; the gathering
//     time is the lower-bounded quantity.
//   - RelaxedRoundGSM: the GSM(h) round accounting of Section 6.3 (a round
//     is a phase of time O(μh/λ) regardless of p), with a compaction tree
//     measured in relaxed rounds against Theorem 6.3's
//     Ω(√(log(n/(dγ))/log(μh/λ))) and the plain tree against its
//     log(n/γ)/log(μh/λ) information ceiling.
package gsmalg

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/gsm"
)

// GatherTree merges the information of the first r cells of the machine
// into a single output cell using fan-in `fanin` reads per processor per
// phase, and returns the output cell's address. With fanin = α each phase
// is exactly one big-step.
func GatherTree(m *gsm.Machine, r, fanin int) (int, error) {
	if r < 1 {
		return 0, fmt.Errorf("gsmalg: r must be ≥ 1, got %d", r)
	}
	if fanin < 2 {
		return 0, fmt.Errorf("gsmalg: fan-in must be ≥ 2, got %d", fanin)
	}
	cur, width := 0, r
	next := r
	for width > 1 {
		nw := (width + fanin - 1) / fanin
		curL, widthL, nextL := cur, width, next
		m.Phase(func(c *gsm.Ctx) {
			j := c.Proc()
			for ; j < nw; j += m.P() {
				// A node's children are contiguous: one block read per
				// node, then the free local merge.
				cnt := min(fanin, widthL-j*fanin)
				var acc gsm.Info
				for _, in := range c.ReadBlock(curL+j*fanin, cnt) {
					acc = acc.Merge(in)
				}
				c.Write(nextL+j, acc)
			}
		})
		cur, width, next = next, nw, next+nw
		if m.Err() != nil {
			return 0, m.Err()
		}
	}
	return cur, m.Err()
}

// CellsNeedGather returns the number of cells GatherTree needs for r
// loaded cells.
func CellsNeedGather(r int) int { return 2*r + 2 }

// ParityGSM computes the parity of the n inputs loaded with
// Machine.LoadInputs (γ per cell): it gathers all information and decodes
// the answer from the output cell's atoms. Local computation is free on
// the GSM, so the gathering time is the whole cost.
func ParityGSM(m *gsm.Machine, n int, fanin int) (int64, error) {
	r := (n + int(m.Gamma()) - 1) / int(m.Gamma())
	out, err := GatherTree(m, r, fanin)
	if err != nil {
		return 0, err
	}
	info := m.Peek(out)
	if len(info) != n {
		return 0, fmt.Errorf("gsmalg: output cell holds %d atoms, want %d", len(info), n)
	}
	var par int64
	for _, a := range info {
		_, v := gsm.AtomInput(a)
		par ^= v & 1
	}
	return par, nil
}

// ORGSM computes the OR of the loaded inputs by the same gather.
func ORGSM(m *gsm.Machine, n int, fanin int) (int64, error) {
	r := (n + int(m.Gamma()) - 1) / int(m.Gamma())
	out, err := GatherTree(m, r, fanin)
	if err != nil {
		return 0, err
	}
	for _, a := range m.Peek(out) {
		if _, v := gsm.AtomInput(a); v != 0 {
			return 1, nil
		}
	}
	return 0, nil
}

// RelaxedRounds classifies the phases of a finished GSM run under the
// Section 6.3 GSM(h) round definition: a phase is a round iff its time is
// ≤ slack·μh/λ, independent of the processor count. It returns the number
// of conforming phases and whether all conformed.
func RelaxedRounds(rep *cost.Report, h int64, slack int64) (rounds int, all bool) {
	mu := rep.Params.Mu()
	lam := rep.Params.Lambda()
	if lam < 1 {
		lam = 1
	}
	budget := cost.Time(slack * mu * h / lam)
	if budget < 1 {
		budget = 1
	}
	all = true
	for _, ph := range rep.Phases {
		if ph.Time <= budget {
			rounds++
		} else {
			all = false
		}
	}
	return rounds, all
}
