package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"basic qsm", Params{G: 2, P: 4}, true},
		{"g zero", Params{G: 0, P: 4}, false},
		{"no procs", Params{G: 1, P: 0}, false},
		{"bsp ok", Params{G: 2, L: 8, P: 4}, true},
		{"bsp L below g", Params{G: 4, L: 2, P: 4}, false},
		{"gsm ok", Params{G: 1, P: 2, Alpha: 1, Beta: 3, Gamma: 1}, true},
		{"gsm negative", Params{G: 1, P: 2, Alpha: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
			}
		})
	}
}

func TestMuLambda(t *testing.T) {
	p := Params{Alpha: 3, Beta: 7}
	if p.Mu() != 7 {
		t.Errorf("Mu = %d, want 7", p.Mu())
	}
	if p.Lambda() != 3 {
		t.Errorf("Lambda = %d, want 3", p.Lambda())
	}
	q := Params{Alpha: 9, Beta: 2}
	if q.Mu() != 9 || q.Lambda() != 2 {
		t.Errorf("Mu/Lambda = %d/%d, want 9/2", q.Mu(), q.Lambda())
	}
}

func TestRulePhaseTime(t *testing.T) {
	// QSM: max(m_op, g·m_rw, κ)
	if got := RuleQSM.PhaseTime(3, 0, 5, 2, 4, 9); got != 9 {
		t.Errorf("QSM time = %d, want 9 (κ dominates)", got)
	}
	if got := RuleQSM.PhaseTime(3, 0, 5, 4, 1, 1); got != 12 {
		t.Errorf("QSM time = %d, want 12 (g·m_rw dominates)", got)
	}
	if got := RuleQSM.PhaseTime(3, 0, 50, 4, 1, 1); got != 50 {
		t.Errorf("QSM time = %d, want 50 (m_op dominates)", got)
	}
	// s-QSM: κ is multiplied by g.
	if got := RuleSQSM.PhaseTime(3, 0, 5, 2, 4, 9); got != 27 {
		t.Errorf("s-QSM time = %d, want 27 (g·κ dominates)", got)
	}
	// CRQW: read contention free.
	if got := RuleCRQW.PhaseTime(1, 0, 1, 1, 100, 2); got != 2 {
		t.Errorf("CRQW time = %d, want 2 (read contention ignored)", got)
	}
	// QSM(g,d): κ multiplied by d.
	if got := RuleQSMGD.PhaseTime(3, 5, 1, 2, 4, 9); got != 45 {
		t.Errorf("QSM(g,d) time = %d, want 45 (d·κ dominates)", got)
	}
	// d=0 falls back to 1 (plain QSM).
	if got := RuleQSMGD.PhaseTime(3, 0, 5, 2, 4, 9); got != 9 {
		t.Errorf("QSM(g,0) time = %d, want 9", got)
	}
}

func TestQSMGDInterpolates(t *testing.T) {
	// QSM(g,1) = QSM and QSM(g,g) = s-QSM — the paper's observation that
	// QSM and s-QSM are the endpoints of the QSM(g,d) family.
	f := func(mOp, mRW, kr, kw uint16, gRaw uint8) bool {
		g := int64(gRaw%7) + 1
		o, w, r, ww := int64(mOp), int64(mRW), int64(kr), int64(kw)
		if RuleQSMGD.PhaseTime(g, 1, o, w, r, ww) != RuleQSM.PhaseTime(g, 0, o, w, r, ww) {
			return false
		}
		return RuleQSMGD.PhaseTime(g, g, o, w, r, ww) == RuleSQSM.PhaseTime(g, 0, o, w, r, ww)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRulePhaseTimeProperties(t *testing.T) {
	// Property: for all inputs, s-QSM cost ≥ QSM cost ≥ CRQW cost, and the
	// QRQW special case (g = 1) makes QSM and s-QSM coincide.
	f := func(mOp, mRW, kr, kw uint16, gRaw uint8) bool {
		g := int64(gRaw%7) + 1
		o, w, r, ww := int64(mOp), int64(mRW), int64(kr), int64(kw)
		q := RuleQSM.PhaseTime(g, 0, o, w, r, ww)
		s := RuleSQSM.PhaseTime(g, 0, o, w, r, ww)
		c := RuleCRQW.PhaseTime(g, 0, o, w, r, ww)
		if !(s >= q && q >= c) {
			return false
		}
		return RuleQSM.PhaseTime(1, 0, o, w, r, ww) == RuleSQSM.PhaseTime(1, 0, o, w, r, ww)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRuleString(t *testing.T) {
	if RuleQSM.String() != "QSM" || RuleSQSM.String() != "s-QSM" || RuleCRQW.String() != "CRQW-QSM" {
		t.Errorf("unexpected rule names: %s %s %s", RuleQSM, RuleSQSM, RuleCRQW)
	}
	if got := Rule(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown rule string = %q", got)
	}
}

func TestReportAdd(t *testing.T) {
	r := &Report{Model: "QSM", N: 16, Params: Params{G: 2, P: 4}}
	r.Add(PhaseCost{Time: 10, IsRound: true})
	r.Add(PhaseCost{Time: 7, IsRound: false})
	r.Add(PhaseCost{Time: 3, IsRound: true})
	if r.TotalTime != 20 {
		t.Errorf("TotalTime = %d, want 20", r.TotalTime)
	}
	if r.Work != 80 {
		t.Errorf("Work = %d, want 80", r.Work)
	}
	if r.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", r.Rounds)
	}
	if r.AllRounds {
		t.Error("AllRounds = true, want false")
	}
	if r.Phases[2].Index != 2 {
		t.Errorf("phase index = %d, want 2", r.Phases[2].Index)
	}
	if !strings.Contains(r.String(), "time=20") {
		t.Errorf("String() = %q missing total", r.String())
	}
	if !strings.Contains(r.Table(), "total time 20") {
		t.Errorf("Table() missing total:\n%s", r.Table())
	}
}

func TestReportAllRounds(t *testing.T) {
	r := &Report{Model: "QSM", N: 8, Params: Params{G: 1, P: 2}}
	r.Add(PhaseCost{Time: 1, IsRound: true})
	r.Add(PhaseCost{Time: 1, IsRound: true})
	if !r.AllRounds {
		t.Error("AllRounds = false for all-round computation")
	}
}

func TestRoundBudget(t *testing.T) {
	// c·g·n/p with c = RoundSlack.
	if got := RoundBudget(2, 64, 8); got != Time(RoundSlack*2*64/8) {
		t.Errorf("RoundBudget = %d", got)
	}
	// Degenerate cases clamp to ≥ 1.
	if got := RoundBudget(1, 1, 1000); got != 1 {
		t.Errorf("RoundBudget small = %d, want 1", got)
	}
	if got := RoundBudget(1, 10, 0); got <= 0 {
		t.Errorf("RoundBudget with p=0 = %d, want positive", got)
	}
}

func TestGSMRoundBudget(t *testing.T) {
	p := Params{P: 4, Alpha: 2, Beta: 8}
	// c·μ·n/(λ·p) = 4·8·64/(2·4) = 256
	if got := GSMRoundBudget(p, 64); got != 256 {
		t.Errorf("GSMRoundBudget = %d, want 256", got)
	}
	// λ = 0 clamps to 1.
	q := Params{P: 1, Alpha: 0, Beta: 3}
	if got := GSMRoundBudget(q, 4); got != Time(RoundSlack*3*4) {
		t.Errorf("GSMRoundBudget λ=0 = %d", got)
	}
}

func TestRulePhaseTimeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown rule")
		}
	}()
	Rule(99).PhaseTime(1, 0, 1, 1, 1, 1)
}
