// Package cost defines the shared cost vocabulary used by all machine-model
// simulators in this repository: time units, machine parameters, per-phase
// cost records, round classification and work accounting.
//
// The vocabulary follows MacKenzie & Ramachandran, "Computational Bounds for
// Fundamental Problems on General-Purpose Parallel Models" (SPAA 1998),
// Section 2. A QSM/s-QSM computation is a sequence of bulk-synchronous
// phases; a BSP computation is a sequence of supersteps; a GSM computation is
// a sequence of phases measured in big-steps. Each simulator produces a
// sequence of PhaseCost records, and the aggregate Report summarises total
// model time, work, and how many of the phases qualified as "rounds" in the
// sense of Section 2.3 of the paper.
package cost

import (
	"fmt"
	"strings"
)

// Time is model time in abstract machine units. All cost formulas in the
// paper (max(m_op, g·m_rw, κ) and friends) produce integral values given
// integral parameters, so Time is an integer type.
type Time int64

// Params carries the machine parameters of the four models.
//
//   - G is the bandwidth gap parameter of QSM, s-QSM and BSP.
//   - L is the BSP latency/synchronisation parameter (unused by QSM/s-QSM).
//   - P is the number of processors (or BSP components).
//   - Alpha, Beta, Gamma are the GSM parameters: a GSM big-step can handle
//     Alpha reads+writes per processor and Beta contention per cell, and each
//     cell initially holds information about up to Gamma inputs.
type Params struct {
	G     int64
	L     int64
	P     int
	Alpha int64
	Beta  int64
	Gamma int64
	// D is the memory gap of the QSM(g,d) model (RuleQSMGD); zero
	// elsewhere.
	D int64
}

// Validate reports whether the parameters are admissible for the given model
// family. The paper assumes g ≥ 1, L ≥ g (Section 2.1) and α, β, γ ≥ 1 for
// the GSM (Section 2.2).
func (p Params) Validate() error {
	if p.P < 1 {
		return fmt.Errorf("cost: need at least one processor, got %d", p.P)
	}
	if p.G < 1 {
		return fmt.Errorf("cost: gap parameter g must be ≥ 1, got %d", p.G)
	}
	if p.L != 0 && p.L < p.G {
		return fmt.Errorf("cost: BSP requires L ≥ g, got L=%d g=%d", p.L, p.G)
	}
	if p.Alpha < 0 || p.Beta < 0 || p.Gamma < 0 {
		return fmt.Errorf("cost: GSM parameters must be non-negative: α=%d β=%d γ=%d",
			p.Alpha, p.Beta, p.Gamma)
	}
	return nil
}

// Mu returns μ = max(α, β), the duration of one GSM big-step.
func (p Params) Mu() int64 { return max(p.Alpha, p.Beta) }

// Lambda returns λ = min(α, β).
func (p Params) Lambda() int64 { return min(p.Alpha, p.Beta) }

// PhaseCost records the accounting of one phase (or BSP superstep, or GSM
// phase) of a simulated computation.
type PhaseCost struct {
	// Index is the zero-based phase number.
	Index int
	// MaxOps is m_op: the maximum local (RAM) operations by any processor.
	MaxOps int64
	// MaxRW is m_rw: the maximum number of shared-memory reads or writes
	// issued by any processor (BSP: the h-relation h).
	MaxRW int64
	// Contention is κ: the maximum, over all cells, of the number of
	// processors reading the cell or the number writing it. For phases with
	// no reads or writes the paper defines κ = 1.
	Contention int64
	// ReadContention and WriteContention split κ by direction; CRQW-style
	// cost rules need the write side alone.
	ReadContention  int64
	WriteContention int64
	// BigSteps is the GSM b = max(⌈m_rw/α⌉, ⌈κ/β⌉); zero for non-GSM models.
	BigSteps int64
	// Time is the charged cost of the phase under the model's cost rule.
	Time Time
	// IsRound reports whether this phase qualified as a "round" under the
	// Section 2.3 definition for the model and the machine's (n, p).
	IsRound bool
}

// Report aggregates the cost of a full simulated computation.
type Report struct {
	// Model is a human-readable model name ("QSM", "s-QSM", "BSP", "GSM", …).
	Model string
	// N is the input size the round definition was evaluated against.
	N int
	// Params echoes the machine parameters.
	Params Params
	// Phases holds one record per executed phase, in order.
	Phases []PhaseCost
	// TotalTime is the sum of phase times (the paper's "time of an
	// algorithm").
	TotalTime Time
	// Work is the processor-time product p·TotalTime.
	Work int64
	// Rounds is the number of phases that met the round definition.
	Rounds int
	// AllRounds reports whether every phase was a round, i.e. whether the
	// computation "computes in rounds" (Section 2.3).
	AllRounds bool
}

// Add appends one phase record and updates the aggregates.
func (r *Report) Add(pc PhaseCost) {
	pc.Index = len(r.Phases)
	r.Phases = append(r.Phases, pc)
	r.TotalTime += pc.Time
	r.Work = int64(r.Params.P) * int64(r.TotalTime)
	if pc.IsRound {
		r.Rounds++
	}
	r.AllRounds = r.Rounds == len(r.Phases)
}

// NumPhases returns the number of executed phases.
func (r *Report) NumPhases() int { return len(r.Phases) }

// Mark captures the aggregate state of a report at a phase boundary, so a
// rolled-back phase can be uncharged exactly. It is the cost half of the
// engine's checkpoint/rollback machinery.
type Mark struct {
	Phases    int
	TotalTime Time
	Work      int64
	Rounds    int
	AllRounds bool
}

// Mark snapshots the report's aggregates.
func (r *Report) Mark() Mark {
	return Mark{
		Phases:    len(r.Phases),
		TotalTime: r.TotalTime,
		Work:      r.Work,
		Rounds:    r.Rounds,
		AllRounds: r.AllRounds,
	}
}

// Rewind restores the report to a previously captured Mark, discarding
// every phase charged since. Rewinding to a mark from a different report
// (or after the phase slice has been truncated below the mark) is a
// programming error; Rewind clamps rather than panics.
func (r *Report) Rewind(m Mark) {
	if m.Phases < 0 {
		m.Phases = 0
	}
	if m.Phases > len(r.Phases) {
		m.Phases = len(r.Phases)
	}
	r.Phases = r.Phases[:m.Phases]
	r.TotalTime = m.TotalTime
	r.Work = m.Work
	r.Rounds = m.Rounds
	r.AllRounds = m.AllRounds
}

// String renders a compact one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s[n=%d p=%d g=%d L=%d]: time=%d phases=%d rounds=%d allRounds=%v work=%d",
		r.Model, r.N, r.Params.P, r.Params.G, r.Params.L,
		r.TotalTime, r.NumPhases(), r.Rounds, r.AllRounds, r.Work)
}

// Table renders a per-phase cost table, useful for cmd/parsim traces.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %10s %10s %8s %6s\n",
		"phase", "m_op", "m_rw", "κ(read)", "κ(write)", "time", "round")
	for _, pc := range r.Phases {
		fmt.Fprintf(&b, "%-6d %8d %8d %10d %10d %8d %6v\n",
			pc.Index, pc.MaxOps, pc.MaxRW, pc.ReadContention, pc.WriteContention,
			pc.Time, pc.IsRound)
	}
	fmt.Fprintf(&b, "total time %d over %d phases (%d rounds)\n",
		r.TotalTime, r.NumPhases(), r.Rounds)
	return b.String()
}

// Rule identifies the cost rule a shared-memory phase is charged under.
type Rule int

const (
	// RuleQSM charges max(m_op, g·m_rw, κ): the QSM of Gibbons, Matias &
	// Ramachandran. With g = 1 this is the QRQW PRAM.
	RuleQSM Rule = iota
	// RuleSQSM charges max(m_op, g·m_rw, g·κ): the s-QSM.
	RuleSQSM
	// RuleCRQW charges max(m_op, g·m_rw, κ_write): unit-time concurrent
	// reads (read contention is free), queued writes. Used for the
	// "with concurrent reads" rows of Table 1.
	RuleCRQW
	// RuleQSMGD charges max(m_op, g·m_rw, d·κ): the QSM(g,d) of [10, 21],
	// with a separate gap parameter d at memory. QSM is QSM(g,1) and the
	// s-QSM is QSM(g,g). The d value comes from Params.D.
	RuleQSMGD
)

// String returns the conventional model name for the rule.
func (r Rule) String() string {
	switch r {
	case RuleQSM:
		return "QSM"
	case RuleSQSM:
		return "s-QSM"
	case RuleCRQW:
		return "CRQW-QSM"
	case RuleQSMGD:
		return "QSM(g,d)"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// PhaseTime applies the rule's cost formula. d is the QSM(g,d) memory gap
// (ignored by the other rules; a d of 0 is treated as 1).
func (r Rule) PhaseTime(g, d, mOp, mRW, kappaRead, kappaWrite int64) Time {
	kappa := max(kappaRead, kappaWrite)
	switch r {
	case RuleQSM:
		return Time(max(mOp, max(g*mRW, kappa)))
	case RuleSQSM:
		return Time(max(mOp, max(g*mRW, g*kappa)))
	case RuleCRQW:
		return Time(max(mOp, max(g*mRW, kappaWrite)))
	case RuleQSMGD:
		if d < 1 {
			d = 1
		}
		return Time(max(mOp, max(g*mRW, d*kappa)))
	default:
		panic("cost: unknown rule")
	}
}

// RoundBudget returns the phase-time budget below which a phase counts as a
// round for the shared-memory models: c·g·n/p (Section 2.3). The slack
// constant c absorbs the O(); we use c = RoundSlack throughout.
func RoundBudget(g int64, n, p int) Time {
	t := RoundSlack * g * int64(n) / int64(max(p, 1))
	if t < 1 {
		t = 1
	}
	return Time(t)
}

// GSMRoundBudget returns the GSM round budget c·μn/(λp).
func GSMRoundBudget(pr Params, n int) Time {
	lam := pr.Lambda()
	if lam < 1 {
		lam = 1
	}
	t := RoundSlack * pr.Mu() * int64(n) / (lam * int64(max(pr.P, 1)))
	if t < 1 {
		t = 1
	}
	return Time(t)
}

// RoundSlack is the constant hidden in the O() of the round definitions. The
// paper's bounds are insensitive to it; 4 keeps the natural fan-in-(n/p)
// algorithms classified as computing in rounds.
const RoundSlack = 4
