package adversary

import (
	"math/rand"
	"testing"
)

// obliviousOracle models an oblivious algorithm: requests never depend on
// inputs, so certificates are empty and REFINE succeeds immediately with
// zero fixed inputs.
type obliviousOracle struct{ req, cont int }

func (o obliviousOracle) MaxProcCert(int, PartialInput) ([]int, []int8, int) {
	return nil, nil, o.req
}
func (o obliviousOracle) MaxCellCerts(int, PartialInput, int) ([]int, []int8, int) {
	return nil, nil, o.cont
}

// certOracle models an adaptive algorithm whose maximal behaviour is
// certified by small input certificates (the paper's ≤ √log n regime).
// Like the paper's MaxProc, it answers relative to the CURRENT partial
// input: the max-request state is "the first k inputs that can still be 1
// are 1" — once the adversary has fixed some input to 0, a different
// state becomes maximal, so the While loop always makes progress.
type certOracle struct {
	k    int
	req  int
	cont int
}

// liveCert returns up to k input indexes (scanning from `from`) whose
// value under f is still possibly 1.
func liveCert(f PartialInput, from, k int) ([]int, []int8) {
	var idx []int
	for i := from; i < len(f) && len(idx) < k; i++ {
		if f[i] != 0 {
			idx = append(idx, i)
		}
	}
	vals := make([]int8, len(idx))
	for i := range vals {
		vals[i] = 1
	}
	return idx, vals
}

func (o certOracle) MaxProcCert(_ int, f PartialInput) ([]int, []int8, int) {
	idx, vals := liveCert(f, 0, o.k)
	return idx, vals, o.req
}

func (o certOracle) MaxCellCerts(_ int, f PartialInput, limit int) ([]int, []int8, int) {
	k := o.k
	if k > limit {
		k = limit
	}
	// Disjoint region from the processor certificates.
	idx, vals := liveCert(f, len(f)/2, k)
	return idx, vals, o.cont
}

func TestGSMRefineOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := NewPartialInput(64)
	res, err := GSMRefine(rng, Uniform(64), obliviousOracle{req: 6, cont: 9}, 0, f, 2, 3, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fixed != 0 {
		t.Errorf("oblivious oracle fixed %d inputs, want 0", res.Fixed)
	}
	if !res.Successful {
		t.Error("zero fixes must be successful")
	}
	// x = max(⌈6/2⌉, ⌈9/3⌉) = 3.
	if res.BigSteps != 3 {
		t.Errorf("big-steps = %d, want 3", res.BigSteps)
	}
}

func TestGSMRefineCertificates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var totalFixed, succ int
	const trials = 300
	for i := 0; i < trials; i++ {
		f := NewPartialInput(64)
		// Budget plays n^{2/3} for an effective n = 2¹⁵ (the paper's regime
		// makes it generous relative to the √log n certificates).
		res, err := GSMRefine(rng, Uniform(64), certOracle{k: 3, req: 4, cont: 8}, 0, f, 1, 1, 32, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		totalFixed += res.Fixed
		if res.Successful {
			succ++
		}
		if res.BigSteps != 8 {
			t.Errorf("big-steps = %d, want max(4, 8) = 8", res.BigSteps)
		}
		// Once REFINE returns, the final certificate really is forced:
		// the first 3 inputs that are not fixed-to-0 are all 1.
		ones := 0
		for j := 0; j < len(f) && ones < 3; j++ {
			if f[j] == 1 {
				ones++
			} else if f[j] == Unset {
				t.Fatalf("unset input %d precedes a satisfied certificate", j)
			}
		}
		if ones != 3 {
			t.Fatalf("only %d forced ones after REFINE", ones)
		}
	}
	// Lemma 5.3 flavour: with |Cert| = 3 and q = 1/2, each attempt succeeds
	// w.p. 1/8, so the expected number of fixed inputs is small and the
	// n^{2/3} = 16 budget holds essentially always.
	if float64(succ)/trials < 0.9 {
		t.Errorf("success rate %v, want ≥ 0.9", float64(succ)/trials)
	}
	if avg := float64(totalFixed) / trials; avg > 40 {
		t.Errorf("average fixed inputs %v implausibly high", avg)
	}
}

func TestGSMRefineGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewPartialInput(8)
	if _, err := GSMRefine(rng, Uniform(8), obliviousOracle{}, 0, f, 1, 1, 0, 10); err == nil {
		t.Error("want budget error")
	}
	// An oracle whose certificate can never be satisfied exhausts the
	// attempt cap: it stubbornly demands value 1 on an input the adversary
	// has already fixed to 0 (a malformed oracle, not a paper-conforming
	// one — MaxProc only ranges over states consistent with f).
	f2 := NewPartialInput(8)
	f2[0] = 0
	if _, err := GSMRefine(rng, Uniform(8), stubbornOracle{}, 0, f2, 1, 1, 16, 5); err == nil {
		t.Error("want attempts-exhausted error")
	}
}

// stubbornOracle always demands input 0 = 1, even when it is fixed to 0.
type stubbornOracle struct{}

func (stubbornOracle) MaxProcCert(int, PartialInput) ([]int, []int8, int) {
	return []int{0}, []int8{1}, 1
}
func (stubbornOracle) MaxCellCerts(int, PartialInput, int) ([]int, []int8, int) {
	return nil, nil, 1
}

// mismatchOracle returns inconsistent certificate shapes.
type mismatchOracle struct{}

func (mismatchOracle) MaxProcCert(int, PartialInput) ([]int, []int8, int) {
	return []int{1, 2}, []int8{1}, 1
}
func (mismatchOracle) MaxCellCerts(int, PartialInput, int) ([]int, []int8, int) {
	return nil, nil, 1
}

func TestGSMRefineOracleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewPartialInput(8)
	if _, err := GSMRefine(rng, Uniform(8), mismatchOracle{}, 0, f, 1, 1, 16, 10); err == nil {
		t.Error("want shape-mismatch error")
	}
}
