package adversary

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/cost"
	"repro/internal/qsm"
)

// The Theorem 3.3 information-spread argument, executed: in T phases with
// fan-out k, a single input bit can affect at most (k+1)^T cells. We run a
// traced QSM broadcast of one input bit (the maximal spreader) on all 2^n
// inputs and check |AffCell| against the spread cap.
func TestTheorem33InfluenceSpread(t *testing.T) {
	const (
		n      = 4 // traced exhaustively over 2^4 inputs
		fanout = 2
		copies = 16
	)
	cells := n + copies // n input cells, then the broadcast region
	runner := func(bits []int64) (TraceSource, error) {
		m, err := qsm.New(qsm.Config{
			Rule: cost.RuleQSM, P: copies, G: 1, N: n, MemCells: n,
		})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.Load(0, bits); err != nil {
			return nil, err
		}
		// Broadcast input bit 0 to `copies` cells with the given fan-out.
		if _, err := broadcast.RunQSM(m, 0, copies, fanout); err != nil {
			return nil, err
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		return m.TraceLog(), nil
	}
	a, err := AnalyzeKnowledge(runner, n, copies, cells)
	if err != nil {
		t.Fatal(err)
	}
	// Input 0's influence grows by at most ×(fanout+1) per phase.
	cap := 1.0
	for tt := 0; tt < a.Phases; tt++ {
		cap *= float64(fanout + 1)
		if float64(a.MaxAffCell[tt]) > cap+1 { // +1 for the original input cell
			t.Errorf("phase %d: |AffCell| = %d exceeds (k+1)^T = %v",
				tt, a.MaxAffCell[tt], cap)
		}
	}
	// The final phase must show real spread: bit 0 affects every broadcast
	// cell (influence reached ~copies cells), while bits 1..3 affect none.
	last := a.Phases - 1
	if a.MaxAffCell[last] < copies {
		t.Errorf("final |AffCell| = %d, want ≥ %d (full broadcast)", a.MaxAffCell[last], copies)
	}
	// Only one input has any influence — its Know sets are singletons.
	if a.MaxKnow[last] != 1 {
		t.Errorf("max |Know| = %d, want 1 (only bit 0 is ever read)", a.MaxKnow[last])
	}
}

// A QSM read tree analyzed with the same machinery: knowledge accumulates
// exactly as in the GSM case, confirming the analyzer is model-agnostic.
func TestAnalyzeKnowledgeQSMTree(t *testing.T) {
	const n = 8
	cellsNeeded := 2 * n
	runner := func(bits []int64) (TraceSource, error) {
		m, err := qsm.New(qsm.Config{
			Rule: cost.RuleQSM, P: n, G: 1, N: n, MemCells: n,
		})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.Load(0, bits); err != nil {
			return nil, err
		}
		cur, width := 0, n
		for width > 1 {
			next := m.MemSize()
			nw := (width + 1) / 2
			m.Grow(next + nw)
			curL, widthL := cur, width
			m.Phase(func(c *qsm.Ctx) {
				j := c.Proc()
				if j >= nw {
					return
				}
				v := c.Read(curL + 2*j)
				if 2*j+1 < widthL {
					if c.Read(curL+2*j+1) != 0 {
						v = 1
					}
				}
				if v != 0 {
					v = 1
				}
				c.Op(1)
				c.Write(next+j, v)
			})
			cur, width = next, nw
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		return m.TraceLog(), nil
	}
	a, err := AnalyzeKnowledge(runner, n, n, cellsNeeded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 3 {
		t.Fatalf("phases = %d, want 3", a.Phases)
	}
	// The root cell's OR value is determined by all inputs, so some cell
	// knows all n inputs at the end.
	if a.MaxKnow[a.Phases-1] != n {
		t.Errorf("final max |Know| = %d, want %d", a.MaxKnow[a.Phases-1], n)
	}
	// OR-tree cell states are coarse (value 0/1), but the knowledge/degree
	// ledger still respects deg ≤ n.
	if a.MaxDegree[a.Phases-1] > n {
		t.Errorf("degree %d exceeds n", a.MaxDegree[a.Phases-1])
	}
}
