package adversary

import (
	"math"
	"math/rand"
	"testing"
)

func TestParityAdversaryTreeProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 10
	res, err := ParityAdversary(rng, n, TreeParityAccess{Fanin: 2}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant 3 flavour: against a fan-in-k profile the independent set
	// keeps ≥ 1/k of the variables, so the adversary survives ≥ log_k n
	// phases before |V_t| ≤ 1 — the Ω(# phases) mechanism.
	if res.Phases < 10 {
		t.Errorf("adversary survived only %d phases against a binary tree, want ≥ log₂ n = 10", res.Phases)
	}
	// |V_t| shrinks by at most the group factor each phase, never to zero
	// before the end.
	for i := 1; i < len(res.Unfixed); i++ {
		lo := res.Unfixed[i-1] / 2
		if res.Unfixed[i] < lo-1 {
			t.Errorf("phase %d: |V| dropped from %d to %d (> factor 2)",
				i, res.Unfixed[i-1], res.Unfixed[i])
		}
	}
	// Everything outside the final survivor set is fixed to 0/1.
	unset := 0
	for _, v := range res.Fixed {
		if v == Unset {
			unset++
		}
	}
	if unset != res.Unfixed[len(res.Unfixed)-1] {
		t.Errorf("unset count %d ≠ final |V| %d", unset, res.Unfixed[len(res.Unfixed)-1])
	}
}

func TestParityAdversaryWideFanin(t *testing.T) {
	// Larger fan-in (more contention budget) kills variables faster —
	// exactly the log ν denominator of Theorem 3.2.
	rng := rand.New(rand.NewSource(5))
	n := 1 << 10
	r2, err := ParityAdversary(rng, n, TreeParityAccess{Fanin: 2}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := ParityAdversary(rng, n, TreeParityAccess{Fanin: 8}, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Phases >= r2.Phases {
		t.Errorf("fan-in 8 adversary survived %d ≥ fan-in 2's %d phases", r8.Phases, r2.Phases)
	}
	if r8.Phases < 3 {
		t.Errorf("fan-in 8 adversary died too fast: %d phases, want ≥ log₈ n", r8.Phases)
	}
}

func TestParityAdversaryLedger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res, err := ParityAdversary(rng, 64, TreeParityAccess{Fanin: 2}, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	// k_t = ν^t ledger is monotone and matches the formula.
	for i := 1; i < len(res.KnowersBound); i++ {
		if res.KnowersBound[i] < res.KnowersBound[i-1] {
			t.Error("k_t ledger must be monotone")
		}
		if math.Abs(res.KnowersBound[i]-pow(3, i)) > 1e-9 {
			t.Errorf("k_%d = %v, want %v", i, res.KnowersBound[i], pow(3, i))
		}
	}
}

func TestParityAdversaryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ParityAdversary(rng, 0, TreeParityAccess{Fanin: 2}, 1, 8); err == nil {
		t.Error("want n error")
	}
	// A profile returning self-loops or fixed variables is rejected.
	bad := badAccess{}
	if _, err := ParityAdversary(rng, 8, bad, 1, 8); err == nil {
		t.Error("want invalid-edge error")
	}
}

type badAccess struct{}

func (badAccess) Edges(int, []int) [][2]int { return [][2]int{{3, 3}} }

// The adversary's fixing is unbiased (invariant 4 via RANDOMSET): over
// many runs the fixed values are ~uniform.
func TestParityAdversaryUnbiasedFixing(t *testing.T) {
	ones, total := 0, 0
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		res, err := ParityAdversary(rng, 128, TreeParityAccess{Fanin: 4}, 4, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Fixed {
			if v == 1 {
				ones++
			}
			if v != Unset {
				total++
			}
		}
	}
	freq := float64(ones) / float64(total)
	if math.Abs(freq-0.5) > 0.03 {
		t.Errorf("fixed-value one-frequency %.3f, want 0.50±0.03", freq)
	}
}
