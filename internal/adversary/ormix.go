package adversary

import (
	"fmt"
	"math"
	"math/rand"
)

// ORMixture is the Section 7 input distribution D for the OR lower bound,
// at group granularity (each group of γ inputs associated with one cell is
// set as a unit, so there are r = n/γ groups):
//
//   - with probability 1/2 the input is all zeros;
//   - otherwise a layer i ∈ {0, …, K} is chosen uniformly
//     (K = ⌈¼·log*_{μ+1} r⌉) and the input is drawn from H_i, in which
//     every group is 1 independently with probability 1/d_i.
//
// The densities explode: d_0 = log^{(⌈¾·log* r⌉)}_{μ+1}(r) (clamped ≥ 2)
// and d_{i+1} = (μ+1)^{(μ+1)^{d_i}} — each successive layer is sparser by
// a tower, which is what forces any algorithm to spend Ω(log* r) steps
// ruling layers out.
type ORMixture struct {
	// Groups is r, the number of input groups.
	Groups int
	// Mu is the GSM μ parameter the densities are built from.
	Mu float64
	// D holds the layer densities d_0 … d_K.
	D []float64
}

// NewORMixture constructs the distribution for r groups and parameter μ ≥ 1.
func NewORMixture(groups int, mu float64) (*ORMixture, error) {
	if groups < 1 {
		return nil, fmt.Errorf("adversary: need ≥ 1 group, got %d", groups)
	}
	if mu < 1 {
		return nil, fmt.Errorf("adversary: μ must be ≥ 1, got %v", mu)
	}
	r := float64(groups)
	ls := LogStarBase(mu+1, r)
	k := (ls + 3) / 4 // ⌈¼·log* r⌉ layers above layer 0
	d0 := IterLogBase(mu+1, r, (3*ls+3)/4)
	if d0 < 2 {
		d0 = 2
	}
	m := &ORMixture{Groups: groups, Mu: mu, D: []float64{d0}}
	for i := 0; i < k; i++ {
		prev := m.D[len(m.D)-1]
		next := math.Pow(mu+1, math.Pow(mu+1, prev))
		if math.IsInf(next, 0) || next > 1e300 {
			next = 1e300
		}
		m.D = append(m.D, next)
	}
	return m, nil
}

// Layers returns the number of H_i layers (K+1).
func (o *ORMixture) Layers() int { return len(o.D) }

// LayerZeros is the layer index used for the all-zeros component.
const LayerZeros = -1

// LayerWeight returns the mixture weight of a layer (LayerZeros or 0..K).
func (o *ORMixture) LayerWeight(layer int) float64 {
	if layer == LayerZeros {
		return 0.5
	}
	if layer < 0 || layer >= len(o.D) {
		return 0
	}
	return 0.5 / float64(len(o.D))
}

// SampleLayer draws a layer according to the mixture weights.
func (o *ORMixture) SampleLayer(rng *rand.Rand) int {
	if rng.Float64() < 0.5 {
		return LayerZeros
	}
	return rng.Intn(len(o.D))
}

// SampleGroups draws a full group-value vector from the mixture.
func (o *ORMixture) SampleGroups(rng *rand.Rand) []int8 {
	return o.SampleGroupsFromLayer(rng, o.SampleLayer(rng))
}

// SampleGroupsFromLayer draws group values from one component.
func (o *ORMixture) SampleGroupsFromLayer(rng *rand.Rand, layer int) []int8 {
	out := make([]int8, o.Groups)
	if layer == LayerZeros {
		return out
	}
	p := 1 / o.D[layer]
	for i := range out {
		if rng.Float64() < p {
			out[i] = 1
		}
	}
	return out
}

// LayerSet is the adversary's current knowledge in the Section 7 modified
// framework: the set of mixture components still possible. RANDOMRESTRICT
// shrinks it; RANDOMFIX draws a concrete input from it.
type LayerSet struct {
	mix    *ORMixture
	active map[int]bool
}

// FullSet returns the unrestricted layer set (all components).
func (o *ORMixture) FullSet() *LayerSet {
	ls := &LayerSet{mix: o, active: map[int]bool{LayerZeros: true}}
	for i := range o.D {
		ls.active[i] = true
	}
	return ls
}

// Active reports whether a layer is still possible.
func (ls *LayerSet) Active(layer int) bool { return ls.active[layer] }

// Size returns the number of active layers.
func (ls *LayerSet) Size() int { return len(ls.active) }

// Weight returns the total mixture weight of the active layers. The sum
// runs in layer order: floating-point addition is not associative, so a
// map-order sum could differ in the last ulp between runs and perturb the
// RandomRestrict/RandomFix draw thresholds.
func (ls *LayerSet) Weight() float64 {
	var w float64
	for _, l := range orderedLayers(ls) {
		w += ls.mix.LayerWeight(l)
	}
	return w
}

// RandomRestrict is the paper's RANDOMRESTRICT(F, F′) with F′ = {H_t}: with
// probability D(H_t)/D(F) the set collapses to {H_t} (returns true), else
// H_t is removed from F (returns false). An inactive t is an error.
func (ls *LayerSet) RandomRestrict(rng *rand.Rand, t int) (bool, error) {
	if !ls.active[t] {
		return false, fmt.Errorf("adversary: layer %d not active", t)
	}
	p := ls.mix.LayerWeight(t) / ls.Weight()
	if rng.Float64() < p {
		ls.active = map[int]bool{t: true}
		return true, nil
	}
	delete(ls.active, t)
	return false, nil
}

// RandomFix is the paper's RANDOMFIX: it draws a complete input from the
// mixture restricted to the active layers, returning the group values and
// the layer they came from.
func (ls *LayerSet) RandomFix(rng *rand.Rand) ([]int8, int, error) {
	w := ls.Weight()
	if w <= 0 {
		return nil, 0, fmt.Errorf("adversary: empty layer set")
	}
	x := rng.Float64() * w
	for _, l := range orderedLayers(ls) {
		x -= ls.mix.LayerWeight(l)
		if x <= 0 {
			return ls.mix.SampleGroupsFromLayer(rng, l), l, nil
		}
	}
	// Floating-point slack: take the last active layer.
	layers := orderedLayers(ls)
	l := layers[len(layers)-1]
	return ls.mix.SampleGroupsFromLayer(rng, l), l, nil
}

func orderedLayers(ls *LayerSet) []int {
	var out []int
	if ls.active[LayerZeros] {
		out = append(out, LayerZeros)
	}
	for i := 0; i < len(ls.mix.D); i++ {
		if ls.active[i] {
			out = append(out, i)
		}
	}
	return out
}

// --- the Section 7 REFINE over an access profile ------------------------------

// AccessProfile abstracts the algorithm quantities REFINE consults: the
// maximum possible per-processor request count and per-cell contention at
// step t, over the inputs still possible. Oblivious algorithms return
// constants; adaptive ones may grow them as layers are ruled out.
type AccessProfile interface {
	MaxRWP(t int, ls *LayerSet) float64
	MaxAccess(t int, ls *LayerSet) float64
}

// ORRefineResult reports a run of the Section 7 adversary.
type ORRefineResult struct {
	// Steps is the number of REFINE calls until the input was fully fixed
	// or maxSteps elapsed.
	Steps int
	// FixedEarly reports whether line (4)/(10) fired (the algorithm tried
	// a big step and the adversary cashed in the expected contention).
	FixedEarly bool
	// Line17 reports whether line (17) fired (RANDOMRESTRICT chose H_t).
	Line17 bool
	// Input is the fixed group vector (nil if maxSteps elapsed first).
	Input []int8
	// Layer is the mixture component of the fixed input.
	Layer int
}

// ORRefine drives the modified adversary of Section 7 against an access
// profile: at each step, if the profile exceeds the d_t^{d_t+2}·log* r
// thresholds (scaled by α or β), the input is fixed immediately
// (lines 3–13); otherwise RANDOMRESTRICT is called on layer t (lines
// 15–19) and, if it selects H_t, the input is fixed.
func ORRefine(rng *rand.Rand, mix *ORMixture, prof AccessProfile, alpha, beta float64, maxSteps int) (*ORRefineResult, error) {
	ls := mix.FullSet()
	lsr := float64(LogStarBase(mix.Mu+1, float64(mix.Groups)))
	if lsr < 1 {
		lsr = 1
	}
	res := &ORRefineResult{Layer: LayerZeros}
	for t := 0; t < maxSteps; t++ {
		res.Steps = t + 1
		dt := mix.D[minInt(t, len(mix.D)-1)]
		threshold := math.Pow(dt, dt+2) * lsr
		if math.IsInf(threshold, 0) || threshold > 1e300 {
			threshold = 1e300
		}
		if prof.MaxRWP(t, ls) >= alpha*threshold || prof.MaxAccess(t, ls) >= beta*threshold {
			in, layer, err := ls.RandomFix(rng)
			if err != nil {
				return nil, err
			}
			res.FixedEarly, res.Input, res.Layer = true, in, layer
			return res, nil
		}
		if t < len(mix.D) && ls.Active(t) {
			took, err := ls.RandomRestrict(rng, t)
			if err != nil {
				return nil, err
			}
			if took {
				in, layer, err := ls.RandomFix(rng)
				if err != nil {
					return nil, err
				}
				res.Line17, res.Input, res.Layer = true, in, layer
				return res, nil
			}
		}
		if ls.Size() == 1 {
			in, layer, err := ls.RandomFix(rng)
			if err != nil {
				return nil, err
			}
			res.Input, res.Layer = in, layer
			return res, nil
		}
	}
	return res, nil
}

// --- iterated logarithms -------------------------------------------------------

// LogStarBase returns log*_b(x): the number of times log_b must be applied
// before the value drops to ≤ 1. b must exceed 1.
func LogStarBase(b, x float64) int {
	if b <= 1 {
		b = 2
	}
	s := 0
	for x > 1 && s < 64 {
		x = math.Log(x) / math.Log(b)
		s++
	}
	return s
}

// IterLogBase applies log_b k times to x, flooring intermediate values at 1.
func IterLogBase(b, x float64, k int) float64 {
	if b <= 1 {
		b = 2
	}
	for i := 0; i < k; i++ {
		if x <= 1 {
			return 1
		}
		x = math.Log(x) / math.Log(b)
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
