package adversary

import (
	"fmt"
	"math/rand"
)

// The Theorem 3.2 randomized-parity adversary. The proof maintains, phase
// by phase, four invariants over a set V_t of unfixed variables:
//
//  1. each processor and cell knows at most one unfixed variable;
//  2. at most k_t = ν^t entities know any one unfixed variable;
//  3. |V_t| ≥ |V_{t−1}|/(5ν·k_t);
//  4. fixed variables were set (by RANDOMSET over the uniform
//     distribution) to maximise the algorithm's failure.
//
// Mechanically, after each phase the adversary builds an undirected graph
// G on V_t with an edge {x_i, x_j} whenever an entity knowing x_i touched
// an entity knowing x_j, takes a large independent set I of G, and fixes
// everything outside I. ParityAdversary executes exactly that bookkeeping
// against an abstract access profile and reports the invariant ledger.

// ParityAccess describes, for one phase, which knowledge collisions the
// algorithm causes: Edges(t, V) returns the pairs of distinct unfixed
// variables whose knowers interact in phase t (a processor knowing x_i
// reads/writes a cell knowing x_j). Degree bounds follow from the
// algorithm's per-phase read/write and contention limits, as in the proof.
type ParityAccess interface {
	Edges(t int, unfixed []int) [][2]int
}

// ParityAdversaryResult is the invariant ledger of a run.
type ParityAdversaryResult struct {
	// Phases executed before |V_t| dropped to ≤ 1.
	Phases int
	// Unfixed[t] is |V_t| after phase t (index 0 = before any phase).
	Unfixed []int
	// KnowersBound[t] is the paper's k_t = ν^t cap.
	KnowersBound []float64
	// Fixed is the final assignment of all fixed variables.
	Fixed PartialInput
}

// ParityAdversary runs the Theorem 3.2 adversary over n variables against
// the access profile: per phase it collects the interaction edges, finds a
// greedy independent set, and fixes the complement uniformly at random
// (invariant 4's RANDOMSET step). nu is the paper's ν = μτ growth
// parameter, used only for the reported k_t ledger. It stops when at most
// one variable is left (the algorithm can no longer know the parity) or
// after maxPhases.
func ParityAdversary(rng *rand.Rand, n int, acc ParityAccess, nu float64, maxPhases int) (*ParityAdversaryResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("adversary: need ≥ 1 variable")
	}
	f := NewPartialInput(n)
	unfixed := make([]int, n)
	for i := range unfixed {
		unfixed[i] = i
	}
	res := &ParityAdversaryResult{
		Unfixed:      []int{n},
		KnowersBound: []float64{1},
	}
	dist := Uniform(n)

	for t := 0; len(unfixed) > 1 && t < maxPhases; t++ {
		edges := acc.Edges(t, unfixed)
		// Validate the profile only returns unfixed pairs.
		inU := make(map[int]bool, len(unfixed))
		for _, v := range unfixed {
			inU[v] = true
		}
		adj := make(map[int][]int)
		for _, e := range edges {
			if e[0] == e[1] || !inU[e[0]] || !inU[e[1]] {
				return nil, fmt.Errorf("adversary: profile returned invalid edge %v at phase %d", e, t)
			}
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		// Greedy independent set in degree order — at least |V|/(Δ+1).
		taken := make(map[int]bool)
		blocked := make(map[int]bool)
		for _, v := range unfixed {
			if !blocked[v] {
				taken[v] = true
				for _, w := range adj[v] {
					blocked[w] = true
				}
				blocked[v] = true
			}
		}
		var keep, drop []int
		for _, v := range unfixed {
			if taken[v] {
				keep = append(keep, v)
			} else {
				drop = append(drop, v)
			}
		}
		// Invariant 4: fix dropped variables via RANDOMSET.
		var err error
		f, err = RandomSet(rng, dist, f, drop)
		if err != nil {
			return nil, err
		}
		unfixed = keep
		res.Phases = t + 1
		res.Unfixed = append(res.Unfixed, len(unfixed))
		res.KnowersBound = append(res.KnowersBound, pow(nu, t+1))
	}
	res.Fixed = f
	return res, nil
}

// TreeParityAccess models the knowledge collisions of a fan-in-k combine
// tree: in phase t, variables that share a fan-in-k group of the current
// level interact pairwise. It is the canonical profile for which the
// adversary's |V_t| shrink matches the ν-regime of the theorem.
type TreeParityAccess struct {
	// Fanin is the tree fan-in (≥ 2).
	Fanin int
}

// Edges implements ParityAccess: unfixed variables are ordered and grouped
// k at a time per level.
func (a TreeParityAccess) Edges(t int, unfixed []int) [][2]int {
	k := a.Fanin
	if k < 2 {
		k = 2
	}
	// At phase t the tree has collapsed groups t times; surviving unfixed
	// variables collide within their current group of k.
	var out [][2]int
	for i := 0; i < len(unfixed); i += k {
		hi := i + k
		if hi > len(unfixed) {
			hi = len(unfixed)
		}
		for x := i; x < hi; x++ {
			for y := x + 1; y < hi; y++ {
				out = append(out, [2]int{unfixed[x], unfixed[y]})
			}
		}
	}
	return out
}
