package adversary

import (
	"fmt"
	"math"
	"math/rand"
)

// The Section 5 REFINE procedure, executable. The paper's REFINE walks a
// deterministic GSM algorithm phase by phase and plays two forcing games:
//
//   - lines (4)–(10): find the processor with the maximum possible request
//     count, and fix (via RANDOMSET) the certificate of the state that
//     makes it issue those requests; repeat until the drawn values agree
//     with the certificate ("success"), which happens with probability
//     ≥ q^|Cert| per attempt;
//   - lines (12)–(21): the same for the cell with maximum possible
//     contention, fixing the certificates of up to μ·log log n writers.
//
// The procedure is "successful" when it fixes at most n^{2/3} inputs
// (Lemma 5.3 shows this holds with probability ≥ 1 − n⁻²  in the paper's
// regime because certificates are ≤ √log n inputs).
//
// GSMAccessOracle abstracts the algorithm quantities REFINE consults, in
// certificate form. Implementations answer for the *current* partial
// input f.
type GSMAccessOracle interface {
	// MaxProcCert returns the certificate (input indexes and the values
	// that force the max-request state) of MaxProc at step t, plus the
	// request count that state issues.
	MaxProcCert(t int, f PartialInput) (idx []int, vals []int8, requests int)
	// MaxCellCerts returns the certificates of the (up to limit) writers
	// of MaxCell at step t, flattened, plus the achievable contention.
	MaxCellCerts(t int, f PartialInput, limit int) (idx []int, vals []int8, contention int)
}

// GSMRefineResult reports one REFINE call.
type GSMRefineResult struct {
	// BigSteps is the returned lower bound x on the phase duration:
	// max(⌈requests/α⌉, ⌈contention/β⌉).
	BigSteps int
	// Fixed is the number of inputs RANDOMSET fixed during the call.
	Fixed int
	// Attempts counts RANDOMSET retries across both While loops.
	Attempts int
	// Successful reports whether ≤ budget inputs were fixed (the Lemma 5.3
	// success criterion).
	Successful bool
}

// GSMRefine executes REFINE(t, f) against the oracle, mutating f. dist
// drives RANDOMSET; alpha and beta are the GSM parameters; budget is the
// n^{2/3} input cap of the success definition; maxAttempts bounds each
// While loop (the paper's √n̄ cap).
func GSMRefine(rng *rand.Rand, dist Distribution, orc GSMAccessOracle,
	t int, f PartialInput, alpha, beta float64, budget, maxAttempts int) (*GSMRefineResult, error) {
	if budget < 1 || maxAttempts < 1 {
		return nil, fmt.Errorf("adversary: budget and maxAttempts must be ≥ 1")
	}
	res := &GSMRefineResult{}
	requests := 0

	// Lines (4)–(10): force the max-request processor.
	for {
		res.Attempts++
		if res.Attempts > maxAttempts {
			return nil, fmt.Errorf("adversary: REFINE processor loop exceeded %d attempts", maxAttempts)
		}
		idx, vals, req := orc.MaxProcCert(t, f)
		if len(idx) != len(vals) {
			return nil, fmt.Errorf("adversary: oracle certificate shape mismatch")
		}
		var unset []int
		for _, i := range idx {
			if !f.IsSet(i) {
				unset = append(unset, i)
			}
		}
		var err error
		f, err = RandomSet(rng, dist, f, unset)
		if err != nil {
			return nil, err
		}
		res.Fixed += len(unset)
		if agrees(f, idx, vals) {
			requests = req
			break
		}
	}

	// Lines (12)–(21): force the max-contention cell (up to μ·loglog n
	// writers; the caller encodes the limit in the oracle query).
	contention := 0
	limit := int(math.Max(1, (alpha+beta)*math.Log2(math.Max(2, math.Log2(float64(budget)+2)))))
	for {
		res.Attempts++
		if res.Attempts > 2*maxAttempts {
			return nil, fmt.Errorf("adversary: REFINE cell loop exceeded %d attempts", maxAttempts)
		}
		idx, vals, cont := orc.MaxCellCerts(t, f, limit)
		if len(idx) != len(vals) {
			return nil, fmt.Errorf("adversary: oracle certificate shape mismatch")
		}
		var unset []int
		for _, i := range idx {
			if !f.IsSet(i) {
				unset = append(unset, i)
			}
		}
		var err error
		f, err = RandomSet(rng, dist, f, unset)
		if err != nil {
			return nil, err
		}
		res.Fixed += len(unset)
		if agrees(f, idx, vals) {
			contention = cont
			break
		}
	}

	x := int(math.Ceil(float64(requests) / alpha))
	if c := int(math.Ceil(float64(contention) / beta)); c > x {
		x = c
	}
	if x < 1 {
		x = 1
	}
	res.BigSteps = x
	res.Successful = res.Fixed <= budget
	return res, nil
}

// agrees reports whether f matches the certificate values (a repeat draw
// is needed otherwise — the paper's If at lines (8)/(19)).
func agrees(f PartialInput, idx []int, vals []int8) bool {
	for k, i := range idx {
		if f[i] != vals[k] {
			return false
		}
	}
	return true
}
