package adversary

import (
	"testing"

	"repro/internal/gsm"
)

// treeORRunner returns a Runner executing a binary information-gathering
// tree on a GSM with n input cells (γ = 1): in each level, the owner of
// each pair merges the two cells' information into a fresh cell.
func treeORRunner(n int) (Runner, int, int) {
	// Memory: input cells [0,n), then tree levels; processors: n.
	cells := 2*n + 2
	machine := func(bits []int64) (*gsm.Machine, error) {
		m, err := gsm.New(gsm.Config{
			P: n, Alpha: 1, Beta: 1, Gamma: 1, N: n, Cells: cells,
		})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.LoadInputs(bits); err != nil {
			return nil, err
		}
		cur, width := 0, n
		next := n
		for width > 1 {
			nw := (width + 1) / 2
			curL, widthL, nextL := cur, width, next
			m.Phase(func(c *gsm.Ctx) {
				j := c.Proc()
				if j >= nw {
					return
				}
				a := c.Read(curL + 2*j)
				var b gsm.Info
				if 2*j+1 < widthL {
					b = c.Read(curL + 2*j + 1)
				}
				c.Write(nextL+j, a.Merge(b))
			})
			cur, width = next, nw
			next += nw
		}
		return m, nil
	}
	runner := func(bits []int64) (TraceSource, error) {
		m, err := machine(bits)
		if err != nil {
			return nil, err
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		return m.TraceLog(), nil
	}
	return runner, n, cells
}

func TestAnalyzeKnowledgeTree(t *testing.T) {
	n := 8
	runner, procs, cells := treeORRunner(n)
	a, err := AnalyzeKnowledge(runner, n, procs, cells)
	if err != nil {
		t.Fatal(err)
	}
	if a.Phases != 3 {
		t.Fatalf("phases = %d, want 3 (log₂ 8)", a.Phases)
	}
	// Traces are cumulative, so a processor's knowledge is the union of all
	// the pairs it has read: for n=8 the maxima per phase are 2 (a leaf
	// pair), 6 (processor 1 reads inputs {2,3} at level 0 and {4..7} at
	// level 1) and 8 (processor 0 sees everything through the root merge).
	wantKnow := []int{2, 6, 8}
	for tt := 0; tt < a.Phases; tt++ {
		if a.MaxKnow[tt] != wantKnow[tt] {
			t.Errorf("phase %d: MaxKnow = %d, want %d", tt, a.MaxKnow[tt], wantKnow[tt])
		}
	}
	// The root cell's contents after the last phase are determined by all
	// 8 inputs, so |States| at the root = 2^8 and the spread of AffCell
	// counts the path structure: every input affects its ⌈log⌉ path cells
	// plus its input cell: 4.
	if a.MaxStates[a.Phases-1] < 1<<uint(n) {
		t.Errorf("final MaxStates = %d, want ≥ %d", a.MaxStates[a.Phases-1], 1<<uint(n))
	}
	if a.MaxAffCell[a.Phases-1] != 4 {
		t.Errorf("MaxAffCell = %d, want 4 (input + 3 tree cells)", a.MaxAffCell[a.Phases-1])
	}
	// Degrees: the indicator of "cell holds exactly information set X" for
	// the full-information tree is a full covering of the subcube: degree
	// equals the number of known inputs at most.
	for tt := 0; tt < a.Phases; tt++ {
		if a.MaxDegree[tt] > a.MaxKnow[tt] {
			t.Errorf("phase %d: degree %d exceeds |Know| %d", tt, a.MaxDegree[tt], a.MaxKnow[tt])
		}
	}
}

func TestAnalyzeKnowledgeTGood(t *testing.T) {
	n := 8
	runner, procs, cells := treeORRunner(n)
	a, err := AnalyzeKnowledge(runner, n, procs, cells)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's regime: ν = γρ with γ = ρ = 1, μ = 1. The binary merge
	// tree stays far inside the t-goodness envelope.
	if v := CheckTGood(a, 1, 1); len(v) != 0 {
		t.Errorf("t-goodness violations on a binary tree: %+v", v)
	}
}

// A contention-heavy algorithm (all processors funnel into one cell in
// phase 0) still satisfies the k_t bounds but shows AffCell growth.
func TestAnalyzeKnowledgeFunnel(t *testing.T) {
	n := 6
	cells := n + 1
	runner := func(bits []int64) (TraceSource, error) {
		m, err := gsm.New(gsm.Config{P: n, Alpha: 1, Beta: 1, Gamma: 1, N: n, Cells: cells})
		if err != nil {
			return nil, err
		}
		m.EnableTracing()
		if err := m.LoadInputs(bits); err != nil {
			return nil, err
		}
		// Phase 1: everyone reads its own cell.
		vals := make([]gsm.Info, n)
		m.Phase(func(c *gsm.Ctx) {
			vals[c.Proc()] = c.Read(c.Proc())
		})
		// Phase 2: everyone writes its info to the funnel cell (strong
		// queuing merges all of it).
		m.Phase(func(c *gsm.Ctx) {
			c.Write(n, vals[c.Proc()])
		})
		if m.Err() != nil {
			return nil, m.Err()
		}
		return m.TraceLog(), nil
	}
	a, err := AnalyzeKnowledge(runner, n, n, cells)
	if err != nil {
		t.Fatal(err)
	}
	// After the funnel the cell knows everything.
	last := a.Phases - 1
	if a.MaxKnow[last] != n {
		t.Errorf("funnel cell knows %d, want %d", a.MaxKnow[last], n)
	}
	if v := CheckTGood(a, 1, 1); len(v) != 0 {
		t.Errorf("t-goodness violations: %+v", v)
	}
}

func TestAnalyzeKnowledgeValidation(t *testing.T) {
	runner, procs, cells := treeORRunner(4)
	if _, err := AnalyzeKnowledge(runner, 0, procs, cells); err == nil {
		t.Error("want n range error")
	}
	if _, err := AnalyzeKnowledge(runner, 20, procs, cells); err == nil {
		t.Error("want n range error")
	}
	noTrace := func(bits []int64) (TraceSource, error) {
		m, err := gsm.New(gsm.Config{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: len(bits), Cells: len(bits)})
		if err != nil {
			return nil, err
		}
		if tr := m.TraceLog(); tr != nil {
			return tr, nil
		}
		return nil, nil // tracing never enabled
	}
	if _, err := AnalyzeKnowledge(noTrace, 2, 1, 2); err == nil {
		t.Error("want missing-trace error")
	}
}

func TestThresholdFunctions(t *testing.T) {
	// d_t = ν(μ+1)^{2t}.
	if got := DT(0, 2, 1); got != 2 {
		t.Errorf("DT(0) = %v, want 2", got)
	}
	if got := DT(2, 2, 1); got != 2*16 {
		t.Errorf("DT(2) = %v, want 32", got)
	}
	// k_t saturates but must be ≥ any measured quantity.
	if KT(1, 1, 1) < 256 {
		t.Errorf("KT(1) = %v implausibly small", KT(1, 1, 1))
	}
	if KT(10, 4, 4) < KT(1, 1, 1) {
		t.Error("KT must be monotone in its arguments")
	}
}
