// Package adversary implements, as executable machinery, the Random
// Adversary technique of MacKenzie & Ramachandran (SPAA 1998), Sections 4,
// 5 and 7 — the engine behind the paper's randomized lower bounds for Load
// Balancing, LAC and OR.
//
// Three layers:
//
//   - The generic framework of Section 4: partial input maps, the
//     RANDOMSET procedure (Fact 4.1: inputs fixed one at a time by
//     conditional draws reproduce the target distribution), and the
//     GENERATE driver that interleaves an algorithm-specific REFINE with
//     RANDOMSET until the time bound is reached.
//   - The knowledge machinery of Section 5: Know(v,t), AffProc(i,t),
//     AffCell(i,t), |States(v,t)| and deg(States(v,t)) computed *exactly*
//     (by exhaustive input enumeration) over traced GSM runs of real
//     algorithms — so the t-goodness invariants the proofs maintain can be
//     checked on real executions.
//   - The modified adversary of Section 7 for the OR bound: the layered
//     input distributions H_i with geometrically exploding densities d_i,
//     the mixture distribution D, and RANDOMRESTRICT / RANDOMFIX.
package adversary

import (
	"fmt"
	"math"
	"math/rand"
)

// Unset is the '*' value of a partial input map.
const Unset int8 = -1

// PartialInput is a partial input map f: I → {*} ∪ {0,1}. The zero-filled
// constructor NewPartialInput yields f_* (everything unset).
type PartialInput []int8

// NewPartialInput returns f_*, the all-unset map on n inputs.
func NewPartialInput(n int) PartialInput {
	f := make(PartialInput, n)
	for i := range f {
		f[i] = Unset
	}
	return f
}

// IsSet reports whether input i is fixed.
func (f PartialInput) IsSet(i int) bool { return f[i] != Unset }

// SetCount returns the number of fixed inputs.
func (f PartialInput) SetCount() int {
	c := 0
	for _, v := range f {
		if v != Unset {
			c++
		}
	}
	return c
}

// Refines reports whether f refines e (agrees with every fixed value of e).
func (f PartialInput) Refines(e PartialInput) bool {
	if len(f) != len(e) {
		return false
	}
	for i, v := range e {
		if v != Unset && f[i] != v {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (f PartialInput) Clone() PartialInput {
	return append(PartialInput(nil), f...)
}

// Complete reports whether no input is unset.
func (f PartialInput) Complete() bool {
	for _, v := range f {
		if v == Unset {
			return false
		}
	}
	return true
}

// Distribution is an input distribution over {0,1}^n supporting the
// conditional single-input draws RANDOMSET needs. Implementations must
// satisfy: sampling inputs one at a time via Conditional, in any order,
// reproduces the joint distribution (automatic for product distributions;
// mixtures implement the chain rule explicitly).
type Distribution interface {
	// N returns the number of inputs.
	N() int
	// Conditional returns P(input i = 1 | the fixed values of f), for an
	// unset input i.
	Conditional(f PartialInput, i int) float64
}

// RandomSet is the paper's RANDOMSET procedure: it fixes the inputs of S
// (in order) by conditional draws from dist given f, mutating and
// returning f. Already-set members of S are an error (the adversary never
// re-fixes an input).
func RandomSet(rng *rand.Rand, dist Distribution, f PartialInput, S []int) (PartialInput, error) {
	for _, i := range S {
		if i < 0 || i >= len(f) {
			return f, fmt.Errorf("adversary: input %d out of range", i)
		}
		if f.IsSet(i) {
			return f, fmt.Errorf("adversary: input %d already set", i)
		}
		p := dist.Conditional(f, i)
		if p < 0 || p > 1 || math.IsNaN(p) {
			return f, fmt.Errorf("adversary: conditional %v for input %d", p, i)
		}
		if rng.Float64() < p {
			f[i] = 1
		} else {
			f[i] = 0
		}
	}
	return f, nil
}

// RefineFunc is the algorithm-specific REFINE(t, f) of Section 4: it fixes
// some inputs (via RandomSet against its distribution) and returns the
// refined map together with a lower bound x ≥ 0 on the duration of the
// next step. GENERATE stops when the accumulated time reaches T.
type RefineFunc func(t int, f PartialInput) (PartialInput, int, error)

// GenerateResult reports a GENERATE run.
type GenerateResult struct {
	// Input is the fully fixed input map, distributed per the adversary's
	// distribution (Lemma 4.1).
	Input PartialInput
	// Steps is the number of REFINE calls made.
	Steps int
	// Time is the accumulated lower bound Σx at exit.
	Time int
}

// Generate is the paper's GENERATE: starting from f_*, it calls refine
// until the accumulated time reaches T, then fixes all remaining inputs
// with RandomSet. Refine steps returning x = 0 are counted but a run is
// aborted after maxSteps such calls to guarantee termination.
func Generate(rng *rand.Rand, dist Distribution, refine RefineFunc, T, maxSteps int) (*GenerateResult, error) {
	f := NewPartialInput(dist.N())
	res := &GenerateResult{}
	for res.Time < T {
		if res.Steps >= maxSteps {
			return nil, fmt.Errorf("adversary: GENERATE exceeded %d refine steps", maxSteps)
		}
		var x int
		var err error
		f, x, err = refine(res.Steps, f)
		if err != nil {
			return nil, err
		}
		if x < 0 {
			return nil, fmt.Errorf("adversary: refine returned negative time %d", x)
		}
		res.Steps++
		res.Time += x
	}
	var rest []int
	for i := range f {
		if !f.IsSet(i) {
			rest = append(rest, i)
		}
	}
	var err error
	f, err = RandomSet(rng, dist, f, rest)
	if err != nil {
		return nil, err
	}
	res.Input = f
	return res, nil
}

// --- concrete distributions ---------------------------------------------------

// Bernoulli is the product distribution with P(x_i = 1) = P for all i.
type Bernoulli struct {
	Size int
	P    float64
}

// N implements Distribution.
func (b Bernoulli) N() int { return b.Size }

// Conditional implements Distribution; independence makes it the marginal.
func (b Bernoulli) Conditional(PartialInput, int) float64 { return b.P }

// Uniform returns the uniform distribution on {0,1}^n (the hard Parity
// distribution of Theorem 3.2).
func Uniform(n int) Distribution { return Bernoulli{Size: n, P: 0.5} }
