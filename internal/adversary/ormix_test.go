package adversary

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogStarBase(t *testing.T) {
	if got := LogStarBase(2, 65536); got != 4 {
		t.Errorf("log*₂(65536) = %d, want 4", got)
	}
	if got := LogStarBase(2, 1); got != 0 {
		t.Errorf("log*₂(1) = %d, want 0", got)
	}
	if got := LogStarBase(1, 16); got != LogStarBase(2, 16) {
		t.Error("base ≤ 1 must fall back to 2")
	}
	// Larger base means no larger log*.
	if LogStarBase(4, 1<<20) > LogStarBase(2, 1<<20) {
		t.Error("log* must shrink with the base")
	}
}

func TestIterLogBase(t *testing.T) {
	if got := IterLogBase(2, 256, 1); got != 8 {
		t.Errorf("log₂ 256 = %v, want 8", got)
	}
	if got := IterLogBase(2, 256, 2); got != 3 {
		t.Errorf("log₂ log₂ 256 = %v, want 3", got)
	}
	if got := IterLogBase(2, 1, 5); got != 1 {
		t.Errorf("iterated log floored at 1, got %v", got)
	}
}

func TestNewORMixture(t *testing.T) {
	if _, err := NewORMixture(0, 1); err == nil {
		t.Error("want groups error")
	}
	if _, err := NewORMixture(8, 0.5); err == nil {
		t.Error("want μ error")
	}
	mix, err := NewORMixture(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Layers() < 2 {
		t.Fatalf("layers = %d, want ≥ 2", mix.Layers())
	}
	// Densities strictly explode.
	for i := 1; i < mix.Layers(); i++ {
		if mix.D[i] <= mix.D[i-1] {
			t.Errorf("d_%d = %v not above d_%d = %v", i, mix.D[i], i-1, mix.D[i-1])
		}
	}
	if mix.D[0] < 2 {
		t.Errorf("d_0 = %v below clamp", mix.D[0])
	}
	// Mixture weights: zeros ½, layers share the rest.
	var w float64
	w += mix.LayerWeight(LayerZeros)
	for i := 0; i < mix.Layers(); i++ {
		w += mix.LayerWeight(i)
	}
	if math.Abs(w-1) > 1e-12 {
		t.Errorf("weights sum to %v", w)
	}
	if mix.LayerWeight(99) != 0 {
		t.Error("out-of-range layer weight must be 0")
	}
}

// Fact 7.1 flavour: for T ≤ ¼·log* r the density d_T stays ≤ log log r —
// checked on the concrete constructed densities.
func TestFact71DensityBound(t *testing.T) {
	mix, err := NewORMixture(1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(1 << 20)
	bound := math.Log2(math.Log2(r)) * 4 // constant slack over the paper's clean form
	if mix.D[0] > bound {
		t.Errorf("d_0 = %v exceeds O(log log r) = %v", mix.D[0], bound)
	}
}

func TestSampleLayerFrequencies(t *testing.T) {
	mix, err := NewORMixture(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const trials = 40000
	zeros := 0
	for k := 0; k < trials; k++ {
		if mix.SampleLayer(rng) == LayerZeros {
			zeros++
		}
	}
	f := float64(zeros) / trials
	if math.Abs(f-0.5) > 0.02 {
		t.Errorf("all-zeros frequency %.3f, want 0.50±0.02", f)
	}
}

func TestSampleGroupsDensity(t *testing.T) {
	mix, err := NewORMixture(4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	// Layer 0 has density 1/d_0: empirical ones-rate must match.
	var ones, total int
	for k := 0; k < 50; k++ {
		g := mix.SampleGroupsFromLayer(rng, 0)
		for _, v := range g {
			if v == 1 {
				ones++
			}
			total++
		}
	}
	want := 1 / mix.D[0]
	got := float64(ones) / float64(total)
	if math.Abs(got-want) > 0.05 {
		t.Errorf("layer-0 density %.3f, want %.3f", got, want)
	}
	// All-zeros layer really is all zeros.
	z := mix.SampleGroupsFromLayer(rng, LayerZeros)
	for _, v := range z {
		if v != 0 {
			t.Fatal("zeros layer produced a one")
		}
	}
}

func TestLayerSetRestrict(t *testing.T) {
	mix, err := NewORMixture(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	ls := mix.FullSet()
	full := ls.Size()
	if !ls.Active(LayerZeros) || !ls.Active(0) {
		t.Fatal("full set must contain zeros and layer 0")
	}
	took, err := ls.RandomRestrict(rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if took {
		if ls.Size() != 1 || !ls.Active(0) {
			t.Fatal("taking H_0 must collapse the set")
		}
	} else {
		if ls.Size() != full-1 || ls.Active(0) {
			t.Fatal("rejecting H_0 must remove exactly it")
		}
	}
	// Restricting an explicitly inactive layer errors.
	dead := &LayerSet{mix: mix, active: map[int]bool{LayerZeros: true}}
	if _, err := dead.RandomRestrict(rng, 0); err == nil {
		t.Error("restricting an inactive layer must error")
	}
}

// Lemma 7.4: across t' RANDOMRESTRICT calls the probability that line (17)
// fires is at most 2t'/log* r — Monte Carlo estimate against the bound.
func TestLemma74Line17Probability(t *testing.T) {
	mix, err := NewORMixture(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	const trials = 30000
	tPrime := mix.Layers() // restrict at every layer once
	fired := 0
	for k := 0; k < trials; k++ {
		ls := mix.FullSet()
		for layer := 0; layer < tPrime; layer++ {
			if !ls.Active(layer) {
				continue
			}
			took, err := ls.RandomRestrict(rng, layer)
			if err != nil {
				t.Fatal(err)
			}
			if took {
				fired++
				break
			}
		}
	}
	got := float64(fired) / trials
	lsr := float64(LogStarBase(2, float64(mix.Groups)))
	bound := 2 * float64(tPrime) / lsr
	if got > bound+0.02 {
		t.Errorf("line-17 probability %.3f exceeds Lemma 7.4 bound %.3f", got, bound)
	}
}

func TestRandomFixFromRestrictedSet(t *testing.T) {
	mix, err := NewORMixture(512, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(19))
	ls := mix.FullSet()
	// Collapse to the zeros layer by removing every H_i.
	for i := 0; i < mix.Layers(); i++ {
		took, err := ls.RandomRestrict(rng, i)
		if err != nil {
			t.Fatal(err)
		}
		if took {
			// Rare path: start over with a fresh set for determinism of
			// the remaining assertions.
			ls = mix.FullSet()
			i = -1
		}
	}
	in, layer, err := ls.RandomFix(rng)
	if err != nil {
		t.Fatal(err)
	}
	if layer != LayerZeros {
		t.Fatalf("layer = %d, want zeros", layer)
	}
	for _, v := range in {
		if v != 0 {
			t.Fatal("zeros layer must give the all-zero input")
		}
	}
	empty := &LayerSet{mix: mix, active: map[int]bool{}}
	if _, _, err := empty.RandomFix(rng); err == nil {
		t.Error("empty layer set must error")
	}
}

// ORRefine against an oblivious low-traffic profile: the adversary never
// fires the early-fix lines; the expected number of steps to resolution is
// Ω(layers) — the log* mechanism.
type quietProfile struct{}

func (quietProfile) MaxRWP(int, *LayerSet) float64    { return 1 }
func (quietProfile) MaxAccess(int, *LayerSet) float64 { return 2 }

type greedyProfile struct{}

func (greedyProfile) MaxRWP(int, *LayerSet) float64    { return 1e301 }
func (greedyProfile) MaxAccess(int, *LayerSet) float64 { return 1e301 }

func TestORRefineQuiet(t *testing.T) {
	mix, err := NewORMixture(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	var stepsSum, early int
	const trials = 300
	for k := 0; k < trials; k++ {
		res, err := ORRefine(rng, mix, quietProfile{}, 1, 1, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.FixedEarly {
			early++
		}
		stepsSum += res.Steps
		if res.Input == nil {
			t.Fatal("quiet profile must always resolve")
		}
	}
	if early != 0 {
		t.Errorf("quiet profile fired early-fix %d times", early)
	}
	// The adversary must walk through the layers: with the 2-layer mixture
	// for r = 2^16 the expected step count is 0.25·1 + 0.75·2 = 1.75.
	if avg := float64(stepsSum) / trials; avg < 1.5 {
		t.Errorf("average steps %.2f, want ≥ 1.5 (log* mechanism)", avg)
	}
}

func TestORRefineGreedy(t *testing.T) {
	mix, err := NewORMixture(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	res, err := ORRefine(rng, mix, greedyProfile{}, 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FixedEarly || res.Steps != 1 {
		t.Errorf("greedy profile must fix immediately: %+v", res)
	}
	if res.Input == nil {
		t.Error("early fix must return an input")
	}
}

// An adaptive profile that escalates its traffic as layers get ruled out —
// the "gradually increase read sizes" behaviour Section 7 describes. The
// adversary must eventually cash it in via the early-fix lines.
type escalatingProfile struct{}

func (escalatingProfile) MaxRWP(t int, ls *LayerSet) float64 {
	// Once only dense layers remain, the algorithm reads aggressively.
	if ls.Size() <= 2 {
		return 1e301
	}
	return 1
}
func (escalatingProfile) MaxAccess(int, *LayerSet) float64 { return 2 }

func TestORRefineEscalating(t *testing.T) {
	mix, err := NewORMixture(1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	sawEarly := false
	for k := 0; k < 200; k++ {
		res, err := ORRefine(rng, mix, escalatingProfile{}, 1, 1, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Input == nil {
			t.Fatal("escalating profile must always resolve")
		}
		if res.FixedEarly {
			sawEarly = true
			// The early fix happens only after at least one restriction
			// shrank the set (the profile is quiet at full size 3).
			if res.Steps < 2 {
				t.Errorf("early fix at step %d, want ≥ 2", res.Steps)
			}
		}
	}
	if !sawEarly {
		t.Error("escalation never triggered the early-fix lines")
	}
}
