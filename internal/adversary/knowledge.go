package adversary

import (
	"fmt"

	"repro/internal/boolfn"
)

// TraceSource is the recorded trace of one deterministic run: canonical
// keys for Trace(p, t, f) and Trace(c, t, f). Both the GSM and the QSM
// simulators' trace logs implement it.
type TraceSource interface {
	NumPhases() int
	ProcKey(p, t int) string
	CellKey(c, t int) string
}

// Runner executes the algorithm under analysis on the given bit vector
// with tracing enabled and returns the trace. It must be deterministic:
// the trace may depend only on the input bits.
type Runner func(bits []int64) (TraceSource, error)

// Analysis holds the exact Section 5 knowledge quantities of an algorithm,
// computed by running it on all 2^n inputs.
type Analysis struct {
	// N is the number of inputs, Procs/Cells the machine dimensions,
	// Phases the number of phases of the longest run.
	N, Procs, Cells, Phases int

	// MaxStates[t] = max over entities v of |States(v, t, f_*)|.
	MaxStates []int
	// MaxKnow[t] = max over entities v of |Know(v, t, f_*)|.
	MaxKnow []int
	// MaxAffProc[t] = max over inputs i of |AffProc(i, t, f_*)|; similarly
	// MaxAffCell.
	MaxAffProc []int
	MaxAffCell []int
	// MaxDegree[t] = max over entities v and traces x of
	// deg(χ_{S(v,t,f_*,x)}) — the quantity the degree bounds of Lemma 5.1
	// control.
	MaxDegree []int

	// KnowProc[t][p] is |Know(p, t, f_*)| per processor; KnowCell likewise.
	KnowProc [][]int
	KnowCell [][]int
}

// AnalyzeKnowledge runs the algorithm on every input of length n (n ≤ 16)
// and computes the exact trace-equivalence quantities of Section 5 for the
// empty partial input map f_*. procs and cells bound the machine
// dimensions (every run must use the same machine shape).
func AnalyzeKnowledge(runner Runner, n, procs, cells int) (*Analysis, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("adversary: exhaustive analysis needs 1 ≤ n ≤ 16, got %d", n)
	}
	total := 1 << uint(n)

	// traces[mask] = the trace log of the run on that input.
	traces := make([]TraceSource, total)
	phases := 0
	for mask := 0; mask < total; mask++ {
		bits := make([]int64, n)
		for i := 0; i < n; i++ {
			bits[i] = int64(mask >> uint(i) & 1)
		}
		tr, err := runner(bits)
		if err != nil {
			return nil, fmt.Errorf("adversary: run on input %b: %w", mask, err)
		}
		if tr == nil {
			return nil, fmt.Errorf("adversary: runner must enable tracing")
		}
		if tr.NumPhases() > phases {
			phases = tr.NumPhases()
		}
		traces[mask] = tr
	}

	a := &Analysis{
		N: n, Procs: procs, Cells: cells, Phases: phases,
		MaxStates:  make([]int, phases),
		MaxKnow:    make([]int, phases),
		MaxAffProc: make([]int, phases),
		MaxAffCell: make([]int, phases),
		MaxDegree:  make([]int, phases),
		KnowProc:   make([][]int, phases),
		KnowCell:   make([][]int, phases),
	}

	// key(v-kind, v, t, mask) enumerations.
	for t := 0; t < phases; t++ {
		a.KnowProc[t] = make([]int, procs)
		a.KnowCell[t] = make([]int, cells)
		affProc := make([]int, n)
		affCell := make([]int, n)

		analyzeEntity := func(keyFor func(mask int) string, isProc bool, v int) {
			keys := make([]string, total)
			distinct := map[string][]uint32{}
			for mask := 0; mask < total; mask++ {
				k := keyFor(mask)
				keys[mask] = k
				distinct[k] = append(distinct[k], uint32(mask))
			}
			if len(distinct) > a.MaxStates[t] {
				a.MaxStates[t] = len(distinct)
			}
			// Know(v, t, f_*) = inputs whose flip can change the trace.
			know := 0
			for i := 0; i < n; i++ {
				affects := false
				for mask := 0; mask < total && !affects; mask++ {
					if keys[mask] != keys[mask^(1<<uint(i))] {
						affects = true
					}
				}
				if affects {
					know++
					if isProc {
						affProc[i]++
					} else {
						affCell[i]++
					}
				}
			}
			if know > a.MaxKnow[t] {
				a.MaxKnow[t] = know
			}
			if isProc {
				a.KnowProc[t][v] = know
			} else {
				a.KnowCell[t][v] = know
			}
			// Degrees of the state indicator functions.
			//lint:maporder-ok max over the indicator degrees is order-independent
			for _, members := range distinct {
				chi := boolfn.Indicator(n, members)
				if d := chi.Degree(); d > a.MaxDegree[t] {
					a.MaxDegree[t] = d
				}
			}
		}

		for p := 0; p < procs; p++ {
			p := p
			analyzeEntity(func(mask int) string {
				return traces[mask].ProcKey(p, t)
			}, true, p)
		}
		for c := 0; c < cells; c++ {
			c := c
			analyzeEntity(func(mask int) string {
				return traces[mask].CellKey(c, t)
			}, false, c)
		}

		for i := 0; i < n; i++ {
			if affProc[i] > a.MaxAffProc[t] {
				a.MaxAffProc[t] = affProc[i]
			}
			if affCell[i] > a.MaxAffCell[t] {
				a.MaxAffCell[t] = affCell[i]
			}
		}
	}
	return a, nil
}

// DT returns the Section 5 degree threshold d_t = ν(μ+1)^{2t}.
func DT(t int, nu, mu float64) float64 {
	return nu * pow(mu+1, 2*t)
}

// KT returns the Section 5 cardinality threshold k_t = 2^{ν(μ+1)^{4(t+1)}}.
// It is astronomically large even for tiny parameters; CheckTGood therefore
// caps it at 2^62 when comparing against measured (finite) quantities.
func KT(t int, nu, mu float64) float64 {
	e := nu * pow(mu+1, 4*(t+1))
	if e > 62 {
		return float64(uint64(1) << 62)
	}
	return pow(2, int(e))
}

// TGoodViolation describes a failed t-goodness condition.
type TGoodViolation struct {
	Phase    int
	Quantity string
	Measured float64
	Bound    float64
}

// CheckTGood verifies the five t-goodness conditions of Section 5 against
// the measured quantities of an analysis, for the GSM parameters (ν = γρ,
// μ). It returns every violation (none for algorithms within the paper's
// regime).
func CheckTGood(a *Analysis, nu, mu float64) []TGoodViolation {
	var out []TGoodViolation
	for t := 0; t < a.Phases; t++ {
		// The proofs index goodness by elapsed big-steps; phases are a
		// conservative stand-in (each phase is ≥ 1 big-step).
		checks := []struct {
			name     string
			measured float64
			bound    float64
		}{
			{"deg(States)", float64(a.MaxDegree[t]), DT(t+1, nu, mu)},
			{"|States|", float64(a.MaxStates[t]), KT(t+1, nu, mu)},
			{"|Know|", float64(a.MaxKnow[t]), KT(t+1, nu, mu)},
			{"|AffProc|", float64(a.MaxAffProc[t]), KT(t+1, nu, mu)},
			{"|AffCell|", float64(a.MaxAffCell[t]), KT(t+1, nu, mu)},
		}
		for _, c := range checks {
			if c.measured > c.bound {
				out = append(out, TGoodViolation{
					Phase: t, Quantity: c.name, Measured: c.measured, Bound: c.bound,
				})
			}
		}
	}
	return out
}

func pow(b float64, e int) float64 {
	r := 1.0
	for i := 0; i < e; i++ {
		r *= b
		if r > 1e300 {
			return 1e300
		}
	}
	return r
}
