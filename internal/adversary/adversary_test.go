package adversary

import (
	"math"
	"math/rand"
	"testing"
)

func TestPartialInputBasics(t *testing.T) {
	f := NewPartialInput(4)
	if f.SetCount() != 0 || f.Complete() {
		t.Fatal("fresh map must be all-unset")
	}
	f[1] = 1
	f[3] = 0
	if f.SetCount() != 2 {
		t.Errorf("SetCount = %d, want 2", f.SetCount())
	}
	if !f.IsSet(1) || f.IsSet(0) {
		t.Error("IsSet wrong")
	}
	g := f.Clone()
	g[0] = 0
	if f.IsSet(0) {
		t.Error("Clone aliases")
	}
	if !g.Refines(f) {
		t.Error("g must refine f")
	}
	if f.Refines(g) {
		t.Error("f must not refine g (g is stricter)")
	}
	h := NewPartialInput(4)
	h[1] = 0
	if h.Refines(f) || f.Refines(h) {
		t.Error("conflicting maps must not refine each other")
	}
	if f.Refines(NewPartialInput(5)) {
		t.Error("length mismatch must not refine")
	}
	g[2] = 1
	if !g.Complete() {
		t.Error("fully set map must be Complete")
	}
}

func TestRandomSetErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := NewPartialInput(3)
	if _, err := RandomSet(rng, Uniform(3), f, []int{5}); err == nil {
		t.Error("want range error")
	}
	f[0] = 1
	if _, err := RandomSet(rng, Uniform(3), f, []int{0}); err == nil {
		t.Error("want already-set error")
	}
}

// Fact 4.1: inputs fixed one at a time by RANDOMSET are distributed
// according to D, regardless of the order of fixing. Frequency test over a
// biased product distribution with two different orders.
func TestFact41RandomSetDistribution(t *testing.T) {
	const trials = 20000
	dist := Bernoulli{Size: 3, P: 0.3}
	orders := [][]int{{0, 1, 2}, {2, 0, 1}}
	for _, order := range orders {
		rng := rand.New(rand.NewSource(42))
		counts := [3]int{}
		for k := 0; k < trials; k++ {
			f, err := RandomSet(rng, dist, NewPartialInput(3), order)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range f {
				if v == 1 {
					counts[i]++
				}
			}
		}
		for i, c := range counts {
			freq := float64(c) / trials
			if math.Abs(freq-0.3) > 0.02 {
				t.Errorf("order %v input %d: frequency %.3f, want 0.30±0.02", order, i, freq)
			}
		}
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dist := Uniform(8)
	fixedPerStep := 2
	refine := func(step int, f PartialInput) (PartialInput, int, error) {
		var S []int
		for i := range f {
			if !f.IsSet(i) && len(S) < fixedPerStep {
				S = append(S, i)
			}
		}
		f, err := RandomSet(rng, dist, f, S)
		return f, 1, err
	}
	res, err := Generate(rng, dist, refine, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 || res.Time != 3 {
		t.Errorf("steps/time = %d/%d, want 3/3", res.Steps, res.Time)
	}
	if !res.Input.Complete() {
		t.Error("GENERATE must return a complete input map")
	}
}

func TestGenerateGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	stall := func(int, PartialInput) (PartialInput, int, error) {
		return NewPartialInput(4), 0, nil
	}
	if _, err := Generate(rng, Uniform(4), stall, 5, 10); err == nil {
		t.Error("want max-steps error for stalling refine")
	}
	negative := func(_ int, f PartialInput) (PartialInput, int, error) {
		return f, -1, nil
	}
	if _, err := Generate(rng, Uniform(4), negative, 5, 10); err == nil {
		t.Error("want negative-time error")
	}
}

// Lemma 4.1 flavour: GENERATE's final input map is distributed per D even
// though REFINE fixed some inputs early.
func TestGenerateDistribution(t *testing.T) {
	const trials = 20000
	dist := Bernoulli{Size: 4, P: 0.5}
	rng := rand.New(rand.NewSource(3))
	ones := 0
	for k := 0; k < trials; k++ {
		refine := func(step int, f PartialInput) (PartialInput, int, error) {
			if !f.IsSet(step) {
				var err error
				f, err = RandomSet(rng, dist, f, []int{step})
				if err != nil {
					return f, 0, err
				}
			}
			return f, 1, nil
		}
		res, err := Generate(rng, dist, refine, 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Input {
			if v == 1 {
				ones++
			}
		}
	}
	freq := float64(ones) / float64(trials*4)
	if math.Abs(freq-0.5) > 0.02 {
		t.Errorf("overall one-frequency %.3f, want 0.50±0.02", freq)
	}
}

// Yao's Theorem (Theorem 2.1) on a toy problem: computing OR of 2 uniform
// bits while reading only one bit. Every deterministic single-read
// algorithm succeeds on at most 3 of the 4 inputs (probability 3/4), so by
// the theorem no randomized single-read algorithm can beat 3/4 — verified
// by exhausting all deterministic strategies and all mixtures over them on
// the worst case.
func TestYaoToyExperiment(t *testing.T) {
	type strategy struct {
		readBit int
		out     [2]int64 // answer as a function of the read bit
	}
	var strategies []strategy
	for rb := 0; rb < 2; rb++ {
		for o0 := int64(0); o0 < 2; o0++ {
			for o1 := int64(0); o1 < 2; o1++ {
				strategies = append(strategies, strategy{rb, [2]int64{o0, o1}})
			}
		}
	}
	or := func(x, y int64) int64 {
		if x != 0 || y != 0 {
			return 1
		}
		return 0
	}
	// Distributional bound: max over strategies of success under uniform D.
	bestDistributional := 0.0
	for _, s := range strategies {
		wins := 0
		for m := 0; m < 4; m++ {
			x, y := int64(m&1), int64(m>>1)
			read := x
			if s.readBit == 1 {
				read = y
			}
			if s.out[read] == or(x, y) {
				wins++
			}
		}
		if p := float64(wins) / 4; p > bestDistributional {
			bestDistributional = p
		}
	}
	if bestDistributional != 0.75 {
		t.Fatalf("best distributional success = %v, want 0.75", bestDistributional)
	}
	// Randomized bound: for any mixture q over strategies, the worst-case
	// input keeps success ≤ 3/4. Checking the extreme points suffices for
	// the inequality direction of Theorem 2.1; sample mixtures too.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		q := make([]float64, len(strategies))
		var sum float64
		for i := range q {
			q[i] = rng.Float64()
			sum += q[i]
		}
		worst := 1.0
		for m := 0; m < 4; m++ {
			x, y := int64(m&1), int64(m>>1)
			var succ float64
			for i, s := range strategies {
				read := x
				if s.readBit == 1 {
					read = y
				}
				if s.out[read] == or(x, y) {
					succ += q[i] / sum
				}
			}
			if succ < worst {
				worst = succ
			}
		}
		if worst > 0.75+1e-9 {
			t.Fatalf("randomized strategy beats Yao bound: %v", worst)
		}
	}
}
