package sched

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d, want 3", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1 (GOMAXPROCS)", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestNumBlocks(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{4, 100, 4},
		{4, 3, 3},
		{4, 0, 0},
		{4, -1, 0},
		{0, 10, 1},
		{1, 10, 1},
	}
	for _, c := range cases {
		if got := NumBlocks(c.workers, c.n); got != c.want {
			t.Errorf("NumBlocks(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// Blocks must cover [0, n) exactly once with ascending, contiguous chunks
// whose indexes match the w argument.
func TestBlocksCoverage(t *testing.T) {
	f := func(workers uint8, n uint16) bool {
		w, nn := int(workers%16)+1, int(n%2048)
		var mu sync.Mutex
		type chunk struct{ w, lo, hi int }
		var chunks []chunk
		Blocks(w, nn, func(w, lo, hi int) {
			mu.Lock()
			chunks = append(chunks, chunk{w, lo, hi})
			mu.Unlock()
		})
		if nn == 0 {
			return len(chunks) == 0
		}
		if len(chunks) != NumBlocks(w, nn) {
			return false
		}
		seen := make([]bool, nn)
		for _, c := range chunks {
			if c.lo >= c.hi || c.lo != c.w*chunkSize(w, nn) {
				return false
			}
			for i := c.lo; i < c.hi; i++ {
				if i < 0 || i >= nn || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlocksSingleChunkRunsInline(t *testing.T) {
	calls := 0
	Blocks(1, 57, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 57 {
			t.Errorf("single chunk = (%d, %d, %d), want (0, 0, 57)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
}

// Every address in [0, size) must land in exactly the shard whose Range
// covers it, and shard count must respect maxShards.
func TestShardingProperties(t *testing.T) {
	f := func(size uint16, maxShards uint8) bool {
		sz, ms := int(size%4096)+1, int(maxShards%32)
		s := NewSharding(sz, ms)
		if ms > 1 && s.N > ms {
			return false
		}
		if s.N < 1 {
			return false
		}
		for a := 0; a < sz; a++ {
			i := s.Shard(int32(a))
			if i < 0 || i >= s.N {
				return false
			}
			lo, hi := s.Range(i, sz)
			if a < lo || a >= hi {
				return false
			}
		}
		// Ranges tile [0, sz) without gaps or overlap.
		next := 0
		for i := 0; i < s.N; i++ {
			lo, hi := s.Range(i, sz)
			if lo != next || hi < lo {
				return false
			}
			next = hi
		}
		return next == sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShardingDegenerate(t *testing.T) {
	for _, s := range []Sharding{NewSharding(0, 8), NewSharding(100, 1), NewSharding(-5, 0)} {
		if s.N != 1 {
			t.Errorf("degenerate sharding N = %d, want 1", s.N)
		}
		if got := s.Shard(12345); got != 0 {
			t.Errorf("degenerate Shard = %d, want 0", got)
		}
		lo, hi := s.Range(0, 100)
		if lo != 0 || hi != 100 {
			t.Errorf("degenerate Range = [%d, %d), want [0, 100)", lo, hi)
		}
	}
}
