// Package sched provides the shared worker-pool machinery of the QSM, BSP
// and GSM simulators: chunked dispatch of per-processor work and the
// address-range sharding used by the parallel phase-commit pipeline.
//
// All three simulators follow the same execution shape. A phase (or BSP
// superstep) runs processor programs concurrently over contiguous chunks of
// the processor range; the per-processor request buffers are then merged at
// the barrier by a second parallel pass over contiguous shards of the
// address space. Both passes dispatch through Blocks, so the chunk layout —
// and with it the deterministic merge order — is identical everywhere.
package sched

import (
	"runtime"
	"sync"
)

// Workers normalises a configured worker count: values < 1 mean GOMAXPROCS.
func Workers(configured int) int {
	if configured < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}

// chunkSize returns the per-chunk width Blocks uses: ⌈n/min(workers, n)⌉.
func chunkSize(workers, n int) int {
	nb := min(max(workers, 1), n)
	return (n + nb - 1) / nb
}

// NumBlocks returns the exact number of non-empty contiguous chunks that
// Blocks splits [0, n) into for the given worker count. This can be less
// than min(workers, n): with workers=13, n=105 the chunk width rounds up
// to 9 and only ⌈105/9⌉ = 12 chunks are dispatched.
func NumBlocks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	c := chunkSize(workers, n)
	return (n + c - 1) / c
}

// Blocks partitions [0, n) into NumBlocks(workers, n) contiguous chunks and
// invokes fn(w, lo, hi) once per chunk, concurrently. Chunk w covers
// processors [w·⌈n/W⌉, min((w+1)·⌈n/W⌉, n)), so chunk indexes ascend with
// the processor range — callers rely on that for deterministic merges.
// Blocks returns after every chunk has completed. With a single chunk fn
// runs inline on the calling goroutine (no spawn), which keeps small-p
// simulations (the proof-machinery enumerations) allocation-free here.
func Blocks(workers, n int, fn func(w, lo, hi int)) {
	nb := NumBlocks(workers, n)
	if nb == 0 {
		return
	}
	if nb == 1 {
		fn(0, 0, n)
		return
	}
	chunk := chunkSize(workers, n)
	var wg sync.WaitGroup
	for w := 0; w*chunk < n; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(w, lo, hi int) { //lint:hotpathalloc-ok the fan-out primitive itself: one goroutine per block, bounded by Workers
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Sharding describes a partition of an address space [0, size) into
// contiguous power-of-two-sized shards, used to route memory requests to
// independent merge workers at the phase barrier.
type Sharding struct {
	// Shift is the right-shift mapping an address to its shard index.
	Shift uint
	// N is the number of shards: ((size-1) >> Shift) + 1.
	N int
}

// NewSharding partitions [0, size) into at most maxShards contiguous
// shards. With size ≤ 0 or maxShards ≤ 1 the whole space is one shard.
// Addresses are int32, so shift 32 maps everything to shard 0 without
// overflowing Range arithmetic.
func NewSharding(size, maxShards int) Sharding {
	if size <= 0 || maxShards <= 1 {
		return Sharding{Shift: 32, N: 1}
	}
	// Smallest power-of-two shard width w with size/w ≤ maxShards.
	var shift uint
	for (size-1)>>shift >= maxShards {
		shift++
	}
	return Sharding{Shift: shift, N: ((size - 1) >> shift) + 1}
}

// Shard returns the shard index of an address.
func (s Sharding) Shard(addr int32) int { return int(uint32(addr) >> s.Shift) }

// Range returns the half-open address range [lo, hi) covered by shard i,
// clipped to the given address-space size.
func (s Sharding) Range(i, size int) (lo, hi int) {
	lo = i << s.Shift
	hi = min((i+1)<<s.Shift, size)
	return lo, hi
}
