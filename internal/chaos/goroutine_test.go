package chaos

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestProcBackendGoroutineHygiene pins the coordinator's goroutine
// lifecycle: after a chaos run over the proc backend — crash faults
// included, so the respawn and kill paths all fire — Close must tear
// down every acceptLoop, readLoop and reaper goroutine. NumGoroutine
// must return to its pre-run baseline within a bounded wait; on timeout
// the full stack dump names the leaker. The static goleak analyzer
// proves each spawned goroutine has an exit path; this is the runtime
// check that those paths are actually taken.
func TestProcBackendGoroutineHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	specs, err := fault.ParseSpecs("crash@1:p0,mem~0.1")
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	sc := Scenario{
		Model: "qsm", Alg: "parity", N: 32, Seed: 3,
		Specs: specs, Degraded: true,
		Backend: "proc", ProcWorkers: 2,
	}
	o := Run(nil, sc, 30*time.Second, 0)
	if err := o.Invariant(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines alive %v after Close, baseline %d:\n%s",
				n, 10*time.Second, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
