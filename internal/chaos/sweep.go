package chaos

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/fault"
)

// Mix is one named fault blend of the standard sweep. Degraded applies
// only where degraded runners exist (the shared-memory models).
type Mix struct {
	// Specs is the declarative fault mix in the internal/fault grammar.
	Specs string
	// Degraded requests crash masking with survivor re-partitioning.
	Degraded bool
}

// standardMixes is the sweep's fault matrix. Kinds that do not apply to a
// machine family (memory faults on BSP, message faults on shared memory)
// simply never fire there — the run is then a clean control.
var standardMixes = []Mix{
	{"mem~0.05", false},          // sparse transient memory errors, strict retry
	{"mem@1,mem@3", false},       // pinned transients on two phases
	{"crash@2:p1", true},         // one masked crash, survivor re-partitioning
	{"crash@1:p0,mem~0.1", true}, // masked crash plus transient noise
	{"crash@1", false},           // strict crash: poison diagnosably
	{"violation@2", false},       // injected contention-rule violation
	{"budget@200", false},        // cost-budget ceiling
	{"drop~0.1,dup~0.1", false},  // BSP message channel faults
}

// StandardMixes returns the standard fault matrix (shared with the
// internal/sweep chaos preset, which expands the same scenarios through
// the generic cell runner).
func StandardMixes() []Mix { return standardMixes }

// AlgsFor lists the algorithms swept per model family.
func AlgsFor(model string) []string {
	switch model {
	case "bsp", "gsm":
		return []string{"parity", "or"}
	default:
		return []string{"parity", "or", "lac"}
	}
}

// Models is the full constructor matrix of the sweep.
var Models = []string{"qsm", "sqsm", "crqw", "bsp", "gsm"}

// Scenarios expands seeds × standard fault mixes × models × algorithms
// into the standard sweep (len = |seeds| · |mixes| · (3·3 + 2·2) = 104
// per seed). Degraded mixes fall back to strict on models without
// degraded runners.
func Scenarios(seeds []int64, n int) ([]Scenario, error) {
	var out []Scenario
	for _, mx := range standardMixes {
		specs, err := fault.ParseSpecs(mx.Specs)
		if err != nil {
			return nil, fmt.Errorf("chaos: bad standard mix %q: %w", mx.Specs, err)
		}
		for _, model := range Models {
			degraded := mx.Degraded && model != "bsp" && model != "gsm"
			for _, alg := range AlgsFor(model) {
				for _, seed := range seeds {
					out = append(out, Scenario{
						Model: model, Alg: alg, N: n, Seed: seed,
						Specs: specs, Degraded: degraded,
					})
				}
			}
		}
	}
	return out, nil
}

// Summary aggregates a sweep: how many runs verified, errored
// diagnosably, recovered transients or masked crashes — and every
// invariant violation (empty Failures = sweep passed).
type Summary struct {
	Runs, Verified, Errored int
	Injected, Recovered     int
	MaskedProcs             int
	// Cancelled counts runs cut short (plus scenarios never started) by
	// context cancellation; a non-zero count marks a partial summary.
	Cancelled int
	Failures  []string
}

// String renders the sweep summary (and failures, if any).
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos sweep: %d runs, %d verified, %d diagnosable errors, %d faults injected, %d recovered, %d procs masked",
		s.Runs, s.Verified, s.Errored, s.Injected, s.Recovered, s.MaskedProcs)
	if s.Cancelled > 0 {
		fmt.Fprintf(&b, " (interrupted: %d runs not finished)", s.Cancelled)
	}
	for _, f := range s.Failures {
		b.WriteString("\n  FAIL ")
		b.WriteString(f)
	}
	return b.String()
}

// Sweep runs every scenario under the deadline and aggregates outcomes.
// Scenarios run sequentially — the simulators parallelize internally via
// Workers, and sequential runs keep the summary order deterministic.
// Context cancellation (nil = Background) stops the sweep between runs
// and tears down the run in flight; the summary then reports the partial
// tally with the unfinished count.
func Sweep(ctx context.Context, scs []Scenario, deadline time.Duration, workers int) *Summary {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Summary{}
	for i, sc := range scs {
		if ctx.Err() != nil {
			s.Cancelled += len(scs) - i
			break
		}
		o := Run(ctx, sc, deadline, workers)
		s.Runs++
		if o.Cancelled {
			s.Cancelled++
			continue
		}
		if err := o.Invariant(); err != nil {
			s.Failures = append(s.Failures, err.Error())
			continue
		}
		if o.Verified {
			s.Verified++
		} else {
			s.Errored++
		}
		if o.Report != nil {
			s.Injected += o.Report.Injected
			s.Recovered += o.Report.Recovered
			s.MaskedProcs += o.Report.MaskedProcs
		}
	}
	return s
}
