package chaos

import (
	"strings"
	"testing"
	"time"
)

// TestChaosSweep is the headline robustness gate (CI runs it with -race):
// ≥ 200 seeded fault scenarios across all five machine constructors, each
// run at Workers=1 and Workers=8. Every run must satisfy the robustness
// invariant — verified-correct answer or diagnosable error, no panics, no
// deadline overruns, no silent corruption — and the two Workers settings
// must produce byte-identical fault schedules and observer event streams.
func TestChaosSweep(t *testing.T) {
	scs, err := Scenarios([]int64{1, 2}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) < 200 {
		t.Fatalf("sweep has %d scenarios, acceptance floor is 200", len(scs))
	}
	deadline := 30 * time.Second

	var verified, errored, injected, recovered, masked int
	for _, sc := range scs {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			o1 := Run(nil, sc, deadline, 1)
			o8 := Run(nil, sc, deadline, 8)
			for _, o := range []*Outcome{o1, o8} {
				if err := o.Invariant(); err != nil {
					t.Fatal(err)
				}
			}
			if got, want := strings.Join(o8.FaultLines, "\n"), strings.Join(o1.FaultLines, "\n"); got != want {
				t.Fatalf("fault schedule diverges across Workers:\nW1:\n%s\nW8:\n%s", want, got)
			}
			if o1.Stream != o8.Stream {
				t.Fatalf("observer stream diverges across Workers:\nW1:\n%s\nW8:\n%s", o1.Stream, o8.Stream)
			}
			if o1.Verified {
				verified++
			} else {
				errored++
			}
			if o1.Report != nil {
				injected += o1.Report.Injected
				recovered += o1.Report.Recovered
				masked += o1.Report.MaskedProcs
			}
		})
	}
	if verified == 0 || errored == 0 {
		t.Fatalf("degenerate sweep: %d verified, %d errored — the matrix should exercise both paths", verified, errored)
	}
	if injected == 0 || recovered == 0 || masked == 0 {
		t.Fatalf("degenerate sweep: injected=%d recovered=%d masked=%d — fault machinery not exercised", injected, recovered, masked)
	}
	t.Logf("sweep: %d scenarios ×2 workers settings — %d verified, %d diagnosable errors, %d faults, %d recovered, %d masked",
		len(scs), verified, errored, injected, recovered, masked)
}

// Replaying the identical scenario must reproduce the identical outcome,
// fault log and stream — the identical-seed ⇒ identical-event-stream leg
// of the invariant.
func TestChaosReplayDeterminism(t *testing.T) {
	scs, err := Scenarios([]int64{42}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scs[:20] {
		a := Run(nil, sc, DefaultDeadline, 0)
		b := Run(nil, sc, DefaultDeadline, 0)
		if a.Stream != b.Stream || strings.Join(a.FaultLines, "\n") != strings.Join(b.FaultLines, "\n") {
			t.Fatalf("%s: replay diverged", sc.Name())
		}
		if a.Verified != b.Verified || (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("%s: replay verdict diverged: %+v vs %+v", sc.Name(), a, b)
		}
	}
}

// The sweep aggregator reports invariant violations instead of dropping
// them, and a panicking scenario is caught, not propagated.
func TestChaosRunRecoversPanic(t *testing.T) {
	o := Run(nil, Scenario{Model: "qsm", Alg: "parity", N: 0, Seed: 1}, DefaultDeadline, 0)
	if o.Panicked != "" {
		t.Fatalf("n=0 should error cleanly, got panic %q", o.Panicked)
	}
	if o.Err == nil {
		t.Fatal("n=0 should produce a diagnosable constructor error")
	}
}

// Sweep summary accounting matches the per-outcome invariant results.
func TestChaosSweepSummary(t *testing.T) {
	scs, err := Scenarios([]int64{7}, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := Sweep(nil, scs[:26], DefaultDeadline, 0)
	if len(s.Failures) != 0 {
		t.Fatalf("sweep failures:\n%s", s)
	}
	if s.Runs != 26 || s.Verified+s.Errored != s.Runs {
		t.Fatalf("inconsistent summary: %s", s)
	}
}
