// Package chaos is the sweep harness of the fault-injection subsystem: it
// runs Section 8 algorithms on the simulated machines under seeded fault
// plans and checks the global robustness invariant — every run either
// completes with a verified-correct answer or returns a diagnosable
// machine error. No panics, no hangs (per-run deadlines), no silently
// wrong output, and identical seeds produce byte-identical fault and
// observer event streams at every Workers setting.
//
// The harness is deliberately adversarial plumbing, not model code: model
// time still comes exclusively from the cost formulas (the per-run
// deadline is a watchdog against harness hangs, not a cost measurement),
// and all randomness flows through fault.Plan and seeded workload
// generators.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/boolor"
	"repro/internal/bsp"
	"repro/internal/compaction"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/gsm"
	"repro/internal/gsmalg"
	"repro/internal/parity"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// DefaultDeadline is the per-run watchdog used when a Scenario run is
// given no explicit deadline.
const DefaultDeadline = 30 * time.Second

// Scenario is one chaos run: an algorithm on a machine model under a
// seeded fault plan. The seed drives both the workload and the plan, so a
// Scenario is a complete, replayable description of the run.
type Scenario struct {
	// Model selects the machine constructor: qsm, sqsm, crqw, bsp or gsm.
	Model string
	// Alg selects the algorithm: parity, or, lac (shared-memory models);
	// parity, or (bsp and gsm).
	Alg string
	// N is the input size.
	N int
	// Seed drives the workload generator and the fault plan.
	Seed int64
	// Specs is the declarative fault mix.
	Specs []fault.Spec
	// Degraded enables crash masking with survivor re-partitioning; only
	// the shared-memory models have degraded runners, so it is ignored
	// (strict mode) for bsp and gsm.
	Degraded bool
	// Backend selects the commit-barrier backend ("", "inproc" = the
	// built-in merge; "proc" = worker subprocesses). On proc, injected
	// crash and message-channel verdicts additionally echo as real
	// process kills and frame drops/dups.
	Backend string
	// ProcWorkers is the proc backend's worker-process count (default 1).
	ProcWorkers int
}

// Name renders a stable scenario identifier for subtests and logs.
func (s Scenario) Name() string {
	parts := make([]string, len(s.Specs))
	for i, sp := range s.Specs {
		parts[i] = sp.String()
	}
	mode := "strict"
	if s.Degraded {
		mode = "degraded"
	}
	name := fmt.Sprintf("%s/%s/n%d/seed%d/%s/%s",
		s.Model, s.Alg, s.N, s.Seed, strings.Join(parts, "+"), mode)
	if s.Backend != "" && s.Backend != "inproc" {
		name += fmt.Sprintf("/%s%d", s.Backend, s.procWorkers())
	}
	return name
}

func (s Scenario) procWorkers() int {
	if s.ProcWorkers <= 0 {
		return 1
	}
	return s.ProcWorkers
}

// Outcome is the result of one chaos run, judged against the robustness
// invariant: exactly one of Verified / diagnosable Err must hold, and
// Panicked, TimedOut and Wrong must all be clear.
type Outcome struct {
	// Scenario echoes the run description.
	Scenario Scenario
	// Verified is true when the run completed and the answer matched the
	// host-side oracle.
	Verified bool
	// Err is the machine/runner error of an unfinished run (nil iff the
	// run completed).
	Err error
	// Wrong is true when the run completed but the answer failed the
	// oracle — the silent-corruption case the invariant forbids.
	Wrong bool
	// Panicked carries the recovered panic value, if any.
	Panicked string
	// TimedOut is true when the run overran its deadline.
	TimedOut bool
	// Cancelled is true when the run was cut short by context
	// cancellation (SIGINT); a cancelled run is not an invariant
	// violation.
	Cancelled bool
	// FaultLines is the plan's deterministic injection log.
	FaultLines []string
	// Stream is the engine observer event stream.
	Stream string
	// Report is the assembled fault report (nil if machine construction
	// failed).
	Report *fault.Report
}

// Invariant returns nil when the outcome satisfies the robustness
// invariant and a descriptive error otherwise.
func (o *Outcome) Invariant() error {
	switch {
	case o.Cancelled:
		return nil
	case o.Panicked != "":
		return fmt.Errorf("%s: panicked: %s", o.Scenario.Name(), o.Panicked)
	case o.TimedOut:
		return fmt.Errorf("%s: deadline overrun", o.Scenario.Name())
	case o.Wrong:
		return fmt.Errorf("%s: silently wrong output: %w", o.Scenario.Name(), o.Err)
	case o.Verified && o.Err != nil:
		return fmt.Errorf("%s: verified yet errored: %w", o.Scenario.Name(), o.Err)
	case !o.Verified && o.Err == nil:
		return fmt.Errorf("%s: no answer and no error", o.Scenario.Name())
	case o.Err != nil && strings.TrimSpace(o.Err.Error()) == "":
		return fmt.Errorf("%s: undiagnosable empty error", o.Scenario.Name())
	}
	return nil
}

// Proc-backend chaos runs use a tighter liveness protocol than the
// production defaults, so a realized frame drop costs one short response
// deadline instead of seconds of sweep wall time.
const (
	chaosHeartbeatInterval = 10 * time.Millisecond
	chaosHeartbeatTimeout  = 500 * time.Millisecond
)

// newBackend constructs the scenario's commit-barrier backend (nil for
// inproc). PARSIM_PROC_LOGDIR, when set, receives the per-rank worker
// logs — the CI failure-artifact hook; it never influences results.
func newBackend(sc Scenario) (engine.Backend, error) {
	return backend.New(backend.Config{
		Name:              sc.Backend,
		ProcWorkers:       sc.procWorkers(),
		HeartbeatInterval: chaosHeartbeatInterval,
		HeartbeatTimeout:  chaosHeartbeatTimeout,
		LogDir:            os.Getenv("PARSIM_PROC_LOGDIR"),
	})
}

// Run executes one scenario under a watchdog deadline, recovering panics
// into the outcome. workers caps simulation parallelism (0 = GOMAXPROCS);
// ctx cancellation (nil = Background) cuts the run short with a Cancelled
// outcome. Run owns the scenario's backend: it is created before the
// runner starts and closed on every exit path, so worker subprocesses die
// promptly on deadline overrun or SIGINT — closing the backend also fails
// any in-flight merge permanently, unblocking a proc runner goroutine.
// In-proc runners have no cancellation and are abandoned on overrun; the
// overrun itself fails the sweep, so leaked goroutines only ever exist on
// a run that is already a reported bug.
func Run(ctx context.Context, sc Scenario, deadline time.Duration, workers int) *Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	if deadline <= 0 {
		deadline = DefaultDeadline
	}
	out := &Outcome{Scenario: sc}
	bk, err := newBackend(sc)
	if err != nil {
		out.Err = err
		return out
	}
	closeBackend := func() {
		if bk != nil {
			bk.Close()
		}
	}
	done := make(chan struct{})
	go func() {
		defer func() {
			if r := recover(); r != nil {
				out.Panicked = fmt.Sprint(r)
			}
			close(done)
		}()
		execute(sc, workers, bk, out)
	}()
	watchdog := time.NewTimer(deadline)
	defer watchdog.Stop()
	select {
	case <-done:
		closeBackend()
		return out
	case <-ctx.Done():
		closeBackend()
		return &Outcome{Scenario: sc, Cancelled: true}
	case <-watchdog.C:
		closeBackend()
		return &Outcome{Scenario: sc, TimedOut: true}
	}
}

// execute dispatches to the per-family runner. All of them attach the
// plan and backend, run the algorithm, check the oracle and collect the
// event streams.
func execute(sc Scenario, workers int, bk engine.Backend, out *Outcome) {
	plan := fault.NewPlan(sc.Seed, sc.Specs...)
	switch sc.Model {
	case "bsp":
		runBSP(sc, workers, bk, plan, out)
	case "gsm":
		runGSM(sc, workers, bk, plan, out)
	default:
		runShared(sc, workers, bk, plan, out)
	}
	out.FaultLines = plan.EventLines()
}

// finish applies the oracle verdict: a completed run must match want.
func (o *Outcome) finish(err error, got, want int64, what string) {
	if err != nil {
		o.Err = err
		return
	}
	if got != want {
		o.Wrong = true
		o.Err = fmt.Errorf("chaos: %s = %d, oracle says %d", what, got, want)
		return
	}
	o.Verified = true
}

// runShared covers the QSM-family models (qsm, sqsm, crqw): parity tree,
// OR contention tree and dart-throwing LAC, each with a degraded variant.
func runShared(sc Scenario, workers int, bk engine.Backend, plan *fault.Plan, out *Outcome) {
	var rule cost.Rule
	switch sc.Model {
	case "qsm":
		rule = cost.RuleQSM
	case "sqsm":
		rule = cost.RuleSQSM
	case "crqw":
		rule = cost.RuleCRQW
	default:
		out.Err = fmt.Errorf("chaos: unknown model %q", sc.Model)
		return
	}
	// p = n so the dart LAC (which needs one processor per cell) and the
	// trees share one machine shape.
	m, err := qsm.New(qsm.Config{Rule: rule, P: sc.N, G: 2, N: sc.N, MemCells: sc.N, Workers: workers})
	if err != nil {
		out.Err = err
		return
	}
	ev := &engine.EventLog{}
	m.AddObserver(ev)
	if bk != nil {
		m.SetBackend(bk)
	}
	m.InjectFaults(plan, engine.RetryPolicy{}, sc.Degraded)
	defer func() {
		out.Stream = ev.String()
		out.Report = plan.Report(m)
	}()

	switch sc.Alg {
	case "parity", "or":
		bits := workload.Bits(sc.Seed, sc.N)
		if err := m.Load(0, bits); err != nil {
			out.Err = err
			return
		}
		var addr int
		var want int64
		if sc.Alg == "parity" {
			want = workload.Parity(bits)
			if sc.Degraded {
				addr, err = parity.TreeQSMDegraded(m, 0, sc.N, 2)
			} else {
				addr, err = parity.TreeQSM(m, 0, sc.N, 2)
			}
		} else {
			want = workload.Or(bits)
			if sc.Degraded {
				addr, err = boolor.ContentionTreeDegraded(m, 0, sc.N, 4)
			} else {
				addr, err = boolor.ContentionTree(m, 0, sc.N, 4)
			}
		}
		if err == nil {
			out.finish(m.Err(), m.Peek(addr), want, sc.Alg)
		} else {
			out.Err = err
		}
	case "lac":
		items, err := workload.Sparse(sc.Seed, sc.N, sc.N/4)
		if err != nil {
			out.Err = err
			return
		}
		if err := m.Load(0, items); err != nil {
			out.Err = err
			return
		}
		// The dart RNG is algorithmic randomness (Section 8.3), separate
		// from the plan RNG so fault draws never perturb dart throws.
		rng := rand.New(rand.NewSource(sc.Seed + 1))
		var res *compaction.DartResult
		if sc.Degraded {
			res, err = compaction.DartLACDegraded(m, rng, 0, sc.N)
		} else {
			res, err = compaction.DartLAC(m, rng, 0, sc.N)
		}
		switch {
		case err != nil:
			out.Err = err
		case m.Err() != nil:
			out.Err = m.Err()
		default:
			if verr := compaction.VerifyPlacement(items, res); verr != nil {
				out.Wrong = true
				out.Err = fmt.Errorf("chaos: lac placement: %w", verr)
			} else {
				out.Verified = true
			}
		}
	default:
		out.Err = fmt.Errorf("chaos: unknown shared-memory algorithm %q", sc.Alg)
	}
}

// bspComponents is the fixed component count of BSP chaos runs.
const bspComponents = 8

// runBSP covers the BSP component-tree algorithms. BSP has no degraded
// runners, so crashes always run strict and poison diagnosably.
func runBSP(sc Scenario, workers int, bk engine.Backend, plan *fault.Plan, out *Outcome) {
	bits := workload.Bits(sc.Seed, sc.N)
	var priv int
	var want int64
	switch sc.Alg {
	case "parity":
		priv = parity.PrivNeedBSP(sc.N, bspComponents)
		want = workload.Parity(bits)
	case "or":
		priv = boolor.PrivNeedBSP(sc.N, bspComponents)
		want = workload.Or(bits)
	default:
		out.Err = fmt.Errorf("chaos: unknown BSP algorithm %q", sc.Alg)
		return
	}
	m, err := bsp.New(bsp.Config{P: bspComponents, G: 2, L: 8, N: sc.N, PrivCells: priv, Workers: workers})
	if err != nil {
		out.Err = err
		return
	}
	ev := &engine.EventLog{}
	m.AddObserver(ev)
	if bk != nil {
		m.SetBackend(bk)
	}
	m.InjectFaults(plan, engine.RetryPolicy{}, false)
	defer func() {
		out.Stream = ev.String()
		out.Report = plan.Report(m)
	}()
	if err := m.Scatter(bits); err != nil {
		out.Err = err
		return
	}
	var got int64
	if sc.Alg == "parity" {
		got, err = parity.RunBSP(m, sc.N, 4)
	} else {
		got, err = boolor.RunBSP(m, sc.N, 4)
	}
	out.finish(err, got, want, "bsp "+sc.Alg)
}

// runGSM covers the GSM information-gather algorithms; like BSP it always
// runs strict.
func runGSM(sc Scenario, workers int, bk engine.Backend, plan *fault.Plan, out *Outcome) {
	bits := workload.Bits(sc.Seed, sc.N)
	const gamma = 2
	r := (sc.N + gamma - 1) / gamma
	m, err := gsm.New(gsm.Config{
		P: r, Alpha: 2, Beta: 2, Gamma: gamma, N: sc.N,
		Cells: gsmalg.CellsNeedGather(r), Workers: workers,
	})
	if err != nil {
		out.Err = err
		return
	}
	ev := &engine.EventLog{}
	m.AddObserver(ev)
	if bk != nil {
		m.SetBackend(bk)
	}
	m.InjectFaults(plan, engine.RetryPolicy{}, false)
	defer func() {
		out.Stream = ev.String()
		out.Report = plan.Report(m)
	}()
	if err := m.LoadInputs(bits); err != nil {
		out.Err = err
		return
	}
	var got, want int64
	switch sc.Alg {
	case "parity":
		want = workload.Parity(bits)
		got, err = gsmalg.ParityGSM(m, sc.N, 4)
	case "or":
		want = workload.Or(bits)
		got, err = gsmalg.ORGSM(m, sc.N, 4)
	default:
		out.Err = fmt.Errorf("chaos: unknown GSM algorithm %q", sc.Alg)
		return
	}
	out.finish(err, got, want, "gsm "+sc.Alg)
}
