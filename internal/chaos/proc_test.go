package chaos

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/backend/proc"
	"repro/internal/fault"
)

// The proc backend re-execs this test binary as its worker processes;
// MaybeWorker hijacks those re-execs before the test runner starts.
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	os.Exit(m.Run())
}

// TestChaosProcBackend is the proc-backend acceptance gate: the standard
// fault matrix (every mix × every model, parity) on real worker
// subprocesses. Injected crash verdicts SIGKILL a live worker; message
// verdicts drop or duplicate real frames. Every run must still satisfy
// the robustness invariant — verified XOR diagnosable, zero hangs — and
// mixes with no message-channel faults must reproduce the inproc event
// stream byte-identically (drop/dup realizations burn extra transport
// retry attempts, so their injector consult sequence legitimately
// differs from inproc).
func TestChaosProcBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	deadline := 30 * time.Second
	var verified, errored int
	for _, mx := range StandardMixes() {
		specs, err := fault.ParseSpecs(mx.Specs)
		if err != nil {
			t.Fatal(err)
		}
		channelFaults := strings.Contains(mx.Specs, "drop") || strings.Contains(mx.Specs, "dup")
		for _, model := range Models {
			degraded := mx.Degraded && model != "bsp" && model != "gsm"
			sc := Scenario{
				Model: model, Alg: "parity", N: 32, Seed: 3,
				Specs: specs, Degraded: degraded,
				Backend: "proc", ProcWorkers: 2,
			}
			t.Run(sc.Name(), func(t *testing.T) {
				o := Run(nil, sc, deadline, 0)
				if err := o.Invariant(); err != nil {
					t.Fatal(err)
				}
				if o.Cancelled {
					t.Fatal("run cancelled without a cancel signal")
				}
				if o.Verified {
					verified++
				} else {
					errored++
				}
				if channelFaults {
					return
				}
				ref := sc
				ref.Backend, ref.ProcWorkers = "", 0
				ri := Run(nil, ref, deadline, 0)
				if err := ri.Invariant(); err != nil {
					t.Fatal(err)
				}
				if o.Stream != ri.Stream {
					t.Fatalf("event stream diverges from inproc:\nproc:\n%s\ninproc:\n%s", o.Stream, ri.Stream)
				}
				if got, want := strings.Join(o.FaultLines, "\n"), strings.Join(ri.FaultLines, "\n"); got != want {
					t.Fatalf("fault schedule diverges from inproc:\nproc:\n%s\ninproc:\n%s", got, want)
				}
				if o.Verified != ri.Verified {
					t.Fatalf("verdict diverges from inproc: proc verified=%t, inproc verified=%t", o.Verified, ri.Verified)
				}
			})
		}
	}
	if verified == 0 || errored == 0 {
		t.Fatalf("degenerate proc sweep: %d verified, %d errored — the matrix should exercise both paths", verified, errored)
	}
}
