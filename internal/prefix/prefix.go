// Package prefix implements parallel prefix sums — the workhorse substrate
// for the deterministic compaction, load-balancing and rounds algorithms of
// the paper — on the QSM family and on the BSP.
//
// The shared-memory implementation is a k-ary up-sweep/down-sweep tree. With
// fan-in k it runs in Θ(log n / log k) phases, each of cost O(g·k) on the
// QSM/s-QSM (all reads and writes are to distinct cells, so contention is
// 1). Choosing k = ⌈n/p⌉ yields a p-processor algorithm that computes in
// rounds with Θ(log n / log(n/p)) rounds — the upper bound that makes the
// OR/Parity rows of the rounds table of the paper tight.
//
// The BSP implementation block-distributes the input, reduces local blocks,
// runs a k-ary tree over component partial sums via messages, and locally
// expands: O(log p / log k) supersteps around the tree plus O(n/p) local
// work.
package prefix

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/qsm"
)

// MaxFanin bounds per-node buffering in the QSM down-sweep.
const MaxFanin = 64

// RunQSM computes inclusive prefix sums of the n cells starting at base on
// the shared-memory machine m, using a k-ary tree with the given fan-in
// (2 ≤ fanin ≤ MaxFanin). The result is written to n fresh cells whose base
// address is returned. Works for any processor count: when a tree level has
// more nodes than processors, each processor handles a strided share and is
// charged the extra reads/writes. The input cells are not modified.
func RunQSM(m *qsm.Machine, base, n, fanin int) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("prefix: n must be ≥ 1, got %d", n)
	}
	if fanin < 2 || fanin > MaxFanin {
		return 0, fmt.Errorf("prefix: fan-in %d outside [2,%d]", fanin, MaxFanin)
	}
	if base < 0 || base+n > m.MemSize() {
		return 0, fmt.Errorf("prefix: input [%d,%d) outside memory of %d cells",
			base, base+n, m.MemSize())
	}
	// Level widths: level 0 is the input (width n); each level above packs
	// fanin children per node.
	widths := []int{n}
	for widths[len(widths)-1] > 1 {
		w := widths[len(widths)-1]
		widths = append(widths, (w+fanin-1)/fanin)
	}
	nLevels := len(widths)

	// Fresh memory: subtree sums for levels 1..top, an offset array per
	// level, and the output. (offset[ℓ][j] = sum of all inputs strictly
	// before node j's subtree.)
	sumBase := make([]int, nLevels)
	sumBase[0] = base
	next := m.MemSize()
	for h := 1; h < nLevels; h++ {
		sumBase[h] = next
		next += widths[h]
	}
	offBase := make([]int, nLevels)
	for h := 0; h < nLevels; h++ {
		offBase[h] = next
		next += widths[h]
	}
	out := next
	next += n
	m.Grow(next)

	// When a level has more nodes than processors, each processor handles a
	// strided set of nodes within the phase (raising its m_rw accordingly —
	// exactly the p-processor cost the model charges).
	strided := func(width int, node func(c *qsm.Ctx, j int)) func(c *qsm.Ctx) {
		p := m.P()
		return func(c *qsm.Ctx) {
			for j := c.Proc(); j < width; j += p {
				node(c, j)
			}
		}
	}

	// Up-sweep: the processor owning node j sums its ≤ fanin children.
	for h := 1; h < nLevels; h++ {
		h := h
		childW := widths[h-1]
		m.Phase(strided(widths[h], func(c *qsm.Ctx, j int) {
			// Children are contiguous: one block read per node.
			cnt := min(fanin, childW-j*fanin)
			var s int64
			for _, v := range c.ReadBlock(sumBase[h-1]+j*fanin, cnt) {
				s += v
				c.Op(1)
			}
			c.Write(sumBase[h]+j, s)
		}))
	}

	// Root offset is 0.
	top := nLevels - 1
	m.ForAll(1, func(c *qsm.Ctx) {
		c.Write(offBase[top], 0)
	})

	// Down-sweep: the processor owning parent node j reads its offset and
	// its children's sums, and writes each child's offset.
	for h := top; h >= 1; h-- {
		h := h
		childW := widths[h-1]
		m.Phase(strided(widths[h], func(c *qsm.Ctx, j int) {
			off := c.Read(offBase[h] + j)
			cnt := min(fanin, childW-j*fanin)
			kids := c.ReadBlock(sumBase[h-1]+j*fanin, cnt)
			// The children's offsets are a contiguous run: accumulate into
			// a stack buffer and write the whole run in one batch.
			var offs [MaxFanin]int64
			run := off
			for i := 0; i < cnt; i++ {
				offs[i] = run
				c.Op(1)
				run += kids[i]
			}
			c.WriteBlock(offBase[h-1]+j*fanin, offs[:cnt])
		}))
	}

	// Final phase: leaf j's inclusive prefix = its offset + its value.
	m.Phase(strided(widths[0], func(c *qsm.Ctx, j int) {
		v := c.Read(base + j)
		o := c.Read(offBase[0] + j)
		c.Op(1)
		c.Write(out+j, o+v)
	}))

	return out, m.Err()
}

// RunQSMRounds computes prefix sums with the canonical p-processor rounds
// algorithm: fan-in max(2, ⌈n/p⌉), so that every phase is a round.
func RunQSMRounds(m *qsm.Machine, base, n int) (int, error) {
	k := (n + m.P() - 1) / m.P()
	if k < 2 {
		k = 2
	}
	if k > MaxFanin {
		return 0, fmt.Errorf("prefix: rounds fan-in %d exceeds MaxFanin %d", k, MaxFanin)
	}
	return RunQSM(m, base, n, k)
}

// --- BSP --------------------------------------------------------------------

// bspLayout computes the private-memory layout of RunBSP.
type bspLayout struct {
	maxBlk  int
	nLevels int
	widths  []int
}

func newBSPLayout(n, p, fanin int) bspLayout {
	if fanin < 2 { // a fan-in below 2 would never shrink the tree
		fanin = 2
	}
	widths := []int{p}
	for widths[len(widths)-1] > 1 {
		w := widths[len(widths)-1]
		widths = append(widths, (w+fanin-1)/fanin)
	}
	return bspLayout{
		maxBlk:  (n + p - 1) / p,
		nLevels: len(widths),
		widths:  widths,
	}
}

// sumSlot is the private address of a component's level-h subtree sum.
func (l bspLayout) sumSlot(h int) int { return l.maxBlk + h }

// offSlot is the private address of a component's current subtree offset.
func (l bspLayout) offSlot() int { return l.maxBlk + l.nLevels }

// outOff is the private address of the first output cell.
func (l bspLayout) outOff() int { return l.maxBlk + l.nLevels + 1 }

// PrivNeedBSP returns the private memory a BSP machine needs for RunBSP.
func PrivNeedBSP(n, p, fanin int) int {
	l := newBSPLayout(n, p, fanin)
	return l.outOff() + l.maxBlk
}

// RunBSP computes inclusive prefix sums of the block-distributed input on a
// BSP machine: component i holds its block (bsp.BlockRange(n, p, i)) at
// private addresses [0, blockLen). On return, the block's inclusive global
// prefixes are at private addresses [outOff, outOff+blockLen), where outOff
// is the returned offset. Components need PrivNeedBSP(n, p, fanin) private
// cells.
func RunBSP(m *bsp.Machine, n, fanin int) (int, error) {
	if fanin < 2 {
		return 0, fmt.Errorf("prefix: fan-in must be ≥ 2, got %d", fanin)
	}
	if n < 1 {
		return 0, fmt.Errorf("prefix: n must be ≥ 1, got %d", n)
	}
	p := m.P()
	l := newBSPLayout(n, p, fanin)

	// Local reduction into sumSlot(0).
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		var s int64
		for i := 0; i < hi-lo; i++ {
			s += c.Priv()[i]
			c.Work(1)
		}
		c.Priv()[l.sumSlot(0)] = s
		c.Priv()[l.offSlot()] = 0
	})

	// Up-sweep: at each level children message their subtree sums to the
	// parent, which accumulates into its next level slot.
	for h := 1; h < l.nLevels; h++ {
		h := h
		childW := l.widths[h-1]
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j < childW {
				c.Send(j/fanin, int64(j%fanin), c.Priv()[l.sumSlot(h-1)])
			}
		})
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j >= l.widths[h] {
				return
			}
			var s int64
			for _, msg := range c.Incoming() {
				s += msg.Val
				c.Work(1)
			}
			c.Priv()[l.sumSlot(h)] = s
		})
	}

	// Down-sweep: children re-send their (persisted) level sums; the parent
	// replies with each child's offset; children store it.
	for h := l.nLevels - 1; h >= 1; h-- {
		h := h
		childW := l.widths[h-1]
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j < childW {
				c.Send(j/fanin, int64(j%fanin), c.Priv()[l.sumSlot(h-1)])
			}
		})
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j >= l.widths[h] {
				return
			}
			run := c.Priv()[l.offSlot()]
			for _, msg := range c.Incoming() {
				// Incoming arrives sorted by sender id, i.e. by child rank.
				child := j*fanin + int(msg.Tag)
				c.Send(child, 0, run)
				run += msg.Val
				c.Work(1)
			}
		})
		m.Superstep(func(c *bsp.Ctx) {
			j := c.Comp()
			if j >= childW {
				return
			}
			for _, msg := range c.Incoming() {
				c.Priv()[l.offSlot()] = msg.Val
			}
		})
	}

	// Local expansion.
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		run := c.Priv()[l.offSlot()]
		for i := 0; i < hi-lo; i++ {
			run += c.Priv()[i]
			c.Priv()[l.outOff()+i] = run
			c.Work(1)
		}
	})

	return l.outOff(), m.Err()
}
