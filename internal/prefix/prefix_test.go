package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/cost"
	"repro/internal/qsm"
)

func reference(in []int64) []int64 {
	out := make([]int64, len(in))
	var run int64
	for i, v := range in {
		run += v
		out[i] = run
	}
	return out
}

func qsmMachine(t *testing.T, rule cost.Rule, n int, g int64, p int) *qsm.Machine {
	t.Helper()
	m, err := qsm.New(qsm.Config{Rule: rule, P: p, G: g, N: n, MemCells: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunQSMCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 16, 33, 100, 257} {
		for _, fanin := range []int{2, 3, 4, 8} {
			in := make([]int64, n)
			for i := range in {
				in[i] = int64(rng.Intn(20) - 10)
			}
			m := qsmMachine(t, cost.RuleQSM, n, 1, n)
			if err := m.Load(0, in); err != nil {
				t.Fatal(err)
			}
			out, err := RunQSM(m, 0, n, fanin)
			if err != nil {
				t.Fatalf("n=%d fanin=%d: %v", n, fanin, err)
			}
			want := reference(in)
			got := m.PeekRange(out, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d fanin=%d: prefix[%d] = %d, want %d",
						n, fanin, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRunQSMValidation(t *testing.T) {
	m := qsmMachine(t, cost.RuleQSM, 8, 1, 8)
	if _, err := RunQSM(m, 0, 0, 2); err == nil {
		t.Error("want error for n=0")
	}
	if _, err := RunQSM(m, 0, 8, 1); err == nil {
		t.Error("want error for fan-in 1")
	}
	if _, err := RunQSM(m, 0, 8, MaxFanin+1); err == nil {
		t.Error("want error for huge fan-in")
	}
	if _, err := RunQSM(m, 4, 8, 2); err == nil {
		t.Error("want error for input beyond memory")
	}
}

func TestRunQSMFewProcessors(t *testing.T) {
	// Fewer processors than leaves: striding must still give the right
	// answer, with phases charged the larger m_rw.
	n := 64
	in := make([]int64, n)
	for i := range in {
		in[i] = int64(i)
	}
	m := qsmMachine(t, cost.RuleQSM, n, 1, 4)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := RunQSM(m, 0, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(in)
	for i := range want {
		if m.Peek(out+i) != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, m.Peek(out+i), want[i])
		}
	}
	// The first up-sweep phase has 32 parents over 4 procs: m_rw = 8·2.
	if got := m.Report().Phases[0].MaxRW; got != 16 {
		t.Errorf("strided phase m_rw = %d, want 16", got)
	}
}

func TestRunQSMPhasesScaleWithFanin(t *testing.T) {
	// Phases ≈ 2·log_k n: doubling the fan-in should at least halve... the
	// level count must strictly shrink with larger fan-in.
	n := 1 << 12
	phases := func(fanin int) int {
		m := qsmMachine(t, cost.RuleQSM, n, 1, n)
		if _, err := RunQSM(m, 0, n, fanin); err != nil {
			t.Fatal(err)
		}
		return m.Report().NumPhases()
	}
	p2, p16 := phases(2), phases(16)
	if p16 >= p2 {
		t.Errorf("fan-in 16 used %d phases, fan-in 2 used %d", p16, p2)
	}
	// log_2(4096)=12 levels → ~2·12+2 phases; allow slack.
	if p2 > 30 {
		t.Errorf("binary tree used %d phases for n=2^12, want ≈26", p2)
	}
}

func TestRunQSMContentionIsOne(t *testing.T) {
	n := 256
	m := qsmMachine(t, cost.RuleQSM, n, 2, n)
	if _, err := RunQSM(m, 0, n, 4); err != nil {
		t.Fatal(err)
	}
	for _, ph := range m.Report().Phases {
		if ph.Contention > 1 {
			t.Fatalf("phase %d has contention %d; prefix tree must be contention-free",
				ph.Index, ph.Contention)
		}
	}
}

func TestRunQSMRoundsComputesInRounds(t *testing.T) {
	// p = n/8 processors, fan-in 8: every phase must be a round.
	n := 1 << 10
	p := n / 8
	m := qsmMachine(t, cost.RuleQSM, n, 2, p)
	in := make([]int64, n)
	for i := range in {
		in[i] = 1
	}
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	out, err := RunQSMRounds(m, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(out + n - 1); got != int64(n) {
		t.Fatalf("total = %d, want %d", got, n)
	}
	if !m.Report().AllRounds {
		t.Error("rounds algorithm has a phase exceeding the round budget")
	}
}

func TestRunQSMRoundsFaninTooLarge(t *testing.T) {
	n := 1 << 10
	m := qsmMachine(t, cost.RuleQSM, n, 1, 2) // n/p = 512 > MaxFanin
	if _, err := RunQSMRounds(m, 0, n); err == nil {
		t.Error("want MaxFanin error")
	}
}

func TestRunQSMProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw%120) + 1
		fanin := int(kRaw%7) + 2
		rng := rand.New(rand.NewSource(seed))
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(rng.Intn(100))
		}
		m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: 1, N: n, MemCells: n})
		if err != nil {
			return false
		}
		if err := m.Load(0, in); err != nil {
			return false
		}
		out, err := RunQSM(m, 0, n, fanin)
		if err != nil {
			return false
		}
		want := reference(in)
		for i := range want {
			if m.Peek(out+i) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- BSP ---------------------------------------------------------------------

func bspMachine(t *testing.T, n, p, fanin int, g, L int64) *bsp.Machine {
	t.Helper()
	m, err := bsp.New(bsp.Config{
		P: p, G: g, L: L, N: n, PrivCells: PrivNeedBSP(n, p, fanin),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunBSPCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, tc := range []struct{ n, p, fanin int }{
		{1, 1, 2}, {10, 3, 2}, {64, 8, 2}, {100, 7, 3}, {256, 16, 4}, {57, 57, 2},
	} {
		in := make([]int64, tc.n)
		for i := range in {
			in[i] = int64(rng.Intn(50) - 25)
		}
		m := bspMachine(t, tc.n, tc.p, tc.fanin, 1, 2)
		if err := m.Scatter(in); err != nil {
			t.Fatal(err)
		}
		outOff, err := RunBSP(m, tc.n, tc.fanin)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		want := reference(in)
		for comp := 0; comp < tc.p; comp++ {
			lo, hi := bsp.BlockRange(tc.n, tc.p, comp)
			for i := lo; i < hi; i++ {
				if got := m.Peek(comp, outOff+(i-lo)); got != want[i] {
					t.Fatalf("%+v: prefix[%d] = %d, want %d", tc, i, got, want[i])
				}
			}
		}
	}
}

func TestRunBSPValidation(t *testing.T) {
	m := bspMachine(t, 8, 2, 2, 1, 1)
	if _, err := RunBSP(m, 8, 1); err == nil {
		t.Error("want fan-in error")
	}
	if _, err := RunBSP(m, 0, 2); err == nil {
		t.Error("want n error")
	}
}

func TestRunBSPSuperstepsScaleWithFanin(t *testing.T) {
	n, p := 1<<12, 256
	steps := func(fanin int) int {
		m := bspMachine(t, n, p, fanin, 1, 4)
		if _, err := RunBSP(m, n, fanin); err != nil {
			t.Fatal(err)
		}
		return m.Report().NumPhases()
	}
	if s16, s2 := steps(16), steps(2); s16 >= s2 {
		t.Errorf("fan-in 16 used %d supersteps, fan-in 2 used %d", s16, s2)
	}
}

func TestRunBSPRelationBounded(t *testing.T) {
	// No superstep should route more than a fanin-relation (+1 for replies).
	n, p, fanin := 1<<10, 64, 4
	m := bspMachine(t, n, p, fanin, 2, 8)
	if _, err := RunBSP(m, n, fanin); err != nil {
		t.Fatal(err)
	}
	for _, ph := range m.Report().Phases {
		if ph.MaxRW > int64(fanin) {
			t.Fatalf("superstep %d routes an h=%d relation > fan-in %d",
				ph.Index, ph.MaxRW, fanin)
		}
	}
}
