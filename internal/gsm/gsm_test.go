package gsm

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/qsm"
)

func mk(t *testing.T, c Config) *Machine {
	t.Helper()
	m, err := New(c)
	if err != nil {
		t.Fatalf("New(%+v): %v", c, err)
	}
	return m
}

// The commit pipeline must merge identically for every Workers setting:
// information sets are canonical and set union is order-insensitive, so
// cell contents, κ, and big-step counts cannot depend on chunk layout.
func TestCommitDeterministicAcrossWorkers(t *testing.T) {
	const p, cells, phases = 200, 64, 4
	run := func(workers int) ([]Info, cost.Report) {
		m := mk(t, Config{P: p, Alpha: 2, Beta: 3, Gamma: 1, N: p, Cells: cells, Workers: workers})
		for ph := 0; ph < phases; ph++ {
			ph := ph
			m.Phase(func(c *Ctx) {
				i := c.Proc()
				c.Read((i*3 + ph) % (cells / 2))
				c.Write(cells/2+(i+ph)%(cells/2), NewInfo(int64(i), int64(i*2+ph)))
				if i%4 == 0 {
					c.Write(cells/2+ph, NewInfo(int64(1000+i)))
				}
			})
		}
		if m.Err() != nil {
			t.Fatal(m.Err())
		}
		out := make([]Info, cells)
		for a := range out {
			out[a] = m.Peek(a)
		}
		return out, *m.Report()
	}
	seqCells, seqRep := run(1)
	for _, w := range []int{2, 8} {
		parCells, parRep := run(w)
		if !reflect.DeepEqual(seqCells, parCells) {
			t.Errorf("Workers=%d: cell contents differ", w)
		}
		if !reflect.DeepEqual(seqRep, parRep) {
			t.Errorf("Workers=%d: report differs\nseq: %+v\npar: %+v", w, seqRep, parRep)
		}
	}
}

func TestPeekOutOfRangeRecordsError(t *testing.T) {
	cfg := Config{P: 2, Alpha: 1, Beta: 1, Gamma: 1, N: 4, Cells: 8}

	m := mk(t, cfg)
	if got := m.Peek(-1); got != nil {
		t.Errorf("Peek(-1) = %v, want nil", got)
	}
	if err := m.Err(); err == nil {
		t.Error("Peek(-1) must record a machine error")
	}

	m = mk(t, cfg)
	if got := m.Peek(100); got != nil {
		t.Errorf("Peek(100) = %v, want nil", got)
	}
	if err := m.Err(); err == nil {
		t.Error("Peek(100) must record a machine error")
	}

	m = mk(t, cfg)
	m.Peek(0)
	m.Peek(7)
	if err := m.Err(); err != nil {
		t.Errorf("in-range Peek recorded error: %v", err)
	}
}

func TestInfoSetOperations(t *testing.T) {
	a := NewInfo(3, 1, 2, 3, 1)
	if len(a) != 3 || a[0] != 1 || a[2] != 3 {
		t.Fatalf("NewInfo dedup/sort failed: %v", a)
	}
	b := NewInfo(2, 4)
	u := a.Merge(b)
	want := []int64{1, 2, 3, 4}
	if len(u) != len(want) {
		t.Fatalf("Merge = %v, want %v", u, want)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("Merge = %v, want %v", u, want)
		}
	}
	if !u.Contains(3) || u.Contains(7) {
		t.Error("Contains wrong")
	}
	if got := Info(nil).Merge(nil); len(got) != 0 {
		t.Errorf("nil merge = %v", got)
	}
	if got := NewInfo(); got != nil {
		t.Errorf("NewInfo() = %v, want nil", got)
	}
}

func TestInfoMergeProperty(t *testing.T) {
	// Merge is commutative, idempotent and sorted.
	f := func(xs, ys []int8) bool {
		ax := make([]int64, len(xs))
		for i, v := range xs {
			ax[i] = int64(v)
		}
		ay := make([]int64, len(ys))
		for i, v := range ys {
			ay[i] = int64(v)
		}
		a, b := NewInfo(ax...), NewInfo(ay...)
		ab, ba := a.Merge(b), b.Merge(a)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
			if i > 0 && ab[i-1] >= ab[i] {
				return false
			}
		}
		aa := a.Merge(a)
		if len(aa) != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAtomRoundTrip(t *testing.T) {
	f := func(iRaw uint16, v uint8) bool {
		i := int(iRaw)
		a := InputAtom(i, int64(v))
		gi, gv := AtomInput(a)
		return gi == i && gv == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{P: 1, Alpha: 0, Beta: 1, Gamma: 1, N: 1},
		{P: 1, Alpha: 1, Beta: 0, Gamma: 1, N: 1},
		{P: 1, Alpha: 1, Beta: 1, Gamma: 0, N: 1},
		{P: 0, Alpha: 1, Beta: 1, Gamma: 1, N: 1},
		{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 0},
		{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 1, Cells: -2},
		{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 1, Workers: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	MustNew(Config{})
}

func TestLoadInputsGammaPacking(t *testing.T) {
	m := mk(t, Config{P: 2, Alpha: 1, Beta: 1, Gamma: 3, N: 7, Cells: 4})
	vals := []int64{1, 0, 1, 1, 0, 0, 1}
	if err := m.LoadInputs(vals); err != nil {
		t.Fatal(err)
	}
	// Cell 0 holds inputs 0..2, cell 2 holds input 6.
	if got := len(m.Peek(0)); got != 3 {
		t.Errorf("cell 0 atoms = %d, want 3", got)
	}
	if got := len(m.Peek(2)); got != 1 {
		t.Errorf("cell 2 atoms = %d, want 1", got)
	}
	if !m.Peek(1).Contains(InputAtom(4, 0)) {
		t.Error("cell 1 missing input 4")
	}
	if err := m.LoadInputs(vals[:3]); err == nil {
		t.Error("want length error")
	}
	small := mk(t, Config{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 7, Cells: 2})
	if err := small.LoadInputs(vals); err == nil {
		t.Error("want too-few-cells error")
	}
}

func TestStrongQueuingMergesAllWrites(t *testing.T) {
	// 5 processors write disjoint atoms to cell 0 in one phase: unlike the
	// QSM's arbitrary-winner rule, the GSM cell must contain ALL of them.
	m := mk(t, Config{P: 5, Alpha: 1, Beta: 1, Gamma: 1, N: 5, Cells: 1})
	m.Phase(func(c *Ctx) {
		c.Write(0, NewInfo(int64(1000+c.Proc())))
	})
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	got := m.Peek(0)
	if len(got) != 5 {
		t.Fatalf("cell contains %d atoms, want 5 (strong queuing)", len(got))
	}
	for i := 0; i < 5; i++ {
		if !got.Contains(int64(1000 + i)) {
			t.Errorf("missing atom %d", 1000+i)
		}
	}
}

func TestBigStepAccounting(t *testing.T) {
	// α=2, β=3, μ=3. One processor reads 5 cells (⌈5/2⌉=3 big-steps);
	// contention 1 (⌈1/3⌉=1). Phase time = 3·3 = 9.
	m := mk(t, Config{P: 2, Alpha: 2, Beta: 3, Gamma: 1, N: 8, Cells: 8})
	m.Phase(func(c *Ctx) {
		if c.Proc() == 0 {
			for j := 0; j < 5; j++ {
				c.Read(j)
			}
		}
	})
	ph := m.Report().Phases[0]
	if ph.BigSteps != 3 {
		t.Errorf("big-steps = %d, want 3", ph.BigSteps)
	}
	if ph.Time != 9 {
		t.Errorf("time = %d, want 9", ph.Time)
	}
}

func TestContentionBigSteps(t *testing.T) {
	// β=4: 10 writers to one cell ⇒ ⌈10/4⌉ = 3 big-steps of μ=4 ⇒ 12.
	m := mk(t, Config{P: 10, Alpha: 4, Beta: 4, Gamma: 1, N: 10, Cells: 1})
	m.Phase(func(c *Ctx) { c.Write(0, NewInfo(int64(c.Proc()))) })
	ph := m.Report().Phases[0]
	if ph.BigSteps != 3 || ph.Time != 12 {
		t.Errorf("big-steps=%d time=%d, want 3/12", ph.BigSteps, ph.Time)
	}
}

func TestEmptyPhaseChargesOneBigStep(t *testing.T) {
	m := mk(t, Config{P: 2, Alpha: 3, Beta: 5, Gamma: 1, N: 2, Cells: 1})
	m.Phase(func(c *Ctx) {})
	ph := m.Report().Phases[0]
	if ph.BigSteps != 1 || ph.Time != 5 {
		t.Errorf("empty phase big-steps=%d time=%d, want 1/μ=5", ph.BigSteps, ph.Time)
	}
}

func TestReadWriteConflict(t *testing.T) {
	m := mk(t, Config{P: 2, Alpha: 1, Beta: 1, Gamma: 1, N: 2, Cells: 1})
	m.Phase(func(c *Ctx) {
		if c.Proc() == 0 {
			c.Read(0)
		} else {
			c.Write(0, NewInfo(1))
		}
	})
	if !errors.Is(m.Err(), ErrViolation) {
		t.Fatalf("Err = %v, want ErrViolation", m.Err())
	}
}

func TestOutOfRange(t *testing.T) {
	m := mk(t, Config{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 1, Cells: 1})
	m.Phase(func(c *Ctx) { c.Read(9) })
	if m.Err() == nil {
		t.Error("want out-of-range error")
	}
	m2 := mk(t, Config{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 1, Cells: 1})
	m2.Phase(func(c *Ctx) { c.Write(-3, nil) })
	if m2.Err() == nil {
		t.Error("want out-of-range error")
	}
}

func TestRoundClassification(t *testing.T) {
	// n=64, p=8, α=β=1 ⇒ μ=λ=1: budget = 4·64/8 = 32 time units. A phase
	// with m_rw = 8 (8 big-steps) is a round; one with contention 64 is not.
	m := mk(t, Config{P: 8, Alpha: 1, Beta: 1, Gamma: 1, N: 64, Cells: 70})
	m.Phase(func(c *Ctx) {
		for j := 0; j < 8; j++ {
			c.Read(c.Proc()*8 + j)
		}
	})
	m.Phase(func(c *Ctx) {
		for j := 0; j < 64; j++ {
			c.Write(64, NewInfo(int64(j)))
		}
	})
	r := m.Report()
	if !r.Phases[0].IsRound {
		t.Error("n/p-read phase should be a round")
	}
	if r.Phases[1].IsRound {
		t.Error("κ=512 phase should not be a round")
	}
}

// --- Claim 2.1 adapters ----------------------------------------------------

// runQSMTree runs a binary-tree OR on a QSM machine and returns the report.
func runQSMTree(t *testing.T, rule cost.Rule, n int, g int64) *cost.Report {
	t.Helper()
	m, err := qsm.New(qsm.Config{Rule: rule, P: n, G: g, N: n, MemCells: 4 * n})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, n)
	in[n-1] = 1
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	src, dst := 0, n
	for w := n; w > 1; w = (w + 1) / 2 {
		half := (w + 1) / 2
		s, d := src, dst
		width := w
		m.ForAll(half, func(c *qsm.Ctx) {
			a := c.Read(s + 2*c.Proc())
			var b int64
			if 2*c.Proc()+1 < width {
				b = c.Read(s + 2*c.Proc() + 1)
			}
			c.Op(1)
			v := int64(0)
			if a != 0 || b != 0 {
				v = 1
			}
			c.Write(d+c.Proc(), v)
		})
		src, dst = dst, dst+half
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	return m.Report()
}

func TestClaim21QSMEmulation(t *testing.T) {
	// Claim 2.1(1): T_QSM = Ω(T_GSM(n,1,g,1)): the GSM emulation of a QSM
	// run is never more than a constant factor above the QSM time.
	for _, g := range []int64{1, 2, 4, 8} {
		r := runQSMTree(t, cost.RuleQSM, 64, g)
		e := EmulateQSM(r)
		if int64(e) > 2*int64(r.TotalTime) {
			t.Errorf("g=%d: GSM emulation %d exceeds 2×QSM time %d", g, e, r.TotalTime)
		}
		if e <= 0 {
			t.Errorf("g=%d: non-positive emulated time %d", g, e)
		}
	}
}

func TestClaim21SQSMEmulation(t *testing.T) {
	// Claim 2.1(2): T_s-QSM = Ω(g·T_GSM(n,1,1,1)).
	for _, g := range []int64{1, 2, 4, 8} {
		r := runQSMTree(t, cost.RuleSQSM, 64, g)
		e := EmulateSQSM(r)
		if g*int64(e) > 2*int64(r.TotalTime) {
			t.Errorf("g=%d: g·GSM emulation %d exceeds 2×s-QSM time %d", g, g*int64(e), r.TotalTime)
		}
	}
}

func TestClaim21BSPEmulation(t *testing.T) {
	// Build a synthetic BSP report: supersteps with varying h-relations.
	r := &cost.Report{Model: "BSP", N: 64, Params: cost.Params{G: 2, L: 8, P: 8}}
	for _, h := range []int64{1, 4, 16, 3} {
		r.Add(cost.PhaseCost{MaxRW: h, Time: cost.Time(max(2*h, 8))})
	}
	e := EmulateBSP(r)
	// Claim 2.1(3): T_BSP = Ω(g·T_GSM(n, L/g, L/g, n/p)).
	if 2*int64(e) > 2*int64(r.TotalTime) {
		t.Errorf("g·GSM emulation %d exceeds 2×BSP time %d", 2*int64(e), r.TotalTime)
	}
}

// Property: for any synthetic QSM report, the GSM emulation never exceeds
// twice the QSM time — the constant-factor direction of Claim 2.1(1).
func TestClaim21EmulationProperty(t *testing.T) {
	f := func(phases []uint16, gRaw uint8) bool {
		g := int64(gRaw%15) + 1
		r := &cost.Report{Model: "QSM", N: 64, Params: cost.Params{G: g, P: 8}}
		for i, raw := range phases {
			if i >= 12 {
				break
			}
			mrw := int64(raw%64) + 1
			kappa := int64(raw/64%128) + 1
			time := cost.RuleQSM.PhaseTime(g, 0, 0, mrw, kappa, kappa)
			r.Add(cost.PhaseCost{MaxRW: mrw, Contention: kappa, Time: time})
		}
		if len(r.Phases) == 0 {
			return true
		}
		e := EmulateQSM(r)
		return int64(e) <= 2*int64(r.TotalTime)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGSMContentionDedup(t *testing.T) {
	m := mk(t, Config{P: 2, Alpha: 1, Beta: 1, Gamma: 1, N: 2, Cells: 4})
	m.Phase(func(c *Ctx) {
		if c.Proc() == 0 {
			c.Write(3, NewInfo(1))
			c.Write(3, NewInfo(2)) // same processor, same cell
		}
	})
	ph := m.Report().Phases[0]
	if ph.Contention != 1 {
		t.Errorf("κ = %d, want 1 (per-processor dedup)", ph.Contention)
	}
	if ph.MaxRW != 2 {
		t.Errorf("m_rw = %d, want 2", ph.MaxRW)
	}
	// Strong queuing still merges both writes' information.
	info := m.Peek(3)
	if !info.Contains(1) || !info.Contains(2) {
		t.Errorf("cell info = %v, want both atoms", info)
	}
}

// Claim 2.1 items 5–7 (rounds transfer): the rounds of a real QSM/s-QSM
// rounds computation, emulated on the GSM with the claimed parameters,
// remain GSM rounds.
func TestClaim21RoundsPreserved(t *testing.T) {
	// Build a rounds computation: fan-in n/p OR tree on p = n/8 procs.
	n, p, g := 1<<10, 1<<7, int64(4)
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: g, N: n, MemCells: 4 * n})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]int64, n)
	in[3] = 1
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	// Strided fan-in-8 tree (reads contention-free).
	cur, width := 0, n
	next := n
	for width > 1 {
		nw := (width + 7) / 8
		curL, widthL, nextL := cur, width, next
		m.Phase(func(c *qsm.Ctx) {
			for j := c.Proc(); j < nw; j += p {
				var s int64
				for i := 0; i < 8; i++ {
					ch := j*8 + i
					if ch >= widthL {
						break
					}
					if c.Read(curL+ch) != 0 {
						s = 1
					}
				}
				c.Write(nextL+j, s)
			}
		})
		cur, width, next = next, nw, next+nw
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	r := m.Report()
	if !r.AllRounds {
		t.Fatal("source computation must be in rounds")
	}
	// Claim 2.1(5): QSM rounds → GSM(1, g, 1) rounds.
	if !RoundsPreserved(r, 1, g, 1, 2) {
		t.Error("QSM rounds not preserved on GSM(1,g,1)")
	}
	// Claim 2.1(6): s-QSM rounds → GSM(1, 1, 1) rounds.
	if !RoundsPreserved(r, 1, 1, 1, 2) {
		t.Error("rounds not preserved on GSM(1,1,1)")
	}
	// A non-round-shaped report is rejected: synthetic phase with huge
	// contention marked (incorrectly) as a round must fail the budget.
	bad := &cost.Report{Model: "QSM", N: 64, Params: cost.Params{G: 1, P: 8}}
	bad.Add(cost.PhaseCost{MaxRW: 1, Contention: 10_000, Time: 1, IsRound: true})
	if RoundsPreserved(bad, 1, 1, 1, 2) {
		t.Error("huge-contention phase must break the GSM round budget")
	}
}
