// Package gsm implements the Generalized Shared Memory (GSM) model of
// MacKenzie & Ramachandran (SPAA 1998), Section 2.2 — the strengthened
// lower-bound model from which the paper derives its QSM, s-QSM and BSP
// bounds.
//
// The GSM differs from the QSM in three ways that make it strictly stronger:
//
//  1. Strong queuing: shared-memory cells hold arbitrarily large information
//     sets. When several processors write to one cell in a phase, ALL of the
//     written information is merged into the cell (nothing is lost).
//  2. Local computation is free: a phase consists only of reads and writes.
//  3. Cost is measured in big-steps of duration μ = max(α, β). A phase with
//     maximum per-processor reads/writes m_rw and maximum contention κ takes
//     b = max(⌈m_rw/α⌉, ⌈κ/β⌉) big-steps, i.e. time μ·b. A single big-step
//     "handles" α reads/writes per processor and β contention per cell.
//
// At the start of an algorithm each cell contains information about up to γ
// inputs (disjoint across cells).
//
// The phase lifecycle — dispatch, the deterministic sharded barrier merge,
// cost accounting and observer events — lives in internal/engine; this
// package is the model adapter binding that runtime to Info-valued cells,
// the strong-queuing merge commit and big-step accounting.
//
// The package also provides the Claim 2.1 emulation adapters: given the cost
// report of a QSM, s-QSM or BSP run, they compute the cost of executing the
// same computation on an appropriately-parameterised GSM, making the paper's
// lower-bound transfer argument an executable (and tested) statement.
package gsm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/engine"
)

// Info is the information content of a GSM cell: a sorted set of abstract
// information atoms (int64 tokens). The zero value is the empty set.
type Info []int64

// Contains reports whether the atom is in the set.
func (in Info) Contains(a int64) bool {
	i := sort.Search(len(in), func(i int) bool { return in[i] >= a })
	return i < len(in) && in[i] == a
}

// Merge returns the union of the two sets (strong queuing write rule).
func (in Info) Merge(other Info) Info {
	if len(other) == 0 {
		return in
	}
	if len(in) == 0 {
		return append(Info(nil), other...) //lint:hotpathalloc-ok information-set union returns a fresh set by contract: Info values are immutable and shared between cells
	}
	out := make(Info, 0, len(in)+len(other)) //lint:hotpathalloc-ok information-set union returns a fresh set by contract: Info values are immutable and shared between cells
	i, j := 0, 0
	for i < len(in) && j < len(other) {
		switch {
		case in[i] < other[j]:
			out = append(out, in[i]) //lint:hotpathalloc-ok append into the union buffer; capacity was reserved at make
			i++
		case in[i] > other[j]:
			out = append(out, other[j]) //lint:hotpathalloc-ok append into the union buffer; capacity was reserved at make
			j++
		default:
			out = append(out, in[i]) //lint:hotpathalloc-ok append into the union buffer; capacity was reserved at make
			i++
			j++
		}
	}
	out = append(out, in[i:]...) //lint:hotpathalloc-ok append into the union buffer; capacity was reserved at make
	out = append(out, other[j:]...) //lint:hotpathalloc-ok append into the union buffer; capacity was reserved at make
	return out
}

// NewInfo builds a normalised (sorted, deduplicated) information set.
func NewInfo(atoms ...int64) Info {
	if len(atoms) == 0 {
		return nil
	}
	s := append([]int64(nil), atoms...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, a := range s[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return Info(out)
}

// Machine is a GSM instance: the engine's shared-memory runtime over
// Info-valued cells with strong-queuing merge commit.
type Machine struct {
	engine.Mem[Info]
	trace *Trace
}

// Ctx is the per-processor handle inside a GSM phase (Proc, Read, Write;
// Op is admissible but free — GSM local computation costs nothing).
type Ctx = engine.MemCtx[Info]

// Config parameterises a GSM machine.
type Config struct {
	// P is the number of processors.
	P int
	// Alpha, Beta, Gamma are the GSM parameters (all ≥ 1).
	Alpha, Beta, Gamma int64
	// N is the input size, for round classification (a round is a phase of
	// time O(μn/(λp))).
	N int
	// Cells is the shared-memory size.
	Cells int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// New constructs a GSM machine with empty cells.
func New(c Config) (*Machine, error) {
	if c.Alpha < 1 || c.Beta < 1 || c.Gamma < 1 {
		return nil, fmt.Errorf("gsm: parameters must be ≥ 1: α=%d β=%d γ=%d",
			c.Alpha, c.Beta, c.Gamma)
	}
	p := cost.Params{G: 1, P: c.P, Alpha: c.Alpha, Beta: c.Beta, Gamma: c.Gamma}
	if err := engine.ValidateConfig("gsm", p, c.N, c.Cells, c.Workers, false); err != nil {
		return nil, err
	}
	m := &Machine{}
	m.InitMem(gsmModel{m}, p, c.N, c.Workers, c.Cells)
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// Mu and Lambda return the derived big-step parameters.
func (m *Machine) Mu() int64     { return m.Params().Mu() }
func (m *Machine) Lambda() int64 { return m.Params().Lambda() }

// Gamma returns the initial inputs-per-cell parameter.
func (m *Machine) Gamma() int64 { return m.Params().Gamma }

// LoadInputs places n input atoms into cells under the γ-per-cell initial
// distribution: cell i receives atoms for inputs [iγ, (i+1)γ). Atom encoding
// is inputAtom(index, value). Not charged.
func (m *Machine) LoadInputs(values []int64) error {
	if len(values) != m.N() {
		return fmt.Errorf("gsm: LoadInputs got %d values, want N=%d", len(values), m.N())
	}
	g := int(m.Gamma())
	cells := m.Data()
	need := (m.N() + g - 1) / g
	if need > len(cells) {
		return fmt.Errorf("gsm: %d cells needed for n=%d γ=%d, have %d",
			need, m.N(), g, len(cells))
	}
	for i, v := range values {
		c := i / g
		cells[c] = cells[c].Merge(NewInfo(InputAtom(i, v)))
	}
	return nil
}

// InputAtom encodes "input i has value v" as an information atom.
func InputAtom(i int, v int64) int64 { return int64(i)<<8 | (v & 0xff) }

// AtomInput decodes an input atom.
func AtomInput(a int64) (i int, v int64) { return int(a >> 8), a & 0xff }

// Peek returns the information set of a cell (host-side, not charged). An
// out-of-range address is a host-side bug: it records a machine error
// (first error wins) and returns nil, so algorithm mistakes cannot be
// masked by phantom empty sets.
func (m *Machine) Peek(addr int) Info {
	cells := m.Data()
	if addr < 0 || addr >= len(cells) {
		m.RecordErr(fmt.Errorf("gsm: Peek out of range: cell %d of %d", addr, len(cells)))
		return nil
	}
	return cells[addr] //lint:colescape-ok Peek hands out the committed cell's set; Info is immutable by convention (Merge copies on write)
}

// ErrViolation wraps GSM memory-access-rule violations.
var ErrViolation = errors.New("gsm: memory access rule violation")

// gsmGrain is the minimum processors-per-chunk before a GSM phase spawns
// worker goroutines: the proof-machinery enumerations run thousands of
// tiny-p machines, and those stay on the inline fast path.
const gsmGrain = 64

// gsmModel binds the engine's shared-memory runtime to the GSM:
// Info-valued cells, the strong-queuing merge commit, and big-step
// accounting.
type gsmModel struct{ m *Machine }

func (md gsmModel) Name() string     { return "GSM" }
func (md gsmModel) Entity() string   { return "processor" }
func (md gsmModel) Prefix() string   { return "gsm" }
func (md gsmModel) Violation() error { return ErrViolation }
func (md gsmModel) Grain() int       { return gsmGrain }

// Apply merges the phase's writes into the cells (strong queuing: set
// union is order-insensitive, so the merged contents are deterministic
// for every Workers setting).
func (md gsmModel) Apply(mem []Info, addrs []int32, vals []Info) {
	for j, a := range addrs {
		mem[a] = mem[a].Merge(vals[j])
	}
}

// Scrub drops Info references so retained buckets don't pin sets.
func (md gsmModel) Scrub(vals []Info) {
	for j := range vals {
		vals[j] = nil
	}
}

func (md gsmModel) Render(in Info) string { return infoKey(in) }

// PhaseCost charges μ · max(⌈m_rw/α⌉, ⌈κ/β⌉) big-steps (at least one,
// since computation is free but a phase is a unit).
func (md gsmModel) PhaseCost(o engine.Outcome) cost.PhaseCost {
	pr := md.m.Params()
	kappa := max(o.KRead, o.KWrite)
	bs := max(ceilDiv(o.MaxRW, pr.Alpha), ceilDiv(kappa, pr.Beta), 1)
	t := cost.Time(pr.Mu() * bs)
	return cost.PhaseCost{
		MaxRW:      o.MaxRW,
		Contention: kappa,
		BigSteps:   bs,
		Time:       t,
		IsRound:    t <= cost.GSMRoundBudget(pr, md.m.N()),
	}
}

// --- Claim 2.1 emulation adapters -----------------------------------------
//
// Each adapter takes the per-phase accounting of a run on a weaker model and
// computes the time the same computation would take on the GSM with the
// parameters named in Claim 2.1. The paper's claim is that the GSM time is
// at most a constant times the source-model time; tests assert it on real
// runs.

// EmulateQSM returns the GSM(n, α=1, β=g, γ=1) time of executing the phases
// of a QSM report. A QSM phase costing max(m_op, g·m_rw, κ) becomes a GSM
// phase of max(⌈m_rw/1⌉, ⌈κ/g⌉) big-steps of μ = g time.
func EmulateQSM(r *cost.Report) cost.Time {
	g := r.Params.G
	var total cost.Time
	for _, ph := range r.Phases {
		b := max(ph.MaxRW, ceilDiv(ph.Contention, g))
		if b < 1 {
			b = 1
		}
		total += cost.Time(g * b)
	}
	return total
}

// EmulateSQSM returns the GSM(n, α=1, β=1, γ=1) time of executing the phases
// of an s-QSM report; Claim 2.1(2) states T_s-QSM = Ω(g · T_GSM(n,1,1,1)).
func EmulateSQSM(r *cost.Report) cost.Time {
	var total cost.Time
	for _, ph := range r.Phases {
		b := max(ph.MaxRW, ph.Contention)
		if b < 1 {
			b = 1
		}
		total += cost.Time(b)
	}
	return total
}

// EmulateBSP returns the GSM(n, α=L/g, β=L/g, γ=n/p) time of executing the
// supersteps of a BSP report; Claim 2.1(3) states
// T_BSP = Ω(g · T_GSM(n, L/g, L/g, n/p)). Each superstep routing an
// h-relation becomes a phase with m_rw = κ = h.
func EmulateBSP(r *cost.Report) cost.Time {
	lg := r.Params.L / r.Params.G
	if lg < 1 {
		lg = 1
	}
	var total cost.Time
	for _, ph := range r.Phases {
		b := ceilDiv(ph.MaxRW, lg)
		if b < 1 {
			b = 1
		}
		total += cost.Time(lg * b)
	}
	return total
}

// RoundsPreserved checks the rounds half of Claim 2.1 (items 5–7) on a
// concrete run: every round of the source-model report, emulated on the
// GSM with the given parameters, still fits the GSM round budget (so the
// GSM round count is at most a constant times the source's). The per-phase
// emulated time is μ·max(⌈m_rw/α⌉, ⌈κ/β⌉); slack absorbs the claim's
// constant (a BSP round becomes ≤ 2 GSM rounds).
func RoundsPreserved(r *cost.Report, alpha, beta, gamma int64, slack int64) bool {
	pr := cost.Params{G: 1, P: r.Params.P, Alpha: alpha, Beta: beta, Gamma: gamma}
	budget := cost.Time(slack) * cost.GSMRoundBudget(pr, r.N)
	mu := pr.Mu()
	for _, ph := range r.Phases {
		if !ph.IsRound {
			continue // only rounds of the source must map to rounds
		}
		b := max(ceilDiv(ph.MaxRW, alpha), ceilDiv(ph.Contention, beta))
		if b < 1 {
			b = 1
		}
		if cost.Time(mu*b) > budget {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
