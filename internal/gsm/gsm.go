// Package gsm implements the Generalized Shared Memory (GSM) model of
// MacKenzie & Ramachandran (SPAA 1998), Section 2.2 — the strengthened
// lower-bound model from which the paper derives its QSM, s-QSM and BSP
// bounds.
//
// The GSM differs from the QSM in three ways that make it strictly stronger:
//
//  1. Strong queuing: shared-memory cells hold arbitrarily large information
//     sets. When several processors write to one cell in a phase, ALL of the
//     written information is merged into the cell (nothing is lost).
//  2. Local computation is free: a phase consists only of reads and writes.
//  3. Cost is measured in big-steps of duration μ = max(α, β). A phase with
//     maximum per-processor reads/writes m_rw and maximum contention κ takes
//     b = max(⌈m_rw/α⌉, ⌈κ/β⌉) big-steps, i.e. time μ·b. A single big-step
//     "handles" α reads/writes per processor and β contention per cell.
//
// At the start of an algorithm each cell contains information about up to γ
// inputs (disjoint across cells).
//
// The package also provides the Claim 2.1 emulation adapters: given the cost
// report of a QSM, s-QSM or BSP run, they compute the cost of executing the
// same computation on an appropriately-parameterised GSM, making the paper's
// lower-bound transfer argument an executable (and tested) statement.
package gsm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/sched"
)

// Info is the information content of a GSM cell: a sorted set of abstract
// information atoms (int64 tokens). The zero value is the empty set.
type Info []int64

// Contains reports whether the atom is in the set.
func (in Info) Contains(a int64) bool {
	i := sort.Search(len(in), func(i int) bool { return in[i] >= a })
	return i < len(in) && in[i] == a
}

// Merge returns the union of the two sets (strong queuing write rule).
func (in Info) Merge(other Info) Info {
	if len(other) == 0 {
		return in
	}
	if len(in) == 0 {
		return append(Info(nil), other...)
	}
	out := make(Info, 0, len(in)+len(other))
	i, j := 0, 0
	for i < len(in) && j < len(other) {
		switch {
		case in[i] < other[j]:
			out = append(out, in[i])
			i++
		case in[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, in[i])
			i++
			j++
		}
	}
	out = append(out, in[i:]...)
	out = append(out, other[j:]...)
	return out
}

// NewInfo builds a normalised (sorted, deduplicated) information set.
func NewInfo(atoms ...int64) Info {
	if len(atoms) == 0 {
		return nil
	}
	s := append([]int64(nil), atoms...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, a := range s[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return Info(out)
}

// Machine is a GSM instance.
type Machine struct {
	params cost.Params
	n      int
	cells  []Info
	report cost.Report
	err    error
	trace  *Trace

	// workers bounds phase-execution parallelism; defaults to GOMAXPROCS.
	// Small machines (the proof-machinery enumerations) still run their
	// bodies inline: parallelism kicks in at gsmGrain processors per chunk.
	workers int

	// ctxs is the per-machine free list of phase contexts, reset and
	// reused every phase so request buffers keep their capacity.
	ctxs []*Ctx
	// failN/fail1 are per-chunk failure tallies (count, first failing
	// processor index or -1), collected during body dispatch.
	failN, fail1 []int32
	// cb holds the reusable scratch of the sharded commit pipeline.
	cb commitBuf
}

// Config parameterises a GSM machine.
type Config struct {
	// P is the number of processors.
	P int
	// Alpha, Beta, Gamma are the GSM parameters (all ≥ 1).
	Alpha, Beta, Gamma int64
	// N is the input size, for round classification (a round is a phase of
	// time O(μn/(λp))).
	N int
	// Cells is the shared-memory size.
	Cells int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// New constructs a GSM machine with empty cells.
func New(c Config) (*Machine, error) {
	if c.Alpha < 1 || c.Beta < 1 || c.Gamma < 1 {
		return nil, fmt.Errorf("gsm: parameters must be ≥ 1: α=%d β=%d γ=%d",
			c.Alpha, c.Beta, c.Gamma)
	}
	p := cost.Params{G: 1, P: c.P, Alpha: c.Alpha, Beta: c.Beta, Gamma: c.Gamma}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.N < 1 {
		return nil, fmt.Errorf("gsm: input size N must be ≥ 1, got %d", c.N)
	}
	if c.Cells < 0 {
		return nil, fmt.Errorf("gsm: negative cell count %d", c.Cells)
	}
	m := &Machine{
		params:  p,
		n:       c.N,
		cells:   make([]Info, c.Cells),
		workers: sched.Workers(c.Workers),
	}
	m.report = cost.Report{Model: "GSM", N: c.N, Params: p}
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the processor count; Mu and Lambda the derived step parameters.
func (m *Machine) P() int        { return m.params.P }
func (m *Machine) Mu() int64     { return m.params.Mu() }
func (m *Machine) Lambda() int64 { return m.params.Lambda() }

// Gamma returns the initial inputs-per-cell parameter.
func (m *Machine) Gamma() int64 { return m.params.Gamma }

// Err returns the first model violation, if any.
func (m *Machine) Err() error { return m.err }

// Report returns the accumulated cost report.
func (m *Machine) Report() *cost.Report { return &m.report }

// LoadInputs places n input atoms into cells under the γ-per-cell initial
// distribution: cell i receives atoms for inputs [iγ, (i+1)γ). Atom encoding
// is inputAtom(index, value). Not charged.
func (m *Machine) LoadInputs(values []int64) error {
	if len(values) != m.n {
		return fmt.Errorf("gsm: LoadInputs got %d values, want N=%d", len(values), m.n)
	}
	g := int(m.params.Gamma)
	need := (m.n + g - 1) / g
	if need > len(m.cells) {
		return fmt.Errorf("gsm: %d cells needed for n=%d γ=%d, have %d",
			need, m.n, g, len(m.cells))
	}
	for i, v := range values {
		c := i / g
		m.cells[c] = m.cells[c].Merge(NewInfo(InputAtom(i, v)))
	}
	return nil
}

// InputAtom encodes "input i has value v" as an information atom.
func InputAtom(i int, v int64) int64 { return int64(i)<<8 | (v & 0xff) }

// AtomInput decodes an input atom.
func AtomInput(a int64) (i int, v int64) { return int(a >> 8), a & 0xff }

// Grow extends the shared memory to at least size cells (empty). Address
// space is free in the model.
func (m *Machine) Grow(size int) {
	for len(m.cells) < size {
		m.cells = append(m.cells, nil)
	}
}

// MemSize returns the current cell count.
func (m *Machine) MemSize() int { return len(m.cells) }

// Peek returns the information set of a cell (host-side, not charged). An
// out-of-range address is a host-side bug: it records a machine error
// (first error wins) and returns nil, so algorithm mistakes cannot be
// masked by phantom empty sets.
func (m *Machine) Peek(addr int) Info {
	if addr < 0 || addr >= len(m.cells) {
		m.recordErr(fmt.Errorf("gsm: Peek out of range: cell %d of %d", addr, len(m.cells)))
		return nil
	}
	return m.cells[addr]
}

// recordErr poisons the machine with the first host-side error observed.
func (m *Machine) recordErr(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Ctx is the per-processor handle inside a GSM phase.
type Ctx struct {
	proc  int
	m     *Machine
	reads int64
	wrs   int64

	readAddrs  []int32
	writeAddrs []int32
	writeInfo  []Info
	fail       error
}

// Proc returns the processor index.
func (c *Ctx) Proc() int { return c.proc }

// Read returns the information set of the cell as of the start of the phase
// and charges one read.
func (c *Ctx) Read(addr int) Info {
	if addr < 0 || addr >= len(c.m.cells) {
		c.failf("read out of range: cell %d of %d", addr, len(c.m.cells))
		return nil
	}
	c.reads++
	c.readAddrs = append(c.readAddrs, int32(addr))
	return c.m.cells[addr]
}

// Write merges info into the cell at the phase barrier (strong queuing: no
// written information is ever lost) and charges one write.
func (c *Ctx) Write(addr int, info Info) {
	if addr < 0 || addr >= len(c.m.cells) {
		c.failf("write out of range: cell %d of %d", addr, len(c.m.cells))
		return
	}
	c.wrs++
	c.writeAddrs = append(c.writeAddrs, int32(addr))
	c.writeInfo = append(c.writeInfo, info)
}

func (c *Ctx) failf(format string, args ...any) {
	if c.fail == nil {
		c.fail = fmt.Errorf("gsm: proc %d: "+format, append([]any{c.proc}, args...)...)
	}
}

// ErrViolation wraps GSM memory-access-rule violations.
var ErrViolation = errors.New("gsm: memory access rule violation")

// gsmGrain is the minimum processors-per-chunk before a GSM phase spawns
// worker goroutines: the proof-machinery enumerations run thousands of
// tiny-p machines, and those stay on the inline fast path.
const gsmGrain = 64

// phaseWorkers returns the effective worker count for this machine's p.
func (m *Machine) phaseWorkers() int {
	return min(m.workers, (m.params.P+gsmGrain-1)/gsmGrain)
}

// Phase runs one GSM phase: body is invoked once per processor
// (concurrently over contiguous chunks for large machines, inline for the
// small proof-machinery runs), and requests are merged at the barrier by
// the sharded commit pipeline — results and traces are identical for every
// Workers setting. The phase is charged μ · max(⌈m_rw/α⌉, ⌈κ/β⌉) big-steps
// (at least one, since computation is free but a phase is a unit).
func (m *Machine) Phase(body func(c *Ctx)) {
	if m.err != nil {
		return
	}
	p := m.params.P
	if m.ctxs == nil {
		m.ctxs = make([]*Ctx, p)
		for i := range m.ctxs {
			m.ctxs[i] = &Ctx{proc: i, m: m}
		}
	}
	// Failure detection rides along with the body dispatch (the ctxs are
	// cache-hot here), recorded per chunk and merged in commit.
	workers := m.phaseWorkers()
	nb := sched.NumBlocks(workers, p)
	if len(m.failN) < nb {
		m.failN = make([]int32, nb)
		m.fail1 = make([]int32, nb)
	}
	sched.Blocks(workers, p, func(w, lo, hi int) {
		var nf, first int32 = 0, -1
		for i := lo; i < hi; i++ {
			c := m.ctxs[i]
			c.reset()
			body(c)
			if c.fail != nil {
				if first < 0 {
					first = int32(i)
				}
				nf++
			}
		}
		m.failN[w], m.fail1[w] = nf, first
	})
	m.commit(m.ctxs)
}

func (c *Ctx) reset() {
	c.reads, c.wrs = 0, 0
	c.readAddrs = c.readAddrs[:0]
	c.writeAddrs = c.writeAddrs[:0]
	c.writeInfo = c.writeInfo[:0]
	c.fail = nil
}

// commitBuf is the reusable scratch of the sharded phase commit — the GSM
// variant of the pipeline in internal/qsm: requests bucketed by address
// shard in processor order, then per-shard contention counting over the
// count/last scratch arrays (+readers/−writers and the processor dedup
// mark, zeroed via the touched lists after every phase).
type commitBuf struct {
	rAddr, rProc [][]int32
	wAddr, wProc [][]int32
	wInfo        [][]Info
	mRW          []int64
	kappa        []int64
	viol         []int32
	count, last  []int32
	touched      [][]int32
}

func (b *commitBuf) ensure(memSize, workers, p int) (sh sched.Sharding, nm int) {
	nm = sched.NumBlocks(workers, p)
	sh = sched.NewSharding(memSize, workers)
	if nb := nm * sh.N; len(b.rAddr) < nb {
		b.rAddr = growSlices(b.rAddr, nb)
		b.rProc = growSlices(b.rProc, nb)
		b.wAddr = growSlices(b.wAddr, nb)
		b.wProc = growSlices(b.wProc, nb)
		b.wInfo = growSlices(b.wInfo, nb)
	}
	if len(b.mRW) < nm {
		b.mRW = make([]int64, nm)
	}
	if len(b.kappa) < sh.N {
		b.kappa = make([]int64, sh.N)
		b.viol = make([]int32, sh.N)
		b.touched = growSlices(b.touched, sh.N)
	}
	if len(b.count) < memSize {
		b.count = make([]int32, memSize)
		b.last = make([]int32, memSize)
	}
	return sh, nm
}

func growSlices[T any](s [][]T, n int) [][]T {
	for len(s) < n {
		s = append(s, nil)
	}
	return s
}

func (m *Machine) commit(ctxs []*Ctx) {
	// Failed processors short-circuit the commit: nothing is counted and
	// nothing merges. The first error in processor order wins; the number
	// of other failing processors is preserved in the message. The
	// per-chunk tallies were collected during body dispatch in Phase.
	nfail, firstIdx := 0, -1
	for w := 0; w < sched.NumBlocks(m.phaseWorkers(), len(ctxs)); w++ {
		if m.failN[w] > 0 {
			if firstIdx < 0 {
				firstIdx = int(m.fail1[w])
			}
			nfail += int(m.failN[w])
		}
	}
	if nfail > 0 {
		first := ctxs[firstIdx].fail
		if nfail > 1 {
			m.err = fmt.Errorf("%w (and %d other processors failed)", first, nfail-1)
		} else {
			m.err = first
		}
		return
	}

	workers := m.phaseWorkers()
	b := &m.cb
	sh, nm := b.ensure(len(m.cells), workers, len(ctxs))
	ns := sh.N

	// Pass 1: per-chunk m_rw maxima + requests bucketed by address shard.
	sched.Blocks(workers, len(ctxs), func(w, lo, hi int) {
		var mRW int64
		base := w * ns
		for i := lo; i < hi; i++ {
			c := ctxs[i]
			mRW = max(mRW, c.reads, c.wrs)
			proc := int32(i)
			for _, a := range c.readAddrs {
				k := base + sh.Shard(a)
				b.rAddr[k] = append(b.rAddr[k], a)
				b.rProc[k] = append(b.rProc[k], proc)
			}
			for j, a := range c.writeAddrs {
				k := base + sh.Shard(a)
				b.wAddr[k] = append(b.wAddr[k], a)
				b.wProc[k] = append(b.wProc[k], proc)
				b.wInfo[k] = append(b.wInfo[k], c.writeInfo[j])
			}
		}
		b.mRW[w] = mRW
	})

	// Pass 2: per-shard contention counting and violation detection.
	// κ counts processors per cell (paper definition): duplicate requests
	// by one processor dedupe via the last mark (they still count toward
	// its m_rw). Reads scan before writes within a shard, so a positive
	// count at a written cell means a forbidden read+write mix.
	sched.Blocks(workers, ns, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			var kappa int64
			viol := int32(-1)
			touched := b.touched[s][:0]
			for w := 0; w < nm; w++ {
				k := w*ns + s
				procs := b.rProc[k]
				for j, a := range b.rAddr[k] {
					pr := procs[j] + 1
					if b.last[a] == pr {
						continue
					}
					b.last[a] = pr
					if b.count[a] == 0 {
						touched = append(touched, a)
					}
					b.count[a]++
					kappa = max(kappa, int64(b.count[a]))
				}
			}
			for w := 0; w < nm; w++ {
				k := w*ns + s
				procs := b.wProc[k]
				for j, a := range b.wAddr[k] {
					if b.count[a] > 0 {
						if viol < 0 || a < viol {
							viol = a
						}
						continue
					}
					pr := -(procs[j] + 1)
					if b.last[a] == pr {
						continue
					}
					b.last[a] = pr
					if b.count[a] == 0 {
						touched = append(touched, a)
					}
					b.count[a]--
					kappa = max(kappa, int64(-b.count[a]))
				}
			}
			b.kappa[s], b.viol[s] = kappa, viol
			b.touched[s] = touched
		}
	})

	var mRW, kappa int64
	for w := 0; w < nm; w++ {
		mRW = max(mRW, b.mRW[w])
	}
	violAddr := int32(-1)
	for s := 0; s < ns; s++ {
		kappa = max(kappa, b.kappa[s])
		if b.viol[s] >= 0 && (violAddr < 0 || b.viol[s] < violAddr) {
			violAddr = b.viol[s]
		}
	}
	if violAddr >= 0 {
		m.err = fmt.Errorf("%w: cell %d both read and written in phase %d",
			ErrViolation, violAddr, m.report.NumPhases())
		m.finishCommit(workers, nm, ns, false)
		return
	}

	bs := max(ceilDiv(mRW, m.params.Alpha), ceilDiv(kappa, m.params.Beta), 1)
	t := cost.Time(m.params.Mu() * bs)
	m.report.Add(cost.PhaseCost{
		MaxRW:      mRW,
		Contention: kappa,
		BigSteps:   bs,
		Time:       t,
		IsRound:    t <= cost.GSMRoundBudget(m.params, m.n),
	})
	if m.trace != nil {
		m.trace.recordReads(m, ctxs)
	}
	m.finishCommit(workers, nm, ns, true)
	if m.trace != nil {
		m.trace.recordCells(m)
	}
}

// finishCommit merges the phase's writes into the cells (strong queuing:
// set union is order-insensitive, so the merged contents are deterministic
// for every Workers setting) and zeroes the scratch for the next phase.
func (m *Machine) finishCommit(workers, nm, ns int, applyWrites bool) {
	b := &m.cb
	sched.Blocks(workers, ns, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			for w := 0; w < nm; w++ {
				k := w*ns + s
				if applyWrites {
					infos := b.wInfo[k]
					for j, a := range b.wAddr[k] {
						m.cells[a] = m.cells[a].Merge(infos[j])
					}
				}
				b.rAddr[k] = b.rAddr[k][:0]
				b.rProc[k] = b.rProc[k][:0]
				b.wAddr[k] = b.wAddr[k][:0]
				b.wProc[k] = b.wProc[k][:0]
				// Drop Info references so retained buckets don't pin sets.
				infos := b.wInfo[k]
				for j := range infos {
					infos[j] = nil
				}
				b.wInfo[k] = infos[:0]
			}
			for _, a := range b.touched[s] {
				b.count[a] = 0
				b.last[a] = 0
			}
			b.touched[s] = b.touched[s][:0]
		}
	})
}

// --- Claim 2.1 emulation adapters -----------------------------------------
//
// Each adapter takes the per-phase accounting of a run on a weaker model and
// computes the time the same computation would take on the GSM with the
// parameters named in Claim 2.1. The paper's claim is that the GSM time is
// at most a constant times the source-model time; tests assert it on real
// runs.

// EmulateQSM returns the GSM(n, α=1, β=g, γ=1) time of executing the phases
// of a QSM report. A QSM phase costing max(m_op, g·m_rw, κ) becomes a GSM
// phase of max(⌈m_rw/1⌉, ⌈κ/g⌉) big-steps of μ = g time.
func EmulateQSM(r *cost.Report) cost.Time {
	g := r.Params.G
	var total cost.Time
	for _, ph := range r.Phases {
		b := max(ph.MaxRW, ceilDiv(ph.Contention, g))
		if b < 1 {
			b = 1
		}
		total += cost.Time(g * b)
	}
	return total
}

// EmulateSQSM returns the GSM(n, α=1, β=1, γ=1) time of executing the phases
// of an s-QSM report; Claim 2.1(2) states T_s-QSM = Ω(g · T_GSM(n,1,1,1)).
func EmulateSQSM(r *cost.Report) cost.Time {
	var total cost.Time
	for _, ph := range r.Phases {
		b := max(ph.MaxRW, ph.Contention)
		if b < 1 {
			b = 1
		}
		total += cost.Time(b)
	}
	return total
}

// EmulateBSP returns the GSM(n, α=L/g, β=L/g, γ=n/p) time of executing the
// supersteps of a BSP report; Claim 2.1(3) states
// T_BSP = Ω(g · T_GSM(n, L/g, L/g, n/p)). Each superstep routing an
// h-relation becomes a phase with m_rw = κ = h.
func EmulateBSP(r *cost.Report) cost.Time {
	lg := r.Params.L / r.Params.G
	if lg < 1 {
		lg = 1
	}
	var total cost.Time
	for _, ph := range r.Phases {
		b := ceilDiv(ph.MaxRW, lg)
		if b < 1 {
			b = 1
		}
		total += cost.Time(lg * b)
	}
	return total
}

// RoundsPreserved checks the rounds half of Claim 2.1 (items 5–7) on a
// concrete run: every round of the source-model report, emulated on the
// GSM with the given parameters, still fits the GSM round budget (so the
// GSM round count is at most a constant times the source's). The per-phase
// emulated time is μ·max(⌈m_rw/α⌉, ⌈κ/β⌉); slack absorbs the claim's
// constant (a BSP round becomes ≤ 2 GSM rounds).
func RoundsPreserved(r *cost.Report, alpha, beta, gamma int64, slack int64) bool {
	pr := cost.Params{G: 1, P: r.Params.P, Alpha: alpha, Beta: beta, Gamma: gamma}
	budget := cost.Time(slack) * cost.GSMRoundBudget(pr, r.N)
	mu := pr.Mu()
	for _, ph := range r.Phases {
		if !ph.IsRound {
			continue // only rounds of the source must map to rounds
		}
		b := max(ceilDiv(ph.MaxRW, alpha), ceilDiv(ph.Contention, beta))
		if b < 1 {
			b = 1
		}
		if cost.Time(mu*b) > budget {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}
