// Package gsm implements the Generalized Shared Memory (GSM) model of
// MacKenzie & Ramachandran (SPAA 1998), Section 2.2 — the strengthened
// lower-bound model from which the paper derives its QSM, s-QSM and BSP
// bounds.
//
// The GSM differs from the QSM in three ways that make it strictly stronger:
//
//  1. Strong queuing: shared-memory cells hold arbitrarily large information
//     sets. When several processors write to one cell in a phase, ALL of the
//     written information is merged into the cell (nothing is lost).
//  2. Local computation is free: a phase consists only of reads and writes.
//  3. Cost is measured in big-steps of duration μ = max(α, β). A phase with
//     maximum per-processor reads/writes m_rw and maximum contention κ takes
//     b = max(⌈m_rw/α⌉, ⌈κ/β⌉) big-steps, i.e. time μ·b. A single big-step
//     "handles" α reads/writes per processor and β contention per cell.
//
// At the start of an algorithm each cell contains information about up to γ
// inputs (disjoint across cells).
//
// The package also provides the Claim 2.1 emulation adapters: given the cost
// report of a QSM, s-QSM or BSP run, they compute the cost of executing the
// same computation on an appropriately-parameterised GSM, making the paper's
// lower-bound transfer argument an executable (and tested) statement.
package gsm

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
)

// Info is the information content of a GSM cell: a sorted set of abstract
// information atoms (int64 tokens). The zero value is the empty set.
type Info []int64

// Contains reports whether the atom is in the set.
func (in Info) Contains(a int64) bool {
	i := sort.Search(len(in), func(i int) bool { return in[i] >= a })
	return i < len(in) && in[i] == a
}

// Merge returns the union of the two sets (strong queuing write rule).
func (in Info) Merge(other Info) Info {
	if len(other) == 0 {
		return in
	}
	if len(in) == 0 {
		return append(Info(nil), other...)
	}
	out := make(Info, 0, len(in)+len(other))
	i, j := 0, 0
	for i < len(in) && j < len(other) {
		switch {
		case in[i] < other[j]:
			out = append(out, in[i])
			i++
		case in[i] > other[j]:
			out = append(out, other[j])
			j++
		default:
			out = append(out, in[i])
			i++
			j++
		}
	}
	out = append(out, in[i:]...)
	out = append(out, other[j:]...)
	return out
}

// NewInfo builds a normalised (sorted, deduplicated) information set.
func NewInfo(atoms ...int64) Info {
	if len(atoms) == 0 {
		return nil
	}
	s := append([]int64(nil), atoms...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, a := range s[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return Info(out)
}

// Machine is a GSM instance.
type Machine struct {
	params cost.Params
	n      int
	cells  []Info
	report cost.Report
	err    error
	trace  *Trace
}

// Config parameterises a GSM machine.
type Config struct {
	// P is the number of processors.
	P int
	// Alpha, Beta, Gamma are the GSM parameters (all ≥ 1).
	Alpha, Beta, Gamma int64
	// N is the input size, for round classification (a round is a phase of
	// time O(μn/(λp))).
	N int
	// Cells is the shared-memory size.
	Cells int
}

// New constructs a GSM machine with empty cells.
func New(c Config) (*Machine, error) {
	if c.Alpha < 1 || c.Beta < 1 || c.Gamma < 1 {
		return nil, fmt.Errorf("gsm: parameters must be ≥ 1: α=%d β=%d γ=%d",
			c.Alpha, c.Beta, c.Gamma)
	}
	p := cost.Params{G: 1, P: c.P, Alpha: c.Alpha, Beta: c.Beta, Gamma: c.Gamma}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.N < 1 {
		return nil, fmt.Errorf("gsm: input size N must be ≥ 1, got %d", c.N)
	}
	if c.Cells < 0 {
		return nil, fmt.Errorf("gsm: negative cell count %d", c.Cells)
	}
	m := &Machine{params: p, n: c.N, cells: make([]Info, c.Cells)}
	m.report = cost.Report{Model: "GSM", N: c.N, Params: p}
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the processor count; Mu and Lambda the derived step parameters.
func (m *Machine) P() int        { return m.params.P }
func (m *Machine) Mu() int64     { return m.params.Mu() }
func (m *Machine) Lambda() int64 { return m.params.Lambda() }

// Gamma returns the initial inputs-per-cell parameter.
func (m *Machine) Gamma() int64 { return m.params.Gamma }

// Err returns the first model violation, if any.
func (m *Machine) Err() error { return m.err }

// Report returns the accumulated cost report.
func (m *Machine) Report() *cost.Report { return &m.report }

// LoadInputs places n input atoms into cells under the γ-per-cell initial
// distribution: cell i receives atoms for inputs [iγ, (i+1)γ). Atom encoding
// is inputAtom(index, value). Not charged.
func (m *Machine) LoadInputs(values []int64) error {
	if len(values) != m.n {
		return fmt.Errorf("gsm: LoadInputs got %d values, want N=%d", len(values), m.n)
	}
	g := int(m.params.Gamma)
	need := (m.n + g - 1) / g
	if need > len(m.cells) {
		return fmt.Errorf("gsm: %d cells needed for n=%d γ=%d, have %d",
			need, m.n, g, len(m.cells))
	}
	for i, v := range values {
		c := i / g
		m.cells[c] = m.cells[c].Merge(NewInfo(InputAtom(i, v)))
	}
	return nil
}

// InputAtom encodes "input i has value v" as an information atom.
func InputAtom(i int, v int64) int64 { return int64(i)<<8 | (v & 0xff) }

// AtomInput decodes an input atom.
func AtomInput(a int64) (i int, v int64) { return int(a >> 8), a & 0xff }

// Grow extends the shared memory to at least size cells (empty). Address
// space is free in the model.
func (m *Machine) Grow(size int) {
	for len(m.cells) < size {
		m.cells = append(m.cells, nil)
	}
}

// MemSize returns the current cell count.
func (m *Machine) MemSize() int { return len(m.cells) }

// Peek returns the information set of a cell (host-side, not charged).
func (m *Machine) Peek(addr int) Info {
	if addr < 0 || addr >= len(m.cells) {
		return nil
	}
	return m.cells[addr]
}

// Ctx is the per-processor handle inside a GSM phase.
type Ctx struct {
	proc  int
	m     *Machine
	reads int64
	wrs   int64

	readAddrs  []int32
	writeAddrs []int32
	writeInfo  []Info
	fail       error
}

// Proc returns the processor index.
func (c *Ctx) Proc() int { return c.proc }

// Read returns the information set of the cell as of the start of the phase
// and charges one read.
func (c *Ctx) Read(addr int) Info {
	if addr < 0 || addr >= len(c.m.cells) {
		c.failf("read out of range: cell %d of %d", addr, len(c.m.cells))
		return nil
	}
	c.reads++
	c.readAddrs = append(c.readAddrs, int32(addr))
	return c.m.cells[addr]
}

// Write merges info into the cell at the phase barrier (strong queuing: no
// written information is ever lost) and charges one write.
func (c *Ctx) Write(addr int, info Info) {
	if addr < 0 || addr >= len(c.m.cells) {
		c.failf("write out of range: cell %d of %d", addr, len(c.m.cells))
		return
	}
	c.wrs++
	c.writeAddrs = append(c.writeAddrs, int32(addr))
	c.writeInfo = append(c.writeInfo, info)
}

func (c *Ctx) failf(format string, args ...any) {
	if c.fail == nil {
		c.fail = fmt.Errorf("gsm: proc %d: "+format, append([]any{c.proc}, args...)...)
	}
}

// ErrViolation wraps GSM memory-access-rule violations.
var ErrViolation = errors.New("gsm: memory access rule violation")

// Phase runs one GSM phase sequentially over processors (GSM runs are used
// for small-n proof-machinery experiments, so the simple loop keeps traces
// exactly reproducible). The phase is charged μ · max(⌈m_rw/α⌉, ⌈κ/β⌉)
// big-steps (at least one, since computation is free but a phase is a unit).
func (m *Machine) Phase(body func(c *Ctx)) {
	if m.err != nil {
		return
	}
	ctxs := make([]*Ctx, m.params.P)
	for i := range ctxs {
		c := &Ctx{proc: i, m: m}
		body(c)
		ctxs[i] = c
	}
	m.commit(ctxs)
}

func (m *Machine) commit(ctxs []*Ctx) {
	var mRW int64
	readCount := make(map[int32]int64)
	writeCount := make(map[int32]int64)
	pending := make(map[int32]Info)

	// κ counts processors per cell (paper definition): duplicate requests
	// by one processor to one cell dedupe for contention, not for m_rw.
	for _, c := range ctxs {
		if c.fail != nil && m.err == nil {
			m.err = c.fail
		}
		rw := c.reads
		if c.wrs > rw {
			rw = c.wrs
		}
		if rw > mRW {
			mRW = rw
		}
		var seen map[int32]bool
		if len(c.readAddrs)+len(c.writeAddrs) > 1 {
			seen = make(map[int32]bool, len(c.readAddrs)+len(c.writeAddrs))
		}
		for _, a := range c.readAddrs {
			if seen != nil {
				if seen[a] {
					continue
				}
				seen[a] = true
			}
			readCount[a]++
		}
		for j, a := range c.writeAddrs {
			pending[a] = pending[a].Merge(c.writeInfo[j])
			if seen != nil {
				if seen[^a] {
					continue
				}
				seen[^a] = true
			}
			writeCount[a]++
		}
	}
	if m.err != nil {
		return
	}
	var kappa int64
	for a, n := range readCount {
		if n > kappa {
			kappa = n
		}
		if _, clash := writeCount[a]; clash {
			m.err = fmt.Errorf("%w: cell %d both read and written in phase %d",
				ErrViolation, a, m.report.NumPhases())
			return
		}
	}
	for _, n := range writeCount {
		if n > kappa {
			kappa = n
		}
	}

	b := maxI64(ceilDiv(mRW, m.params.Alpha), ceilDiv(kappa, m.params.Beta))
	if b < 1 {
		b = 1
	}
	t := cost.Time(m.params.Mu() * b)
	m.report.Add(cost.PhaseCost{
		MaxRW:      mRW,
		Contention: kappa,
		BigSteps:   b,
		Time:       t,
		IsRound:    t <= cost.GSMRoundBudget(m.params, m.n),
	})
	if m.trace != nil {
		m.trace.recordReads(m, ctxs)
	}
	for a, info := range pending {
		m.cells[a] = m.cells[a].Merge(info)
	}
	if m.trace != nil {
		m.trace.recordCells(m)
	}
}

// --- Claim 2.1 emulation adapters -----------------------------------------
//
// Each adapter takes the per-phase accounting of a run on a weaker model and
// computes the time the same computation would take on the GSM with the
// parameters named in Claim 2.1. The paper's claim is that the GSM time is
// at most a constant times the source-model time; tests assert it on real
// runs.

// EmulateQSM returns the GSM(n, α=1, β=g, γ=1) time of executing the phases
// of a QSM report. A QSM phase costing max(m_op, g·m_rw, κ) becomes a GSM
// phase of max(⌈m_rw/1⌉, ⌈κ/g⌉) big-steps of μ = g time.
func EmulateQSM(r *cost.Report) cost.Time {
	g := r.Params.G
	var total cost.Time
	for _, ph := range r.Phases {
		b := maxI64(ph.MaxRW, ceilDiv(ph.Contention, g))
		if b < 1 {
			b = 1
		}
		total += cost.Time(g * b)
	}
	return total
}

// EmulateSQSM returns the GSM(n, α=1, β=1, γ=1) time of executing the phases
// of an s-QSM report; Claim 2.1(2) states T_s-QSM = Ω(g · T_GSM(n,1,1,1)).
func EmulateSQSM(r *cost.Report) cost.Time {
	var total cost.Time
	for _, ph := range r.Phases {
		b := maxI64(ph.MaxRW, ph.Contention)
		if b < 1 {
			b = 1
		}
		total += cost.Time(b)
	}
	return total
}

// EmulateBSP returns the GSM(n, α=L/g, β=L/g, γ=n/p) time of executing the
// supersteps of a BSP report; Claim 2.1(3) states
// T_BSP = Ω(g · T_GSM(n, L/g, L/g, n/p)). Each superstep routing an
// h-relation becomes a phase with m_rw = κ = h.
func EmulateBSP(r *cost.Report) cost.Time {
	lg := r.Params.L / r.Params.G
	if lg < 1 {
		lg = 1
	}
	var total cost.Time
	for _, ph := range r.Phases {
		b := ceilDiv(ph.MaxRW, lg)
		if b < 1 {
			b = 1
		}
		total += cost.Time(lg * b)
	}
	return total
}

// RoundsPreserved checks the rounds half of Claim 2.1 (items 5–7) on a
// concrete run: every round of the source-model report, emulated on the
// GSM with the given parameters, still fits the GSM round budget (so the
// GSM round count is at most a constant times the source's). The per-phase
// emulated time is μ·max(⌈m_rw/α⌉, ⌈κ/β⌉); slack absorbs the claim's
// constant (a BSP round becomes ≤ 2 GSM rounds).
func RoundsPreserved(r *cost.Report, alpha, beta, gamma int64, slack int64) bool {
	pr := cost.Params{G: 1, P: r.Params.P, Alpha: alpha, Beta: beta, Gamma: gamma}
	budget := cost.Time(slack) * cost.GSMRoundBudget(pr, r.N)
	mu := pr.Mu()
	for _, ph := range r.Phases {
		if !ph.IsRound {
			continue // only rounds of the source must map to rounds
		}
		b := maxI64(ceilDiv(ph.MaxRW, alpha), ceilDiv(ph.Contention, beta))
		if b < 1 {
			b = 1
		}
		if cost.Time(mu*b) > budget {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
