package gsm

import (
	"testing"
)

// tracedRun executes a two-phase program: processor j reads cell j, then
// writes its info to cell n+j.
func tracedRun(t *testing.T, bits []int64) *Machine {
	t.Helper()
	n := len(bits)
	m, err := New(Config{P: n, Alpha: 1, Beta: 1, Gamma: 1, N: n, Cells: 2 * n})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTracing()
	if err := m.LoadInputs(bits); err != nil {
		t.Fatal(err)
	}
	vals := make([]Info, n)
	m.Phase(func(c *Ctx) { vals[c.Proc()] = c.Read(c.Proc()) })
	m.Phase(func(c *Ctx) { c.Write(n+c.Proc(), vals[c.Proc()]) })
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	return m
}

func TestTraceRecording(t *testing.T) {
	m := tracedRun(t, []int64{1, 0, 1})
	tr := m.TraceLog()
	if tr == nil {
		t.Fatal("trace missing")
	}
	if tr.NumPhases() != 2 {
		t.Fatalf("phases = %d, want 2", tr.NumPhases())
	}
}

func TestTraceProcKeySensitivity(t *testing.T) {
	a := tracedRun(t, []int64{1, 0, 1}).TraceLog()
	b := tracedRun(t, []int64{0, 0, 1}).TraceLog() // bit 0 flipped
	c := tracedRun(t, []int64{1, 0, 0}).TraceLog() // bit 2 flipped

	// Processor 0 read only input 0: its key differs between a and b but
	// not between a and c.
	if a.ProcKey(0, 1) == b.ProcKey(0, 1) {
		t.Error("proc 0 key must see its own bit flip")
	}
	if a.ProcKey(0, 1) != c.ProcKey(0, 1) {
		t.Error("proc 0 key must not see an unread bit flip")
	}
	// Processor 1 read only input 1 (same in all three).
	if a.ProcKey(1, 1) != b.ProcKey(1, 1) || a.ProcKey(1, 1) != c.ProcKey(1, 1) {
		t.Error("proc 1 key must be invariant")
	}
}

func TestTraceCellKeySemantics(t *testing.T) {
	m := tracedRun(t, []int64{1, 0})
	tr := m.TraceLog()
	// After phase 0 the scratch cells are still empty.
	if tr.CellKey(2, 0) != "∅" {
		t.Errorf("scratch cell after phase 0 = %q, want empty", tr.CellKey(2, 0))
	}
	// After phase 1 they carry the copied input atoms.
	if tr.CellKey(2, 1) == "∅" {
		t.Error("scratch cell after phase 1 must hold info")
	}
	// Distinct inputs give distinct end-of-phase cell keys.
	m2 := tracedRun(t, []int64{0, 0})
	if tr.CellKey(2, 1) == m2.TraceLog().CellKey(2, 1) {
		t.Error("cell key must reflect the value written")
	}
	// Out-of-range queries degrade to the empty key.
	if tr.CellKey(99, 0) != "∅" || tr.CellKey(0, 99) != "∅" || tr.CellKey(0, -1) != "∅" {
		t.Error("out-of-range cell keys must be empty")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m, err := New(Config{P: 1, Alpha: 1, Beta: 1, Gamma: 1, N: 1, Cells: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Phase(func(c *Ctx) {})
	if m.TraceLog() != nil {
		t.Error("tracing must be opt-in")
	}
}

func TestTraceReadsObservePrePhaseContents(t *testing.T) {
	// A reader and a writer touch different cells in the same phase; the
	// reader's trace must record the pre-phase contents even though the
	// writer commits at the same barrier.
	m, err := New(Config{P: 2, Alpha: 1, Beta: 1, Gamma: 1, N: 2, Cells: 3})
	if err != nil {
		t.Fatal(err)
	}
	m.EnableTracing()
	if err := m.LoadInputs([]int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	// Phase 0: proc 1 writes scratch cell 2 (nobody reads it — the model
	// forbids read+write of one cell in one phase, which the simulator
	// enforces). Phase 1: proc 0 reads it.
	m.Phase(func(c *Ctx) {
		if c.Proc() == 1 {
			c.Write(2, NewInfo(42))
		}
	})
	m.Phase(func(c *Ctx) {
		if c.Proc() == 0 {
			c.Read(2)
		}
	})
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	tr := m.TraceLog()
	// Proc 0's phase-1 read observed the committed 42.
	key := tr.ProcKey(0, 1)
	if want := "p0||2:42"; key != want {
		t.Errorf("proc 0 key = %q, want %q", key, want)
	}
	// Cell 2's end-of-phase keys: 42 from phase 0 onward.
	if tr.CellKey(2, 0) != "42" || tr.CellKey(2, 1) != "42" {
		t.Errorf("cell keys = %q / %q, want 42 / 42", tr.CellKey(2, 0), tr.CellKey(2, 1))
	}
}
