package gsm

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/engine"
)

// Trace records, for a traced run, the Section 5 trace objects:
// Trace(p, t, f) for processors (the sequence of (cell, contents) pairs
// read, per phase) and Trace(c, t, f) for cells (their contents at each
// phase boundary).
//
// Trace is an engine.Observer: read observations arrive as request events
// (rendered against start-of-phase memory, so readers see what they
// actually observed) buffered in pending, and commit into the record at
// PhaseEnd after the phase's merges applied — phases that fail or abort
// on a violation are never recorded, exactly the phases that never
// commit.
type Trace struct {
	m *Machine
	// pending[p] is the current phase's observation list so far.
	pending [][]string
	// reads[t][p] is the sorted list of "(cell:contents)" strings processor
	// p read in phase t (contents as of the start of the phase).
	reads [][][]string
	// cells[t][c] is the contents key of cell c at the END of phase t.
	cells [][]string
}

// EnableTracing switches on trace recording; it must be called before the
// first phase. Tracing snapshots every cell at each phase boundary, so it
// is intended for the small-n proof-machinery experiments.
func (m *Machine) EnableTracing() {
	m.trace = &Trace{m: m}
	m.AddObserver(m.trace)
}

// TraceLog returns the recorded trace, or nil if tracing was not enabled.
func (m *Machine) TraceLog() *Trace { return m.trace }

func infoKey(in Info) string {
	if len(in) == 0 {
		return "∅"
	}
	var b strings.Builder
	for i, a := range in {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a) //lint:hotpathalloc-ok trace rendering: runs only when an event log is attached
	}
	return b.String()
}

// PhaseStart implements engine.Observer.
func (tr *Trace) PhaseStart(int) {
	tr.pending = make([][]string, tr.m.P())
}

// Request implements engine.Observer: reads append to the issuing
// processor's pending observation list in issue order, with the contents
// they observed.
func (tr *Trace) Request(_ int, r engine.Request) {
	if r.Kind == engine.KindRead {
		tr.pending[r.Proc] = append(tr.pending[r.Proc],
			fmt.Sprintf("%d:%s", r.Addr, r.Payload))
	}
}

// PhaseEnd implements engine.Observer: the phase committed, so the
// pending observations become the phase's read record and all cell
// contents (post-merge) are snapshotted as the end-of-phase state.
func (tr *Trace) PhaseEnd(int, cost.PhaseCost) {
	tr.reads = append(tr.reads, tr.pending)
	tr.pending = nil
	cells := tr.m.Data()
	snap := make([]string, len(cells))
	for i, info := range cells {
		snap[i] = infoKey(info)
	}
	tr.cells = append(tr.cells, snap)
}

// NumPhases returns the number of recorded phases.
func (tr *Trace) NumPhases() int { return len(tr.reads) }

// ProcKey returns a canonical key for Trace(p, t, f): everything processor
// p observed through phase t (inclusive). Two runs whose ProcKeys agree
// are indistinguishable to the processor.
func (tr *Trace) ProcKey(p, t int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", p)
	for ph := 0; ph <= t && ph < len(tr.reads); ph++ {
		b.WriteByte('|')
		b.WriteString(strings.Join(tr.reads[ph][p], ";"))
	}
	return b.String()
}

// CellKey returns a canonical key for Trace(c, t, f): the cell's contents
// at the end of phase t.
func (tr *Trace) CellKey(c, t int) string {
	if t < 0 || t >= len(tr.cells) || c >= len(tr.cells[t]) {
		return "∅"
	}
	return tr.cells[t][c]
}
