package gsm

import (
	"fmt"
	"strings"
)

// Trace records, for a traced run, the Section 5 trace objects:
// Trace(p, t, f) for processors (the sequence of (cell, contents) pairs
// read, per phase) and Trace(c, t, f) for cells (their contents at each
// phase boundary).
type Trace struct {
	// reads[t][p] is the sorted list of "(cell:contents)" strings processor
	// p read in phase t (contents as of the start of the phase).
	reads [][][]string
	// cells[t][c] is the contents key of cell c at the END of phase t.
	cells [][]string
}

// EnableTracing switches on trace recording; it must be called before the
// first phase. Tracing snapshots every cell at each phase boundary, so it
// is intended for the small-n proof-machinery experiments.
func (m *Machine) EnableTracing() {
	m.trace = &Trace{}
}

// TraceLog returns the recorded trace, or nil if tracing was not enabled.
func (m *Machine) TraceLog() *Trace { return m.trace }

func infoKey(in Info) string {
	if len(in) == 0 {
		return "∅"
	}
	var b strings.Builder
	for i, a := range in {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	return b.String()
}

// recordReads captures per-processor reads with the contents they observed.
// It must run before the phase's writes are applied: during a phase the
// memory still holds the start-of-phase contents the readers saw.
func (tr *Trace) recordReads(m *Machine, ctxs []*Ctx) {
	p := len(ctxs)
	phaseReads := make([][]string, p)
	for i, c := range ctxs {
		rs := make([]string, 0, len(c.readAddrs))
		for _, a := range c.readAddrs {
			rs = append(rs, fmt.Sprintf("%d:%s", a, infoKey(m.cells[a])))
		}
		phaseReads[i] = rs
	}
	tr.reads = append(tr.reads, phaseReads)
}

// recordCells snapshots all cell contents; it must run after the phase's
// writes are applied, giving the end-of-phase state.
func (tr *Trace) recordCells(m *Machine) {
	snap := make([]string, len(m.cells))
	for i, info := range m.cells {
		snap[i] = infoKey(info)
	}
	tr.cells = append(tr.cells, snap)
}

// NumPhases returns the number of recorded phases.
func (tr *Trace) NumPhases() int { return len(tr.reads) }

// ProcKey returns a canonical key for Trace(p, t, f): everything processor
// p observed through phase t (inclusive). Two runs whose ProcKeys agree
// are indistinguishable to the processor.
func (tr *Trace) ProcKey(p, t int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", p)
	for ph := 0; ph <= t && ph < len(tr.reads); ph++ {
		b.WriteByte('|')
		b.WriteString(strings.Join(tr.reads[ph][p], ";"))
	}
	return b.String()
}

// CellKey returns a canonical key for Trace(c, t, f): the cell's contents
// at the end of phase t.
func (tr *Trace) CellKey(c, t int) string {
	if t < 0 || t >= len(tr.cells) || c >= len(tr.cells[t]) {
		return "∅"
	}
	return tr.cells[t][c]
}
