package bsp

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/engine"
)

// Trace records, for a traced run, the superstep-level events of a BSP
// computation: each component's staged sends, the messages routed to each
// component (its inbox delta — what arrives for the next superstep), and
// the measured h-relation per superstep.
//
// Trace is an engine.Observer built on the same event stream as the
// qsm/gsm traces, which is what gives BSP the Section 5 knowledge
// machinery for free: ProcKey encodes everything a component observed
// through superstep t (the messages delivered to it), and CellKey treats
// a component's inbox as the "cell" whose contents close each superstep.
// Supersteps that fail are never recorded, exactly the supersteps that
// never commit.
type Trace struct {
	m *Machine
	// pendingSend[p] / pendingRecv[p] accumulate the current superstep.
	pendingSend [][]string
	pendingRecv [][]string
	// sends[t][p] is the rendered list of messages component p staged in
	// superstep t, in issue order.
	sends [][][]string
	// recv[t][p] is the rendered list of messages routed to component p in
	// superstep t (delivered at the start of superstep t+1), grouped by
	// ascending sender.
	recv [][][]string
	// hrel[t] is the measured h-relation of superstep t.
	hrel []int64
}

// EnableTracing switches on trace recording; call before the first
// superstep. Tracing renders every message, so it is intended for the
// small-n proof-machinery experiments.
func (m *Machine) EnableTracing() {
	m.trace = &Trace{m: m}
	m.AddObserver(m.trace)
}

// TraceLog returns the recorded trace, or nil if tracing was off.
func (m *Machine) TraceLog() *Trace { return m.trace }

// PhaseStart implements engine.Observer.
func (tr *Trace) PhaseStart(int) {
	p := tr.m.P()
	tr.pendingSend = make([][]string, p)
	tr.pendingRecv = make([][]string, p)
}

// Request implements engine.Observer: each send event is recorded twice —
// under its sender (in issue order) and under its destination (in the
// deterministic delivery order: ascending sender, then issue order).
func (tr *Trace) Request(_ int, r engine.Request) {
	if r.Kind != engine.KindSend {
		return
	}
	tr.pendingSend[r.Proc] = append(tr.pendingSend[r.Proc],
		fmt.Sprintf("→%d %s", r.Addr, r.Payload))
	tr.pendingRecv[r.Addr] = append(tr.pendingRecv[r.Addr], r.Payload)
}

// PhaseEnd implements engine.Observer: the superstep committed, so the
// pending send/delivery records and the measured h-relation become the
// superstep's trace entry.
func (tr *Trace) PhaseEnd(_ int, pc cost.PhaseCost) {
	tr.sends = append(tr.sends, tr.pendingSend)
	tr.recv = append(tr.recv, tr.pendingRecv)
	tr.hrel = append(tr.hrel, pc.MaxRW)
	tr.pendingSend, tr.pendingRecv = nil, nil
}

// NumPhases returns the number of recorded supersteps.
func (tr *Trace) NumPhases() int { return len(tr.recv) }

// Sends returns the rendered messages component p staged in superstep t,
// in issue order (nil out of range).
func (tr *Trace) Sends(p, t int) []string {
	if t < 0 || t >= len(tr.sends) || p < 0 || p >= len(tr.sends[t]) {
		return nil
	}
	return tr.sends[t][p]
}

// Delivered returns the rendered messages routed to component p in
// superstep t — its inbox at the start of superstep t+1 (nil out of
// range).
func (tr *Trace) Delivered(p, t int) []string {
	if t < 0 || t >= len(tr.recv) || p < 0 || p >= len(tr.recv[t]) {
		return nil
	}
	return tr.recv[t][p]
}

// HRelation returns the measured h-relation of superstep t (0 out of
// range).
func (tr *Trace) HRelation(t int) int64 {
	if t < 0 || t >= len(tr.hrel) {
		return 0
	}
	return tr.hrel[t]
}

// ProcKey canonically encodes Trace(p, t, f): everything component p
// observed through superstep t — the messages delivered to it at the
// start of each superstep (i.e. routed to it in the previous one;
// superstep 0 starts with an empty inbox).
func (tr *Trace) ProcKey(p, t int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d", p)
	for ph := 0; ph <= t && ph < len(tr.recv); ph++ {
		b.WriteByte('|')
		if ph > 0 {
			b.WriteString(strings.Join(tr.recv[ph-1][p], ";"))
		}
	}
	return b.String()
}

// CellKey canonically encodes the component-state analogue of
// Trace(c, t, f): the messages routed to component c in superstep t (its
// inbox contents as superstep t closes).
func (tr *Trace) CellKey(c, t int) string {
	if t < 0 || t >= len(tr.recv) || c < 0 || c >= len(tr.recv[t]) ||
		len(tr.recv[t][c]) == 0 {
		return "∅"
	}
	return strings.Join(tr.recv[t][c], ";")
}
