package bsp

import (
	"reflect"
	"testing"
	"testing/quick"
)

func mk(t *testing.T, c Config) *Machine {
	t.Helper()
	m, err := New(c)
	if err != nil {
		t.Fatalf("New(%+v): %v", c, err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{P: 0, G: 1, L: 1, N: 1},
		{P: 1, G: 0, L: 1, N: 1},
		{P: 1, G: 2, L: 1, N: 1}, // L < g
		{P: 1, G: 1, L: 0, N: 1}, // L < 1
		{P: 1, G: 1, L: 1, N: 0}, // n < 1
		{P: 1, G: 1, L: 1, N: 1, PrivCells: -1},
		{P: 1, G: 1, L: 1, N: 1, Workers: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, c)
		}
	}
	if _, err := New(Config{P: 4, G: 2, L: 8, N: 16, PrivCells: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic")
		}
	}()
	MustNew(Config{})
}

func TestBlockRange(t *testing.T) {
	// n=10, p=4: sizes must be 3,3,2,2 (⌈n/p⌉ or ⌊n/p⌋), covering [0,10).
	sizes := []int{}
	prev := 0
	for i := 0; i < 4; i++ {
		lo, hi := BlockRange(10, 4, i)
		if lo != prev {
			t.Fatalf("block %d starts at %d, want %d", i, lo, prev)
		}
		sizes = append(sizes, hi-lo)
		prev = hi
	}
	if prev != 10 {
		t.Fatalf("blocks cover [0,%d), want [0,10)", prev)
	}
	want := []int{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestBlockRangeProperty(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%1000) + 1
		p := int(pRaw%32) + 1
		prev := 0
		q := n / p
		for i := 0; i < p; i++ {
			lo, hi := BlockRange(n, p, i)
			if lo != prev || hi < lo {
				return false
			}
			sz := hi - lo
			if sz != q && sz != q+1 {
				return false
			}
			prev = hi
		}
		return prev == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScatterPeek(t *testing.T) {
	m := mk(t, Config{P: 4, G: 1, L: 2, N: 10, PrivCells: 8})
	in := make([]int64, 10)
	for i := range in {
		in[i] = int64(i * 11)
	}
	if err := m.Scatter(in); err != nil {
		t.Fatal(err)
	}
	// Component 2 holds inputs [6,8) at private addresses 0,1.
	lo, _ := BlockRange(10, 4, 2)
	if got := m.Peek(2, 0); got != in[lo] {
		t.Errorf("Peek(2,0) = %d, want %d", got, in[lo])
	}
	if err := m.Scatter(in[:5]); err == nil {
		t.Error("want length-mismatch error")
	}
	small := mk(t, Config{P: 1, G: 1, L: 1, N: 10, PrivCells: 2})
	if err := small.Scatter(in); err == nil {
		t.Error("want private-memory-too-small error")
	}
}

func TestPeekOutOfRangeRecordsError(t *testing.T) {
	cfg := Config{P: 4, G: 1, L: 2, N: 10, PrivCells: 8}

	m := mk(t, cfg)
	if got := m.Peek(-1, 0); got != 0 {
		t.Errorf("Peek(-1, 0) = %d, want 0", got)
	}
	if err := m.Err(); err == nil {
		t.Error("out-of-range component Peek must record a machine error")
	}

	m = mk(t, cfg)
	if got := m.Peek(0, 99); got != 0 {
		t.Errorf("Peek(0, 99) = %d, want 0", got)
	}
	if err := m.Err(); err == nil {
		t.Error("out-of-range cell Peek must record a machine error")
	}

	m = mk(t, cfg)
	m.Peek(3, 7)
	if err := m.Err(); err != nil {
		t.Errorf("in-range Peek recorded error: %v", err)
	}
}

func TestMessageDelivery(t *testing.T) {
	m := mk(t, Config{P: 3, G: 1, L: 1, N: 3, PrivCells: 4})
	// Superstep 1: everyone sends its id to component 0.
	m.Superstep(func(c *Ctx) {
		if len(c.Incoming()) != 0 {
			t.Error("first superstep must have empty inbox")
		}
		c.Send(0, int64(c.Comp()), int64(c.Comp()*10))
	})
	// Superstep 2: component 0 sees all three, sorted by sender.
	m.Superstep(func(c *Ctx) {
		if c.Comp() != 0 {
			return
		}
		in := c.Incoming()
		if len(in) != 3 {
			t.Errorf("inbox size = %d, want 3", len(in))
			return
		}
		for i, msg := range in {
			if msg.From != i || msg.Val != int64(i*10) {
				t.Errorf("msg %d = %+v", i, msg)
			}
		}
	})
	// Superstep 3: old messages are gone.
	m.Superstep(func(c *Ctx) {
		if len(c.Incoming()) != 0 {
			t.Error("messages must not persist across supersteps")
		}
	})
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
}

func TestCurrentSuperstepMessagesInvisible(t *testing.T) {
	m := mk(t, Config{P: 2, G: 1, L: 1, N: 2, PrivCells: 1})
	seen := make([]int, 2)
	m.Superstep(func(c *Ctx) {
		c.Send(1-c.Comp(), 0, 1)
		seen[c.Comp()] = len(c.Incoming())
	})
	if seen[0] != 0 || seen[1] != 0 {
		t.Errorf("components saw same-superstep messages: %v", seen)
	}
}

func TestSuperstepCost(t *testing.T) {
	// p=4, g=3, L=5. Component 0 sends 2 messages to component 1:
	// h = 2, cost = max(0, 3·2, 5) = 6.
	m := mk(t, Config{P: 4, G: 3, L: 5, N: 4, PrivCells: 1})
	m.Superstep(func(c *Ctx) {
		if c.Comp() == 0 {
			c.Send(1, 0, 1)
			c.Send(1, 1, 2)
		}
	})
	if got := m.Report().Phases[0].Time; got != 6 {
		t.Errorf("superstep cost = %d, want 6", got)
	}
	// An idle superstep costs L.
	m.Superstep(func(c *Ctx) {})
	if got := m.Report().Phases[1].Time; got != 5 {
		t.Errorf("idle superstep cost = %d, want L=5", got)
	}
	// Local work dominating.
	m.Superstep(func(c *Ctx) { c.Work(100) })
	if got := m.Report().Phases[2].Time; got != 100 {
		t.Errorf("work superstep cost = %d, want 100", got)
	}
}

func TestHRelationIsMaxOfSendAndReceive(t *testing.T) {
	// All 8 components send one message to component 0: every sender has
	// s_i = 1 but component 0 receives r_0 = 8 ⇒ h = 8.
	m := mk(t, Config{P: 8, G: 1, L: 1, N: 8, PrivCells: 1})
	m.Superstep(func(c *Ctx) { c.Send(0, 0, 1) })
	ph := m.Report().Phases[0]
	if ph.MaxRW != 8 {
		t.Errorf("h = %d, want 8", ph.MaxRW)
	}
	if ph.Time != 8 {
		t.Errorf("cost = %d, want 8", ph.Time)
	}
}

func TestSendValidation(t *testing.T) {
	m := mk(t, Config{P: 2, G: 1, L: 1, N: 2, PrivCells: 1})
	m.Superstep(func(c *Ctx) { c.Send(5, 0, 1) })
	if m.Err() == nil {
		t.Error("want invalid-destination error")
	}
	before := m.Report().NumPhases()
	m.Superstep(func(c *Ctx) {})
	if m.Report().NumPhases() != before {
		t.Error("superstep ran after error")
	}
}

func TestRoundClassification(t *testing.T) {
	// n=64, p=8 ⇒ n/p=8; round budget h ≤ 32. A superstep routing an
	// 8-relation is a round; one routing a 64-relation is not.
	m := mk(t, Config{P: 8, G: 1, L: 1, N: 64, PrivCells: 1})
	m.Superstep(func(c *Ctx) {
		for j := 0; j < 8; j++ {
			c.Send((c.Comp()+1)%8, int64(j), 1)
		}
	})
	m.Superstep(func(c *Ctx) {
		for j := 0; j < 64; j++ {
			c.Send(0, int64(j), 1)
		}
	})
	r := m.Report()
	if !r.Phases[0].IsRound {
		t.Error("8-relation superstep should be a round")
	}
	if r.Phases[1].IsRound {
		t.Error("64-relation superstep should not be a round")
	}
}

func TestPrivateMemoryPersists(t *testing.T) {
	m := mk(t, Config{P: 2, G: 1, L: 1, N: 2, PrivCells: 2})
	m.Superstep(func(c *Ctx) {
		c.Priv()[0] = int64(c.Comp() + 100)
	})
	m.Superstep(func(c *Ctx) {
		c.Priv()[1] = c.Priv()[0] * 2
	})
	if m.Peek(1, 1) != 202 {
		t.Errorf("Peek(1,1) = %d, want 202", m.Peek(1, 1))
	}
}

// Message routing must be independent of the Workers setting: delivery
// order is (sender id, send order), never chunk layout. The workload fans
// messages across components over several supersteps so the inbox
// ping-pong recycling is covered too.
func TestRoutingDeterministicAcrossWorkers(t *testing.T) {
	const p, steps = 48, 4
	run := func(workers int) ([][]Message, *Machine) {
		m := MustNew(Config{P: p, G: 2, L: 4, N: p, PrivCells: 4, Workers: workers})
		var boxes [][]Message
		for s := 0; s < steps; s++ {
			s := s
			m.Superstep(func(c *Ctx) {
				for j := 0; j <= c.Comp()%3; j++ {
					c.Send((c.Comp()*5+j+s)%p, int64(s), int64(c.Comp()*100+j))
				}
			})
			m.Superstep(func(c *Ctx) {
				in := c.Incoming()
				cp := make([]Message, len(in))
				copy(cp, in)
				if c.Comp() == 0 {
					boxes = append(boxes, cp)
				}
			})
		}
		if m.Err() != nil {
			t.Fatal(m.Err())
		}
		return boxes, m
	}
	seqBoxes, seqM := run(1)
	for _, w := range []int{2, 8} {
		parBoxes, parM := run(w)
		if !reflect.DeepEqual(seqBoxes, parBoxes) {
			t.Errorf("Workers=%d: component 0 inboxes differ\nseq: %v\npar: %v", w, seqBoxes, parBoxes)
		}
		if !reflect.DeepEqual(*seqM.Report(), *parM.Report()) {
			t.Errorf("Workers=%d: cost reports differ", w)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []int64 {
		m := MustNew(Config{P: 16, G: 2, L: 4, N: 16, PrivCells: 20, Workers: 3})
		m.Superstep(func(c *Ctx) {
			for j := 0; j < 4; j++ {
				c.Send((c.Comp()+j)%16, int64(j), int64(c.Comp()*10+j))
			}
		})
		m.Superstep(func(c *Ctx) {
			s := int64(0)
			for i, msg := range c.Incoming() {
				s += msg.Val * int64(i+1)
			}
			c.Priv()[0] = s
		})
		out := make([]int64, 16)
		for i := range out {
			out[i] = m.Peek(i, 0)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result at component %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGetters(t *testing.T) {
	m := mk(t, Config{P: 3, G: 2, L: 9, N: 7, PrivCells: 1})
	if m.P() != 3 || m.G() != 2 || m.L() != 9 || m.N() != 7 {
		t.Errorf("getters: P=%d G=%d L=%d N=%d", m.P(), m.G(), m.L(), m.N())
	}
}
