package bsp

import (
	"reflect"
	"testing"
)

// traced builds a 3-component machine, runs two supersteps of a fixed
// message pattern and returns the trace.
func traced(t *testing.T, workers int) *Trace {
	t.Helper()
	m := mk(t, Config{P: 3, G: 1, L: 2, N: 3, PrivCells: 1, Workers: workers})
	m.EnableTracing()
	// Superstep 0: a ring shift plus a fan-in to component 0.
	m.Superstep(func(c *Ctx) {
		c.Send((c.Comp()+1)%3, 7, int64(10+c.Comp()))
		if c.Comp() > 0 {
			c.Send(0, 8, int64(c.Comp()))
		}
	})
	// Superstep 1: component 0 echoes its inbox size.
	m.Superstep(func(c *Ctx) {
		if c.Comp() == 0 {
			c.Send(1, 9, int64(len(c.Incoming())))
		}
	})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	return m.TraceLog()
}

func TestTraceRecordsSupersteps(t *testing.T) {
	tr := traced(t, 1)
	if tr.NumPhases() != 2 {
		t.Fatalf("NumPhases = %d, want 2", tr.NumPhases())
	}
	if got, want := tr.Sends(1, 0), []string{"→2 from=1 tag=7 val=11", "→0 from=1 tag=8 val=1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Sends(1, 0) = %q, want %q", got, want)
	}
	// Deliveries to component 0 in superstep 0, in deterministic order:
	// ascending sender, issue order within a sender (component 2's ring
	// message precedes its fan-in message).
	want0 := []string{"from=1 tag=8 val=1", "from=2 tag=7 val=12", "from=2 tag=8 val=2"}
	if got := tr.Delivered(0, 0); !reflect.DeepEqual(got, want0) {
		t.Errorf("Delivered(0, 0) = %q, want %q", got, want0)
	}
	// h-relation of superstep 0: component 0 receives 3 messages (the ring
	// message from 2 plus both fan-in messages), the largest s_i/r_i.
	if got := tr.HRelation(0); got != 3 {
		t.Errorf("HRelation(0) = %d, want 3", got)
	}
	if got := tr.HRelation(1); got != 1 {
		t.Errorf("HRelation(1) = %d, want 1", got)
	}
	if tr.Sends(0, 5) != nil || tr.Delivered(9, 0) != nil || tr.HRelation(9) != 0 {
		t.Error("out-of-range accessors must return zero values")
	}
}

func TestTraceKnowledgeKeys(t *testing.T) {
	tr := traced(t, 1)
	// A component's observations through superstep t are the deliveries of
	// earlier supersteps: at t=0 every inbox is empty, at t=1 component 1
	// has seen the superstep-0 deliveries.
	if got, want := tr.ProcKey(1, 0), "p1|"; got != want {
		t.Errorf("ProcKey(1, 0) = %q, want %q", got, want)
	}
	if got, want := tr.ProcKey(1, 1), "p1||from=0 tag=7 val=10"; got != want {
		t.Errorf("ProcKey(1, 1) = %q, want %q", got, want)
	}
	if got, want := tr.CellKey(1, 1), "from=0 tag=9 val=3"; got != want {
		t.Errorf("CellKey(1, 1) = %q, want %q", got, want)
	}
	if got, want := tr.CellKey(2, 1), "∅"; got != want {
		t.Errorf("CellKey(2, 1) = %q, want %q", got, want)
	}
}

func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	seq := traced(t, 1)
	par := traced(t, 8)
	for p := 0; p < 3; p++ {
		for ph := 0; ph < 2; ph++ {
			if a, b := seq.ProcKey(p, ph), par.ProcKey(p, ph); a != b {
				t.Errorf("ProcKey(%d, %d): Workers=1 %q, Workers=8 %q", p, ph, a, b)
			}
			if a, b := seq.CellKey(p, ph), par.CellKey(p, ph); a != b {
				t.Errorf("CellKey(%d, %d): Workers=1 %q, Workers=8 %q", p, ph, a, b)
			}
		}
	}
}
