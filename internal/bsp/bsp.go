// Package bsp implements a cost-accurate simulator for Valiant's Bulk
// Synchronous Parallel model as specified in MacKenzie & Ramachandran
// (SPAA 1998), Section 2.1.
//
// A BSP machine has p processor/memory components communicating by
// point-to-point messages over a network characterised by a bandwidth
// parameter g and a latency parameter L (the paper assumes L ≥ g). The
// computation is a sequence of supersteps separated by bulk
// synchronisations. In a superstep each component performs local work and
// sends/receives messages; messages sent in superstep s are delivered before
// superstep s+1 begins. With w the maximum local work, and
// h = max_i(max(s_i, r_i)) the routed h-relation, a superstep costs
//
//	T = max(w, g·h, L).
//
// The simulator enforces the model's discipline that messages are sent
// "based on [the component's] state at the start of the superstep": sends
// may depend on private memory and on messages received in *earlier*
// supersteps, never on messages of the current one (incoming messages of the
// current superstep are simply not visible until the next).
//
// An input of size n is partitioned uniformly: component i is assigned
// either ⌈n/p⌉ or ⌊n/p⌋ inputs (Block distribution helpers below).
package bsp

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sched"
)

// Message is a point-to-point BSP message.
type Message struct {
	// From is the sending component.
	From int
	// Tag is an algorithm-chosen small integer (e.g. a slot index).
	Tag int64
	// Val is the payload word.
	Val int64
}

// Machine is a BSP machine instance.
type Machine struct {
	params cost.Params
	n      int
	priv   [][]int64 // per-component private memory
	inbox  [][]Message
	report cost.Report
	err    error

	workers int

	// ctxs is the per-machine free list of superstep contexts, reset and
	// reused every superstep so send buffers keep their capacity.
	ctxs []*Ctx
	// failN/fail1 are per-chunk failure tallies (count, first failing
	// component index or -1), collected during body dispatch.
	failN, fail1 []int32
	// spare ping-pongs with inbox: last superstep's inbox slices are
	// truncated and refilled as the next superstep's delivery target.
	spare [][]Message
	// cb holds the reusable scratch of the sharded routing commit.
	cb routeBuf
}

// Config parameterises a BSP machine.
type Config struct {
	// P is the number of components.
	P int
	// G and L are the bandwidth and latency parameters; L ≥ g ≥ 1.
	G, L int64
	// N is the input size (used for round classification: a superstep is a
	// round iff it routes an O(n/p)-relation and does O(gn/p + L) work).
	N int
	// PrivCells is the private memory size per component.
	PrivCells int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// New constructs a BSP machine with empty inboxes and zeroed private
// memories.
func New(c Config) (*Machine, error) {
	p := cost.Params{G: c.G, L: c.L, P: c.P}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.L < 1 {
		return nil, fmt.Errorf("bsp: latency L must be ≥ 1, got %d", c.L)
	}
	if c.N < 1 {
		return nil, fmt.Errorf("bsp: input size N must be ≥ 1, got %d", c.N)
	}
	if c.PrivCells < 0 {
		return nil, fmt.Errorf("bsp: negative private memory %d", c.PrivCells)
	}
	m := &Machine{
		params:  p,
		n:       c.N,
		priv:    make([][]int64, c.P),
		inbox:   make([][]Message, c.P),
		spare:   make([][]Message, c.P),
		workers: sched.Workers(c.Workers),
	}
	for i := range m.priv {
		m.priv[i] = make([]int64, c.PrivCells)
	}
	m.report = cost.Report{Model: "BSP", N: c.N, Params: p}
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the number of components.
func (m *Machine) P() int { return m.params.P }

// G returns the bandwidth parameter.
func (m *Machine) G() int64 { return m.params.G }

// L returns the latency parameter.
func (m *Machine) L() int64 { return m.params.L }

// N returns the declared input size.
func (m *Machine) N() int { return m.n }

// Err returns the first simulation error, if any.
func (m *Machine) Err() error { return m.err }

// Report returns the accumulated cost report.
func (m *Machine) Report() *cost.Report { return &m.report }

// BlockRange returns the half-open index range [lo, hi) of the inputs
// assigned to component i under the paper's uniform partition: each
// component gets ⌈n/p⌉ or ⌊n/p⌋ inputs.
func BlockRange(n, p, i int) (lo, hi int) {
	q, r := n/p, n%p
	if i < r {
		lo = i * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (i-r)*q
	return lo, lo + q
}

// Scatter loads input words into private memories under the block
// distribution: component i receives input[lo:hi] at private addresses
// 0..hi-lo-1. Loading the input is not charged (it is the initial state).
func (m *Machine) Scatter(input []int64) error {
	if len(input) != m.n {
		return fmt.Errorf("bsp: Scatter input length %d ≠ N %d", len(input), m.n)
	}
	for i := 0; i < m.params.P; i++ {
		lo, hi := BlockRange(m.n, m.params.P, i)
		if hi-lo > len(m.priv[i]) {
			return fmt.Errorf("bsp: component %d private memory %d too small for block %d",
				i, len(m.priv[i]), hi-lo)
		}
		copy(m.priv[i][:hi-lo], input[lo:hi])
	}
	return nil
}

// Peek reads a private-memory cell of a component for host-side output
// extraction (not charged). An out-of-range component or address is a
// host-side bug: it records a machine error (first error wins) and returns
// 0, so algorithm mistakes cannot be masked by phantom zeros.
func (m *Machine) Peek(comp, addr int) int64 {
	if comp < 0 || comp >= m.params.P {
		m.recordErr(fmt.Errorf("bsp: Peek out of range: component %d of %d", comp, m.params.P))
		return 0
	}
	if addr < 0 || addr >= len(m.priv[comp]) {
		m.recordErr(fmt.Errorf("bsp: Peek out of range: component %d cell %d of %d",
			comp, addr, len(m.priv[comp])))
		return 0
	}
	return m.priv[comp][addr]
}

// recordErr poisons the machine with the first host-side error observed.
func (m *Machine) recordErr(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Ctx is the per-component handle inside a superstep.
type Ctx struct {
	comp int
	m    *Machine
	work int64
	out  []Message // staged sends, grouped later
	dst  []int32
	fail error
}

// Comp returns this component's index.
func (c *Ctx) Comp() int { return c.comp }

// Priv returns this component's private memory. Mutating it is free-form
// local state manipulation; charge it explicitly with Work.
func (c *Ctx) Priv() []int64 { return c.m.priv[c.comp] }

// Incoming returns the messages delivered to this component at the start of
// the superstep (i.e. sent during the previous superstep), in deterministic
// order (sorted by sender, then arrival order at the sender).
func (c *Ctx) Incoming() []Message { return c.m.inbox[c.comp] }

// Work charges k units of local computation.
func (c *Ctx) Work(k int) {
	if k > 0 {
		c.work += int64(k)
	}
}

// Send stages a message to component dst; it is delivered at the start of
// the next superstep.
func (c *Ctx) Send(dst int, tag, val int64) {
	if dst < 0 || dst >= c.m.params.P {
		if c.fail == nil {
			c.fail = fmt.Errorf("bsp: component %d sends to invalid component %d", c.comp, dst)
		}
		return
	}
	c.out = append(c.out, Message{From: c.comp, Tag: tag, Val: val})
	c.dst = append(c.dst, int32(dst))
}

// Superstep runs one superstep: body is invoked once per component
// (concurrently over contiguous chunks); at the barrier the h-relation is
// measured, the superstep is charged max(w, g·h, L), and staged messages
// are routed into the inboxes for the next superstep by the sharded
// routing commit.
func (m *Machine) Superstep(body func(c *Ctx)) {
	if m.err != nil {
		return
	}
	p := m.params.P
	if m.ctxs == nil {
		m.ctxs = make([]*Ctx, p)
		for i := range m.ctxs {
			m.ctxs[i] = &Ctx{comp: i, m: m}
		}
	}
	// Failure detection rides along with the body dispatch (the ctxs are
	// cache-hot here), recorded per chunk and merged in commit.
	nb := sched.NumBlocks(m.workers, p)
	if len(m.failN) < nb {
		m.failN = make([]int32, nb)
		m.fail1 = make([]int32, nb)
	}
	sched.Blocks(m.workers, p, func(w, lo, hi int) {
		var nf, first int32 = 0, -1
		for i := lo; i < hi; i++ {
			c := m.ctxs[i]
			c.reset()
			body(c)
			if c.fail != nil {
				if first < 0 {
					first = int32(i)
				}
				nf++
			}
		}
		m.failN[w], m.fail1[w] = nf, first
	})
	m.commit(m.ctxs)
}

func (c *Ctx) reset() {
	c.work = 0
	c.out = c.out[:0]
	c.dst = c.dst[:0]
	c.fail = nil
}

// routeBuf is the reusable scratch of the sharded message-routing commit.
// Staged sends are first bucketed by destination shard (one bucket per
// merge-chunk × shard, filled in sender order), then each destination
// shard counts its fan-in and fills its inboxes independently.
type routeBuf struct {
	// Buckets, indexed [chunk*numShards + shard].
	msg [][]Message
	dst [][]int32
	// Per-chunk maximum local work.
	work []int64
	// Per-component send counts (pass 1, chunk-disjoint) and receive
	// counts (pass 2, shard-disjoint).
	sent, recv []int64
	// Per-shard receive maxima.
	hrecv []int64
}

func (b *routeBuf) ensure(p, nm, ns int) {
	if nb := nm * ns; len(b.msg) < nb {
		for len(b.msg) < nb {
			b.msg = append(b.msg, nil)
			b.dst = append(b.dst, nil)
		}
	}
	if len(b.work) < nm {
		b.work = make([]int64, nm)
	}
	if len(b.sent) < p {
		b.sent = make([]int64, p)
		b.recv = make([]int64, p)
	}
	if len(b.hrecv) < ns {
		b.hrecv = make([]int64, ns)
	}
}

// commit measures the h-relation, charges the superstep and routes staged
// messages. Buckets are filled in sender order and replayed in chunk
// order, so each inbox receives its messages grouped by ascending sender
// id — the same deterministic delivery order for every Workers setting.
func (m *Machine) commit(ctxs []*Ctx) {
	// Failed components short-circuit the commit: nothing is routed. The
	// first error in component order wins; the number of other failing
	// components is preserved in the message. The per-chunk tallies were
	// collected during body dispatch in Superstep.
	nfail, firstIdx := 0, -1
	for w := 0; w < sched.NumBlocks(m.workers, len(ctxs)); w++ {
		if m.failN[w] > 0 {
			if firstIdx < 0 {
				firstIdx = int(m.fail1[w])
			}
			nfail += int(m.failN[w])
		}
	}
	if nfail > 0 {
		first := ctxs[firstIdx].fail
		if nfail > 1 {
			m.err = fmt.Errorf("%w (and %d other components failed)", first, nfail-1)
		} else {
			m.err = first
		}
		return
	}

	p := m.params.P
	b := &m.cb
	nm := sched.NumBlocks(m.workers, p)
	sh := sched.NewSharding(p, m.workers)
	ns := sh.N
	b.ensure(p, nm, ns)

	// Pass 1: per-chunk work maxima, send counts, and messages bucketed by
	// destination shard.
	sched.Blocks(m.workers, p, func(w, lo, hi int) {
		var work int64
		base := w * ns
		for i := lo; i < hi; i++ {
			c := ctxs[i]
			work = max(work, c.work)
			b.sent[i] = int64(len(c.out))
			for j, msg := range c.out {
				d := c.dst[j]
				k := base + sh.Shard(d)
				b.msg[k] = append(b.msg[k], msg)
				b.dst[k] = append(b.dst[k], d)
			}
		}
		b.work[w] = work
	})

	// Pass 2: per-destination-shard fan-in counting and inbox filling.
	// Inbox slices ping-pong with m.spare, so steady-state supersteps
	// reuse the previous-but-one superstep's backing arrays.
	next := m.spare
	sched.Blocks(m.workers, ns, func(_, slo, shi int) {
		for s := slo; s < shi; s++ {
			dlo, dhi := sh.Range(s, p)
			for d := dlo; d < dhi; d++ {
				b.recv[d] = 0
			}
			for w := 0; w < nm; w++ {
				for _, d := range b.dst[w*ns+s] {
					b.recv[d]++
				}
			}
			var hr int64
			for d := dlo; d < dhi; d++ {
				hr = max(hr, b.recv[d])
				next[d] = next[d][:0]
			}
			for w := 0; w < nm; w++ {
				k := w*ns + s
				dsts := b.dst[k]
				for j, msg := range b.msg[k] {
					d := dsts[j]
					next[d] = append(next[d], msg)
				}
				b.msg[k] = b.msg[k][:0]
				b.dst[k] = b.dst[k][:0]
			}
			b.hrecv[s] = hr
		}
	})

	var w, h int64
	for i := 0; i < nm; i++ {
		w = max(w, b.work[i])
	}
	for i := 0; i < p; i++ {
		h = max(h, b.sent[i])
	}
	for s := 0; s < ns; s++ {
		h = max(h, b.hrecv[s])
	}

	t := cost.Time(max(w, m.params.G*h, m.params.L))
	np := max(int64(m.n)/int64(p), 1)
	isRound := h <= cost.RoundSlack*np &&
		w <= cost.RoundSlack*(m.params.G*np)+m.params.L
	m.report.Add(cost.PhaseCost{
		MaxOps:  w,
		MaxRW:   h,
		Time:    t,
		IsRound: isRound,
	})

	m.spare = m.inbox
	m.inbox = next
}

func countFails(ctxs []*Ctx) (nfail int, first error) {
	for _, c := range ctxs {
		if c.fail != nil {
			if first == nil {
				first = c.fail
			}
			nfail++
		}
	}
	return nfail, first
}
