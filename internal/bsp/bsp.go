// Package bsp implements a cost-accurate simulator for Valiant's Bulk
// Synchronous Parallel model as specified in MacKenzie & Ramachandran
// (SPAA 1998), Section 2.1.
//
// A BSP machine has p processor/memory components communicating by
// point-to-point messages over a network characterised by a bandwidth
// parameter g and a latency parameter L (the paper assumes L ≥ g). The
// computation is a sequence of supersteps separated by bulk
// synchronisations. In a superstep each component performs local work and
// sends/receives messages; messages sent in superstep s are delivered before
// superstep s+1 begins. With w the maximum local work, and
// h = max_i(max(s_i, r_i)) the routed h-relation, a superstep costs
//
//	T = max(w, g·h, L).
//
// The simulator enforces the model's discipline that messages are sent
// "based on [the component's] state at the start of the superstep": sends
// may depend on private memory and on messages received in *earlier*
// supersteps, never on messages of the current one (incoming messages of the
// current superstep are simply not visible until the next).
//
// An input of size n is partitioned uniformly: component i is assigned
// either ⌈n/p⌉ or ⌊n/p⌋ inputs (Block distribution helpers below).
//
// The superstep lifecycle — dispatch, h-relation measurement, the sharded
// deterministic routing commit and observer events — lives in
// internal/engine; this package is the model adapter binding that runtime
// to BSP components, private memories and the max(w, g·h, L) cost rule.
package bsp

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/engine"
)

// Message is a point-to-point BSP message.
type Message struct {
	// From is the sending component.
	From int
	// Tag is an algorithm-chosen small integer (e.g. a slot index).
	Tag int64
	// Val is the payload word.
	Val int64
}

// Machine is a BSP machine instance: the engine's message-routing runtime
// over per-component private memories.
type Machine struct {
	engine.Route[Message]
	priv  [][]int64 // per-component private memory
	trace *Trace
	ctxs  []Ctx
	// ckPriv is the private-memory half of a fault checkpoint (see
	// bspModel.Snapshot); buffers are reused across supersteps.
	ckPriv [][]int64
}

// Config parameterises a BSP machine.
type Config struct {
	// P is the number of components.
	P int
	// G and L are the bandwidth and latency parameters; L ≥ g ≥ 1.
	G, L int64
	// N is the input size (used for round classification: a superstep is a
	// round iff it routes an O(n/p)-relation and does O(gn/p + L) work).
	N int
	// PrivCells is the private memory size per component.
	PrivCells int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// New constructs a BSP machine with empty inboxes and zeroed private
// memories.
func New(c Config) (*Machine, error) {
	p := cost.Params{G: c.G, L: c.L, P: c.P}
	if err := engine.ValidateConfig("bsp", p, c.N, c.PrivCells, c.Workers, true); err != nil {
		return nil, err
	}
	m := &Machine{priv: make([][]int64, c.P)}
	for i := range m.priv {
		m.priv[i] = make([]int64, c.PrivCells)
	}
	m.InitRoute(bspModel{m}, p, c.N, c.Workers)
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// G returns the bandwidth parameter.
func (m *Machine) G() int64 { return m.Params().G }

// L returns the latency parameter.
func (m *Machine) L() int64 { return m.Params().L }

// BlockRange returns the half-open index range [lo, hi) of the inputs
// assigned to component i under the paper's uniform partition: each
// component gets ⌈n/p⌉ or ⌊n/p⌋ inputs.
func BlockRange(n, p, i int) (lo, hi int) {
	q, r := n/p, n%p
	if i < r {
		lo = i * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (i-r)*q
	return lo, lo + q
}

// Scatter loads input words into private memories under the block
// distribution: component i receives input[lo:hi] at private addresses
// 0..hi-lo-1. Loading the input is not charged (it is the initial state).
func (m *Machine) Scatter(input []int64) error {
	if len(input) != m.N() {
		return fmt.Errorf("bsp: Scatter input length %d ≠ N %d", len(input), m.N())
	}
	for i := 0; i < m.P(); i++ {
		lo, hi := BlockRange(m.N(), m.P(), i)
		if hi-lo > len(m.priv[i]) {
			return fmt.Errorf("bsp: component %d private memory %d too small for block %d",
				i, len(m.priv[i]), hi-lo)
		}
		copy(m.priv[i][:hi-lo], input[lo:hi])
	}
	return nil
}

// Peek reads a private-memory cell of a component for host-side output
// extraction (not charged). An out-of-range component or address is a
// host-side bug: it records a machine error (first error wins) and returns
// 0, so algorithm mistakes cannot be masked by phantom zeros.
func (m *Machine) Peek(comp, addr int) int64 {
	if comp < 0 || comp >= m.P() {
		m.RecordErr(fmt.Errorf("bsp: Peek out of range: component %d of %d", comp, m.P()))
		return 0
	}
	if addr < 0 || addr >= len(m.priv[comp]) {
		m.RecordErr(fmt.Errorf("bsp: Peek out of range: component %d cell %d of %d",
			comp, addr, len(m.priv[comp])))
		return 0
	}
	return m.priv[comp][addr]
}

// Ctx is the per-component handle inside a superstep.
type Ctx struct {
	comp int
	m    *Machine
	s    *engine.Sends[Message]
	// msgBuf is reusable per-component scratch for the batch send
	// methods; Ctx values persist across supersteps, so at steady state
	// batch sends allocate nothing.
	msgBuf []Message
}

// Comp returns this component's index.
func (c *Ctx) Comp() int { return c.comp }

// Priv returns this component's private memory. Mutating it is free-form
// local state manipulation; charge it explicitly with Work.
func (c *Ctx) Priv() []int64 { return c.m.priv[c.comp] }

// Incoming returns the messages delivered to this component at the start of
// the superstep (i.e. sent during the previous superstep), in deterministic
// order (sorted by sender, then arrival order at the sender).
func (c *Ctx) Incoming() []Message { return c.m.Route.Incoming(c.comp) } //lint:colescape-ok documented borrow point: the superstep inbox view is valid until the next Sync

// Work charges k units of local computation.
func (c *Ctx) Work(k int) {
	if k > 0 {
		c.s.AddWork(int64(k))
	}
}

// Send stages a message to component dst; it is delivered at the start of
// the next superstep.
func (c *Ctx) Send(dst int, tag, val int64) {
	if dst < 0 || dst >= c.m.P() {
		c.s.Fail(fmt.Errorf("bsp: component %d sends to invalid component %d", c.comp, dst))
		return
	}
	c.s.Stage(int32(dst), Message{From: c.comp, Tag: tag, Val: val})
}

// checkDsts validates a batch's destinations in one pass.
func (c *Ctx) checkDsts(dsts []int32) bool {
	for _, d := range dsts {
		if d < 0 || int(d) >= c.m.P() {
			c.s.Fail(fmt.Errorf("bsp: component %d sends to invalid component %d", c.comp, d))
			return false
		}
	}
	return true
}

// SendBatch stages len(dsts) messages in one bounds-checked batch:
// message i goes to dsts[i] carrying tag tags[i] and value vals[i]. A
// nil tags means all-zero tags. It stages exactly the message sequence
// of the equivalent Send loop, so costs and event streams are identical
// between the two.
func (c *Ctx) SendBatch(dsts []int32, tags, vals []int64) {
	if len(dsts) != len(vals) || (tags != nil && len(tags) != len(dsts)) {
		c.s.Fail(fmt.Errorf("bsp: component %d SendBatch column mismatch: %d destinations, %d tags, %d values",
			c.comp, len(dsts), len(tags), len(vals)))
		return
	}
	if !c.checkDsts(dsts) {
		return
	}
	c.msgBuf = c.msgBuf[:0]
	for i := range dsts {
		msg := Message{From: c.comp, Val: vals[i]}
		if tags != nil {
			msg.Tag = tags[i]
		}
		c.msgBuf = append(c.msgBuf, msg)
	}
	c.s.StageBatch(dsts, c.msgBuf)
}

// SendFanout stages the same (tag, val) message to every destination in
// dsts — the one-to-many shape of broadcast fan-out supersteps.
func (c *Ctx) SendFanout(dsts []int32, tag, val int64) {
	if !c.checkDsts(dsts) {
		return
	}
	c.msgBuf = c.msgBuf[:0]
	for range dsts {
		c.msgBuf = append(c.msgBuf, Message{From: c.comp, Tag: tag, Val: val})
	}
	c.s.StageBatch(dsts, c.msgBuf)
}

// Superstep runs one superstep: body is invoked once per component
// (concurrently over contiguous chunks); at the barrier the h-relation is
// measured, the superstep is charged max(w, g·h, L), and staged messages
// are routed into the inboxes for the next superstep by the sharded
// routing commit.
func (m *Machine) Superstep(body func(c *Ctx)) {
	if m.ctxs == nil {
		m.ctxs = make([]Ctx, m.P())
		for i := range m.ctxs {
			m.ctxs[i] = Ctx{comp: i, m: m}
		}
	}
	m.Route.Superstep(func(i int, s *engine.Sends[Message]) {
		c := &m.ctxs[i]
		c.s = s
		body(c)
	})
}

// bspModel binds the engine's message-routing runtime to the BSP cost
// rule and round definition.
type bspModel struct{ m *Machine }

func (md bspModel) Name() string   { return "BSP" }
func (md bspModel) Entity() string { return "component" }

func (md bspModel) Render(msg Message) string {
	return fmt.Sprintf("from=%d tag=%d val=%d", msg.From, msg.Tag, msg.Val) //lint:hotpathalloc-ok trace rendering: runs only when an event log is attached
}

// Snapshot and Restore implement engine.Snapshotter: superstep bodies
// mutate private memories free-form, so a fault checkpoint must capture
// them alongside the engine's inboxes — otherwise a rolled-back superstep
// would re-apply its private-state mutations on retry.
func (md bspModel) Snapshot() {
	m := md.m
	if m.ckPriv == nil {
		m.ckPriv = make([][]int64, len(m.priv))
	}
	for i, p := range m.priv {
		m.ckPriv[i] = append(m.ckPriv[i][:0], p...)
	}
}

// Restore implements engine.Snapshotter.
func (md bspModel) Restore() {
	for i := range md.m.priv {
		copy(md.m.priv[i], md.m.ckPriv[i])
	}
}

// PhaseCost charges max(w, g·h, L); a superstep is a round iff it routes
// an O(n/p)-relation and does O(gn/p + L) work.
func (md bspModel) PhaseCost(o engine.Outcome) cost.PhaseCost {
	pr := md.m.Params()
	w, h := o.MaxOps, o.MaxRW
	t := cost.Time(max(w, pr.G*h, pr.L))
	np := max(int64(md.m.N())/int64(pr.P), 1)
	isRound := h <= cost.RoundSlack*np &&
		w <= cost.RoundSlack*(pr.G*np)+pr.L
	return cost.PhaseCost{
		MaxOps:  w,
		MaxRW:   h,
		Time:    t,
		IsRound: isRound,
	}
}
