// Package bsp implements a cost-accurate simulator for Valiant's Bulk
// Synchronous Parallel model as specified in MacKenzie & Ramachandran
// (SPAA 1998), Section 2.1.
//
// A BSP machine has p processor/memory components communicating by
// point-to-point messages over a network characterised by a bandwidth
// parameter g and a latency parameter L (the paper assumes L ≥ g). The
// computation is a sequence of supersteps separated by bulk
// synchronisations. In a superstep each component performs local work and
// sends/receives messages; messages sent in superstep s are delivered before
// superstep s+1 begins. With w the maximum local work, and
// h = max_i(max(s_i, r_i)) the routed h-relation, a superstep costs
//
//	T = max(w, g·h, L).
//
// The simulator enforces the model's discipline that messages are sent
// "based on [the component's] state at the start of the superstep": sends
// may depend on private memory and on messages received in *earlier*
// supersteps, never on messages of the current one (incoming messages of the
// current superstep are simply not visible until the next).
//
// An input of size n is partitioned uniformly: component i is assigned
// either ⌈n/p⌉ or ⌊n/p⌋ inputs (Block distribution helpers below).
package bsp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cost"
)

// Message is a point-to-point BSP message.
type Message struct {
	// From is the sending component.
	From int
	// Tag is an algorithm-chosen small integer (e.g. a slot index).
	Tag int64
	// Val is the payload word.
	Val int64
}

// Machine is a BSP machine instance.
type Machine struct {
	params cost.Params
	n      int
	priv   [][]int64 // per-component private memory
	inbox  [][]Message
	report cost.Report
	err    error

	workers int
}

// Config parameterises a BSP machine.
type Config struct {
	// P is the number of components.
	P int
	// G and L are the bandwidth and latency parameters; L ≥ g ≥ 1.
	G, L int64
	// N is the input size (used for round classification: a superstep is a
	// round iff it routes an O(n/p)-relation and does O(gn/p + L) work).
	N int
	// PrivCells is the private memory size per component.
	PrivCells int
	// Workers caps simulation parallelism; 0 means GOMAXPROCS.
	Workers int
}

// New constructs a BSP machine with empty inboxes and zeroed private
// memories.
func New(c Config) (*Machine, error) {
	p := cost.Params{G: c.G, L: c.L, P: c.P}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if c.L < 1 {
		return nil, fmt.Errorf("bsp: latency L must be ≥ 1, got %d", c.L)
	}
	if c.N < 1 {
		return nil, fmt.Errorf("bsp: input size N must be ≥ 1, got %d", c.N)
	}
	if c.PrivCells < 0 {
		return nil, fmt.Errorf("bsp: negative private memory %d", c.PrivCells)
	}
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	m := &Machine{
		params:  p,
		n:       c.N,
		priv:    make([][]int64, c.P),
		inbox:   make([][]Message, c.P),
		workers: w,
	}
	for i := range m.priv {
		m.priv[i] = make([]int64, c.PrivCells)
	}
	m.report = cost.Report{Model: "BSP", N: c.N, Params: p}
	return m, nil
}

// MustNew is New but panics on configuration errors.
func MustNew(c Config) *Machine {
	m, err := New(c)
	if err != nil {
		panic(err)
	}
	return m
}

// P returns the number of components.
func (m *Machine) P() int { return m.params.P }

// G returns the bandwidth parameter.
func (m *Machine) G() int64 { return m.params.G }

// L returns the latency parameter.
func (m *Machine) L() int64 { return m.params.L }

// N returns the declared input size.
func (m *Machine) N() int { return m.n }

// Err returns the first simulation error, if any.
func (m *Machine) Err() error { return m.err }

// Report returns the accumulated cost report.
func (m *Machine) Report() *cost.Report { return &m.report }

// BlockRange returns the half-open index range [lo, hi) of the inputs
// assigned to component i under the paper's uniform partition: each
// component gets ⌈n/p⌉ or ⌊n/p⌋ inputs.
func BlockRange(n, p, i int) (lo, hi int) {
	q, r := n/p, n%p
	if i < r {
		lo = i * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (i-r)*q
	return lo, lo + q
}

// Scatter loads input words into private memories under the block
// distribution: component i receives input[lo:hi] at private addresses
// 0..hi-lo-1. Loading the input is not charged (it is the initial state).
func (m *Machine) Scatter(input []int64) error {
	if len(input) != m.n {
		return fmt.Errorf("bsp: Scatter input length %d ≠ N %d", len(input), m.n)
	}
	for i := 0; i < m.params.P; i++ {
		lo, hi := BlockRange(m.n, m.params.P, i)
		if hi-lo > len(m.priv[i]) {
			return fmt.Errorf("bsp: component %d private memory %d too small for block %d",
				i, len(m.priv[i]), hi-lo)
		}
		copy(m.priv[i][:hi-lo], input[lo:hi])
	}
	return nil
}

// Peek reads a private-memory cell of a component for host-side output
// extraction (not charged).
func (m *Machine) Peek(comp, addr int) int64 {
	if comp < 0 || comp >= m.params.P || addr < 0 || addr >= len(m.priv[comp]) {
		return 0
	}
	return m.priv[comp][addr]
}

// Ctx is the per-component handle inside a superstep.
type Ctx struct {
	comp int
	m    *Machine
	work int64
	out  []Message // staged sends, grouped later
	dst  []int32
	fail error
}

// Comp returns this component's index.
func (c *Ctx) Comp() int { return c.comp }

// Priv returns this component's private memory. Mutating it is free-form
// local state manipulation; charge it explicitly with Work.
func (c *Ctx) Priv() []int64 { return c.m.priv[c.comp] }

// Incoming returns the messages delivered to this component at the start of
// the superstep (i.e. sent during the previous superstep), in deterministic
// order (sorted by sender, then arrival order at the sender).
func (c *Ctx) Incoming() []Message { return c.m.inbox[c.comp] }

// Work charges k units of local computation.
func (c *Ctx) Work(k int) {
	if k > 0 {
		c.work += int64(k)
	}
}

// Send stages a message to component dst; it is delivered at the start of
// the next superstep.
func (c *Ctx) Send(dst int, tag, val int64) {
	if dst < 0 || dst >= c.m.params.P {
		if c.fail == nil {
			c.fail = fmt.Errorf("bsp: component %d sends to invalid component %d", c.comp, dst)
		}
		return
	}
	c.out = append(c.out, Message{From: c.comp, Tag: tag, Val: val})
	c.dst = append(c.dst, int32(dst))
}

// Superstep runs one superstep: body is invoked once per component
// (concurrently); at the barrier the h-relation is measured, the superstep
// is charged max(w, g·h, L), and staged messages are routed into the
// inboxes for the next superstep.
func (m *Machine) Superstep(body func(c *Ctx)) {
	if m.err != nil {
		return
	}
	p := m.params.P
	ctxs := make([]*Ctx, p)

	// Contiguous chunks per worker (cheap dispatch at large p).
	workers := m.workers
	if workers > p {
		workers = p
	}
	chunk := (p + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > p {
			hi = p
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := &Ctx{comp: i, m: m}
				body(c)
				ctxs[i] = c
			}
		}(lo, hi)
	}
	wg.Wait()

	m.commit(ctxs)
}

func (m *Machine) commit(ctxs []*Ctx) {
	p := m.params.P
	var w int64
	sent := make([]int64, p)
	recv := make([]int64, p)
	next := make([][]Message, p)

	for i, c := range ctxs {
		if c.fail != nil && m.err == nil {
			m.err = c.fail
		}
		if c.work > w {
			w = c.work
		}
		sent[i] = int64(len(c.out))
		for j, msg := range c.out {
			d := c.dst[j]
			recv[d]++
			next[d] = append(next[d], msg)
		}
	}
	if m.err != nil {
		return
	}

	var h int64
	for i := 0; i < p; i++ {
		if sent[i] > h {
			h = sent[i]
		}
		if recv[i] > h {
			h = recv[i]
		}
	}

	t := cost.Time(max64(w, max64(m.params.G*h, m.params.L)))
	np := int64(m.n) / int64(p)
	if np < 1 {
		np = 1
	}
	isRound := h <= cost.RoundSlack*np &&
		w <= cost.RoundSlack*(m.params.G*np)+m.params.L
	m.report.Add(cost.PhaseCost{
		MaxOps:  w,
		MaxRW:   h,
		Time:    t,
		IsRound: isRound,
	})

	// Deterministic delivery order: messages arrive grouped by sender id
	// (they were appended in component order above because ctxs is iterated
	// in order), so no extra sort is needed; assert the invariant cheaply.
	for i := range next {
		if !sort.SliceIsSorted(next[i], func(a, b int) bool {
			return next[i][a].From < next[i][b].From
		}) {
			sort.SliceStable(next[i], func(a, b int) bool {
				return next[i][a].From < next[i][b].From
			})
		}
	}
	m.inbox = next
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
