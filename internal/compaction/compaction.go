// Package compaction implements the Section 6 problem family of MacKenzie &
// Ramachandran (SPAA 1998) on the simulated machines:
//
//   - Linear Approximate Compaction (LAC): insert the ≤ h items of an n-cell
//     array into an array of size O(h).
//     DartLAC is the randomized dart-throwing algorithm (the QRQW algorithm
//     of Gibbons–Matias–Ramachandran [9], adapted): every live item throws
//     into a fresh 4×-oversized target, keeps its slot if its write won the
//     queue, and retries otherwise; the live set shrinks geometrically, so
//     the total target space is O(h) and the round count is small — the
//     mechanism behind the O(g·√(log n)) s-QSM upper bound.
//     DetLAC is the deterministic prefix-sums algorithm of Section 8 (exact
//     compaction, Θ(log n/log fan-in) phases).
//   - Load Balancing: redistribute h objects held by n processors so every
//     processor gets O(1 + h/n); prefix-sums based.
//   - Chromatic Load Balancing (CLB, Section 6): the paper's lower-bound
//     vehicle, solved here via compaction exactly as in the reduction of
//     Theorem 6.1.
//
// Padded Sort lives in this package too (PaddedSortBSP): it is grouped with
// LAC by the paper and reduces to it.
package compaction

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bsp"
	"repro/internal/prefix"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// DartFactor is the oversizing factor of each dart-throwing target segment.
const DartFactor = 4

// DartResult reports a randomized compaction.
type DartResult struct {
	// OutBase/OutSize delimit the concatenated target segments; every item
	// of the input occupies exactly one cell in there (holding its tag,
	// origin index + 1), all other cells are 0.
	OutBase, OutSize int
	// Rounds is the number of dart rounds executed.
	Rounds int
	// Placed maps each item tag to its absolute output cell. Iterating the
	// map directly is order-nondeterministic; order-sensitive consumers use
	// PlacedSlots.
	Placed map[int64]int
}

// Placement is one compacted item: its input tag and the output cell it won.
type Placement struct {
	Tag  int64
	Cell int
}

// PlacedSlots returns the placements ordered by output cell — the
// deterministic iteration view of Placed for ranking and rendering.
func (r *DartResult) PlacedSlots() []Placement {
	ps := make([]Placement, 0, len(r.Placed))
	for tag, cell := range r.Placed { //lint:maporder-ok slice is sorted by cell before return
		ps = append(ps, Placement{Tag: tag, Cell: cell})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Cell < ps[j].Cell })
	return ps
}

// DartLAC compacts the ≤ n items (nonzero cells) of [base, base+n) into
// O(#items) space by iterated dart throwing. The machine needs ≥ n
// processors (one per input cell on the first phase; strided otherwise is
// not supported because an item's retries are private state). rng drives
// the dart choices (host-side stand-in for per-processor private coins).
func DartLAC(m *qsm.Machine, rng *rand.Rand, base, n int) (*DartResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	if base < 0 || base+n > m.MemSize() {
		return nil, fmt.Errorf("compaction: input [%d,%d) outside memory", base, base+n)
	}
	if m.P() < n {
		return nil, fmt.Errorf("compaction: dart LAC needs ≥ n=%d processors, have %d", n, m.P())
	}

	// Phase 0: every processor inspects its cell; items become live darts.
	vals := make([]int64, n)
	m.ForAll(n, func(c *qsm.Ctx) {
		vals[c.Proc()] = c.Read(base + c.Proc())
	})
	if m.Err() != nil {
		return nil, m.Err()
	}
	type dart struct {
		item int   // origin cell (processor) index
		tag  int64 // value written (origin+1 ensures nonzero)
	}
	var live []dart
	for i, v := range vals {
		if v != 0 {
			live = append(live, dart{item: i, tag: int64(i) + 1})
		}
	}

	res := &DartResult{OutBase: m.MemSize(), Placed: make(map[int64]int)}
	maxRounds := 4*log2ceil(n) + 8

	for len(live) > 0 {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("compaction: dart LAC did not converge in %d rounds (%d items left)",
				maxRounds, len(live))
		}
		res.Rounds++
		segBase := m.MemSize()
		segSize := DartFactor * len(live)
		m.Grow(segBase + segSize)
		res.OutSize += segSize

		// Each live item picks a slot (its processor's private coin).
		slot := make([]int, m.P())
		inRound := make([]bool, m.P())
		for _, d := range live {
			slot[d.item] = segBase + rng.Intn(segSize)
			inRound[d.item] = true
		}
		// Phase A: throw (queued writes; an arbitrary writer per cell wins).
		m.Phase(func(c *qsm.Ctx) {
			if inRound[c.Proc()] {
				c.Write(slot[c.Proc()], int64(c.Proc())+1)
			}
		})
		// Phase B: read back; winners claim their slot.
		won := make([]int64, m.P())
		m.Phase(func(c *qsm.Ctx) {
			if inRound[c.Proc()] {
				won[c.Proc()] = c.Read(slot[c.Proc()])
			}
		})
		if m.Err() != nil {
			return nil, m.Err()
		}
		var next []dart
		for _, d := range live {
			if won[d.item] == d.tag {
				res.Placed[d.tag] = slot[d.item]
			} else {
				next = append(next, d)
			}
		}
		live = next
	}
	return res, m.Err()
}

// DartLACDegraded is DartLAC for machines running in degraded fault
// mode: work is re-partitioned over the surviving processors before
// every phase, and each round's live darts are dealt round-robin to
// survivors, so the darts of a crashed processor migrate instead of
// being lost. The written tag identifies the dart (origin+1), not the
// throwing processor, so a dart's win test is owner-independent. A dart
// whose read-back is lost to a crash simply stays live and is rethrown.
// Fails with a diagnosable error once every processor has crashed.
func DartLACDegraded(m *qsm.Machine, rng *rand.Rand, base, n int) (*DartResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	if base < 0 || base+n > m.MemSize() {
		return nil, fmt.Errorf("compaction: input [%d,%d) outside memory", base, base+n)
	}
	if m.P() < n {
		return nil, fmt.Errorf("compaction: dart LAC needs ≥ n=%d processors, have %d", n, m.P())
	}

	surv, rank := survivorRanks(m)
	if len(surv) == 0 {
		return nil, fmt.Errorf("compaction: all %d processors crashed", m.P())
	}
	ns := len(surv)
	vals := make([]int64, n)
	m.Phase(func(c *qsm.Ctx) {
		r := rank[c.Proc()]
		if r < 0 {
			return
		}
		for j := r; j < n; j += ns {
			vals[j] = c.Read(base + j)
		}
	})
	if m.Err() != nil {
		return nil, m.Err()
	}
	type dart struct {
		item int
		tag  int64
	}
	var live []dart
	for i, v := range vals {
		if v != 0 {
			live = append(live, dart{item: i, tag: int64(i) + 1})
		}
	}

	res := &DartResult{OutBase: m.MemSize(), Placed: make(map[int64]int)}
	maxRounds := 4*log2ceil(n) + 8

	for len(live) > 0 {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("compaction: dart LAC did not converge in %d rounds (%d items left)",
				maxRounds, len(live))
		}
		res.Rounds++
		segBase := m.MemSize()
		segSize := DartFactor * len(live)
		m.Grow(segBase + segSize)
		res.OutSize += segSize

		surv, rank = survivorRanks(m)
		if len(surv) == 0 {
			return nil, fmt.Errorf("compaction: all %d processors crashed (round %d, %d items live)",
				m.P(), res.Rounds, len(live))
		}
		// Deal darts round-robin to survivors; slots drawn host-side per
		// dart in live order (deterministic for the run's crash history).
		// Each survivor's darts become one request column pair, submitted
		// whole: throw addresses with tags (phase A), read-backs (phase B).
		assign := make([][]int, m.P())
		slotOf := make([]int, len(live))
		wAddrs := make([][]int32, m.P())
		wVals := make([][]int64, m.P())
		for k := range live {
			pr := surv[k%len(surv)]
			assign[pr] = append(assign[pr], k)
			slotOf[k] = segBase + rng.Intn(segSize)
			wAddrs[pr] = append(wAddrs[pr], int32(slotOf[k]))
			wVals[pr] = append(wVals[pr], live[k].tag)
		}
		// Phase A: throw (queued writes; an arbitrary writer per cell wins).
		m.Phase(func(c *qsm.Ctx) {
			c.WriteBatch(wAddrs[c.Proc()], wVals[c.Proc()])
		})
		// Phase B: read back; winners claim their slot. A crash between
		// the phases leaves a nil column for its darts — they stay live.
		back := make([][]int64, m.P())
		m.Phase(func(c *qsm.Ctx) {
			pr := c.Proc()
			back[pr] = c.ReadBatch(wAddrs[pr], back[pr][:0])
		})
		if m.Err() != nil {
			return nil, m.Err()
		}
		won := make([]int64, len(live))
		for pr, ks := range assign {
			for i := 0; i < len(back[pr]) && i < len(ks); i++ {
				won[ks[i]] = back[pr][i]
			}
		}
		var next []dart
		for k, d := range live {
			if won[k] == d.tag {
				res.Placed[d.tag] = slotOf[k]
			} else {
				next = append(next, d)
			}
		}
		live = next
	}
	return res, m.Err()
}

// survivorRanks returns the surviving processor ids and a per-processor
// dense-rank map (−1 for masked processors).
func survivorRanks(m *qsm.Machine) (surv []int, rank []int) {
	surv = m.Survivors()
	rank = make([]int, m.P())
	for i := range rank {
		rank[i] = -1
	}
	for r, pr := range surv {
		rank[pr] = r
	}
	return surv, rank
}

// VerifyPlacement checks a dart-compaction result for soundness against
// the input the machine compacted: every item (nonzero input cell) is
// placed exactly once, inside the output window, with its own tag, and no
// two items share a cell. It is the chaos harness's correctness oracle
// for LAC runs (and a fuzz target: it must reject any mutation of a valid
// placement without panicking).
func VerifyPlacement(input []int64, r *DartResult) error {
	if r == nil {
		return fmt.Errorf("compaction: nil result")
	}
	items := 0
	for _, v := range input {
		if v != 0 {
			items++
		}
	}
	if len(r.Placed) != items {
		return fmt.Errorf("compaction: placed %d items, input has %d", len(r.Placed), items)
	}
	if r.OutSize < 0 || r.OutBase < 0 {
		return fmt.Errorf("compaction: invalid output window [%d,+%d)", r.OutBase, r.OutSize)
	}
	ps := r.PlacedSlots()
	for i, pl := range ps {
		if pl.Tag < 1 || pl.Tag > int64(len(input)) {
			return fmt.Errorf("compaction: tag %d outside input [1,%d]", pl.Tag, len(input))
		}
		if input[pl.Tag-1] == 0 {
			return fmt.Errorf("compaction: tag %d names an empty input cell", pl.Tag)
		}
		if pl.Cell < r.OutBase || pl.Cell >= r.OutBase+r.OutSize {
			return fmt.Errorf("compaction: tag %d placed at cell %d outside [%d,%d)",
				pl.Tag, pl.Cell, r.OutBase, r.OutBase+r.OutSize)
		}
		if i > 0 && ps[i-1].Cell == pl.Cell {
			return fmt.Errorf("compaction: tags %d and %d share cell %d",
				ps[i-1].Tag, pl.Tag, pl.Cell)
		}
	}
	return nil
}

// DetLAC compacts exactly: the k items of [base, base+n) end up in cells
// [out, out+k) in input order (stable), where out is returned along with k.
// It is the deterministic prefix-sums algorithm of Section 8, with the
// given tree fan-in.
func DetLAC(m *qsm.Machine, base, n, fanin int) (out, k int, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	if base < 0 || base+n > m.MemSize() {
		return 0, 0, fmt.Errorf("compaction: input [%d,%d) outside memory", base, base+n)
	}

	// Indicator array.
	ind := m.MemSize()
	m.Grow(ind + n)
	p := m.P()
	m.Phase(func(c *qsm.Ctx) {
		for j := c.Proc(); j < n; j += p {
			v := c.Read(base + j)
			var b int64
			if v != 0 {
				b = 1
			}
			c.Op(1)
			c.Write(ind+j, b)
		}
	})

	ranks, err := prefix.RunQSM(m, ind, n, fanin)
	if err != nil {
		return 0, 0, err
	}
	k = int(m.Peek(ranks + n - 1))

	out = m.MemSize()
	m.Grow(out + max(k, 1))
	m.Phase(func(c *qsm.Ctx) {
		for j := c.Proc(); j < n; j += p {
			v := c.Read(base + j)
			r := c.Read(ranks + j)
			c.Op(1)
			if v != 0 {
				c.Write(out+int(r)-1, v)
			}
		}
	})
	return out, k, m.Err()
}

// LoadBalance solves the paper's Load Balancing problem: processor i of n
// holds counts[i] (read from the n cells at base) objects; the algorithm
// assigns every object a destination processor so that each destination
// receives at most ⌈h/n⌉+1 objects. The returned base addresses an h-cell
// array whose r-th cell holds the origin processor of the object with
// global rank r; the destination of rank r is r mod n (round-robin over the
// rank space), which every processor can compute locally.
func LoadBalance(m *qsm.Machine, base, n, fanin, maxPer int) (out int, h int, err error) {
	if n < 1 {
		return 0, 0, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	if maxPer < 1 {
		return 0, 0, fmt.Errorf("compaction: maxPer must be ≥ 1, got %d", maxPer)
	}
	if base < 0 || base+n > m.MemSize() {
		return 0, 0, fmt.Errorf("compaction: input [%d,%d) outside memory", base, base+n)
	}
	offsets, err := prefix.RunQSM(m, base, n, fanin)
	if err != nil {
		return 0, 0, err
	}
	h = int(m.Peek(offsets + n - 1))
	out = m.MemSize()
	m.Grow(out + max(h, 1))

	p := m.P()
	m.Phase(func(c *qsm.Ctx) {
		for j := c.Proc(); j < n; j += p {
			cnt := c.Read(base + j)
			end := c.Read(offsets + j)
			c.Op(1)
			if cnt > int64(maxPer) {
				// Guard per-processor write volume; the caller promised
				// counts ≤ maxPer.
				cnt = int64(maxPer)
			}
			// The object run is contiguous in rank space: fill it in one
			// batched write of the origin tag.
			c.WriteFill(out+int(end-cnt), int(cnt), int64(j)+1)
		}
	})
	return out, h, m.Err()
}

// --- Chromatic Load Balancing (Section 6) -----------------------------------

// CLBResult reports a Chromatic Load Balancing run.
type CLBResult struct {
	// Color is the color the solver picked (always 0: any color is valid).
	Color int
	// Groups is the number of input groups bearing that color.
	Groups int
	// DestRows[i] is the destination row assigned to the i-th such group's
	// objects (each group of 4m objects fills 4 destination rows of m).
	// Iterating the map directly is order-nondeterministic; order-sensitive
	// consumers use RowAssignments.
	DestRows map[int][4]int
	// Rounds is the dart rounds the inner compaction used.
	Rounds int
}

// GroupRows is one input group's destination-row assignment.
type GroupRows struct {
	Group int
	Rows  [4]int
}

// RowAssignments returns the destination rows ordered by group index —
// the deterministic iteration view of DestRows.
func (r *CLBResult) RowAssignments() []GroupRows {
	gs := make([]GroupRows, 0, len(r.DestRows))
	for g, rows := range r.DestRows { //lint:maporder-ok slice is sorted by group before return
		gs = append(gs, GroupRows{Group: g, Rows: rows})
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i].Group < gs[j].Group })
	return gs
}

// SolveCLB solves the chromatic load-balancing instance on a QSM machine by
// the reduction of Theorem 6.1: pick a color, compact the groups of that
// color with DartLAC, and map the rank-r compacted group to destination
// rows 4r..4r+3 (each destination row receives exactly m of the group's 4m
// objects). Succeeds iff 4·(groups of the color) ≤ n destination rows —
// which holds with overwhelming probability since the expectation is n/(2m).
//
// The machine must expose the instance's colors in cells [base, base+n).
func SolveCLB(m *qsm.Machine, rng *rand.Rand, inst *workload.CLB, base int) (*CLBResult, error) {
	n := inst.N
	if base < 0 || base+n > m.MemSize() {
		return nil, fmt.Errorf("compaction: colors [%d,%d) outside memory", base, base+n)
	}
	if m.P() < n {
		return nil, fmt.Errorf("compaction: CLB needs ≥ n=%d processors", n)
	}
	const color = 0

	// Mark groups of the chosen color.
	marks := m.MemSize()
	m.Grow(marks + n)
	m.ForAll(n, func(c *qsm.Ctx) {
		v := c.Read(base + c.Proc())
		var b int64
		if int(v) == color {
			b = int64(c.Proc()) + 1
		}
		c.Op(1)
		c.Write(marks+c.Proc(), b)
	})

	dart, err := DartLAC(m, rng, marks, n)
	if err != nil {
		return nil, err
	}

	// Rank the claimed slots by position to obtain dense ranks (host-side
	// ordering of the O(#groups) placements; in-model this is a DetLAC over
	// the O(h)-sized dart output, which costs lower-order phases).
	ps := dart.PlacedSlots()

	res := &CLBResult{Color: color, Groups: len(ps), DestRows: make(map[int][4]int), Rounds: dart.Rounds}
	if 4*len(ps) > n {
		return nil, fmt.Errorf("compaction: CLB overflow: %d groups of color %d need %d > n=%d rows",
			len(ps), color, 4*len(ps), n)
	}
	// Publish destination rows: one phase, the processor owning each
	// compacted group writes its 4 row ids next to its slot (pointer array).
	ptrs := m.MemSize()
	m.Grow(ptrs + 4*max(len(ps), 1))
	rankOf := make(map[int]int, len(ps)) // item proc -> rank
	for r, pl := range ps {
		rankOf[int(pl.Tag)-1] = r
	}
	m.Phase(func(c *qsm.Ctx) {
		r, ok := rankOf[c.Proc()]
		if !ok {
			return
		}
		// The 4 row ids are contiguous: one block write per group owner.
		var rows [4]int64
		for i := range rows {
			rows[i] = int64(4*r+i) + 1
		}
		c.WriteBlock(ptrs+4*r, rows[:])
	})
	if m.Err() != nil {
		return nil, m.Err()
	}
	for r, pl := range ps {
		res.DestRows[int(pl.Tag)-1] = [4]int{4 * r, 4*r + 1, 4*r + 2, 4*r + 3}
	}
	return res, nil
}

// --- Padded Sort (BSP) --------------------------------------------------------

// PaddedSortBSP sorts the n block-distributed U[0,1] fixed-point values
// (workload.Uniform01) into a padded array of size padFactor·n: component i
// owns output slots [i·S, (i+1)·S), S = padFactor·⌈n/p⌉, at private offset
// outOff (returned). Nonzero entries are globally sorted; zeros are the
// NULL padding. Fails (returns an error) in the improbable event that a
// bucket overflows its segment.
func PaddedSortBSP(m *bsp.Machine, n, padFactor int) (int, error) {
	if padFactor < 2 {
		return 0, fmt.Errorf("compaction: pad factor must be ≥ 2, got %d", padFactor)
	}
	if n < 1 {
		return 0, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	p := m.P()
	maxBlk := (n + p - 1) / p
	seg := padFactor * maxBlk
	outOff := maxBlk + 1

	// Superstep 1: route every value to the component owning its bucket.
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		for i := 0; i < hi-lo; i++ {
			v := c.Priv()[i]
			dst := int(v * int64(p) / workload.Denom01)
			if dst >= p {
				dst = p - 1
			}
			c.Send(dst, 0, v)
			c.Work(1)
		}
	})
	// Superstep 2: local sort into the padded segment.
	overflow := make([]bool, p)
	m.Superstep(func(c *bsp.Ctx) {
		in := c.Incoming()
		vals := make([]int64, 0, len(in))
		for _, msg := range in {
			vals = append(vals, msg.Val)
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		c.Work(len(vals) * log2ceil(len(vals)+1))
		if len(vals) > seg {
			overflow[c.Comp()] = true
			return
		}
		for i := 0; i < seg; i++ {
			if i < len(vals) {
				c.Priv()[outOff+i] = vals[i]
			} else {
				c.Priv()[outOff+i] = 0
			}
		}
	})
	if m.Err() != nil {
		return 0, m.Err()
	}
	for comp, of := range overflow {
		if of {
			return 0, fmt.Errorf("compaction: padded sort bucket %d overflowed its segment of %d", comp, seg)
		}
	}
	return outOff, nil
}

// PrivNeedPaddedSortBSP returns the private memory PaddedSortBSP needs.
func PrivNeedPaddedSortBSP(n, p, padFactor int) int {
	maxBlk := (n + p - 1) / p
	return maxBlk + 1 + padFactor*maxBlk
}

func log2ceil(x int) int {
	k := 0
	for v := 1; v < x; v <<= 1 {
		k++
	}
	return k
}
