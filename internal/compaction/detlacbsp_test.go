package compaction

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/workload"
)

func runDetLACBSP(t *testing.T, n, p, hWant, fanin int, seed int64) (*bsp.Machine, int, int) {
	t.Helper()
	in, err := workload.Sparse(seed, n, hWant)
	if err != nil {
		t.Fatal(err)
	}
	m, err := bsp.New(bsp.Config{
		P: p, G: 1, L: 2, N: n,
		PrivCells: PrivNeedDetLACBSP(n, p, fanin),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scatter(in); err != nil {
		t.Fatal(err)
	}
	outOff, h, err := DetLACBSP(m, n, fanin)
	if err != nil {
		t.Fatal(err)
	}
	return m, outOff, h
}

func TestDetLACBSPCorrectness(t *testing.T) {
	for _, tc := range []struct{ n, p, h, fanin int }{
		{16, 2, 0, 2}, {16, 4, 4, 2}, {100, 7, 30, 3}, {256, 16, 64, 4}, {512, 8, 512, 2},
	} {
		m, outOff, h := runDetLACBSP(t, tc.n, tc.p, tc.h, tc.fanin, int64(tc.n))
		if h != tc.h {
			t.Fatalf("%+v: h = %d, want %d", tc, h, tc.h)
		}
		// Gather the compacted output in component order: it must be the
		// items in stable input order (tags are origin+1, increasing).
		var items []int64
		for comp := 0; comp < tc.p; comp++ {
			ln := int(m.Peek(comp, outOff-1))
			for i := 0; i < ln; i++ {
				// Slots fill by tag order within a component's block.
				items = append(items, m.Peek(comp, outOff+i))
			}
		}
		if len(items) != tc.h {
			t.Fatalf("%+v: output holds %d items, want %d", tc, len(items), tc.h)
		}
		for i := 1; i < len(items); i++ {
			if items[i] <= items[i-1] {
				t.Fatalf("%+v: not stable: %d after %d", tc, items[i], items[i-1])
			}
		}
	}
}

func TestDetLACBSPAllRounds(t *testing.T) {
	n, p := 1<<12, 1<<9 // n/p = 8
	m, _, h := runDetLACBSP(t, n, p, n/4, 8, 9)
	if h != n/4 {
		t.Fatalf("h = %d", h)
	}
	if !m.Report().AllRounds {
		t.Error("DetLACBSP with fan-in n/p must compute in rounds")
	}
}

func TestDetLACBSPValidation(t *testing.T) {
	m, _ := bsp.New(bsp.Config{P: 2, G: 1, L: 1, N: 4, PrivCells: 64})
	if _, _, err := DetLACBSP(m, 0, 2); err == nil {
		t.Error("want n error")
	}
	if _, _, err := DetLACBSP(m, 4, 1); err == nil {
		t.Error("want fan-in error (propagated from prefix)")
	}
}
