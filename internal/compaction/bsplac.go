package compaction

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bsp"
)

// BSPDartResult reports a BSP dart-throwing compaction.
type BSPDartResult struct {
	// Rounds is the number of dart rounds (each round is 2 supersteps).
	Rounds int
	// Placed maps every item tag to its (component, segment slot) in the
	// final placement. Iterating the map directly is order-nondeterministic;
	// order-sensitive consumers use PlacedSlots.
	Placed map[int64][2]int
	// OutSize is the total target space used across rounds.
	OutSize int
}

// BSPPlacement is one compacted item: its tag and the (component, slot)
// pair it won.
type BSPPlacement struct {
	Tag  int64
	Comp int
	Slot int
}

// PlacedSlots returns the placements ordered by global slot — the
// deterministic iteration view of Placed.
func (r *BSPDartResult) PlacedSlots() []BSPPlacement {
	ps := make([]BSPPlacement, 0, len(r.Placed))
	for tag, loc := range r.Placed { //lint:maporder-ok slice is sorted by slot before return
		ps = append(ps, BSPPlacement{Tag: tag, Comp: loc[0], Slot: loc[1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Slot < ps[j].Slot })
	return ps
}

// DartLACBSP compacts the ≤ n items (nonzero private cells of the
// block-distributed input) into O(#items) space on a BSP machine by dart
// throwing: every live item throws a dart at a uniformly random slot of a
// fresh 4×-oversized target (slots are striped over components); the
// component owning the slot picks the winner (lowest sender id, a
// deterministic queue head) and acknowledges it; losers retry. The
// h-relation per round is the maximum slot collision count — the same
// contention the QSM variant is charged.
//
// Items are tagged origin·blk + local index + 1. Private memory needs
// PrivNeedDartBSP(n, p) cells.
func DartLACBSP(m *bsp.Machine, rng *rand.Rand, n int) (*BSPDartResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("compaction: n must be ≥ 1, got %d", n)
	}
	p := m.P()

	// Collect live items (host-side mirror of per-component private state;
	// all decisions below are per-item-local and per-slot-local, exactly
	// what the components could compute themselves).
	type item struct {
		comp int
		tag  int64
	}
	var live []item
	collect := make([][]int64, p)
	m.Superstep(func(c *bsp.Ctx) {
		lo, hi := bsp.BlockRange(n, p, c.Comp())
		var tags []int64
		for i := 0; i < hi-lo; i++ {
			if c.Priv()[i] != 0 {
				tags = append(tags, int64(lo+i)+1)
			}
			c.Work(1)
		}
		collect[c.Comp()] = tags
	})
	if m.Err() != nil {
		return nil, m.Err()
	}
	for comp, tags := range collect {
		for _, tg := range tags {
			live = append(live, item{comp: comp, tag: tg})
		}
	}

	res := &BSPDartResult{Placed: make(map[int64][2]int)}
	maxRounds := 4*log2ceil(n) + 8

	for len(live) > 0 {
		if res.Rounds >= maxRounds {
			return nil, fmt.Errorf("compaction: BSP dart LAC did not converge in %d rounds", maxRounds)
		}
		res.Rounds++
		segSize := DartFactor * len(live)
		segBase := res.OutSize // global slot ids are unique across rounds
		res.OutSize += segSize

		// Each live item draws a slot in this round's fresh segment; slot
		// s lives on component s % p. The message Tag carries the global
		// slot id.
		throw := make(map[int][][2]int64, p) // comp -> (slot, tag) messages
		for _, it := range live {
			s := segBase + rng.Intn(segSize)
			throw[it.comp] = append(throw[it.comp], [2]int64{int64(s), it.tag})
		}
		m.Superstep(func(c *bsp.Ctx) {
			for _, t := range throw[c.Comp()] {
				c.Send(int(t[0])%p, t[0], t[1])
				c.Work(1)
			}
		})
		// Slot owners pick the first arrival per slot (deterministic queue
		// head) and acknowledge the winner's origin component.
		m.Superstep(func(c *bsp.Ctx) {
			seen := make(map[int64]bool)
			for _, msg := range c.Incoming() {
				c.Work(1)
				if seen[msg.Tag] {
					continue // slot already claimed this round
				}
				seen[msg.Tag] = true
				c.Send(msg.From, msg.Tag, msg.Val) // ack: slot, winner tag
			}
		})
		// Winners retire; losers stay live. The acks delivered in this
		// superstep identify the winners; each component records only its
		// own acks (no shared state across concurrent bodies).
		ackByComp := make([][][2]int64, p)
		m.Superstep(func(c *bsp.Ctx) {
			for _, msg := range c.Incoming() {
				c.Work(1)
				ackByComp[c.Comp()] = append(ackByComp[c.Comp()], [2]int64{msg.Val, msg.Tag})
			}
		})
		acked := make(map[int64]int64) // tag -> slot
		for _, as := range ackByComp {
			for _, a := range as {
				acked[a[0]] = a[1]
			}
		}
		if m.Err() != nil {
			return nil, m.Err()
		}
		var next []item
		for _, it := range live {
			if slot, ok := acked[it.tag]; ok {
				res.Placed[it.tag] = [2]int{int(slot) % p, int(slot)}
			} else {
				next = append(next, it)
			}
		}
		live = next
	}
	return res, m.Err()
}

// PrivNeedDartBSP returns the private memory DartLACBSP needs.
func PrivNeedDartBSP(n, p int) int { return (n + p - 1) / p }
