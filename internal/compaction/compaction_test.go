package compaction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/cost"
	"repro/internal/qsm"
	"repro/internal/workload"
)

func qsmFor(t *testing.T, n, p int, g int64) *qsm.Machine {
	t.Helper()
	m, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: p, G: g, N: n, MemCells: n})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDartLACPlacesEveryItem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ n, h int }{
		{16, 0}, {16, 1}, {64, 8}, {256, 64}, {512, 512}, {1000, 100},
	} {
		in, err := workload.Sparse(rng.Int63(), tc.n, tc.h)
		if err != nil {
			t.Fatal(err)
		}
		m := qsmFor(t, tc.n, tc.n, 2)
		if err := m.Load(0, in); err != nil {
			t.Fatal(err)
		}
		res, err := DartLAC(m, rng, 0, tc.n)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if len(res.Placed) != tc.h {
			t.Fatalf("%+v: placed %d items, want %d", tc, len(res.Placed), tc.h)
		}
		// Linear size: output ≤ DartFactor·h·(geometric series bound 2).
		if tc.h > 0 && res.OutSize > 2*DartFactor*tc.h+DartFactor {
			t.Errorf("%+v: output size %d not linear in h=%d", tc, res.OutSize, tc.h)
		}
		// Every placement cell actually holds the item's tag, and cells are
		// distinct.
		seen := map[int]bool{}
		for tag, cell := range res.Placed {
			if seen[cell] {
				t.Fatalf("%+v: two items share cell %d", tc, cell)
			}
			seen[cell] = true
			if got := m.Peek(cell); got != tag {
				t.Fatalf("%+v: cell %d holds %d, want tag %d", tc, cell, got, tag)
			}
		}
	}
}

func TestDartLACValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := qsmFor(t, 8, 8, 1)
	if _, err := DartLAC(m, rng, 0, 0); err == nil {
		t.Error("want n error")
	}
	if _, err := DartLAC(m, rng, 4, 8); err == nil {
		t.Error("want range error")
	}
	small := qsmFor(t, 64, 4, 1)
	small.Grow(64)
	if _, err := DartLAC(small, rng, 0, 64); err == nil {
		t.Error("want processors error")
	}
}

func TestDartLACRoundsSmall(t *testing.T) {
	// With 4× oversizing the live set shrinks fast: rounds should be well
	// below the log₂ n guard.
	rng := rand.New(rand.NewSource(3))
	n := 1 << 12
	in, _ := workload.Sparse(7, n, n/4)
	m := qsmFor(t, n, n, 2)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	res, err := DartLAC(m, rng, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 8 {
		t.Errorf("dart rounds = %d, want ≤ 8 for n=2^12", res.Rounds)
	}
}

func TestDetLACExactStable(t *testing.T) {
	for _, tc := range []struct{ n, h int }{
		{1, 0}, {1, 1}, {10, 3}, {100, 50}, {257, 31},
	} {
		in, err := workload.Sparse(int64(tc.n), tc.n, tc.h)
		if err != nil {
			t.Fatal(err)
		}
		m := qsmFor(t, tc.n, tc.n, 1)
		if err := m.Load(0, in); err != nil {
			t.Fatal(err)
		}
		out, k, err := DetLAC(m, 0, tc.n, 4)
		if err != nil {
			t.Fatal(err)
		}
		if k != tc.h {
			t.Fatalf("%+v: k = %d, want %d", tc, k, tc.h)
		}
		// Stable: items appear in input order.
		var want []int64
		for _, v := range in {
			if v != 0 {
				want = append(want, v)
			}
		}
		for i, w := range want {
			if got := m.Peek(out + i); got != w {
				t.Fatalf("%+v: out[%d] = %d, want %d", tc, i, got, w)
			}
		}
	}
}

func TestDetLACValidation(t *testing.T) {
	m := qsmFor(t, 8, 8, 1)
	if _, _, err := DetLAC(m, 0, 0, 2); err == nil {
		t.Error("want n error")
	}
	if _, _, err := DetLAC(m, 6, 8, 2); err == nil {
		t.Error("want range error")
	}
}

func TestDetLACPropertyMatchesDart(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8) bool {
		n := int(nRaw%120) + 1
		h := int(hRaw) % (n + 1)
		in, err := workload.Sparse(seed, n, h)
		if err != nil {
			return false
		}
		m1, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: 1, N: n, MemCells: n})
		if err != nil {
			return false
		}
		if err := m1.Load(0, in); err != nil {
			return false
		}
		_, k, err := DetLAC(m1, 0, n, 2)
		if err != nil || k != h {
			return false
		}
		m2, err := qsm.New(qsm.Config{Rule: cost.RuleQSM, P: n, G: 1, N: n, MemCells: n})
		if err != nil {
			return false
		}
		if err := m2.Load(0, in); err != nil {
			return false
		}
		res, err := DartLAC(m2, rand.New(rand.NewSource(seed)), 0, n)
		return err == nil && len(res.Placed) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoadBalance(t *testing.T) {
	// 16 processors with skewed counts; every object must get a slot and
	// origins must appear exactly count times.
	n := 16
	counts := []int64{9, 0, 0, 3, 1, 1, 0, 0, 5, 2, 0, 0, 0, 0, 0, 4}
	m := qsmFor(t, n, n, 1)
	if err := m.Load(0, counts); err != nil {
		t.Fatal(err)
	}
	out, h, err := LoadBalance(m, 0, n, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if h != 25 {
		t.Fatalf("h = %d, want 25", h)
	}
	got := make(map[int64]int)
	for r := 0; r < h; r++ {
		got[m.Peek(out+r)-1]++
	}
	for i, c := range counts {
		if int64(got[int64(i)]) != c {
			t.Errorf("origin %d appears %d times, want %d", i, got[int64(i)], c)
		}
	}
	// Round-robin destinations: each of n processors receives ≤ ⌈h/n⌉.
	per := make([]int, n)
	for r := 0; r < h; r++ {
		per[r%n]++
	}
	for i, c := range per {
		if c > (h+n-1)/n {
			t.Errorf("destination %d got %d > ⌈h/n⌉", i, c)
		}
	}
}

func TestLoadBalanceValidation(t *testing.T) {
	m := qsmFor(t, 8, 8, 1)
	if _, _, err := LoadBalance(m, 0, 0, 2, 1); err == nil {
		t.Error("want n error")
	}
	if _, _, err := LoadBalance(m, 0, 8, 2, 0); err == nil {
		t.Error("want maxPer error")
	}
	if _, _, err := LoadBalance(m, 4, 8, 2, 1); err == nil {
		t.Error("want range error")
	}
}

func TestSolveCLB(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, err := workload.NewCLB(11, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	colors := make([]int64, inst.N)
	for i, c := range inst.Colors {
		colors[i] = int64(c)
	}
	m := qsmFor(t, inst.N, inst.N, 2)
	if err := m.Load(0, colors); err != nil {
		t.Fatal(err)
	}
	res, err := SolveCLB(m, rng, inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := inst.GroupsOfColor(0)
	if res.Groups != len(want) {
		t.Fatalf("solver found %d groups of color 0, want %d", res.Groups, len(want))
	}
	// Every group of color 0 got 4 distinct rows; rows never shared.
	rows := map[int]bool{}
	for _, g := range want {
		dr, ok := res.DestRows[g]
		if !ok {
			t.Fatalf("group %d unassigned", g)
		}
		for _, r := range dr {
			if rows[r] {
				t.Fatalf("row %d assigned twice", r)
			}
			rows[r] = true
			if r < 0 || r >= inst.N {
				t.Fatalf("row %d out of range", r)
			}
		}
	}
}

func TestPaddedSortBSP(t *testing.T) {
	n, p, pad := 1<<10, 16, 4
	in := workload.Uniform01(21, n)
	m, err := bsp.New(bsp.Config{
		P: p, G: 1, L: 4, N: n,
		PrivCells: PrivNeedPaddedSortBSP(n, p, pad),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Scatter(in); err != nil {
		t.Fatal(err)
	}
	outOff, err := PaddedSortBSP(m, n, pad)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the padded array and verify sortedness + multiset equality.
	maxBlk := (n + p - 1) / p
	seg := pad * maxBlk
	var nonzero []int64
	prev := int64(-1)
	for comp := 0; comp < p; comp++ {
		for i := 0; i < seg; i++ {
			v := m.Peek(comp, outOff+i)
			if v == 0 {
				continue
			}
			if v < prev {
				t.Fatalf("output not sorted: %d after %d", v, prev)
			}
			prev = v
			nonzero = append(nonzero, v)
		}
	}
	if len(nonzero) != n {
		t.Fatalf("output holds %d values, want %d", len(nonzero), n)
	}
	// Multiset check via sorted copies.
	inCopy := append([]int64(nil), in...)
	sortInt64(inCopy)
	for i := range inCopy {
		if inCopy[i] != nonzero[i] {
			t.Fatalf("value multiset mismatch at %d", i)
		}
	}
}

func TestPaddedSortBSPValidation(t *testing.T) {
	m, _ := bsp.New(bsp.Config{P: 2, G: 1, L: 1, N: 4, PrivCells: 64})
	if _, err := PaddedSortBSP(m, 4, 1); err == nil {
		t.Error("want pad-factor error")
	}
	if _, err := PaddedSortBSP(m, 0, 2); err == nil {
		t.Error("want n error")
	}
}

func sortInt64(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// zeroSource forces every dart to slot 0: exactly one item retires per
// round, so with enough items the convergence guard must fire.
type zeroSource struct{}

func (zeroSource) Int63() int64 { return 0 }
func (zeroSource) Seed(int64)   {}

func TestDartLACNonConvergenceGuard(t *testing.T) {
	n := 256
	in, err := workload.Sparse(1, n, n) // every cell an item
	if err != nil {
		t.Fatal(err)
	}
	m := qsmFor(t, n, n, 1)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(zeroSource{})
	if _, err := DartLAC(m, rng, 0, n); err == nil {
		t.Fatal("want non-convergence error under an adversarial dart source")
	}
}

func TestDartLACAdversarialSourceStillCorrectWhenFeasible(t *testing.T) {
	// With few items, one-retirement-per-round still finishes within the
	// guard; the result must be complete and collision-free.
	n, h := 64, 8
	in, err := workload.Sparse(2, n, h)
	if err != nil {
		t.Fatal(err)
	}
	m := qsmFor(t, n, n, 1)
	if err := m.Load(0, in); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(zeroSource{})
	res, err := DartLAC(m, rng, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != h {
		t.Fatalf("placed %d, want %d", len(res.Placed), h)
	}
	if res.Rounds != h {
		t.Errorf("rounds = %d, want exactly h=%d (one retirement per round)", res.Rounds, h)
	}
}
