package compaction

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/workload"
)

// The third reduction of Theorem 6.1: Chromatic Load Balancing reduces to
// Padded Sort. Groups of color i are assigned uniform numbers from the
// sub-interval (i/8m, (i+1)/8m]; after a padded sort, each color's groups
// occupy a contiguous run of the output, so assigning consecutive output
// positions to destination rows solves CLB for the densest-fitting color.
// This test executes the whole pipeline on the BSP padded sort.
func TestCLBViaPaddedSortReduction(t *testing.T) {
	inst, err := workload.NewCLB(7, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, m8 := inst.N, 8*inst.M

	// Encode each group as a number in its color's sub-interval. A group's
	// identity rides in the low bits so the mapping is invertible: value =
	// (color·span + 1 + group) scaled into (0, Denom01).
	span := int64(workload.Denom01) / int64(m8)
	vals := make([]int64, n)
	for g, col := range inst.Colors {
		vals[g] = int64(col)*span + 1 + int64(g)
	}

	p := 16
	mach, err := bsp.New(bsp.Config{
		P: p, G: 1, L: 4, N: n,
		PrivCells: PrivNeedPaddedSortBSP(n, p, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.Scatter(vals); err != nil {
		t.Fatal(err)
	}
	outOff, err := PaddedSortBSP(mach, n, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Collect the padded output and decode (group, color) per position.
	maxBlk := (n + p - 1) / p
	seg := 2 * maxBlk
	type slot struct{ pos, group, color int }
	var got []slot
	pos := 0
	for comp := 0; comp < p; comp++ {
		for i := 0; i < seg; i++ {
			v := mach.Peek(comp, outOff+i)
			pos++
			if v == 0 {
				continue
			}
			col := int((v - 1) / span)
			grp := int(v - int64(col)*span - 1)
			got = append(got, slot{pos: pos, group: grp, color: col})
		}
	}
	if len(got) != n {
		t.Fatalf("padded output holds %d groups, want %d", len(got), n)
	}

	// Colors must be contiguous runs in output order (disjoint intervals +
	// sortedness), and every group must appear exactly once.
	seenGroups := make([]bool, n)
	prevColor := -1
	closed := map[int]bool{}
	for _, s := range got {
		if seenGroups[s.group] {
			t.Fatalf("group %d appears twice", s.group)
		}
		seenGroups[s.group] = true
		if inst.Colors[s.group] != s.color {
			t.Fatalf("group %d decoded color %d, want %d", s.group, s.color, inst.Colors[s.group])
		}
		if s.color != prevColor {
			if closed[s.color] {
				t.Fatalf("color %d appears in two separate runs", s.color)
			}
			closed[prevColor] = true
			prevColor = s.color
		}
	}

	// Solve CLB from the sorted order: the groups of color 0 occupy a run
	// of consecutive output ranks; assign ranks r within the run to
	// destination rows 4·r..4·r+3 (each destination row gets m objects).
	rank := 0
	rows := map[int]bool{}
	for _, s := range got {
		if s.color != 0 {
			continue
		}
		for j := 0; j < 4; j++ {
			row := 4*rank + j
			if row >= n {
				t.Fatalf("CLB overflow at rank %d", rank)
			}
			if rows[row] {
				t.Fatalf("row %d assigned twice", row)
			}
			rows[row] = true
		}
		rank++
	}
	if want := len(inst.GroupsOfColor(0)); rank != want {
		t.Fatalf("placed %d groups of color 0, want %d", rank, want)
	}
}
